# Development entry points; CI (.github/workflows/ci.yml) runs the same
# steps.

GO ?= go

.PHONY: all build test race vet fmt-check bench bench-smoke sweep scenarios curves analytic golden paper resume-demo clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# make bench writes a dated baseline under bench/ (BENCH_<date>.json).
bench:
	./scripts/bench.sh

# make bench-smoke refreshes the committed CI regression-gate baseline
# (bench/SMOKE_BASELINE.json) after an intentional performance change.
bench-smoke:
	./scripts/bench.sh smoke

# make sweep runs the stock 16-point grid on all cores.
sweep:
	$(GO) run ./cmd/tgsweep -out results

# make scenarios runs the stock pattern×topology scenario library.
scenarios:
	$(GO) run ./cmd/tgsweep -scenario library -out scenarios

# make curves sweeps the scenario library's injection load and writes the
# load-latency curves with detected saturation points.
curves:
	$(GO) run ./cmd/tgsweep -scenario library -curve -out curves

# make analytic runs the closed-form estimator's validation suite: unit
# tests on hand-computed cases, the sweep integration layer, and the
# library-wide cross-validation against simulation (knee within one
# ladder step, zero-load latency within 20%, adaptive >= 40% fewer
# simulated levels).
analytic:
	$(GO) test ./internal/analytic
	$(GO) test -run 'TestAnalytic|TestAdaptive|TestPredictSaturation|TestGridAnalytic|TestPrePass|TestJournalResumeWithAnalytic|TestCurveCSVEstimated' ./internal/sweep
	$(GO) test -run TestAnalyticCrossValidation -v .

# make golden regenerates the golden regression snapshots after an
# intentional model change.
golden:
	$(GO) test ./internal/sweep -run TestGolden -update

# make paper regenerates the paper's evaluation in parallel.
paper:
	$(GO) run ./cmd/tgsweep -paper -sizes quick

# make resume-demo demonstrates a crash-safe campaign: a journaled sweep
# is SIGKILLed mid-run, then resumed to completion — the resumed artifacts
# are byte-identical to an uninterrupted run.
resume-demo:
	$(GO) build -o /tmp/tgsweep ./cmd/tgsweep
	rm -f /tmp/resume-demo.journal
	-timeout -s KILL 0.2 /tmp/tgsweep -grid default -workers 1 \
		-journal /tmp/resume-demo.journal -out /tmp/resume-demo
	@echo "--- killed mid-sweep; resuming ---"
	/tmp/tgsweep -grid default \
		-journal /tmp/resume-demo.journal -resume -out /tmp/resume-demo
	@echo "resumed artifacts: /tmp/resume-demo.json /tmp/resume-demo.csv"

clean:
	rm -f bench/*.txt results.json results.csv scenarios.json scenarios.csv \
		curves.json curves.csv *.test ./*/*.test
