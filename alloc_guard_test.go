// Zero-allocation guards for the kernel and transaction hot paths: CI runs
// these as ordinary tests, so a regression that reintroduces per-cycle or
// per-transaction allocation fails the build rather than only drifting a
// benchmark number.
//
// The guards measure with testing.AllocsPerRun over thousands of cycles,
// so even sub-1-alloc/op leaks (which integer allocs/op rounding hides in
// benchmark output) are caught. They are skipped under the race detector,
// whose instrumentation allocates on its own.

//go:build !race

package noctg_test

import (
	"testing"

	"noctg/internal/core"
	"noctg/internal/platform"
	"noctg/internal/sim"
	"noctg/internal/sweep"
)

func TestZeroAllocEngineTick(t *testing.T) {
	e := sim.NewEngine(sim.Clock{})
	n := 0
	for i := 0; i < 16; i++ {
		e.Add(sim.DeviceFunc(func(uint64) { n++ }))
	}
	if avg := testing.AllocsPerRun(10, func() { e.RunFor(1000) }); avg != 0 {
		t.Fatalf("Engine tick loop allocates %.2f allocs per 1000 cycles; the kernel must be allocation-free", avg)
	}
}

func TestZeroAllocTGDeviceIdleTick(t *testing.T) {
	p, err := core.Assemble("MASTER[0,0]\nBEGIN\nstart:\nIdle(1000000)\nJump(start)\nEND")
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDevice(p, idlePort{})
	if err != nil {
		t.Fatal(err)
	}
	cycle := uint64(0)
	if avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1000; i++ {
			d.Tick(cycle)
			cycle++
		}
	}); avg != 0 {
		t.Fatalf("TG device idle tick allocates %.2f allocs per 1000 cycles", avg)
	}
}

func TestZeroAllocTransactionPath(t *testing.T) {
	for _, ic := range []platform.Interconnect{platform.AMBA, platform.XPipes} {
		sys := newTransactionSystem(t, ic)
		// Warm the reusable buffers and pools, then demand exact zero.
		sys.Engine.RunFor(4096)
		if avg := testing.AllocsPerRun(5, func() { sys.Engine.RunFor(10_000) }); avg != 0 {
			t.Errorf("%v: steady-state transaction path allocates %.2f allocs per 10k cycles", ic, avg)
		}
	}
}

func TestZeroAllocStatsRegistryHotPath(t *testing.T) {
	// The stats registry's metric hot paths — counter adds and histogram
	// observes on registered device-owned metrics — run on every
	// transaction of every simulation and must never allocate; only
	// registration and boundary snapshots may.
	reg := sim.NewRegistry()
	var c sim.Counter
	h := sim.NewLatencyHistogram()
	reg.Scope("dev").RegisterCounter("txns", &c)
	reg.Scope("dev").RegisterHistogram("latency", h)
	reg.OnSync(func(uint64) { c.Add(0) })
	if avg := testing.AllocsPerRun(10, func() {
		for i := uint64(0); i < 1000; i++ {
			c.Add(1)
			h.Observe(i & 511)
		}
	}); avg != 0 {
		t.Fatalf("registry metric hot path allocates %.2f allocs per 1000 ops", avg)
	}
	// Phase-boundary settlement and reset are also allocation-free (only
	// Snapshot, which builds maps, may allocate).
	if avg := testing.AllocsPerRun(10, func() {
		reg.Sync(1000)
		reg.Reset()
	}); avg != 0 {
		t.Fatalf("registry Sync+Reset allocates %.2f allocs per boundary", avg)
	}
}

// TestZeroAllocPhasedTransactionPath extends the transaction-path guard to
// a system whose whole counter population is registry-registered: the
// steady-state tick loop (TG masters, fabric, monitors' registry metrics)
// must stay allocation-free with the stats subsystem fully wired.
func TestZeroAllocPhasedTransactionPath(t *testing.T) {
	for _, ic := range []platform.Interconnect{platform.AMBA, platform.XPipes} {
		sys := newTransactionSystem(t, ic)
		if sys.Stats == nil || sys.Stats.Counters() == 0 {
			t.Fatal("transaction system has no registered stats")
		}
		sys.Engine.RunFor(4096)
		if avg := testing.AllocsPerRun(5, func() {
			sys.Engine.RunFor(10_000)
			sys.Stats.Sync(sys.Engine.Cycle())
			sys.Stats.Reset()
		}); avg != 0 {
			t.Errorf("%v: phased steady state allocates %.2f allocs per 10k cycles", ic, avg)
		}
	}
}

// TestZeroAllocBurstyInjection guards the arrival-process injection hot
// path: the MMPP and self-similar state machines and the priority class
// draw run per injection, so any allocation there scales with offered
// load. All state (Pareto station arrays, class cumulative weights) is
// preallocated at construction; steady state must be exactly
// allocation-free under every arrival model.
func TestZeroAllocBurstyInjection(t *testing.T) {
	for name, cfg := range burstyArrivalConfigs() {
		g := burstyGenerator(cfg)
		e := sim.NewEngine(sim.Clock{})
		e.Add(g)
		e.RunFor(10_000) // warm the arrival state and scratch buffers
		if avg := testing.AllocsPerRun(10, func() { e.RunFor(10_000) }); avg != 0 {
			t.Errorf("%s: injection hot path allocates %.2f allocs per 10k cycles", name, avg)
		}
		if g.Issued() == 0 {
			t.Fatalf("%s: generator injected nothing", name)
		}
	}
}

func TestZeroAllocEventKernelMixedLoad(t *testing.T) {
	// The event kernel's whole run loop — wake heap, active-list sweeps,
	// wake hooks, cycle jumps — must stay allocation-free in steady state
	// on its target mixed-load workload.
	const span = 10_000
	sys := mixedLoadSystem(t, platform.KernelEvent, mixedLoadBusy(), 15)
	st := &stopper{at: span, span: span}
	sys.Engine.Add(st)
	done := st.take
	run := func() {
		if _, err := sys.Engine.RunEvery(4*span, 32, done); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the schedule storage, pools and reusable buffers
	if avg := testing.AllocsPerRun(5, run); avg != 0 {
		t.Errorf("event kernel mixed-load run allocates %.2f allocs per %d cycles", avg, span)
	}
}

// TestZeroAllocAnalyticEstimate guards the closed-form estimator's hot
// path: adaptive curves and the grid pre-pass call Estimate/LatencyAt/
// ThroughputAt per load level, and any allocation there would scale with
// sweep size. Compilation (New) may allocate; prediction may not.
func TestZeroAllocAnalyticEstimate(t *testing.T) {
	w := sweep.Workload{
		Kind: sweep.KindStochastic, Dist: "poisson", Cores: 4,
		Pattern: "uniform", PatternW: 2, PatternH: 2, Count: 300, MeanGap: 10,
	}
	for _, f := range []sweep.Fabric{
		{Interconnect: sweep.FabricAMBA},
		{Interconnect: sweep.FabricXPipes},
	} {
		est, err := sweep.NewEstimator(w, f)
		if err != nil {
			t.Fatal(err)
		}
		if avg := testing.AllocsPerRun(100, func() {
			e := est.Estimate()
			_ = est.LatencyAt(e.KneeGap + 4)
			_ = est.ThroughputAt(e.KneeGap + 4)
			_ = est.UtilizationAt(e.KneeGap + 4)
		}); avg != 0 {
			t.Errorf("%s: estimator hot path allocates %.2f allocs per prediction", f.Label(), avg)
		}
	}
}
