// Cross-validation of the closed-form estimator against simulation over
// the scenario library: the analytic knee must land within 15% relative
// load (or one ladder step) of the simulated saturation point, zero-load
// latency within 20%, and the adaptive curve traversal must find the same
// knee as the uniform one while simulating at least 40% fewer levels.
// These tolerances are the estimator's contract — the README's model
// notes and the sweep layer's confidence bounds are calibrated to them.

package noctg_test

import (
	"math"
	"testing"

	"noctg/internal/scenario"
	"noctg/internal/sweep"
)

// crossvalKneeRelTol / crossvalLatRelTol pin the estimator's accuracy
// contract over the scenario library.
const (
	crossvalKneeRelTol = 0.15
	crossvalLatRelTol  = 0.20
)

// libraryCurveSpecs compiles every curve-able library scenario in the
// given traversal mode.
func libraryCurveSpecs(t *testing.T, mode string) []sweep.CurveSpec {
	t.Helper()
	css, err := scenario.Curves(scenario.Library())
	if err != nil {
		t.Fatal(err)
	}
	if len(css) == 0 {
		t.Fatal("scenario library compiled to zero curves")
	}
	for i := range css {
		css[i].Mode = mode
	}
	return css
}

// gapLadder returns a curve's descending-gap load axis.
func gapLadder(c sweep.Curve) []float64 {
	gaps := make([]float64, len(c.Points))
	for i, p := range c.Points {
		gaps[i] = p.MeanGap
	}
	return gaps
}

// satIndex returns the index of the curve's saturation level on its
// ladder, or -1 without saturation.
func satIndex(c sweep.Curve) int {
	if c.Saturation == nil {
		return -1
	}
	for i, p := range c.Points {
		if p.MeanGap == c.Saturation.MeanGap {
			return i
		}
	}
	return -1
}

func TestAnalyticCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the full scenario library twice")
	}
	uniform := libraryCurveSpecs(t, sweep.CurveModeUniform)
	adaptive := libraryCurveSpecs(t, sweep.CurveModeAdaptive)
	r := sweep.Runner{}
	ucs, err := r.RunCurves(uniform)
	if err != nil {
		t.Fatal(err)
	}
	acs, err := r.RunCurves(adaptive)
	if err != nil {
		t.Fatal(err)
	}

	simTotal, uniTotal := 0, 0
	for i := range ucs {
		uc, ac := ucs[i], acs[i]
		t.Run(uc.Name, func(t *testing.T) {
			est, err := sweep.NewEstimator(uniform[i].Workload, uniform[i].Fabric)
			if err != nil {
				t.Fatal(err)
			}
			e := est.Estimate()

			// Zero-load latency: the lightest simulated level sits far in
			// the linear region, where the model must track the simulation.
			light := uc.Points[0]
			if light.Err != "" {
				t.Fatalf("lightest level failed: %s", light.Err)
			}
			latErr := math.Abs(light.LatencyMean-e.ZeroLoadLatency) / light.LatencyMean
			t.Logf("zero-load: simulated %.2f predicted %.2f (%.1f%% off)",
				light.LatencyMean, e.ZeroLoadLatency, 100*latErr)
			if latErr > crossvalLatRelTol {
				t.Errorf("zero-load latency: predicted %.2f vs simulated %.2f cycles (%.1f%% > %.0f%%)",
					e.ZeroLoadLatency, light.LatencyMean, 100*latErr, 100*crossvalLatRelTol)
			}

			// Knee position: the operational prediction — the saturation
			// detector run on the model's own curve over the same ladder —
			// must land within one ladder step of the simulated detection,
			// or within tolerance in offered load (1/(gap+1)). Detection is
			// quantized to the gap ladder, so one-step disagreement is the
			// detector's own resolution, not model error.
			si := satIndex(uc)
			if si < 0 {
				t.Fatal("uniform curve found no saturation point")
			}
			gaps := gapLadder(uc)
			pi := sweep.PredictSaturationIndex(est, gaps)
			if pi < 0 {
				t.Fatalf("model predicts no saturation on the ladder, simulation detected it at gap %g", gaps[si])
			}
			predLoad := 1 / (gaps[pi] + 1)
			detLoad := 1 / (gaps[si] + 1)
			kneeErr := math.Abs(predLoad-detLoad) / detLoad
			t.Logf("knee: detected level %d (gap %g), predicted level %d (gap %g), load %.1f%% off",
				si, gaps[si], pi, gaps[pi], 100*kneeErr)
			if d := pi - si; (d < -1 || d > 1) && kneeErr > crossvalKneeRelTol {
				t.Errorf("knee: predicted level %d (gap %g, load %.4f) vs detected level %d (gap %g, load %.4f): %d steps and %.1f%% > %.0f%% apart",
					pi, gaps[pi], predLoad, si, gaps[si], detLoad, d, 100*kneeErr, 100*crossvalKneeRelTol)
			}

			// Adaptive traversal: same knee within one ladder step, with a
			// full ladder of points (estimated ones fill the skipped levels).
			ai := satIndex(ac)
			if ai < 0 {
				t.Fatal("adaptive curve found no saturation point")
			}
			if d := ai - si; d < -1 || d > 1 {
				t.Errorf("adaptive knee at level %d (gap %g), uniform at %d (gap %g): more than one step apart",
					ai, ac.Points[ai].MeanGap, si, gaps[si])
			}
			if len(ac.Points) != len(uc.Points) {
				t.Errorf("adaptive curve has %d levels, uniform %d: estimated levels must fill the ladder",
					len(ac.Points), len(uc.Points))
			}
			if ac.SimulatedLevels+ac.EstimatedLevels != len(ac.Points) {
				t.Errorf("level accounting: %d simulated + %d estimated != %d points",
					ac.SimulatedLevels, ac.EstimatedLevels, len(ac.Points))
			}
			simTotal += ac.SimulatedLevels
			uniTotal += len(uc.Points)
			t.Logf("adaptive: %d/%d levels simulated", ac.SimulatedLevels, len(uc.Points))
		})
	}
	// The efficiency floor is a library-wide aggregate: every scenario
	// contributes, and adaptive must simulate at least 40% fewer levels
	// than uniform across the set.
	saved := 1 - float64(simTotal)/float64(uniTotal)
	t.Logf("library: adaptive simulated %d of %d uniform levels (%.0f%% fewer)", simTotal, uniTotal, 100*saved)
	if saved < 0.40 {
		t.Errorf("adaptive mode simulated %d of %d levels (%.0f%% fewer); the contract is >= 40%%",
			simTotal, uniTotal, 100*saved)
	}
}
