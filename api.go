package noctg

import (
	"io"

	"noctg/internal/amba"
	"noctg/internal/analytic"
	"noctg/internal/cache"
	"noctg/internal/core"
	"noctg/internal/exp"
	"noctg/internal/guard"
	"noctg/internal/layout"
	"noctg/internal/noc"
	"noctg/internal/ocp"
	"noctg/internal/platform"
	"noctg/internal/prog"
	"noctg/internal/scenario"
	"noctg/internal/sim"
	"noctg/internal/stochastic"
	"noctg/internal/sweep"
	"noctg/internal/trace"
	"noctg/internal/valid"
)

// Core simulation types.
type (
	// Engine is the cycle-driven simulation kernel.
	Engine = sim.Engine
	// Clock converts between cycles and nanoseconds (default 5 ns/cycle).
	Clock = sim.Clock
	// AddrRange is a half-open byte-address range.
	AddrRange = ocp.AddrRange
	// Request is one OCP transaction request.
	Request = ocp.Request
	// Response is an OCP read response.
	Response = ocp.Response
	// MasterPort is the master-side OCP connection point.
	MasterPort = ocp.MasterPort
	// Event is one traced OCP transaction.
	Event = ocp.Event
)

// Trace types (.trc files, Figure 3(a)).
type (
	// Trace is a recorded master-interface communication trace.
	Trace = trace.Trace
)

// TG types (the paper's contribution).
type (
	// TGProgram is a traffic-generator program (.tgp / .bin content).
	TGProgram = core.Program
	// TGInst is one TG instruction (Table 1 + Halt).
	TGInst = core.Inst
	// TGDevice is the cycle-true TG processor model.
	TGDevice = core.Device
	// TranslateConfig parameterises trace→program translation.
	TranslateConfig = core.TranslateConfig
	// TranslateStats reports translation fidelity counters.
	TranslateStats = core.TranslateStats
	// PollRange declares a pollable address range and its poll period.
	PollRange = core.PollRange
	// MultiTaskTG schedules several TG programs on one port (§7).
	MultiTaskTG = core.MultiTask
	// MultiTaskConfig parameterises the multitasking scheduler.
	MultiTaskConfig = core.MultiTaskConfig
	// SlaveTG is the slave-side traffic generator of §4.
	SlaveTG = core.SlaveTG
	// SlaveMode selects dummy or memory-backed slave TG behaviour.
	SlaveMode = core.SlaveMode
)

// Slave TG modes.
const (
	// DummySlave answers reads with deterministic dummy values.
	DummySlave = core.DummySlave
	// MemorySlave keeps real word storage.
	MemorySlave = core.MemorySlave
)

// Platform types.
type (
	// PlatformConfig describes a platform instance.
	PlatformConfig = platform.Config
	// System is an assembled platform.
	System = platform.System
	// Master is any device that drives an OCP master port to completion.
	Master = platform.Master
	// BusConfig configures the AMBA AHB-style bus.
	BusConfig = amba.Config
	// NoCConfig configures the ×pipes-style mesh NoC.
	NoCConfig = noc.Config
	// CacheConfig configures one cache.
	CacheConfig = cache.Config
	// Interconnect selects the fabric (AMBA or XPipes).
	Interconnect = platform.Interconnect
	// KernelMode selects the simulation kernel (strict, idle-skipping or
	// event-driven).
	KernelMode = platform.KernelMode
)

// Interconnect kinds.
const (
	// AMBA is the shared-bus reference interconnect.
	AMBA = platform.AMBA
	// XPipes is the packet-switched mesh NoC.
	XPipes = platform.XPipes
)

// Simulation kernels.
const (
	// KernelAuto picks event for TG replay and strict for ARM reference runs.
	KernelAuto = platform.KernelAuto
	// KernelStrict ticks every device on every cycle.
	KernelStrict = platform.KernelStrict
	// KernelEvent ticks only devices whose scheduled wake is due, jumping
	// all-asleep spans; per-cycle cost scales with the awake set.
	KernelEvent = platform.KernelEvent
	// KernelSkip fast-forwards over cycles in which every device sleeps;
	// simulated results are identical to strict runs.
	KernelSkip = platform.KernelSkip
)

// ParseKernel converts a "-kernel" style string into a KernelMode.
var ParseKernel = platform.ParseKernel

// Benchmark and experiment types.
type (
	// Benchmark is one runnable SPMD workload specification.
	Benchmark = prog.Spec
	// Options selects the platform variant for experiments.
	Options = exp.Options
	// RefResult is a reference (ARM) run outcome.
	RefResult = exp.RefResult
	// TGResult is a TG-platform run outcome.
	TGResult = exp.TGResult
	// Row is one Table 2 measurement line.
	Row = exp.Row
	// Sizes parameterises the Table 2 benchmark sweep.
	Sizes = exp.Sizes
	// CrossCheckResult is the cross-interconnect equality outcome.
	CrossCheckResult = exp.CrossCheckResult
	// StochasticConfig describes a statistical baseline generator.
	StochasticConfig = stochastic.Config
	// Dist selects a stochastic inter-arrival distribution.
	Dist = stochastic.Dist
	// SpatialPattern selects a spatial destination pattern.
	SpatialPattern = stochastic.Pattern
	// Spatial configures a spatial pattern over a logical master grid.
	Spatial = stochastic.Spatial
	// SpatialSampler is a compiled spatial pattern (per-draw destinations).
	SpatialSampler = stochastic.Sampler
	// MMPPConfig is the Markov-modulated (on/off burst chain) arrival
	// process: per-state mean gaps with exponential or deterministic dwells.
	MMPPConfig = stochastic.MMPP
	// SelfSimilarConfig is the superposed Pareto on/off arrival process
	// with a configurable target Hurst exponent.
	SelfSimilarConfig = stochastic.SelfSimilar
	// NoCTopology selects the ×pipes link structure (mesh or torus).
	NoCTopology = noc.Topology
)

// Stochastic distributions (Lahiri et al. [6]).
const (
	// Uniform draws gaps uniformly around the mean.
	Uniform = stochastic.Uniform
	// Gaussian draws normally distributed gaps.
	Gaussian = stochastic.Gaussian
	// Poisson draws exponential gaps.
	Poisson = stochastic.Poisson
	// Bursty alternates back-to-back bursts with long off periods.
	Bursty = stochastic.Bursty
)

// Spatial traffic patterns (the classic NoC evaluation set).
const (
	// UniformRandom draws destinations uniformly over all nodes.
	UniformRandom = stochastic.UniformRandom
	// Transpose sends node (x, y) to node (y, x) on a square grid.
	Transpose = stochastic.Transpose
	// BitComplement sends node i to ^i on a power-of-two grid.
	BitComplement = stochastic.BitComplement
	// BitReverse sends node i to its bit-reversed index.
	BitReverse = stochastic.BitReverse
	// Hotspot pulls a weighted fraction of traffic to hotspot nodes.
	Hotspot = stochastic.Hotspot
	// NearestNeighbor draws among the wrapped grid neighbours.
	NearestNeighbor = stochastic.NearestNeighbor
)

// NoC topologies.
const (
	// Mesh is the open 2-D grid.
	Mesh = noc.Mesh
	// Torus closes rows and columns into deadlock-free rings.
	Torus = noc.Torus
)

// Spatial pattern and topology helpers.
var (
	// ParsePattern converts a "-pattern" style string into a SpatialPattern.
	ParsePattern = stochastic.ParsePattern
	// NewSpatialSampler validates and compiles a spatial pattern.
	NewSpatialSampler = stochastic.NewSampler
	// ParseTopology converts a "mesh"/"torus" string into a NoCTopology.
	ParseTopology = noc.ParseTopology
)

// Benchmarks (the paper's Table 2 workloads).
var (
	// SPMatrix builds the single-processor matrix benchmark (n×n).
	SPMatrix = prog.SPMatrix
	// Cacheloop builds the cache-resident scaling benchmark.
	Cacheloop = prog.Cacheloop
	// MPMatrix builds the shared-memory multiprocessor matrix benchmark.
	MPMatrix = prog.MPMatrix
	// DES builds the table-driven Feistel encryption benchmark.
	DES = prog.DES
	// Pipeline builds the flag-handshake dataflow chain benchmark (an
	// addition beyond the paper's four workloads).
	Pipeline = prog.Pipeline
)

// The TG flow (Sections 4–5).
var (
	// Translate converts one trace into a TG program.
	Translate = core.Translate
	// DefaultTranslateConfig returns the reactive translation setup.
	DefaultTranslateConfig = core.DefaultTranslateConfig
	// AssembleTGP parses .tgp text into a program.
	AssembleTGP = core.Assemble
	// ReadBin parses a .bin TG image.
	ReadBin = core.ReadBin
	// NewTGDevice builds a TG processor over an OCP port.
	NewTGDevice = core.NewDevice
	// NewMultiTaskTG builds a multitasking TG master.
	NewMultiTaskTG = core.NewMultiTask
	// NewSlaveTG builds a slave-side TG.
	NewSlaveTG = core.NewSlaveTG
	// ParseTrace reads a .trc stream.
	ParseTrace = trace.Parse
	// NewTrace wraps monitor events as a trace.
	NewTrace = trace.New
)

// Platform assembly (Figure 1).
var (
	// BuildARM assembles a platform of miniARM cores running programs.
	BuildARM = platform.BuildARM
	// BuildTG assembles a platform of TG devices (Figure 1(b)).
	BuildTG = platform.BuildTG
	// Build assembles a platform with a custom master factory.
	Build = platform.Build
	// NewStochastic builds a statistical baseline master.
	NewStochastic = stochastic.New
)

// Experiment harness (Section 6).
var (
	// DefaultOptions returns the reference AMBA platform options.
	DefaultOptions = exp.DefaultOptions
	// RunReference executes a benchmark on cycle-true cores.
	RunReference = exp.RunReference
	// TranslateAll converts per-master traces into TG programs.
	TranslateAll = exp.TranslateAll
	// RunTG executes translated programs on the TG platform.
	RunTG = exp.RunTG
	// PollRangesFor returns a benchmark's pollable ranges.
	PollRangesFor = exp.PollRangesFor
	// MeasureRow produces one Table 2 row.
	MeasureRow = exp.MeasureRow
	// Table2 measures the full benchmark sweep.
	Table2 = exp.Table2
	// FormatTable2 renders rows in the paper's layout.
	FormatTable2 = exp.FormatTable2
	// DefaultSizes mirrors the paper's benchmark sweep.
	DefaultSizes = exp.DefaultSizes
	// QuickSizes is a fast smoke-test sweep.
	QuickSizes = exp.QuickSizes
	// CrossCheck verifies .tgp equality across interconnects.
	CrossCheck = exp.CrossCheck
)

// Memory map of the MPARM-like platform.
var (
	// PrivBaseFor returns core i's private memory base.
	PrivBaseFor = layout.PrivBaseFor
	// PrivRange returns core i's private memory range.
	PrivRange = layout.PrivRange
	// SharedRange returns the shared memory range.
	SharedRange = layout.SharedRange
	// SemRange returns the hardware semaphore bank range.
	SemRange = layout.SemRange
	// SemAddr returns the address of semaphore i.
	SemAddr = layout.SemAddr
)

// Parallel sweep types (the design-space exploration runner).
type (
	// SweepGrid is a workloads × fabrics × clocks × seeds parameter grid.
	SweepGrid = sweep.Grid
	// SweepWorkload names one traffic source of a grid.
	SweepWorkload = sweep.Workload
	// SweepArrival selects an arrival process (MMPP or self-similar) as a
	// workload's temporal axis, replacing dist/mean_gap.
	SweepArrival = sweep.Arrival
	// SweepFabric names one interconnect configuration of a grid.
	SweepFabric = sweep.Fabric
	// SweepPoint is one fully-specified grid configuration.
	SweepPoint = sweep.Point
	// SweepResult is the deterministic outcome of one grid point.
	SweepResult = sweep.Result
	// SweepRunner executes grid points over a bounded worker pool.
	SweepRunner = sweep.Runner
	// PaperSelect chooses experiment families for RunPaper.
	PaperSelect = sweep.PaperSelect
	// PaperResults aggregates the paper's experiments from one parallel run.
	PaperResults = sweep.PaperResults
	// EngineSnapshot is a serialisable end-of-run kernel capture.
	EngineSnapshot = sim.Snapshot
	// Fig2aResult is the Figure 2(a) transaction-semantics outcome.
	Fig2aResult = exp.Fig2aResult
	// Fig2bResult is the Figure 2(b) reactivity outcome.
	Fig2bResult = exp.Fig2bResult
)

// Phased measurement types (the warmup/measure/drain methodology).
type (
	// SweepMeasure configures the phased measurement methodology for a
	// grid or point: warmup window, fixed or CI-adaptive measurement
	// epochs, drain window.
	SweepMeasure = sweep.Measure
	// SweepPhaseStats is the phased extension of a SweepResult: phase
	// windows and per-epoch statistics.
	SweepPhaseStats = sweep.PhaseStats
	// SweepEpochStat is one measurement epoch's aggregated statistics.
	SweepEpochStat = sweep.EpochStat
	// CurveSpec names one load-latency curve: a stochastic workload swept
	// over an injection-load axis with phased measurement per level.
	CurveSpec = sweep.CurveSpec
	// Curve is a measured load-latency curve with its saturation point.
	Curve = sweep.Curve
	// CurvePoint is one measured load level of a curve.
	CurvePoint = sweep.CurvePoint
	// StatsRegistry is the unified per-system stats registry devices
	// register their counters and histograms with.
	StatsRegistry = sim.Registry
	// StatsCounter is a zero-allocation registry-resettable counter.
	StatsCounter = sim.Counter
)

// Analytic-estimator types (the closed-form queueing model behind
// adaptive curves, the grid pre-pass and the -print-scenarios columns).
type (
	// AnalyticSpec is one estimated configuration: fabric geometry plus the
	// per-master traffic descriptors.
	AnalyticSpec = analytic.Spec
	// AnalyticEstimator is the compiled closed-form model for one spec.
	AnalyticEstimator = analytic.Estimator
	// AnalyticEstimate is a point prediction: zero-load latency, saturation
	// knee, throughput ceiling and structural error bars.
	AnalyticEstimate = analytic.Estimate
	// AnalyticReport is the -analytic pre-pass artifact: every consulted
	// configuration with its prediction (or rejection), in sweep order.
	AnalyticReport = analytic.Report
)

// Analytic-estimator entry points.
var (
	// NewAnalyticEstimator compiles the closed-form model for a spec.
	NewAnalyticEstimator = analytic.New
	// SweepAnalyticSpec converts a stochastic sweep workload/fabric pair
	// into the estimator's specification (same floorplan and traffic
	// descriptors a simulation of the point would use).
	SweepAnalyticSpec = sweep.AnalyticSpec
	// SweepEstimator compiles the estimator for a workload/fabric pair.
	SweepEstimator = sweep.NewEstimator
	// SweepAnalyticReport predicts every distinct stochastic configuration
	// in a point list.
	SweepAnalyticReport = sweep.AnalyticReport
	// PredictedKneeGap predicts the mean gap at which the curve-level
	// saturation detector fires (resource knee or marginal-throughput
	// knee, whichever is at lighter load).
	PredictedKneeGap = sweep.PredictedKneeGap
)

// Curve traversal modes for CurveSpec.Mode.
const (
	// CurveModeUniform simulates every load level (the default).
	CurveModeUniform = sweep.CurveModeUniform
	// CurveModeAdaptive seeds levels from the analytic knee, simulates
	// densely around it, and records skipped levels as estimated points.
	CurveModeAdaptive = sweep.CurveModeAdaptive
)

// Generator-validation types (the fidelity harness: open-loop source
// capture checked against analytic arrival-process expectations).
type (
	// ValidationSource pairs a stochastic generator configuration with its
	// analytic expectations (rate, gap CDF, IDC band, Hurst band, class
	// shares).
	ValidationSource = valid.Source
	// ValidationCheck is one fidelity assertion of a report.
	ValidationCheck = valid.Check
	// ValidationSourceReport is one source's fidelity result.
	ValidationSourceReport = valid.SourceReport
	// ValidationReport is the full deterministic fidelity report
	// (byte-identical across kernels and worker counts).
	ValidationReport = valid.Report
)

// Generator-validation entry points.
var (
	// StockValidationSources returns the CI fidelity suite: one source per
	// arrival model with tuned analytic bands.
	StockValidationSources = valid.StockSources
	// ValidateSources runs sources through the open-loop harness over a
	// worker pool and aggregates the fidelity report.
	ValidateSources = valid.Validate
	// CheckValidationSource captures and checks a single source.
	CheckValidationSource = valid.CheckSource
	// ValidationSourceFromPoint derives a validation source (with every
	// analytic expectation the configuration supports) from a sweep point.
	ValidationSourceFromPoint = valid.FromPoint
	// BurstyGrid returns the stock bursty/self-similar/priority sweep grid
	// pinned by the golden and differential matrices.
	BurstyGrid = sweep.BurstyGrid
	// TQuantile returns the two-sided 95% Student-t quantile used by the
	// adaptive sweep stop rule and the offered-load CI check.
	TQuantile = sweep.TQuantile
)

// Guard types (the hardening layer: invariant watchdogs, structured
// violation diagnostics, deterministic fault injection).
type (
	// GuardConfig selects which watchdogs run and their thresholds.
	GuardConfig = guard.Config
	// GuardViolation is the typed error a fired watchdog returns instead of
	// a panic or a hang.
	GuardViolation = guard.Violation
	// GuardDiagnostic is the structured dump attached to violations.
	GuardDiagnostic = guard.Diagnostic
	// FaultPlan is a deterministic, seeded fault-injection plan (test
	// stimulus proving the watchdogs fire).
	FaultPlan = guard.FaultPlan
)

// Guard entry points.
var (
	// DefaultGuard returns the full watchdog set with default thresholds.
	DefaultGuard = guard.Default
	// AsViolation unwraps an error to the *GuardViolation it carries.
	AsViolation = guard.AsViolation
	// RandomFaultPlan derives a reproducible fabric fault plan from a seed.
	RandomFaultPlan = guard.RandomPlan
)

// Crash-safe campaign types (the write-ahead journal under the sweep
// runner: journaled execution, byte-identical resume, typed retries).
type (
	// SweepJournalConfig selects the journal file and resume mode for
	// SweepRunner.RunJournaled.
	SweepJournalConfig = sweep.JournalConfig
	// SweepJournalStatus reports how a journaled run went: points resumed
	// from the journal, ran fresh, skipped by a graceful drain, and
	// whether a torn journal tail was truncated.
	SweepJournalStatus = sweep.JournalStatus
	// SweepRetryPolicy governs transient-failure retries and the per-point
	// wall-clock deadline (execution-only: results never change).
	SweepRetryPolicy = sweep.RetryPolicy
)

// Crash-safe campaign entry points.
var (
	// SweepPointKey is a point's stable journal identity: a hash of its
	// result-determining configuration, excluding execution-only knobs.
	SweepPointKey = sweep.PointKey
	// ErrSweepDrained reports that a graceful drain (SIGINT/SIGTERM)
	// skipped unstarted points; the journal holds everything finished.
	ErrSweepDrained = sweep.ErrDrained
)

// ResumeSweep resumes a journaled campaign on a default runner: completed
// points come from the journal at path, the rest run, and the results are
// byte-identical to an uninterrupted journaled run. Use
// SweepRunner.Resume (or RunJournaled) to set workers, kernel, shards,
// guard or retry policy.
func ResumeSweep(points []SweepPoint, path string) ([]SweepResult, SweepJournalStatus, error) {
	return SweepRunner{}.Resume(points, path)
}

// Scenario types (the declarative layer over the sweep runner).
type (
	// ScenarioSpec is one declarative traffic scenario: fabric, topology,
	// logical core grid, spatial pattern, injection distribution and the
	// load/clock/seed axes.
	ScenarioSpec = scenario.Spec
)

// Scenario entry points.
var (
	// ParseScenarios reads a scenario JSON file (one spec or an array).
	ParseScenarios = scenario.Parse
	// ScenarioLibrary returns the stock pattern × topology scenario set.
	ScenarioLibrary = scenario.Library
	// ScenarioByName returns one library scenario.
	ScenarioByName = scenario.ByName
	// ScenarioPoints compiles scenarios into runnable sweep points.
	ScenarioPoints = scenario.Points
	// ScenarioCurves compiles scenarios into load-latency curve specs.
	ScenarioCurves = scenario.Curves
	// ScenarioGrid returns the pattern × topology sweep the golden-file
	// harness locks down.
	ScenarioGrid = sweep.ScenarioGrid
)

// Parallel sweep entry points.
var (
	// DefaultGrid returns the stock 16-configuration sweep.
	DefaultGrid = sweep.DefaultGrid
	// ParseGrid reads a JSON grid description.
	ParseGrid = sweep.ParseGrid
	// WriteSweepJSON renders sweep results as deterministic JSON.
	WriteSweepJSON = sweep.WriteJSON
	// WriteSweepCSV renders sweep results as deterministic CSV.
	WriteSweepCSV = sweep.WriteCSV
	// WriteCurvesJSON renders load-latency curves as deterministic JSON.
	WriteCurvesJSON = sweep.WriteCurvesJSON
	// WriteCurvesCSV renders load-latency curves as deterministic CSV.
	WriteCurvesCSV = sweep.WriteCurvesCSV
	// RunPaper executes every paper experiment as one parallel invocation.
	RunPaper = sweep.RunPaper
	// RunPaperSelect executes the selected experiment families in parallel.
	RunPaperSelect = sweep.RunPaperSelect
	// Fig2a measures the posted-write vs blocking-read experiment.
	Fig2a = exp.Fig2a
	// Fig2b measures the semaphore-reactivity experiment.
	Fig2b = exp.Fig2b
)

// WriteTGP renders a TG program as canonical .tgp text.
func WriteTGP(p *TGProgram, w io.Writer) error { return p.Format(w) }

// WriteBin serialises a TG program as a .bin image.
func WriteBin(p *TGProgram, w io.Writer) error { return p.WriteBin(w) }

// WriteTrace renders a trace in .trc format.
func WriteTrace(t *Trace, w io.Writer) error { return t.Write(w) }
