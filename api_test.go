package noctg_test

import (
	"bytes"
	"strings"
	"testing"

	"noctg"
)

// TestEndToEndFlow exercises the full public API: reference run → traces →
// .trc round trip → translation → .tgp and .bin round trips → TG run.
func TestEndToEndFlow(t *testing.T) {
	bench := noctg.MPMatrix(2, 8)
	opt := noctg.DefaultOptions()

	ref, err := noctg.RunReference(bench, opt, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Traces) != 2 {
		t.Fatalf("expected 2 traces, got %d", len(ref.Traces))
	}

	// .trc round trip.
	var buf bytes.Buffer
	if err := noctg.WriteTrace(ref.Traces[0], &buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := noctg.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Events) != len(ref.Traces[0].Events) {
		t.Fatal(".trc round trip lost events")
	}

	progs, stats, _, err := noctg.TranslateAll(bench, ref.Traces,
		noctg.DefaultTranslateConfig(noctg.PollRangesFor(bench)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.PollLoops == 0 {
		t.Fatal("MP matrix should produce poll loops")
	}

	// .tgp round trip.
	var tgp bytes.Buffer
	if err := noctg.WriteTGP(progs[0], &tgp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tgp.String(), "MASTER[0,0]") {
		t.Fatalf(".tgp missing header:\n%s", tgp.String())
	}
	reasm, err := noctg.AssembleTGP(tgp.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(reasm.Insts) != len(progs[0].Insts) {
		t.Fatal(".tgp round trip changed the program")
	}

	// .bin round trip.
	var bin bytes.Buffer
	if err := noctg.WriteBin(progs[0], &bin); err != nil {
		t.Fatal(err)
	}
	fromBin, err := noctg.ReadBin(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromBin.Insts) != len(progs[0].Insts) {
		t.Fatal(".bin round trip changed the program")
	}

	tg, err := noctg.RunTG(bench, progs, opt)
	if err != nil {
		t.Fatal(err)
	}
	diff := float64(tg.Makespan) - float64(ref.Makespan)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(ref.Makespan) > 0.03 {
		t.Fatalf("TG makespan %d deviates from ARM %d", tg.Makespan, ref.Makespan)
	}
}

func TestPublicCrossCheck(t *testing.T) {
	res, err := noctg.CrossCheck(noctg.Cacheloop(2, 300), noctg.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal {
		t.Fatalf("programs differ: %s", res.FirstDiff)
	}
}

func TestPublicMeasureRow(t *testing.T) {
	row, err := noctg.MeasureRow(noctg.SPMatrix(8), noctg.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if row.ErrorPct > 1 {
		t.Fatalf("error %.2f%%", row.ErrorPct)
	}
	out := noctg.FormatTable2([]*noctg.Row{row})
	if !strings.Contains(out, "spmatrix") {
		t.Fatal("format output missing benchmark name")
	}
}

func TestPublicPlatformOnXPipes(t *testing.T) {
	bench := noctg.Cacheloop(2, 200)
	opt := noctg.DefaultOptions()
	opt.Platform.Interconnect = noctg.XPipes
	ref, err := noctg.RunReference(bench, opt, false)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Makespan == 0 {
		t.Fatal("no cycles simulated")
	}
}

func TestPublicMemoryMap(t *testing.T) {
	if noctg.PrivBaseFor(1) <= noctg.PrivBaseFor(0) {
		t.Fatal("private bases must ascend")
	}
	if !noctg.SemRange().Contains(noctg.SemAddr(0)) {
		t.Fatal("semaphore 0 outside bank")
	}
	if noctg.SharedRange().Overlaps(noctg.SemRange()) {
		t.Fatal("shared and semaphore ranges overlap")
	}
}
