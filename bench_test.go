// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
// recorded results):
//
//	BenchmarkTable2*            — Table 2: ARM vs TG simulation speed per
//	                              benchmark and core count; the Gain column
//	                              is the ratio of the matching ARM and TG
//	                              benchmark times.
//	BenchmarkFig2a*             — Figure 2(a): private-slave transaction
//	                              pattern micro-benchmark.
//	BenchmarkFig2b*             — Figure 2(b): two-master semaphore
//	                              contention with reactive TGs.
//	BenchmarkFig3Translation    — Figure 3: trace→TG-program translation
//	                              throughput.
//	BenchmarkTraceOverhead*     — §6: trace-collection and translation cost.
//	BenchmarkCrossInterconnect* — §6: the same TG programs on AMBA/×pipes.
//	BenchmarkAblation*          — baseline-fidelity and design-choice
//	                              ablations.
package noctg_test

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"noctg"

	"noctg/internal/amba"
	"noctg/internal/core"
	"noctg/internal/exp"
	"noctg/internal/noc"
	"noctg/internal/ocp"
	"noctg/internal/platform"
	"noctg/internal/prog"
	"noctg/internal/sim"
	"noctg/internal/simtest"
	"noctg/internal/stochastic"
	"noctg/internal/sweep"
)

// benchSizes keeps the Table 2 sweep fast enough for -bench=. runs while
// staying in the paper's contention regimes.
const (
	benchSPMatrixN  = 16
	benchCacheIters = 10_000
	benchMPMatrixN  = 12
	benchDESBlocks  = 8
	benchMaxOverrun = 4 // spec.MaxCycles multiplier safety
)

func benchARM(b *testing.B, spec *prog.Spec) {
	b.Helper()
	progs, err := spec.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	opt := exp.DefaultOptions()
	var makespan uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := opt.Platform
		cfg.Cores = spec.Cores
		sys, err := platform.BuildARM(cfg, progs, opt.ICache, opt.DCache)
		if err != nil {
			b.Fatal(err)
		}
		makespan, err = sys.Run(spec.MaxCycles * benchMaxOverrun)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSimSpeed(b, makespan)
}

// benchTG replays a translated benchmark on the given kernel. The legacy
// BenchmarkTable2*TG names pin the strict kernel so their Msimcycles/s stay
// comparable with the recorded BENCH_*.json baselines; the *TGSkip variants
// measure the idle-skipping kernel against them.
func benchTG(b *testing.B, spec *prog.Spec, kernel platform.KernelMode) {
	b.Helper()
	ref, err := exp.RunReference(spec, exp.DefaultOptions(), true)
	if err != nil {
		b.Fatal(err)
	}
	progs, _, _, err := exp.TranslateAll(spec, ref.Traces,
		core.DefaultTranslateConfig(exp.PollRangesFor(spec)))
	if err != nil {
		b.Fatal(err)
	}
	var makespan uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := exp.DefaultOptions().Platform
		cfg.Cores = spec.Cores
		cfg.Kernel = kernel
		sys, err := platform.BuildTG(cfg, progs)
		if err != nil {
			b.Fatal(err)
		}
		makespan, err = sys.Run(spec.MaxCycles * benchMaxOverrun)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSimSpeed(b, makespan)
}

// reportSimSpeed reports the simulated-cycle throughput and the makespan.
func reportSimSpeed(b *testing.B, makespan uint64) {
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(makespan)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Msimcycles/s")
	}
	b.ReportMetric(float64(makespan), "simcycles")
}

// --- Table 2 ---

func BenchmarkTable2SPMatrixARM(b *testing.B) { benchARM(b, prog.SPMatrix(benchSPMatrixN)) }
func BenchmarkTable2SPMatrixTG(b *testing.B) {
	benchTG(b, prog.SPMatrix(benchSPMatrixN), platform.KernelStrict)
}
func BenchmarkTable2SPMatrixTGSkip(b *testing.B) {
	benchTG(b, prog.SPMatrix(benchSPMatrixN), platform.KernelSkip)
}

func BenchmarkTable2CacheloopARM(b *testing.B) {
	for _, p := range []int{2, 4, 8, 12} {
		b.Run(coresName(p), func(b *testing.B) { benchARM(b, prog.Cacheloop(p, benchCacheIters)) })
	}
}

func BenchmarkTable2CacheloopTG(b *testing.B) {
	for _, p := range []int{2, 4, 8, 12} {
		b.Run(coresName(p), func(b *testing.B) {
			benchTG(b, prog.Cacheloop(p, benchCacheIters), platform.KernelStrict)
		})
	}
}

func BenchmarkTable2CacheloopTGSkip(b *testing.B) {
	for _, p := range []int{2, 4, 8, 12} {
		b.Run(coresName(p), func(b *testing.B) {
			benchTG(b, prog.Cacheloop(p, benchCacheIters), platform.KernelSkip)
		})
	}
}

func BenchmarkTable2MPMatrixARM(b *testing.B) {
	for _, p := range []int{2, 4, 8, 12} {
		b.Run(coresName(p), func(b *testing.B) { benchARM(b, prog.MPMatrix(p, benchMPMatrixN)) })
	}
}

func BenchmarkTable2MPMatrixTG(b *testing.B) {
	for _, p := range []int{2, 4, 8, 12} {
		b.Run(coresName(p), func(b *testing.B) {
			benchTG(b, prog.MPMatrix(p, benchMPMatrixN), platform.KernelStrict)
		})
	}
}

func BenchmarkTable2MPMatrixTGSkip(b *testing.B) {
	for _, p := range []int{2, 4, 8, 12} {
		b.Run(coresName(p), func(b *testing.B) {
			benchTG(b, prog.MPMatrix(p, benchMPMatrixN), platform.KernelSkip)
		})
	}
}

func BenchmarkTable2DESARM(b *testing.B) {
	for _, p := range []int{3, 6, 12} {
		b.Run(coresName(p), func(b *testing.B) { benchARM(b, prog.DES(p, benchDESBlocks)) })
	}
}

func BenchmarkTable2DESTG(b *testing.B) {
	for _, p := range []int{3, 6, 12} {
		b.Run(coresName(p), func(b *testing.B) {
			benchTG(b, prog.DES(p, benchDESBlocks), platform.KernelStrict)
		})
	}
}

func BenchmarkTable2DESTGSkip(b *testing.B) {
	for _, p := range []int{3, 6, 12} {
		b.Run(coresName(p), func(b *testing.B) {
			benchTG(b, prog.DES(p, benchDESBlocks), platform.KernelSkip)
		})
	}
}

func coresName(p int) string { return fmt.Sprintf("%dP", p) }

func BenchmarkPipelineARM(b *testing.B) { benchARM(b, prog.Pipeline(4, 16)) }
func BenchmarkPipelineTG(b *testing.B)  { benchTG(b, prog.Pipeline(4, 16), platform.KernelStrict) }
func BenchmarkPipelineTGSkip(b *testing.B) {
	benchTG(b, prog.Pipeline(4, 16), platform.KernelSkip)
}

// --- Figure 2(a): private-slave transaction pattern ---

func BenchmarkFig2aPrivateSlave(b *testing.B) {
	// WR / RD / WR+RD back-to-back against a private slave, as in the
	// figure's timeline.
	steps := []simtest.Step{
		{Gap: 4, Req: ocp.Request{Cmd: ocp.Write, Addr: 0x1000, Burst: 1, Data: []uint32{1}}},
		{Gap: 6, Req: ocp.Request{Cmd: ocp.Read, Addr: 0x1004, Burst: 1}},
		{Gap: 0, Req: ocp.Request{Cmd: ocp.Write, Addr: 0x1008, Burst: 1, Data: []uint32{2}}},
		{Gap: 0, Req: ocp.Request{Cmd: ocp.Read, Addr: 0x1008, Burst: 1}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine(sim.Clock{})
		bus := amba.New(amba.Config{}, e.Cycle)
		ram := newBenchRAM(b, bus)
		_ = ram
		m := simtest.NewMaster(bus.NewMasterPort(), steps)
		e.Add(m)
		e.Add(bus)
		if _, err := e.Run(10_000, func() bool { return m.Done() && bus.Idle() }); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 2(b): semaphore contention with reactive TGs ---

func BenchmarkFig2bSemaphore(b *testing.B) {
	m1, err := noctg.AssembleTGP(`MASTER[0,0]
REGISTER addr 0x09000000
REGISTER data 0x00000001
REGISTER tempreg 0x00000001
BEGIN
Semchk0:
	Read(addr)
	If rdreg != tempreg then Semchk0
	Idle(100)
	Write(addr, data)
	Halt
END`)
	if err != nil {
		b.Fatal(err)
	}
	m2, err := noctg.AssembleTGP(`MASTER[1,0]
REGISTER addr 0x09000000
REGISTER tempreg 0x00000001
BEGIN
	Idle(10)
Semchk0:
	Read(addr)
	Idle(6)
	If rdreg != tempreg then Semchk0
	Halt
END`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := platform.BuildTG(platform.Config{Cores: 2}, []*core.Program{m1, m2})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(100_000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 3: translation throughput ---

func BenchmarkFig3Translation(b *testing.B) {
	spec := prog.MPMatrix(4, benchMPMatrixN)
	ref, err := exp.RunReference(spec, exp.DefaultOptions(), true)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultTranslateConfig(exp.PollRangesFor(spec))
	var events int
	for _, tr := range ref.Traces {
		events += len(tr.Events)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range ref.Traces {
			if _, _, err := core.Translate(tr, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// --- §6: trace collection overhead ---

func BenchmarkTraceOverheadPlain(b *testing.B) {
	spec := prog.MPMatrix(4, benchMPMatrixN)
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunReference(spec, exp.DefaultOptions(), false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceOverheadTraced(b *testing.B) {
	spec := prog.MPMatrix(4, benchMPMatrixN)
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunReference(spec, exp.DefaultOptions(), true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceOverheadSerialize(b *testing.B) {
	spec := prog.MPMatrix(4, benchMPMatrixN)
	ref, err := exp.RunReference(spec, exp.DefaultOptions(), true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range ref.Traces {
			if err := tr.Write(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- §6: cross-interconnect replay ---

func BenchmarkCrossInterconnectTGOnAMBA(b *testing.B) {
	benchTGOnFabric(b, platform.AMBA, platform.KernelStrict)
}

func BenchmarkCrossInterconnectTGOnXPipes(b *testing.B) {
	benchTGOnFabric(b, platform.XPipes, platform.KernelStrict)
}

func BenchmarkCrossInterconnectTGOnAMBASkip(b *testing.B) {
	benchTGOnFabric(b, platform.AMBA, platform.KernelSkip)
}

func BenchmarkCrossInterconnectTGOnXPipesSkip(b *testing.B) {
	benchTGOnFabric(b, platform.XPipes, platform.KernelSkip)
}

func benchTGOnFabric(b *testing.B, ic platform.Interconnect, kernel platform.KernelMode) {
	b.Helper()
	spec := prog.MPMatrix(4, benchMPMatrixN)
	ref, err := exp.RunReference(spec, exp.DefaultOptions(), true)
	if err != nil {
		b.Fatal(err)
	}
	progs, _, _, err := exp.TranslateAll(spec, ref.Traces,
		core.DefaultTranslateConfig(exp.PollRangesFor(spec)))
	if err != nil {
		b.Fatal(err)
	}
	var makespan uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := platform.Config{Cores: spec.Cores, Interconnect: ic, Kernel: kernel}
		sys, err := platform.BuildTG(cfg, progs)
		if err != nil {
			b.Fatal(err)
		}
		makespan, err = sys.Run(spec.MaxCycles * benchMaxOverrun)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSimSpeed(b, makespan)
}

// --- Ablations ---

func BenchmarkAblationGeneratorFidelity(b *testing.B) {
	spec := prog.MPMatrix(2, benchMPMatrixN)
	source := exp.DefaultOptions()
	target := exp.DefaultOptions()
	target.Platform.Interconnect = platform.XPipes
	b.Run("reactive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := exp.AblationGenerators(spec, source, target)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rows[0].ErrorPct, "errpct")
		}
	})
}

func BenchmarkAblationArbitration(b *testing.B) {
	spec := prog.MPMatrix(4, benchMPMatrixN)
	for _, pol := range []amba.Policy{amba.RoundRobin, amba.FixedPriority, amba.TDMA} {
		b.Run(pol.String(), func(b *testing.B) {
			opt := exp.DefaultOptions()
			opt.Platform.Bus.Arbitration = pol
			var makespan uint64
			for i := 0; i < b.N; i++ {
				ref, err := exp.RunReference(spec, opt, false)
				if err != nil {
					b.Fatal(err)
				}
				makespan = ref.Makespan
			}
			b.ReportMetric(float64(makespan), "simcycles")
		})
	}
}

func BenchmarkAblationLineSize(b *testing.B) {
	spec := prog.SPMatrix(benchSPMatrixN)
	for _, words := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("%dw", words), func(b *testing.B) {
			opt := exp.DefaultOptions()
			opt.ICache.WordsPerLine = words
			opt.DCache.WordsPerLine = words
			var makespan uint64
			for i := 0; i < b.N; i++ {
				ref, err := exp.RunReference(spec, opt, false)
				if err != nil {
					b.Fatal(err)
				}
				makespan = ref.Makespan
			}
			b.ReportMetric(float64(makespan), "simcycles")
		})
	}
}

func BenchmarkAblationAssociativity(b *testing.B) {
	// Cache associativity's effect on the reference run (DESIGN.md design
	// choice: the paper's caches are unspecified; ours default to
	// direct-mapped).
	spec := prog.SPMatrix(benchSPMatrixN)
	for _, ways := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%dway", ways), func(b *testing.B) {
			opt := exp.DefaultOptions()
			opt.ICache.Ways = ways
			opt.DCache.Ways = ways
			var makespan uint64
			for i := 0; i < b.N; i++ {
				ref, err := exp.RunReference(spec, opt, false)
				if err != nil {
					b.Fatal(err)
				}
				makespan = ref.Makespan
			}
			b.ReportMetric(float64(makespan), "simcycles")
		})
	}
}

func BenchmarkAblationPollGapModel(b *testing.B) {
	// Sensitivity of TG accuracy to the configured poll period: translate
	// with gaps around the measured value and report the cycle error.
	spec := prog.MPMatrix(4, benchMPMatrixN)
	ref, err := exp.RunReference(spec, exp.DefaultOptions(), true)
	if err != nil {
		b.Fatal(err)
	}
	for _, gap := range []uint64{4, 8, 16} {
		b.Run(fmt.Sprintf("%dcyc", gap), func(b *testing.B) {
			cfg := core.DefaultTranslateConfig(nil)
			cfg.PollRanges = []core.PollRange{{Range: noctg.SemRange(), Gap: gap}}
			for _, w := range spec.PollWords {
				cfg.PollRanges = append(cfg.PollRanges,
					core.PollRange{Range: ocp.AddrRange{Base: w, Size: 4}, Gap: gap})
			}
			progs, _, _, err := exp.TranslateAll(spec, ref.Traces, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var errPct float64
			for i := 0; i < b.N; i++ {
				tg, err := exp.RunTG(spec, progs, exp.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				diff := float64(tg.Makespan) - float64(ref.Makespan)
				if diff < 0 {
					diff = -diff
				}
				errPct = 100 * diff / float64(ref.Makespan)
			}
			b.ReportMetric(errPct, "errpct")
		})
	}
}

// --- parallel sweep runner ---

func BenchmarkSweepDefaultGrid(b *testing.B) {
	// The stock 16-configuration grid on one worker vs all host cores —
	// the ratio is the sweep runner's parallel speedup.
	grid := sweep.DefaultGrid()
	points := grid.Expand()
	for _, workers := range []int{1, 0} {
		name := "allcores"
		if workers == 1 {
			name = "1worker"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sweep.Runner{Workers: workers}.Run(points)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range res {
					if r.Err != "" {
						b.Fatalf("point %d: %s", r.ID, r.Err)
					}
				}
			}
			b.ReportMetric(float64(len(points))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkJournaledSweep measures the write-ahead journal's cost over the
// identical plain sweep. The cost is a constant per point — two record
// appends and one fsync, nothing per simulated cycle (the kernel alloc
// guards, TestZeroAlloc and friends, pin the hot path unchanged at
// 0 allocs/op) — so the journaled/plain delta here IS that constant:
// deliberately tiny points make it visible and statistically stable, while
// on a real campaign point (seconds of simulation) the same constant
// amortizes below 1%. The CI smoke gate keeps the delta from regressing.
func BenchmarkJournaledSweep(b *testing.B) {
	grid := sweep.Grid{
		Workloads: []sweep.Workload{{
			Kind: sweep.KindStochastic, Dist: "uniform", Cores: 4,
			Pattern: "uniform", PatternW: 2, PatternH: 2,
			MeanGap: 6, Count: 2000,
		}},
		Fabrics: []sweep.Fabric{{Interconnect: sweep.FabricAMBA}},
		Seeds:   []int64{1, 2},
	}
	points := grid.Expand()
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := sweep.Runner{Workers: 1}.Run(points)
			if err != nil {
				b.Fatal(err)
			}
			if res[0].Err != "" {
				b.Fatal(res[0].Err)
			}
		}
		b.ReportMetric(float64(len(points))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	})
	b.Run("journaled", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			path := filepath.Join(dir, fmt.Sprintf("sweep-%d.journal", i))
			res, _, err := sweep.Runner{Workers: 1}.RunJournaled(points, sweep.JournalConfig{Path: path})
			if err != nil {
				b.Fatal(err)
			}
			if res[0].Err != "" {
				b.Fatal(res[0].Err)
			}
		}
		b.ReportMetric(float64(len(points))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	})
}

// --- phased measurement ---

// BenchmarkPhasedMeasure drives the phased warmup/epoch methodology on an
// open-loop stochastic platform under each kernel: per-epoch registry
// sync/snapshot/reset at forced boundary wake points plus the metric hot
// paths (counters, latency histograms) in steady state. simcycles is
// deterministic, so the CI smoke gate byte-compares it.
func BenchmarkPhasedMeasure(b *testing.B) {
	point := sweep.Point{
		Workload: sweep.Workload{
			Kind: sweep.KindStochastic, Dist: "poisson", Cores: 4,
			Pattern: "uniform", PatternW: 2, PatternH: 2,
			MeanGap: 6, Count: 1 << 30,
		},
		Fabric:        sweep.Fabric{Interconnect: sweep.FabricXPipes, MeshWidth: 4, MeshHeight: 3},
		ClockPeriodNS: 5,
		Seed:          1,
		Measure:       &sweep.Measure{WarmupCycles: 500, EpochCycles: 1000, Epochs: 4},
	}
	for _, kernel := range []platform.KernelMode{platform.KernelStrict, platform.KernelSkip, platform.KernelEvent} {
		b.Run(kernel.String(), func(b *testing.B) {
			var cycles uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sweep.Runner{Workers: 1, Kernel: kernel}.Run([]sweep.Point{point})
				if err != nil {
					b.Fatal(err)
				}
				if res[0].Err != "" {
					b.Fatal(res[0].Err)
				}
				if res[0].Phases == nil || len(res[0].Phases.Epochs) != 4 {
					b.Fatalf("phases = %+v", res[0].Phases)
				}
				cycles = res[0].Engine.Cycles
			}
			b.StopTimer()
			b.ReportMetric(float64(cycles), "simcycles")
			b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Msimcycles/s")
		})
	}
}

// --- kernel micro-benchmarks ---

func BenchmarkEngineTick(b *testing.B) {
	e := sim.NewEngine(sim.Clock{})
	n := 0
	for i := 0; i < 16; i++ {
		e.Add(sim.DeviceFunc(func(uint64) { n++ }))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineSkipIdle measures the skip kernel against strict ticking
// on the workload it targets: TGs sleeping through deep Idle gaps over a
// quiescent bus. The strict/skip Msimcycles/s ratio is the kernel speedup.
func BenchmarkEngineSkipIdle(b *testing.B) {
	src := "MASTER[0,0]\nBEGIN\nstart:\nIdle(100000)\nJump(start)\nIdle(100000)\nHalt\nEND"
	for _, kernel := range []sim.Kernel{sim.KernelStrict, sim.KernelSkip, sim.KernelEvent} {
		b.Run(kernel.String(), func(b *testing.B) {
			const span = 1_000_000 // simulated cycles per iteration
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine(sim.Clock{})
				e.SetKernel(kernel)
				bus := amba.New(amba.Config{}, e.Cycle)
				newBenchRAM(b, bus)
				for c := 0; c < 2; c++ {
					p, err := core.Assemble(src)
					if err != nil {
						b.Fatal(err)
					}
					d, err := core.NewDevice(p, bus.NewMasterPort())
					if err != nil {
						b.Fatal(err)
					}
					e.Add(d)
				}
				e.Add(bus)
				if _, err := e.Run(span, func() bool { return false }); err == nil {
					b.Fatal("idle loop should exhaust the cycle budget")
				}
			}
			b.StopTimer()
			reportSimSpeed(b, span)
		})
	}
}

func BenchmarkTGDeviceIdleTick(b *testing.B) {
	p, err := core.Assemble("MASTER[0,0]\nBEGIN\nstart:\nIdle(1000000)\nJump(start)\nEND")
	if err != nil {
		b.Fatal(err)
	}
	d, err := core.NewDevice(p, idlePort{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Tick(uint64(i))
	}
}

// newTransactionSystem builds the 2-TG platform the transaction-path
// benchmark and the zero-alloc guard tests drive: an endless loop of
// single-word writes, blocking reads and bursts, so every hot path of the
// fabric is exercised.
func newTransactionSystem(tb testing.TB, ic platform.Interconnect) *platform.System {
	tb.Helper()
	src := `MASTER[0,0]
REGISTER addr 0x08000000
REGISTER data 42
BEGIN
start:
	Write(addr, data)
	Read(addr)
	BurstWrite(addr, data, 4)
	BurstRead(addr, 4)
	Jump(start)
END`
	progs := make([]*core.Program, 2)
	for i := range progs {
		p, err := core.Assemble(src)
		if err != nil {
			tb.Fatal(err)
		}
		progs[i] = p
	}
	sys, err := platform.BuildTG(platform.Config{Cores: 2, Interconnect: ic}, progs)
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

// BenchmarkTransactionPath drives the full master→fabric→slave transaction
// loop and reports allocs/op: the steady-state hot path must not allocate
// (TestZeroAllocTransactionPath enforces this precisely).
func BenchmarkTransactionPath(b *testing.B) {
	for _, ic := range []platform.Interconnect{platform.AMBA, platform.XPipes} {
		b.Run(ic.String(), func(b *testing.B) {
			sys := newTransactionSystem(b, ic)
			// Warm the reusable buffers and pools before measuring.
			sys.Engine.RunFor(4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Engine.Step()
			}
		})
	}
}

// --- event kernel: mixed-load benchmarks ---

// mixedLoadBusy builds the saturated master of the mixed-load benchmarks: a
// reactive TG spinning on its branch condition — one instruction retired
// every cycle, the way a translated polling loop busy-waits — with a shared
// memory write every 31 cycles. It is never idle for even one cycle, so
// whole-cycle skipping is impossible for the entire run; the event kernel
// ticks exactly this master (plus the bus around each write) while the 15
// sleepers cost nothing.
func mixedLoadBusy() string {
	var src strings.Builder
	src.WriteString("MASTER[0,0]\nREGISTER addr 0x08000000\nREGISTER data 42\nREGISTER zero 0\nREGISTER one 1\nBEGIN\nstart:\n")
	for i := 0; i < 30; i++ {
		src.WriteString("\tIf zero == one then start\n")
	}
	src.WriteString("\tWrite(addr, data)\n\tJump(start)\nEND")
	return src.String()
}

// mixedLoadBusyDense is the saturated master with back-to-back traffic: an
// endless stream of single-word writes and blocking reads, so the bus is
// granted back-to-back and every stall horizon is shorter than the nap
// threshold — the master and the bus stay awake every cycle and the
// transaction machinery itself bounds the speedup.
const mixedLoadBusyDense = `MASTER[0,0]
REGISTER addr 0x08000000
REGISTER data 42
BEGIN
start:
	Write(addr, data)
	Read(addr)
	Jump(start)
END`

// mixedLoadBusyBurst saturates the bus with 8-beat bursts instead: each
// transfer occupies the bus beyond the nap threshold, so the blocked master
// and the bus both sleep through the occupancy on their reported horizons.
// Every kernel that honours Sleeper horizons collapses those spans — the
// variant measures how much of the burst case skip recovers and how far
// ahead event stays.
const mixedLoadBusyBurst = `MASTER[0,0]
REGISTER addr 0x08000000
REGISTER data 42
BEGIN
start:
	BurstWrite(addr, data, 8)
	BurstRead(addr, 8)
	Jump(start)
END`

// mixedLoadSystem builds the event kernel's target workload: one saturated
// TG hammering the shared memory plus idleMasters TGs sleeping in deep Idle
// loops, all over one AMBA bus. Under strict and skip ticking the busy
// master forces every device to be ticked every cycle; the event kernel
// ticks only the busy master and the bus.
func mixedLoadSystem(tb testing.TB, kernel platform.KernelMode, busy string, idleMasters int) *platform.System {
	tb.Helper()
	idle := "MASTER[0,0]\nBEGIN\nstart:\nIdle(100000)\nJump(start)\nEND"
	progs := make([]*core.Program, 1+idleMasters)
	for i := range progs {
		src := idle
		if i == 0 {
			src = busy
		}
		p, err := core.Assemble(src)
		if err != nil {
			tb.Fatal(err)
		}
		progs[i] = p
	}
	sys, err := platform.BuildTG(platform.Config{Cores: len(progs), Kernel: kernel}, progs)
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

// stopper is a self-timed Sleeper that ends a benchmark run every span
// cycles without the error-path allocation of a budget exhaust: it fires at
// an absolute deadline, re-arms for the next span, and sleeps in between,
// so it never disturbs the kernels' tick elision.
type stopper struct {
	at, span uint64
	fired    bool
}

func (s *stopper) Tick(c uint64) {
	if c >= s.at {
		s.fired = true
		s.at += s.span
	}
}

func (s *stopper) NextWake(now uint64) uint64 {
	if s.at > now {
		return s.at
	}
	return now
}

// take reports and clears the fired flag (the run's completion predicate).
func (s *stopper) take() bool {
	if s.fired {
		s.fired = false
		return true
	}
	return false
}

// benchMixedLoad measures one kernel on a prepared system, span simulated
// cycles per iteration.
func benchMixedLoad(b *testing.B, sys *platform.System, span uint64) {
	st := &stopper{at: sys.Engine.Cycle() + span, span: span}
	sys.Engine.Add(st)
	// Warm the reusable buffers, pools and kernel schedule before measuring.
	if _, err := sys.Engine.RunEvery(4*span, 32, st.take); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Engine.RunEvery(4*span, 32, st.take); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSimSpeed(b, span)
}

// BenchmarkEngineEventMixedLoad is the event kernel's headline benchmark:
// 1 saturated + 15 idle masters on the AMBA bus, where whole-cycle skipping
// is impossible and the strict/skip kernels pay for every idle master every
// cycle. The event/skip Msimcycles/s ratio is the active-set speedup; it
// grows with the idle fraction (see the IdleScaling variant).
func BenchmarkEngineEventMixedLoad(b *testing.B) {
	const span = 100_000
	busy := mixedLoadBusy()
	for _, kernel := range []platform.KernelMode{platform.KernelStrict, platform.KernelSkip, platform.KernelEvent} {
		b.Run(kernel.String(), func(b *testing.B) {
			benchMixedLoad(b, mixedLoadSystem(b, kernel, busy, 15), span)
		})
	}
}

// BenchmarkEngineEventMixedLoadDense is the same mix with back-to-back
// single-word traffic: the bus transaction machinery runs every handful of
// cycles in every kernel, so the event kernel's lead narrows to the cost of
// the elided idle ticks over that shared floor.
func BenchmarkEngineEventMixedLoadDense(b *testing.B) {
	const span = 100_000
	for _, kernel := range []platform.KernelMode{platform.KernelStrict, platform.KernelSkip, platform.KernelEvent} {
		b.Run(kernel.String(), func(b *testing.B) {
			benchMixedLoad(b, mixedLoadSystem(b, kernel, mixedLoadBusyDense, 15), span)
		})
	}
}

// BenchmarkEngineEventMixedLoadBurst is the mix with burst traffic: the
// blocked master and the bus sleep on their reported occupancy horizons
// (ocp.WakeHinter), so the skip kernel recovers most of the gap by
// whole-cycle jumping and the event kernel keeps only a modest lead.
func BenchmarkEngineEventMixedLoadBurst(b *testing.B) {
	const span = 100_000
	for _, kernel := range []platform.KernelMode{platform.KernelStrict, platform.KernelSkip, platform.KernelEvent} {
		b.Run(kernel.String(), func(b *testing.B) {
			benchMixedLoad(b, mixedLoadSystem(b, kernel, mixedLoadBusyBurst, 15), span)
		})
	}
}

// BenchmarkEngineEventIdleScaling sweeps the idle-master count: event-kernel
// throughput should stay roughly flat while skip degrades linearly with the
// device count.
func BenchmarkEngineEventIdleScaling(b *testing.B) {
	const span = 100_000
	busy := mixedLoadBusy()
	for _, idle := range []int{3, 15, 63} {
		for _, kernel := range []platform.KernelMode{platform.KernelSkip, platform.KernelEvent} {
			b.Run(fmt.Sprintf("%didle/%s", idle, kernel), func(b *testing.B) {
				benchMixedLoad(b, mixedLoadSystem(b, kernel, busy, idle), span)
			})
		}
	}
}

// BenchmarkEngineEventHotspot drives the scenario library's problem case on
// the NoC: stochastic masters all targeting the shared memory, one
// injecting nearly back-to-back and the rest sleeping tens of thousands of
// cycles between injections. The network itself is one monolithic device
// that is awake whenever packets are in flight, so the event kernel's edge
// here comes from eliding the sleeping generators and the inter-packet
// gaps.
func BenchmarkEngineEventHotspot(b *testing.B) {
	const span = 20_000
	for _, kernel := range []platform.KernelMode{platform.KernelStrict, platform.KernelSkip, platform.KernelEvent} {
		b.Run(kernel.String(), func(b *testing.B) {
			scfg := stochastic.Config{
				MeanGap: 30_000,
				Count:   1 << 30,
				Seed:    42,
				Ranges:  []ocp.AddrRange{noctg.SharedRange()},
			}
			busyCfg := scfg
			busyCfg.MeanGap = 24
			sys, err := platform.Build(platform.Config{
				Cores:        4,
				Interconnect: platform.XPipes,
				Kernel:       kernel,
			}, func(_ *platform.System, id int, port ocp.MasterPort) platform.Master {
				cfg := scfg
				if id == 0 {
					cfg = busyCfg
				}
				return stochastic.New(id, cfg, port)
			})
			if err != nil {
				b.Fatal(err)
			}
			benchMixedLoad(b, sys, span)
		})
	}
}

// --- sharded execution ---

// newShardScalingSystem builds the shard-scaling workload: a 16×16 mesh
// whose 96 stochastic masters (rows 0–5) run the scenario library's
// hotspot pattern against the slave rows at the top — a weighted slice of
// all traffic converges on one private memory, the remainder spreads
// uniformly. Every transaction crosses the band boundaries, so the
// benchmark measures the windowed protocol with real cut traffic, not an
// embarrassingly parallel split. The traffic is pure request-response
// (reads): a posted-write mix has unbounded queue-depth tails — the
// in-flight maximum creeps forever and no alloc-free steady state exists —
// while blocking reads hard-bound the live state at two packets per
// master, so a short warmup visits every high-water mark.
func newShardScalingSystem(tb testing.TB, shards int) *platform.System {
	tb.Helper()
	const cores = 96 // the memory map tops out below 112 private ranges
	dests := make([]ocp.AddrRange, cores)
	for d := range dests {
		dests[d] = noctg.PrivRange(d)
	}
	weights := make([]float64, cores)
	weights[cores/2] = 0.03 // ~3× the uniform share, under the slave's 0.5 pkt/cycle ceiling
	scfg := stochastic.Config{
		Dist:         stochastic.Poisson,
		MeanGap:      8, // ~0.11 offered txn/cycle per master — load past the 0.1 mark
		ReadFraction: 1,
		Count:        1 << 30,
		Seed:         7,
		Spatial: &stochastic.Spatial{
			Pattern:        stochastic.Hotspot,
			W:              12,
			H:              8,
			Dests:          dests,
			HotspotWeights: weights,
		},
	}
	sys, err := platform.Build(platform.Config{
		Cores:        cores,
		Interconnect: platform.XPipes,
		NoC:          noc.Config{Width: 16, Height: 16},
		Kernel:       platform.KernelEvent,
		Shards:       shards,
	}, func(_ *platform.System, id int, port ocp.MasterPort) platform.Master {
		return stochastic.New(id, scfg, port)
	})
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

// BenchmarkShardScaling measures the sharded runner's throughput at 1, 2
// and 4 shards on the 16×16 hotspot scenario. The simulated results are
// byte-identical across the variants (the shard-determinism gates pin
// that); only wall time may differ, and the N-shard/1-shard Msimcycles/s
// ratio is the parallel speedup on the host. Steady state allocates
// nothing (ReportAllocs must show 0). Only the 1shard variant belongs to
// the CI smoke gate: multi-shard ns/op scales with the runner's core
// count, which benchdiff's single-threaded normalization probe cannot
// cancel.
func BenchmarkShardScaling(b *testing.B) {
	const span = 10_000
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%dshard", shards), func(b *testing.B) {
			sys := newShardScalingSystem(b, shards)
			// Warm up past the transients: packet pools, slave queues and
			// flit buffers all grow to their (structurally bounded)
			// high-water marks before the measured windows run alloc-free.
			sys.Sharded.Advance(5 * span)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if n, _ := sys.Sharded.Advance(span); n != span {
					b.Fatal("hotspot workload finished mid-benchmark")
				}
			}
			b.StopTimer()
			reportSimSpeed(b, span)
		})
	}
}

type idlePort struct{}

func (idlePort) TryRequest(*ocp.Request) bool        { return false }
func (idlePort) TakeResponse() (*ocp.Response, bool) { return nil, false }
func (idlePort) Busy() bool                          { return false }

// sinkPort accepts every request without touching it: the open-loop
// counterpart of idlePort, for driving generators at full rate with zero
// port-side allocation.
type sinkPort struct{}

func (sinkPort) TryRequest(*ocp.Request) bool        { return true }
func (sinkPort) TakeResponse() (*ocp.Response, bool) { return nil, false }
func (sinkPort) Busy() bool                          { return false }

// burstyGenerator builds one arrival-process generator injecting
// open-loop into a sinkPort: posted writes only, an effectively unbounded
// transaction budget, and the arrival model under test. Shared between
// BenchmarkBurstyInjection and the zero-alloc injection guard.
func burstyGenerator(cfg stochastic.Config) *stochastic.Generator {
	cfg.ReadFraction = -1 // posted writes: the injection path alone
	cfg.Count = 1 << 30
	cfg.Ranges = []ocp.AddrRange{{Base: 0, Size: 0x1000}}
	return stochastic.New(0, cfg, sinkPort{})
}

// burstyArrivalConfigs are the arrival models the injection benchmark and
// alloc guard sweep: the MMPP on/off chain, the superposed-Pareto
// self-similar source, and a priority-classed Poisson baseline.
func burstyArrivalConfigs() map[string]stochastic.Config {
	return map[string]stochastic.Config{
		"mmpp": {Seed: 1, MMPP: &stochastic.MMPP{
			StateGaps: []float64{3, 0}, StateDwells: []float64{80, 160}}},
		"selfsim": {Seed: 2, SelfSimilar: &stochastic.SelfSimilar{
			Sources: 16, Hurst: 0.8, OnMean: 50, OffMean: 100, PeakGap: 4}},
		"priority": {Seed: 3, Dist: stochastic.Poisson, MeanGap: 4,
			Classes: []float64{0.5, 0.3, 0.2}},
	}
}

// BenchmarkBurstyInjection measures the arrival-process injection hot
// path: one generator per model running open-loop against an
// instantly-accepting port. The Msimcycles/s metric tracks the per-cycle
// cost of the arrival state machines; allocs/op must stay at zero.
func BenchmarkBurstyInjection(b *testing.B) {
	for _, name := range []string{"mmpp", "selfsim", "priority"} {
		cfg := burstyArrivalConfigs()[name]
		b.Run(name, func(b *testing.B) {
			const span = 100_000
			g := burstyGenerator(cfg)
			e := sim.NewEngine(sim.Clock{})
			e.Add(g)
			e.RunFor(span) // warm the arrival state
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.RunFor(span)
			}
			b.StopTimer()
			reportSimSpeed(b, span)
			if g.Issued() == 0 {
				b.Fatal("generator injected nothing")
			}
		})
	}
}

func newBenchRAM(b *testing.B, bus *amba.Bus) *benchRAM {
	b.Helper()
	r := &benchRAM{}
	if err := bus.MapSlave(r, ocp.AddrRange{Base: 0x1000, Size: 0x1000}); err != nil {
		b.Fatal(err)
	}
	return r
}

// benchRAM is a trivial 1-wait-state slave for micro-benchmarks.
type benchRAM struct{ words [1024]uint32 }

func (r *benchRAM) AccessCycles(req *ocp.Request) uint64 { return uint64(req.Burst) }

func (r *benchRAM) Perform(req *ocp.Request) ocp.Response {
	idx := (req.Addr - 0x1000) / 4
	if req.Cmd.IsWrite() {
		copy(r.words[idx:], req.Data)
		return ocp.Response{}
	}
	data := make([]uint32, req.Burst)
	copy(data, r.words[idx:int(idx)+req.Burst])
	return ocp.Response{Data: data}
}

// --- analytic estimator & adaptive curves ---

// benchCurveSpec is the shared load-latency curve configuration for the
// adaptive-vs-uniform benchmark: the AMBA shared-bus scenario whose knee
// the estimator predicts exactly, with short phased windows so one curve
// stays in benchmark territory.
func benchCurveSpec(mode string) sweep.CurveSpec {
	return sweep.CurveSpec{
		Name: "bench-" + mode,
		Workload: sweep.Workload{
			Kind: sweep.KindStochastic, Dist: "poisson", Cores: 4,
			Pattern: "hotspot", PatternW: 2, PatternH: 2,
			Hotspot: []float64{1, 0, 0, 0}, Count: 300,
		},
		Fabric:  sweep.Fabric{Interconnect: sweep.FabricAMBA},
		Mode:    mode,
		Measure: sweep.Measure{WarmupCycles: 500, EpochCycles: 1000, Epochs: 3},
	}
}

// BenchmarkAnalyticEstimate measures the closed-form estimator's hot path:
// one full point prediction (knee + error bars) plus one load-level solve.
// The path is allocation-free (TestZeroAllocAnalyticEstimate pins it), so
// the number here is pure arithmetic — the cost of replacing a simulated
// load level with a predicted one.
func BenchmarkAnalyticEstimate(b *testing.B) {
	cs := benchCurveSpec(sweep.CurveModeAdaptive)
	est, err := sweep.NewEstimator(cs.Workload, cs.Fabric)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := est.Estimate()
		if est.LatencyAt(e.KneeGap+4) <= 0 {
			b.Fatal("estimator returned a non-positive latency")
		}
	}
}

// BenchmarkAdaptiveCurve measures a whole load-latency curve in both
// traversal modes on identical specs: the adaptive/uniform wall-clock
// ratio is the sweep-level payoff of the analytic seeding (the adaptive
// run simulates only the levels around the predicted knee).
func BenchmarkAdaptiveCurve(b *testing.B) {
	for _, mode := range []string{sweep.CurveModeUniform, sweep.CurveModeAdaptive} {
		b.Run(mode, func(b *testing.B) {
			cs := benchCurveSpec(mode)
			var simulated int
			for i := 0; i < b.N; i++ {
				curves, err := sweep.Runner{Workers: 1}.RunCurves([]sweep.CurveSpec{cs})
				if err != nil {
					b.Fatal(err)
				}
				if curves[0].Saturation == nil {
					b.Fatal("curve found no saturation point")
				}
				simulated = len(curves[0].Points)
				if mode == sweep.CurveModeAdaptive {
					simulated = curves[0].SimulatedLevels
				}
			}
			b.ReportMetric(float64(simulated), "levels-simulated")
		})
	}
}
