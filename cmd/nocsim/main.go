// Command nocsim runs one benchmark on a chosen platform, as a bit- and
// cycle-true (miniARM) simulation or through the full TG flow, optionally
// writing .trc traces and .tgp programs.
//
// Examples:
//
//	nocsim -bench mpmatrix -cores 4 -n 16
//	nocsim -bench des -cores 3 -blocks 16 -interconnect xpipes
//	nocsim -bench spmatrix -mode tg -trace-dir /tmp/trc -tgp-dir /tmp/tgp
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"noctg/internal/core"
	"noctg/internal/exp"
	"noctg/internal/guard"
	"noctg/internal/platform"
	"noctg/internal/prog"
)

func main() {
	var (
		bench     = flag.String("bench", "mpmatrix", "benchmark: spmatrix, cacheloop, mpmatrix, des")
		cores     = flag.Int("cores", 2, "number of processors")
		n         = flag.Int("n", 16, "matrix dimension (spmatrix/mpmatrix)")
		iters     = flag.Int("iters", 30000, "loop iterations (cacheloop)")
		blocks    = flag.Int("blocks", 16, "blocks per core (des)")
		ic        = flag.String("interconnect", "amba", "interconnect: amba or xpipes")
		mode      = flag.String("mode", "arm", "arm (reference) or tg (full TG flow)")
		traceDir  = flag.String("trace-dir", "", "write per-master .trc files here")
		tgpDir    = flag.String("tgp-dir", "", "write per-master .tgp programs here (tg mode)")
		stats     = flag.Bool("stats", false, "print platform statistics")
		guardFlag = flag.Bool("guard", false, "arm the guard watchdogs (deadlock horizon, conservation scans) on the platform")
		runBudget = flag.Duration("run-budget", 0, "wall-clock budget per simulation (implies -guard)")
		onViol    = flag.String("on-violation", "fail", "guard violation handling: fail (exit 1) or record (print diagnostics, exit 0)")
	)
	flag.Parse()
	if *onViol != "record" && *onViol != "fail" {
		fail(fmt.Errorf("-on-violation %q: want record or fail", *onViol))
	}

	var spec *prog.Spec
	switch *bench {
	case "spmatrix":
		spec = prog.SPMatrix(*n)
	case "cacheloop":
		spec = prog.Cacheloop(*cores, *iters)
	case "mpmatrix":
		spec = prog.MPMatrix(*cores, *n)
	case "des":
		spec = prog.DES(*cores, *blocks)
	default:
		fail(fmt.Errorf("unknown benchmark %q", *bench))
	}

	opt := exp.DefaultOptions()
	switch *ic {
	case "amba":
		opt.Platform.Interconnect = platform.AMBA
	case "xpipes":
		opt.Platform.Interconnect = platform.XPipes
	default:
		fail(fmt.Errorf("unknown interconnect %q", *ic))
	}

	if *guardFlag || *runBudget > 0 {
		opt.Guard = guard.Default()
		opt.Guard.RunBudget = *runBudget
	}

	traced := *traceDir != "" || *mode == "tg"
	ref, err := exp.RunReference(spec, opt, traced)
	failViolation(err, *onViol)
	fail(err)
	fmt.Printf("reference (%s, %s, %dP): %d cycles in %v\n",
		spec.Name, opt.Platform.Interconnect, spec.Cores, ref.Makespan, ref.Wall)

	if *traceDir != "" {
		fail(os.MkdirAll(*traceDir, 0o755))
		for i, tr := range ref.Traces {
			path := filepath.Join(*traceDir, fmt.Sprintf("%s_m%d.trc", spec.Name, i))
			f, err := os.Create(path)
			fail(err)
			fail(tr.Write(f))
			fail(f.Close())
			fmt.Printf("wrote %s (%d events)\n", path, len(tr.Events))
		}
	}

	if *mode == "tg" {
		progs, tstats, twall, err := exp.TranslateAll(spec, ref.Traces,
			core.DefaultTranslateConfig(exp.PollRangesFor(spec)))
		fail(err)
		fmt.Printf("translated %d events into %d programs in %v (%d poll loops, %d polls collapsed)\n",
			tstats.Events, len(progs), twall, tstats.PollLoops, tstats.PollReadsCollapsed)
		if *tgpDir != "" {
			fail(os.MkdirAll(*tgpDir, 0o755))
			for i, p := range progs {
				path := filepath.Join(*tgpDir, fmt.Sprintf("%s_m%d.tgp", spec.Name, i))
				f, err := os.Create(path)
				fail(err)
				fail(p.Format(f))
				fail(f.Close())
				fmt.Printf("wrote %s (%d instructions)\n", path, len(p.Insts))
			}
		}
		tg, err := exp.RunTG(spec, progs, opt)
		failViolation(err, *onViol)
		fail(err)
		gain := float64(ref.Wall) / float64(tg.Wall)
		fmt.Printf("TG platform: %d cycles in %v (gain %.2fx, cycle error %+d)\n",
			tg.Makespan, tg.Wall, gain, int64(tg.Makespan)-int64(ref.Makespan))
	}

	if *stats {
		sys := ref.Sys
		if sys.Bus != nil {
			fmt.Printf("bus: busy %d cycles, idle %d, grants %d\n",
				sys.Bus.BusyCycles(), sys.Bus.IdleCycles(), sys.Bus.TotalGrants())
			for i, w := range sys.Bus.WaitCycles() {
				fmt.Printf("  master %d: %d grants, %d wait cycles\n", i, sys.Bus.Grants[i], w)
			}
		}
		if sys.Net != nil {
			fmt.Printf("noc: %d flits routed over %d nodes\n", sys.Net.FlitsRouted(), sys.Net.Nodes())
		}
		acq, fails, rel := sys.Sems.Stats()
		fmt.Printf("semaphores: %d acquires, %d failed polls, %d releases\n", acq, fails, rel)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocsim:", err)
		os.Exit(1)
	}
}

// failViolation handles a guard violation per -on-violation: the structured
// diagnostic is printed either way, and "record" exits 0 where "fail"
// exits 1. Non-violation errors fall through to fail().
func failViolation(err error, onViol string) {
	v, ok := guard.AsViolation(err)
	if !ok {
		return
	}
	fmt.Fprintln(os.Stderr, "nocsim:", err)
	if v.Diag != nil {
		fmt.Fprintln(os.Stderr, v.Diag.Summary())
	}
	if onViol == "fail" {
		os.Exit(1)
	}
	os.Exit(0)
}
