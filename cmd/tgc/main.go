// Command tgc is the TG compiler driver (Section 5's translator +
// assembler): it converts .trc traces into symbolic .tgp programs and .bin
// binary images, assembles hand-written .tgp files, and disassembles .bin
// images back to .tgp.
//
// Examples:
//
//	tgc -trc m0.trc -tgp m0.tgp -bin m0.bin        # translate + assemble
//	tgc -trc m0.trc -timeshift -tgp m0_ts.tgp      # non-reactive baseline
//	tgc -asm hand.tgp -bin hand.bin                # assemble only
//	tgc -dump m0.bin                               # disassemble
package main

import (
	"flag"
	"fmt"
	"os"

	"noctg/internal/core"
	"noctg/internal/layout"
	"noctg/internal/trace"
)

func main() {
	var (
		trcPath   = flag.String("trc", "", "input .trc trace to translate")
		asmPath   = flag.String("asm", "", "input .tgp program to assemble")
		dumpPath  = flag.String("dump", "", "input .bin image to disassemble to stdout")
		tgpOut    = flag.String("tgp", "", "output .tgp path")
		binOut    = flag.String("bin", "", "output .bin path")
		timeshift = flag.Bool("timeshift", false, "disable poll recognition (time-shifting baseline)")
		rewind    = flag.Bool("rewind", false, "end with Jump(start) instead of Halt (free-running TG)")
		pollGap   = flag.Uint64("pollgap", core.DefaultPollGap, "fallback poll period in cycles")
	)
	flag.Parse()

	switch {
	case *dumpPath != "":
		f, err := os.Open(*dumpPath)
		fail(err)
		p, err := core.ReadBin(f)
		fail(f.Close())
		fail(err)
		fail(p.Format(os.Stdout))
	case *trcPath != "":
		f, err := os.Open(*trcPath)
		fail(err)
		tr, err := trace.Parse(f)
		fail(f.Close())
		fail(err)
		cfg := core.TranslateConfig{
			PollRanges:     []core.PollRange{{Range: layout.SemRange()}},
			DefaultPollGap: *pollGap,
			RecognizePolls: !*timeshift,
			Rewind:         *rewind,
		}
		p, stats, err := core.Translate(tr, cfg)
		fail(err)
		fmt.Fprintf(os.Stderr, "tgc: %d events -> %d instructions (%d poll loops, %d polls collapsed, %d clamped cycles)\n",
			stats.Events, len(p.Insts), stats.PollLoops, stats.PollReadsCollapsed, stats.ClampedCycles)
		emit(p, *tgpOut, *binOut)
	case *asmPath != "":
		src, err := os.ReadFile(*asmPath)
		fail(err)
		p, err := core.Assemble(string(src))
		fail(err)
		emit(p, *tgpOut, *binOut)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func emit(p *core.Program, tgpOut, binOut string) {
	if tgpOut != "" {
		f, err := os.Create(tgpOut)
		fail(err)
		fail(p.Format(f))
		fail(f.Close())
	}
	if binOut != "" {
		f, err := os.Create(binOut)
		fail(err)
		fail(p.WriteBin(f))
		fail(f.Close())
	}
	if tgpOut == "" && binOut == "" {
		fail(p.Format(os.Stdout))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tgc:", err)
		os.Exit(1)
	}
}
