// Command tgrepro regenerates the paper's evaluation: Table 2 (accuracy and
// speedup of TG-based simulation), the cross-interconnect .tgp equality
// check, the trace-collection overhead experiment, and the baseline/design
// ablations.
//
// Usage:
//
//	tgrepro -table2 [-sizes quick|default]
//	tgrepro -crosscheck
//	tgrepro -overhead
//	tgrepro -ablation
//	tgrepro -all
package main

import (
	"flag"
	"fmt"
	"os"

	"noctg/internal/amba"
	"noctg/internal/exp"
	"noctg/internal/platform"
	"noctg/internal/prog"
)

func main() {
	var (
		table2     = flag.Bool("table2", false, "regenerate Table 2 (ARM vs TG accuracy and speedup)")
		crosscheck = flag.Bool("crosscheck", false, "cross-interconnect .tgp equality (Section 6, exp. 1)")
		overhead   = flag.Bool("overhead", false, "trace-collection overhead (Section 6, exp. 2)")
		ablation   = flag.Bool("ablation", false, "generator-fidelity and arbitration ablations")
		all        = flag.Bool("all", false, "run every experiment")
		sizesFlag  = flag.String("sizes", "default", "benchmark sizes: quick or default")
	)
	flag.Parse()
	if !*table2 && !*crosscheck && !*overhead && !*ablation && !*all {
		flag.Usage()
		os.Exit(2)
	}

	sizes := exp.DefaultSizes()
	if *sizesFlag == "quick" {
		sizes = exp.QuickSizes()
	}
	opt := exp.DefaultOptions()

	if *table2 || *all {
		fmt.Println("== Table 2: TG vs ARM performance with AMBA ==")
		rows, err := exp.Table2(sizes, opt)
		fail(err)
		fmt.Print(exp.FormatTable2(rows))
		fmt.Println()
	}
	if *crosscheck || *all {
		fmt.Println("== Cross-interconnect .tgp equality (AMBA vs xpipes) ==")
		for _, spec := range []*prog.Spec{
			prog.Cacheloop(2, sizes.CacheloopIters),
			prog.MPMatrix(4, sizes.MPMatrixN),
			prog.DES(3, sizes.DESBlocks),
		} {
			res, err := exp.CrossCheck(spec, opt)
			fail(err)
			verdict := "IDENTICAL"
			if !res.Equal {
				verdict = "DIFFER: " + res.FirstDiff
			}
			fmt.Printf("%-10s %dP: AMBA %d cycles, xpipes %d cycles, programs %s (%d insts)\n",
				res.Bench, res.Cores, res.MakespanA, res.MakespanX, verdict, res.ProgramLen)
		}
		fmt.Println()
	}
	if *overhead || *all {
		fmt.Println("== Trace-collection overhead (MP matrix, 4 processors) ==")
		res, err := exp.MeasureOverhead(prog.MPMatrix(4, sizes.MPMatrixN), opt)
		fail(err)
		fmt.Printf("plain run        : %v\n", res.PlainWall)
		fmt.Printf("with tracing     : %v\n", res.TracedWall)
		fmt.Printf("translation      : %v\n", res.TranslateWall)
		fmt.Printf("trace size       : %d bytes\n", res.TraceBytes)
		fmt.Println()
	}
	if *ablation || *all {
		fmt.Println("== Generator fidelity on a different interconnect (trace AMBA → replay xpipes) ==")
		target := opt
		target.Platform.Interconnect = platform.XPipes
		rows, err := exp.AblationGenerators(prog.MPMatrix(4, sizes.MPMatrixN), opt, target)
		fail(err)
		for _, r := range rows {
			if !r.Completed {
				fmt.Printf("%-10s: DID NOT COMPLETE (ground truth %d cycles)\n", r.Kind, r.GroundTruth)
				continue
			}
			fmt.Printf("%-10s: %d cycles vs ground truth %d (error %.2f%%)\n",
				r.Kind, r.Makespan, r.GroundTruth, r.ErrorPct)
		}
		fmt.Println()
		fmt.Println("== Arbitration-policy ablation (MP matrix, 4 processors) ==")
		arows, err := exp.AblationArbitration(prog.MPMatrix(4, sizes.MPMatrixN), opt,
			[]amba.Policy{amba.RoundRobin, amba.FixedPriority, amba.TDMA})
		fail(err)
		for _, r := range arows {
			fmt.Printf("%-15s: makespan %d cycles, worst master wait %d cycles\n",
				r.Policy, r.Makespan, r.MaxWait)
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tgrepro:", err)
		os.Exit(1)
	}
}
