// Command tgrepro regenerates the paper's evaluation: Table 2 (accuracy and
// speedup of TG-based simulation), the cross-interconnect .tgp equality
// check, the trace-collection overhead experiment, the baseline/design
// ablations, and the Figure 2 experiments. The selected experiment families
// fan out over the sweep runner's worker pool, so the whole evaluation is
// one parallel invocation.
//
// Usage:
//
//	tgrepro -table2 [-sizes quick|default] [-workers N]
//	tgrepro -crosscheck
//	tgrepro -overhead
//	tgrepro -ablation
//	tgrepro -fig2
//	tgrepro -all [-kernel auto|strict|skip|event]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// -cpuprofile/-memprofile write pprof profiles of the evaluation (shared
// flag wiring with tgsweep via internal/prof), so performance work needs no
// code edits.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"noctg/internal/drain"
	"noctg/internal/exp"
	"noctg/internal/guard"
	"noctg/internal/platform"
	"noctg/internal/prof"
	"noctg/internal/sweep"
)

func main() {
	var (
		table2     = flag.Bool("table2", false, "regenerate Table 2 (ARM vs TG accuracy and speedup)")
		crosscheck = flag.Bool("crosscheck", false, "cross-interconnect .tgp equality (Section 6, exp. 1)")
		overhead   = flag.Bool("overhead", false, "trace-collection overhead (Section 6, exp. 2)")
		ablation   = flag.Bool("ablation", false, "generator-fidelity and arbitration ablations")
		fig2       = flag.Bool("fig2", false, "Figure 2 transaction-semantics and reactivity experiments")
		all        = flag.Bool("all", false, "run every experiment")
		sizesFlag  = flag.String("sizes", "default", "benchmark sizes: quick or default")
		workers    = flag.Int("workers", 0, "worker pool size (0 = all host cores)")
		kernelFlag = flag.String("kernel", "auto", "TG-replay simulation kernel: auto (event), strict, skip or event; ARM reference runs always tick strictly")
		guardFlag  = flag.Bool("guard", false, "arm the guard watchdogs (deadlock horizon, conservation scans) on every platform")
		runBudget  = flag.Duration("run-budget", 0, "wall-clock budget per simulation (implies -guard)")
		onViol     = flag.String("on-violation", "fail", "guard violation handling: fail (exit 1) or record (print diagnostics, exit 0)")
	)
	profiles := prof.Register()
	flag.Parse()
	kernel, err := platform.ParseKernel(*kernelFlag)
	fail(err)
	if *onViol != "record" && *onViol != "fail" {
		fail(fmt.Errorf("-on-violation %q: want record or fail", *onViol))
	}
	sel := sweep.PaperSelect{
		Table2:     *table2 || *all,
		CrossCheck: *crosscheck || *all,
		Overhead:   *overhead || *all,
		Ablation:   *ablation || *all,
		Fig2:       *fig2 || *all,
	}
	if sel == (sweep.PaperSelect{}) {
		flag.Usage()
		os.Exit(2)
	}

	sizes := exp.DefaultSizes()
	if *sizesFlag == "quick" {
		sizes = exp.QuickSizes()
	}
	if *workers != 1 && (sel.Table2 || sel.Overhead) {
		fmt.Fprintln(os.Stderr, "tgrepro:", sweep.TimingCaveat)
	}
	opt := exp.DefaultOptions()
	opt.Platform.Kernel = kernel
	if *guardFlag || *runBudget > 0 {
		opt.Guard = guard.Default()
		opt.Guard.RunBudget = *runBudget
	}
	opt.Interrupted = drain.Arm("tgrepro")
	// Profiles are written on the success path only: fail() exits the
	// process without running defers.
	defer profiles.MustStart("tgrepro")()
	res, err := sweep.RunPaperSelect(sizes, opt, *workers, sel)
	if errors.Is(err, sweep.ErrDrained) {
		fmt.Fprintln(os.Stderr, "tgrepro: interrupted — unstarted experiments skipped; re-run to complete them")
		os.Exit(1)
	}
	if v, ok := guard.AsViolation(err); ok {
		fmt.Fprintln(os.Stderr, "tgrepro:", err)
		if v.Diag != nil {
			fmt.Fprintln(os.Stderr, v.Diag.Summary())
		}
		if *onViol == "fail" {
			os.Exit(1)
		}
		return
	}
	fail(err)
	sweep.FormatPaper(os.Stdout, res, sel)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tgrepro:", err)
		os.Exit(1)
	}
}
