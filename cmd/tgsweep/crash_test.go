package main

// Crash-resume integration test: a real tgsweep subprocess is SIGKILLed at
// a seeded-random point of a journaled sweep, resumed with -resume, and its
// final artifacts are byte-compared against an uninterrupted run. This is
// the end-to-end check of the journal contract — the in-process variants
// live in internal/sweep (TestResumeTruncateAnywhere cuts the journal at
// every record boundary; internal/journal truncates at every byte).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"noctg/internal/sweep"
)

// buildTgsweep compiles the command under test once per test binary.
func buildTgsweep(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tgsweep")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building tgsweep: %v\n%s", err, out)
	}
	return bin
}

// crashGrid is sized so a full sweep takes long enough (hundreds of
// milliseconds) that a randomized kill reliably lands mid-campaign, while
// staying cheap enough for -race CI.
func crashGrid(t *testing.T, dir string) string {
	t.Helper()
	g := sweep.Grid{
		Workloads: []sweep.Workload{{
			Kind:     sweep.KindStochastic,
			Dist:     "uniform",
			Cores:    4,
			MeanGap:  6,
			Count:    4000,
			Pattern:  "transpose",
			PatternW: 2,
			PatternH: 2,
		}},
		Fabrics: []sweep.Fabric{
			{Interconnect: sweep.FabricAMBA},
			{Interconnect: sweep.FabricXPipes},
		},
		Seeds: []int64{1, 2, 3},
	}
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runSweep executes the binary to completion and fails the test on a
// nonzero exit.
func runSweep(t *testing.T, bin string, args ...string) []byte {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return out
}

func readArtifacts(t *testing.T, base string) (jsonB, csvB []byte) {
	t.Helper()
	jsonB, err := os.ReadFile(base + ".json")
	if err != nil {
		t.Fatal(err)
	}
	csvB, err = os.ReadFile(base + ".csv")
	if err != nil {
		t.Fatal(err)
	}
	return jsonB, csvB
}

func TestCrashResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills subprocesses")
	}
	bin := buildTgsweep(t)
	dir := t.TempDir()
	grid := crashGrid(t, dir)

	// Uninterrupted reference runs, no journal: also cross-checks that the
	// journaled path changes no artifact bytes. Sharded runs (N >= 1) are
	// their own determinism class versus the legacy single-engine path
	// (shards 0), so each class gets its own baseline.
	base := filepath.Join(dir, "base")
	start := time.Now()
	runSweep(t, bin, "-grid", grid, "-workers", "2", "-out", base)
	wall := time.Since(start)
	wantJSON, wantCSV := readArtifacts(t, base)
	baseSharded := filepath.Join(dir, "base-sharded")
	runSweep(t, bin, "-grid", grid, "-workers", "2", "-shards", "2", "-out", baseSharded)
	wantShardJSON, wantShardCSV := readArtifacts(t, baseSharded)

	// Seeded, so a failure reproduces; the kill lands somewhere in the
	// middle 10–90% of the measured uninterrupted wall time.
	rnd := rand.New(rand.NewSource(9))
	trials := []struct {
		workers string
		kernel  string
		shards  string
	}{
		{"2", "auto", "0"},
		{"1", "strict", "0"},
		{"3", "event", "2"},
	}
	for i, tr := range trials {
		out := filepath.Join(dir, fmt.Sprintf("crash%d", i))
		journal := out + ".journal"
		delay := wall / 10
		if span := int64(8 * wall / 10); span > 0 {
			delay += time.Duration(rnd.Int63n(span))
		}

		args := []string{"-grid", grid, "-workers", tr.workers, "-kernel", tr.kernel,
			"-shards", tr.shards, "-journal", journal, "-out", out}
		cmd := exec.Command(bin, args...)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(delay)
		// SIGKILL: no handler runs, so whatever the journal holds — torn
		// tail included — is exactly what resume must recover from. The
		// process may legitimately have finished already (timing noise);
		// resume must be byte-identical either way.
		_ = cmd.Process.Kill()
		err := cmd.Wait()
		t.Logf("trial %d (workers=%s kernel=%s shards=%s): killed after %v (%v)",
			i, tr.workers, tr.kernel, tr.shards, delay, err)

		stderr := runSweep(t, bin, append(args, "-resume")...)
		if err != nil && !bytes.Contains(stderr, []byte("resumed")) &&
			!bytes.Contains(stderr, []byte("ran")) {
			t.Fatalf("trial %d: resume reported nothing:\n%s", i, stderr)
		}
		wj, wc := wantJSON, wantCSV
		if tr.shards != "0" {
			wj, wc = wantShardJSON, wantShardCSV
		}
		gotJSON, gotCSV := readArtifacts(t, out)
		if !bytes.Equal(gotJSON, wj) {
			t.Fatalf("trial %d: resumed JSON differs from uninterrupted run", i)
		}
		if !bytes.Equal(gotCSV, wc) {
			t.Fatalf("trial %d: resumed CSV differs from uninterrupted run", i)
		}
	}
}
