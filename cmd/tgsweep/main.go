// Command tgsweep runs a parallel experiment sweep: a parameter grid of
// workloads × fabrics × clock periods × seeds fans out over a bounded
// worker pool, one independent simulation engine per configuration, and the
// per-run latency/throughput/flit metrics land in JSON and CSV artifacts
// whose bytes are identical for any -workers value.
//
// Usage:
//
//	tgsweep [-workers N] [-grid FILE|default] [-out BASE|-] [-maxcycles N]
//	        [-kernel auto|strict|skip] [-shards N]
//	        [-journal FILE [-resume]] [-retries N] [-retry-backoff D]
//	        [-point-deadline D] [-cpuprofile FILE] [-memprofile FILE]
//	tgsweep -scenario FILE|library # run declarative traffic scenarios
//	tgsweep -scenario FILE|library -curve # load-latency curves per scenario
//	tgsweep -validate [-scenario FILE|library] # generator fidelity report
//	tgsweep -print-scenarios       # dump the scenario library as a template
//	tgsweep -print-grid            # dump the default grid as a template
//	tgsweep -paper [-sizes quick|default] [-workers N]
//
// With -scenario, the sweep points come from a declarative scenario file
// (internal/scenario JSON: fabric, topology, logical core grid, spatial
// traffic pattern, injection distribution, load/clock/seed axes) instead
// of a raw grid; "library" runs the stock pattern × topology evaluation
// set. The artifacts are the same deterministic JSON/CSV files. Scenario
// files may also declare the phased measurement methodology (warmup,
// epoch_cycles, epochs or ci_target, drain): points then discard the
// warmup transient and report steady-state epoch statistics under a
// "phases" key per result.
//
// With -curve (requires -scenario), each scenario's injection load is
// swept over its curve_gaps axis (or the stock ladder) and measured with
// the phased methodology at every level; the artifacts are load-latency
// curves with the detected saturation point per scenario.
//
// With -validate, no simulation sweep runs: instead each stochastic
// traffic source executes open-loop against the generator-validation
// harness (internal/valid) and the fidelity report — offered load vs. the
// analytic rate, inter-injection CDFs, index of dispersion, Hurst
// estimates, class shares — lands in <out>.json. The default suite is the
// stock source set; with -scenario, sources derive from the scenario
// file's stochastic workloads. A failed fidelity check exits nonzero.
//
// With -paper, the paper's full evaluation (Table 2, the cross-interconnect
// .tgp check, the overhead measurement, the ablations and the Figure 2
// experiments) runs as one parallel invocation instead of a grid sweep.
//
// -kernel selects the simulation kernel for replay runs: "event" (the
// default via "auto") ticks only the devices that are due each cycle,
// "skip" fast-forwards only over cycles in which every device sleeps, and
// "strict" ticks every device every cycle. All three produce byte-identical
// artifacts; strict exists for cross-checking and for timing experiments
// that must not benefit from kernel tricks.
//
// -shards N > 0 runs every ×pipes simulation sharded across N engine
// goroutines (conservative time-window synchronisation, see internal/shard),
// overriding any per-scenario shards setting. Artifacts are byte-identical
// for every N >= 1 — the CI shard-determinism matrix pins this — though
// sharded runs form their own determinism class versus the legacy
// single-engine path (-shards absent or 0). AMBA points ignore the setting.
//
// -journal FILE makes the sweep crash-safe: every completed point is
// appended to an fsync'd write-ahead journal, and -resume skips completed
// points and re-runs only in-flight or unstarted ones — final artifacts
// are byte-identical to an uninterrupted run at any kill point, worker
// count, kernel or shard count. SIGINT/SIGTERM drain gracefully:
// in-flight points finish, the journal is flushed, and the process exits
// nonzero with a resume hint.
//
// -retries N retries points whose failure classifies as transient (run
// budget, barrier stall, worker panic) up to N attempts with exponential
// -retry-backoff, dropping to the strict kernel and a single shard on the
// final attempt; deterministic failures (deadlock, conservation) are
// quarantined immediately as failed points. -point-deadline bounds each
// attempt's wall clock through the guard run budget.
//
// -cpuprofile/-memprofile write
// pprof profiles of the sweep (shared flag wiring with tgrepro via
// internal/prof) so performance work needs no code edits.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"noctg/internal/drain"
	"noctg/internal/exp"
	"noctg/internal/guard"
	"noctg/internal/platform"
	"noctg/internal/prof"
	"noctg/internal/scenario"
	"noctg/internal/sweep"
)

func main() {
	var (
		workers    = flag.Int("workers", 0, "worker pool size (0 = all host cores)")
		gridPath   = flag.String("grid", "default", "grid JSON file, or \"default\" for the stock 16-point sweep")
		scenPath   = flag.String("scenario", "", "scenario JSON file, or \"library\" for the stock pattern×topology set")
		out        = flag.String("out", "results", "output basename (<out>.json and <out>.csv), or \"-\" for JSON on stdout")
		maxCycles  = flag.Uint64("maxcycles", 0, "override the per-run simulated-cycle budget")
		printGrid  = flag.Bool("print-grid", false, "print the default grid JSON and exit")
		printScen  = flag.Bool("print-scenarios", false, "print the scenario library JSON and exit")
		curve      = flag.Bool("curve", false, "sweep injection load per scenario and emit load-latency curves (requires -scenario)")
		curveMode  = flag.String("curve-mode", "", "curve traversal for every -curve scenario: uniform (simulate every level) or adaptive (seed from the analytic knee, simulate only around it); empty keeps each scenario's curve_mode")
		analyticF  = flag.Bool("analytic", false, "analytic pre-pass: stochastic points the closed-form model brackets confidently are estimated instead of simulated (recorded with \"estimated\": true), and the predictions land in <out>.analytic.json")
		paper      = flag.Bool("paper", false, "run the paper's experiments as one parallel invocation")
		validate   = flag.Bool("validate", false, "run the generator-validation harness and write a fidelity report instead of sweeping")
		sizesFlag  = flag.String("sizes", "default", "benchmark sizes for -paper: quick or default")
		kernelFlag = flag.String("kernel", "auto", "simulation kernel: auto (event for replay), strict, skip or event")
		shards     = flag.Int("shards", 0, "shard every ×pipes simulation across N engine goroutines (0 = legacy single engine)")
		guardFlag  = flag.Bool("guard", false, "arm the guard watchdogs (deadlock horizon, conservation scans, barrier-stall bound) on every point")
		runBudget  = flag.Duration("run-budget", 0, "wall-clock budget per point (implies -guard); an exceeded point fails with a run-budget violation")
		onViol     = flag.String("on-violation", "record", "guard violation handling: record (failed point, grid continues, exit 0) or fail (same artifacts, exit 1)")
		journalF   = flag.String("journal", "", "write-ahead journal file: every completed point is fsync'd so a crashed or interrupted sweep resumes with -resume")
		resume     = flag.Bool("resume", false, "resume the -journal file, skipping completed points (artifacts come out byte-identical to an uninterrupted run)")
		retries    = flag.Int("retries", 0, "max attempts per point: transient failures (run budget, barrier stall, worker panic) retry with backoff, falling back to the strict kernel and one shard on the last attempt (0/1 = no retries)")
		retryBack  = flag.Duration("retry-backoff", 0, "base delay before a retry, doubling per attempt")
		deadline   = flag.Duration("point-deadline", 0, "wall-clock deadline per point attempt (rides the guard run budget; a blown deadline is transient and retried)")
	)
	profiles := prof.Register()
	flag.Parse()

	kernel, err := platform.ParseKernel(*kernelFlag)
	fail(err)
	fail(sweep.ValidateShards(*shards))
	gcfg, err := guardConfig(*guardFlag, *runBudget, *onViol)
	fail(err)
	rpol, err := retryPolicy(*retries, *retryBack, *deadline)
	fail(err)
	if *resume && *journalF == "" {
		fail(fmt.Errorf("-resume requires -journal FILE"))
	}
	switch *curveMode {
	case "", sweep.CurveModeUniform, sweep.CurveModeAdaptive:
	default:
		fail(fmt.Errorf("-curve-mode %q: want uniform or adaptive", *curveMode))
	}

	// Profiles are written on the success path only: fail() exits the
	// process without running defers.
	defer profiles.MustStart("tgsweep")()

	if *printGrid {
		g := sweep.DefaultGrid()
		pts := g.Expand()
		fmt.Fprintf(os.Stderr, "default grid: %d points\n", len(pts))
		fail(writeJSONIndent(os.Stdout, g))
		return
	}
	if *printScen {
		specs := scenario.Library()
		printPredictions(specs)
		fail(writeJSONIndent(os.Stdout, specs))
		return
	}
	if *paper {
		runPaper(*sizesFlag, *workers, kernel, *shards)
		return
	}
	if *validate {
		runValidate(*scenPath, *workers, *kernelFlag, *out)
		return
	}

	var points []sweep.Point
	switch {
	case *scenPath != "":
		specs := scenario.Library()
		if *scenPath != "library" {
			f, err := os.Open(*scenPath)
			fail(err)
			specs, err = scenario.Parse(f)
			f.Close()
			fail(err)
		}
		if *curve {
			if *journalF != "" {
				fail(fmt.Errorf("-journal supports grid/scenario sweeps, not -curve"))
			}
			runCurves(specs, *curveMode, *workers, *maxCycles, *out, kernel, *shards, gcfg, rpol, *onViol)
			return
		}
		var err error
		points, err = scenario.Points(specs)
		fail(err)
		fmt.Fprintf(os.Stderr, "tgsweep: %d scenarios\n", len(specs))
	default:
		if *curve {
			fail(fmt.Errorf("-curve requires -scenario FILE|library"))
		}
		grid := sweep.DefaultGrid()
		if *gridPath != "default" {
			f, err := os.Open(*gridPath)
			fail(err)
			grid, err = sweep.ParseGrid(f)
			f.Close()
			fail(err)
		}
		points = grid.Expand()
	}
	if *analyticF {
		marked := 0
		for i := range points {
			if points[i].Workload.Kind == sweep.KindStochastic {
				points[i].Analytic = true
				marked++
			}
		}
		fmt.Fprintf(os.Stderr, "tgsweep: analytic pre-pass armed on %d/%d points\n", marked, len(points))
	}
	fmt.Fprintf(os.Stderr, "tgsweep: %d configurations, %d workers\n", len(points), *workers)

	r := sweep.Runner{Workers: *workers, MaxCycles: *maxCycles, Kernel: kernel, Shards: *shards, Guard: gcfg, Retry: rpol}
	start := time.Now()
	var results []sweep.Result
	if *journalF != "" {
		r.Interrupted = drain.Arm("tgsweep")
		var status sweep.JournalStatus
		results, status, err = r.RunJournaled(points, sweep.JournalConfig{Path: *journalF, Resume: *resume})
		if status.Torn {
			fmt.Fprintf(os.Stderr, "tgsweep: journal had a torn tail (crash signature); truncated and resumed\n")
		}
		if errors.Is(err, sweep.ErrDrained) {
			fmt.Fprintf(os.Stderr, "tgsweep: interrupted: %d resumed, %d ran, %d pending\n",
				status.Resumed, status.Ran, status.Skipped)
			fmt.Fprintf(os.Stderr, "tgsweep: journal flushed; continue with: tgsweep -journal %s -resume ...\n", *journalF)
			os.Exit(1)
		}
		fail(err)
		if status.Resumed > 0 {
			fmt.Fprintf(os.Stderr, "tgsweep: resumed %d completed points from %s, ran %d\n",
				status.Resumed, *journalF, status.Ran)
		}
	} else {
		results, err = r.Run(points)
		fail(err)
	}
	wall := time.Since(start)

	failed, violated := 0, 0
	for _, r := range results {
		if r.Err != "" {
			failed++
			fmt.Fprintf(os.Stderr, "tgsweep: point %d (%s @ %s): %s\n", r.ID, r.Workload, r.Fabric, r.Err)
		}
		if r.Violation != nil {
			violated++
			if r.Violation.Diag != nil {
				fmt.Fprintln(os.Stderr, "  "+r.Violation.Diag.Summary())
			}
		}
	}
	fmt.Fprintf(os.Stderr, "tgsweep: %d/%d points ok in %v\n", len(results)-failed, len(results), wall.Round(time.Millisecond))
	if *analyticF {
		estimated := 0
		for _, r := range results {
			if r.Estimated {
				estimated++
			}
		}
		fmt.Fprintf(os.Stderr, "tgsweep: analytic pre-pass estimated %d/%d points (simulated %d)\n",
			estimated, len(results), len(results)-estimated)
	}

	if *out == "-" {
		fail(sweep.WriteJSON(os.Stdout, results))
		exitViolations(violated, *onViol)
		return
	}
	fail(sweep.WriteArtifacts(*out, results))
	fmt.Fprintf(os.Stderr, "tgsweep: wrote %s.json and %s.csv\n", *out, *out)
	if *analyticF {
		rep := sweep.AnalyticReport(points)
		f, err := os.Create(*out + ".analytic.json")
		fail(err)
		fail(rep.WriteJSON(f))
		fail(f.Close())
		fmt.Fprintf(os.Stderr, "tgsweep: wrote %s.analytic.json (%d predictions)\n", *out, len(rep.Entries))
	}
	exitViolations(violated, *onViol)
}

// printPredictions renders the closed-form prediction per scenario — the
// zero-load latency and saturation knee, no simulation — as a table on
// stderr, leaving stdout pure JSON for piping.
func printPredictions(specs []scenario.Spec) {
	pts, err := scenario.Points(specs)
	if err != nil {
		return
	}
	// One representative point per scenario: the first point of each
	// scenario's expansion carries its lightest configured load.
	byLabel := make(map[string]sweep.Point)
	var labels []string
	for _, p := range pts {
		key := p.Workload.Label() + " @ " + p.Fabric.Label()
		if _, ok := byLabel[key]; !ok {
			byLabel[key] = p
			labels = append(labels, key)
		}
	}
	tw := tabwriter.NewWriter(os.Stderr, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "scenario\tzero-load lat\tknee gap\tknee offered\tsat ceiling\n")
	fmt.Fprintf(tw, "\t(cycles)\t(cycles)\t(txn/kcycle)\t(txn/kcycle)\n")
	for _, key := range labels {
		p := byLabel[key]
		est, err := sweep.NewEstimator(p.Workload, p.Fabric)
		if err != nil {
			fmt.Fprintf(tw, "%s\t-\t-\t-\t-\n", key)
			continue
		}
		e := est.Estimate()
		// The continuous knee: resource saturation when the bottleneck
		// fills first, the marginal-throughput knee when the closed-loop
		// population self-limits before any resource does.
		kg := sweep.PredictedKneeGap(est)
		knee := fmt.Sprintf("%.1f", kg)
		offered := fmt.Sprintf("%.1f", float64(est.Spec().Traffic.Masters)*1000/(kg+1))
		fmt.Fprintf(tw, "%s\t%.1f\t%s\t%s\t%.1f\n", key, e.ZeroLoadLatency, knee, offered, e.SatThroughputTPK)
	}
	tw.Flush()
}

// guardConfig resolves the -guard/-run-budget/-on-violation flags into a
// runner guard configuration (nil = unguarded).
func guardConfig(guardOn bool, budget time.Duration, onViol string) (*guard.Config, error) {
	if onViol != "record" && onViol != "fail" {
		return nil, fmt.Errorf("-on-violation %q: want record or fail", onViol)
	}
	if budget < 0 {
		return nil, fmt.Errorf("-run-budget %v: want a non-negative duration", budget)
	}
	if !guardOn && budget == 0 {
		return nil, nil
	}
	c := guard.Default()
	c.RunBudget = budget
	return &c, nil
}

// exitViolations turns recorded violations into the process exit status
// under -on-violation fail. Artifacts are already on disk at this point:
// a failing sweep still leaves its (deterministic) partial results behind.
func exitViolations(violated int, onViol string) {
	if violated == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "tgsweep: %d points failed with guard violations\n", violated)
	if onViol == "fail" {
		os.Exit(1)
	}
}

// retryPolicy resolves the -retries/-retry-backoff/-point-deadline flags
// into a runner retry policy (nil = single attempt, no deadline).
func retryPolicy(retries int, backoff, deadline time.Duration) (*sweep.RetryPolicy, error) {
	if retries == 0 && backoff == 0 && deadline == 0 {
		return nil, nil
	}
	p := &sweep.RetryPolicy{
		MaxAttempts: retries,
		BackoffMS:   int(backoff / time.Millisecond),
		DeadlineMS:  int(deadline / time.Millisecond),
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// runCurves sweeps each scenario's injection load and writes load-latency
// curve artifacts (<out>.json / <out>.csv, or JSON on stdout with "-").
func runCurves(specs []scenario.Spec, mode string, workers int, maxCycles uint64, out string, kernel platform.KernelMode, shards int, gcfg *guard.Config, rpol *sweep.RetryPolicy, onViol string) {
	css, err := scenario.Curves(specs)
	fail(err)
	if skipped := len(specs) - len(css); skipped > 0 {
		fmt.Fprintf(os.Stderr, "tgsweep: %d arrival-process scenarios have no load axis to curve; skipped\n", skipped)
	}
	if mode != "" {
		for i := range css {
			css[i].Mode = mode
		}
	}
	levels := 0
	for _, cs := range css {
		levels += len(cs.Gaps)
		if len(cs.Gaps) == 0 {
			levels += len(sweep.DefaultCurveGaps)
		}
	}
	fmt.Fprintf(os.Stderr, "tgsweep: %d curves (%d load levels), %d workers\n", len(css), levels, workers)
	start := time.Now()
	curves, err := sweep.Runner{Workers: workers, MaxCycles: maxCycles, Kernel: kernel, Shards: shards, Guard: gcfg, Retry: rpol}.RunCurves(css)
	fail(err)
	sat := 0
	for _, c := range curves {
		if c.Saturation != nil {
			sat++
			fmt.Fprintf(os.Stderr, "tgsweep: %s saturates at gap %g (%.1f txn/kcycle)\n",
				c.Name, c.Saturation.MeanGap, c.Saturation.ThroughputTPK)
		} else {
			fmt.Fprintf(os.Stderr, "tgsweep: %s shows no saturation on its load axis\n", c.Name)
		}
		if c.Mode == sweep.CurveModeAdaptive {
			fmt.Fprintf(os.Stderr, "tgsweep: %s adaptive: %d levels simulated, %d estimated\n",
				c.Name, c.SimulatedLevels, c.EstimatedLevels)
		}
	}
	fmt.Fprintf(os.Stderr, "tgsweep: %d/%d curves saturated in %v\n", sat, len(curves), time.Since(start).Round(time.Millisecond))
	violated := 0
	for _, c := range curves {
		for _, p := range c.Points {
			// Violation errors stringify with the guard prefix; the curve
			// artifact keeps only the flat message per level.
			if strings.HasPrefix(p.Err, "guard:") {
				violated++
			}
		}
	}
	if out == "-" {
		fail(sweep.WriteCurvesJSON(os.Stdout, curves))
		exitViolations(violated, onViol)
		return
	}
	fail(sweep.WriteCurveArtifacts(out, curves))
	fmt.Fprintf(os.Stderr, "tgsweep: wrote %s.json and %s.csv\n", out, out)
	exitViolations(violated, onViol)
}

// runPaper executes the whole evaluation in parallel and prints the same
// reports as the sequential tgrepro harness. The kernel selection applies
// to TG-replay runs only; ARM reference runs always tick strictly. The
// shard count likewise reaches only ×pipes TG-replay platforms (AMBA and
// reference builds ignore it).
func runPaper(sizesFlag string, workers int, kernel platform.KernelMode, shards int) {
	sizes := exp.DefaultSizes()
	if sizesFlag == "quick" {
		sizes = exp.QuickSizes()
	}
	if workers != 1 {
		fmt.Fprintln(os.Stderr, "tgsweep:", sweep.TimingCaveat)
	}
	opt := exp.DefaultOptions()
	opt.Platform.Kernel = kernel
	opt.Platform.Shards = shards
	start := time.Now()
	res, err := sweep.RunPaper(sizes, opt, workers)
	fail(err)
	sweep.FormatPaper(os.Stdout, res, sweep.AllPaper())
	fmt.Fprintf(os.Stderr, "tgsweep: paper evaluation in %v\n", time.Since(start).Round(time.Millisecond))
}

func writeJSONIndent(f *os.File, v any) error {
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tgsweep:", err)
		os.Exit(1)
	}
}
