package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"noctg/internal/journal"
	"noctg/internal/scenario"
	"noctg/internal/sim"
	"noctg/internal/valid"
)

// validateKernel maps the -kernel flag onto a concrete simulation kernel
// for open-loop validation runs. The fidelity report is byte-identical for
// every choice (the harness pins all kernels to the same cycle schedule),
// so "auto" simply takes the event kernel like replay runs do.
func validateKernel(flag string) sim.Kernel {
	switch flag {
	case "strict":
		return sim.KernelStrict
	case "skip":
		return sim.KernelSkip
	}
	return sim.KernelEvent
}

// runValidate executes the generator-validation harness: the stock
// fidelity suite by default, or sources derived from a scenario file's
// stochastic workloads with -scenario. The report lands in <out>.json (or
// on stdout with "-"); any failed fidelity check exits nonzero.
func runValidate(scenPath string, workers int, kernelFlag, out string) {
	kernel := validateKernel(kernelFlag)
	sources := valid.StockSources()
	if scenPath != "" {
		specs := scenario.Library()
		if scenPath != "library" {
			f, err := os.Open(scenPath)
			fail(err)
			specs, err = scenario.Parse(f)
			f.Close()
			fail(err)
		}
		pts, err := scenario.Points(specs)
		fail(err)
		sources = sources[:0]
		seen := map[string]bool{}
		skipped := 0
		for _, p := range pts {
			s, ok := valid.FromPoint(p)
			if !ok {
				skipped++
				continue
			}
			if seen[s.Name] {
				continue // same workload on another fabric: same open-loop source
			}
			seen[s.Name] = true
			sources = append(sources, s)
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "tgsweep: %d points have no analytic spec, skipped\n", skipped)
		}
		if len(sources) == 0 {
			fail(fmt.Errorf("no validatable stochastic workloads in %s", scenPath))
		}
	}

	fmt.Fprintf(os.Stderr, "tgsweep: validating %d sources, %d workers, %v kernel\n",
		len(sources), workers, kernel)
	start := time.Now()
	rep := valid.Validate(sources, kernel, workers)
	checks := 0
	for _, s := range rep.Sources {
		checks += len(s.Checks)
		for _, c := range s.Checks {
			if !c.Pass {
				fmt.Fprintf(os.Stderr, "tgsweep: FAIL %s %s: %g outside [%g, %g]\n",
					s.Source, c.Name, c.Value, c.Low, c.High)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "tgsweep: %d fidelity checks in %v\n",
		checks, time.Since(start).Round(time.Millisecond))

	if out == "-" {
		fail(rep.WriteJSON(os.Stdout))
	} else {
		var buf bytes.Buffer
		fail(rep.WriteJSON(&buf))
		fail(journal.AtomicWrite(out+".json", buf.Bytes()))
		fmt.Fprintf(os.Stderr, "tgsweep: wrote %s.json\n", out)
	}
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "tgsweep: generator validation FAILED")
		os.Exit(1)
	}
}
