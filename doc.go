// Package noctg is a Go reproduction of "A Network Traffic Generator Model
// for Fast Network-on-Chip Simulation" (Mahadevan, Angiolini, Storgaard,
// Olsen, Sparsø, Madsen — DATE 2005): a complete MPARM-like cycle-true
// MPSoC simulation platform, and on top of it the paper's reactive Traffic
// Generator (TG) flow that replaces bit- and cycle-true IP cores with tiny
// trace-programmed processors for 2–5× faster interconnect design-space
// exploration at ≈100% cycle accuracy.
//
// The flow, end to end:
//
//	bench := noctg.MPMatrix(4, 16)                     // an SPMD workload
//	ref, _ := noctg.RunReference(bench, opt, true)     // cycle-true ARM run, traced
//	progs, _, _, _ := noctg.TranslateAll(bench, ref.Traces,
//	        noctg.DefaultTranslateConfig(noctg.PollRangesFor(bench)))
//	tg, _ := noctg.RunTG(bench, progs, opt)            // TGs replace the cores
//	// tg.Makespan ≈ ref.Makespan, tg.Wall ≪ ref.Wall
//
// The package is a facade over the implementation packages under internal/:
// simulation kernel (sim), OCP transaction layer (ocp), memories and
// hardware semaphores (mem), AMBA AHB-style bus (amba), ×pipes-style
// wormhole NoC (noc), caches (cache), the miniARM ISS and its assembler
// (cpu), the Table 2 benchmarks (prog), the .trc trace format (trace), the
// TG instruction set / translator / device (core), baseline generators
// (replay, stochastic), platform assembly (platform), the experiment
// harness (exp) and the parallel sweep runner (sweep). See DESIGN.md for
// the system inventory and EXPERIMENTS.md for measured-vs-paper results.
//
// Design-space sweeps run in parallel through the sweep API: a SweepGrid
// (workloads × fabrics × clock periods × seeds) expands into independent
// configurations, each simulated on its own engine by a bounded worker
// pool, with deterministic JSON/CSV artifacts — byte-identical for any
// worker count:
//
//	grid := noctg.DefaultGrid()
//	results, _ := noctg.SweepRunner{Workers: 8}.Run(grid.Expand())
//	noctg.WriteSweepCSV(os.Stdout, results)
//
// The cmd/tgsweep CLI wraps the same flow (-grid, -workers, -out), and
// RunPaper regenerates the paper's whole evaluation as one parallel
// invocation.
//
// # Spatial traffic patterns and scenarios
//
// Stochastic masters pair a temporal Dist (when to inject) with a spatial
// pattern (where to send): UniformRandom, Transpose, BitComplement,
// BitReverse, Hotspot and NearestNeighbor, the classic NoC evaluation set.
// Patterns are defined over the logical W×H grid of masters — generator i
// is node (i mod W, i div W) — and each logical destination d maps to core
// d's private memory through the platform address map, so the same
// scenario runs unchanged on the bus, the mesh and the torus. Semantics
// worth knowing: Transpose requires a square grid and maps diagonal nodes
// to themselves; the bit patterns require a power-of-two node count;
// Hotspot weights must sum to at most 1 with the remainder spread
// uniformly over unweighted nodes (excluding the source unless AllowSelf);
// NearestNeighbor wraps at the logical grid edges. Randomized patterns
// never draw the source unless AllowSelf is set. A ScenarioSpec bundles
// pattern, fabric, topology and the load/clock/seed axes into a JSON
// document executable via ScenarioPoints + SweepRunner or tgsweep
// -scenario; the ×pipes torus adds wrap-around links with shortest-path
// dimension-ordered routing and dateline virtual channels for ring
// deadlock freedom.
//
// # Arrival processes and generator validation
//
// Beyond the i.i.d. gap distributions (Dist), a stochastic workload can
// carry a stateful arrival process as its temporal model: an MMPPConfig —
// a cyclic Markov chain of states, each with its own mean gap (0 = silent)
// and exponential or deterministic dwell time, the classic on/off burst
// model — or a SelfSimilarConfig, which superposes Pareto on/off stations
// (shape α = 3 − 2H) into long-range-dependent traffic with a target Hurst
// exponent. Orthogonally, Classes weights draw a per-transaction message
// class: the request carries the tag, fabrics forward it untouched and
// arbitrate class-blind, and completed transactions are counted per class.
//
// Arrival-process semantics worth knowing: processes evolve on an exact
// float64 virtual clock and discretize by flooring event epochs, so
// rounding errors telescope instead of accumulating — a continuous process
// of rate λ injects at exactly λ/(1+λ) transactions per cycle once the
// one-cycle acceptance handshake is counted. Draws come from the
// generator's seeded stream only (determinism class: same seed, same
// schedule, on every kernel and shard count), and classless configurations
// consume the exact legacy stream, so adding the feature changed no
// golden artifact. In grids and scenarios the process rides the "arrival"
// axis (mutually exclusive with dist/mean_gap, and without a mean-gap load
// axis: the load lives in the process parameters).
//
// The generator-validation harness (internal/valid, tgsweep -validate)
// keeps these models honest: every source runs open-loop against an
// instantly-accepting capture port and its stream is checked against
// analytic expectations — offered load within the 95% Student-t CI of the
// spec rate, inter-injection times against exact discretized CDFs
// (Kolmogorov–Smirnov), index of dispersion against the finite-window
// MMPP variance-time curve, aggregate-variance Hurst estimates, and χ²
// class shares. The fidelity report (ValidationReport JSON) is
// byte-identical across kernels and worker counts, so the whole suite
// runs as deterministic CI tests rather than flaky statistics.
//
// # Analytic estimation and adaptive sweeps
//
// A closed-form queueing estimator (internal/analytic, surfaced as
// AnalyticEstimator) predicts a stochastic configuration's operating
// corner without simulating it: contention-free zero-load latency from
// the fabric's pipeline constants and DOR route lengths, per-resource
// occupancy (bus, links, slave ports) from the destination distribution,
// the saturation knee from the bottleneck's demand, and below-knee mean
// latency from a Schweitzer approximate-MVA fixed point over the closed
// population of masters, with the gap distribution's SCV scaling the
// waiting term. Model assumptions, and where they bite: single-beat
// transactions; posted writes charged to resource occupancy but not the
// issuing master's own latency (so heavy-write self-interference is
// underpredicted by ~10-15%); independence across resources (weakest
// under extreme destination skew); renewal arrivals (MMPP/self-similar
// sources enter only through their gap SCV). Each Estimate carries
// structural error bars (KneeRelErr, LatencyRelErr) that widen with
// burstiness and skew, and a validity floor (ValidMinGap) below which
// LatencyAt returns the closed-loop asymptote rather than a steady-state
// mean. Like the fabrics themselves, the model is class-blind: message
// classes shape injection only, Request.Class is forwarded untouched and
// never arbitrated on (see ROADMAP, class-aware arbitration), so every
// class shares one predicted latency and the per-class split is an
// injection-mix share.
//
// The sweep layer spends these predictions in three places. Curve runs
// (CurveModeAdaptive, tgsweep -curve-mode adaptive) seed their load axis
// from the knee the saturation detector would find on the model's own
// curve, simulate a handful of levels around it plus the axis endpoints,
// and golden-section the bracket until the detected knee is pinned to one
// ladder step — skipped levels are recorded as estimated points, never
// dropped, and the cross-validation suite holds the detected knee within
// one step of a uniform traversal at 40%+ fewer simulated levels. Grid
// sweeps (GridSpec.Analytic, tgsweep -analytic) estimate points the model
// brackets confidently — far from the predicted knee, error bars included
// — and simulate the rest; estimated results are flagged ("estimated":
// true), carry the full prediction, and key the journal distinctly, so
// analytic and simulated campaigns never share resume state. And tgsweep
// -print-scenarios tables each scenario's predicted zero-load latency and
// knee without running anything. All predictions are pure functions of
// the configuration: artifacts stay byte-identical across kernels, worker
// counts and shard counts, and the estimator's hot path allocates nothing.
//
// # Simulation kernels
//
// Three cycle-advance strategies drive every platform
// (PlatformConfig.Kernel, tgsweep/tgrepro -kernel): the strict kernel
// ticks every device on every cycle; the idle-skipping kernel jumps the
// cycle counter over spans in which every device has declared itself
// asleep (a TG deep in an Idle, a drained interconnect); and the
// event-driven kernel keeps a per-device wake schedule and each cycle
// ticks only the devices that are due, so its per-cycle cost scales with
// the awake set rather than the core count (one saturated master among
// many idle ones no longer forces full-platform ticking). The contracts
// behind them: a Sleeper's NextWake is a strict "will not act before"
// promise that holds even while the device is not being ticked; devices
// stimulated from outside their own Tick (interconnects receiving
// TryRequest) fire an engine wake hook at the moment of stimulus; and
// ports can bound a blocked master's next possible progress (ocp
// WakeHinter), letting masters sleep through known transfer occupancy
// instead of polling. Platform KernelAuto resolves to the event kernel
// for TG and clone replay builders and to strict everywhere else; skip
// remains selectable for cross-checking and as the simpler fallback, and
// any platform containing a non-Sleeper device silently degrades to
// strict ticking.
//
// All three produce identical simulated results — the differential tests
// assert byte-identical sweep artifacts across the full kernel matrix.
// ARM reference runs always tick strictly: the paper's reported ARM-vs-TG
// speedup comes from the TG model doing less work per cycle, and
// measuring the reference on a kernel that elides idle cycles would
// understate the ARM cost and corrupt the Table 2 Gain column.
// Speedup-fidelity, in short: kernel tricks accelerate the reproduction,
// but never the baseline the paper's claims are calibrated against.
//
// The three kernels pick which devices to tick; the sharded run mode
// (PlatformConfig.Shards, tgsweep -shards, internal/shard) additionally
// picks where: the ×pipes fabric is partitioned into contiguous row
// bands, each band's routers, masters and slaves advance on their own
// engine goroutine under the chosen kernel, and the shards synchronise
// with conservative time windows bounded by the same NextWake promise the
// kernels rely on. Cross-shard flits move through preallocated cut-link
// rings at window boundaries with uncut-link timing, so any shard count —
// including one — computes byte-identical artifacts under every kernel
// (the CI shard-determinism matrix pins shards {1,2,4,8} × kernels
// {strict,skip,event}). Sharded runs form their own determinism class
// versus the legacy single-engine path (Shards=0), which remains
// byte-unchanged from before sharding existed.
//
// # Phased measurement
//
// Every platform carries a unified stats registry (StatsRegistry): devices
// register their counters and histograms once under hierarchical names,
// and measurement code syncs, snapshots and resets the whole population at
// phase boundaries. On top of it, runs can follow the steady-state
// methodology NoC evaluations expect — a warmup window whose statistics
// are discarded, measurement epochs (fixed count, or adaptive until the
// relative 95% CI half-width of the per-epoch request-latency means
// reaches ci_target), and a bounded drain window (SweepMeasure on a grid
// or point, or the scenario fields warmup/epoch_cycles/epochs/ci_target/
// drain).
//
// Phase semantics interact with the kernels through one rule: boundaries
// are forced wake points. Each phase window executes as its own bounded
// kernel run, and the skip and event kernels clamp their cycle jumps at
// window ends exactly as they clamp at cycle budgets — no jump ever
// crosses a boundary, so strict, skip and event runs hit byte-identical
// boundary cycles and snapshot identical registry state there (asserted
// by the phased differential tests). Lazily credited statistics (the
// bus's bulk busy/idle and wait-cycle credits) register sync hooks so a
// boundary snapshot attributes every elided cycle to the epoch it belongs
// to. Phases off reproduces the legacy single-window artifacts
// byte-for-byte, as does the degenerate phased configuration warmup=0,
// epochs=1, drain=0.
//
// Load-latency curves (CurveSpec, tgsweep -curve) build on phased
// measurement: one stochastic scenario swept over an injection-load axis,
// each level measured open-loop in adaptive epochs, with the saturation
// point detected from the marginal-throughput knee, request-latency
// blow-up versus zero-load, or unbounded epoch-over-epoch latency growth.
//
// # Guard layer: watchdogs and fault injection
//
// A GuardConfig (Options.Guard, SweepRunner.Guard, the -guard and
// -run-budget CLI flags) arms runtime invariant watchdogs on any run: a
// deadlock horizon (live packets but no retirement for NoRetireHorizon
// cycles), flit/credit and packet-pool conservation scans every
// ConservationEvery cycles, a wall-clock RunBudget for the whole run, and
// a BarrierStall watchdog on the sharded SPMD barrier. A tripped watchdog
// aborts the run with a typed GuardViolation — kind, cycle, shard and a
// GuardDiagnostic dump of the wedged fabric (stuck queues, blocked
// masters, per-shard windows) — recoverable from any error chain via
// AsViolation. Fault-free guarded runs are byte-identical to unguarded
// ones at every kernel and shard count, and the guarded hot paths stay
// allocation-free; DefaultGuard enables everything but the wall-clock
// budget. The watchdogs are themselves pinned by deterministic fault
// injection: a FaultPlan (or seeded RandomFaultPlan) wedges links, drops
// flits, freezes slaves, leaks packets or stalls shards inside cycle
// windows, and the guard test matrix proves each fault class trips its
// watchdog under every kernel and shard count. In sweeps, a violating
// point is recorded as a failed Result carrying the violation while the
// rest of the grid completes (tgsweep -on-violation record|fail).
//
// # Crash-safe campaigns
//
// A sweep can run journaled (SweepRunner.RunJournaled, tgsweep -journal):
// every completed point appends one fsync'd, CRC-framed record — stable
// point key, attempt count, outcome and the full serialized result — to a
// write-ahead journal, and a resumed campaign (ResumeSweep, tgsweep
// -resume) skips completed points and re-serializes their stored results,
// so the final artifacts are byte-identical to an uninterrupted run at any
// kill point, worker count, kernel or shard count. Point keys hash only
// result-determining configuration, so campaigns resume across changed
// execution knobs (workers, kernel, shards, retries); a different grid is
// refused via the campaign key. Torn journal tails (the crash signature)
// truncate cleanly on resume; mid-file corruption is a hard error.
//
// A SweepRetryPolicy (Runner.Retry, grid/scenario "retry", tgsweep
// -retries/-retry-backoff/-point-deadline) re-attempts transiently failed
// points — run budget, barrier stall, recovered worker panic — with
// exponential backoff, falling back to the strict kernel and a single
// shard on the final attempt, while deterministic failures (deadlock,
// conservation) quarantine immediately. SIGINT/SIGTERM drain gracefully
// on the CLIs: in-flight points finish, the journal flushes, and the
// process exits nonzero with a resume hint (ErrSweepDrained in the API).
// All artifact writers go through an atomic temp-file+rename helper, so
// no crash leaves a partial output file.
package noctg
