// Exploration: the paper's motivating use case — NoC design-space
// exploration with one trace set.
//
// The application is traced ONCE on the reference platform; the resulting
// TG programs are then replayed against a range of cycle-true interconnect
// alternatives (bus timing variants, arbitration policies, a packet-
// switched mesh), without ever re-simulating the processors. Because the
// TGs are reactive, synchronisation behaviour (semaphore polling, barriers)
// adapts correctly to each fabric.
package main

import (
	"fmt"
	"log"

	"noctg"
)

func main() {
	bench := noctg.DES(4, 12)
	ref := noctg.DefaultOptions()

	fmt.Println("tracing once on the reference AMBA platform...")
	r, err := noctg.RunReference(bench, ref, true)
	if err != nil {
		log.Fatal(err)
	}
	progs, _, _, err := noctg.TranslateAll(bench, r.Traces,
		noctg.DefaultTranslateConfig(noctg.PollRangesFor(bench)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference: %d cycles (%v wall)\n\n", r.Makespan, r.Wall)

	type variant struct {
		name string
		opt  noctg.Options
	}
	variants := []variant{
		{"AMBA (reference timing)", ref},
		{"AMBA, fixed-priority arbiter", func() noctg.Options {
			o := ref
			o.Platform.Bus.Arbitration = 1 // amba.FixedPriority
			return o
		}()},
		{"AMBA, slow slaves (4 wait states)", func() noctg.Options {
			o := ref
			o.Platform.MemWaitStates = 4
			return o
		}()},
		{"AMBA, 2-cycle data beats", func() noctg.Options {
			o := ref
			o.Platform.Bus.BeatCycles = 2
			return o
		}()},
		{"xpipes 4x3 mesh", func() noctg.Options {
			o := ref
			o.Platform.Interconnect = noctg.XPipes
			return o
		}()},
		{"xpipes 4x3 mesh, deep buffers", func() noctg.Options {
			o := ref
			o.Platform.Interconnect = noctg.XPipes
			o.Platform.NoC.Width, o.Platform.NoC.Height = 4, 3
			o.Platform.NoC.BufferFlits = 16
			return o
		}()},
	}

	fmt.Printf("%-36s %12s %10s %10s\n", "interconnect variant", "cycles", "vs ref", "wall")
	for _, v := range variants {
		res, err := noctg.RunTG(bench, progs, v.opt)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		rel := float64(res.Makespan) / float64(r.Makespan)
		fmt.Printf("%-36s %12d %9.2fx %10v\n", v.name, res.Makespan, rel, res.Wall)
	}
	fmt.Println("\neach variant reused the same TG programs — no processor re-simulation")
}
