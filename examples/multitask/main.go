// Multitask: the paper's §7 future-work scenario, implemented — "a system
// in which multiple tasks run on a single processor and are dynamically
// scheduled by an OS … based upon timeslices (preemptive multitasking)".
//
// Three TG task programs (each the translated communication behaviour of
// one job) share a single processor slot through core.MultiTask, which
// schedules them round-robin with a configurable timeslice and context-
// switch penalty, preempting only at instruction boundaries. The example
// sweeps the timeslice and shows the throughput/penalty trade-off.
package main

import (
	"fmt"
	"log"

	"noctg"
)

func task(addr uint32, work, txns int) string {
	src := fmt.Sprintf("MASTER[0,0]\nREGISTER addr %#x\nREGISTER data 0\nBEGIN\n", addr)
	for i := 0; i < txns; i++ {
		src += fmt.Sprintf("\tSetRegister(data, %d)\n\tWrite(addr, data)\n\tIdle(%d)\n\tRead(addr)\n", i+1, work)
	}
	return src + "\tHalt\nEND\n"
}

func main() {
	var progs []*noctg.TGProgram
	for i, t := range []string{
		task(noctg.SharedRange().Base+0x00, 30, 12), // compute-ish job
		task(noctg.SharedRange().Base+0x10, 5, 25),  // chatty I/O job
		task(noctg.SharedRange().Base+0x20, 60, 6),  // long-idle job
	} {
		p, err := noctg.AssembleTGP(t)
		if err != nil {
			log.Fatalf("task %d: %v", i, err)
		}
		progs = append(progs, p)
	}

	fmt.Printf("%-12s %-10s %12s %10s\n", "timeslice", "penalty", "makespan", "switches")
	for _, slice := range []uint64{10, 50, 200, 1000} {
		for _, penalty := range []uint64{2, 25} {
			cfg := noctg.PlatformConfig{Cores: 1}
			var mt *noctg.MultiTaskTG
			sys, err := noctg.Build(cfg, func(s *noctg.System, id int, port noctg.MasterPort) noctg.Master {
				m, err := noctg.NewMultiTaskTG(noctg.MultiTaskConfig{
					Timeslice:     slice,
					SwitchPenalty: penalty,
					RunIdleTimers: true,
				}, progs, port)
				if err != nil {
					log.Fatal(err)
				}
				mt = m
				return m
			})
			if err != nil {
				log.Fatal(err)
			}
			makespan, err := sys.Run(1_000_000)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12d %-10d %12d %10d\n", slice, penalty, makespan, mt.Switches)
		}
	}
	fmt.Println("\nshort timeslices interleave the jobs' traffic finely but pay more")
	fmt.Println("context-switch cycles; idle timers overlap across tasks like sleeping")
	fmt.Println("processes — the OS-scheduling behaviour §7 lists as future work.")
}
