// Quickstart: the complete TG flow of the paper on one benchmark.
//
//  1. Run a bit- and cycle-true reference simulation (miniARM cores on the
//     AMBA bus) with trace collection enabled.
//  2. Translate the per-master .trc traces into TG programs (.tgp).
//  3. Replace the cores with TG devices and re-run.
//
// The TG platform reproduces the reference cycle count almost exactly while
// simulating several times faster — the paper's Table 2 result.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"noctg"
)

func main() {
	bench := noctg.MPMatrix(4, 16)
	opt := noctg.DefaultOptions()

	fmt.Println("== 1. reference simulation (cycle-true cores, traced) ==")
	ref, err := noctg.RunReference(bench, opt, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %d cores: %d cycles (%v wall)\n",
		bench.Name, bench.Cores, ref.Makespan, ref.Wall)
	for i, tr := range ref.Traces {
		fmt.Printf("  master %d: %d OCP events, span %d cycles\n", i, len(tr.Events), tr.Span())
	}

	fmt.Println("\n== 2. translate traces into TG programs ==")
	progs, stats, twall, err := noctg.TranslateAll(bench, ref.Traces,
		noctg.DefaultTranslateConfig(noctg.PollRangesFor(bench)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d events -> %d programs in %v (%d poll loops, %d polls collapsed)\n",
		stats.Events, len(progs), twall, stats.PollLoops, stats.PollReadsCollapsed)

	// Show the start of master 1's program — the Figure 3(b) shape.
	var tgp strings.Builder
	if err := noctg.WriteTGP(progs[1], &tgp); err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(tgp.String(), "\n")
	fmt.Println("\nmaster 1 program (first 18 lines):")
	for _, l := range lines[:18] {
		fmt.Println("  " + l)
	}

	fmt.Println("\n== 3. rerun with traffic generators in place of the cores ==")
	tg, err := noctg.RunTG(bench, progs, opt)
	if err != nil {
		log.Fatal(err)
	}
	errCycles := int64(tg.Makespan) - int64(ref.Makespan)
	fmt.Printf("TG platform: %d cycles (%v wall)\n", tg.Makespan, tg.Wall)
	fmt.Printf("cycle error: %+d (%.3f%%), simulation speedup: %.2fx\n",
		errCycles, 100*float64(abs(errCycles))/float64(ref.Makespan),
		float64(ref.Wall)/float64(tg.Wall))

	if abs(errCycles) > int64(ref.Makespan/50) {
		fmt.Fprintln(os.Stderr, "quickstart: unexpected accuracy loss")
		os.Exit(1)
	}
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
