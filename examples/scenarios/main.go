// Scenarios: the classic NoC evaluation workflow on the TG platform — a
// spatial traffic pattern (here: transpose and a 60% hotspot) swept across
// three fabric topologies (AMBA bus, ×pipes mesh, ×pipes torus) at two
// injection loads, declared as scenario specs and executed on the parallel
// sweep runner.
//
// The same specs can be written as JSON and run from the CLI:
//
//	go run ./cmd/tgsweep -print-scenarios > scenarios.json
//	go run ./cmd/tgsweep -scenario scenarios.json -out results
package main

import (
	"fmt"
	"log"

	"noctg"
)

func main() {
	var specs []noctg.ScenarioSpec
	for _, fabric := range []struct{ fabric, topo string }{
		{"amba", ""},
		{"xpipes", "mesh"},
		{"xpipes", "torus"},
	} {
		name := fabric.fabric
		if fabric.topo != "" {
			name = fabric.fabric + "-" + fabric.topo
		}
		specs = append(specs,
			noctg.ScenarioSpec{
				Name:     "transpose-" + name,
				Fabric:   fabric.fabric,
				Topology: fabric.topo,
				Width:    2, Height: 2,
				Pattern:  "transpose",
				Dist:     "poisson",
				MeanGaps: []float64{12, 4}, // sparse and near-saturation
				Count:    400,
			},
			noctg.ScenarioSpec{
				Name:     "hotspot-" + name,
				Fabric:   fabric.fabric,
				Topology: fabric.topo,
				Width:    2, Height: 2,
				Pattern:  "hotspot",
				Hotspot:  []float64{0, 0, 0.6}, // 60% of traffic to node 2
				Dist:     "poisson",
				MeanGaps: []float64{12, 4},
				Count:    400,
			},
		)
	}

	points, err := noctg.ScenarioPoints(specs)
	if err != nil {
		log.Fatal(err)
	}
	results, err := noctg.SweepRunner{}.Run(points)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-40s %-18s %10s %10s %8s\n",
		"workload", "fabric", "makespan", "mean lat", "flits")
	for _, r := range results {
		if r.Err != "" {
			log.Fatalf("%s @ %s: %s", r.Workload, r.Fabric, r.Err)
		}
		fmt.Printf("%-40s %-18s %10d %10.2f %8d\n",
			r.Workload, r.Fabric, r.MakespanCycles, r.Latency.Mean, r.FlitsRouted)
	}
}
