// Semaphore: the paper's Figure 2(b) scenario, executed with hand-written
// TG programs.
//
// Master M1 locks the hardware semaphore, holds it for a fixed working
// period, and unlocks it. Master M2 tries to take the semaphore and must
// poll until M1's unlock propagates. The number of polling transactions M2
// issues depends on interconnect latency — which is exactly the reactive
// behaviour a trace-replaying ("cloning") generator cannot reproduce. The
// example sweeps the slave access time and shows M2's poll count adapting
// while the outcome stays correct.
package main

import (
	"fmt"
	"log"

	"noctg"
)

const m1Src = `; M1: lock, work, unlock (Figure 2(b), left)
MASTER[0,0]
REGISTER addr 0x09000000
REGISTER data 0x00000001
REGISTER tempreg 0x00000001
BEGIN
Semchk0:
	Read(addr)
	If rdreg != tempreg then Semchk0
	Idle(120)            ; critical section work
	Write(addr, data)    ; unlock
	Halt
END`

const m2Src = `; M2: arrive a little later, poll until granted (Figure 2(b), right)
MASTER[1,0]
REGISTER addr 0x09000000
REGISTER tempreg 0x00000001
BEGIN
	Idle(10)
Semchk0:
	Read(addr)
	Idle(6)
	If rdreg != tempreg then Semchk0
	Halt
END`

func main() {
	m1, err := noctg.AssembleTGP(m1Src)
	if err != nil {
		log.Fatal(err)
	}
	m2, err := noctg.AssembleTGP(m2Src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-24s %10s %10s %12s %10s\n",
		"slave access time", "M1 done", "M2 done", "M2 polls", "sem fails")
	for _, wait := range []uint64{1, 4, 8, 16, 32} {
		cfg := noctg.PlatformConfig{Cores: 2, MemWaitStates: wait}
		sys, err := noctg.BuildTG(cfg, []*noctg.TGProgram{m1, m2})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.Run(1_000_000); err != nil {
			log.Fatal(err)
		}
		d1 := sys.Masters[0].(*noctg.TGDevice)
		d2 := sys.Masters[1].(*noctg.TGDevice)
		_, fails, _ := sys.Sems.Stats()
		fmt.Printf("%-24d %10d %10d %12d %10d\n",
			wait, d1.HaltCycle(), d2.HaltCycle(), d2.Transactions, fails)
	}
	fmt.Println("\nM2's transaction count adapts to the interconnect — the reactive")
	fmt.Println("behaviour of Section 3 that cloning and time-shifting models lack.")
}
