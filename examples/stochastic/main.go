// Stochastic: quantifies the paper's Section 2 argument that statistical
// traffic models are unreliable for interconnect optimisation.
//
// Ground truth is a cycle-true run of the MP matrix benchmark. A
// trace-driven reactive TG and four stochastic generators (uniform,
// Gaussian, Poisson, bursty — calibrated to the same mean transaction rate
// as the real traffic) each predict the application's behaviour; the table
// compares their bus utilisation and runtime predictions.
package main

import (
	"fmt"
	"log"

	"noctg"
)

func main() {
	bench := noctg.MPMatrix(4, 16)
	opt := noctg.DefaultOptions()

	ref, err := noctg.RunReference(bench, opt, true)
	if err != nil {
		log.Fatal(err)
	}
	busyRef := float64(ref.Sys.Bus.BusyCycles()) / float64(ref.Sys.Engine.Cycle())
	var txns int
	for _, tr := range ref.Traces {
		txns += len(tr.Events)
	}
	fmt.Printf("ground truth: %d cycles, %.0f%% bus busy, %d transactions\n\n",
		ref.Makespan, 100*busyRef, txns)

	// The reactive TG.
	progs, _, _, err := noctg.TranslateAll(bench, ref.Traces,
		noctg.DefaultTranslateConfig(noctg.PollRangesFor(bench)))
	if err != nil {
		log.Fatal(err)
	}
	tg, err := noctg.RunTG(bench, progs, opt)
	if err != nil {
		log.Fatal(err)
	}
	busyTG := float64(tg.Sys.Bus.BusyCycles()) / float64(tg.Sys.Engine.Cycle())
	fmt.Printf("%-22s %12s %10s %12s\n", "model", "cycles", "bus busy", "cycle error")
	show := func(name string, makespan uint64, busy float64) {
		errPct := 100 * (float64(makespan) - float64(ref.Makespan)) / float64(ref.Makespan)
		fmt.Printf("%-22s %12d %9.0f%% %+11.1f%%\n", name, makespan, 100*busy, errPct)
	}
	show("reactive TG (trace)", tg.Makespan, busyTG)

	// Stochastic generators with the same mean rate and transaction count.
	perMaster := txns / bench.Cores
	meanGap := float64(ref.Makespan)/float64(perMaster) - 8 // minus service time
	if meanGap < 1 {
		meanGap = 1
	}
	for d := 0; d < 4; d++ {
		dist := noctg.StochasticConfig{
			Dist:    dist(d),
			MeanGap: meanGap,
			Count:   perMaster,
			Seed:    99,
			Ranges:  []noctg.AddrRange{noctg.SharedRange()},
		}
		cfg := noctg.PlatformConfig{Cores: bench.Cores}
		sys, err := noctg.Build(cfg, func(s *noctg.System, id int, port noctg.MasterPort) noctg.Master {
			return noctg.NewStochastic(id, dist, port)
		})
		if err != nil {
			log.Fatal(err)
		}
		makespan, err := sys.Run(bench.MaxCycles * 4)
		if err != nil {
			log.Fatal(err)
		}
		busy := float64(sys.Bus.BusyCycles()) / float64(sys.Engine.Cycle())
		show("stochastic "+dist.Dist.String(), makespan, busy)
	}
	fmt.Println("\nstatistical sources match the average rate but miss the reactive,")
	fmt.Println("bursty structure — their runtime and contention predictions drift,")
	fmt.Println("while the trace-driven reactive TG stays within a fraction of a percent.")
}

func dist(i int) noctg.Dist { return noctg.Dist(i) }
