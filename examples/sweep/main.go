// Sweep: the paper's motivating use case at fleet scale — a design-space
// grid (trace-driven TG and stochastic workloads × bus and mesh fabrics)
// fanned out over all host cores, one independent simulation engine per
// configuration.
//
// The result set is deterministic: rerun with any worker count and the
// JSON/CSV bytes are identical, so sweep artifacts can be diffed across
// machines and CI runs.
package main

import (
	"log"
	"os"
	"runtime"

	"noctg"
)

func main() {
	grid := noctg.SweepGrid{
		Workloads: []noctg.SweepWorkload{
			{Kind: "tg", Bench: "mpmatrix", Cores: 2, Size: 8},
			{Kind: "stochastic", Dist: "poisson", Cores: 2, MeanGap: 8, Count: 300},
		},
		Fabrics: []noctg.SweepFabric{
			{Interconnect: "amba"},
			{Interconnect: "amba", MemWaitStates: 4},
			{Interconnect: "xpipes", MeshWidth: 4, MeshHeight: 2, BufferFlits: 2},
			{Interconnect: "xpipes", MeshWidth: 4, MeshHeight: 2, BufferFlits: 8},
		},
		ClockPeriodsNS: []uint64{5, 10},
	}
	points := grid.Expand()
	log.Printf("sweeping %d configurations over %d cores", len(points), runtime.GOMAXPROCS(0))

	results, err := noctg.SweepRunner{}.Run(points)
	if err != nil {
		log.Fatal(err)
	}
	if err := noctg.WriteSweepCSV(os.Stdout, results); err != nil {
		log.Fatal(err)
	}
}
