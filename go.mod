module noctg

go 1.24
