// Package amba models an AMBA AHB-style shared bus at cycle granularity:
// request→grant arbitration, a one-cycle address phase, per-beat data phases
// extended by slave wait states, posted writes and blocking reads. It is the
// reference interconnect of the paper's Table 2 evaluation.
//
// Timing model (all parameters in Config):
//
//	cycle t   : master asserts a request on its port (TryRequest → false)
//	cycle t   : the bus, ticked after all masters, arbitrates and grants
//	cycle t+1 : the master's TryRequest returns true (request accepted);
//	            the bus is occupied for AddrCycles + Burst·BeatCycles +
//	            slave access cycles
//	done      : the slave performs the access; for reads the response is
//	            delivered RespCycles later
//
// Contention appears exactly as in the paper: while the bus is occupied or
// arbitration favours another master, requesters idle-wait, and at high core
// counts the bus saturates.
package amba

import (
	"fmt"

	"noctg/internal/ocp"
	"noctg/internal/sim"
)

// Policy selects the arbitration algorithm.
type Policy int

const (
	// RoundRobin rotates priority fairly among masters (default).
	RoundRobin Policy = iota
	// FixedPriority always favours the lowest-numbered requesting master.
	FixedPriority
	// TDMA grants the bus in fixed time slots of SlotCycles per master,
	// giving hard bandwidth isolation at the cost of idle slots.
	TDMA
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case FixedPriority:
		return "fixed-priority"
	case TDMA:
		return "tdma"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config holds the bus timing parameters. The zero value is replaced by
// DefaultConfig.
type Config struct {
	Arbitration Policy
	// AddrCycles is the address-phase length (AHB: 1).
	AddrCycles uint64
	// BeatCycles is the zero-wait-state data-phase length per beat (AHB: 1).
	BeatCycles uint64
	// RespCycles is the read-data return latency after the final beat.
	RespCycles uint64
	// SlotCycles is the TDMA slot length (default 16; TDMA only).
	SlotCycles uint64
}

// DefaultConfig is the single-cycle-phase AHB configuration.
var DefaultConfig = Config{Arbitration: RoundRobin, AddrCycles: 1, BeatCycles: 1, RespCycles: 1}

func (c Config) withDefaults() Config {
	if c.AddrCycles == 0 {
		c.AddrCycles = DefaultConfig.AddrCycles
	}
	if c.BeatCycles == 0 {
		c.BeatCycles = DefaultConfig.BeatCycles
	}
	if c.RespCycles == 0 {
		c.RespCycles = DefaultConfig.RespCycles
	}
	if c.SlotCycles == 0 {
		c.SlotCycles = 16
	}
	return c
}

type binding struct {
	rng   ocp.AddrRange
	slave ocp.Slave
}

type portState int

const (
	portIdle portState = iota
	portRequesting
	portGranted
)

// port is the bus's implementation of ocp.MasterPort.
type port struct {
	bus   *Bus
	id    int
	state portState
	req   ocp.Request

	busyRead bool
	resp     ocp.Response
	respAt   uint64
	hasResp  bool
	// respBuf is the port-owned read-data buffer reused across
	// transactions: each port has at most one outstanding read, so the
	// previous response is always consumed before the buffer is refilled.
	respBuf []uint32
}

// TryRequest implements ocp.MasterPort.
func (p *port) TryRequest(req *ocp.Request) bool {
	switch p.state {
	case portIdle:
		if p.busyRead {
			return false // previous read still outstanding
		}
		if err := req.Validate(); err != nil {
			panic(fmt.Sprintf("amba: master %d issued invalid request: %v", p.id, err))
		}
		p.req = *req
		p.req.MasterID = p.id
		p.state = portRequesting
		p.bus.requesting++
		return false
	case portRequesting:
		return false
	case portGranted:
		p.state = portIdle
		if p.req.Cmd.IsRead() {
			p.busyRead = true
		}
		return true
	}
	return false
}

// TakeResponse implements ocp.MasterPort. The returned response is backed
// by port-owned storage that the next transaction reuses (see the
// ocp.MasterPort contract).
func (p *port) TakeResponse() (*ocp.Response, bool) {
	if !p.hasResp || p.bus.now() < p.respAt {
		return nil, false
	}
	p.hasResp = false
	p.busyRead = false
	return &p.resp, true
}

// Busy implements ocp.MasterPort.
func (p *port) Busy() bool { return p.busyRead || p.state != portIdle }

var _ ocp.MasterPort = (*port)(nil)

type activeTxn struct {
	port *port
	req  ocp.Request
	bind *binding
	done uint64
}

// Bus is the AHB-style interconnect. It implements sim.Device and must be
// ticked after all masters each cycle.
type Bus struct {
	cfg      Config
	now      func() uint64
	ports    []*port
	bindings []binding
	rrNext   int

	// active is the single in-flight transaction, reused across grants so
	// the arbitration hot path performs no allocation. activeData holds a
	// bus-owned copy of the write payload, taken at grant time so masters
	// may reuse their request buffers as soon as a request is accepted.
	active     activeTxn
	hasActive  bool
	activeData []uint32

	// lastTick supports the skip kernel's cycle jumps: a gap between
	// consecutive Tick cycles is credited to the busy/idle counters in bulk
	// (skipped cycles are, by the Sleeper contract, cycles in which the
	// bus's occupancy state could not change).
	lastTick uint64
	ticked   bool

	// Stats
	Counters   sim.Counters
	WaitCycles []uint64 // per master: cycles spent requesting without grant
	Grants     []uint64 // per master: accepted transactions
	busyCycles uint64
	idleCycles uint64
	grantCount uint64
	requesting int // number of ports in portRequesting state
}

// New builds a bus with the given timing configuration; now supplies the
// current engine cycle (typically engine.Cycle).
func New(cfg Config, now func() uint64) *Bus {
	if now == nil {
		panic("amba: New requires a cycle source")
	}
	return &Bus{cfg: cfg.withDefaults(), now: now}
}

// Config returns the effective (defaulted) configuration.
func (b *Bus) Config() Config { return b.cfg }

// NewMasterPort allocates the next master port. Ports are numbered in
// creation order; with FixedPriority, lower numbers win arbitration.
func (b *Bus) NewMasterPort() ocp.MasterPort {
	p := &port{bus: b, id: len(b.ports)}
	b.ports = append(b.ports, p)
	b.WaitCycles = append(b.WaitCycles, 0)
	b.Grants = append(b.Grants, 0)
	return p
}

// MapSlave binds slave at rng. Overlapping ranges are rejected.
func (b *Bus) MapSlave(slave ocp.Slave, rng ocp.AddrRange) error {
	for _, bd := range b.bindings {
		if bd.rng.Overlaps(rng) {
			return fmt.Errorf("amba: range %v overlaps existing %v", rng, bd.rng)
		}
	}
	b.bindings = append(b.bindings, binding{rng: rng, slave: slave})
	return nil
}

// Masters returns the number of attached master ports.
func (b *Bus) Masters() int { return len(b.ports) }

// BusyCycles returns how many cycles the bus spent occupied by a transfer.
func (b *Bus) BusyCycles() uint64 {
	busy, _ := b.pendingGap()
	return b.busyCycles + busy
}

// IdleCycles returns how many cycles the bus had no requester.
func (b *Bus) IdleCycles() uint64 {
	_, idle := b.pendingGap()
	return b.idleCycles + idle
}

// pendingGap returns the busy/idle credit for cycles the skip kernel
// jumped over since the bus's last Tick. Tick folds such gaps into the
// counters itself, but a run that ends on a skip jump is never followed by
// another Tick, so the getters account the tail on the fly (the bus state
// was frozen across the gap, making the attribution unambiguous).
func (b *Bus) pendingGap() (busy, idle uint64) {
	if !b.ticked {
		return 0, 0
	}
	if last := b.now() - 1; last > b.lastTick {
		if b.hasActive {
			return last - b.lastTick, 0
		}
		return 0, last - b.lastTick
	}
	return 0, 0
}

// TotalGrants returns the number of accepted transactions.
func (b *Bus) TotalGrants() uint64 { return b.grantCount }

// Idle reports whether no transfer is active, no master is requesting and
// no response is pending — i.e. all posted writes have drained. Platforms
// use this as part of their termination condition.
func (b *Bus) Idle() bool {
	if b.hasActive {
		return false
	}
	for _, p := range b.ports {
		if p.state != portIdle || p.busyRead || p.hasResp {
			return false
		}
	}
	return true
}

// NextWake implements sim.Sleeper. A fully idle bus is quiescent until a
// master presents a request (and that master, being active, keeps the
// engine ticking). While a transfer occupies the bus, the in-flight horizon
// is its completion cycle — but any master that is requesting, blocked on a
// response or mid-handshake reports its own wake of "now", so the bus only
// ever skips the drain tail of posted writes.
func (b *Bus) NextWake(now uint64) uint64 {
	if b.hasActive {
		if b.active.done > now {
			return b.active.done
		}
		return now
	}
	if b.Idle() {
		return sim.WakeNever
	}
	return now
}

func (b *Bus) decode(addr uint32) *binding {
	for i := range b.bindings {
		if b.bindings[i].rng.Contains(addr) {
			return &b.bindings[i]
		}
	}
	return nil
}

// Tick implements sim.Device.
func (b *Bus) Tick(cycle uint64) {
	// Credit skipped cycles (skip kernel jumps) to the occupancy counters:
	// a skip can only span cycles in which the bus state was frozen, so the
	// whole gap was uniformly busy (posted-write drain) or uniformly idle.
	if b.ticked && cycle > b.lastTick+1 {
		gap := cycle - b.lastTick - 1
		if b.hasActive {
			b.busyCycles += gap
		} else {
			b.idleCycles += gap
		}
	}
	b.lastTick = cycle
	b.ticked = true

	if b.hasActive {
		b.busyCycles++
		if cycle >= b.active.done {
			b.complete(cycle)
		}
	}
	if !b.hasActive {
		if b.requesting > 0 {
			b.arbitrate(cycle)
		} else {
			b.idleCycles++
		}
	}
	// Account arbitration waiting for saturation analysis.
	if b.requesting > 0 {
		for _, p := range b.ports {
			if p.state == portRequesting {
				b.WaitCycles[p.id]++
			}
		}
	}
}

func (b *Bus) complete(cycle uint64) {
	t := &b.active
	b.hasActive = false
	var resp ocp.Response
	if t.bind == nil {
		resp = ocp.Response{Err: true}
		b.Counters.Inc("decode_errors")
	} else {
		resp, t.port.respBuf = ocp.PerformBuffered(t.bind.slave, &t.req, t.port.respBuf)
		if resp.Err {
			b.Counters.Inc("slave_errors")
		}
	}
	if t.req.Cmd.IsRead() {
		t.port.resp = resp
		t.port.respAt = cycle + b.cfg.RespCycles
		t.port.hasResp = true
	}
}

func (b *Bus) arbitrate(cycle uint64) {
	winner := -1
	switch b.cfg.Arbitration {
	case FixedPriority:
		for _, p := range b.ports {
			if p.state == portRequesting {
				winner = p.id
				break
			}
		}
	case TDMA:
		// Only the slot owner may be granted; others wait for their slot.
		owner := int(cycle/b.cfg.SlotCycles) % len(b.ports)
		if b.ports[owner].state == portRequesting {
			winner = owner
		}
	default: // RoundRobin
		n := len(b.ports)
		for i := 0; i < n; i++ {
			id := (b.rrNext + i) % n
			if b.ports[id].state == portRequesting {
				winner = id
				b.rrNext = (id + 1) % n
				break
			}
		}
	}
	if winner < 0 {
		b.idleCycles++
		return
	}
	p := b.ports[winner]
	p.state = portGranted
	b.requesting--
	b.Grants[winner]++
	b.grantCount++

	// Latch the transaction into the bus-owned slot, copying the write
	// payload: from here on the master may reuse its request buffer.
	b.active.port = p
	b.active.req = p.req
	if len(p.req.Data) > 0 {
		b.activeData = append(b.activeData[:0], p.req.Data...)
		b.active.req.Data = b.activeData
	}
	bind := b.decode(b.active.req.Addr)
	b.active.bind = bind
	var access uint64
	if bind != nil {
		access = bind.slave.AccessCycles(&b.active.req)
	}
	occupancy := b.cfg.AddrCycles + uint64(b.active.req.Burst)*b.cfg.BeatCycles + access
	b.active.done = cycle + occupancy
	b.hasActive = true
}

var _ sim.Device = (*Bus)(nil)
var _ sim.Sleeper = (*Bus)(nil)
