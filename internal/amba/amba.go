// Package amba models an AMBA AHB-style shared bus at cycle granularity:
// request→grant arbitration, a one-cycle address phase, per-beat data phases
// extended by slave wait states, posted writes and blocking reads. It is the
// reference interconnect of the paper's Table 2 evaluation.
//
// Timing model (all parameters in Config):
//
//	cycle t   : master asserts a request on its port (TryRequest → false)
//	cycle t   : the bus, ticked after all masters, arbitrates and grants
//	cycle t+1 : the master's TryRequest returns true (request accepted);
//	            the bus is occupied for AddrCycles + Burst·BeatCycles +
//	            slave access cycles
//	done      : the slave performs the access; for reads the response is
//	            delivered RespCycles later
//
// Contention appears exactly as in the paper: while the bus is occupied or
// arbitration favours another master, requesters idle-wait, and at high core
// counts the bus saturates.
package amba

import (
	"fmt"
	"math/bits"

	"noctg/internal/ocp"
	"noctg/internal/sim"
)

// Policy selects the arbitration algorithm.
type Policy int

const (
	// RoundRobin rotates priority fairly among masters (default).
	RoundRobin Policy = iota
	// FixedPriority always favours the lowest-numbered requesting master.
	FixedPriority
	// TDMA grants the bus in fixed time slots of SlotCycles per master,
	// giving hard bandwidth isolation at the cost of idle slots.
	TDMA
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case FixedPriority:
		return "fixed-priority"
	case TDMA:
		return "tdma"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config holds the bus timing parameters. The zero value is replaced by
// DefaultConfig.
type Config struct {
	Arbitration Policy
	// AddrCycles is the address-phase length (AHB: 1).
	AddrCycles uint64
	// BeatCycles is the zero-wait-state data-phase length per beat (AHB: 1).
	BeatCycles uint64
	// RespCycles is the read-data return latency after the final beat.
	RespCycles uint64
	// SlotCycles is the TDMA slot length (default 16; TDMA only).
	SlotCycles uint64
}

// DefaultConfig is the single-cycle-phase AHB configuration.
var DefaultConfig = Config{Arbitration: RoundRobin, AddrCycles: 1, BeatCycles: 1, RespCycles: 1}

func (c Config) withDefaults() Config {
	if c.AddrCycles == 0 {
		c.AddrCycles = DefaultConfig.AddrCycles
	}
	if c.BeatCycles == 0 {
		c.BeatCycles = DefaultConfig.BeatCycles
	}
	if c.RespCycles == 0 {
		c.RespCycles = DefaultConfig.RespCycles
	}
	if c.SlotCycles == 0 {
		c.SlotCycles = 16
	}
	return c
}

type binding struct {
	rng   ocp.AddrRange
	slave ocp.Slave
}

type portState int

const (
	portIdle portState = iota
	portRequesting
	portGranted
)

// port is the bus's implementation of ocp.MasterPort.
type port struct {
	bus   *Bus
	id    int
	state portState
	req   ocp.Request

	busyRead bool
	resp     ocp.Response
	respAt   uint64
	hasResp  bool
	// respBuf is the port-owned read-data buffer reused across
	// transactions: each port has at most one outstanding read, so the
	// previous response is always consumed before the buffer is refilled.
	respBuf []uint32
}

// TryRequest implements ocp.MasterPort.
func (p *port) TryRequest(req *ocp.Request) bool {
	switch p.state {
	case portIdle:
		if p.busyRead {
			return false // previous read still outstanding
		}
		if err := req.Validate(); err != nil {
			panic(fmt.Sprintf("amba: master %d issued invalid request: %v", p.id, err))
		}
		p.req = *req
		p.req.MasterID = p.id
		// Requester-set changes bound the bulk wait credit: settle the old
		// set through the previous cycle before this port joins it.
		if now := p.bus.now(); now > 0 {
			p.bus.creditWait(now - 1)
		}
		p.state = portRequesting
		p.bus.requesting++
		p.bus.openPorts++
		p.bus.reqMask[p.id>>6] |= 1 << (uint(p.id) & 63)
		// A new request is the external stimulus that ends a bus sleep
		// (idle quiescence or an in-flight transfer horizon): tell the
		// event kernel to put the bus back into the tick set.
		if w := p.bus.waker; w != nil {
			w.Wake()
		}
		return false
	case portRequesting:
		return false
	case portGranted:
		p.state = portIdle
		if p.req.Cmd.IsRead() {
			p.busyRead = true
		} else {
			p.bus.openPorts--
		}
		return true
	}
	return false
}

// TakeResponse implements ocp.MasterPort. The returned response is backed
// by port-owned storage that the next transaction reuses (see the
// ocp.MasterPort contract).
func (p *port) TakeResponse() (*ocp.Response, bool) {
	if !p.hasResp || p.bus.now() < p.respAt {
		return nil, false
	}
	p.hasResp = false
	p.busyRead = false
	p.bus.openPorts--
	return &p.resp, true
}

// Busy implements ocp.MasterPort.
func (p *port) Busy() bool { return p.busyRead || p.state != portIdle }

// WakeHint implements ocp.WakeHinter. A delivered response is gated by its
// scheduled respAt. Otherwise, while a transfer occupies the bus nothing
// can change for this port before the bus frees at active.done: no grant
// can be issued (arbitration requires a free bus) and no response can be
// delivered (the outstanding read, if any, is the active transfer itself).
// With the bus free the next arbitration tick may grant any cycle, so the
// hint is now. Horizons inside the nap threshold are not worth the
// scheduling churn and hint now as well (always allowed — see
// ocp.WakeHinter).
func (p *port) WakeHint(now uint64) uint64 {
	if p.hasResp {
		if p.respAt > now+napThreshold {
			return p.respAt
		}
		return now
	}
	if p.state == portRequesting || p.busyRead {
		if b := p.bus; b.hasActive && b.active.done > now+napThreshold {
			return b.active.done
		}
	}
	return now
}

var _ ocp.MasterPort = (*port)(nil)
var _ ocp.WakeHinter = (*port)(nil)

type activeTxn struct {
	port *port
	req  ocp.Request
	bind *binding
	done uint64
}

// Bus is the AHB-style interconnect. It implements sim.Device and must be
// ticked after all masters each cycle.
type Bus struct {
	cfg      Config
	now      func() uint64
	ports    []*port
	bindings []binding
	rrNext   int

	// active is the single in-flight transaction, reused across grants so
	// the arbitration hot path performs no allocation. activeData holds a
	// bus-owned copy of the write payload, taken at grant time so masters
	// may reuse their request buffers as soon as a request is accepted.
	active     activeTxn
	hasActive  bool
	activeData []uint32

	// lastTick supports the skip and event kernels' elided ticks: a gap
	// between consecutive Tick cycles is credited to the busy/idle counters
	// in bulk (a cycle the bus was not ticked in is, by the Sleeper
	// contract, one in which its occupancy state could not change).
	lastTick uint64
	ticked   bool

	// waker is the engine's wake handle (sim.WakeSink); nil when the bus is
	// driven outside an engine.
	waker sim.Waker

	// Stats — all sim.Counter so one RegisterStats call puts the whole set
	// under the platform's stats registry (epoch Reset/Snapshot at phase
	// boundaries); the hot paths stay plain integer adds.
	decodeErrors sim.Counter
	slaveErrors  sim.Counter
	// waits counts, per master, the cycles spent requesting without a
	// grant. It is accounted lazily in bulk (see creditWait); the
	// WaitCycles getter settles the tail of a run that ended while the bus
	// slept, so readers always see the strict kernel's values.
	waits      []sim.Counter
	Grants     []sim.Counter // per master: accepted transactions
	busyCycles sim.Counter
	idleCycles sim.Counter
	grantCount sim.Counter
	requesting int // number of ports in portRequesting state
	// openPorts counts ports with any business in flight (requesting,
	// granted-but-unaccepted, outstanding read or undelivered response), so
	// Idle is O(1) instead of a port scan.
	openPorts int
	// reqMask mirrors the portRequesting states, one bit per port id, so
	// arbitration and wait accounting scan requesters instead of every
	// port: cost scales with contention, not with the core count.
	reqMask []uint64
	// waitCredited is the number of leading cycles already folded into
	// WaitCycles. The requesting set is frozen while the bus sleeps (any
	// new requester wakes it via the port hook), so crediting
	// requesters × elapsed at the next tick reproduces the strict kernel's
	// per-cycle increments exactly.
	waitCredited uint64
	// lastBind caches the most recent decode hit: masters show strong
	// address-range locality, so the common case skips the linear range
	// scan whose cost grows with the core count (one private memory each).
	lastBind int
}

// New builds a bus with the given timing configuration; now supplies the
// current engine cycle (typically engine.Cycle).
func New(cfg Config, now func() uint64) *Bus {
	if now == nil {
		panic("amba: New requires a cycle source")
	}
	return &Bus{cfg: cfg.withDefaults(), now: now}
}

// Config returns the effective (defaulted) configuration.
func (b *Bus) Config() Config { return b.cfg }

// NewMasterPort allocates the next master port. Ports are numbered in
// creation order; with FixedPriority, lower numbers win arbitration.
func (b *Bus) NewMasterPort() ocp.MasterPort {
	p := &port{bus: b, id: len(b.ports)}
	b.ports = append(b.ports, p)
	b.waits = append(b.waits, 0)
	b.Grants = append(b.Grants, 0)
	if len(b.ports) > 64*len(b.reqMask) {
		b.reqMask = append(b.reqMask, 0)
	}
	return p
}

// MapSlave binds slave at rng. Overlapping ranges are rejected.
func (b *Bus) MapSlave(slave ocp.Slave, rng ocp.AddrRange) error {
	for _, bd := range b.bindings {
		if bd.rng.Overlaps(rng) {
			return fmt.Errorf("amba: range %v overlaps existing %v", rng, bd.rng)
		}
	}
	b.bindings = append(b.bindings, binding{rng: rng, slave: slave})
	return nil
}

// Masters returns the number of attached master ports.
func (b *Bus) Masters() int { return len(b.ports) }

// BusyCycles returns how many cycles the bus spent occupied by a transfer.
func (b *Bus) BusyCycles() uint64 {
	busy, _ := b.pendingGap()
	return b.busyCycles.Value() + busy
}

// IdleCycles returns how many cycles the bus had no requester.
func (b *Bus) IdleCycles() uint64 {
	_, idle := b.pendingGap()
	return b.idleCycles.Value() + idle
}

// pendingGap returns the busy/idle credit for cycles in which the bus was
// not ticked (skip-kernel jumps, event-kernel sleeps) since its last Tick.
// Tick folds such gaps into the counters itself, but a run that ends inside
// a gap is never followed by another Tick, so the getters account the tail
// on the fly (the bus state was frozen across the gap, making the
// attribution unambiguous).
func (b *Bus) pendingGap() (busy, idle uint64) {
	if !b.ticked {
		return 0, 0
	}
	if last := b.now() - 1; last > b.lastTick {
		if b.hasActive {
			return last - b.lastTick, 0
		}
		return 0, last - b.lastTick
	}
	return 0, 0
}

// TotalGrants returns the number of accepted transactions.
func (b *Bus) TotalGrants() uint64 { return b.grantCount.Value() }

// Idle reports whether no transfer is active, no master is requesting and
// no response is pending — i.e. all posted writes have drained. Platforms
// use this as part of their termination condition; the open-port counter
// makes it O(1), so per-cycle callers (NextWake, completion predicates)
// don't pay a port scan.
func (b *Bus) Idle() bool {
	return !b.hasActive && b.openPorts == 0
}

// napThreshold is the shortest in-flight horizon the bus reports as a
// sleep. Under back-to-back traffic a transfer completes within a few
// cycles and the next request arrives immediately, so scheduling such a nap
// just churns the event kernel's wake heap (every nap is a new minimum);
// staying nominally awake for a handful of no-op ticks is cheaper. Long
// horizons — bursts, deep slave wait states, posted-write drain tails — are
// still slept through. Returning now instead of a future wake is always
// allowed by the Sleeper contract, so this is purely a scheduling choice.
const napThreshold = 8

// NextWake implements sim.Sleeper. A transfer in flight sleeps the bus to
// its completion cycle (beyond the nap threshold) even while other masters
// queue behind it: nothing can be granted before the bus frees, and the
// waiters' WaitCycles are credited in bulk at the wake (the requesting set
// is frozen during the sleep — see creditWait). With no transfer, a
// requesting master needs per-cycle arbitration ticks (TDMA slots are
// cycle-timed), and a fully idle bus is quiescent until a master presents a
// request. Every sleep is ended early by the port's TryRequest wake hook,
// which is what makes these safe promises rather than mere hints (see
// sim.Sleeper).
func (b *Bus) NextWake(now uint64) uint64 {
	if b.hasActive {
		if b.active.done > now+napThreshold {
			return b.active.done
		}
		return now
	}
	if b.requesting > 0 {
		return now
	}
	if b.openPorts == 0 {
		return sim.WakeNever
	}
	return now
}

// SetWaker implements sim.WakeSink: the engine hands the bus its wake
// handle at registration, and the ports fire it when a master's TryRequest
// arrives while the bus may be sleeping.
func (b *Bus) SetWaker(w sim.Waker) { b.waker = w }

// DecodeErrors returns the number of requests that decoded to no slave.
func (b *Bus) DecodeErrors() uint64 { return b.decodeErrors.Value() }

// SlaveErrors returns the number of error responses from mapped slaves.
func (b *Bus) SlaveErrors() uint64 { return b.slaveErrors.Value() }

// RegisterStats implements sim.StatsSource: the full counter set —
// occupancy, total and per-master grants, per-master wait cycles, decode
// and slave errors — joins the registry so phased measurement can reset
// and snapshot it at epoch boundaries. Call after every NewMasterPort
// (registration captures counter addresses).
func (b *Bus) RegisterStats(r *sim.Registry) {
	r.RegisterCounter("busy_cycles", &b.busyCycles)
	r.RegisterCounter("idle_cycles", &b.idleCycles)
	r.RegisterCounter("grants", &b.grantCount)
	r.RegisterCounter("decode_errors", &b.decodeErrors)
	r.RegisterCounter("slave_errors", &b.slaveErrors)
	for i := range b.ports {
		r.RegisterCounter(fmt.Sprintf("wait_cycles/%d", i), &b.waits[i])
		r.RegisterCounter(fmt.Sprintf("grants/%d", i), &b.Grants[i])
	}
	r.OnSync(b.syncStats)
}

// syncStats folds the lazily credited busy/idle gap and wait-cycle tail
// into the counters through cycle now-1, so a phase-boundary snapshot or
// reset attributes every cycle to the epoch it belongs to. Advancing
// lastTick here is safe: the next Tick's gap credit starts from the new
// value, so no cycle is counted twice.
func (b *Bus) syncStats(now uint64) {
	if now == 0 {
		return
	}
	last := now - 1
	if b.ticked && last > b.lastTick {
		gap := last - b.lastTick
		if b.hasActive {
			b.busyCycles.Add(gap)
		} else {
			b.idleCycles.Add(gap)
		}
		b.lastTick = last
	}
	b.creditWait(last)
}

var _ sim.StatsSource = (*Bus)(nil)

func (b *Bus) decode(addr uint32) *binding {
	if b.lastBind < len(b.bindings) && b.bindings[b.lastBind].rng.Contains(addr) {
		return &b.bindings[b.lastBind]
	}
	for i := range b.bindings {
		if b.bindings[i].rng.Contains(addr) {
			b.lastBind = i
			return &b.bindings[i]
		}
	}
	return nil
}

// Tick implements sim.Device.
func (b *Bus) Tick(cycle uint64) {
	// Credit elided cycles (skip-kernel jumps, event-kernel sleeps) to the
	// occupancy counters: a tick is only omitted while the bus state is
	// frozen, so the whole gap was uniformly busy (posted-write drain) or
	// uniformly idle.
	if b.ticked && cycle > b.lastTick+1 {
		gap := cycle - b.lastTick - 1
		if b.hasActive {
			b.busyCycles.Add(gap)
		} else {
			b.idleCycles.Add(gap)
		}
	}
	// Settle the sleep gap's wait credit with the pre-arbitration
	// requesting set before this cycle's grant can change it.
	if cycle > 0 {
		b.creditWait(cycle - 1)
	}
	b.lastTick = cycle
	b.ticked = true

	if b.hasActive {
		b.busyCycles.Inc()
		if cycle >= b.active.done {
			b.complete(cycle)
		}
	}
	if !b.hasActive {
		if b.requesting > 0 {
			b.arbitrate(cycle)
		} else {
			b.idleCycles.Inc()
		}
	}
	// Account this cycle's arbitration waiting (post-grant set, exactly as
	// the per-cycle accounting did).
	b.creditWait(cycle)
}

// creditWait folds the cycles [waitCredited, upTo] into WaitCycles for
// every currently requesting port. Bulk crediting is exact because the
// requesting set only changes at bus ticks (grants) and at TryRequest
// asserts, and both settle the credit through the previous cycle first —
// so between settlements the set is frozen and requesters × elapsed equals
// the strict kernel's per-cycle increments.
func (b *Bus) creditWait(upTo uint64) {
	if upTo < b.waitCredited {
		return
	}
	delta := upTo + 1 - b.waitCredited
	b.waitCredited = upTo + 1
	if b.requesting == 0 {
		return
	}
	for wi, w := range b.reqMask {
		for w != 0 {
			b.waits[wi<<6+bits.TrailingZeros64(w)].Add(delta)
			w &= w - 1
		}
	}
}

// WaitCycles returns, per master, the cycles spent requesting without a
// grant — exactly the strict kernel's per-cycle counts. Like the
// busy/idle getters it settles the lazily credited tail on the fly: a run
// that ended while the bus slept through a transfer with masters queued
// has those frozen-set cycles folded in here.
func (b *Bus) WaitCycles() []uint64 {
	if now := b.now(); now > 0 {
		b.creditWait(now - 1)
	}
	out := make([]uint64, len(b.waits))
	for i := range b.waits {
		out[i] = b.waits[i].Value()
	}
	return out
}

// scanReq returns the lowest requesting port id in [lo, hi), or -1.
func (b *Bus) scanReq(lo, hi int) int {
	if lo >= hi {
		return -1
	}
	for wi := lo >> 6; wi <= (hi-1)>>6; wi++ {
		w := b.reqMask[wi]
		if wi == lo>>6 {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		if w == 0 {
			continue
		}
		if id := wi<<6 + bits.TrailingZeros64(w); id < hi {
			return id
		}
		return -1
	}
	return -1
}

func (b *Bus) complete(cycle uint64) {
	t := &b.active
	b.hasActive = false
	var resp ocp.Response
	if t.bind == nil {
		resp = ocp.Response{Err: true}
		b.decodeErrors.Inc()
	} else {
		resp, t.port.respBuf = ocp.PerformBuffered(t.bind.slave, &t.req, t.port.respBuf)
		if resp.Err {
			b.slaveErrors.Inc()
		}
	}
	if t.req.Cmd.IsRead() {
		t.port.resp = resp
		t.port.respAt = cycle + b.cfg.RespCycles
		t.port.hasResp = true
	}
}

func (b *Bus) arbitrate(cycle uint64) {
	winner := -1
	switch b.cfg.Arbitration {
	case FixedPriority:
		winner = b.scanReq(0, len(b.ports))
	case TDMA:
		// Only the slot owner may be granted; others wait for their slot.
		owner := int(cycle/b.cfg.SlotCycles) % len(b.ports)
		if b.ports[owner].state == portRequesting {
			winner = owner
		}
	default: // RoundRobin
		n := len(b.ports)
		if winner = b.scanReq(b.rrNext, n); winner < 0 {
			winner = b.scanReq(0, b.rrNext)
		}
		if winner >= 0 {
			b.rrNext = (winner + 1) % n
		}
	}
	if winner < 0 {
		b.idleCycles.Inc()
		return
	}
	p := b.ports[winner]
	p.state = portGranted
	b.requesting--
	b.reqMask[winner>>6] &^= 1 << (uint(winner) & 63)
	b.Grants[winner]++
	b.grantCount++

	// Latch the transaction into the bus-owned slot, copying the write
	// payload: from here on the master may reuse its request buffer.
	b.active.port = p
	b.active.req = p.req
	if len(p.req.Data) > 0 {
		b.activeData = append(b.activeData[:0], p.req.Data...)
		b.active.req.Data = b.activeData
	}
	bind := b.decode(b.active.req.Addr)
	b.active.bind = bind
	var access uint64
	if bind != nil {
		access = bind.slave.AccessCycles(&b.active.req)
	}
	occupancy := b.cfg.AddrCycles + uint64(b.active.req.Burst)*b.cfg.BeatCycles + access
	b.active.done = cycle + occupancy
	b.hasActive = true
}

// TickWake implements sim.TickSleeper (Tick then NextWake in one dispatch).
func (b *Bus) TickWake(cycle uint64) uint64 {
	b.Tick(cycle)
	return b.NextWake(cycle + 1)
}

var _ sim.Device = (*Bus)(nil)
var _ sim.Sleeper = (*Bus)(nil)
var _ sim.WakeSink = (*Bus)(nil)
var _ sim.TickSleeper = (*Bus)(nil)
