package amba

import (
	"testing"

	"noctg/internal/mem"
	"noctg/internal/ocp"
	"noctg/internal/sim"
	"noctg/internal/simtest"
)

// rig wires n scripted masters and a RAM (1 wait state) to a bus.
func rig(t *testing.T, cfg Config, scripts ...[]simtest.Step) (*sim.Engine, *Bus, []*simtest.Master, *mem.RAM) {
	t.Helper()
	e := sim.NewEngine(sim.Clock{})
	bus := New(cfg, e.Cycle)
	ram := mem.NewRAM("ram", 0x1000, 0x1000, 1)
	if err := bus.MapSlave(ram, ram.Range()); err != nil {
		t.Fatal(err)
	}
	masters := make([]*simtest.Master, len(scripts))
	for i, s := range scripts {
		masters[i] = simtest.NewMaster(bus.NewMasterPort(), s)
		e.Add(masters[i])
	}
	e.Add(bus)
	return e, bus, masters, ram
}

func runAll(t *testing.T, e *sim.Engine, masters []*simtest.Master, max uint64) {
	t.Helper()
	bus := findBus(e, masters)
	_, err := e.Run(max, func() bool {
		for _, m := range masters {
			if !m.Done() {
				return false
			}
		}
		return bus == nil || bus.Idle()
	})
	if err != nil {
		t.Fatalf("simulation did not finish: %v", err)
	}
}

// findBus extracts the bus from the masters' ports (all tests share one).
func findBus(e *sim.Engine, masters []*simtest.Master) *Bus {
	for _, m := range masters {
		if p, ok := m.Port.(*port); ok {
			return p.bus
		}
	}
	return nil
}

func TestSingleWriteAcceptTiming(t *testing.T) {
	script := []simtest.Step{{Gap: 3, Req: ocp.Request{Cmd: ocp.Write, Addr: 0x1004, Burst: 1, Data: []uint32{7}}}}
	e, _, ms, ram := rig(t, Config{}, script)
	runAll(t, e, ms, 100)
	m := ms[0]
	// Gap 3 → assert at cycle 3, grant at bus tick 3, accept at cycle 4.
	if m.AssertCycles[0] != 3 || m.AcceptCycles[0] != 4 {
		t.Fatalf("assert=%d accept=%d, want 3,4", m.AssertCycles[0], m.AcceptCycles[0])
	}
	if ram.PeekWord(0x1004) != 7 {
		t.Fatal("write did not reach RAM")
	}
}

func TestSingleReadLatency(t *testing.T) {
	script := []simtest.Step{{Gap: 0, Req: ocp.Request{Cmd: ocp.Read, Addr: 0x1008, Burst: 1}}}
	e, _, ms, ram := rig(t, Config{}, script)
	ram.PokeWord(0x1008, 0xcafe)
	runAll(t, e, ms, 100)
	m := ms[0]
	// assert 0, grant at bus tick 0, occupancy = addr(1)+beat(1)+wait(1) → done
	// at 3, resp delivered at 4.
	if m.AssertCycles[0] != 0 || m.AcceptCycles[0] != 1 {
		t.Fatalf("assert=%d accept=%d", m.AssertCycles[0], m.AcceptCycles[0])
	}
	if m.RespCycles[0] != 4 {
		t.Fatalf("resp cycle = %d, want 4", m.RespCycles[0])
	}
	if m.RespData[0][0] != 0xcafe {
		t.Fatalf("resp data = %#x", m.RespData[0][0])
	}
}

func TestBurstReadDataAndOccupancy(t *testing.T) {
	script := []simtest.Step{
		{Gap: 0, Req: ocp.Request{Cmd: ocp.BurstRead, Addr: 0x1010, Burst: 4}},
		{Gap: 0, Req: ocp.Request{Cmd: ocp.Read, Addr: 0x1010, Burst: 1}},
	}
	e, _, ms, ram := rig(t, Config{}, script)
	for i := 0; i < 4; i++ {
		ram.PokeWord(0x1010+uint32(i*4), uint32(100+i))
	}
	runAll(t, e, ms, 100)
	m := ms[0]
	for i := 0; i < 4; i++ {
		if m.RespData[0][i] != uint32(100+i) {
			t.Fatalf("burst beat %d = %v", i, m.RespData[0])
		}
	}
	// Burst: grant at 0, occupancy 1+4·1+4·1 = 9 → done 9, resp 10.
	if m.RespCycles[0] != 10 {
		t.Fatalf("burst resp at %d, want 10", m.RespCycles[0])
	}
	// The single read after it: assert at 11, grant 11, done 11+3, resp 15.
	if m.RespCycles[1] != 15 {
		t.Fatalf("second read resp at %d, want 15", m.RespCycles[1])
	}
}

func TestPostedWriteThenReadOrdering(t *testing.T) {
	// A read issued right after a posted write to the same address must
	// observe the written value (single outstanding txn, in-order bus).
	script := []simtest.Step{
		{Gap: 0, Req: ocp.Request{Cmd: ocp.Write, Addr: 0x1020, Burst: 1, Data: []uint32{0x77}}},
		{Gap: 0, Req: ocp.Request{Cmd: ocp.Read, Addr: 0x1020, Burst: 1}},
	}
	e, _, ms, _ := rig(t, Config{}, script)
	runAll(t, e, ms, 100)
	if ms[0].RespData[1][0] != 0x77 {
		t.Fatalf("read after write = %#x, want 0x77", ms[0].RespData[1][0])
	}
}

func TestRoundRobinFairness(t *testing.T) {
	mk := func() []simtest.Step {
		var s []simtest.Step
		for i := 0; i < 8; i++ {
			s = append(s, simtest.Step{Gap: 0, Req: ocp.Request{Cmd: ocp.Write, Addr: 0x1000, Burst: 1, Data: []uint32{1}}})
		}
		return s
	}
	e, bus, ms, _ := rig(t, Config{Arbitration: RoundRobin}, mk(), mk(), mk())
	runAll(t, e, ms, 2000)
	for i := 1; i < 3; i++ {
		if bus.Grants[i] != bus.Grants[0] {
			t.Fatalf("grants not fair: %v", bus.Grants)
		}
	}
}

func TestFixedPriorityStarvation(t *testing.T) {
	// Master 0 spams the bus; master 1 only gets in when 0 is between
	// transactions. Under fixed priority master 0 must always win a
	// simultaneous arbitration round.
	spam := make([]simtest.Step, 20)
	for i := range spam {
		spam[i] = simtest.Step{Gap: 0, Req: ocp.Request{Cmd: ocp.Write, Addr: 0x1000, Burst: 1, Data: []uint32{1}}}
	}
	polite := []simtest.Step{{Gap: 0, Req: ocp.Request{Cmd: ocp.Write, Addr: 0x1004, Burst: 1, Data: []uint32{2}}}}
	e, bus, ms, _ := rig(t, Config{Arbitration: FixedPriority}, spam, polite)
	runAll(t, e, ms, 2000)
	if bus.WaitCycles()[1] == 0 {
		t.Fatal("low-priority master should have waited")
	}
	// Master 1 asserts at cycle 0 like master 0 but is accepted later.
	if ms[1].AcceptCycles[0] <= ms[0].AcceptCycles[0] {
		t.Fatalf("fixed priority violated: m0 accept %d, m1 accept %d",
			ms[0].AcceptCycles[0], ms[1].AcceptCycles[0])
	}
}

func TestContentionDelaysSecondMaster(t *testing.T) {
	// Two masters assert reads at the same cycle: the loser's response is
	// delayed by at least the winner's occupancy.
	script := []simtest.Step{{Gap: 0, Req: ocp.Request{Cmd: ocp.Read, Addr: 0x1000, Burst: 1}}}
	e, _, ms, _ := rig(t, Config{}, script, script)
	runAll(t, e, ms, 100)
	d := int64(ms[1].RespCycles[0]) - int64(ms[0].RespCycles[0])
	if d < 3 {
		t.Fatalf("second master delayed by %d cycles, want >= occupancy 3", d)
	}
}

func TestDecodeErrorRead(t *testing.T) {
	script := []simtest.Step{{Gap: 0, Req: ocp.Request{Cmd: ocp.Read, Addr: 0x9999_0000, Burst: 1}}}
	e := sim.NewEngine(sim.Clock{})
	bus := New(Config{}, e.Cycle)
	m := simtest.NewMaster(bus.NewMasterPort(), script)
	e.Add(m)
	e.Add(bus)
	_, err := e.Run(100, m.Done)
	if err != nil {
		t.Fatal(err)
	}
	if bus.DecodeErrors() != 1 {
		t.Fatal("decode error not counted")
	}
	if len(m.RespData[0]) != 0 {
		t.Fatal("error response should carry no data")
	}
}

func TestMapSlaveOverlapRejected(t *testing.T) {
	bus := New(Config{}, func() uint64 { return 0 })
	r1 := mem.NewRAM("a", 0x1000, 0x100, 0)
	r2 := mem.NewRAM("b", 0x1080, 0x100, 0)
	if err := bus.MapSlave(r1, r1.Range()); err != nil {
		t.Fatal(err)
	}
	if err := bus.MapSlave(r2, r2.Range()); err == nil {
		t.Fatal("overlapping map should fail")
	}
}

func TestBusSaturation(t *testing.T) {
	// Six masters spamming reads keep the bus busy nearly every cycle.
	script := make([]simtest.Step, 10)
	for i := range script {
		script[i] = simtest.Step{Gap: 0, Req: ocp.Request{Cmd: ocp.Read, Addr: 0x1000, Burst: 1}}
	}
	scripts := make([][]simtest.Step, 6)
	for i := range scripts {
		scripts[i] = script
	}
	e, bus, ms, _ := rig(t, Config{}, scripts...)
	runAll(t, e, ms, 10_000)
	total := e.Cycle()
	if float64(bus.BusyCycles())/float64(total) < 0.9 {
		t.Fatalf("bus busy %d of %d cycles; expected saturation", bus.BusyCycles(), total)
	}
	var waits uint64
	for _, w := range bus.WaitCycles() {
		waits += w
	}
	if waits == 0 {
		t.Fatal("saturated bus must produce arbitration waiting")
	}
}

func TestInvalidRequestPanics(t *testing.T) {
	bus := New(Config{}, func() uint64 { return 0 })
	p := bus.NewMasterPort()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid request should panic")
		}
	}()
	p.TryRequest(&ocp.Request{Cmd: ocp.Read, Addr: 1, Burst: 1}) // unaligned
}

func TestSemaphoreOverBus(t *testing.T) {
	// Full-stack Figure 2(b) skeleton: two masters race for one semaphore.
	sem := mem.NewSemBank("sem", 0x9000, 1, 1)
	e := sim.NewEngine(sim.Clock{})
	bus := New(Config{}, e.Cycle)
	if err := bus.MapSlave(sem, sem.Range()); err != nil {
		t.Fatal(err)
	}
	lock := []simtest.Step{{Gap: 0, Req: ocp.Request{Cmd: ocp.Read, Addr: 0x9000, Burst: 1}}}
	m1 := simtest.NewMaster(bus.NewMasterPort(), lock)
	m2 := simtest.NewMaster(bus.NewMasterPort(), lock)
	e.Add(m1)
	e.Add(m2)
	e.Add(bus)
	_, err := e.Run(100, func() bool { return m1.Done() && m2.Done() })
	if err != nil {
		t.Fatal(err)
	}
	got := []uint32{m1.RespData[0][0], m2.RespData[0][0]}
	if got[0]+got[1] != 1 {
		t.Fatalf("exactly one master should win the semaphore, got %v", got)
	}
}

func TestPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || FixedPriority.String() != "fixed-priority" {
		t.Fatal("policy strings")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy string empty")
	}
}
