package amba

import (
	"testing"

	"noctg/internal/ocp"
	"noctg/internal/simtest"
)

func TestTDMAGrantsOnlyInSlot(t *testing.T) {
	spam := func() []simtest.Step {
		s := make([]simtest.Step, 6)
		for i := range s {
			s[i] = simtest.Step{Req: ocp.Request{Cmd: ocp.Write, Addr: 0x1000, Burst: 1, Data: []uint32{1}}}
		}
		return s
	}
	e, bus, ms, _ := rig(t, Config{Arbitration: TDMA, SlotCycles: 8}, spam(), spam())
	runAll(t, e, ms, 10_000)
	// Every acceptance must fall in the accepting master's slot. The grant
	// happens on the bus tick before acceptance, so check the grant cycle.
	for id, m := range ms {
		for _, acc := range m.AcceptCycles {
			grant := acc - 1
			owner := int(grant/8) % 2
			if owner != id {
				t.Fatalf("master %d accepted at %d (grant %d) in master %d's slot", id, acc, grant, owner)
			}
		}
	}
	if bus.Grants[0] == 0 || bus.Grants[1] == 0 {
		t.Fatal("both masters must progress under TDMA")
	}
}

func TestTDMAIsolatesBandwidth(t *testing.T) {
	// A spamming master cannot delay the other's worst-case wait beyond
	// one TDMA frame (bounded latency — the point of TDMA).
	spam := make([]simtest.Step, 40)
	for i := range spam {
		spam[i] = simtest.Step{Req: ocp.Request{Cmd: ocp.Write, Addr: 0x1000, Burst: 1, Data: []uint32{1}}}
	}
	polite := []simtest.Step{{Gap: 13, Req: ocp.Request{Cmd: ocp.Read, Addr: 0x1004, Burst: 1}}}
	e, _, ms, _ := rig(t, Config{Arbitration: TDMA, SlotCycles: 8}, spam, polite)
	runAll(t, e, ms, 10_000)
	wait := ms[1].AcceptCycles[0] - ms[1].AssertCycles[0]
	if wait > 2*8+2 {
		t.Fatalf("TDMA wait %d exceeds one frame bound", wait)
	}
}

func TestTDMAIdleSlotsWaste(t *testing.T) {
	// With only master 0 active, TDMA wastes master 1's slots: the same
	// workload takes longer than under round-robin.
	work := func() []simtest.Step {
		s := make([]simtest.Step, 20)
		for i := range s {
			s[i] = simtest.Step{Req: ocp.Request{Cmd: ocp.Read, Addr: 0x1000, Burst: 1}}
		}
		return s
	}
	span := func(pol Policy) uint64 {
		e, _, ms, _ := rig(t, Config{Arbitration: pol, SlotCycles: 8}, work(), nil)
		runAll(t, e, ms, 100_000)
		return e.Cycle()
	}
	if tdma, rr := span(TDMA), span(RoundRobin); tdma <= rr {
		t.Fatalf("TDMA (%d) should be slower than round-robin (%d) with idle slots", tdma, rr)
	}
}
