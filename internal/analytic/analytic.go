// Package analytic is the closed-form queueing estimator behind the
// sweep layer's analytical fast-path: it maps a sweep point (fabric
// topology, spatial traffic pattern, arrival process, message classes)
// onto a predicted zero-load latency, per-load-level mean latency and
// saturation-knee load without running a single simulated cycle.
//
// The model follows the per-router channel-load construction of Mandal et
// al., "Analytical Performance Models for NoCs with Multiple Priority
// Traffic Classes" (arXiv 1908.02408), adapted to this repository's
// closed-loop generators: every master keeps one outstanding transaction,
// so the system is a closed queueing network with N customers and the
// drawn inter-transaction gap as think time. Spatial patterns become a
// per-source destination distribution; dimension-ordered route enumeration
// (noc.Config.Route — pinned to the live router's decision by test) turns
// that distribution into per-channel flit loads; the per-transaction
// demand on the most loaded resource then gives the saturation knee
// through the operational bottleneck law, and an approximate-MVA fixed
// point with an M/G/1-style burstiness correction gives the latency at
// every load level in between.
//
// Structural assumptions (each one a named error-bar contributor):
//
//   - Contention-free zero-load pipeline: the zero-load latency formulas
//     reproduce the NI/router/slave cycle accounting exactly on an empty
//     fabric; calibration tests pin them against simulation.
//   - Independence: per-channel loads superpose linearly; wormhole
//     blocking and VC backpressure are not modelled (their effect appears
//     near the knee, inside the knee error bar).
//   - Symmetric progress: every master injects at the same rate, so
//     per-resource utilization is rate × summed demand. Asymmetric
//     patterns (hotspot) stress this least-well near saturation.
//   - Class-blind fabrics: Request.Class is forwarded untouched by both
//     interconnects (see the ROADMAP's class-aware arbitration item), so
//     priority terms apply to the injection mix only — every class sees
//     the same predicted latency.
//
// The estimator's hot path (Estimate, LatencyAt) performs no allocation;
// compile-time work happens once in New.
package analytic

import (
	"fmt"
	"math"

	"noctg/internal/noc"
)

// Fabric kinds.
const (
	KindAMBA   = "amba"
	KindXPipes = "xpipes"
)

// Fabric describes the interconnect of the point under estimation.
type Fabric struct {
	// Kind is KindAMBA or KindXPipes.
	Kind string `json:"kind"`
	// Torus selects wrap-around rings (×pipes only).
	Torus bool `json:"torus,omitempty"`
	// Width, Height are the resolved router-grid dimensions (×pipes only;
	// auto-sized fabrics must be resolved by the caller, e.g. through
	// platform.AutoMesh).
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
	// WaitStates is the slave intrinsic access time per burst beat.
	WaitStates float64 `json:"wait_states"`
}

// Traffic describes the traffic a point offers: where each master sits,
// where its transactions go, and the temporal shape of its injections.
type Traffic struct {
	// Masters is the generator count (the closed-network population).
	Masters int `json:"masters"`
	// MasterNode[i] is the fabric node of master i (×pipes only).
	MasterNode []int `json:"master_node,omitempty"`
	// DestNodes[i]/DestProbs[i] give master i's destination distribution
	// over fabric nodes (×pipes only): DestProbs[i][k] is the probability
	// one transaction targets DestNodes[i][k]. Probabilities must sum to 1
	// per master.
	DestNodes [][]int     `json:"dest_nodes,omitempty"`
	DestProbs [][]float64 `json:"dest_probs,omitempty"`
	// ReadFraction is the probability a transaction is a (blocking) read;
	// the remainder are posted writes.
	ReadFraction float64 `json:"read_fraction"`
	// Burst is the data beats per transaction.
	Burst int `json:"burst"`
	// GapSCV is the squared coefficient of variation of the drawn
	// inter-transaction gaps (stochastic.Config.GapSCV) — the burstiness
	// input of the waiting-time term.
	GapSCV float64 `json:"gap_scv"`
	// MeanGap is the source's own mean gap in cycles for fixed-load
	// sources (MMPP/self-similar arrival processes); 0 for gap-swept
	// workloads, whose load is supplied per call (LatencyAt).
	MeanGap float64 `json:"mean_gap,omitempty"`
	// Classes are the relative per-class injection weights (may be nil).
	Classes []float64 `json:"classes,omitempty"`
}

// Spec is one fully-described estimation point.
type Spec struct {
	Fabric  Fabric  `json:"fabric"`
	Traffic Traffic `json:"traffic"`
}

// Zero-load pipeline constants, matching the cycle accounting of the live
// models. All latencies are assert→event, the anchor of the generators'
// ReqLatency histogram and the curve layer's LatencyMean. Calibrated
// against simulation (see TestAnalyticZeroLoadCalibration):
//
// ×pipes read: assert→flit0 same cycle, one hop per cycle with one
// ejection cycle each way, slave pick + serve (1 + access), one-cycle
// response drain start, RespCycles delivery margin — in total
// 2·dist + reqFlits + respFlits + access + xpReadConst. Measured: 18
// cycles at distance 4 with one wait state (16 accept→response + the
// 2-flit request injection).
// ×pipes write: accepted the cycle after the tail flit enters the local
// router: reqFlits cycles after assert.
// AMBA read: request cycle + grant-to-address cycle + one data phase per
// beat extended by the slave wait states (measured: 4 at ws=1, 7 at
// ws=4); AMBA writes are posted — accepted one cycle after assert, the
// data phases drain on the bus behind the master's back.
const (
	xpReadConst = 4.0
	ambaGrant   = 1.0
	ambaAddr    = 1.0
	ambaBeat    = 1.0
)

// resource is one capacity-1 server of the compiled model.
type resource struct {
	// name identifies the resource in reports ("link 5E", "slave 11",
	// "inject 0", "bus").
	name string
	// demand is the summed per-transaction occupancy in cycles across all
	// masters: utilization = per-master rate × demand.
	demand float64
	// visits is the summed per-transaction visit probability across
	// masters; demand/visits is the mean occupancy per visiting
	// transaction (the M/G/1 service time of the waiting term).
	visits float64
}

// Estimator is a compiled estimation point. Compile once with New; the
// per-load queries (Estimate, LatencyAt, ThroughputAt, UtilizationAt)
// allocate nothing.
type Estimator struct {
	spec Spec

	resources  []resource
	bottleneck int // index of max-demand resource

	// r0Read / a0Write are the destination-averaged zero-load read
	// latency and write acceptance latency; t0 is the latency component
	// of the zero-load closed-loop period: r·r0Read + (1-r)·a0Write.
	r0Read  float64
	a0Write float64
	t0      float64

	// cb scales the latency-side waiting time relative to the
	// exponential AMVA baseline: the clamped arrival-gap SCV (service is
	// deterministic, so arrivals carry all the variability).
	cb float64

	classes []ClassEstimate
	note    string
}

// New validates and compiles a spec.
func New(spec Spec) (*Estimator, error) {
	if err := validate(spec); err != nil {
		return nil, err
	}
	e := &Estimator{spec: spec}
	switch spec.Fabric.Kind {
	case KindAMBA:
		e.compileAMBA()
	case KindXPipes:
		e.compileXPipes()
	}
	e.t0 = spec.Traffic.ReadFraction*e.r0Read + (1-spec.Traffic.ReadFraction)*e.a0Write
	// Waiting-time burstiness relative to the exponential AMVA baseline:
	// an M/G/1 wait scales with (Ca² + Cs²)/2, and the fabrics'
	// deterministic service makes the arrival SCV the whole story. Floor
	// at 0.25 (read/write mixing keeps some variability even under
	// near-deterministic gaps); cap at 4 — long-range-dependent sources
	// exceed what a renewal waiting term can express, and the error bar
	// says so.
	e.cb = spec.Traffic.GapSCV
	if e.cb < 0.25 {
		e.cb = 0.25
	}
	if e.cb > 4 {
		e.cb = 4
	}
	for i, r := range e.resources {
		if r.demand > e.resources[e.bottleneck].demand {
			e.bottleneck = i
		}
	}
	if w := spec.Traffic.Classes; len(w) > 0 {
		var sum float64
		for _, v := range w {
			sum += v
		}
		e.classes = make([]ClassEstimate, len(w))
		for i, v := range w {
			e.classes[i] = ClassEstimate{Class: i, Share: v / sum}
		}
		e.note = "classes shape the injection mix only: both fabrics forward Request.Class untouched (class-blind arbitration), so every class sees the same predicted latency"
	}
	return e, nil
}

func validate(spec Spec) error {
	t := &spec.Traffic
	if t.Masters < 1 {
		return fmt.Errorf("analytic: need at least one master, got %d", t.Masters)
	}
	if t.ReadFraction < 0 || t.ReadFraction > 1 || math.IsNaN(t.ReadFraction) {
		return fmt.Errorf("analytic: read fraction %v outside [0, 1]", t.ReadFraction)
	}
	if t.Burst < 1 {
		return fmt.Errorf("analytic: burst %d < 1", t.Burst)
	}
	if t.GapSCV < 0 || math.IsNaN(t.GapSCV) {
		return fmt.Errorf("analytic: gap SCV %v < 0", t.GapSCV)
	}
	switch spec.Fabric.Kind {
	case KindAMBA:
		return nil
	case KindXPipes:
	default:
		return fmt.Errorf("analytic: unknown fabric kind %q", spec.Fabric.Kind)
	}
	f := &spec.Fabric
	if f.Width < 2 || f.Height < 1 {
		return fmt.Errorf("analytic: ×pipes grid %dx%d too small", f.Width, f.Height)
	}
	nodes := f.Width * f.Height
	if len(t.MasterNode) != t.Masters || len(t.DestNodes) != t.Masters || len(t.DestProbs) != t.Masters {
		return fmt.Errorf("analytic: master/dest tables sized %d/%d/%d for %d masters",
			len(t.MasterNode), len(t.DestNodes), len(t.DestProbs), t.Masters)
	}
	for i := 0; i < t.Masters; i++ {
		if n := t.MasterNode[i]; n < 0 || n >= nodes {
			return fmt.Errorf("analytic: master %d at node %d outside %d-node fabric", i, n, nodes)
		}
		if len(t.DestNodes[i]) == 0 || len(t.DestNodes[i]) != len(t.DestProbs[i]) {
			return fmt.Errorf("analytic: master %d has %d dest nodes, %d probs",
				i, len(t.DestNodes[i]), len(t.DestProbs[i]))
		}
		var sum float64
		for k, d := range t.DestNodes[i] {
			if d < 0 || d >= nodes {
				return fmt.Errorf("analytic: master %d dest node %d outside %d-node fabric", i, d, nodes)
			}
			p := t.DestProbs[i][k]
			if p < 0 || p > 1 || math.IsNaN(p) {
				return fmt.Errorf("analytic: master %d dest prob %v outside [0, 1]", i, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("analytic: master %d dest probs sum to %v", i, sum)
		}
	}
	return nil
}

// compileAMBA builds the single-resource bus model.
func (e *Estimator) compileAMBA() {
	t := &e.spec.Traffic
	ws := e.spec.Fabric.WaitStates
	b := float64(t.Burst)
	// Per-transaction bus occupancy: address phase + one (possibly
	// wait-stated) data phase per beat. Arbitration pipelines with the
	// last data phase, so back-to-back grants leave no idle cycle
	// (measured: 3.0 cycles/transaction at ws=1, 6.0 at ws=4).
	occ := ambaAddr + b*(ambaBeat+ws)
	e.resources = append(e.resources, resource{
		name:   "bus",
		demand: float64(t.Masters) * occ,
		visits: float64(t.Masters),
	})
	e.r0Read = ambaGrant + ambaAddr + b*(ambaBeat+ws)
	e.a0Write = 1 // posted: accepted at the grant
}

// compileXPipes enumerates DOR routes for every (master, destination)
// pair and accumulates per-channel flit loads, per-slave service demand
// and per-NI injection demand.
func (e *Estimator) compileXPipes() {
	f := &e.spec.Fabric
	t := &e.spec.Traffic
	cfg := noc.Config{Width: f.Width, Height: f.Height}
	if f.Torus {
		cfg.Topology = noc.Torus
	}
	nodes := f.Width * f.Height
	r := t.ReadFraction
	b := t.Burst
	readReq, readResp := noc.FlitCounts(false, b)
	writeReq, _ := noc.FlitCounts(true, b)
	// Expected flits per transaction on the request and response paths.
	reqF := r*float64(readReq) + (1-r)*float64(writeReq)
	respF := r * float64(readResp)
	access := f.WaitStates * float64(b)

	link := make([]float64, nodes*noc.NumPorts)
	slave := make([]float64, nodes)
	slaveVisits := make([]float64, nodes)
	inject := make([]float64, nodes)
	var path []noc.Hop

	var r0 float64
	for i := 0; i < t.Masters; i++ {
		src := t.MasterNode[i]
		inject[src] += reqF
		for k, d := range t.DestNodes[i] {
			p := t.DestProbs[i][k]
			if p == 0 {
				continue
			}
			// Request path: src -> d, every link carries the expected
			// request flits.
			path = cfg.Route(src, d, path[:0])
			for _, h := range path {
				link[h.Node*noc.NumPorts+h.Port] += p * reqF
			}
			// Response path (reads only): d -> src.
			if respF > 0 {
				path = cfg.Route(d, src, path[:0])
				for _, h := range path {
					link[h.Node*noc.NumPorts+h.Port] += p * respF
				}
			}
			// Slave service: pick + access, plus the response drain for
			// reads (the NI drains the response before serving the next
			// request).
			slave[d] += p * (1 + access + r*float64(readResp))
			slaveVisits[d] += p
			// Zero-load latency contribution.
			dist := float64(cfg.RouteLen(src, d))
			readLat := 2*dist + float64(readReq) + float64(readResp) + access + xpReadConst
			r0 += p * readLat / float64(t.Masters)
		}
	}
	e.r0Read = r0
	e.a0Write = float64(writeReq)

	for n := 0; n < nodes; n++ {
		if inject[n] > 0 {
			e.resources = append(e.resources, resource{
				name:   fmt.Sprintf("inject %d", n),
				demand: inject[n],
				// One master per node in this floorplan.
				visits: 1,
			})
		}
		if slave[n] > 0 {
			e.resources = append(e.resources, resource{
				name:   fmt.Sprintf("slave %d", n),
				demand: slave[n],
				visits: slaveVisits[n],
			})
		}
		for p := 0; p < noc.NumPorts; p++ {
			if d := link[n*noc.NumPorts+p]; d > 0 {
				e.resources = append(e.resources, resource{
					name:   fmt.Sprintf("link %d%s", n, noc.PortName(p)),
					demand: d,
					// Flit-granular server: visits in units of packets is
					// not meaningful; use demand-normalized single-flit
					// service so the waiting term sees a fine-grained
					// server.
					visits: d,
				})
			}
		}
	}
}

// Spec returns the compiled specification.
func (e *Estimator) Spec() Spec { return e.spec }

// Bottleneck returns the name of the most loaded resource and its summed
// per-transaction demand in cycles.
func (e *Estimator) Bottleneck() (string, float64) {
	r := e.resources[e.bottleneck]
	return r.name, r.demand
}
