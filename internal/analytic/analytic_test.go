package analytic

import (
	"math"
	"testing"
)

// oneMaster is a hand-checkable 2x2 mesh point: one master at node 0
// reading from node 3 (distance 2), one wait state, burst 1.
func oneMaster() Spec {
	return Spec{
		Fabric: Fabric{Kind: KindXPipes, Width: 2, Height: 2, WaitStates: 1},
		Traffic: Traffic{
			Masters:      1,
			MasterNode:   []int{0},
			DestNodes:    [][]int{{3}},
			DestProbs:    [][]float64{{1}},
			ReadFraction: 1,
			Burst:        1,
			GapSCV:       1.0 / 3,
		},
	}
}

// TestXPipesHand pins the 2x2 single-master numbers computed by hand:
// zero-load read latency 2·2 + 2 + 3 + 1 + 4 = 14 cycles, slave
// bottleneck 1 + 1 + 3 = 5 cycles/transaction, so the closed loop
// self-limits (knee below zero) with a 200 TPK ceiling.
func TestXPipesHand(t *testing.T) {
	e, err := New(oneMaster())
	if err != nil {
		t.Fatal(err)
	}
	est := e.Estimate()
	if est.ZeroLoadLatency != 14 {
		t.Errorf("zero-load latency = %v, want 14", est.ZeroLoadLatency)
	}
	if est.WriteAccept != 3 {
		t.Errorf("write accept = %v, want 3", est.WriteAccept)
	}
	if est.Bottleneck != "slave 3" || est.BottleneckDemand != 5 {
		t.Errorf("bottleneck = %s/%v, want slave 3/5", est.Bottleneck, est.BottleneckDemand)
	}
	if est.Saturates {
		t.Errorf("single master on an idle mesh must self-limit, got knee at gap %v", est.KneeGap)
	}
	if est.SatThroughputTPK != 200 {
		t.Errorf("saturation throughput = %v, want 200", est.SatThroughputTPK)
	}
	// One customer never queues: latency is flat at the zero-load value.
	if got := e.LatencyAt(0); got != 14 {
		t.Errorf("LatencyAt(0) = %v, want 14", got)
	}
	// Closed-loop throughput at gap 0: one transaction per 1+14 cycles.
	if got, want := e.ThroughputAt(0), 1000.0/15; math.Abs(got-want) > 1e-9 {
		t.Errorf("ThroughputAt(0) = %v, want %v", got, want)
	}
	// The accessors expose the same bottleneck the estimate reports.
	if name, demand := e.Bottleneck(); name != est.Bottleneck || demand != est.BottleneckDemand {
		t.Errorf("Bottleneck() = %s/%v, want %s/%v", name, demand, est.Bottleneck, est.BottleneckDemand)
	}
	// A single master far apart from its own service never stresses the
	// bottleneck: utilization vanishes with the gap.
	if u := e.UtilizationAt(1e6); !(u > 0 && u < 0.01) {
		t.Errorf("UtilizationAt(1e6) = %v, want a vanishing utilization", u)
	}
}

// TestXPipesConverging pins the three-masters-one-slave hotspot on the
// 2x2 mesh: summed slave demand 3·5 = 15, mean zero-load latency
// (14+12+12)/3, knee where the slave saturates.
func TestXPipesConverging(t *testing.T) {
	spec := Spec{
		Fabric: Fabric{Kind: KindXPipes, Width: 2, Height: 2, WaitStates: 1},
		Traffic: Traffic{
			Masters:      3,
			MasterNode:   []int{0, 1, 2},
			DestNodes:    [][]int{{3}, {3}, {3}},
			DestProbs:    [][]float64{{1}, {1}, {1}},
			ReadFraction: 1,
			Burst:        1,
			GapSCV:       1,
		},
	}
	e, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	est := e.Estimate()
	r0 := (14.0 + 12 + 12) / 3
	if math.Abs(est.ZeroLoadLatency-r0) > 1e-9 {
		t.Errorf("zero-load latency = %v, want %v", est.ZeroLoadLatency, r0)
	}
	if est.Bottleneck != "slave 3" || est.BottleneckDemand != 15 {
		t.Errorf("bottleneck = %s/%v, want slave 3/15", est.Bottleneck, est.BottleneckDemand)
	}
	if !est.Saturates {
		t.Fatal("three masters on one slave must saturate")
	}
	if knee := 15 - r0 - 1; math.Abs(est.KneeGap-knee) > 1e-9 {
		t.Errorf("knee gap = %v, want %v", est.KneeGap, knee)
	}
	if want := 3000.0 / 15; math.Abs(est.SatThroughputTPK-want) > 1e-9 {
		t.Errorf("saturation throughput = %v, want %v", est.SatThroughputTPK, want)
	}
	// Past the knee the latency must rise well above zero-load; far below
	// it, it must approach zero-load from above.
	if lat := e.LatencyAt(0); lat < r0+1 {
		t.Errorf("saturated latency %v not above zero-load %v", lat, r0)
	}
	if lat := e.LatencyAt(500); lat < r0 || lat > r0+1 {
		t.Errorf("light-load latency %v strayed from zero-load %v", lat, r0)
	}
	// Monotonicity: latency never increases with gap.
	prev := math.Inf(1)
	for g := 0.0; g <= 64; g += 0.5 {
		if lat := e.LatencyAt(g); lat > prev+1e-9 {
			t.Fatalf("latency rose from %v to %v at gap %v", prev, lat, g)
		} else {
			prev = lat
		}
	}
	// Past the knee, utilization clamps to 1 while the uncapped demand
	// ratio keeps measuring the overload depth.
	if u := e.UtilizationAt(0); u != 1 {
		t.Errorf("UtilizationAt(0) = %v, want clamp to 1 past the knee", u)
	}
	if ratio := e.DemandRatioAt(0); ratio <= 1 {
		t.Errorf("DemandRatioAt(0) = %v, want > 1 past the knee", ratio)
	}
}

// TestAMBAHand pins the bus model: occupancy addr + B·(beat+ws) summed
// over masters, zero-load read 2 + B·(1+ws), posted writes accepted in
// one cycle.
func TestAMBAHand(t *testing.T) {
	spec := Spec{
		Fabric: Fabric{Kind: KindAMBA, WaitStates: 2},
		Traffic: Traffic{
			Masters:      2,
			ReadFraction: 0.5,
			Burst:        1,
			GapSCV:       1,
		},
	}
	e, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	est := e.Estimate()
	if est.ZeroLoadLatency != 5 {
		t.Errorf("zero-load latency = %v, want 5", est.ZeroLoadLatency)
	}
	if est.WriteAccept != 1 {
		t.Errorf("write accept = %v, want 1", est.WriteAccept)
	}
	if est.Bottleneck != "bus" || est.BottleneckDemand != 8 {
		t.Errorf("bottleneck = %s/%v, want bus/8", est.Bottleneck, est.BottleneckDemand)
	}
	// T0 = 0.5·5 + 0.5·1 = 3; knee = 8 - 3 - 1 = 4.
	if !est.Saturates || math.Abs(est.KneeGap-4) > 1e-9 {
		t.Errorf("knee gap = %v (saturates %v), want 4", est.KneeGap, est.Saturates)
	}
	if est.SatThroughputTPK != 250 {
		t.Errorf("saturation throughput = %v, want 250", est.SatThroughputTPK)
	}
}

// TestClasses checks the class-blind view: shares follow the weights,
// the note says why latency is shared.
func TestClasses(t *testing.T) {
	spec := oneMaster()
	spec.Traffic.Classes = []float64{3, 1}
	e, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	est := e.Estimate()
	if len(est.Classes) != 2 || est.Classes[0].Share != 0.75 || est.Classes[1].Share != 0.25 {
		t.Fatalf("class shares = %+v, want 0.75/0.25", est.Classes)
	}
	if est.Note == "" {
		t.Error("class-blind note missing")
	}
}

// TestValidation exercises the rejection paths.
func TestValidation(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Traffic.Masters = 0 },
		func(s *Spec) { s.Traffic.ReadFraction = 1.5 },
		func(s *Spec) { s.Traffic.Burst = 0 },
		func(s *Spec) { s.Traffic.GapSCV = -1 },
		func(s *Spec) { s.Fabric.Kind = "crossbar" },
		func(s *Spec) { s.Fabric.Width = 1 },
		func(s *Spec) { s.Traffic.MasterNode = []int{9} },
		func(s *Spec) { s.Traffic.DestNodes = [][]int{{-1}} },
		func(s *Spec) { s.Traffic.DestProbs = [][]float64{{0.5}} },
		func(s *Spec) { s.Traffic.DestProbs = nil },
	}
	for i, mut := range bad {
		spec := oneMaster()
		mut(&spec)
		if _, err := New(spec); err == nil {
			t.Errorf("case %d: bad spec accepted", i)
		}
	}
	if _, err := New(oneMaster()); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

// TestTorusRoutesWrap checks wrap routes shorten torus paths: corner to
// corner on a 4x1 ring is one hop, so the zero-load latency drops.
func TestTorusRoutesWrap(t *testing.T) {
	mesh := Spec{
		Fabric: Fabric{Kind: KindXPipes, Width: 4, Height: 1, WaitStates: 1},
		Traffic: Traffic{
			Masters: 1, MasterNode: []int{0},
			DestNodes: [][]int{{3}}, DestProbs: [][]float64{{1}},
			ReadFraction: 1, Burst: 1, GapSCV: 1,
		},
	}
	torus := mesh
	torus.Fabric.Torus = true
	em, err := New(mesh)
	if err != nil {
		t.Fatal(err)
	}
	et, err := New(torus)
	if err != nil {
		t.Fatal(err)
	}
	// Mesh distance 3, torus distance 1: latency difference 2·2 = 4.
	if d := em.Estimate().ZeroLoadLatency - et.Estimate().ZeroLoadLatency; d != 4 {
		t.Errorf("torus wrap saved %v cycles, want 4", d)
	}
}

// BenchmarkEstimate guards the hot path; the alloc ratchet lives in the
// root alloc-guard suite.
func BenchmarkEstimate(b *testing.B) {
	e, err := New(oneMaster())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		est := e.Estimate()
		_ = e.LatencyAt(float64(i % 32))
		_ = est
	}
}
