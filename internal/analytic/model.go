package analytic

import "math"

// ClassEstimate is the per-class slice of a prediction. Until class-aware
// arbitration lands, every class shares the fabric's latency; Share is
// the class's fraction of the injection mix.
type ClassEstimate struct {
	Class int     `json:"class"`
	Share float64 `json:"share"`
}

// Estimate is the closed-form prediction for one point: the zero-load
// operating corner, the saturation knee, and structural error bars.
type Estimate struct {
	// ZeroLoadLatency is the contention-free mean read latency in cycles
	// (assert to response), destination-averaged.
	ZeroLoadLatency float64 `json:"zero_load_latency_cycles"`
	// WriteAccept is the contention-free write acceptance latency.
	WriteAccept float64 `json:"write_accept_cycles"`
	// Saturates reports whether any resource can saturate: with few
	// masters and a fast fabric the closed loop self-limits and no knee
	// exists at any gap.
	Saturates bool `json:"saturates"`
	// KneeGap is the mean drawn gap at which the bottleneck reaches full
	// utilization (only meaningful when Saturates). Gaps below it run the
	// fabric saturated.
	KneeGap float64 `json:"knee_gap,omitempty"`
	// KneeOfferedTPK is the offered load at the knee in transactions per
	// 1000 cycles across all masters: Masters·1000/(KneeGap+1).
	KneeOfferedTPK float64 `json:"knee_offered_tpk,omitempty"`
	// SatThroughputTPK is the saturated transaction throughput ceiling:
	// Masters·1000/BottleneckDemand.
	SatThroughputTPK float64 `json:"sat_throughput_tpk"`
	// Bottleneck names the limiting resource; BottleneckDemand is its
	// per-transaction occupancy in cycles summed across masters.
	Bottleneck       string  `json:"bottleneck"`
	BottleneckDemand float64 `json:"bottleneck_demand_cycles"`
	// GapSCV echoes the burstiness input the waiting term used.
	GapSCV float64 `json:"gap_scv"`
	// KneeRelErr / LatencyRelErr are structural error bars: relative
	// uncertainty on the knee position (in offered load) and on
	// below-knee mean latency. They widen with burstiness and with how
	// asymmetric the destination distribution is, the two effects the
	// independence approximation handles worst.
	KneeRelErr    float64 `json:"knee_rel_err"`
	LatencyRelErr float64 `json:"latency_rel_err"`
	// ValidMinGap bounds the validity range: below this mean gap the
	// fabric is past the knee and LatencyAt returns the closed-loop
	// asymptote rather than a steady-state mean (open-loop latency would
	// be unbounded there).
	ValidMinGap float64 `json:"valid_min_gap"`
	// Classes is the per-class view (nil without message classes).
	Classes []ClassEstimate `json:"classes,omitempty"`
	// Note records modelling caveats (class-blind forwarding, SCV clamp).
	Note string `json:"note,omitempty"`
}

// Estimate computes the point prediction. It allocates nothing beyond
// the slices compiled in New (Classes aliases the compiled slice).
func (e *Estimator) Estimate() Estimate {
	bott := e.resources[e.bottleneck]
	n := float64(e.spec.Traffic.Masters)
	est := Estimate{
		ZeroLoadLatency:  e.r0Read,
		WriteAccept:      e.a0Write,
		SatThroughputTPK: 1000 * n / bott.demand,
		Bottleneck:       bott.name,
		BottleneckDemand: bott.demand,
		GapSCV:           e.spec.Traffic.GapSCV,
		Classes:          e.classes,
		Note:             e.note,
	}
	// Closed-loop period at gap g is g+1+T0 plus queueing; the bottleneck
	// saturates where demand-per-period hits 1: g* = S - T0 - 1.
	knee := bott.demand - e.t0 - 1
	if knee > 0 {
		est.Saturates = true
		est.KneeGap = knee
		est.KneeOfferedTPK = 1000 * n / (knee + 1)
		est.ValidMinGap = knee
	}
	// Error bars: base model error, plus burstiness beyond exponential
	// (the renewal waiting term underestimates correlated sources), plus
	// destination skew (independence approximation is weakest when one
	// resource takes most of the load).
	burst := math.Abs(e.spec.Traffic.GapSCV-1) / 8
	if burst > 0.5 {
		burst = 0.5
	}
	skew := e.destSkew() * 0.1
	est.KneeRelErr = 0.10 + burst + skew
	est.LatencyRelErr = 0.12 + burst/2 + skew
	return est
}

// destSkew measures destination-distribution asymmetry in [0, 1]: 0 for a
// balanced pattern, →1 when a single resource carries all load.
func (e *Estimator) destSkew() float64 {
	var sum, max float64
	for _, r := range e.resources {
		sum += r.demand
		if r.demand > max {
			max = r.demand
		}
	}
	if sum == 0 || len(e.resources) < 2 {
		return 0
	}
	mean := sum / float64(len(e.resources))
	s := (max - mean) / sum * float64(len(e.resources)) / float64(len(e.resources)-1)
	if s > 1 {
		s = 1
	}
	return s
}

// UtilizationAt returns the predicted bottleneck utilization at the given
// mean drawn gap, clamped to 1.
func (e *Estimator) UtilizationAt(gap float64) float64 {
	u := e.resources[e.bottleneck].demand / (gap + 1 + e.t0)
	if u > 1 {
		return 1
	}
	return u
}

// DemandRatioAt is UtilizationAt without the cap: values above 1 measure
// how deep past saturation a point sits, which the pre-pass uses to
// decide whether the model brackets a point confidently.
func (e *Estimator) DemandRatioAt(gap float64) float64 {
	return e.resources[e.bottleneck].demand / (gap + 1 + e.t0)
}

// ThroughputAt returns the predicted transaction throughput in
// transactions per 1000 cycles across all masters at the given mean gap.
func (e *Estimator) ThroughputAt(gap float64) float64 {
	_, x := e.solve(gap)
	return 1000 * x * float64(e.spec.Traffic.Masters)
}

// LatencyAt returns the predicted mean read latency in cycles at the
// given mean drawn gap. Past the knee it converges to the closed-loop
// asymptote N·D - Z (population-limited, not unbounded).
func (e *Estimator) LatencyAt(gap float64) float64 {
	lat, _ := e.solve(gap)
	return lat
}

// solve runs the Schweitzer approximate-MVA fixed point on the one-server
// reduction: the bottleneck is the queueing station (per-customer demand
// D), everything else — gap, handshake, and the contention-free part of
// the transaction latency — is think time Z. Throughput comes from the
// uncorrected fixed point, which is exactly capacity-calibrated (X -> 1/D
// as Z -> 0); the burstiness factor cb then scales only the latency-side
// waiting time, clamped to the closed-loop ceiling N·D - Z - D that a
// population of N customers can never exceed. Returns (mean read latency,
// per-master throughput). Zero allocations.
func (e *Estimator) solve(gap float64) (latency, x float64) {
	n := float64(e.spec.Traffic.Masters)
	d := e.resources[e.bottleneck].demand / n
	z := gap + 1 + e.t0 - d
	if z < 0 {
		z = 0
	}
	if n == 1 {
		// One customer never queues behind itself.
		return e.r0Read, 1 / (gap + 1 + e.t0)
	}
	// Schweitzer: arriving customer sees Q·(N-1)/N customers at the
	// station. Damped iteration; the map is a contraction for D, Z > 0.
	q := d / (d + z) * n // warm start near the balanced fixed point
	var rst float64
	for i := 0; i < 64; i++ {
		rst = d * (1 + q*(n-1)/n)
		xi := n / (z + rst)
		qn := xi * rst
		if math.Abs(qn-q) < 1e-9 {
			q = qn
			break
		}
		q = 0.5*q + 0.5*qn
	}
	rst = d * (1 + q*(n-1)/n)
	x = 1 / (z + rst) // per-master
	wait := e.cb * (rst - d)
	if ceil := n*d - z - d; wait > ceil {
		if ceil < 0 {
			ceil = 0
		}
		wait = ceil
	}
	// The queueing excess over the contention-free service lands on the
	// read path (reads block; writes are posted).
	return e.r0Read + wait, x
}
