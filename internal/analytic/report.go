package analytic

import (
	"encoding/json"
	"io"
)

// Entry pairs one estimated configuration with its prediction.
type Entry struct {
	// Label identifies the workload/fabric pair in the sweep's own
	// labelling scheme.
	Label    string   `json:"label"`
	Spec     Spec     `json:"spec"`
	Estimate Estimate `json:"estimate"`
	// Err records a configuration the estimator rejected (the entry then
	// carries no prediction); estimation failures are reported, never
	// silently dropped.
	Err string `json:"err,omitempty"`
}

// Report is the analytic-pre-pass artifact: every configuration the
// estimator was consulted about, in sweep order.
type Report struct {
	Entries []Entry `json:"entries"`
}

// WriteJSON renders the report as indented JSON with a trailing newline,
// matching the sweep layer's artifact conventions.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
