package cache

import (
	"math/rand"
	"testing"
)

func TestTwoWayHoldsAliasingLines(t *testing.T) {
	// 4 lines, 2 ways → 2 sets, 8-byte lines, 16-byte set stride.
	c := New(Config{Lines: 4, WordsPerLine: 2, Ways: 2})
	c.Fill(0x00, []uint32{1, 2})
	c.Fill(0x10, []uint32{3, 4}) // same set, different tag
	if v, ok := c.Lookup(0x00); !ok || v != 1 {
		t.Fatal("first way evicted by second fill")
	}
	if v, ok := c.Lookup(0x10); !ok || v != 3 {
		t.Fatal("second way missing")
	}
	// A direct-mapped cache of the same size thrashes on this pattern.
	d := New(Config{Lines: 4, WordsPerLine: 2, Ways: 1})
	d.Fill(0x00, []uint32{1, 2})
	d.Fill(0x20, []uint32{3, 4}) // aliases line 0 with 4 lines
	if _, ok := d.Lookup(0x00); ok {
		t.Fatal("direct-mapped should have evicted")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(Config{Lines: 4, WordsPerLine: 2, Ways: 2})
	c.Fill(0x00, []uint32{10, 0}) // set 0, tag 0
	c.Fill(0x10, []uint32{20, 0}) // set 0, tag 1
	// Touch tag 0 so tag 1 becomes LRU.
	if _, ok := c.Lookup(0x00); !ok {
		t.Fatal("setup lookup failed")
	}
	c.Fill(0x20, []uint32{30, 0}) // set 0, tag 2 → evicts tag 1
	if _, ok := c.Lookup(0x00); !ok {
		t.Fatal("MRU line evicted")
	}
	if _, ok := c.Lookup(0x10); ok {
		t.Fatal("LRU line survived")
	}
	if v, ok := c.Lookup(0x20); !ok || v != 30 {
		t.Fatal("new line missing")
	}
}

func TestUpdateWritesThroughAssociative(t *testing.T) {
	c := New(Config{Lines: 4, WordsPerLine: 2, Ways: 2})
	c.Fill(0x10, []uint32{1, 2})
	c.Update(0x14, 99)
	if v, _ := c.Lookup(0x14); v != 99 {
		t.Fatal("update missed the resident way")
	}
}

func TestBadWaysPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ways=3 should panic")
		}
	}()
	New(Config{Lines: 8, WordsPerLine: 2, Ways: 3})
}

func TestWaysExceedLinesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ways>Lines should panic")
		}
	}()
	New(Config{Lines: 2, WordsPerLine: 2, Ways: 4})
}

func TestAssociativeVersusModelProperty(t *testing.T) {
	// Whatever the associativity, a Lookup hit must always return the last
	// Filled/Updated value for that address.
	for _, ways := range []int{1, 2, 4} {
		c := New(Config{Lines: 8, WordsPerLine: 2, Ways: ways})
		rng := rand.New(rand.NewSource(int64(ways)))
		model := map[uint32]uint32{}
		for i := 0; i < 2000; i++ {
			addr := uint32(rng.Intn(64)) * 4
			switch rng.Intn(3) {
			case 0:
				base := c.LineBase(addr)
				words := []uint32{rng.Uint32(), rng.Uint32()}
				c.Fill(base, words)
				model[base] = words[0]
				model[base+4] = words[1]
			case 1:
				v := rng.Uint32()
				if _, resident := c.Lookup(addr); resident {
					c.Update(addr, v)
					model[addr] = v
				}
			default:
				if v, ok := c.Lookup(addr); ok && v != model[addr] {
					t.Fatalf("ways=%d: stale value at %#x: got %d want %d", ways, addr, v, model[addr])
				}
			}
		}
	}
}

func TestFullyAssociativeNeverConflicts(t *testing.T) {
	// Ways == Lines: one set; any 4 distinct lines coexist.
	c := New(Config{Lines: 4, WordsPerLine: 2, Ways: 4})
	for i := uint32(0); i < 4; i++ {
		c.Fill(i*8, []uint32{i + 1, 0})
	}
	for i := uint32(0); i < 4; i++ {
		if v, ok := c.Lookup(i * 8); !ok || v != i+1 {
			t.Fatalf("line %d missing in fully associative cache", i)
		}
	}
}
