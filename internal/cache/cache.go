// Package cache implements the IP cores' cache subsystem: set-associative
// (default direct-mapped) write-through caches with burst line refills,
// plus the MemUnit that arbitrates instruction fetches and data accesses
// onto the core's single OCP master port. Cache refill traffic is a
// first-class part of what the paper's TG must replay ("accurate modeling
// of cache refills"), so the refill engine speaks ordinary OCP burst reads
// that trace monitors see.
package cache

import "fmt"

// Config describes one cache. Lines and WordsPerLine must be powers of two;
// Ways must divide Lines.
type Config struct {
	// Lines is the total number of lines (across all ways).
	Lines int
	// WordsPerLine is the refill burst length in 32-bit words.
	WordsPerLine int
	// Ways is the set associativity (default 1 = direct-mapped).
	Ways int
}

// DefaultConfig is a 1 KiB direct-mapped cache with 4-word lines.
var DefaultConfig = Config{Lines: 64, WordsPerLine: 4, Ways: 1}

func (c Config) withDefaults() Config {
	if c.Lines == 0 {
		c.Lines = DefaultConfig.Lines
	}
	if c.WordsPerLine == 0 {
		c.WordsPerLine = DefaultConfig.WordsPerLine
	}
	if c.Ways == 0 {
		c.Ways = 1
	}
	return c
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Cache is a set-associative write-through cache with LRU replacement
// (data storage only — the MemUnit performs the bus transactions).
type Cache struct {
	cfg   Config
	sets  int
	tags  []uint32 // sets × ways
	valid []bool
	data  []uint32 // sets × ways × wordsPerLine, flat
	used  []uint64 // LRU stamps
	clock uint64

	Hits    uint64
	Misses  uint64
	Refills uint64
}

// New builds a cache.
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	if !isPow2(cfg.Lines) || !isPow2(cfg.WordsPerLine) {
		panic(fmt.Sprintf("cache: Lines (%d) and WordsPerLine (%d) must be powers of two", cfg.Lines, cfg.WordsPerLine))
	}
	if !isPow2(cfg.Ways) || cfg.Ways > cfg.Lines {
		panic(fmt.Sprintf("cache: Ways (%d) must be a power of two no larger than Lines (%d)", cfg.Ways, cfg.Lines))
	}
	lines := cfg.Lines
	return &Cache{
		cfg:   cfg,
		sets:  lines / cfg.Ways,
		tags:  make([]uint32, lines),
		valid: make([]bool, lines),
		data:  make([]uint32, lines*cfg.WordsPerLine),
		used:  make([]uint64, lines),
	}
}

// Config returns the effective configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() uint32 { return uint32(c.cfg.WordsPerLine) * 4 }

// LineBase returns the first address of the line containing addr.
func (c *Cache) LineBase(addr uint32) uint32 { return addr &^ (c.LineBytes() - 1) }

// index decomposes an address into its set, word-in-line and tag.
func (c *Cache) index(addr uint32) (set int, word int, tag uint32) {
	w := addr / 4
	word = int(w) % c.cfg.WordsPerLine
	set = int(w/uint32(c.cfg.WordsPerLine)) % c.sets
	tag = w / uint32(c.cfg.WordsPerLine) / uint32(c.sets)
	return
}

// find returns the line index holding addr's tag, or -1.
func (c *Cache) find(addr uint32) int {
	set, _, tag := c.index(addr)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return base + w
		}
	}
	return -1
}

// Lookup probes the cache. On a hit it returns the cached word.
func (c *Cache) Lookup(addr uint32) (uint32, bool) {
	line := c.find(addr)
	if line < 0 {
		c.Misses++
		return 0, false
	}
	c.Hits++
	c.clock++
	c.used[line] = c.clock
	_, word, _ := c.index(addr)
	return c.data[line*c.cfg.WordsPerLine+word], true
}

// Fill installs a refilled line (words must cover the whole line starting
// at LineBase(addr)), evicting the set's least recently used way.
func (c *Cache) Fill(addr uint32, words []uint32) {
	if len(words) != c.cfg.WordsPerLine {
		panic(fmt.Sprintf("cache: Fill with %d words, line is %d", len(words), c.cfg.WordsPerLine))
	}
	set, _, tag := c.index(addr)
	base := set * c.cfg.Ways
	victim := -1
	for w := 0; w < c.cfg.Ways; w++ {
		line := base + w
		// Refilling a resident line must reuse its way — a duplicate tag in
		// the set would make later lookups ambiguous.
		if c.valid[line] && c.tags[line] == tag {
			victim = line
			break
		}
	}
	if victim < 0 {
		victim = base
		for w := 0; w < c.cfg.Ways; w++ {
			line := base + w
			if !c.valid[line] {
				victim = line
				break
			}
			if c.used[line] < c.used[victim] {
				victim = line
			}
		}
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.clock++
	c.used[victim] = c.clock
	copy(c.data[victim*c.cfg.WordsPerLine:], words)
	c.Refills++
}

// Update writes through to a cached word if (and only if) the line is
// resident; it never allocates (write-through, no-allocate policy).
func (c *Cache) Update(addr uint32, v uint32) {
	line := c.find(addr)
	if line < 0 {
		return
	}
	_, word, _ := c.index(addr)
	c.data[line*c.cfg.WordsPerLine+word] = v
}

// InvalidateAll empties the cache (cold reset).
func (c *Cache) InvalidateAll() {
	for i := range c.valid {
		c.valid[i] = false
	}
}
