package cache

import (
	"testing"
	"testing/quick"

	"noctg/internal/amba"
	"noctg/internal/mem"
	"noctg/internal/ocp"
	"noctg/internal/sim"
)

func TestCacheIndexing(t *testing.T) {
	c := New(Config{Lines: 4, WordsPerLine: 4})
	// Line size 16 bytes; 4 lines → 64-byte stride aliases to the same line.
	if c.LineBase(0x37) != 0x30 {
		t.Fatalf("LineBase(0x37) = %#x", c.LineBase(0x37))
	}
	l1, w1, t1 := c.index(0x10)
	l2, w2, t2 := c.index(0x10 + 64)
	if l1 != l2 || w1 != w2 || t1 == t2 {
		t.Fatalf("aliasing addresses should share line/word but differ in tag")
	}
}

func TestCacheFillLookupEvict(t *testing.T) {
	c := New(Config{Lines: 2, WordsPerLine: 2})
	if _, ok := c.Lookup(0x00); ok {
		t.Fatal("cold cache should miss")
	}
	c.Fill(0x00, []uint32{10, 11})
	if v, ok := c.Lookup(0x04); !ok || v != 11 {
		t.Fatalf("lookup after fill = %d,%v", v, ok)
	}
	// 0x10 aliases line 0 (2 lines × 8 bytes = 16-byte stride).
	c.Fill(0x10, []uint32{20, 21})
	if _, ok := c.Lookup(0x00); ok {
		t.Fatal("evicted line should miss")
	}
	if v, ok := c.Lookup(0x10); !ok || v != 20 {
		t.Fatalf("new line lookup = %d,%v", v, ok)
	}
	if c.Refills != 2 {
		t.Fatalf("refills = %d", c.Refills)
	}
}

func TestCacheUpdateOnlyIfResident(t *testing.T) {
	c := New(Config{Lines: 2, WordsPerLine: 2})
	c.Update(0x00, 99) // not resident: no-allocate
	if _, ok := c.Lookup(0x00); ok {
		t.Fatal("update must not allocate")
	}
	c.Fill(0x00, []uint32{1, 2})
	c.Update(0x04, 42)
	if v, _ := c.Lookup(0x04); v != 42 {
		t.Fatalf("update of resident word lost: %d", v)
	}
}

func TestCacheBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two config should panic")
		}
	}()
	New(Config{Lines: 3, WordsPerLine: 4})
}

func TestCacheFillWrongSizePanics(t *testing.T) {
	c := New(Config{Lines: 2, WordsPerLine: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("short fill should panic")
		}
	}()
	c.Fill(0, []uint32{1})
}

// rig builds MemUnit → monitor → bus → RAM.
func rigMU(t *testing.T, icfg, dcfg Config) (*sim.Engine, *MemUnit, *ocp.Monitor, *mem.RAM) {
	t.Helper()
	e := sim.NewEngine(sim.Clock{})
	bus := amba.New(amba.Config{}, e.Cycle)
	ram := mem.NewRAM("ram", 0x1000, 0x2000, 1)
	shared := mem.NewRAM("shared", 0x8000, 0x1000, 1)
	if err := bus.MapSlave(ram, ram.Range()); err != nil {
		t.Fatal(err)
	}
	if err := bus.MapSlave(shared, shared.Range()); err != nil {
		t.Fatal(err)
	}
	mon := ocp.NewMonitor(bus.NewMasterPort(), e.Cycle)
	mu := NewMemUnit(mon, New(icfg), New(dcfg), []ocp.AddrRange{ram.Range()})
	e.Add(sim.DeviceFunc(mu.Tick))
	e.Add(bus)
	return e, mu, mon, ram
}

// doOp runs one operation to completion and returns the value and cycles.
func doOp(t *testing.T, e *sim.Engine, mu *MemUnit, op OpKind, addr, data uint32) (uint32, uint64) {
	t.Helper()
	start := e.Cycle()
	mu.Begin(op, addr, data)
	for i := 0; i < 10_000; i++ {
		e.Step()
		if v, ok := mu.TakeResult(); ok {
			return v, e.Cycle() - start
		}
	}
	t.Fatal("operation never completed")
	return 0, 0
}

func TestLoadMissThenHit(t *testing.T) {
	e, mu, mon, ram := rigMU(t, Config{}, Config{Lines: 8, WordsPerLine: 4})
	ram.PokeWord(0x1100, 7)
	ram.PokeWord(0x1104, 8)

	v, missCycles := doOp(t, e, mu, OpLoad, 0x1100, 0)
	if v != 7 {
		t.Fatalf("miss load = %d", v)
	}
	evs := mon.Events()
	if len(evs) != 1 || evs[0].Cmd != ocp.BurstRead || evs[0].Burst != 4 {
		t.Fatalf("miss should emit one 4-beat burst read, got %+v", evs)
	}
	v, hitCycles := doOp(t, e, mu, OpLoad, 0x1104, 0)
	if v != 8 {
		t.Fatalf("hit load = %d", v)
	}
	if len(mon.Events()) != 1 {
		t.Fatal("hit must not touch the bus")
	}
	if hitCycles >= missCycles {
		t.Fatalf("hit (%d cycles) should be faster than miss (%d)", hitCycles, missCycles)
	}
	if hitCycles != 1 {
		t.Fatalf("hit should cost 1 cycle, took %d", hitCycles)
	}
}

func TestStoreWriteThrough(t *testing.T) {
	e, mu, mon, ram := rigMU(t, Config{}, Config{Lines: 8, WordsPerLine: 4})
	ram.PokeWord(0x1200, 1)
	doOp(t, e, mu, OpLoad, 0x1200, 0) // bring line in
	doOp(t, e, mu, OpStore, 0x1200, 55)
	// Let the posted write drain through the bus.
	e.RunFor(20)
	if ram.PeekWord(0x1200) != 55 {
		t.Fatal("write-through did not reach memory")
	}
	v, _ := doOp(t, e, mu, OpLoad, 0x1200, 0)
	if v != 55 {
		t.Fatalf("cached copy not updated: %d", v)
	}
	var writes int
	for _, ev := range mon.Events() {
		if ev.Cmd == ocp.Write {
			writes++
		}
	}
	if writes != 1 {
		t.Fatalf("store should emit exactly one bus write, got %d", writes)
	}
}

func TestUncachedAccessBypasses(t *testing.T) {
	e, mu, mon, _ := rigMU(t, Config{}, Config{})
	doOp(t, e, mu, OpStore, 0x8010, 9) // shared region: uncacheable
	v, _ := doOp(t, e, mu, OpLoad, 0x8010, 0)
	if v != 9 {
		t.Fatalf("uncached load = %d", v)
	}
	evs := mon.Events()
	if len(evs) != 2 || evs[0].Cmd != ocp.Write || evs[1].Cmd != ocp.Read {
		t.Fatalf("uncached ops should be single-word WR+RD, got %+v", evs)
	}
	// Repeating the load must hit the bus again (no caching).
	doOp(t, e, mu, OpLoad, 0x8010, 0)
	if len(mon.Events()) != 3 {
		t.Fatal("uncached load must not be cached")
	}
}

func TestFetchThroughICache(t *testing.T) {
	e, mu, mon, ram := rigMU(t, Config{Lines: 4, WordsPerLine: 4}, Config{})
	ram.PokeWord(0x1000, 0xfeed)
	v, _ := doOp(t, e, mu, OpFetch, 0x1000, 0)
	if v != 0xfeed {
		t.Fatalf("fetch = %#x", v)
	}
	doOp(t, e, mu, OpFetch, 0x1004, 0) // same line: hit
	if len(mon.Events()) != 1 {
		t.Fatal("second fetch in the line should hit")
	}
	if mu.ICache().Hits != 1 || mu.ICache().Misses != 1 {
		t.Fatalf("icache stats hits=%d misses=%d", mu.ICache().Hits, mu.ICache().Misses)
	}
}

func TestFaultOnDecodeError(t *testing.T) {
	e, mu, _, _ := rigMU(t, Config{}, Config{})
	doOp(t, e, mu, OpLoad, 0x4000_0000, 0)
	if !mu.Faulted() {
		t.Fatal("load from unmapped address should fault")
	}
}

func TestBeginWhileBusyPanics(t *testing.T) {
	_, mu, _, _ := rigMU(t, Config{}, Config{})
	mu.Begin(OpLoad, 0x1000, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Begin while busy should panic")
		}
	}()
	mu.Begin(OpLoad, 0x1004, 0)
}

func TestMemUnitVersusFlatMemoryProperty(t *testing.T) {
	// Any interleaving of cached loads/stores behaves exactly like a flat
	// memory (single master, so write-through cannot diverge).
	e, mu, _, ram := rigMU(t, Config{}, Config{Lines: 4, WordsPerLine: 2})
	model := map[uint32]uint32{}
	base := uint32(0x1000)
	for i := uint32(0); i < 64; i++ {
		ram.PokeWord(base+i*4, i*3)
		model[base+i*4] = i * 3
	}
	f := func(idx uint8, val uint32, store bool) bool {
		addr := base + uint32(idx%64)*4
		if store {
			doOp(t, e, mu, OpStore, addr, val)
			model[addr] = val
			return true
		}
		v, _ := doOp(t, e, mu, OpLoad, addr, 0)
		return v == model[addr]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	// After draining, memory must agree with the model everywhere.
	e.RunFor(50)
	for addr, want := range model {
		if got := ram.PeekWord(addr); got != want {
			t.Fatalf("mem[%#x] = %d, want %d", addr, got, want)
		}
	}
}

func TestCacheColdResetInvalidate(t *testing.T) {
	c := New(Config{Lines: 2, WordsPerLine: 2})
	c.Fill(0, []uint32{1, 2})
	c.InvalidateAll()
	if _, ok := c.Lookup(0); ok {
		t.Fatal("invalidated cache should miss")
	}
}
