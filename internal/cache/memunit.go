package cache

import (
	"fmt"

	"noctg/internal/ocp"
)

// OpKind distinguishes the three memory operations a core performs.
type OpKind int

const (
	// OpFetch is an instruction fetch (through the I-cache when cacheable).
	OpFetch OpKind = iota
	// OpLoad is a data load (through the D-cache when cacheable).
	OpLoad
	// OpStore is a data store (write-through, posted).
	OpStore
)

type muState int

const (
	muIdle muState = iota
	muHit          // resolves on the next tick (1-cycle cache access)
	muIssue
	muWait
)

// MemUnit funnels a core's instruction fetches and data accesses onto its
// single OCP master port, implementing the cache policies:
//
//   - cacheable fetch/load: 1-cycle hit, or a burst line refill;
//   - cacheable store: write-through (update line if resident) + posted write;
//   - non-cacheable access: single-word OCP read/write (shared memory and
//     the semaphore bank must never be cached — there is no coherence).
//
// The unit handles one operation at a time (the cores are in-order,
// single-pipeline, exactly like the paper's ARM masters). It is driven by
// the owning core's Tick, not registered with the engine directly.
type MemUnit struct {
	port      ocp.MasterPort
	icache    *Cache
	dcache    *Cache
	cacheable []ocp.AddrRange

	state   muState
	op      OpKind
	addr    uint32
	stData  uint32
	cached  bool
	req     ocp.Request
	stBuf   [1]uint32 // reusable posted-write payload (copied at acceptance)
	result  uint32
	done    bool
	faulted bool
}

// NewMemUnit builds a memory unit over port with the given caches (either
// may be nil to disable caching for that stream) and cacheable ranges.
func NewMemUnit(port ocp.MasterPort, icache, dcache *Cache, cacheable []ocp.AddrRange) *MemUnit {
	if port == nil {
		panic("cache: NewMemUnit requires a port")
	}
	return &MemUnit{port: port, icache: icache, dcache: dcache, cacheable: cacheable}
}

// ICache returns the instruction cache (may be nil).
func (m *MemUnit) ICache() *Cache { return m.icache }

// DCache returns the data cache (may be nil).
func (m *MemUnit) DCache() *Cache { return m.dcache }

// Cacheable reports whether addr falls in a cacheable range.
func (m *MemUnit) Cacheable(addr uint32) bool {
	for _, r := range m.cacheable {
		if r.Contains(addr) {
			return true
		}
	}
	return false
}

// Busy reports whether an operation is in progress.
func (m *MemUnit) Busy() bool { return m.state != muIdle }

// Faulted reports whether a bus error terminated an operation.
func (m *MemUnit) Faulted() bool { return m.faulted }

// Begin starts a memory operation. The unit must be idle.
func (m *MemUnit) Begin(op OpKind, addr uint32, data uint32) {
	if m.state != muIdle {
		panic("cache: MemUnit.Begin while busy")
	}
	if addr%4 != 0 {
		panic(fmt.Sprintf("cache: unaligned access %#08x", addr))
	}
	m.op = op
	m.addr = addr
	m.stData = data
	m.done = false
	m.cached = m.Cacheable(addr)

	c := m.cacheFor(op)
	switch op {
	case OpFetch, OpLoad:
		if m.cached && c != nil {
			if v, ok := c.Lookup(addr); ok {
				m.result = v
				m.state = muHit
				return
			}
			// Miss: burst refill of the whole line.
			m.req = ocp.Request{Cmd: ocp.BurstRead, Addr: c.LineBase(addr), Burst: c.Config().WordsPerLine}
			m.state = muIssue
			return
		}
		m.req = ocp.Request{Cmd: ocp.Read, Addr: addr, Burst: 1}
		m.state = muIssue
	case OpStore:
		if m.cached && m.dcache != nil {
			m.dcache.Update(addr, data)
		}
		m.stBuf[0] = data
		m.req = ocp.Request{Cmd: ocp.Write, Addr: addr, Burst: 1, Data: m.stBuf[:1]}
		m.state = muIssue
	}
}

func (m *MemUnit) cacheFor(op OpKind) *Cache {
	if op == OpFetch {
		return m.icache
	}
	return m.dcache
}

// Tick advances the in-flight operation by one cycle. The owning core must
// call it once per cycle before inspecting TakeResult.
func (m *MemUnit) Tick(cycle uint64) {
	switch m.state {
	case muHit:
		m.done = true
		m.state = muIdle
	case muIssue:
		if m.port.TryRequest(&m.req) {
			if m.req.Cmd.IsRead() {
				m.state = muWait
			} else {
				// Posted write: complete at acceptance.
				m.done = true
				m.state = muIdle
			}
		}
	case muWait:
		resp, ok := m.port.TakeResponse()
		if !ok {
			return
		}
		if resp.Err {
			m.faulted = true
			m.done = true
			m.state = muIdle
			return
		}
		if m.req.Cmd == ocp.BurstRead {
			c := m.cacheFor(m.op)
			c.Fill(m.req.Addr, resp.Data)
			_, word, _ := c.index(m.addr)
			m.result = resp.Data[word]
		} else {
			m.result = resp.Data[0]
		}
		m.done = true
		m.state = muIdle
	}
}

// TakeResult returns the completed operation's value (loads/fetches) once
// per operation. Stores complete with value 0.
func (m *MemUnit) TakeResult() (uint32, bool) {
	if !m.done {
		return 0, false
	}
	m.done = false
	return m.result, true
}
