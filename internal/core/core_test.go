package core

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"noctg/internal/ocp"
	"noctg/internal/sim"
	"noctg/internal/trace"
)

func TestInstEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(op, rd, ra, rb uint8, imm uint32) bool {
		in := Inst{
			Op: Op(op % uint8(opCount)),
			Rd: int(rd % NumRegs), Ra: int(ra % NumRegs), Rb: int(rb % NumRegs),
			Imm: imm,
		}
		if in.Op == If {
			in.Rd = 0 // If carries its condition in the Rd byte
			in.Cnd = Cond(rd % uint8(condCount))
		}
		out, ok := DecodeInst(in.Encode())
		return ok && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, ok := DecodeInst([8]byte{byte(opCount), 0, 0, 0, 0, 0, 0, 0}); ok {
		t.Fatal("invalid opcode decoded")
	}
	if _, ok := DecodeInst([8]byte{byte(Read), 16, 0, 0, 0, 0, 0, 0}); ok {
		t.Fatal("register 16 decoded")
	}
	if _, ok := DecodeInst([8]byte{byte(If), byte(condCount), 0, 0, 0, 0, 0, 0}); ok {
		t.Fatal("invalid condition decoded")
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b uint32
		want bool
	}{
		{EQ, 5, 5, true}, {EQ, 5, 6, false},
		{NE, 5, 6, true}, {NE, 5, 5, false},
		{LT, 1, 2, true}, {LT, 2, 1, false}, {LT, 0xffffffff, 1, false},
		{GE, 2, 2, true}, {GE, 1, 2, false},
	}
	for _, c := range cases {
		if got := c.c.Eval(c.a, c.b); got != c.want {
			t.Errorf("%d %s %d = %v, want %v", c.a, c.c, c.b, got, c.want)
		}
	}
}

// fig3Program builds a paper-style program by hand.
func fig3Program(t *testing.T) *Program {
	t.Helper()
	src := `
; Master Core
MASTER[0,0]
REGISTER addr 0x00000104
REGISTER data 0x00000000
REGISTER tempreg 0x00000001
BEGIN
start:
	Idle(11)
	Read(addr)
	SetRegister(addr, 0x00000020)
	SetRegister(data, 0x00000111)
	Idle(1)
	Write(addr, data)
	SetRegister(addr, 0x000000ff)
Semchk:
	Read(addr)
	If rdreg != tempreg then Semchk
	Halt
END`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTgpAssembleBasics(t *testing.T) {
	p := fig3Program(t)
	if p.MasterID != 0 || len(p.RegNames) != 4 {
		t.Fatalf("header: master=%d regs=%v", p.MasterID, p.RegNames)
	}
	if p.RegInit[1] != 0x104 || p.RegInit[3] != 1 {
		t.Fatalf("register inits %v", p.RegInit)
	}
	if p.Labels["start"] != 0 {
		t.Fatal("start label")
	}
	semchk := p.Labels["Semchk"]
	ifInst := p.Insts[semchk+1]
	if ifInst.Op != If || ifInst.Cnd != NE || ifInst.Imm != uint32(semchk) {
		t.Fatalf("If instruction wrong: %+v", ifInst)
	}
	if p.Insts[len(p.Insts)-1].Op != Halt {
		t.Fatal("program should end in Halt")
	}
}

func TestTgpFormatRoundTrip(t *testing.T) {
	p := fig3Program(t)
	text, err := p.FormatString()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	if len(p2.Insts) != len(p.Insts) {
		t.Fatalf("instruction count changed %d → %d", len(p.Insts), len(p2.Insts))
	}
	for i := range p.Insts {
		if p.Insts[i] != p2.Insts[i] {
			t.Fatalf("inst %d changed: %+v vs %+v", i, p.Insts[i], p2.Insts[i])
		}
	}
	// Formatting again must be a fixed point.
	text2, err := p2.FormatString()
	if err != nil {
		t.Fatal(err)
	}
	if text != text2 {
		t.Fatalf("Format not canonical:\n%s\nvs\n%s", text, text2)
	}
}

func TestTgpErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no begin", "MASTER[0,0]\nHalt\nEND"},
		{"undeclared reg", "MASTER[0,0]\nBEGIN\nRead(addr)\nEND"},
		{"undefined label", "MASTER[0,0]\nBEGIN\nJump(nowhere)\nEND"},
		{"dup label", "MASTER[0,0]\nBEGIN\na:\na:\nHalt\nEND"},
		{"dup register", "MASTER[0,0]\nREGISTER x 0\nREGISTER x 1\nBEGIN\nHalt\nEND"},
		{"bad master", "MASTER[zz]\nBEGIN\nHalt\nEND"},
		{"bad if", "MASTER[0,0]\nBEGIN\nIf rdreg ~ rdreg then x\nHalt\nx:\nEND"},
		{"unknown inst", "MASTER[0,0]\nBEGIN\nFrobnicate(1)\nEND"},
		{"reg overflow", "MASTER[0,0]\n" + strings.Repeat("REGISTER r 0\n", 1) +
			func() string {
				var b strings.Builder
				for i := 0; i < NumRegs; i++ {
					b.WriteString("REGISTER x")
					b.WriteByte(byte('a' + i))
					b.WriteString(" 0\n")
				}
				return b.String()
			}() + "BEGIN\nHalt\nEND"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Assemble(c.src); err == nil {
				t.Fatalf("expected error for:\n%s", c.src)
			}
		})
	}
}

func TestBinRoundTrip(t *testing.T) {
	p := fig3Program(t)
	var buf bytes.Buffer
	if err := p.WriteBin(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := ReadBin(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2.MasterID != p.MasterID || len(p2.Insts) != len(p.Insts) {
		t.Fatal("bin header mismatch")
	}
	for i := range p.Insts {
		if p.Insts[i] != p2.Insts[i] {
			t.Fatalf("inst %d: %+v vs %+v", i, p.Insts[i], p2.Insts[i])
		}
	}
	for i := range p.RegInit {
		if p.RegInit[i] != p2.RegInit[i] {
			t.Fatal("register inits lost")
		}
	}
}

func TestBinRejectsCorrupt(t *testing.T) {
	p := fig3Program(t)
	var buf bytes.Buffer
	if err := p.WriteBin(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBin(bytes.NewReader(data[:10])); err == nil {
		t.Fatal("truncated image accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := ReadBin(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestProgramValidate(t *testing.T) {
	p := NewProgram(0, 0)
	p.Insts = []Inst{{Op: Jump, Imm: 99}}
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range jump accepted")
	}
	p.Insts = []Inst{{Op: BurstRead, Imm: 0}}
	if err := p.Validate(); err == nil {
		t.Fatal("zero burst accepted")
	}
	p.Insts = []Inst{{Op: Read, Ra: 9}}
	if err := p.Validate(); err == nil {
		t.Fatal("undeclared register accepted")
	}
}

// fakePort is a deterministic MasterPort: accepts requests after a fixed
// number of tries, responds after a fixed latency.
type fakePort struct {
	acceptDelay int // TryRequest calls rejected before accepting
	respDelay   uint64
	now         func() uint64

	tries   int
	respAt  uint64
	pending bool
	val     uint32
	log     []ocp.Event
	memory  map[uint32]uint32
}

func (p *fakePort) TryRequest(req *ocp.Request) bool {
	p.tries++
	if p.tries <= p.acceptDelay {
		return false
	}
	p.tries = 0
	ev := ocp.Event{Cmd: req.Cmd, Addr: req.Addr, Burst: req.Burst, Assert: p.now(), Accept: p.now()}
	if req.Cmd.IsWrite() {
		ev.Data = append([]uint32(nil), req.Data...)
		if p.memory != nil {
			p.memory[req.Addr] = req.Data[0]
		}
	} else {
		p.pending = true
		p.respAt = p.now() + p.respDelay
		if p.memory != nil {
			p.val = p.memory[req.Addr]
		}
	}
	p.log = append(p.log, ev)
	return true
}

func (p *fakePort) TakeResponse() (*ocp.Response, bool) {
	if !p.pending || p.now() < p.respAt {
		return nil, false
	}
	p.pending = false
	return &ocp.Response{Data: []uint32{p.val}}, true
}

func (p *fakePort) Busy() bool { return p.pending }

// runDevice ticks a device until halt, returning it.
func runDevice(t *testing.T, p *Program, port ocp.MasterPort, max uint64) (*Device, uint64) {
	t.Helper()
	var cycle uint64
	d, err := NewDevice(p, port)
	if err != nil {
		t.Fatal(err)
	}
	for cycle = 0; cycle < max; cycle++ {
		d.Tick(cycle)
		if d.Done() {
			return d, cycle
		}
	}
	t.Fatalf("device did not halt in %d cycles (pc=%d)", max, d.PC())
	return nil, 0
}

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDeviceCycleCosts(t *testing.T) {
	// SetRegister ×2, Idle(5), Halt — Halt executes on cycle 2+5 = 7.
	p := mustAssemble(t, `MASTER[0,0]
REGISTER a 0
BEGIN
	SetRegister(a, 1)
	SetRegister(a, 2)
	Idle(5)
	Halt
END`)
	var cycle uint64
	port := &fakePort{now: func() uint64 { return cycle }}
	d, err := NewDevice(p, port)
	if err != nil {
		t.Fatal(err)
	}
	for ; !d.Done(); cycle++ {
		d.Tick(cycle)
	}
	if d.HaltCycle() != 7 {
		t.Fatalf("halt at %d, want 7", d.HaltCycle())
	}
}

func TestDeviceIdleOne(t *testing.T) {
	p := mustAssemble(t, "MASTER[0,0]\nBEGIN\nIdle(1)\nHalt\nEND")
	var cycle uint64
	port := &fakePort{now: func() uint64 { return cycle }}
	d, _ := NewDevice(p, port)
	for ; !d.Done(); cycle++ {
		d.Tick(cycle)
	}
	if d.HaltCycle() != 1 {
		t.Fatalf("Idle(1) should cost one cycle; halt at %d", d.HaltCycle())
	}
}

func TestDeviceReadWriteTiming(t *testing.T) {
	// Read asserts on its first cycle; the response arrives respDelay
	// cycles after acceptance; the next instruction runs the cycle after.
	p := mustAssemble(t, `MASTER[0,0]
REGISTER addr 0x100
BEGIN
	Read(addr)
	Halt
END`)
	var cycle uint64
	port := &fakePort{now: func() uint64 { return cycle }, acceptDelay: 1, respDelay: 3,
		memory: map[uint32]uint32{0x100: 42}}
	d, _ := NewDevice(p, port)
	for ; !d.Done(); cycle++ {
		d.Tick(cycle)
	}
	// Assert cycle 0, accept cycle 1 (fakePort logs at acceptance),
	// resp cycle 4, halt cycle 5.
	if port.log[0].Assert != 1 {
		t.Fatalf("accept logged at %d, want 1", port.log[0].Assert)
	}
	if d.HaltCycle() != 5 {
		t.Fatalf("halt at %d, want 5", d.HaltCycle())
	}
	if d.Reg(RdReg) != 42 {
		t.Fatalf("rdreg = %d", d.Reg(RdReg))
	}
}

func TestDeviceBurstWriteReplaysDataRegister(t *testing.T) {
	p := mustAssemble(t, `MASTER[0,0]
REGISTER addr 0x200
REGISTER data 0
BEGIN
	SetRegister(data, 0x7)
	BurstWrite(addr, data, 4)
	Halt
END`)
	var cycle uint64
	port := &fakePort{now: func() uint64 { return cycle }}
	d, _ := NewDevice(p, port)
	for ; !d.Done(); cycle++ {
		d.Tick(cycle)
	}
	ev := port.log[0]
	if ev.Cmd != ocp.BurstWrite || ev.Burst != 4 || len(ev.Data) != 4 {
		t.Fatalf("burst write event %+v", ev)
	}
	for _, v := range ev.Data {
		if v != 7 {
			t.Fatalf("burst payload %v", ev.Data)
		}
	}
	if d.Transactions != 1 {
		t.Fatalf("transactions = %d", d.Transactions)
	}
}

func TestDeviceIfLoopAndJump(t *testing.T) {
	// Count down from 3 using a register-parameterised Idle.
	p := mustAssemble(t, `MASTER[0,0]
REGISTER n 3
REGISTER zero 0
REGISTER one 1
BEGIN
loop:
	Idle(n)
	SetRegister(n, 1)
	If n != zero then done
	Jump(loop)
done:
	Halt
END`)
	var cycle uint64
	port := &fakePort{now: func() uint64 { return cycle }}
	d, _ := NewDevice(p, port)
	for ; !d.Done(); cycle++ {
		d.Tick(cycle)
	}
	// Idle(3) occupies cycles 0–2, SetRegister cycle 3, If (taken) cycle 4,
	// Halt executes on cycle 5.
	if d.HaltCycle() != 5 {
		t.Fatalf("halt at %d, want 5", d.HaltCycle())
	}
}

func TestDeviceSemaphorePolling(t *testing.T) {
	// A fake semaphore: first two reads return 0, third returns 1.
	p := mustAssemble(t, `MASTER[0,0]
REGISTER addr 0x900
REGISTER tempreg 1
BEGIN
Semchk:
	Read(addr)
	If rdreg != tempreg then Semchk
	Halt
END`)
	var cycle uint64
	reads := 0
	port := &pollPort{now: func() uint64 { return cycle }, grantOn: 3}
	d, _ := NewDevice(p, port)
	for ; !d.Done() && cycle < 1000; cycle++ {
		d.Tick(cycle)
	}
	reads = port.reads
	if !d.Done() {
		t.Fatal("poll loop never exited")
	}
	if reads != 3 {
		t.Fatalf("device polled %d times, want 3", reads)
	}
}

// pollPort returns 0 until the grantOn-th read, then 1.
type pollPort struct {
	now     func() uint64
	grantOn int
	reads   int
	pending bool
	respAt  uint64
	val     uint32
}

func (p *pollPort) TryRequest(req *ocp.Request) bool {
	if req.Cmd == ocp.Read {
		p.reads++
		p.val = 0
		if p.reads >= p.grantOn {
			p.val = 1
		}
		p.pending = true
		p.respAt = p.now() + 2
	}
	return true
}

func (p *pollPort) TakeResponse() (*ocp.Response, bool) {
	if !p.pending || p.now() < p.respAt {
		return nil, false
	}
	p.pending = false
	return &ocp.Response{Data: []uint32{p.val}}, true
}

func (p *pollPort) Busy() bool { return p.pending }

// --- translator unit tests ---

func mkTrace(events []ocp.Event) *trace.Trace {
	return trace.New(0, sim.DefaultClock, events)
}

func TestTranslateSimpleGapArithmetic(t *testing.T) {
	// RD at cycle 11 (paper: first event at 55ns), resp 15; WR at 18.
	tr := mkTrace([]ocp.Event{
		{Cmd: ocp.Read, Addr: 0x104, Burst: 1, Assert: 11, Accept: 12, Resp: 15,
			HasResp: true, Data: []uint32{0xf0}},
		{Cmd: ocp.Write, Addr: 0x20, Burst: 1, Assert: 18, Accept: 19, Data: []uint32{0x111}},
	})
	p, stats, err := Translate(tr, TranslateConfig{RecognizePolls: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 2 {
		t.Fatal("stats.Events")
	}
	// Expected stream: SetRegister(addr,0x104); Idle(10); Read;
	// SetRegister(addr,0x20); SetRegister(data,0x111); Read executes at
	// 1+10 = 11 ✓; after resp at 15, next tick 16: two SetRegisters (16,17)
	// then Write at 18 → no Idle needed.
	want := []Op{SetRegister, Idle, Read, SetRegister, SetRegister, Write, Halt}
	if len(p.Insts) != len(want) {
		text, _ := p.FormatString()
		t.Fatalf("got %d instructions:\n%s", len(p.Insts), text)
	}
	for i, op := range want {
		if p.Insts[i].Op != op {
			text, _ := p.FormatString()
			t.Fatalf("inst %d is %v, want %v:\n%s", i, p.Insts[i].Op, op, text)
		}
	}
	if p.Insts[1].Imm != 10 {
		t.Fatalf("initial idle = %d, want 10", p.Insts[1].Imm)
	}
	if stats.ClampedCycles != 0 {
		t.Fatalf("clamped %d cycles", stats.ClampedCycles)
	}
}

func TestTranslateSetRegisterElision(t *testing.T) {
	// Two writes of the same value to the same address: the second needs no
	// SetRegister at all.
	tr := mkTrace([]ocp.Event{
		{Cmd: ocp.Write, Addr: 0x20, Burst: 1, Assert: 5, Accept: 6, Data: []uint32{1}},
		{Cmd: ocp.Write, Addr: 0x20, Burst: 1, Assert: 10, Accept: 11, Data: []uint32{1}},
	})
	p, _, err := Translate(tr, TranslateConfig{RecognizePolls: true})
	if err != nil {
		t.Fatal(err)
	}
	var setregs int
	for _, in := range p.Insts {
		if in.Op == SetRegister {
			setregs++
		}
	}
	if setregs != 2 { // addr + data once only
		text, _ := p.FormatString()
		t.Fatalf("want 2 SetRegisters, got %d:\n%s", setregs, text)
	}
}

func TestTranslateClampsTightGaps(t *testing.T) {
	// Back-to-back writes to different addresses 1 cycle apart: the
	// SetRegister overhead cannot fit.
	tr := mkTrace([]ocp.Event{
		{Cmd: ocp.Write, Addr: 0x20, Burst: 1, Assert: 0, Accept: 1, Data: []uint32{1}},
		{Cmd: ocp.Write, Addr: 0x30, Burst: 1, Assert: 2, Accept: 3, Data: []uint32{2}},
	})
	_, stats, err := Translate(tr, TranslateConfig{RecognizePolls: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ClampedCycles == 0 {
		t.Fatal("expected clamped cycles")
	}
}

func TestTranslateBursts(t *testing.T) {
	tr := mkTrace([]ocp.Event{
		{Cmd: ocp.BurstRead, Addr: 0x1000, Burst: 4, Assert: 3, Accept: 4, Resp: 12,
			HasResp: true, Data: []uint32{1, 2, 3, 4}},
		{Cmd: ocp.BurstWrite, Addr: 0x2000, Burst: 2, Assert: 20, Accept: 25, Data: []uint32{9, 9}},
	})
	p, _, err := Translate(tr, TranslateConfig{RecognizePolls: true})
	if err != nil {
		t.Fatal(err)
	}
	var brd, bwr *Inst
	for i := range p.Insts {
		switch p.Insts[i].Op {
		case BurstRead:
			brd = &p.Insts[i]
		case BurstWrite:
			bwr = &p.Insts[i]
		}
	}
	if brd == nil || brd.Imm != 4 {
		t.Fatal("burst read not translated")
	}
	if bwr == nil || bwr.Imm != 2 {
		t.Fatal("burst write not translated")
	}
}

func TestTranslatePollCollapse(t *testing.T) {
	sem := ocp.AddrRange{Base: 0x900, Size: 16}
	// Three failed polls then success, constant poll period 8.
	evs := []ocp.Event{}
	var tick uint64 = 5
	for i := 0; i < 4; i++ {
		v := uint32(0)
		if i == 3 {
			v = 1
		}
		evs = append(evs, ocp.Event{Cmd: ocp.Read, Addr: 0x900, Burst: 1,
			Assert: tick, Accept: tick + 1, Resp: tick + 4, HasResp: true, Data: []uint32{v}})
		tick += 4 + 8 // resp + pollgap
	}
	tr := mkTrace(evs)
	p, stats, err := Translate(tr, TranslateConfig{PollRanges: []PollRange{{Range: sem}}, RecognizePolls: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PollLoops != 1 || stats.PollReadsCollapsed != 3 {
		t.Fatalf("stats: %+v", stats)
	}
	// One Read only, inside a loop ending in If NE back to it.
	var reads, ifs int
	var idleInner uint64
	for i, in := range p.Insts {
		switch in.Op {
		case Read:
			reads++
		case If:
			ifs++
			if in.Cnd != NE {
				t.Fatal("poll loop must use !=")
			}
			if p.Insts[int(in.Imm)].Op != Read {
				t.Fatal("If must target the Read")
			}
			if p.Insts[i-1].Op == Idle {
				idleInner = uint64(p.Insts[i-1].Imm)
			}
		}
	}
	if reads != 1 || ifs != 1 {
		text, _ := p.FormatString()
		t.Fatalf("loop shape wrong (%d reads, %d ifs):\n%s", reads, ifs, text)
	}
	// Poll gap 8 → inner idle 6.
	if idleInner != 6 {
		t.Fatalf("inner idle = %d, want 6", idleInner)
	}
	// tempreg must be loaded with the success value 1.
	var tempSet bool
	for _, in := range p.Insts {
		if in.Op == SetRegister && p.RegNames[in.Rd] == "tempreg" && in.Imm == 1 {
			tempSet = true
		}
	}
	if !tempSet {
		t.Fatal("tempreg not set to success value")
	}
}

func TestTranslateSinglePollStillLoops(t *testing.T) {
	// A first-try semaphore acquire must still become a loop — on a slower
	// interconnect the TG may need to re-poll (the paper's M2 scenario).
	sem := ocp.AddrRange{Base: 0x900, Size: 16}
	tr := mkTrace([]ocp.Event{
		{Cmd: ocp.Read, Addr: 0x900, Burst: 1, Assert: 5, Accept: 6, Resp: 9,
			HasResp: true, Data: []uint32{1}},
	})
	p, stats, err := Translate(tr, TranslateConfig{PollRanges: []PollRange{{Range: sem}}, RecognizePolls: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PollLoops != 1 {
		t.Fatal("single poll should still produce a loop")
	}
	var hasIf bool
	for _, in := range p.Insts {
		if in.Op == If {
			hasIf = true
		}
	}
	if !hasIf {
		t.Fatal("no If emitted")
	}
}

func TestTranslatePollClusterHoistsRefill(t *testing.T) {
	// poll(0), refill BRD, poll(0), poll(1): the refill splits the run; the
	// translator must hoist it and emit ONE loop with exit value 1.
	sem := ocp.AddrRange{Base: 0x900, Size: 16}
	evs := []ocp.Event{
		{Cmd: ocp.Read, Addr: 0x900, Burst: 1, Assert: 10, Accept: 11, Resp: 14, HasResp: true, Data: []uint32{0}},
		{Cmd: ocp.BurstRead, Addr: 0x1000, Burst: 4, Assert: 17, Accept: 18, Resp: 28, HasResp: true, Data: []uint32{0, 0, 0, 0}},
		{Cmd: ocp.Read, Addr: 0x900, Burst: 1, Assert: 33, Accept: 34, Resp: 37, HasResp: true, Data: []uint32{0}},
		{Cmd: ocp.Read, Addr: 0x900, Burst: 1, Assert: 45, Accept: 46, Resp: 49, HasResp: true, Data: []uint32{1}},
	}
	tr := mkTrace(evs)
	p, stats, err := Translate(tr, TranslateConfig{PollRanges: []PollRange{{Range: sem}}, RecognizePolls: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PollLoops != 1 {
		t.Fatalf("want one merged loop, got %d", stats.PollLoops)
	}
	// Instruction order: the BurstRead must come before the loop's Read.
	var brdIdx, readIdx = -1, -1
	for i, in := range p.Insts {
		if in.Op == BurstRead && brdIdx < 0 {
			brdIdx = i
		}
		if in.Op == Read && readIdx < 0 {
			readIdx = i
		}
	}
	if brdIdx < 0 || readIdx < 0 || brdIdx > readIdx {
		text, _ := p.FormatString()
		t.Fatalf("refill not hoisted before loop:\n%s", text)
	}
	// Exit value must be the successful 1, not the failed 0.
	for _, in := range p.Insts {
		if in.Op == SetRegister && p.RegNames[in.Rd] == "tempreg" && in.Imm != 1 {
			t.Fatalf("tempreg set to %d, want 1", in.Imm)
		}
	}
}

func TestTranslateTimeshiftBaselineKeepsPolls(t *testing.T) {
	sem := ocp.AddrRange{Base: 0x900, Size: 16}
	evs := []ocp.Event{}
	var tick uint64 = 5
	for i := 0; i < 4; i++ {
		v := uint32(0)
		if i == 3 {
			v = 1
		}
		evs = append(evs, ocp.Event{Cmd: ocp.Read, Addr: 0x900, Burst: 1,
			Assert: tick, Accept: tick + 1, Resp: tick + 4, HasResp: true, Data: []uint32{v}})
		tick += 12
	}
	p, stats, err := Translate(mkTrace(evs), TranslateConfig{
		PollRanges: []PollRange{{Range: sem}}, RecognizePolls: false})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PollLoops != 0 {
		t.Fatal("timeshift baseline must not collapse polls")
	}
	var reads int
	for _, in := range p.Insts {
		if in.Op == Read {
			reads++
		}
	}
	if reads != 4 {
		t.Fatalf("timeshift baseline should replay all 4 reads, got %d", reads)
	}
}

func TestTranslateRewind(t *testing.T) {
	tr := mkTrace([]ocp.Event{
		{Cmd: ocp.Write, Addr: 0x20, Burst: 1, Assert: 2, Accept: 3, Data: []uint32{1}},
	})
	p, _, err := Translate(tr, TranslateConfig{RecognizePolls: true, Rewind: true})
	if err != nil {
		t.Fatal(err)
	}
	last := p.Insts[len(p.Insts)-1]
	if last.Op != Jump || last.Imm != 0 {
		t.Fatalf("rewind program must end in Jump(start), got %+v", last)
	}
}

func TestTranslateEmptyTrace(t *testing.T) {
	p, _, err := Translate(mkTrace(nil), TranslateConfig{RecognizePolls: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 1 || p.Insts[0].Op != Halt {
		t.Fatal("empty trace should produce a bare Halt")
	}
}

func TestISATable1Coverage(t *testing.T) {
	// Every Table 1 instruction must exist and be distinct.
	table1 := []Op{Read, Write, BurstRead, BurstWrite, If, Jump, SetRegister, Idle}
	seen := map[Op]bool{}
	for _, op := range table1 {
		if !op.Valid() {
			t.Fatalf("%v invalid", op)
		}
		if seen[op] {
			t.Fatalf("%v duplicated", op)
		}
		seen[op] = true
	}
	if Halt.Valid() == false {
		t.Fatal("Halt extension missing")
	}
}
