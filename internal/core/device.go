package core

import (
	"fmt"

	"noctg/internal/ocp"
	"noctg/internal/sim"
)

type devState int

const (
	dRun devState = iota
	dIdle
	dIssue
	dWait
	dHalt
)

// Device is the multi-cycle TG processor of Section 4: an instruction
// memory, a register file, and no data memory. It drives an OCP master
// port and implements platform.Master, so it drops into any slot an ARM
// core occupies.
//
// Cycle costs (the translator's arithmetic depends on these exactly):
//
//	SetRegister, If, Jump, Halt : 1 cycle
//	Idle(n)                     : n cycles
//	Read/BurstRead              : asserts on its first cycle, completes the
//	                              cycle the response arrives
//	Write/BurstWrite            : asserts on its first cycle, completes the
//	                              cycle the interconnect accepts it
type Device struct {
	prog *Program
	port ocp.MasterPort
	// hinter is port's optional stall-horizon interface (nil when the port
	// cannot bound its next transition), letting NextWake sleep through
	// known interconnect occupancy instead of polling.
	hinter ocp.WakeHinter
	id     int

	regs  [NumRegs]uint32
	pc    int
	state devState
	// wakeAt is the absolute cycle at which an Idle wait expires: the
	// device resumes execution at the first tick whose cycle is >= wakeAt.
	// Keeping the deadline absolute (instead of a per-tick countdown) is
	// what lets the skip kernel jump over the whole wait without ticking.
	wakeAt uint64
	req    ocp.Request
	// burstBuf is the reusable BurstWrite payload buffer. Interconnects
	// copy the payload no later than acceptance (see ocp.MasterPort), so
	// one buffer per device is safe.
	burstBuf []uint32

	halted    bool
	faulted   bool
	haltCycle uint64

	// InstRet counts executed TG instructions; Transactions counts issued
	// OCP commands. Both are registry-registerable counters (RegisterStats)
	// so phased measurement can reset them at epoch boundaries.
	InstRet      sim.Counter
	Transactions sim.Counter
}

// NewDevice builds a TG executing prog through port. The program's declared
// register initial values are loaded into the register file.
func NewDevice(prog *Program, port ocp.MasterPort) (*Device, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if port == nil {
		return nil, fmt.Errorf("core: NewDevice requires a port")
	}
	d := &Device{prog: prog, port: port, id: prog.MasterID}
	d.hinter, _ = port.(ocp.WakeHinter)
	for i, v := range prog.RegInit {
		d.regs[i] = v
	}
	return d, nil
}

// Name implements sim.Named.
func (d *Device) Name() string { return fmt.Sprintf("tg%d", d.id) }

// RegisterStats implements sim.StatsSource.
func (d *Device) RegisterStats(r *sim.Registry) {
	r.RegisterCounter("inst_ret", &d.InstRet)
	r.RegisterCounter("transactions", &d.Transactions)
}

// Done reports whether the TG halted (platform.Master).
func (d *Device) Done() bool { return d.halted }

// Faulted reports whether the TG stopped on a bus error.
func (d *Device) Faulted() bool { return d.faulted }

// HaltCycle returns the cycle Halt executed.
func (d *Device) HaltCycle() uint64 { return d.haltCycle }

// Reg returns register i (diagnostics).
func (d *Device) Reg(i int) uint32 { return d.regs[i] }

// PC returns the current instruction index.
func (d *Device) PC() int { return d.pc }

// Preemptible reports whether the device is at a safe point for a
// multitasking scheduler to suspend it: between instructions or inside an
// Idle wait, but never with an OCP transaction in flight.
func (d *Device) Preemptible() bool {
	return d.state == dRun || d.state == dIdle || d.state == dHalt
}

// Idling reports whether the device is inside an Idle wait.
func (d *Device) Idling() bool { return d.state == dIdle }

// NextWake implements sim.Sleeper: a halted TG never wakes, an idling TG
// wakes when its Idle expires, and a TG blocked on an OCP handshake sleeps
// to the port's stall horizon (the interconnect's current occupancy or a
// scheduled response delivery) when the port can bound it, polling every
// cycle otherwise. The sleeps are strict "will not act before" promises:
// an idling TG is purely self-timed (no external input can shorten an
// Idle), and a hinted port freezes its answers until the horizon, so the
// event kernel may drop the TG from the tick loop entirely in between.
func (d *Device) NextWake(now uint64) uint64 {
	switch d.state {
	case dHalt:
		return sim.WakeNever
	case dIdle:
		if d.wakeAt > now {
			return d.wakeAt
		}
	case dIssue, dWait:
		if d.hinter != nil {
			if w := d.hinter.WakeHint(now); w > now {
				return w
			}
		}
	}
	return now
}

// PushWake defers an in-progress Idle wait by delta cycles. Schedulers that
// freeze suspended tasks (core.MultiTask with RunIdleTimers disabled) call
// it on resume with the length of the suspension, so the absolute deadline
// behaves exactly like a paused countdown. It is a no-op outside an Idle
// wait.
func (d *Device) PushWake(delta uint64) {
	if d.state == dIdle {
		d.wakeAt += delta
	}
}

// Tick implements sim.Device.
func (d *Device) Tick(cycle uint64) {
	switch d.state {
	case dHalt:
		return
	case dIdle:
		if cycle < d.wakeAt {
			return
		}
		// The wait expired: fall through to execute this cycle's
		// instruction, exactly as the strict per-cycle countdown did.
		d.state = dRun
	case dIssue:
		if d.port.TryRequest(&d.req) {
			d.Transactions++
			if d.req.Cmd.IsRead() {
				d.state = dWait
			} else {
				d.advance()
			}
		}
		return
	case dWait:
		resp, ok := d.port.TakeResponse()
		if !ok {
			return
		}
		if resp.Err {
			d.fault(cycle)
			return
		}
		if len(resp.Data) > 0 {
			d.regs[RdReg] = resp.Data[0]
		}
		d.advance()
		return
	}
	// dRun: execute the instruction at pc (one per cycle).
	if d.pc >= len(d.prog.Insts) {
		d.halt(cycle)
		return
	}
	in := d.prog.Insts[d.pc]
	d.InstRet++
	switch in.Op {
	case SetRegister:
		d.regs[in.Rd] = in.Imm
		d.pc++
	case If:
		if in.Cnd.Eval(d.regs[in.Ra], d.regs[in.Rb]) {
			d.pc = int(in.Imm)
		} else {
			d.pc++
		}
	case Jump:
		d.pc = int(in.Imm)
	case Idle:
		n := in.Imm
		if in.Rb == 1 {
			n = d.regs[in.Ra]
		}
		d.pc++
		if n <= 1 {
			return
		}
		// Idle(n) executed at this cycle occupies n cycles total: execution
		// resumes at cycle+n.
		d.wakeAt = cycle + uint64(n)
		d.state = dIdle
	case Halt:
		d.halt(cycle)
	case Read:
		d.issue(ocp.Request{Cmd: ocp.Read, Addr: d.regs[in.Ra], Burst: 1, MasterID: d.id})
	case BurstRead:
		d.issue(ocp.Request{Cmd: ocp.BurstRead, Addr: d.regs[in.Ra], Burst: int(in.Imm), MasterID: d.id})
	case Write:
		d.burstBuf = append(d.burstBuf[:0], d.regs[in.Rb])
		d.issue(ocp.Request{Cmd: ocp.Write, Addr: d.regs[in.Ra], Burst: 1,
			Data: d.burstBuf, MasterID: d.id})
	case BurstWrite:
		// Reuse the device-owned payload buffer: the previous burst was
		// copied by the interconnect at acceptance, and this device blocks
		// until each request is accepted.
		d.burstBuf = d.burstBuf[:0]
		for i := uint32(0); i < in.Imm; i++ {
			d.burstBuf = append(d.burstBuf, d.regs[in.Rb])
		}
		d.issue(ocp.Request{Cmd: ocp.BurstWrite, Addr: d.regs[in.Ra], Burst: int(in.Imm),
			Data: d.burstBuf, MasterID: d.id})
	}
}

// issue asserts the request this cycle (TryRequest is expected to reject
// until the interconnect latches it on a later cycle).
func (d *Device) issue(req ocp.Request) {
	d.req = req
	if d.port.TryRequest(&d.req) {
		// Some fabrics could accept immediately; handle it uniformly.
		d.Transactions++
		if req.Cmd.IsRead() {
			d.state = dWait
		} else {
			d.advance()
		}
		return
	}
	d.state = dIssue
}

func (d *Device) advance() {
	d.pc++
	d.state = dRun
}

func (d *Device) halt(cycle uint64) {
	d.halted = true
	d.haltCycle = cycle
	d.state = dHalt
}

func (d *Device) fault(cycle uint64) {
	d.faulted = true
	d.halt(cycle)
}

// TickWake implements sim.TickSleeper: one dispatch for the tick plus the
// post-tick wake query, exactly Tick(cycle) then NextWake(cycle+1).
func (d *Device) TickWake(cycle uint64) uint64 {
	d.Tick(cycle)
	return d.NextWake(cycle + 1)
}

var _ sim.Device = (*Device)(nil)
var _ sim.Sleeper = (*Device)(nil)
var _ sim.TickSleeper = (*Device)(nil)

// DebugState exposes the FSM state for diagnostics.
func (d *Device) DebugState() string {
	switch d.state {
	case dRun:
		return "run"
	case dIdle:
		return fmt.Sprintf("idle(until %d)", d.wakeAt)
	case dIssue:
		return "issue"
	case dWait:
		return "wait"
	case dHalt:
		return "halt"
	}
	return "?"
}
