package core

import (
	"fmt"

	"noctg/internal/ocp"
	"noctg/internal/sim"
)

type devState int

const (
	dRun devState = iota
	dIdle
	dIssue
	dWait
	dHalt
)

// Device is the multi-cycle TG processor of Section 4: an instruction
// memory, a register file, and no data memory. It drives an OCP master
// port and implements platform.Master, so it drops into any slot an ARM
// core occupies.
//
// Cycle costs (the translator's arithmetic depends on these exactly):
//
//	SetRegister, If, Jump, Halt : 1 cycle
//	Idle(n)                     : n cycles
//	Read/BurstRead              : asserts on its first cycle, completes the
//	                              cycle the response arrives
//	Write/BurstWrite            : asserts on its first cycle, completes the
//	                              cycle the interconnect accepts it
type Device struct {
	prog *Program
	port ocp.MasterPort
	id   int

	regs     [NumRegs]uint32
	pc       int
	state    devState
	idleLeft uint32
	req      ocp.Request

	halted    bool
	faulted   bool
	haltCycle uint64

	// InstRet counts executed TG instructions; Transactions counts issued
	// OCP commands.
	InstRet      uint64
	Transactions uint64
}

// NewDevice builds a TG executing prog through port. The program's declared
// register initial values are loaded into the register file.
func NewDevice(prog *Program, port ocp.MasterPort) (*Device, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if port == nil {
		return nil, fmt.Errorf("core: NewDevice requires a port")
	}
	d := &Device{prog: prog, port: port, id: prog.MasterID}
	for i, v := range prog.RegInit {
		d.regs[i] = v
	}
	return d, nil
}

// Name implements sim.Named.
func (d *Device) Name() string { return fmt.Sprintf("tg%d", d.id) }

// Done reports whether the TG halted (platform.Master).
func (d *Device) Done() bool { return d.halted }

// Faulted reports whether the TG stopped on a bus error.
func (d *Device) Faulted() bool { return d.faulted }

// HaltCycle returns the cycle Halt executed.
func (d *Device) HaltCycle() uint64 { return d.haltCycle }

// Reg returns register i (diagnostics).
func (d *Device) Reg(i int) uint32 { return d.regs[i] }

// PC returns the current instruction index.
func (d *Device) PC() int { return d.pc }

// Preemptible reports whether the device is at a safe point for a
// multitasking scheduler to suspend it: between instructions or inside an
// Idle wait, but never with an OCP transaction in flight.
func (d *Device) Preemptible() bool {
	return d.state == dRun || d.state == dIdle || d.state == dHalt
}

// Idling reports whether the device is inside an Idle wait (its countdown
// may be advanced by a scheduler even while the task is suspended).
func (d *Device) Idling() bool { return d.state == dIdle }

// Tick implements sim.Device.
func (d *Device) Tick(cycle uint64) {
	switch d.state {
	case dHalt:
		return
	case dIdle:
		d.idleLeft--
		if d.idleLeft == 0 {
			d.state = dRun
		}
		return
	case dIssue:
		if d.port.TryRequest(&d.req) {
			d.Transactions++
			if d.req.Cmd.IsRead() {
				d.state = dWait
			} else {
				d.advance()
			}
		}
		return
	case dWait:
		resp, ok := d.port.TakeResponse()
		if !ok {
			return
		}
		if resp.Err {
			d.fault(cycle)
			return
		}
		if len(resp.Data) > 0 {
			d.regs[RdReg] = resp.Data[0]
		}
		d.advance()
		return
	}
	// dRun: execute the instruction at pc (one per cycle).
	if d.pc >= len(d.prog.Insts) {
		d.halt(cycle)
		return
	}
	in := d.prog.Insts[d.pc]
	d.InstRet++
	switch in.Op {
	case SetRegister:
		d.regs[in.Rd] = in.Imm
		d.pc++
	case If:
		if in.Cnd.Eval(d.regs[in.Ra], d.regs[in.Rb]) {
			d.pc = int(in.Imm)
		} else {
			d.pc++
		}
	case Jump:
		d.pc = int(in.Imm)
	case Idle:
		n := in.Imm
		if in.Rb == 1 {
			n = d.regs[in.Ra]
		}
		d.pc++
		if n <= 1 {
			return
		}
		d.idleLeft = n - 1
		d.state = dIdle
	case Halt:
		d.halt(cycle)
	case Read:
		d.issue(ocp.Request{Cmd: ocp.Read, Addr: d.regs[in.Ra], Burst: 1, MasterID: d.id})
	case BurstRead:
		d.issue(ocp.Request{Cmd: ocp.BurstRead, Addr: d.regs[in.Ra], Burst: int(in.Imm), MasterID: d.id})
	case Write:
		d.issue(ocp.Request{Cmd: ocp.Write, Addr: d.regs[in.Ra], Burst: 1,
			Data: []uint32{d.regs[in.Rb]}, MasterID: d.id})
	case BurstWrite:
		data := make([]uint32, in.Imm)
		for i := range data {
			data[i] = d.regs[in.Rb]
		}
		d.issue(ocp.Request{Cmd: ocp.BurstWrite, Addr: d.regs[in.Ra], Burst: int(in.Imm),
			Data: data, MasterID: d.id})
	}
}

// issue asserts the request this cycle (TryRequest is expected to reject
// until the interconnect latches it on a later cycle).
func (d *Device) issue(req ocp.Request) {
	d.req = req
	if d.port.TryRequest(&d.req) {
		// Some fabrics could accept immediately; handle it uniformly.
		d.Transactions++
		if req.Cmd.IsRead() {
			d.state = dWait
		} else {
			d.advance()
		}
		return
	}
	d.state = dIssue
}

func (d *Device) advance() {
	d.pc++
	d.state = dRun
}

func (d *Device) halt(cycle uint64) {
	d.halted = true
	d.haltCycle = cycle
	d.state = dHalt
}

func (d *Device) fault(cycle uint64) {
	d.faulted = true
	d.halt(cycle)
}

var _ sim.Device = (*Device)(nil)

// DebugState exposes the FSM state for diagnostics.
func (d *Device) DebugState() string {
	switch d.state {
	case dRun:
		return "run"
	case dIdle:
		return fmt.Sprintf("idle(%d)", d.idleLeft)
	case dIssue:
		return "issue"
	case dWait:
		return "wait"
	case dHalt:
		return "halt"
	}
	return "?"
}
