package core

import (
	"fmt"
	"testing"

	"noctg/internal/amba"
	"noctg/internal/ocp"
	"noctg/internal/sim"
)

// --- SlaveTG (paper §4: slave-side traffic generators) ---

func TestSlaveTGDummyResponds(t *testing.T) {
	s := NewSlaveTG(DummySlave, 1, 0xabcd)
	r1 := s.Perform(&ocp.Request{Cmd: ocp.Read, Addr: 0x100, Burst: 1})
	r2 := s.Perform(&ocp.Request{Cmd: ocp.Read, Addr: 0x100, Burst: 1})
	r3 := s.Perform(&ocp.Request{Cmd: ocp.Read, Addr: 0x104, Burst: 1})
	if r1.Err || len(r1.Data) != 1 {
		t.Fatal("dummy read failed")
	}
	if r1.Data[0] != r2.Data[0] {
		t.Fatal("dummy values must be deterministic per address")
	}
	if r1.Data[0] == r3.Data[0] {
		t.Fatal("dummy values should vary by address")
	}
	// Writes are accepted and discarded.
	if resp := s.Perform(&ocp.Request{Cmd: ocp.Write, Addr: 0x100, Burst: 1, Data: []uint32{7}}); resp.Err {
		t.Fatal("dummy write rejected")
	}
	r4 := s.Perform(&ocp.Request{Cmd: ocp.Read, Addr: 0x100, Burst: 1})
	if r4.Data[0] != r1.Data[0] {
		t.Fatal("dummy slave must not store writes")
	}
	if s.Reads != 3+1 || s.Writes != 1 {
		t.Fatalf("stats reads=%d writes=%d", s.Reads, s.Writes)
	}
}

func TestSlaveTGMemoryStores(t *testing.T) {
	s := NewSlaveTG(MemorySlave, 2, 0)
	s.Perform(&ocp.Request{Cmd: ocp.BurstWrite, Addr: 0x200, Burst: 2, Data: []uint32{5, 6}})
	resp := s.Perform(&ocp.Request{Cmd: ocp.BurstRead, Addr: 0x200, Burst: 2})
	if resp.Data[0] != 5 || resp.Data[1] != 6 {
		t.Fatalf("memory slave read back %v", resp.Data)
	}
	if s.Peek(0x204) != 6 {
		t.Fatal("Peek")
	}
	// Unwritten words read as zero.
	resp = s.Perform(&ocp.Request{Cmd: ocp.Read, Addr: 0x300, Burst: 1})
	if resp.Data[0] != 0 {
		t.Fatal("unwritten word should be zero")
	}
}

func TestSlaveTGAccessCycles(t *testing.T) {
	s := NewSlaveTG(DummySlave, 3, 0)
	if s.AccessCycles(&ocp.Request{Cmd: ocp.BurstRead, Burst: 4}) != 12 {
		t.Fatal("access cycles must scale with burst")
	}
	if s.Mode() != DummySlave || s.Mode().String() != "dummy" {
		t.Fatal("mode")
	}
	if MemorySlave.String() != "memory" {
		t.Fatal("mode string")
	}
}

func TestAllTGPlatform(t *testing.T) {
	// The silicon-test-chip scenario: master TGs and slave TGs only, no
	// real cores or memories anywhere.
	e := sim.NewEngine(sim.Clock{})
	bus := amba.New(amba.Config{}, e.Cycle)
	slave := NewSlaveTG(MemorySlave, 1, 0)
	if err := bus.MapSlave(slave, ocp.AddrRange{Base: 0x1000, Size: 0x1000}); err != nil {
		t.Fatal(err)
	}
	prog := mustAssemble(t, `MASTER[0,0]
REGISTER addr 0x1000
REGISTER data 0
BEGIN
	SetRegister(data, 0x77)
	Write(addr, data)
	Idle(3)
	Read(addr)
	Halt
END`)
	d, err := NewDevice(prog, bus.NewMasterPort())
	if err != nil {
		t.Fatal(err)
	}
	e.Add(d)
	e.Add(bus)
	if _, err := e.Run(1000, func() bool { return d.Done() && bus.Idle() }); err != nil {
		t.Fatal(err)
	}
	if d.Reg(RdReg) != 0x77 {
		t.Fatalf("TG read back %#x through slave TG", d.Reg(RdReg))
	}
}

// --- MultiTask (paper §7: OS-scheduled tasks on one processor) ---

// taskProg builds a program that reads addr, idles, and finally writes val
// to addr — enough structure to expose unsafe preemption if it existed.
func taskProg(t *testing.T, addr, val uint32, idle int) *Program {
	t.Helper()
	src := fmt.Sprintf(`MASTER[0,0]
REGISTER addr %#x
REGISTER data %#x
BEGIN
	Read(addr)
	Idle(%d)
	Write(addr, data)
	Idle(%d)
	Write(addr, data)
	Halt
END`, addr, val, 10+idle, 5+idle)
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMultiTaskCompletesAllTasks(t *testing.T) {
	e := sim.NewEngine(sim.Clock{})
	bus := amba.New(amba.Config{}, e.Cycle)
	slave := NewSlaveTG(MemorySlave, 1, 0)
	if err := bus.MapSlave(slave, ocp.AddrRange{Base: 0x1000, Size: 0x1000}); err != nil {
		t.Fatal(err)
	}
	progs := []*Program{
		taskProg(t, 0x1000, 0xaaaa, 1),
		taskProg(t, 0x1004, 0xbbbb, 1),
		taskProg(t, 0x1008, 0xcccc, 1),
	}
	mt, err := NewMultiTask(MultiTaskConfig{Timeslice: 10, SwitchPenalty: 5}, progs, bus.NewMasterPort())
	if err != nil {
		t.Fatal(err)
	}
	e.Add(mt)
	e.Add(bus)
	if _, err := e.Run(100_000, func() bool { return mt.Done() && bus.Idle() }); err != nil {
		t.Fatal(err)
	}
	if slave.Peek(0x1000) != 0xaaaa || slave.Peek(0x1004) != 0xbbbb || slave.Peek(0x1008) != 0xcccc {
		t.Fatal("not all tasks' writes landed")
	}
	if mt.Switches == 0 {
		t.Fatal("expected context switches")
	}
}

func TestMultiTaskSwitchPenaltyCosts(t *testing.T) {
	run := func(penalty uint64) uint64 {
		e := sim.NewEngine(sim.Clock{})
		bus := amba.New(amba.Config{}, e.Cycle)
		slave := NewSlaveTG(MemorySlave, 1, 0)
		if err := bus.MapSlave(slave, ocp.AddrRange{Base: 0x1000, Size: 0x1000}); err != nil {
			t.Fatal(err)
		}
		progs := []*Program{
			taskProg(t, 0x1000, 1, 1),
			taskProg(t, 0x1004, 2, 1),
		}
		mt, err := NewMultiTask(MultiTaskConfig{Timeslice: 8, SwitchPenalty: penalty}, progs, bus.NewMasterPort())
		if err != nil {
			t.Fatal(err)
		}
		e.Add(mt)
		e.Add(bus)
		if _, err := e.Run(100_000, func() bool { return mt.Done() && bus.Idle() }); err != nil {
			t.Fatal(err)
		}
		return mt.HaltCycle()
	}
	if fast, slow := run(1), run(50); slow <= fast {
		t.Fatalf("higher switch penalty should lengthen the run (%d vs %d)", fast, slow)
	}
}

func TestMultiTaskNeverPreemptsMidTransaction(t *testing.T) {
	// With a 1-cycle timeslice every instruction boundary is a switch
	// point; the port discipline (one outstanding transaction) would be
	// violated — and the bus would mis-sequence — if a task were suspended
	// mid-transaction. Completing correctly is the proof.
	e := sim.NewEngine(sim.Clock{})
	bus := amba.New(amba.Config{}, e.Cycle)
	slave := NewSlaveTG(MemorySlave, 4, 0) // slow: transactions span slices
	if err := bus.MapSlave(slave, ocp.AddrRange{Base: 0x1000, Size: 0x1000}); err != nil {
		t.Fatal(err)
	}
	progs := []*Program{
		taskProg(t, 0x1000, 11, 1),
		taskProg(t, 0x1004, 22, 1),
	}
	mt, err := NewMultiTask(MultiTaskConfig{Timeslice: 1, SwitchPenalty: 2}, progs, bus.NewMasterPort())
	if err != nil {
		t.Fatal(err)
	}
	e.Add(mt)
	e.Add(bus)
	if _, err := e.Run(100_000, func() bool { return mt.Done() && bus.Idle() }); err != nil {
		t.Fatal(err)
	}
	if slave.Peek(0x1000) != 11 || slave.Peek(0x1004) != 22 {
		t.Fatal("interleaved tasks corrupted each other")
	}
}

func TestMultiTaskIdleTimersRun(t *testing.T) {
	// Task 0 sleeps a long Idle; task 1 does short work. With RunIdleTimers
	// the sleeper's countdown overlaps task 1's slices, so the makespan is
	// close to the Idle length rather than the sum.
	build := func(runTimers bool) uint64 {
		e := sim.NewEngine(sim.Clock{})
		bus := amba.New(amba.Config{}, e.Cycle)
		slave := NewSlaveTG(MemorySlave, 1, 0)
		if err := bus.MapSlave(slave, ocp.AddrRange{Base: 0x1000, Size: 0x100}); err != nil {
			t.Fatal(err)
		}
		sleeper := mustAssemble(t, "MASTER[0,0]\nBEGIN\nIdle(2000)\nHalt\nEND")
		worker := mustAssemble(t, `MASTER[0,0]
REGISTER addr 0x1000
REGISTER data 9
BEGIN
	Write(addr, data)
	Idle(400)
	Halt
END`)
		mt, err := NewMultiTask(MultiTaskConfig{Timeslice: 50, SwitchPenalty: 2, RunIdleTimers: runTimers},
			[]*Program{sleeper, worker}, bus.NewMasterPort())
		if err != nil {
			t.Fatal(err)
		}
		e.Add(mt)
		e.Add(bus)
		if _, err := e.Run(100_000, func() bool { return mt.Done() && bus.Idle() }); err != nil {
			t.Fatal(err)
		}
		return mt.HaltCycle()
	}
	overlapped, frozen := build(true), build(false)
	if overlapped >= frozen {
		t.Fatalf("overlapping idle timers should shorten the run (%d vs %d)", overlapped, frozen)
	}
}

func TestMultiTaskErrors(t *testing.T) {
	if _, err := NewMultiTask(MultiTaskConfig{}, nil, idlePortStub{}); err == nil {
		t.Fatal("empty task list should fail")
	}
	bad := &Program{Insts: []Inst{{Op: Jump, Imm: 9}}}
	if _, err := NewMultiTask(MultiTaskConfig{}, []*Program{bad}, idlePortStub{}); err == nil {
		t.Fatal("invalid program should fail")
	}
}

type idlePortStub struct{}

func (idlePortStub) TryRequest(*ocp.Request) bool        { return false }
func (idlePortStub) TakeResponse() (*ocp.Response, bool) { return nil, false }
func (idlePortStub) Busy() bool                          { return false }

func TestDevicePreemptibleStates(t *testing.T) {
	p := mustAssemble(t, `MASTER[0,0]
REGISTER addr 0x100
BEGIN
	Idle(5)
	Read(addr)
	Halt
END`)
	var cycle uint64
	port := &fakePort{now: func() uint64 { return cycle }, acceptDelay: 3, respDelay: 5,
		memory: map[uint32]uint32{0x100: 1}}
	d, err := NewDevice(p, port)
	if err != nil {
		t.Fatal(err)
	}
	sawIdle, sawBlocked := false, false
	for ; !d.Done(); cycle++ {
		d.Tick(cycle)
		if d.Idling() {
			sawIdle = true
			if !d.Preemptible() {
				t.Fatal("idling device must be preemptible")
			}
		}
		if !d.Preemptible() {
			sawBlocked = true
		}
	}
	if !sawIdle || !sawBlocked {
		t.Fatalf("state coverage: idle=%v blocked=%v", sawIdle, sawBlocked)
	}
}
