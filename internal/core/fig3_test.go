package core

import (
	"strings"
	"testing"

	"noctg/internal/ocp"
	"noctg/internal/sim"
	"noctg/internal/trace"
)

// TestFig3GoldenTranslation feeds the translator the paper's Figure 3(a)
// trace — transliterated to cycles at the paper's 5 ns clock, with
// acceptance times added — and checks that the output program has the
// structure of Figure 3(b): the initial Idle(11) wait, the RD/WR/RD
// sequence with register set-up between commands, and the semaphore
// polling collapsed into a Semchk loop guarded by `If rdreg != tempreg`.
func TestFig3GoldenTranslation(t *testing.T) {
	clk := sim.DefaultClock
	cy := clk.Cycles
	evs := []ocp.Event{
		// ; Simple RD/WR/WRNP
		// RD 0x00000104 @55ns / Resp Data 0x088000f0 @75ns
		{Cmd: ocp.Read, Addr: 0x104, Burst: 1,
			Assert: cy(55), Accept: cy(55) + 1, Resp: cy(75), HasResp: true, Data: []uint32{0x088000f0}},
		// WR 0x00000020 0x00000111 @90ns
		{Cmd: ocp.Write, Addr: 0x20, Burst: 1,
			Assert: cy(90), Accept: cy(90) + 1, Data: []uint32{0x111}},
		// RD 0x00000031 @140ns / Resp Data 0x00002236 @165ns
		{Cmd: ocp.Read, Addr: 0x30, Burst: 1, // word aligned (paper prints 0x31)
			Assert: cy(140), Accept: cy(140) + 1, Resp: cy(165), HasResp: true, Data: []uint32{0x2236}},
		// ; polling a semaphore!!
		// RD 0x000000ff @210ns -> 0 / @285 -> 0 / @305 -> 1
		{Cmd: ocp.Read, Addr: 0xf8, Burst: 1, // word aligned (paper prints 0xff)
			Assert: cy(210), Accept: cy(210) + 1, Resp: cy(270), HasResp: true, Data: []uint32{0}},
		{Cmd: ocp.Read, Addr: 0xf8, Burst: 1,
			Assert: cy(285), Accept: cy(285) + 1, Resp: cy(310), HasResp: true, Data: []uint32{0}},
		{Cmd: ocp.Read, Addr: 0xf8, Burst: 1,
			Assert: cy(325), Accept: cy(325) + 1, Resp: cy(340), HasResp: true, Data: []uint32{1}},
	}
	tr := trace.New(0, clk, evs)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	prog, stats, err := Translate(tr, TranslateConfig{
		PollRanges:     []PollRange{{Range: ocp.AddrRange{Base: 0xf8, Size: 4}}},
		RecognizePolls: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Structure: SetRegister(addr,0x104), Idle(10), Read — so the first
	// read asserts on cycle 11, the paper's "no instruction to perform
	// until the 11th (55/5) cycle".
	want := []struct {
		op  Op
		imm uint32
	}{
		{SetRegister, 0x104}, // addr
		{Idle, 10},
		{Read, 0},
		{SetRegister, 0x20},  // addr
		{SetRegister, 0x111}, // data
		{Write, 0},
		{SetRegister, 0x30}, // addr
		{Idle, 0},           // remaining gap before second read
		{Read, 0},
		{SetRegister, 0xf8}, // semaphore address
		{SetRegister, 1},    // tempreg = unblocked value
	}
	if len(prog.Insts) < len(want) {
		text, _ := prog.FormatString()
		t.Fatalf("program too short:\n%s", text)
	}
	for i, w := range want {
		in := prog.Insts[i]
		if in.Op != w.op {
			text, _ := prog.FormatString()
			t.Fatalf("inst %d is %v, want %v:\n%s", i, in.Op, w.op, text)
		}
		if w.op == SetRegister && in.Imm != w.imm {
			t.Fatalf("inst %d sets %#x, want %#x", i, in.Imm, w.imm)
		}
		if i == 1 && in.Imm != w.imm {
			t.Fatalf("initial idle = %d, want %d (first command on cycle 11)", in.Imm, w.imm)
		}
	}
	// The three polls collapse into one Semchk loop.
	if stats.PollLoops != 1 || stats.PollReadsCollapsed != 2 {
		t.Fatalf("poll stats %+v", stats)
	}
	text, err := prog.FormatString()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Semchk0:", "If rdreg != tempreg then Semchk0", "Halt"} {
		if !strings.Contains(text, frag) {
			t.Fatalf("program missing %q:\n%s", frag, text)
		}
	}
	// And the whole thing must replay: run it against the recorded
	// latency profile and confirm the semaphore loop exits on the value 1.
	var cycle uint64
	port := &pollPort{now: func() uint64 { return cycle }, grantOn: 3}
	d, err := NewDevice(prog, port)
	if err != nil {
		t.Fatal(err)
	}
	for ; !d.Done() && cycle < 10_000; cycle++ {
		d.Tick(cycle)
	}
	if !d.Done() {
		t.Fatal("Fig 3 program did not run to completion")
	}
	if d.Reg(RdReg) != 1 {
		t.Fatalf("rdreg = %d after semaphore grant, want 1", d.Reg(RdReg))
	}
}

// TestTranslateDeterminism: translating the same trace twice must yield
// byte-identical programs (the cross-interconnect experiment's local half).
func TestTranslateDeterminism(t *testing.T) {
	evs := []ocp.Event{
		{Cmd: ocp.Read, Addr: 0x104, Burst: 1, Assert: 11, Accept: 12, Resp: 15, HasResp: true, Data: []uint32{1}},
		{Cmd: ocp.Write, Addr: 0x20, Burst: 1, Assert: 22, Accept: 23, Data: []uint32{2}},
		{Cmd: ocp.BurstRead, Addr: 0x40, Burst: 4, Assert: 30, Accept: 31, Resp: 40, HasResp: true, Data: []uint32{0, 0, 0, 0}},
	}
	cfg := TranslateConfig{RecognizePolls: true}
	p1, _, err := Translate(trace.New(0, sim.DefaultClock, evs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := Translate(trace.New(0, sim.DefaultClock, evs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := p1.FormatString()
	t2, _ := p2.FormatString()
	if t1 != t2 {
		t.Fatal("translation is not deterministic")
	}
}
