package core

import (
	"bytes"
	"testing"
)

// FuzzAssembleTGP: the .tgp assembler must never panic, and anything it
// accepts must survive a Format→Assemble round trip.
func FuzzAssembleTGP(f *testing.F) {
	f.Add("MASTER[0,0]\nBEGIN\nHalt\nEND")
	f.Add(`MASTER[1,2]
REGISTER addr 0x104
REGISTER tempreg 1
BEGIN
start:
	Idle(11)
	Read(addr)
	If rdreg != tempreg then start
	Jump(start)
END`)
	f.Add("MASTER[0,0]\nREGISTER a 0\nBEGIN\nBurstWrite(a, a, 4)\nHalt\nEND")
	f.Add("garbage ( [ } END BEGIN")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		text, err := p.FormatString()
		if err != nil {
			t.Fatalf("accepted program fails to format: %v", err)
		}
		p2, err := Assemble(text)
		if err != nil {
			t.Fatalf("canonical output does not reassemble: %v\n%s", err, text)
		}
		if len(p2.Insts) != len(p.Insts) {
			t.Fatalf("round trip changed instruction count %d → %d", len(p.Insts), len(p2.Insts))
		}
	})
}

// FuzzReadBin: arbitrary bytes must never panic the .bin decoder, and
// accepted images must re-encode to an equivalent program.
func FuzzReadBin(f *testing.F) {
	p := NewProgram(3, 1)
	if _, err := p.AddReg("addr", 0x104); err != nil {
		f.Fatal(err)
	}
	p.Insts = []Inst{{Op: Read, Ra: 1}, {Op: Halt}}
	var buf bytes.Buffer
	if err := p.WriteBin(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("TGBIN1\x00\x00garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadBin(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := p.WriteBin(&out); err != nil {
			t.Fatalf("accepted image fails to re-encode: %v", err)
		}
		p2, err := ReadBin(&out)
		if err != nil || len(p2.Insts) != len(p.Insts) {
			t.Fatalf("re-encoded image does not round trip: %v", err)
		}
	})
}
