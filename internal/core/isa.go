// Package core implements the paper's contribution: the OCP-master Traffic
// Generator. It provides
//
//   - the TG instruction set of Table 1 (OCP commands, conditional
//     sequencing, parameterised waits) plus a Halt extension,
//   - the symbolic .tgp program format (assembler, formatter) and the .bin
//     binary image codec,
//   - the trace→program translator with reactive poll-loop recognition
//     (Section 5), and
//   - the cycle-true TG device that executes programs against any OCP
//     interconnect (Section 4).
package core

import "fmt"

// Op enumerates TG opcodes (Table 1). Halt is an extension: the paper's
// programs end in `Jump(start)` because a silicon TG free-runs, but a
// simulation needs a termination point.
type Op uint8

const (
	// Read issues a blocking single read from the address register; the
	// response lands in rdreg (register 0).
	Read Op = iota
	// Write issues a posted single write of the data register.
	Write
	// BurstRead issues a blocking burst read of Imm beats.
	BurstRead
	// BurstWrite issues a posted burst write of Imm beats, replaying the
	// data register for every beat (see DESIGN.md §3 on burst payloads).
	BurstWrite
	// If branches to Imm (instruction index) when the condition holds.
	If
	// Jump branches unconditionally to Imm (instruction index).
	Jump
	// SetRegister loads Imm into Rd.
	SetRegister
	// Idle waits Imm cycles (or the value of Ra when Rb == 1 — the
	// "parameterised wait" of Table 1).
	Idle
	// Halt stops the TG.
	Halt
	opCount
)

var opNames = [opCount]string{
	"Read", "Write", "BurstRead", "BurstWrite", "If", "Jump", "SetRegister", "Idle", "Halt",
}

// String returns the .tgp mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Valid reports whether o is defined.
func (o Op) Valid() bool { return o < opCount }

// Cond enumerates If comparison operators.
type Cond uint8

const (
	// EQ branches when Ra == Rb.
	EQ Cond = iota
	// NE branches when Ra != Rb.
	NE
	// LT branches when Ra < Rb (unsigned).
	LT
	// GE branches when Ra >= Rb (unsigned).
	GE
	condCount
)

var condNames = [condCount]string{"==", "!=", "<", ">="}

// String returns the .tgp operator.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("Cond(%d)", uint8(c))
}

// Valid reports whether c is defined.
func (c Cond) Valid() bool { return c < condCount }

// NumRegs is the TG register-file size. Register 0 is rdreg, the implicit
// destination of Read responses (Figure 3(b): "rdreg ... holds value of
// RD transactions").
const NumRegs = 16

// RdReg is the fixed index of rdreg.
const RdReg = 0

// Inst is one TG instruction.
//
// Field use per opcode:
//
//	Read        Ra=address register
//	Write       Ra=address register, Rb=data register
//	BurstRead   Ra=address register, Imm=beat count
//	BurstWrite  Ra=address register, Rb=data register, Imm=beat count
//	If          Ra,Rb=operands, Cnd=operator, Imm=target instruction index
//	Jump        Imm=target instruction index
//	SetRegister Rd=destination, Imm=value
//	Idle        Imm=cycles, or Ra=register holding cycles when Rb==1
//	Halt        —
type Inst struct {
	Op  Op
	Rd  int
	Ra  int
	Rb  int
	Cnd Cond
	Imm uint32
}

// InstBytes is the encoded instruction size.
const InstBytes = 8

// Encode packs the instruction into 8 bytes:
// op(1) rd/cond(1) ra(1) rb(1) imm(4) little-endian. If does not write a
// register, so its Rd byte carries the condition.
func (i Inst) Encode() [InstBytes]byte {
	var b [InstBytes]byte
	b[0] = byte(i.Op)
	if i.Op == If {
		b[1] = byte(i.Cnd)
	} else {
		b[1] = byte(i.Rd)
	}
	b[2] = byte(i.Ra)
	b[3] = byte(i.Rb)
	b[4] = byte(i.Imm)
	b[5] = byte(i.Imm >> 8)
	b[6] = byte(i.Imm >> 16)
	b[7] = byte(i.Imm >> 24)
	return b
}

// DecodeInst unpacks an encoded instruction; ok is false for invalid
// opcodes, registers or conditions.
func DecodeInst(b [InstBytes]byte) (Inst, bool) {
	i := Inst{
		Op:  Op(b[0]),
		Ra:  int(b[2]),
		Rb:  int(b[3]),
		Imm: uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24,
	}
	if i.Op == If {
		i.Cnd = Cond(b[1])
		if !i.Cnd.Valid() {
			return i, false
		}
	} else {
		i.Rd = int(b[1])
	}
	if !i.Op.Valid() || i.Rd >= NumRegs || i.Ra >= NumRegs || i.Rb >= NumRegs {
		return i, false
	}
	return i, true
}

// Eval applies the condition to two values.
func (c Cond) Eval(a, b uint32) bool {
	switch c {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case GE:
		return a >= b
	}
	return false
}
