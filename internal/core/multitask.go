package core

import (
	"fmt"

	"noctg/internal/ocp"
	"noctg/internal/sim"
)

// MultiTaskConfig parameterises the multitasking TG master.
type MultiTaskConfig struct {
	// Timeslice is the scheduling quantum in cycles (default 500).
	Timeslice uint64
	// SwitchPenalty is the context-switch cost in cycles (default 20),
	// modelling register/cache state exchange.
	SwitchPenalty uint64
	// RunIdleTimers keeps suspended tasks' Idle timers running (a task
	// blocked in a long Idle behaves like a sleeping process whose timer
	// fires regardless of who is scheduled). When false, suspended tasks
	// are fully frozen: their Idle deadline is deferred by the length of
	// every suspension.
	RunIdleTimers bool
}

func (c MultiTaskConfig) withDefaults() MultiTaskConfig {
	if c.Timeslice == 0 {
		c.Timeslice = 500
	}
	if c.SwitchPenalty == 0 {
		c.SwitchPenalty = 20
	}
	return c
}

// MultiTask runs several TG programs ("tasks") on a single OCP master port
// under a preemptive round-robin timeslice scheduler — the paper's §7
// future-work scenario of "a system in which multiple tasks run on a single
// processor and are dynamically scheduled by an OS".
//
// Preemption happens only at safe points: between TG instructions, never
// while an OCP transaction is in flight (an OS cannot deschedule a core
// mid-bus-transfer either). Each switch costs SwitchPenalty idle cycles.
type MultiTask struct {
	cfg   MultiTaskConfig
	port  ocp.MasterPort
	tasks []*Device

	cur        int
	sliceLeft  uint64
	switchLeft uint64

	// lastTick records the last cycle each task was ticked; with frozen
	// idle timers (RunIdleTimers false), a resumed task's Idle deadline is
	// pushed by the gap, emulating a paused countdown over the devices'
	// absolute wake deadlines.
	lastTick []uint64
	ticked   []bool

	halted    bool
	haltCycle uint64
	// Switches counts completed context switches.
	Switches uint64
}

// NewMultiTask builds a multitasking master executing progs over port.
func NewMultiTask(cfg MultiTaskConfig, progs []*Program, port ocp.MasterPort) (*MultiTask, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("core: MultiTask needs at least one task")
	}
	m := &MultiTask{cfg: cfg.withDefaults(), port: port}
	for i, p := range progs {
		d, err := NewDevice(p, port)
		if err != nil {
			return nil, fmt.Errorf("core: task %d: %w", i, err)
		}
		m.tasks = append(m.tasks, d)
	}
	m.sliceLeft = m.cfg.Timeslice
	m.lastTick = make([]uint64, len(m.tasks))
	m.ticked = make([]bool, len(m.tasks))
	return m, nil
}

// Name implements sim.Named.
func (m *MultiTask) Name() string { return "multitask" }

// Done reports whether every task has halted.
func (m *MultiTask) Done() bool { return m.halted }

// HaltCycle returns the cycle the last task halted.
func (m *MultiTask) HaltCycle() uint64 { return m.haltCycle }

// Task returns task i's device (diagnostics).
func (m *MultiTask) Task(i int) *Device { return m.tasks[i] }

// Tick implements sim.Device.
func (m *MultiTask) Tick(cycle uint64) {
	if m.halted {
		return
	}
	if m.switchLeft > 0 {
		m.switchLeft--
		return
	}
	cur := m.tasks[m.cur]
	if cur.Done() {
		if !m.rotate(cycle, false) {
			return
		}
		cur = m.tasks[m.cur]
	}
	m.tickTask(m.cur, cycle)
	if m.sliceLeft > 0 {
		m.sliceLeft--
	}
	if cur.Done() {
		m.rotate(cycle, true)
		return
	}
	if m.sliceLeft == 0 && cur.Preemptible() {
		m.rotate(cycle, true)
	}
}

// tickTask ticks task i at cycle. Devices keep absolute Idle deadlines
// (which run on wall-clock cycles, matching RunIdleTimers semantics for
// free); with frozen timers the deadline is first deferred by however long
// the task sat suspended.
func (m *MultiTask) tickTask(i int, cycle uint64) {
	t := m.tasks[i]
	if !m.cfg.RunIdleTimers && m.ticked[i] && cycle > m.lastTick[i]+1 {
		t.PushWake(cycle - m.lastTick[i] - 1)
	}
	m.lastTick[i] = cycle
	m.ticked[i] = true
	t.Tick(cycle)
}

// rotate schedules the next runnable task; it returns false (and halts the
// master) when none remain. When penalize is set the switch pays the
// context-switch cost.
func (m *MultiTask) rotate(cycle uint64, penalize bool) bool {
	n := len(m.tasks)
	for k := 1; k <= n; k++ {
		i := (m.cur + k) % n
		if !m.tasks[i].Done() {
			if i != m.cur && penalize {
				m.switchLeft = m.cfg.SwitchPenalty
				m.Switches++
			}
			m.cur = i
			m.sliceLeft = m.cfg.Timeslice
			return true
		}
	}
	if m.tasks[m.cur].Done() {
		m.halted = true
		m.haltCycle = cycle
		return false
	}
	// Only the current task remains.
	m.sliceLeft = m.cfg.Timeslice
	return true
}

// NextWake implements sim.Sleeper conservatively: scheduling state (time
// slices, switch penalties) is per-tick countdown state, so a running
// multitask master asks to be ticked every cycle; only a fully halted one
// lets the skip and event kernels elide its ticks. Conservatism is safe by
// the Sleeper contract — it just keeps the master in the per-cycle tick
// set.
func (m *MultiTask) NextWake(now uint64) uint64 {
	if m.halted {
		return sim.WakeNever
	}
	return now
}

var _ sim.Device = (*MultiTask)(nil)
var _ sim.Sleeper = (*MultiTask)(nil)
