package core

import (
	"fmt"

	"noctg/internal/ocp"
	"noctg/internal/sim"
)

// MultiTaskConfig parameterises the multitasking TG master.
type MultiTaskConfig struct {
	// Timeslice is the scheduling quantum in cycles (default 500).
	Timeslice uint64
	// SwitchPenalty is the context-switch cost in cycles (default 20),
	// modelling register/cache state exchange.
	SwitchPenalty uint64
	// RunIdleTimers keeps suspended tasks' Idle countdowns running (a task
	// blocked in a long Idle behaves like a sleeping process whose timer
	// fires regardless of who is scheduled). When false, suspended tasks
	// are fully frozen.
	RunIdleTimers bool
}

func (c MultiTaskConfig) withDefaults() MultiTaskConfig {
	if c.Timeslice == 0 {
		c.Timeslice = 500
	}
	if c.SwitchPenalty == 0 {
		c.SwitchPenalty = 20
	}
	return c
}

// MultiTask runs several TG programs ("tasks") on a single OCP master port
// under a preemptive round-robin timeslice scheduler — the paper's §7
// future-work scenario of "a system in which multiple tasks run on a single
// processor and are dynamically scheduled by an OS".
//
// Preemption happens only at safe points: between TG instructions, never
// while an OCP transaction is in flight (an OS cannot deschedule a core
// mid-bus-transfer either). Each switch costs SwitchPenalty idle cycles.
type MultiTask struct {
	cfg   MultiTaskConfig
	port  ocp.MasterPort
	tasks []*Device

	cur        int
	sliceLeft  uint64
	switchLeft uint64

	halted    bool
	haltCycle uint64
	// Switches counts completed context switches.
	Switches uint64
}

// NewMultiTask builds a multitasking master executing progs over port.
func NewMultiTask(cfg MultiTaskConfig, progs []*Program, port ocp.MasterPort) (*MultiTask, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("core: MultiTask needs at least one task")
	}
	m := &MultiTask{cfg: cfg.withDefaults(), port: port}
	for i, p := range progs {
		d, err := NewDevice(p, port)
		if err != nil {
			return nil, fmt.Errorf("core: task %d: %w", i, err)
		}
		m.tasks = append(m.tasks, d)
	}
	m.sliceLeft = m.cfg.Timeslice
	return m, nil
}

// Name implements sim.Named.
func (m *MultiTask) Name() string { return "multitask" }

// Done reports whether every task has halted.
func (m *MultiTask) Done() bool { return m.halted }

// HaltCycle returns the cycle the last task halted.
func (m *MultiTask) HaltCycle() uint64 { return m.haltCycle }

// Task returns task i's device (diagnostics).
func (m *MultiTask) Task(i int) *Device { return m.tasks[i] }

// Tick implements sim.Device.
func (m *MultiTask) Tick(cycle uint64) {
	if m.halted {
		return
	}
	m.tickSleepers(cycle)
	if m.switchLeft > 0 {
		m.switchLeft--
		return
	}
	cur := m.tasks[m.cur]
	if cur.Done() {
		if !m.rotate(cycle, false) {
			return
		}
		cur = m.tasks[m.cur]
	}
	cur.Tick(cycle)
	if m.sliceLeft > 0 {
		m.sliceLeft--
	}
	if cur.Done() {
		m.rotate(cycle, true)
		return
	}
	if m.sliceLeft == 0 && cur.Preemptible() {
		m.rotate(cycle, true)
	}
}

// tickSleepers advances suspended tasks that are inside an Idle wait.
func (m *MultiTask) tickSleepers(cycle uint64) {
	if !m.cfg.RunIdleTimers {
		return
	}
	for i, t := range m.tasks {
		if i != m.cur && t.Idling() {
			t.Tick(cycle)
		}
	}
}

// rotate schedules the next runnable task; it returns false (and halts the
// master) when none remain. When penalize is set the switch pays the
// context-switch cost.
func (m *MultiTask) rotate(cycle uint64, penalize bool) bool {
	n := len(m.tasks)
	for k := 1; k <= n; k++ {
		i := (m.cur + k) % n
		if !m.tasks[i].Done() {
			if i != m.cur && penalize {
				m.switchLeft = m.cfg.SwitchPenalty
				m.Switches++
			}
			m.cur = i
			m.sliceLeft = m.cfg.Timeslice
			return true
		}
	}
	if m.tasks[m.cur].Done() {
		m.halted = true
		m.haltCycle = cycle
		return false
	}
	// Only the current task remains.
	m.sliceLeft = m.cfg.Timeslice
	return true
}

var _ sim.Device = (*MultiTask)(nil)
