package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Program is a TG program: register declarations plus an instruction
// stream. It is produced by the translator or by assembling .tgp text, and
// executed by the TG Device (or serialised to a .bin image, the form that
// would be loaded into a hardware TG's instruction memory).
type Program struct {
	// MasterID and Thread identify the emulated core (the .tgp
	// MASTER[coreID,thrdID] header).
	MasterID int
	Thread   int
	// RegNames holds the declared register names; index 0 is always
	// "rdreg". RegInit holds the matching initial values.
	RegNames []string
	RegInit  []uint32
	// Insts is the instruction stream. Branch targets are instruction
	// indices.
	Insts []Inst
	// Labels maps label names to instruction indices (for formatting).
	Labels map[string]int
}

// NewProgram returns an empty program with rdreg predeclared.
func NewProgram(masterID, thread int) *Program {
	return &Program{
		MasterID: masterID,
		Thread:   thread,
		RegNames: []string{"rdreg"},
		RegInit:  []uint32{0},
		Labels:   map[string]int{},
	}
}

// AddReg declares a register and returns its index.
func (p *Program) AddReg(name string, init uint32) (int, error) {
	if len(p.RegNames) >= NumRegs {
		return 0, fmt.Errorf("core: register file full (%d registers)", NumRegs)
	}
	for _, n := range p.RegNames {
		if n == name {
			return 0, fmt.Errorf("core: duplicate register %q", name)
		}
	}
	p.RegNames = append(p.RegNames, name)
	p.RegInit = append(p.RegInit, init)
	return len(p.RegNames) - 1, nil
}

// RegIndex looks a register name up.
func (p *Program) RegIndex(name string) (int, bool) {
	for i, n := range p.RegNames {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// Validate checks structural invariants: branch targets in range, register
// indices declared, counts positive.
func (p *Program) Validate() error {
	n := len(p.Insts)
	regs := len(p.RegNames)
	for idx, in := range p.Insts {
		if !in.Op.Valid() {
			return fmt.Errorf("core: inst %d: invalid opcode", idx)
		}
		if in.Rd >= regs || in.Ra >= regs || in.Rb >= regs {
			return fmt.Errorf("core: inst %d (%v): register out of range", idx, in.Op)
		}
		switch in.Op {
		case If, Jump:
			if int(in.Imm) >= n {
				return fmt.Errorf("core: inst %d (%v): target %d out of range", idx, in.Op, in.Imm)
			}
		case BurstRead, BurstWrite:
			if in.Imm < 1 {
				return fmt.Errorf("core: inst %d (%v): burst count must be >= 1", idx, in.Op)
			}
		}
	}
	if len(p.RegNames) != len(p.RegInit) {
		return fmt.Errorf("core: register name/init length mismatch")
	}
	return nil
}

// binMagic identifies .bin images ("TGBIN1\0\0").
var binMagic = [8]byte{'T', 'G', 'B', 'I', 'N', '1', 0, 0}

// WriteBin serialises the program as a .bin image:
//
//	magic[8] masterID[u32] thread[u32] nregs[u32] {init[u32]}... ninst[u32]
//	{inst[8]}...
//
// Register names and labels are symbolic-only and not part of the image,
// exactly as an assembled binary for a hardware TG would drop them.
func (p *Program) WriteBin(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.Write(binMagic[:])
	le := binary.LittleEndian
	var u [4]byte
	put := func(v uint32) {
		le.PutUint32(u[:], v)
		buf.Write(u[:])
	}
	put(uint32(p.MasterID))
	put(uint32(p.Thread))
	put(uint32(len(p.RegInit)))
	for _, v := range p.RegInit {
		put(v)
	}
	put(uint32(len(p.Insts)))
	for _, in := range p.Insts {
		b := in.Encode()
		buf.Write(b[:])
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadBin parses a .bin image. Register names are reconstructed as
// rdreg, r1, r2…
func ReadBin(r io.Reader) (*Program, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < 8+16 || !bytes.Equal(data[:8], binMagic[:]) {
		return nil, fmt.Errorf("core: not a TGBIN1 image")
	}
	le := binary.LittleEndian
	off := 8
	next := func() (uint32, error) {
		if off+4 > len(data) {
			return 0, fmt.Errorf("core: truncated .bin image at offset %d", off)
		}
		v := le.Uint32(data[off:])
		off += 4
		return v, nil
	}
	master, err := next()
	if err != nil {
		return nil, err
	}
	thread, err := next()
	if err != nil {
		return nil, err
	}
	nregs, err := next()
	if err != nil {
		return nil, err
	}
	if nregs < 1 || nregs > NumRegs {
		return nil, fmt.Errorf("core: .bin declares %d registers", nregs)
	}
	p := &Program{MasterID: int(master), Thread: int(thread), Labels: map[string]int{}}
	for i := uint32(0); i < nregs; i++ {
		v, err := next()
		if err != nil {
			return nil, err
		}
		name := "rdreg"
		if i > 0 {
			name = fmt.Sprintf("r%d", i)
		}
		p.RegNames = append(p.RegNames, name)
		p.RegInit = append(p.RegInit, v)
	}
	ninst, err := next()
	if err != nil {
		return nil, err
	}
	if off+int(ninst)*InstBytes > len(data) {
		return nil, fmt.Errorf("core: truncated .bin image: %d instructions declared", ninst)
	}
	for i := uint32(0); i < ninst; i++ {
		var b [InstBytes]byte
		copy(b[:], data[off:off+InstBytes])
		off += InstBytes
		in, ok := DecodeInst(b)
		if !ok {
			return nil, fmt.Errorf("core: .bin instruction %d invalid", i)
		}
		p.Insts = append(p.Insts, in)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
