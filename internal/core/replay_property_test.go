package core

import (
	"math/rand"
	"testing"

	"noctg/internal/ocp"
	"noctg/internal/sim"
	"noctg/internal/trace"
)

// TestTranslateReplayExactProperty is the package's central correctness
// property: for a trace without polling, translating and replaying against
// an interconnect with the same latencies must reproduce every transaction
// at exactly its recorded acceptance cycle. This is what makes the Table 2
// error column ≈0 — any cycle-cost mismatch between the translator's
// bookkeeping and the device's execution shows up here immediately.
func TestTranslateReplayExactProperty(t *testing.T) {
	const (
		acceptDelay = 1 // port accepts on the cycle after assert
		respDelay   = 4 // read data arrives 4 cycles after acceptance
	)
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var evs []ocp.Event
		now := uint64(rng.Intn(6))
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			// Gaps of at least 4 cycles leave room for SetRegister overhead
			// (addr+data) so nothing is clamped.
			gap := uint64(4 + rng.Intn(12))
			e := ocp.Event{Burst: 1, Addr: uint32(rng.Intn(256)) * 4}
			e.Assert = now + gap
			e.Accept = e.Assert + acceptDelay
			switch rng.Intn(4) {
			case 0:
				e.Cmd = ocp.Read
				e.HasResp = true
				e.Resp = e.Accept + respDelay
				e.Data = []uint32{rng.Uint32()}
			case 1:
				e.Cmd = ocp.Write
				e.Data = []uint32{rng.Uint32() % 4} // small set → elision paths
			case 2:
				e.Cmd = ocp.BurstRead
				e.Burst = 1 << rng.Intn(3)
				e.HasResp = true
				e.Resp = e.Accept + respDelay
				e.Data = make([]uint32, e.Burst)
			default:
				e.Cmd = ocp.BurstWrite
				e.Burst = 1 << rng.Intn(3)
				e.Data = make([]uint32, e.Burst)
				v := rng.Uint32() % 4
				for k := range e.Data {
					e.Data[k] = v // burst payloads replay one register
				}
			}
			evs = append(evs, e)
			now = e.Done()
		}
		tr := trace.New(0, sim.DefaultClock, evs)
		prog, stats, err := Translate(tr, TranslateConfig{RecognizePolls: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if stats.ClampedCycles != 0 {
			t.Fatalf("trial %d: unexpected clamping (%d cycles)", trial, stats.ClampedCycles)
		}

		var cycle uint64
		port := &fakePort{now: func() uint64 { return cycle }, acceptDelay: acceptDelay, respDelay: respDelay}
		d, err := NewDevice(prog, port)
		if err != nil {
			t.Fatal(err)
		}
		for ; !d.Done() && cycle < now+10_000; cycle++ {
			d.Tick(cycle)
		}
		if !d.Done() {
			t.Fatalf("trial %d: replay did not finish", trial)
		}
		if len(port.log) != len(evs) {
			t.Fatalf("trial %d: replayed %d of %d transactions", trial, len(port.log), len(evs))
		}
		for i, got := range port.log {
			want := evs[i]
			// fakePort logs at acceptance.
			if got.Assert != want.Accept {
				t.Fatalf("trial %d, txn %d (%v @%d): accepted at %d, want %d",
					trial, i, want.Cmd, want.Assert, got.Assert, want.Accept)
			}
			if got.Cmd != want.Cmd || got.Addr != want.Addr || got.Burst != want.Burst {
				t.Fatalf("trial %d, txn %d: shape mismatch %+v vs %+v", trial, i, got, want)
			}
			if want.Cmd.IsWrite() {
				for k := range want.Data {
					if got.Data[k] != want.Data[k] {
						t.Fatalf("trial %d, txn %d: write data %v vs %v", trial, i, got.Data, want.Data)
					}
				}
			}
		}
	}
}

// TestTranslateIdleSumProperty: for a linear trace, the total of emitted
// Idle amounts plus one cycle per non-Idle instruction reconstructs the
// trace's command schedule — i.e. nothing is lost or double counted.
func TestTranslateIdleSumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		var evs []ocp.Event
		now := uint64(0)
		for i := 0; i < 20; i++ {
			gap := uint64(6 + rng.Intn(10))
			e := ocp.Event{Cmd: ocp.Write, Burst: 1, Addr: uint32(i) * 4,
				Data: []uint32{uint32(i)}}
			e.Assert = now + gap
			e.Accept = e.Assert + 1
			evs = append(evs, e)
			now = e.Done()
		}
		prog, _, err := Translate(trace.New(0, sim.DefaultClock, evs), TranslateConfig{RecognizePolls: true})
		if err != nil {
			t.Fatal(err)
		}
		// Walk the program symbolically: each instruction costs 1 cycle
		// except Idle(n) costing n; a command's execution tick must be its
		// recorded assert, after which time jumps to its completion + 1.
		tick := uint64(0)
		cmd := 0
		for _, in := range prog.Insts {
			switch in.Op {
			case Idle:
				tick += uint64(in.Imm)
			case Write:
				if tick != evs[cmd].Assert {
					t.Fatalf("trial %d: command %d executes at %d, want %d", trial, cmd, tick, evs[cmd].Assert)
				}
				tick = evs[cmd].Done() + 1
				cmd++
			case Halt:
			default:
				tick++
			}
		}
		if cmd != len(evs) {
			t.Fatalf("trial %d: %d of %d commands emitted", trial, cmd, len(evs))
		}
	}
}
