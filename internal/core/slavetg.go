package core

import (
	"fmt"

	"noctg/internal/ocp"
	"noctg/internal/sim"
)

// SlaveMode selects how a SlaveTG answers reads.
type SlaveMode int

const (
	// DummySlave responds with a deterministic dummy value derived from
	// the address and discards writes — the paper's "TG emulating a slave
	// memory (an OCP slave) … able to respond, possibly with dummy values".
	DummySlave SlaveMode = iota
	// MemorySlave keeps actual word storage — the paper's "TG emulating a
	// shared memory … must contain a data structure modeling an actual
	// shared memory (since the values read by the masters may affect the
	// sequence of transactions seen at the master IP cores)".
	MemorySlave
)

func (m SlaveMode) String() string {
	switch m {
	case DummySlave:
		return "dummy"
	case MemorySlave:
		return "memory"
	}
	return fmt.Sprintf("SlaveMode(%d)", int(m))
}

// SlaveTG is the slave-side traffic generator of Section 4: a small state
// machine handling OCP transactions, deployable in place of real memory
// models on an all-TG platform (e.g. a silicon NoC test chip). It
// implements ocp.Slave.
type SlaveTG struct {
	mode       SlaveMode
	waitStates uint64
	salt       uint32
	words      map[uint32]uint32

	// Reads and Writes count served transactions (beats).
	Reads, Writes uint64
}

// NewSlaveTG builds a slave TG. waitStates is the emulated access time per
// beat; salt perturbs dummy read values so distinct slaves are
// distinguishable in traces.
func NewSlaveTG(mode SlaveMode, waitStates uint64, salt uint32) *SlaveTG {
	s := &SlaveTG{mode: mode, waitStates: waitStates, salt: salt}
	if mode == MemorySlave {
		s.words = make(map[uint32]uint32)
	}
	return s
}

// Mode returns the slave's response mode.
func (s *SlaveTG) Mode() SlaveMode { return s.mode }

// AccessCycles implements ocp.Slave.
func (s *SlaveTG) AccessCycles(req *ocp.Request) uint64 {
	return s.waitStates * uint64(req.Burst)
}

// Perform implements ocp.Slave.
func (s *SlaveTG) Perform(req *ocp.Request) ocp.Response {
	return s.PerformInto(req, make([]uint32, 0, req.Burst))
}

// PerformInto implements ocp.BufferedSlave.
func (s *SlaveTG) PerformInto(req *ocp.Request, dst []uint32) ocp.Response {
	switch {
	case req.Cmd.IsRead():
		s.Reads += uint64(req.Burst)
		for i := 0; i < req.Burst; i++ {
			addr := req.Addr + uint32(4*i)
			if s.mode == MemorySlave {
				dst = append(dst, s.words[addr])
			} else {
				dst = append(dst, s.dummy(addr))
			}
		}
		return ocp.Response{Data: dst}
	case req.Cmd.IsWrite():
		s.Writes += uint64(req.Burst)
		if s.mode == MemorySlave {
			for i, v := range req.Data {
				s.words[req.Addr+uint32(4*i)] = v
			}
		}
		return ocp.Response{}
	}
	return ocp.Response{Err: true}
}

// NextWake implements sim.Sleeper: a slave TG acts only inside
// fabric-invoked Perform calls, so it never needs a clock tick — under any
// kernel, including the event kernel's no-tick sleeps. (The invoking
// fabric is the device that is awake while a Perform is pending.)
func (s *SlaveTG) NextWake(uint64) uint64 { return sim.WakeNever }

// dummy derives the deterministic dummy read value for addr.
func (s *SlaveTG) dummy(addr uint32) uint32 {
	v := addr ^ s.salt
	v ^= v << 13
	v ^= v >> 17
	v ^= v << 5
	return v
}

// Peek reads a stored word (MemorySlave only; zero when absent).
func (s *SlaveTG) Peek(addr uint32) uint32 { return s.words[addr] }

var _ ocp.Slave = (*SlaveTG)(nil)
var _ ocp.BufferedSlave = (*SlaveTG)(nil)
