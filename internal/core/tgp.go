package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Format renders the program as canonical .tgp text (Figure 3(b) style).
// Format(Assemble(x)) is a fixed point: assembling the output reproduces
// the same program.
func (p *Program) Format(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; Master Core\n")
	fmt.Fprintf(bw, "MASTER[%d,%d]\n", p.MasterID, p.Thread)
	fmt.Fprintf(bw, "; rdreg (r0) holds the value of RD transactions\n")
	for i := 1; i < len(p.RegNames); i++ {
		fmt.Fprintf(bw, "REGISTER %s 0x%08x\n", p.RegNames[i], p.RegInit[i])
	}
	fmt.Fprintf(bw, "BEGIN\n")

	// Labels by instruction index (sorted for deterministic output).
	byIndex := map[int][]string{}
	for name, idx := range p.Labels {
		byIndex[idx] = append(byIndex[idx], name)
	}
	for _, names := range byIndex {
		sort.Strings(names)
	}
	reg := func(i int) string { return p.RegNames[i] }
	target := func(imm uint32) string {
		if names, ok := byIndex[int(imm)]; ok {
			return names[0]
		}
		return strconv.Itoa(int(imm))
	}
	for idx, in := range p.Insts {
		for _, l := range byIndex[idx] {
			fmt.Fprintf(bw, "%s:\n", l)
		}
		switch in.Op {
		case Read:
			fmt.Fprintf(bw, "\tRead(%s)\n", reg(in.Ra))
		case Write:
			fmt.Fprintf(bw, "\tWrite(%s, %s)\n", reg(in.Ra), reg(in.Rb))
		case BurstRead:
			fmt.Fprintf(bw, "\tBurstRead(%s, %d)\n", reg(in.Ra), in.Imm)
		case BurstWrite:
			fmt.Fprintf(bw, "\tBurstWrite(%s, %s, %d)\n", reg(in.Ra), reg(in.Rb), in.Imm)
		case If:
			fmt.Fprintf(bw, "\tIf %s %s %s then %s\n", reg(in.Ra), in.Cnd, reg(in.Rb), target(in.Imm))
		case Jump:
			fmt.Fprintf(bw, "\tJump(%s)\n", target(in.Imm))
		case SetRegister:
			fmt.Fprintf(bw, "\tSetRegister(%s, 0x%08x)\n", reg(in.Rd), in.Imm)
		case Idle:
			if in.Rb == 1 && in.Ra != 0 {
				fmt.Fprintf(bw, "\tIdle(%s)\n", reg(in.Ra))
			} else {
				fmt.Fprintf(bw, "\tIdle(%d)\n", in.Imm)
			}
		case Halt:
			fmt.Fprintf(bw, "\tHalt\n")
		}
	}
	fmt.Fprintf(bw, "END\n")
	return bw.Flush()
}

// FormatString is Format into a string.
func (p *Program) FormatString() (string, error) {
	var b strings.Builder
	if err := p.Format(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// TgpError reports a .tgp parse failure.
type TgpError struct {
	Line int
	Msg  string
}

func (e *TgpError) Error() string { return fmt.Sprintf("tgp: line %d: %s", e.Line, e.Msg) }

// Assemble parses .tgp text into a Program.
func Assemble(src string) (*Program, error) {
	p := NewProgram(0, 0)
	type patch struct {
		inst  int
		label string
		line  int
	}
	var patches []patch
	seenBegin, seenEnd := false, false

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := ln + 1
		switch {
		case strings.HasPrefix(line, "MASTER["):
			rest := strings.TrimPrefix(line, "MASTER[")
			rest = strings.TrimSuffix(rest, "]")
			parts := strings.Split(rest, ",")
			if len(parts) != 2 {
				return nil, &TgpError{lineNo, "MASTER needs [coreID,thrdID]"}
			}
			id, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
			th, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
			if err1 != nil || err2 != nil {
				return nil, &TgpError{lineNo, "bad MASTER ids"}
			}
			p.MasterID, p.Thread = id, th
			continue
		case strings.HasPrefix(line, "REGISTER "):
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return nil, &TgpError{lineNo, "REGISTER needs NAME INIT"}
			}
			v, err := strconv.ParseUint(fields[2], 0, 32)
			if err != nil {
				return nil, &TgpError{lineNo, fmt.Sprintf("bad init %q", fields[2])}
			}
			if _, err := p.AddReg(fields[1], uint32(v)); err != nil {
				return nil, &TgpError{lineNo, err.Error()}
			}
			continue
		case line == "BEGIN":
			seenBegin = true
			continue
		case line == "END":
			seenEnd = true
			continue
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, "(") {
			name := strings.TrimSuffix(line, ":")
			if name == "" || strings.ContainsAny(name, " \t") {
				return nil, &TgpError{lineNo, fmt.Sprintf("bad label %q", name)}
			}
			if _, dup := p.Labels[name]; dup {
				return nil, &TgpError{lineNo, fmt.Sprintf("duplicate label %q", name)}
			}
			p.Labels[name] = len(p.Insts)
			continue
		}
		if !seenBegin || seenEnd {
			return nil, &TgpError{lineNo, "instruction outside BEGIN/END"}
		}
		in, lbl, err := parseTgpInst(p, line, lineNo)
		if err != nil {
			return nil, err
		}
		if lbl != "" {
			patches = append(patches, patch{inst: len(p.Insts), label: lbl, line: lineNo})
		}
		p.Insts = append(p.Insts, in)
	}
	if !seenBegin || !seenEnd {
		return nil, fmt.Errorf("tgp: missing BEGIN/END")
	}
	for _, pt := range patches {
		idx, ok := p.Labels[pt.label]
		if !ok {
			// Numeric targets are accepted for round-tripping programs
			// whose labels were stripped (e.g. decoded .bin images).
			if v, err := strconv.Atoi(pt.label); err == nil && v >= 0 {
				idx = v
			} else {
				return nil, &TgpError{pt.line, fmt.Sprintf("undefined label %q", pt.label)}
			}
		}
		p.Insts[pt.inst].Imm = uint32(idx)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseTgpInst parses one instruction line; it returns a pending label name
// for branch instructions.
func parseTgpInst(p *Program, line string, lineNo int) (Inst, string, error) {
	reg := func(name string) (int, error) {
		name = strings.TrimSpace(name)
		if i, ok := p.RegIndex(name); ok {
			return i, nil
		}
		return 0, &TgpError{lineNo, fmt.Sprintf("undeclared register %q", name)}
	}

	// "If a != b then label" has its own shape.
	if strings.HasPrefix(line, "If ") || strings.HasPrefix(line, "if ") {
		rest := strings.TrimSpace(line[3:])
		ti := strings.Index(rest, " then ")
		if ti < 0 {
			return Inst{}, "", &TgpError{lineNo, "If needs 'then LABEL'"}
		}
		label := strings.TrimSpace(rest[ti+len(" then "):])
		cond := strings.TrimSpace(rest[:ti])
		var cnd Cond
		var opStr string
		switch {
		case strings.Contains(cond, "!="):
			cnd, opStr = NE, "!="
		case strings.Contains(cond, "=="):
			cnd, opStr = EQ, "=="
		case strings.Contains(cond, ">="):
			cnd, opStr = GE, ">="
		case strings.Contains(cond, "<"):
			cnd, opStr = LT, "<"
		default:
			return Inst{}, "", &TgpError{lineNo, fmt.Sprintf("no comparison operator in %q", cond)}
		}
		parts := strings.SplitN(cond, opStr, 2)
		ra, err := reg(parts[0])
		if err != nil {
			return Inst{}, "", err
		}
		rb, err := reg(parts[1])
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: If, Ra: ra, Rb: rb, Cnd: cnd}, label, nil
	}
	if line == "Halt" || line == "halt" {
		return Inst{Op: Halt}, "", nil
	}

	open := strings.Index(line, "(")
	close := strings.LastIndex(line, ")")
	if open < 0 || close < open {
		return Inst{}, "", &TgpError{lineNo, fmt.Sprintf("malformed instruction %q", line)}
	}
	name := strings.TrimSpace(line[:open])
	var args []string
	if inner := strings.TrimSpace(line[open+1 : close]); inner != "" {
		for _, a := range strings.Split(inner, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return &TgpError{lineNo, fmt.Sprintf("%s needs %d arguments, got %d", name, n, len(args))}
		}
		return nil
	}
	num := func(s string) (uint32, error) {
		v, err := strconv.ParseUint(s, 0, 32)
		if err != nil {
			return 0, &TgpError{lineNo, fmt.Sprintf("bad number %q", s)}
		}
		return uint32(v), nil
	}
	switch name {
	case "Read":
		if err := need(1); err != nil {
			return Inst{}, "", err
		}
		ra, err := reg(args[0])
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: Read, Ra: ra}, "", nil
	case "Write":
		if err := need(2); err != nil {
			return Inst{}, "", err
		}
		ra, err := reg(args[0])
		if err != nil {
			return Inst{}, "", err
		}
		rb, err := reg(args[1])
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: Write, Ra: ra, Rb: rb}, "", nil
	case "BurstRead":
		if err := need(2); err != nil {
			return Inst{}, "", err
		}
		ra, err := reg(args[0])
		if err != nil {
			return Inst{}, "", err
		}
		n, err := num(args[1])
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: BurstRead, Ra: ra, Imm: n}, "", nil
	case "BurstWrite":
		if err := need(3); err != nil {
			return Inst{}, "", err
		}
		ra, err := reg(args[0])
		if err != nil {
			return Inst{}, "", err
		}
		rb, err := reg(args[1])
		if err != nil {
			return Inst{}, "", err
		}
		n, err := num(args[2])
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: BurstWrite, Ra: ra, Rb: rb, Imm: n}, "", nil
	case "SetRegister":
		if err := need(2); err != nil {
			return Inst{}, "", err
		}
		rd, err := reg(args[0])
		if err != nil {
			return Inst{}, "", err
		}
		v, err := num(args[1])
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: SetRegister, Rd: rd, Imm: v}, "", nil
	case "Idle":
		if err := need(1); err != nil {
			return Inst{}, "", err
		}
		if v, err := strconv.ParseUint(args[0], 0, 32); err == nil {
			return Inst{Op: Idle, Imm: uint32(v)}, "", nil
		}
		ra, err := reg(args[0])
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: Idle, Ra: ra, Rb: 1}, "", nil
	case "Jump":
		if err := need(1); err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: Jump}, args[0], nil
	}
	return Inst{}, "", &TgpError{lineNo, fmt.Sprintf("unknown instruction %q", name)}
}
