package core

import (
	"fmt"
	"sort"

	"noctg/internal/ocp"
	"noctg/internal/trace"
)

// PollRange declares one pollable address range and the traced core's
// polling period for it.
type PollRange struct {
	// Range is the pollable address window.
	Range ocp.AddrRange
	// Gap is the core's response→re-poll period in cycles for loops on
	// this range. When zero the translator measures it from the trace,
	// falling back to DefaultPollGap for single-poll runs — but a fixed,
	// platform-supplied Gap is required for translated programs to be
	// byte-identical across interconnects (a lucky first-try poll on one
	// fabric leaves nothing to measure, while the other fabric measures).
	Gap uint64
}

// TranslateConfig parameterises trace→program translation.
type TranslateConfig struct {
	// PollRanges are the address ranges the translator knows to be
	// pollable (the hardware semaphore bank and any registered shared flag
	// words — the paper's "knowledge of what addressing ranges represent
	// pollable resources"). Reads falling in these ranges collapse into
	// reactive poll loops.
	PollRanges []PollRange
	// DefaultPollGap is the final fallback polling period (cycles).
	DefaultPollGap uint64
	// RecognizePolls enables poll-loop collapsing. Disabling it yields the
	// non-reactive "time-shifting" baseline of Section 3, which replays
	// the recorded number of polls verbatim.
	RecognizePolls bool
	// Rewind ends the program with Jump(start) instead of Halt — the
	// paper's free-running mode for NoC test chips.
	Rewind bool
}

// DefaultTranslateConfig returns the reactive configuration.
func DefaultTranslateConfig(pollRanges []PollRange) TranslateConfig {
	return TranslateConfig{
		PollRanges:     pollRanges,
		DefaultPollGap: DefaultPollGap,
		RecognizePolls: true,
	}
}

// DefaultPollGap is the fallback response→re-poll period.
const DefaultPollGap = 8

// TranslateStats reports translation fidelity information.
type TranslateStats struct {
	// Events is the number of trace events consumed.
	Events int
	// PollLoops is the number of poll runs collapsed into loops.
	PollLoops int
	// PollReadsCollapsed counts trace reads absorbed by those loops.
	PollReadsCollapsed int
	// ClampedCycles accumulates idle cycles that could not be inserted
	// because register set-up overheads exceeded the recorded gap (the
	// paper's "minimal timing mismatches caused by the conversion").
	ClampedCycles uint64
}

// Translate converts a collected trace into a TG program (Section 5).
//
// Idle gaps are measured relative to the previous transaction's completion
// (response for blocking reads, acceptance for posted writes), which is
// core compute time and therefore interconnect-independent; reads in poll
// ranges are collapsed into `Semchk: Read / If rdreg != tempreg then
// Semchk` loops whose exit value is the final recorded response. Identical
// applications traced on different interconnects therefore translate to
// identical programs — the paper's Section 6 validation.
func Translate(tr *trace.Trace, cfg TranslateConfig) (*Program, *TranslateStats, error) {
	if err := tr.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.DefaultPollGap == 0 {
		cfg.DefaultPollGap = DefaultPollGap
	}
	t := &translator{
		cfg:   cfg,
		prog:  NewProgram(tr.MasterID, 0),
		stats: &TranslateStats{Events: len(tr.Events)},
	}
	var err error
	if t.addrReg, err = t.prog.AddReg("addr", 0); err != nil {
		return nil, nil, err
	}
	if t.dataReg, err = t.prog.AddReg("data", 0); err != nil {
		return nil, nil, err
	}
	if t.tempReg, err = t.prog.AddReg("tempreg", 0); err != nil {
		return nil, nil, err
	}
	t.prog.Labels["start"] = 0

	events := tr.Events
	for i := 0; i < len(events); {
		if cfg.RecognizePolls && t.pollable(events[i].Addr) && events[i].Cmd == ocp.Read {
			i = t.emitPollCluster(events, i)
			continue
		}
		t.emitEvent(&events[i])
		i++
	}
	if cfg.Rewind {
		t.emit(Inst{Op: Jump, Imm: 0})
	} else {
		t.emit(Inst{Op: Halt})
	}
	if err := t.prog.Validate(); err != nil {
		return nil, nil, err
	}
	return t.prog, t.stats, nil
}

type translator struct {
	cfg   TranslateConfig
	prog  *Program
	stats *TranslateStats

	addrReg, dataReg, tempReg int
	addrValid                 bool
	addrCur                   uint32
	dataValid                 bool
	dataCur                   uint32
	tempValid                 bool
	tempCur                   uint32

	// nextTick is the cycle at which the next emitted instruction will
	// execute, tracked on the reference timeline.
	nextTick uint64
	semSeq   int
}

func (t *translator) pollable(addr uint32) bool {
	_, ok := t.pollGapFor(addr)
	return ok
}

// pollGapFor returns the configured polling period for addr and whether
// addr is pollable at all. A zero gap means "measure from the trace".
func (t *translator) pollGapFor(addr uint32) (uint64, bool) {
	for _, r := range t.cfg.PollRanges {
		if r.Range.Contains(addr) {
			return r.Gap, true
		}
	}
	return 0, false
}

func (t *translator) emit(in Inst) { t.prog.Insts = append(t.prog.Insts, in) }

// setup emits the SetRegister instructions a command needs, returning how
// many cycles they consume.
func (t *translator) setup(addr uint32, data *uint32, temp *uint32) uint64 {
	var ops uint64
	if !t.addrValid || t.addrCur != addr {
		t.emit(Inst{Op: SetRegister, Rd: t.addrReg, Imm: addr})
		t.addrValid, t.addrCur = true, addr
		ops++
	}
	if data != nil && (!t.dataValid || t.dataCur != *data) {
		t.emit(Inst{Op: SetRegister, Rd: t.dataReg, Imm: *data})
		t.dataValid, t.dataCur = true, *data
		ops++
	}
	if temp != nil && (!t.tempValid || t.tempCur != *temp) {
		t.emit(Inst{Op: SetRegister, Rd: t.tempReg, Imm: *temp})
		t.tempValid, t.tempCur = true, *temp
		ops++
	}
	return ops
}

// fillIdle emits the Idle padding so the next command asserts at the
// recorded cycle.
func (t *translator) fillIdle(assert uint64, ops uint64) {
	target := t.nextTick + ops
	if assert > target {
		t.emit(Inst{Op: Idle, Imm: uint32(assert - target)})
	} else if assert < target {
		t.stats.ClampedCycles += target - assert
	}
}

// emitEvent translates one non-poll transaction.
func (t *translator) emitEvent(e *ocp.Event) {
	var data *uint32
	if e.Cmd.IsWrite() {
		data = &e.Data[0]
	}
	// Compute overheads without emitting yet? SetRegister emission order is
	// fixed (addr, data), and fillIdle must come after them but before the
	// command; emit setregs first, then idle, then command — the idle
	// amount depends only on the count of setregs.
	ops := t.setup(e.Addr, data, nil)
	t.fillIdle(e.Assert, ops)
	switch e.Cmd {
	case ocp.Read:
		t.emit(Inst{Op: Read, Ra: t.addrReg})
	case ocp.BurstRead:
		t.emit(Inst{Op: BurstRead, Ra: t.addrReg, Imm: uint32(e.Burst)})
	case ocp.Write:
		t.emit(Inst{Op: Write, Ra: t.addrReg, Rb: t.dataReg})
	case ocp.BurstWrite:
		t.emit(Inst{Op: BurstWrite, Ra: t.addrReg, Rb: t.dataReg, Imm: uint32(e.Burst)})
	}
	t.nextTick = e.Done() + 1
}

// emitPollCluster collapses a polling episode starting at events[i] into a
// single reactive loop and returns the index of the first event after it.
//
// An episode is a maximal sequence of reads to one pollable address,
// possibly interleaved with instruction-cache refills (burst reads to
// non-pollable memory): the traced core's poll loop can miss in the I-cache
// mid-loop on its first traversal. Splitting such an episode at the refill
// would produce a loop whose exit value is a *failed* poll — which can
// deadlock a test-and-set semaphore during replay and makes translated
// programs depend on racy first-poll values. Instead the refills are
// hoisted in front of one merged loop whose exit value is the episode's
// final (successful) response; all idle gaps stay measured between
// adjacent events of the original trace, so they remain
// interconnect-independent.
func (t *translator) emitPollCluster(events []ocp.Event, i int) int {
	addr := events[i].Addr
	polls := []*ocp.Event{&events[i]}
	type preEvent struct {
		ev       *ocp.Event
		prevDone uint64 // completion of the event preceding it in the trace
	}
	var pres []preEvent
	straddled := map[int]bool{} // poll-gap indices that cross a refill

	j := i + 1
	for j < len(events) {
		ev := &events[j]
		if ev.Cmd == ocp.Read && ev.Addr == addr {
			polls = append(polls, ev)
			j++
			continue
		}
		// Absorb refills only when more polls of this address follow.
		if ev.Cmd == ocp.BurstRead && !t.pollable(ev.Addr) {
			k := j
			for k < len(events) && events[k].Cmd == ocp.BurstRead && !t.pollable(events[k].Addr) {
				k++
			}
			if k < len(events) && events[k].Cmd == ocp.Read && events[k].Addr == addr {
				for ; j < k; j++ {
					pres = append(pres, preEvent{ev: &events[j], prevDone: events[j-1].Done()})
				}
				straddled[len(polls)-1] = true
				continue
			}
		}
		break
	}

	t.stats.PollLoops++
	t.stats.PollReadsCollapsed += len(polls) - 1

	// Hoist the interleaved refills, timing each against the completion of
	// the event that preceded it in the original trace (core compute time,
	// so interconnect-independent).
	for _, pre := range pres {
		t.nextTick = pre.prevDone + 1
		t.emitEvent(pre.ev)
	}

	last := polls[len(polls)-1]
	want := last.Data[0]
	ops := t.setup(addr, nil, &want)
	t.fillIdle(polls[0].Assert, ops)

	// Polling period: configured per range when the platform knows it;
	// otherwise the response→re-assert spacing measured over gaps that do
	// not cross a hoisted refill, with the global default as last resort.
	pollGap, _ := t.pollGapFor(addr)
	if pollGap == 0 {
		pollGap = t.cfg.DefaultPollGap
		var gaps []uint64
		for k := 0; k+1 < len(polls); k++ {
			if !straddled[k] {
				gaps = append(gaps, polls[k+1].Assert-polls[k].Resp)
			}
		}
		if len(gaps) > 0 {
			sort.Slice(gaps, func(a, b int) bool { return gaps[a] < gaps[b] })
			pollGap = gaps[len(gaps)/2]
		}
	}

	label := fmt.Sprintf("Semchk%d", t.semSeq)
	t.semSeq++
	t.prog.Labels[label] = len(t.prog.Insts)
	loopStart := uint32(len(t.prog.Insts))
	t.emit(Inst{Op: Read, Ra: t.addrReg})
	inner := uint64(0)
	if pollGap > 2 {
		inner = pollGap - 2
		t.emit(Inst{Op: Idle, Imm: uint32(inner)})
	}
	t.emit(Inst{Op: If, Ra: RdReg, Rb: t.tempReg, Cnd: NE, Imm: loopStart})

	// Exit path: the final response is followed by the Idle and the
	// fall-through If before the next translated instruction runs.
	t.nextTick = last.Resp + 1 + inner + 1
	return j
}
