package cpu

import "testing"

func TestAlignDirective(t *testing.T) {
	prog, err := Assemble(`
		nop
	.align 16
	aligned:
		halt`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Symbols["aligned"]%16 != 0 {
		t.Fatalf("aligned label at %#x", prog.Symbols["aligned"])
	}
	// Padding must decode as NOP so fall-through execution works.
	off := (prog.Symbols["aligned"] - 0x1000) / 4
	for i := uint32(2); i < off; i += 2 {
		in, ok := Decode(prog.Words[i], prog.Words[i+1])
		if !ok || in.Op != NOP {
			t.Fatalf("padding word %d is %v, want NOP", i, in.Op)
		}
	}
}

func TestAlignAlreadyAligned(t *testing.T) {
	prog, err := Assemble(".align 16\nstart:\nhalt", 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Symbols["start"] != 0x1000 {
		t.Fatal(".align on aligned location must not pad")
	}
}

func TestAlignErrors(t *testing.T) {
	for _, src := range []string{".align 0", ".align 3", ".align zzz"} {
		if _, err := Assemble(src, 0x1000); err == nil {
			t.Fatalf("%q should fail", src)
		}
	}
}

func TestAlignPaddingExecutes(t *testing.T) {
	// Fall through NOP padding into the aligned loop.
	r := runSrc(t, `
		ldi r1, 3
	.align 32
	loop:
		subi r1, r1, 1
		ldi r2, 0
		bne r1, r2, loop
		halt`)
	if r.core.Reg(1) != 0 {
		t.Fatal("loop after padding did not run")
	}
}

func TestJalLinkValue(t *testing.T) {
	// JAL stores the return address (pc+8); JR returns exactly after it.
	r := runSrc(t, `
		ldi r1, 0
		jal r14, sub
		addi r1, r1, 100     ; must execute exactly once after return
		halt
	sub:
		addi r1, r1, 1
		jr r14`)
	if r.core.Reg(1) != 101 {
		t.Fatalf("r1 = %d, want 101", r.core.Reg(1))
	}
}

func TestNopAndHaltTiming(t *testing.T) {
	a := runSrc(t, "halt")
	b := runSrc(t, "nop\nnop\nhalt")
	if b.core.HaltCycle() <= a.core.HaltCycle() {
		t.Fatal("NOPs must consume cycles")
	}
	if b.core.InstRet != 3 {
		t.Fatalf("retired %d, want 3", b.core.InstRet)
	}
}

func TestStallCyclesAccumulate(t *testing.T) {
	r := runSrc(t, `
		ldi r1, 0x08000000
		ldr r2, [r1+0]     ; uncached: guaranteed stalls
		halt`)
	if r.core.StallCycles == 0 {
		t.Fatal("uncached load should stall the core")
	}
}

func TestSelfModifyingDataIsNotExecuted(t *testing.T) {
	// Data after halt may alias I-cache lines; execution must stop at halt.
	r := runSrc(t, "ldi r1, 1\nhalt\n.word 0xffffffff, 0xffffffff")
	if r.core.Faulted() {
		t.Fatal("data after halt must not fault the core")
	}
}
