package cpu

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled miniARM image.
type Program struct {
	// Base is the load address of Words[0].
	Base uint32
	// Words is the little-endian word image (code and data).
	Words []uint32
	// Entry is the reset program counter.
	Entry uint32
	// Symbols maps labels and .equ names to their values.
	Symbols map[string]uint32
}

// AsmError describes an assembly failure with its source line.
type AsmError struct {
	Line int
	Msg  string
}

func (e *AsmError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type asmItem struct {
	line    int
	addr    uint32
	inst    *instTemplate // nil for data words
	data    []uint32
	dataExp []string // unresolved .word expressions (parallel to data; "" = literal)
}

type instTemplate struct {
	op     Op
	rd, ra int
	rb     int
	imm    uint32
	immExp string // unresolved immediate expression, "" if imm is final
}

// Assemble translates miniARM assembly into a Program loaded at base.
// Syntax:
//
//	label:                 ; labels (own line or before an instruction)
//	.org ADDR              ; move the location counter (absolute address)
//	.word EXPR, EXPR...    ; literal data words
//	.space N               ; N zero bytes (word aligned)
//	.equ NAME EXPR         ; symbolic constant
//	add r1, r2, r3         ; instructions per isa.go, immediates may be
//	ldi r4, table+8        ; numbers, labels, or label±offset
//	ldr r5, [r4+4]
//
// Comments start with ';' or '//'. The entry point is base (or the label
// `start` if defined).
func Assemble(src string, base uint32) (*Program, error) {
	if base%4 != 0 {
		return nil, fmt.Errorf("asm: base %#x not word aligned", base)
	}
	syms := map[string]uint32{}
	var items []asmItem
	loc := base

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several, possibly followed by an instruction).
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t,[") {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !validIdent(name) {
				return nil, &AsmError{ln + 1, fmt.Sprintf("bad label %q", name)}
			}
			if _, dup := syms[name]; dup {
				return nil, &AsmError{ln + 1, fmt.Sprintf("duplicate symbol %q", name)}
			}
			syms[name] = loc
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		item, size, err := parseLine(line, ln+1, loc, syms)
		if err != nil {
			return nil, err
		}
		if item != nil {
			items = append(items, *item)
		}
		loc += size
	}

	// Second pass: resolve expressions and emit.
	end := base
	for _, it := range items {
		sz := uint32(len(it.data) * 4)
		if it.inst != nil {
			sz = InstBytes
		}
		if it.addr+sz > end {
			end = it.addr + sz
		}
	}
	words := make([]uint32, (end-base)/4)
	for _, it := range items {
		idx := (it.addr - base) / 4
		if it.inst != nil {
			t := it.inst
			imm := t.imm
			if t.immExp != "" {
				v, err := evalExpr(t.immExp, syms)
				if err != nil {
					return nil, &AsmError{it.line, err.Error()}
				}
				imm = v
			}
			w0, w1 := Inst{Op: t.op, Rd: t.rd, Ra: t.ra, Rb: t.rb, Imm: imm}.Encode()
			words[idx] = w0
			words[idx+1] = w1
			continue
		}
		for k, v := range it.data {
			if it.dataExp[k] != "" {
				ev, err := evalExpr(it.dataExp[k], syms)
				if err != nil {
					return nil, &AsmError{it.line, err.Error()}
				}
				v = ev
			}
			words[idx+uint32(k)] = v
		}
	}

	entry := base
	if v, ok := syms["start"]; ok {
		entry = v
	}
	return &Program{Base: base, Words: words, Entry: entry, Symbols: syms}, nil
}

func stripComment(s string) string {
	if i := strings.Index(s, ";"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return s
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseLine handles one directive or instruction, returning the emitted item
// (nil for .equ/.org) and the size it occupies.
func parseLine(line string, ln int, loc uint32, syms map[string]uint32) (*asmItem, uint32, error) {
	fields := strings.Fields(line)
	mnemonic := strings.ToLower(fields[0])
	rest := strings.TrimSpace(line[len(fields[0]):])

	switch mnemonic {
	case ".org":
		v, err := evalExpr(rest, syms)
		if err != nil {
			return nil, 0, &AsmError{ln, err.Error()}
		}
		if v < loc {
			return nil, 0, &AsmError{ln, fmt.Sprintf(".org %#x moves backwards from %#x", v, loc)}
		}
		if v%4 != 0 {
			return nil, 0, &AsmError{ln, ".org must be word aligned"}
		}
		return nil, v - loc, nil
	case ".align":
		v, err := evalExpr(rest, syms)
		if err != nil {
			return nil, 0, &AsmError{ln, err.Error()}
		}
		if v == 0 || v%4 != 0 {
			return nil, 0, &AsmError{ln, ".align must be a non-zero word multiple"}
		}
		pad := (v - loc%v) % v
		// The padding words stay zero, which decodes as NOP, so a
		// fall-through path across the alignment gap is executable.
		return nil, pad, nil
	case ".equ":
		parts := strings.Fields(rest)
		if len(parts) < 2 {
			return nil, 0, &AsmError{ln, ".equ needs NAME EXPR"}
		}
		if !validIdent(parts[0]) {
			return nil, 0, &AsmError{ln, fmt.Sprintf("bad .equ name %q", parts[0])}
		}
		v, err := evalExpr(strings.Join(parts[1:], " "), syms)
		if err != nil {
			return nil, 0, &AsmError{ln, err.Error()}
		}
		if _, dup := syms[parts[0]]; dup {
			return nil, 0, &AsmError{ln, fmt.Sprintf("duplicate symbol %q", parts[0])}
		}
		syms[parts[0]] = v
		return nil, 0, nil
	case ".word":
		var data []uint32
		var exps []string
		for _, f := range strings.Split(rest, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				return nil, 0, &AsmError{ln, "empty .word operand"}
			}
			if v, err := evalExpr(f, syms); err == nil {
				data = append(data, v)
				exps = append(exps, "")
			} else {
				data = append(data, 0)
				exps = append(exps, f) // resolve in pass 2 (forward refs)
			}
		}
		return &asmItem{line: ln, addr: loc, data: data, dataExp: exps}, uint32(len(data) * 4), nil
	case ".space":
		v, err := evalExpr(rest, syms)
		if err != nil {
			return nil, 0, &AsmError{ln, err.Error()}
		}
		if v%4 != 0 {
			return nil, 0, &AsmError{ln, ".space must be a word multiple"}
		}
		n := v / 4
		return &asmItem{line: ln, addr: loc, data: make([]uint32, n), dataExp: make([]string, n)}, v, nil
	}

	t, err := parseInst(mnemonic, rest, ln)
	if err != nil {
		return nil, 0, err
	}
	return &asmItem{line: ln, addr: loc, inst: t}, InstBytes, nil
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, opCount)
	for o := Op(0); o < opCount; o++ {
		m[o.String()] = o
	}
	return m
}()

func parseInst(mnemonic, rest string, ln int) (*instTemplate, error) {
	op, ok := opByName[mnemonic]
	if !ok {
		return nil, &AsmError{ln, fmt.Sprintf("unknown mnemonic %q", mnemonic)}
	}
	args := splitArgs(rest)
	t := &instTemplate{op: op}
	need := func(n int) error {
		if len(args) != n {
			return &AsmError{ln, fmt.Sprintf("%s needs %d operands, got %d", mnemonic, n, len(args))}
		}
		return nil
	}
	reg := func(s string) (int, error) {
		s = strings.ToLower(strings.TrimSpace(s))
		if !strings.HasPrefix(s, "r") {
			return 0, &AsmError{ln, fmt.Sprintf("expected register, got %q", s)}
		}
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n > 15 {
			return 0, &AsmError{ln, fmt.Sprintf("bad register %q", s)}
		}
		return n, nil
	}
	imm := func(s string) { t.immExp = strings.TrimSpace(s) }

	var err error
	switch op {
	case NOP, HALT:
		return t, need(0)
	case LDI:
		if err = need(2); err != nil {
			return nil, err
		}
		if t.rd, err = reg(args[0]); err != nil {
			return nil, err
		}
		imm(args[1])
	case MOV:
		if err = need(2); err != nil {
			return nil, err
		}
		if t.rd, err = reg(args[0]); err != nil {
			return nil, err
		}
		if t.ra, err = reg(args[1]); err != nil {
			return nil, err
		}
	case ADD, SUB, MUL, AND, OR, XOR, SHL, SHR, ROR:
		if err = need(3); err != nil {
			return nil, err
		}
		if t.rd, err = reg(args[0]); err != nil {
			return nil, err
		}
		if t.ra, err = reg(args[1]); err != nil {
			return nil, err
		}
		if t.rb, err = reg(args[2]); err != nil {
			return nil, err
		}
	case ADDI, SUBI, ANDI, ORI, XORI, SHLI, SHRI, RORI:
		if err = need(3); err != nil {
			return nil, err
		}
		if t.rd, err = reg(args[0]); err != nil {
			return nil, err
		}
		if t.ra, err = reg(args[1]); err != nil {
			return nil, err
		}
		imm(args[2])
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		if err = need(3); err != nil {
			return nil, err
		}
		if t.ra, err = reg(args[0]); err != nil {
			return nil, err
		}
		if t.rb, err = reg(args[1]); err != nil {
			return nil, err
		}
		imm(args[2])
	case JMP:
		if err = need(1); err != nil {
			return nil, err
		}
		imm(args[0])
	case JAL:
		if err = need(2); err != nil {
			return nil, err
		}
		if t.rd, err = reg(args[0]); err != nil {
			return nil, err
		}
		imm(args[1])
	case JR:
		if err = need(1); err != nil {
			return nil, err
		}
		if t.ra, err = reg(args[0]); err != nil {
			return nil, err
		}
	case LDR, STR:
		if err = need(2); err != nil {
			return nil, err
		}
		if t.rd, err = reg(args[0]); err != nil {
			return nil, err
		}
		base, off, perr := parseMemOperand(args[1], ln)
		if perr != nil {
			return nil, perr
		}
		if t.ra, err = reg(base); err != nil {
			return nil, err
		}
		imm(off)
	default:
		return nil, &AsmError{ln, fmt.Sprintf("unhandled opcode %v", op)}
	}
	return t, nil
}

// splitArgs splits on commas that are not inside brackets.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var args []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				args = append(args, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	args = append(args, strings.TrimSpace(s[start:]))
	return args
}

// parseMemOperand handles "[rN+EXPR]", "[rN-NUM]" and "[rN]".
func parseMemOperand(s string, ln int) (base, off string, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return "", "", &AsmError{ln, fmt.Sprintf("bad memory operand %q", s)}
	}
	inner := s[1 : len(s)-1]
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		off = strings.TrimSpace(inner[i:])
		if strings.HasPrefix(off, "+") {
			off = off[1:]
		}
		return strings.TrimSpace(inner[:i]), off, nil
	}
	return strings.TrimSpace(inner), "0", nil
}

// evalExpr evaluates NUM, SYM, SYM+NUM, SYM-NUM, NUM*NUM (left to right, no
// precedence — sufficient for assembler operands).
func evalExpr(s string, syms map[string]uint32) (uint32, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty expression")
	}
	// Tokenise into terms and operators.
	var total uint32
	op := byte('+')
	for len(s) > 0 {
		j := 0
		for j < len(s) && s[j] != '+' && s[j] != '-' && s[j] != '*' {
			j++
		}
		// Allow a leading minus on the first term.
		if j == 0 && s[0] == '-' && total == 0 && op == '+' {
			j = 1
			for j < len(s) && s[j] != '+' && s[j] != '-' && s[j] != '*' {
				j++
			}
		}
		term := strings.TrimSpace(s[:j])
		v, err := evalTerm(term, syms)
		if err != nil {
			return 0, err
		}
		switch op {
		case '+':
			total += v
		case '-':
			total -= v
		case '*':
			total *= v
		}
		if j >= len(s) {
			break
		}
		op = s[j]
		s = s[j+1:]
	}
	return total, nil
}

func evalTerm(term string, syms map[string]uint32) (uint32, error) {
	if term == "" {
		return 0, fmt.Errorf("empty term")
	}
	if v, ok := syms[term]; ok {
		return v, nil
	}
	if n, err := strconv.ParseInt(term, 0, 64); err == nil {
		return uint32(n), nil
	}
	return 0, fmt.Errorf("undefined symbol or bad number %q", term)
}
