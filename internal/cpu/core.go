package cpu

import (
	"fmt"

	"noctg/internal/cache"
	"noctg/internal/sim"
)

type coreState int

const (
	sReset coreState = iota
	sFetch0
	sFetch1
	sExec
	sMem
	sHalted
)

// Core is one miniARM processor. It implements sim.Device and drives its
// MemUnit (and through it, its single OCP master port) itself, so platform
// code only registers the core.
//
// Reset state: all registers zero except r15, which holds the core ID (the
// benchmarks use it for work partitioning, standing in for MPARM's
// per-processor identification).
type Core struct {
	ID int

	mu    *cache.MemUnit
	regs  [16]uint32
	pc    uint32
	state coreState

	w0, w1   uint32
	inst     Inst
	execLeft int

	halted    bool
	faulted   bool
	haltCycle uint64

	// InstRet counts retired instructions.
	InstRet uint64
	// StallCycles counts cycles spent waiting on memory.
	StallCycles uint64
}

// NewCore builds a core with reset PC entry.
func NewCore(id int, mu *cache.MemUnit, entry uint32) *Core {
	if mu == nil {
		panic("cpu: NewCore requires a MemUnit")
	}
	c := &Core{ID: id, mu: mu, pc: entry}
	c.regs[15] = uint32(id)
	return c
}

// Name implements sim.Named.
func (c *Core) Name() string { return fmt.Sprintf("core%d", c.ID) }

// Halted reports whether the core executed HALT or faulted.
func (c *Core) Halted() bool { return c.halted }

// Faulted reports whether the core stopped on a bus fault or decode error.
func (c *Core) Faulted() bool { return c.faulted }

// HaltCycle returns the cycle HALT retired (valid once Halted).
func (c *Core) HaltCycle() uint64 { return c.haltCycle }

// Reg returns register n (test/diagnostic hook).
func (c *Core) Reg(n int) uint32 { return c.regs[n] }

// PC returns the current program counter.
func (c *Core) PC() uint32 { return c.pc }

// Tick implements sim.Device: one processor clock.
func (c *Core) Tick(cycle uint64) {
	if c.halted {
		return
	}
	c.mu.Tick(cycle)
	if c.mu.Faulted() {
		c.fault(cycle)
		return
	}
	switch c.state {
	case sReset:
		c.mu.Begin(cache.OpFetch, c.pc, 0)
		c.state = sFetch0
	case sFetch0:
		v, ok := c.mu.TakeResult()
		if !ok {
			c.StallCycles++
			return
		}
		c.w0 = v
		c.mu.Begin(cache.OpFetch, c.pc+4, 0)
		c.state = sFetch1
	case sFetch1:
		v, ok := c.mu.TakeResult()
		if !ok {
			c.StallCycles++
			return
		}
		c.w1 = v
		inst, ok := Decode(c.w0, c.w1)
		if !ok {
			c.fault(cycle)
			return
		}
		c.inst = inst
		c.execLeft = ExecCycles(inst.Op)
		c.state = sExec
	case sExec:
		c.execLeft--
		if c.execLeft > 0 {
			return
		}
		c.execute(cycle)
	case sMem:
		v, ok := c.mu.TakeResult()
		if !ok {
			c.StallCycles++
			return
		}
		if c.inst.Op == LDR {
			c.regs[c.inst.Rd] = v
		}
		c.retire(c.pc + InstBytes)
	}
}

// execute applies the decoded instruction on its final execute cycle.
func (c *Core) execute(cycle uint64) {
	i := c.inst
	next := c.pc + InstBytes
	r := &c.regs
	switch i.Op {
	case NOP:
	case HALT:
		c.halted = true
		c.haltCycle = cycle
		c.InstRet++
		return
	case LDI:
		r[i.Rd] = i.Imm
	case MOV:
		r[i.Rd] = r[i.Ra]
	case ADD:
		r[i.Rd] = r[i.Ra] + r[i.Rb]
	case ADDI:
		r[i.Rd] = r[i.Ra] + i.Imm
	case SUB:
		r[i.Rd] = r[i.Ra] - r[i.Rb]
	case SUBI:
		r[i.Rd] = r[i.Ra] - i.Imm
	case MUL:
		r[i.Rd] = r[i.Ra] * r[i.Rb]
	case AND:
		r[i.Rd] = r[i.Ra] & r[i.Rb]
	case ANDI:
		r[i.Rd] = r[i.Ra] & i.Imm
	case OR:
		r[i.Rd] = r[i.Ra] | r[i.Rb]
	case ORI:
		r[i.Rd] = r[i.Ra] | i.Imm
	case XOR:
		r[i.Rd] = r[i.Ra] ^ r[i.Rb]
	case XORI:
		r[i.Rd] = r[i.Ra] ^ i.Imm
	case SHL:
		r[i.Rd] = r[i.Ra] << (r[i.Rb] & 31)
	case SHLI:
		r[i.Rd] = r[i.Ra] << (i.Imm & 31)
	case SHR:
		r[i.Rd] = r[i.Ra] >> (r[i.Rb] & 31)
	case SHRI:
		r[i.Rd] = r[i.Ra] >> (i.Imm & 31)
	case ROR:
		sh := r[i.Rb] & 31
		r[i.Rd] = r[i.Ra]>>sh | r[i.Ra]<<((32-sh)&31)
	case RORI:
		sh := i.Imm & 31
		r[i.Rd] = r[i.Ra]>>sh | r[i.Ra]<<((32-sh)&31)
	case BEQ:
		if r[i.Ra] == r[i.Rb] {
			next = i.Imm
		}
	case BNE:
		if r[i.Ra] != r[i.Rb] {
			next = i.Imm
		}
	case BLT:
		if int32(r[i.Ra]) < int32(r[i.Rb]) {
			next = i.Imm
		}
	case BGE:
		if int32(r[i.Ra]) >= int32(r[i.Rb]) {
			next = i.Imm
		}
	case BLTU:
		if r[i.Ra] < r[i.Rb] {
			next = i.Imm
		}
	case BGEU:
		if r[i.Ra] >= r[i.Rb] {
			next = i.Imm
		}
	case JMP:
		next = i.Imm
	case JAL:
		r[i.Rd] = c.pc + InstBytes
		next = i.Imm
	case JR:
		next = r[i.Ra]
	case LDR:
		c.mu.Begin(cache.OpLoad, r[i.Ra]+i.Imm, 0)
		c.state = sMem
		return
	case STR:
		c.mu.Begin(cache.OpStore, r[i.Ra]+i.Imm, r[i.Rd])
		c.state = sMem
		return
	}
	c.retire(next)
}

// retire commits the instruction and starts the next fetch immediately.
func (c *Core) retire(next uint32) {
	c.InstRet++
	c.pc = next
	c.mu.Begin(cache.OpFetch, c.pc, 0)
	c.state = sFetch0
}

func (c *Core) fault(cycle uint64) {
	c.halted = true
	c.faulted = true
	c.haltCycle = cycle
}

var _ sim.Device = (*Core)(nil)
