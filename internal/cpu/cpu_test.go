package cpu

import (
	"strings"
	"testing"
	"testing/quick"

	"noctg/internal/amba"
	"noctg/internal/cache"
	"noctg/internal/mem"
	"noctg/internal/ocp"
	"noctg/internal/sim"
)

const (
	privBase   = 0x0001_0000
	sharedBase = 0x0800_0000
	semBase    = 0x0900_0000
)

type testRig struct {
	e      *sim.Engine
	core   *Core
	priv   *mem.RAM
	shared *mem.RAM
	sem    *mem.SemBank
}

func buildRig(t *testing.T, src string) *testRig {
	t.Helper()
	prog, err := Assemble(src, privBase)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	e := sim.NewEngine(sim.Clock{})
	bus := amba.New(amba.Config{}, e.Cycle)
	priv := mem.NewRAM("priv", privBase, 0x10000, 1)
	shared := mem.NewRAM("shared", sharedBase, 0x10000, 1)
	sem := mem.NewSemBank("sem", semBase, 8, 1)
	for _, s := range []struct {
		sl  ocp.Slave
		rng ocp.AddrRange
	}{{priv, priv.Range()}, {shared, shared.Range()}, {sem, sem.Range()}} {
		if err := bus.MapSlave(s.sl, s.rng); err != nil {
			t.Fatal(err)
		}
	}
	priv.LoadWords(prog.Base, prog.Words)
	mu := cache.NewMemUnit(bus.NewMasterPort(),
		cache.New(cache.Config{Lines: 64, WordsPerLine: 4}),
		cache.New(cache.Config{Lines: 64, WordsPerLine: 4}),
		[]ocp.AddrRange{priv.Range()})
	core := NewCore(0, mu, prog.Entry)
	e.Add(core)
	e.Add(bus)
	return &testRig{e: e, core: core, priv: priv, shared: shared, sem: sem}
}

func (r *testRig) run(t *testing.T, max uint64) {
	t.Helper()
	if _, err := r.e.Run(max, r.core.Halted); err != nil {
		t.Fatalf("program did not halt: %v (pc=%#x)", err, r.core.PC())
	}
	if r.core.Faulted() {
		t.Fatalf("program faulted at pc=%#x", r.core.PC())
	}
}

func runSrc(t *testing.T, src string) *testRig {
	t.Helper()
	r := buildRig(t, src)
	r.run(t, 1_000_000)
	return r
}

func TestALUOperations(t *testing.T) {
	cases := []struct {
		name string
		src  string
		reg  int
		want uint32
	}{
		{"ldi", "ldi r1, 0x12345678\nhalt", 1, 0x12345678},
		{"mov", "ldi r1, 7\nmov r2, r1\nhalt", 2, 7},
		{"add", "ldi r1, 3\nldi r2, 4\nadd r3, r1, r2\nhalt", 3, 7},
		{"addi", "ldi r1, 3\naddi r3, r1, 10\nhalt", 3, 13},
		{"sub", "ldi r1, 3\nldi r2, 4\nsub r3, r1, r2\nhalt", 3, 0xffffffff},
		{"subi", "ldi r1, 10\nsubi r3, r1, 4\nhalt", 3, 6},
		{"mul", "ldi r1, 6\nldi r2, 7\nmul r3, r1, r2\nhalt", 3, 42},
		{"and", "ldi r1, 0xff0\nldi r2, 0x0ff\nand r3, r1, r2\nhalt", 3, 0x0f0},
		{"andi", "ldi r1, 0xff0\nandi r3, r1, 0x0ff\nhalt", 3, 0x0f0},
		{"or", "ldi r1, 0xf00\nldi r2, 0x00f\nor r3, r1, r2\nhalt", 3, 0xf0f},
		{"ori", "ldi r1, 0xf00\nori r3, r1, 0x0f0\nhalt", 3, 0xff0},
		{"xor", "ldi r1, 0xff\nldi r2, 0x0f\nxor r3, r1, r2\nhalt", 3, 0xf0},
		{"xori", "ldi r1, 0xff\nxori r3, r1, 0xff\nhalt", 3, 0},
		{"shl", "ldi r1, 1\nldi r2, 4\nshl r3, r1, r2\nhalt", 3, 16},
		{"shli", "ldi r1, 3\nshli r3, r1, 2\nhalt", 3, 12},
		{"shr", "ldi r1, 0x80000000\nldi r2, 31\nshr r3, r1, r2\nhalt", 3, 1},
		{"shri", "ldi r1, 16\nshri r3, r1, 2\nhalt", 3, 4},
		{"ror", "ldi r1, 1\nldi r2, 1\nror r3, r1, r2\nhalt", 3, 0x80000000},
		{"rori", "ldi r1, 0x12345678\nrori r3, r1, 8\nhalt", 3, 0x78123456},
		{"rori zero", "ldi r1, 0xabcd\nrori r3, r1, 0\nhalt", 3, 0xabcd},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := runSrc(t, c.src)
			if got := r.core.Reg(c.reg); got != c.want {
				t.Fatalf("r%d = %#x, want %#x", c.reg, got, c.want)
			}
		})
	}
}

func TestBranches(t *testing.T) {
	cases := []struct {
		name string
		src  string // sets r3 = 1 on the branch-taken path
	}{
		{"beq taken", "ldi r1, 5\nldi r2, 5\nbeq r1, r2, yes\nldi r3, 0\nhalt\nyes: ldi r3, 1\nhalt"},
		{"bne taken", "ldi r1, 5\nldi r2, 6\nbne r1, r2, yes\nldi r3, 0\nhalt\nyes: ldi r3, 1\nhalt"},
		{"blt signed", "ldi r1, -3\nldi r2, 2\nblt r1, r2, yes\nldi r3, 0\nhalt\nyes: ldi r3, 1\nhalt"},
		{"bge signed", "ldi r1, 2\nldi r2, -3\nbge r1, r2, yes\nldi r3, 0\nhalt\nyes: ldi r3, 1\nhalt"},
		{"bltu unsigned", "ldi r1, 2\nldi r2, -3\nbltu r1, r2, yes\nldi r3, 0\nhalt\nyes: ldi r3, 1\nhalt"},
		{"bgeu unsigned", "ldi r1, -3\nldi r2, 2\nbgeu r1, r2, yes\nldi r3, 0\nhalt\nyes: ldi r3, 1\nhalt"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := runSrc(t, c.src)
			if got := r.core.Reg(3); got != 1 {
				t.Fatalf("branch not taken: r3 = %d", got)
			}
		})
	}
	// Not-taken path.
	r := runSrc(t, "ldi r1, 1\nldi r2, 2\nbeq r1, r2, yes\nldi r3, 7\nhalt\nyes: ldi r3, 1\nhalt")
	if r.core.Reg(3) != 7 {
		t.Fatal("beq wrongly taken")
	}
}

func TestLoopCountdown(t *testing.T) {
	r := runSrc(t, `
		ldi r1, 10
		ldi r2, 0
	loop:
		addi r2, r2, 3
		subi r1, r1, 1
		ldi r4, 0
		bne r1, r4, loop
		halt`)
	if r.core.Reg(2) != 30 {
		t.Fatalf("loop result = %d, want 30", r.core.Reg(2))
	}
	if r.core.InstRet != 2+4*10+1 {
		t.Fatalf("retired %d instructions", r.core.InstRet)
	}
}

func TestJalJrSubroutine(t *testing.T) {
	r := runSrc(t, `
		ldi r1, 5
		jal r14, double
		jal r14, double
		halt
	double:
		add r1, r1, r1
		jr r14`)
	if r.core.Reg(1) != 20 {
		t.Fatalf("r1 = %d, want 20", r.core.Reg(1))
	}
}

func TestLoadStorePrivate(t *testing.T) {
	r := runSrc(t, `
		ldi r1, data
		ldr r2, [r1+0]
		ldr r3, [r1+4]
		add r4, r2, r3
		str r4, [r1+8]
		halt
	data:
		.word 11, 31, 0`)
	if r.core.Reg(4) != 42 {
		t.Fatalf("r4 = %d", r.core.Reg(4))
	}
	addr := r.core.ID // silence unused warnings pattern
	_ = addr
	sym := uint32(0)
	// data label address: find via symbol table by reassembling.
	prog, _ := Assemble("ldi r1, data\nldr r2, [r1+0]\nldr r3, [r1+4]\nadd r4, r2, r3\nstr r4, [r1+8]\nhalt\ndata:\n.word 11, 31, 0", privBase)
	sym = prog.Symbols["data"]
	// Write-through must have landed in RAM.
	if got := r.priv.PeekWord(sym + 8); got != 42 {
		t.Fatalf("mem[data+8] = %d, want 42", got)
	}
}

func TestSharedMemoryUncached(t *testing.T) {
	r := runSrc(t, `
		ldi r1, 0x08000000
		ldi r2, 1234
		str r2, [r1+0x10]
		ldr r3, [r1+0x10]
		halt`)
	if r.core.Reg(3) != 1234 {
		t.Fatalf("r3 = %d", r.core.Reg(3))
	}
	if r.shared.PeekWord(sharedBase+0x10) != 1234 {
		t.Fatal("store did not reach shared RAM")
	}
}

func TestSemaphoreAcquireRelease(t *testing.T) {
	r := runSrc(t, `
		ldi r1, 0x09000000
		ldr r2, [r1+0]       ; acquire: reads 1
		ldr r3, [r1+0]       ; poll while held: reads 0
		ldi r4, 1
		str r4, [r1+0]       ; release
		ldr r5, [r1+0]       ; acquire again: reads 1
		halt`)
	if r.core.Reg(2) != 1 || r.core.Reg(3) != 0 || r.core.Reg(5) != 1 {
		t.Fatalf("semaphore sequence r2=%d r3=%d r5=%d", r.core.Reg(2), r.core.Reg(3), r.core.Reg(5))
	}
}

func TestCoreIDInR15(t *testing.T) {
	prog, err := Assemble("mov r1, r15\nhalt", privBase)
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
	r := runSrc(t, "mov r1, r15\nhalt")
	if r.core.Reg(1) != 0 {
		t.Fatal("core 0 should read ID 0")
	}
	// Build a rig manually for core ID 3.
	e := sim.NewEngine(sim.Clock{})
	bus := amba.New(amba.Config{}, e.Cycle)
	priv := mem.NewRAM("priv", privBase, 0x1000, 1)
	if err := bus.MapSlave(priv, priv.Range()); err != nil {
		t.Fatal(err)
	}
	priv.LoadWords(prog.Base, prog.Words)
	mu := cache.NewMemUnit(bus.NewMasterPort(), cache.New(cache.Config{}), cache.New(cache.Config{}), []ocp.AddrRange{priv.Range()})
	core := NewCore(3, mu, prog.Entry)
	e.Add(core)
	e.Add(bus)
	if _, err := e.Run(10_000, core.Halted); err != nil {
		t.Fatal(err)
	}
	if core.Reg(1) != 3 {
		t.Fatalf("core 3 read ID %d", core.Reg(1))
	}
}

func TestHaltRecordsCycleAndStops(t *testing.T) {
	r := runSrc(t, "halt")
	hc := r.core.HaltCycle()
	if hc == 0 {
		t.Fatal("halt cycle not recorded")
	}
	c := r.e.Cycle()
	r.e.RunFor(10)
	if r.core.HaltCycle() != hc || r.e.Cycle() != c+10 {
		t.Fatal("halted core should stay halted")
	}
	if r.core.InstRet != 1 {
		t.Fatalf("InstRet = %d", r.core.InstRet)
	}
}

func TestFaultOnUnmappedLoad(t *testing.T) {
	rig := buildRig(t, "ldi r1, 0x40000000\nldr r2, [r1+0]\nhalt")
	if _, err := rig.e.Run(100_000, rig.core.Halted); err != nil {
		t.Fatal(err)
	}
	if !rig.core.Faulted() {
		t.Fatal("unmapped load should fault the core")
	}
}

func TestFaultOnGarbageInstruction(t *testing.T) {
	rig := buildRig(t, ".word 0xffffffff, 0\nhalt")
	if _, err := rig.e.Run(100_000, rig.core.Halted); err != nil {
		t.Fatal(err)
	}
	if !rig.core.Faulted() {
		t.Fatal("invalid opcode should fault")
	}
}

func TestDeterminism(t *testing.T) {
	src := `
		ldi r1, 20
		ldi r2, 0
	loop:
		addi r2, r2, 7
		ldr r3, [r5+data]
		add r2, r2, r3
		subi r1, r1, 1
		ldi r4, 0
		bne r1, r4, loop
		halt
	data: .word 5`
	r1 := runSrc(t, src)
	r2 := runSrc(t, src)
	if r1.core.HaltCycle() != r2.core.HaltCycle() {
		t.Fatalf("non-deterministic: %d vs %d", r1.core.HaltCycle(), r2.core.HaltCycle())
	}
	if r1.core.Reg(2) != r2.core.Reg(2) {
		t.Fatal("register state diverged")
	}
}

func TestCacheRefillTrafficGenerated(t *testing.T) {
	r := runSrc(t, `
		ldi r1, 100
	loop:
		subi r1, r1, 1
		ldi r4, 0
		bne r1, r4, loop
		halt`)
	ic := r.core.mu.ICache()
	if ic.Refills == 0 {
		t.Fatal("instruction fetch should cause refills")
	}
	if ic.Hits == 0 || ic.Hits < ic.Misses*10 {
		t.Fatalf("tight loop should be cache resident: hits=%d misses=%d", ic.Hits, ic.Misses)
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(op uint8, rd, ra, rb uint8, imm uint32) bool {
		in := Inst{
			Op: Op(op % uint8(opCount)),
			Rd: int(rd % 16), Ra: int(ra % 16), Rb: int(rb % 16),
			Imm: imm,
		}
		w0, w1 := in.Encode()
		out, ok := Decode(w0, w1)
		return ok && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	if _, ok := Decode(uint32(opCount)<<24, 0); ok {
		t.Fatal("decode accepted invalid opcode")
	}
	if _, ok := Decode(uint32(ADD)<<24|16<<16, 0); ok {
		t.Fatal("decode accepted register 16")
	}
}

func TestAssemblerDirectives(t *testing.T) {
	prog, err := Assemble(`
		.equ magic 0x42
		ldi r1, magic
		halt
	tab:
		.word 1, 2, magic+1
		.space 8
	after:
		.word after`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Symbols["magic"] != 0x42 {
		t.Fatal(".equ value")
	}
	tab := prog.Symbols["tab"]
	idx := (tab - 0x1000) / 4
	if prog.Words[idx] != 1 || prog.Words[idx+1] != 2 || prog.Words[idx+2] != 0x43 {
		t.Fatalf("table contents %v", prog.Words[idx:idx+3])
	}
	after := prog.Symbols["after"]
	if after != tab+12+8 {
		t.Fatalf("after = %#x", after)
	}
	if prog.Words[(after-0x1000)/4] != after {
		t.Fatal("self-referential .word")
	}
}

func TestAssemblerOrgAndEntry(t *testing.T) {
	prog, err := Assemble(`
		.org 0x1100
	start:
		halt`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Entry != 0x1100 {
		t.Fatalf("entry = %#x, want 0x1100", prog.Entry)
	}
	if len(prog.Words) != (0x108 / 4) {
		t.Fatalf("image size %d words", len(prog.Words))
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown mnemonic", "frobnicate r1"},
		{"bad register", "ldi r16, 1"},
		{"undefined symbol", "ldi r1, nothere\nhalt"},
		{"duplicate label", "a:\nnop\na:\nnop"},
		{"wrong operand count", "add r1, r2"},
		{"bad mem operand", "ldr r1, r2"},
		{"org backwards", "nop\n.org 0"},
		{"bad space", ".space 3"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Assemble(c.src, 0x1000); err == nil {
				t.Fatalf("expected error for %q", c.src)
			}
		})
	}
}

func TestAssemblerForwardReferences(t *testing.T) {
	prog, err := Assemble(`
		jmp fwd
		nop
	fwd:
		ldi r1, later
		halt
	later:
		.word 9`, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	inst, ok := Decode(prog.Words[0], prog.Words[1])
	if !ok || inst.Op != JMP || inst.Imm != prog.Symbols["fwd"] {
		t.Fatalf("jmp imm = %#x, want %#x", inst.Imm, prog.Symbols["fwd"])
	}
}

func TestDisassemblyStrings(t *testing.T) {
	// Every opcode must render something assembler-shaped.
	for o := Op(0); o < opCount; o++ {
		s := Inst{Op: o, Rd: 1, Ra: 2, Rb: 3, Imm: 4}.String()
		if s == "" || strings.Contains(s, "?") {
			t.Fatalf("op %v renders %q", o, s)
		}
	}
}

func TestMemOperandForms(t *testing.T) {
	prog, err := Assemble(`
		ldi r2, 0x10000
		ldr r1, [r2]
		ldr r1, [r2+4]
		ldr r1, [r2 + 8]
		halt`, privBase)
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
}
