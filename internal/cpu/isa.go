// Package cpu implements miniARM, the in-order multi-cycle 32-bit RISC core
// that stands in for the paper's ARMv7 IP cores, together with its assembler
// and disassembler. The core fetches through an I-cache and accesses data
// through a D-cache / uncached OCP path (see internal/cache), so it produces
// exactly the traffic classes the paper's TG must replay: burst cache
// refills, blocking single reads, posted writes, and semaphore polling.
//
// Instructions are 64 bits: word0 = op<<24 | rd<<16 | ra<<8 | rb, word1 =
// a 32-bit immediate. The generous encoding keeps the assembler and the
// benchmarks readable; the cost (two-word fetches) only adds I-cache
// pressure, which is realistic traffic anyway.
package cpu

import "fmt"

// Op enumerates miniARM opcodes.
type Op uint8

const (
	NOP Op = iota
	HALT
	LDI  // rd = imm
	MOV  // rd = ra
	ADD  // rd = ra + rb
	ADDI // rd = ra + imm
	SUB  // rd = ra - rb
	SUBI // rd = ra - imm
	MUL  // rd = ra * rb (3-cycle)
	AND  // rd = ra & rb
	ANDI // rd = ra & imm
	OR   // rd = ra | rb
	ORI  // rd = ra | imm
	XOR  // rd = ra ^ rb
	XORI // rd = ra ^ imm
	SHL  // rd = ra << (rb & 31)
	SHLI // rd = ra << (imm & 31)
	SHR  // rd = ra >> (rb & 31), logical
	SHRI // rd = ra >> (imm & 31), logical
	ROR  // rd = ra rotated right by rb & 31
	RORI // rd = ra rotated right by imm & 31
	BEQ  // if ra == rb: pc = imm
	BNE  // if ra != rb: pc = imm
	BLT  // if int32(ra) < int32(rb): pc = imm
	BGE  // if int32(ra) >= int32(rb): pc = imm
	BLTU // if ra < rb: pc = imm
	BGEU // if ra >= rb: pc = imm
	JMP  // pc = imm
	JAL  // rd = pc + 8; pc = imm
	JR   // pc = ra
	LDR  // rd = mem[ra + imm]
	STR  // mem[ra + imm] = rd
	opCount
)

var opNames = [opCount]string{
	"nop", "halt", "ldi", "mov", "add", "addi", "sub", "subi", "mul",
	"and", "andi", "or", "ori", "xor", "xori", "shl", "shli", "shr", "shri",
	"ror", "rori", "beq", "bne", "blt", "bge", "bltu", "bgeu",
	"jmp", "jal", "jr", "ldr", "str",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < opCount }

// IsBranch reports whether o is a conditional branch.
func (o Op) IsBranch() bool { return o >= BEQ && o <= BGEU }

// execCycles is the execute-stage latency per opcode (fetch and memory
// stages add their own cycles).
var execCycles = map[Op]int{
	MUL: 3,
	BEQ: 2, BNE: 2, BLT: 2, BGE: 2, BLTU: 2, BGEU: 2,
	JMP: 2, JAL: 2, JR: 2,
}

// ExecCycles returns the execute-stage latency of op (default 1).
func ExecCycles(op Op) int {
	if c, ok := execCycles[op]; ok {
		return c
	}
	return 1
}

// Inst is a decoded instruction.
type Inst struct {
	Op         Op
	Rd, Ra, Rb int
	Imm        uint32
}

// InstBytes is the size of one encoded instruction.
const InstBytes = 8

// Encode packs the instruction into its two words.
func (i Inst) Encode() (w0, w1 uint32) {
	return uint32(i.Op)<<24 | uint32(i.Rd&0xff)<<16 | uint32(i.Ra&0xff)<<8 | uint32(i.Rb&0xff), i.Imm
}

// Decode unpacks an instruction; it reports whether the opcode is valid.
func Decode(w0, w1 uint32) (Inst, bool) {
	i := Inst{
		Op:  Op(w0 >> 24),
		Rd:  int(w0 >> 16 & 0xff),
		Ra:  int(w0 >> 8 & 0xff),
		Rb:  int(w0 & 0xff),
		Imm: w1,
	}
	if !i.Op.Valid() || i.Rd > 15 || i.Ra > 15 || i.Rb > 15 {
		return i, false
	}
	return i, true
}

// String renders the instruction in assembler syntax.
func (i Inst) String() string {
	switch i.Op {
	case NOP, HALT:
		return i.Op.String()
	case LDI:
		return fmt.Sprintf("ldi r%d, %#x", i.Rd, i.Imm)
	case MOV:
		return fmt.Sprintf("mov r%d, r%d", i.Rd, i.Ra)
	case ADD, SUB, MUL, AND, OR, XOR, SHL, SHR, ROR:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Ra, i.Rb)
	case ADDI, SUBI, ANDI, ORI, XORI, SHLI, SHRI, RORI:
		return fmt.Sprintf("%s r%d, r%d, %#x", i.Op, i.Rd, i.Ra, i.Imm)
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return fmt.Sprintf("%s r%d, r%d, %#x", i.Op, i.Ra, i.Rb, i.Imm)
	case JMP:
		return fmt.Sprintf("jmp %#x", i.Imm)
	case JAL:
		return fmt.Sprintf("jal r%d, %#x", i.Rd, i.Imm)
	case JR:
		return fmt.Sprintf("jr r%d", i.Ra)
	case LDR:
		return fmt.Sprintf("ldr r%d, [r%d+%#x]", i.Rd, i.Ra, i.Imm)
	case STR:
		return fmt.Sprintf("str r%d, [r%d+%#x]", i.Rd, i.Ra, i.Imm)
	}
	return fmt.Sprintf("%s ?", i.Op)
}
