// Package drain arms SIGINT/SIGTERM graceful-drain handling for the
// CLIs: the first signal flips a flag the sweep runners poll before
// starting each point or experiment task — in-flight work finishes, the
// journal is flushed, and the process exits nonzero with a resume hint —
// while a second signal falls back to the default handler and kills the
// process outright.
package drain

import (
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
)

// Arm installs the signal handler and returns the poll function to wire
// into sweep.Runner.Interrupted / exp.Options.Interrupted. name prefixes
// the stderr notice ("tgsweep", "tgrepro").
func Arm(name string) func() bool {
	var interrupted atomic.Bool
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		interrupted.Store(true)
		fmt.Fprintf(os.Stderr, "%s: %v — draining (in-flight work finishes; interrupt again to kill)\n", name, sig)
		// Restore default handling so a second signal terminates.
		signal.Stop(ch)
	}()
	return interrupted.Load
}
