package exp

import (
	"fmt"
	"math"

	"noctg/internal/amba"
	"noctg/internal/core"
	"noctg/internal/ocp"
	"noctg/internal/platform"
	"noctg/internal/prog"
)

// GeneratorKind names the traffic-generation models compared in the
// Section 3 fidelity ablation.
type GeneratorKind int

const (
	// Reactive is the paper's TG (poll loops collapsed).
	Reactive GeneratorKind = iota
	// Timeshift ties commands to previous responses but replays the
	// recorded polls verbatim.
	Timeshift
	// Cloning replays absolute timestamps.
	Cloning
)

func (k GeneratorKind) String() string {
	switch k {
	case Reactive:
		return "reactive"
	case Timeshift:
		return "timeshift"
	case Cloning:
		return "cloning"
	}
	return fmt.Sprintf("GeneratorKind(%d)", int(k))
}

// FidelityRow reports how well one generator model, built from traces
// collected on the *source* interconnect, predicts the application's
// makespan on a *different* target interconnect. Ground truth is the real
// ARM platform on the target.
type FidelityRow struct {
	Kind        GeneratorKind
	Makespan    uint64
	GroundTruth uint64
	ErrorPct    float64
	// Completed is false when the generator could not finish (e.g. a
	// cloning replay deadlocking against a semaphore).
	Completed bool
}

// AblationGenerators traces spec on the source fabric, then replays it on
// the target fabric with each generator model, comparing against the ARM
// ground truth on the target. It quantifies the paper's claim that
// reactivity is required once the interconnect changes.
func AblationGenerators(spec *prog.Spec, source, target Options) ([]*FidelityRow, error) {
	// Ground truth: the real cores on the target interconnect.
	truth, err := RunReference(spec, target, false)
	if err != nil {
		return nil, fmt.Errorf("exp: ablation ground truth: %w", err)
	}
	// Traces from the source interconnect.
	ref, err := RunReference(spec, source, true)
	if err != nil {
		return nil, fmt.Errorf("exp: ablation reference: %w", err)
	}

	pollRanges := PollRangesFor(spec)
	rows := make([]*FidelityRow, 0, 3)
	addRow := func(kind GeneratorKind, makespan uint64, completed bool) {
		row := &FidelityRow{Kind: kind, Makespan: makespan, GroundTruth: truth.Makespan, Completed: completed}
		if completed {
			row.ErrorPct = 100 * math.Abs(float64(makespan)-float64(truth.Makespan)) / float64(truth.Makespan)
		}
		rows = append(rows, row)
	}

	// Reactive and timeshift share the translation pipeline.
	for _, kind := range []GeneratorKind{Reactive, Timeshift} {
		cfg := core.DefaultTranslateConfig(pollRanges)
		cfg.RecognizePolls = kind == Reactive
		progs, _, _, err := TranslateAll(spec, ref.Traces, cfg)
		if err != nil {
			return nil, err
		}
		res, err := RunTG(spec, progs, target)
		if err != nil {
			// A non-reactive generator may deadlock on the new fabric —
			// that is a result, not a harness failure.
			addRow(kind, 0, false)
			continue
		}
		addRow(kind, res.Makespan, true)
	}

	// Cloning replays raw events.
	events := make([][]ocp.Event, len(ref.Traces))
	for i, tr := range ref.Traces {
		events[i] = tr.Events
	}
	cfg := target.Platform
	cfg.Cores = spec.Cores
	sys, err := platform.BuildClone(cfg, events)
	if err != nil {
		return nil, err
	}
	makespan, err := sys.Run(spec.MaxCycles)
	if err != nil {
		addRow(Cloning, 0, false)
	} else {
		addRow(Cloning, makespan, true)
	}
	return rows, nil
}

// ArbitrationRow is one arbitration-policy ablation entry.
type ArbitrationRow struct {
	Policy   string
	Makespan uint64
	MaxWait  uint64 // worst per-master arbitration wait (starvation metric)
}

// AblationArbitration compares bus arbitration policies on a contended
// benchmark (a design choice DESIGN.md calls out: MPARM's AHB arbiter).
func AblationArbitration(spec *prog.Spec, opt Options, policies []amba.Policy) ([]*ArbitrationRow, error) {
	var rows []*ArbitrationRow
	for _, p := range policies {
		o := opt
		o.Platform.Bus.Arbitration = p
		ref, err := RunReference(spec, o, false)
		if err != nil {
			return nil, err
		}
		var maxWait uint64
		for _, w := range ref.Sys.Bus.WaitCycles() {
			if w > maxWait {
				maxWait = w
			}
		}
		rows = append(rows, &ArbitrationRow{
			Policy:   p.String(),
			Makespan: ref.Makespan,
			MaxWait:  maxWait,
		})
	}
	return rows, nil
}
