package exp

import (
	"fmt"
	"strings"
	"time"

	"noctg/internal/core"
	"noctg/internal/platform"
	"noctg/internal/prog"
)

// CrossCheckResult is the Section 6 validation experiment: the same
// application traced on two different interconnects must translate to
// byte-identical TG programs ("a check across .tgp programs showed no
// difference at all").
type CrossCheckResult struct {
	Bench      string
	Cores      int
	MakespanA  uint64 // AMBA reference cycles
	MakespanX  uint64 // ×pipes reference cycles
	Equal      bool
	FirstDiff  string // human-readable location of the first difference
	ProgramLen int    // instructions per program set (sanity metric)
}

// CrossCheck runs spec on AMBA and on the ×pipes NoC, translates both trace
// sets, and compares the canonical .tgp texts.
func CrossCheck(spec *prog.Spec, opt Options) (*CrossCheckResult, error) {
	run := func(ic platform.Interconnect) (uint64, string, int, error) {
		o := opt
		o.Platform.Interconnect = ic
		ref, err := RunReference(spec, o, true)
		if err != nil {
			return 0, "", 0, err
		}
		progs, _, _, err := TranslateAll(spec, ref.Traces,
			core.DefaultTranslateConfig(PollRangesFor(spec)))
		if err != nil {
			return 0, "", 0, err
		}
		text, err := FormatTGP(progs)
		if err != nil {
			return 0, "", 0, err
		}
		n := 0
		for _, p := range progs {
			n += len(p.Insts)
		}
		return ref.Makespan, text, n, nil
	}
	mkA, textA, nA, err := run(platform.AMBA)
	if err != nil {
		return nil, fmt.Errorf("exp: crosscheck %s on AMBA: %w", spec.Name, err)
	}
	mkX, textX, _, err := run(platform.XPipes)
	if err != nil {
		return nil, fmt.Errorf("exp: crosscheck %s on xpipes: %w", spec.Name, err)
	}
	res := &CrossCheckResult{
		Bench:      spec.Name,
		Cores:      spec.Cores,
		MakespanA:  mkA,
		MakespanX:  mkX,
		Equal:      textA == textX,
		ProgramLen: nA,
	}
	if !res.Equal {
		res.FirstDiff = firstDiff(textA, textX)
	}
	return res, nil
}

// firstDiff locates the first differing line of two texts.
func firstDiff(a, b string) string {
	la := strings.Split(a, "\n")
	lb := strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("length %d vs %d lines", len(la), len(lb))
}

// OverheadResult reproduces the paper's trace-collection cost experiment
// (plain 128 s vs traced 147 s vs 145 s translation of a 20 MB trace).
type OverheadResult struct {
	Bench         string
	Cores         int
	PlainWall     time.Duration
	TracedWall    time.Duration
	TranslateWall time.Duration
	TraceBytes    int
	Events        int
}

// MeasureOverhead times the plain run, the traced run, and translation.
func MeasureOverhead(spec *prog.Spec, opt Options) (*OverheadResult, error) {
	row, err := MeasureRow(spec, opt)
	if err != nil {
		return nil, err
	}
	return &OverheadResult{
		Bench:         spec.Name,
		Cores:         spec.Cores,
		PlainWall:     row.WallARM,
		TracedWall:    row.TracedWall,
		TranslateWall: row.TranslateWall,
		TraceBytes:    row.TraceBytes,
	}, nil
}
