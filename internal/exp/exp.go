// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 6) on the Go platform —
// Table 2 (accuracy and speedup per benchmark and core count), the
// cross-interconnect .tgp equality check, the trace-collection overhead
// measurement, and the baseline/design ablations. EXPERIMENTS.md records
// the outputs against the paper's numbers.
package exp

import (
	"bytes"
	"fmt"
	"time"

	"noctg/internal/cache"
	"noctg/internal/core"
	"noctg/internal/guard"
	"noctg/internal/layout"
	"noctg/internal/ocp"
	"noctg/internal/platform"
	"noctg/internal/prog"
	"noctg/internal/trace"
)

// Options selects the platform variant under test.
type Options struct {
	// Platform is the interconnect/bus/NoC configuration. Cores is filled
	// from the spec.
	Platform platform.Config
	// ICache and DCache configure the processor caches.
	ICache, DCache cache.Config
	// Guard arms the guard watchdogs (see internal/guard) on every
	// platform the harness builds. The zero value disables them; fault-free
	// guarded runs are byte-identical to unguarded ones, and a violation
	// surfaces as a typed *guard.Violation error from the run.
	Guard guard.Config
	// Interrupted, when set, is polled by the paper harness before each
	// experiment task starts; once true, unstarted tasks are skipped (a
	// SIGINT/SIGTERM graceful drain) while in-flight ones finish.
	Interrupted func() bool
}

// DefaultOptions returns the reference AMBA platform configuration.
func DefaultOptions() Options {
	return Options{
		ICache: cache.Config{Lines: 64, WordsPerLine: 4},
		DCache: cache.Config{Lines: 64, WordsPerLine: 4},
	}
}

// RefResult is the outcome of a reference (ARM) simulation.
type RefResult struct {
	Sys      *platform.System
	Makespan uint64
	Wall     time.Duration
	Traces   []*trace.Trace
}

// RunReference executes the spec on bit/cycle-true miniARM cores. With
// traced set, OCP monitors collect a trace per master (the paper's
// reference simulation).
func RunReference(spec *prog.Spec, opt Options, traced bool) (*RefResult, error) {
	progs, err := spec.Assemble()
	if err != nil {
		return nil, err
	}
	cfg := opt.Platform
	cfg.Cores = spec.Cores
	cfg.Trace = traced
	sys, err := platform.BuildARM(cfg, progs, opt.ICache, opt.DCache)
	if err != nil {
		return nil, err
	}
	sys.EnableGuard(opt.Guard)
	start := time.Now()
	makespan, err := sys.Run(spec.MaxCycles)
	wall := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("exp: reference %s: %w", spec.Name, err)
	}
	if spec.Validate != nil {
		if verr := spec.Validate(sys.Peek, progs[0].Symbols); verr != nil {
			return nil, fmt.Errorf("exp: reference %s functional check: %w", spec.Name, verr)
		}
	}
	res := &RefResult{Sys: sys, Makespan: makespan, Wall: wall}
	if traced {
		for i, mon := range sys.Monitors {
			res.Traces = append(res.Traces, trace.New(i, sys.Engine.Clock(), mon.Events()))
		}
	}
	return res, nil
}

// PollRangesFor returns the translator's pollable ranges for a spec: the
// hardware semaphore bank plus the spec's registered flag words, each with
// the benchmark's known polling period.
func PollRangesFor(spec *prog.Spec) []core.PollRange {
	ranges := []core.PollRange{{Range: layout.SemRange(), Gap: prog.SemPollGap}}
	for _, w := range spec.PollWords {
		ranges = append(ranges, core.PollRange{
			Range: ocp.AddrRange{Base: w, Size: 4},
			Gap:   prog.FlagPollGap,
		})
	}
	return ranges
}

// TranslateAll converts per-master traces into TG programs. It returns the
// programs, aggregate stats, and the translation wall time (the paper's
// "parsing and elaboration" cost).
func TranslateAll(spec *prog.Spec, traces []*trace.Trace, cfg core.TranslateConfig) ([]*core.Program, core.TranslateStats, time.Duration, error) {
	var agg core.TranslateStats
	progs := make([]*core.Program, len(traces))
	start := time.Now()
	for i, tr := range traces {
		p, stats, err := core.Translate(tr, cfg)
		if err != nil {
			return nil, agg, 0, fmt.Errorf("exp: translate master %d: %w", i, err)
		}
		progs[i] = p
		agg.Events += stats.Events
		agg.PollLoops += stats.PollLoops
		agg.PollReadsCollapsed += stats.PollReadsCollapsed
		agg.ClampedCycles += stats.ClampedCycles
	}
	return progs, agg, time.Since(start), nil
}

// TGResult is the outcome of a TG-platform simulation.
type TGResult struct {
	Sys      *platform.System
	Makespan uint64
	Wall     time.Duration
}

// RunTG executes translated programs on the TG platform (Figure 1(b)).
func RunTG(spec *prog.Spec, programs []*core.Program, opt Options) (*TGResult, error) {
	cfg := opt.Platform
	cfg.Cores = spec.Cores
	sys, err := platform.BuildTG(cfg, programs)
	if err != nil {
		return nil, err
	}
	sys.EnableGuard(opt.Guard)
	start := time.Now()
	makespan, err := sys.Run(spec.MaxCycles)
	wall := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("exp: TG %s: %w", spec.Name, err)
	}
	return &TGResult{Sys: sys, Makespan: makespan, Wall: wall}, nil
}

// FormatTGP renders all programs as concatenated canonical .tgp text (used
// for the cross-interconnect equality check).
func FormatTGP(programs []*core.Program) (string, error) {
	var buf bytes.Buffer
	for _, p := range programs {
		if err := p.Format(&buf); err != nil {
			return "", err
		}
		buf.WriteByte('\n')
	}
	return buf.String(), nil
}

// TraceBytes returns the serialised .trc size of all traces (the paper's
// "20 MB trace file" metric).
func TraceBytes(traces []*trace.Trace) (int, error) {
	var total int
	for _, tr := range traces {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return 0, err
		}
		total += buf.Len()
	}
	return total, nil
}
