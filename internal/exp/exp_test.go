package exp

import (
	"strings"
	"testing"

	"noctg/internal/amba"
	"noctg/internal/layout"
	"noctg/internal/platform"
	"noctg/internal/prog"
)

func TestMeasureRowSPMatrixAccuracy(t *testing.T) {
	row, err := MeasureRow(prog.SPMatrix(8), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if row.ErrorPct > 1.0 {
		t.Fatalf("SP matrix TG error %.3f%% (ARM %d vs TG %d cycles)",
			row.ErrorPct, row.CyclesARM, row.CyclesTG)
	}
}

func TestMeasureRowCacheloopAccuracy(t *testing.T) {
	row, err := MeasureRow(prog.Cacheloop(2, 2000), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if row.ErrorPct > 0.5 {
		t.Fatalf("cacheloop TG error %.3f%% (ARM %d vs TG %d)",
			row.ErrorPct, row.CyclesARM, row.CyclesTG)
	}
}

func TestMeasureRowMPMatrixAccuracy(t *testing.T) {
	row, err := MeasureRow(prog.MPMatrix(4, 8), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if row.ErrorPct > 3.0 {
		t.Fatalf("MP matrix TG error %.3f%% (ARM %d vs TG %d)",
			row.ErrorPct, row.CyclesARM, row.CyclesTG)
	}
}

func TestMeasureRowDESAccuracy(t *testing.T) {
	row, err := MeasureRow(prog.DES(2, 2), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if row.ErrorPct > 3.0 {
		t.Fatalf("DES TG error %.3f%% (ARM %d vs TG %d)",
			row.ErrorPct, row.CyclesARM, row.CyclesTG)
	}
}

func TestCrossInterconnectTGPEquality(t *testing.T) {
	// Section 6, experiment 1: identical .tgp programs from AMBA and
	// ×pipes traces, even though the reference makespans differ.
	for _, spec := range []*prog.Spec{
		prog.Cacheloop(2, 500),
		prog.MPMatrix(2, 8),
		prog.DES(2, 2),
	} {
		res, err := CrossCheck(spec, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !res.Equal {
			t.Fatalf("%s: .tgp differs across interconnects: %s", spec.Name, res.FirstDiff)
		}
		if res.MakespanA == res.MakespanX {
			t.Logf("%s: warning: identical makespans on both fabrics (%d)", spec.Name, res.MakespanA)
		}
	}
}

func TestPollGapMatchesMeasuredConstant(t *testing.T) {
	// The per-range poll-gap constants supplied to the translator must
	// equal the real poll periods of the benchmark loops, or single-poll
	// runs would translate differently from multi-poll runs across
	// interconnects.
	spec := prog.MPMatrix(4, 8)
	ref, err := RunReference(spec, DefaultOptions(), true)
	if err != nil {
		t.Fatal(err)
	}
	semRange := layout.SemRange()
	flags := map[uint32]bool{}
	for _, w := range spec.PollWords {
		flags[w] = true
	}
	foundSem, foundFlag := false, false
	for _, tr := range ref.Traces {
		evs := tr.Events
		for i := 0; i+1 < len(evs); i++ {
			if !evs[i].Cmd.IsRead() || !evs[i+1].Cmd.IsRead() || evs[i+1].Addr != evs[i].Addr {
				continue
			}
			gap := evs[i+1].Assert - evs[i].Resp
			switch {
			case semRange.Contains(evs[i].Addr):
				if gap != prog.SemPollGap {
					t.Fatalf("semaphore poll gap %d, prog.SemPollGap = %d", gap, prog.SemPollGap)
				}
				foundSem = true
			case flags[evs[i].Addr]:
				if gap != prog.FlagPollGap {
					t.Fatalf("flag poll gap %d, prog.FlagPollGap = %d", gap, prog.FlagPollGap)
				}
				foundFlag = true
			}
		}
	}
	if !foundSem || !foundFlag {
		t.Fatalf("insufficient poll coverage (sem=%v flag=%v)", foundSem, foundFlag)
	}
}

func TestAblationGeneratorsReactiveWins(t *testing.T) {
	// Trace on AMBA, replay on ×pipes: the reactive TG must predict the
	// ground-truth makespan better than cloning.
	source := DefaultOptions()
	target := DefaultOptions()
	target.Platform.Interconnect = platform.XPipes
	rows, err := AblationGenerators(prog.MPMatrix(2, 8), source, target)
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[GeneratorKind]*FidelityRow{}
	for _, r := range rows {
		byKind[r.Kind] = r
	}
	re := byKind[Reactive]
	if re == nil || !re.Completed {
		t.Fatal("reactive TG failed to complete on the target fabric")
	}
	if re.ErrorPct > 15 {
		t.Fatalf("reactive TG error %.1f%% vs ground truth", re.ErrorPct)
	}
	cl := byKind[Cloning]
	if cl.Completed && cl.ErrorPct < re.ErrorPct {
		t.Fatalf("cloning (%.2f%%) outperformed reactive (%.2f%%)", cl.ErrorPct, re.ErrorPct)
	}
}

func TestMeasureRowOnXPipes(t *testing.T) {
	// The TG methodology must hold when the *reference* platform is the
	// NoC, too — trace on ×pipes, replay on ×pipes.
	opt := DefaultOptions()
	opt.Platform.Interconnect = platform.XPipes
	row, err := MeasureRow(prog.MPMatrix(2, 8), opt)
	if err != nil {
		t.Fatal(err)
	}
	if row.ErrorPct > 3.0 {
		t.Fatalf("xpipes TG error %.3f%% (ARM %d vs TG %d)",
			row.ErrorPct, row.CyclesARM, row.CyclesTG)
	}
}

func TestAblationArbitration(t *testing.T) {
	rows, err := AblationArbitration(prog.MPMatrix(4, 8), DefaultOptions(),
		[]amba.Policy{amba.RoundRobin, amba.FixedPriority, amba.TDMA})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Makespan == 0 || rows[1].Makespan == 0 || rows[2].Makespan == 0 {
		t.Fatalf("arbitration rows %+v", rows)
	}
	if rows[2].Policy != "tdma" {
		t.Fatalf("third row should be tdma: %+v", rows[2])
	}
	// Fixed priority must starve someone harder than round-robin.
	if rows[1].MaxWait < rows[0].MaxWait {
		t.Logf("note: fixed-priority max wait %d below round-robin %d", rows[1].MaxWait, rows[0].MaxWait)
	}
}

func TestOverheadMetrics(t *testing.T) {
	res, err := MeasureOverhead(prog.MPMatrix(2, 8), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceBytes == 0 {
		t.Fatal("no trace bytes recorded")
	}
	if res.TracedWall == 0 || res.PlainWall == 0 {
		t.Fatal("wall times not measured")
	}
}

func TestQuickTable2Formats(t *testing.T) {
	if testing.Short() {
		t.Skip("table sweep in -short mode")
	}
	sizes := QuickSizes()
	rows, err := Table2(sizes, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable2(rows)
	for _, want := range []string{"spmatrix", "cacheloop", "mpmatrix", "des", "gain"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	for _, r := range rows {
		if r.ErrorPct > 5 {
			t.Fatalf("row %s/%dP error %.2f%% too high\n%s", r.Bench, r.Cores, r.ErrorPct, out)
		}
	}
}

func TestLatencyDistributionFidelity(t *testing.T) {
	// Beyond the makespan: the TG platform must reproduce the per-read
	// latency profile of the real cores (same transaction mix hitting the
	// same fabric at the same times).
	arm, tg, err := LatencyComparison(prog.MPMatrix(4, 8), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if arm.Reads == 0 || tg.Reads == 0 {
		t.Fatal("no read latencies observed")
	}
	if e := MeanErrorPct(arm, tg); e > 5 {
		t.Fatalf("mean latency error %.2f%% (ARM %s vs TG %s)", e, arm, tg)
	}
	// Transaction counts may differ only by regenerated polling.
	diff := int64(arm.Reads) - int64(tg.Reads)
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.1*float64(arm.Reads) {
		t.Fatalf("read count diverged: ARM %d vs TG %d", arm.Reads, tg.Reads)
	}
}

func TestMeasureRowPipelineAccuracy(t *testing.T) {
	// The pipeline workload is pure fine-grained handshaking — the hardest
	// reactive case. The TG platform must still track the reference.
	row, err := MeasureRow(prog.Pipeline(3, 8), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if row.ErrorPct > 5.0 {
		t.Fatalf("pipeline TG error %.3f%% (ARM %d vs TG %d)",
			row.ErrorPct, row.CyclesARM, row.CyclesTG)
	}
}

func TestPipelineCrossInterconnect(t *testing.T) {
	res, err := CrossCheck(prog.Pipeline(3, 6), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal {
		t.Fatalf("pipeline .tgp differs across interconnects: %s", res.FirstDiff)
	}
}
