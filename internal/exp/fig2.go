package exp

import (
	"fmt"

	"noctg/internal/core"
	"noctg/internal/prog"
)

// Fig2aResult is the Figure 2(a) transaction-semantics experiment: on the
// same platform, a program of N dependent blocking reads must take longer
// than one of N posted writes, because a write releases the processor as
// soon as the interconnect accepts it while a read stalls for the response.
type Fig2aResult struct {
	WriteCycles uint64
	ReadCycles  uint64
}

// ReadsSlower reports whether the blocking reads took longer, as the figure
// requires.
func (r *Fig2aResult) ReadsSlower() bool { return r.ReadCycles > r.WriteCycles }

// Fig2a measures the posted-write vs blocking-read makespans of Figure 2(a).
func Fig2a(opt Options) (*Fig2aResult, error) {
	run := func(name, body string) (uint64, error) {
		spec := &prog.Spec{
			Name:  name,
			Cores: 1,
			Source: `
	ldi r1, 0x08000000
	ldi r2, 42
` + body + `
	halt`,
			MaxCycles: 100_000,
		}
		ref, err := RunReference(spec, opt, false)
		if err != nil {
			return 0, err
		}
		return ref.Makespan, nil
	}
	writes, err := run("fig2a-wr", `
	str r2, [r1+0]
	str r2, [r1+4]
	str r2, [r1+8]
	str r2, [r1+12]`)
	if err != nil {
		return nil, fmt.Errorf("exp: fig2a writes: %w", err)
	}
	reads, err := run("fig2a-rd", `
	ldr r3, [r1+0]
	ldr r3, [r1+4]
	ldr r3, [r1+8]
	ldr r3, [r1+12]`)
	if err != nil {
		return nil, fmt.Errorf("exp: fig2a reads: %w", err)
	}
	return &Fig2aResult{WriteCycles: writes, ReadCycles: reads}, nil
}

// Fig2bResult is the Figure 2(b) reactivity experiment: two-master
// semaphore contention replayed by reactive TGs on the traced fabric and on
// a slower one. On the slower fabric critical sections are held longer, so
// the reactive TGs must regenerate more failed polls — behaviour a
// non-reactive replay cannot produce.
type Fig2bResult struct {
	Bench string
	Cores int
	// SameMakespan / SameFailedPolls come from the traced fabric.
	SameMakespan    uint64
	SameFailedPolls uint64
	// SlowMakespan / SlowFailedPolls come from the slowed fabric.
	SlowMakespan    uint64
	SlowFailedPolls uint64
}

// Reactive reports whether the slower fabric both lengthened the run and
// grew the regenerated poll count.
func (r *Fig2bResult) Reactive() bool {
	return r.SlowMakespan > r.SameMakespan && r.SlowFailedPolls > r.SameFailedPolls
}

// Fig2b traces spec once, then replays the translated TGs on the traced
// fabric and on one with much slower slaves (12 wait states), reporting
// makespans and semaphore poll failures.
func Fig2b(spec *prog.Spec, opt Options) (*Fig2bResult, error) {
	ref, err := RunReference(spec, opt, true)
	if err != nil {
		return nil, err
	}
	progs, _, _, err := TranslateAll(spec, ref.Traces,
		core.DefaultTranslateConfig(PollRangesFor(spec)))
	if err != nil {
		return nil, err
	}
	same, err := RunTG(spec, progs, opt)
	if err != nil {
		return nil, err
	}
	_, sameFails, _ := same.Sys.Sems.Stats()
	slow := opt
	slow.Platform.MemWaitStates = 12
	slowRes, err := RunTG(spec, progs, slow)
	if err != nil {
		return nil, err
	}
	_, slowFails, _ := slowRes.Sys.Sems.Stats()
	return &Fig2bResult{
		Bench:           spec.Name,
		Cores:           spec.Cores,
		SameMakespan:    same.Makespan,
		SameFailedPolls: sameFails,
		SlowMakespan:    slowRes.Makespan,
		SlowFailedPolls: slowFails,
	}, nil
}
