package exp

import (
	"testing"

	"noctg/internal/core"
	"noctg/internal/layout"
	"noctg/internal/ocp"
	"noctg/internal/prog"
)

// TestFig2aPrivateSlaveTiming pins the Figure 2(a) semantics at the core
// level: a posted write releases the processor as soon as the interconnect
// accepts it, while a blocking read stalls until the response returns —
// so a program doing N dependent reads takes visibly longer than one doing
// N posted writes, and the write-then-read pattern "stalls at the slave"
// without the core observing anything but a longer response time.
func TestFig2aPrivateSlaveTiming(t *testing.T) {
	run := func(body string) uint64 {
		spec := &prog.Spec{
			Name:  "fig2a",
			Cores: 1,
			Source: `
	ldi r1, 0x08000000
	ldi r2, 42
` + body + `
	halt`,
			MaxCycles: 100_000,
		}
		ref, err := RunReference(spec, DefaultOptions(), false)
		if err != nil {
			t.Fatal(err)
		}
		return ref.Makespan
	}
	writes := run(`
	str r2, [r1+0]
	str r2, [r1+4]
	str r2, [r1+8]
	str r2, [r1+12]`)
	reads := run(`
	ldr r3, [r1+0]
	ldr r3, [r1+4]
	ldr r3, [r1+8]
	ldr r3, [r1+12]`)
	if reads <= writes {
		t.Fatalf("blocking reads (%d cycles) must be slower than posted writes (%d)", reads, writes)
	}
}

// TestFig2aTraceShape verifies the traced transaction stream of the WR/RD
// pattern matches the figure: the WR event carries no response, the RD
// does, and the RD following a WR to the same slave completes later than
// an isolated RD (the write's service time is folded into the read's
// response time — the "stalled at the slave interface" behaviour).
func TestFig2aTraceShape(t *testing.T) {
	spec := &prog.Spec{
		Name:  "fig2a-trace",
		Cores: 1,
		Source: `
	ldi r1, 0x08000000
	ldi r2, 7
	str r2, [r1+0]
	ldr r3, [r1+0]
	halt`,
		MaxCycles: 100_000,
	}
	ref, err := RunReference(spec, DefaultOptions(), true)
	if err != nil {
		t.Fatal(err)
	}
	evs := ref.Traces[0].Events
	// Find the shared-memory WR and the RD after it.
	var wr, rd *ocp.Event
	for i := range evs {
		if evs[i].Addr == layout.SharedBase {
			if evs[i].Cmd == ocp.Write {
				wr = &evs[i]
			} else if evs[i].Cmd == ocp.Read && wr != nil {
				rd = &evs[i]
			}
		}
	}
	if wr == nil || rd == nil {
		t.Fatalf("trace missing WR/RD pair: %+v", evs)
	}
	if wr.HasResp {
		t.Fatal("posted write must not record a response")
	}
	if !rd.HasResp || rd.Resp <= rd.Assert {
		t.Fatal("read must record a later response")
	}
	if wr.Done() != wr.Accept {
		t.Fatal("write completion must be its acceptance")
	}
}

// TestFig2bSemaphoreReactivity is the Figure 2(b) system test on real
// hardware models: two ARM cores contend for a semaphore; the TG platform
// built from their traces must reproduce both the winner's and the
// poller's cycle behaviour, and on a slower fabric the replayed poll count
// must grow.
func TestFig2bSemaphoreReactivity(t *testing.T) {
	spec := prog.MPMatrix(2, 8) // semaphore-paced benchmark
	opt := DefaultOptions()
	ref, err := RunReference(spec, opt, true)
	if err != nil {
		t.Fatal(err)
	}
	progs, _, _, err := TranslateAll(spec, ref.Traces,
		core.DefaultTranslateConfig(PollRangesFor(spec)))
	if err != nil {
		t.Fatal(err)
	}
	// Same fabric: poll counts (semaphore read failures) comparable.
	sameRes, err := RunTG(spec, progs, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, sameFails, _ := sameRes.Sys.Sems.Stats()
	// Much slower slaves: critical sections hold longer, waiters must poll
	// more; the reactive TG regenerates those extra polls.
	slow := opt
	slow.Platform.MemWaitStates = 12
	slowRes, err := RunTG(spec, progs, slow)
	if err != nil {
		t.Fatal(err)
	}
	_, slowFails, _ := slowRes.Sys.Sems.Stats()
	if slowRes.Makespan <= sameRes.Makespan {
		t.Fatal("slower slaves must lengthen the run")
	}
	t.Logf("failed polls: same fabric %d, slow fabric %d", sameFails, slowFails)
	if slowFails <= sameFails {
		t.Fatalf("reactive TGs should poll more on the slower fabric (%d vs %d)", slowFails, sameFails)
	}
}
