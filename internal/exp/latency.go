package exp

import (
	"fmt"
	"math"

	"noctg/internal/core"
	"noctg/internal/platform"
	"noctg/internal/prog"
	"noctg/internal/sim"
	"noctg/internal/trace"
)

// LatencyProfile summarises per-transaction read latencies (response cycle
// minus acceptance cycle) observed at the master OCP interfaces — a
// finer-grained fidelity metric than the makespan: the TG platform should
// reproduce not just the run length but the distribution of interconnect
// service times the traffic experiences.
type LatencyProfile struct {
	Reads uint64
	Mean  float64
	Max   uint64
	Hist  *sim.Histogram
}

func profileTraces(traces []*trace.Trace) *LatencyProfile {
	p := &LatencyProfile{Hist: sim.NewHistogram(4, 8, 16, 32, 64, 128, 256)}
	for _, tr := range traces {
		for i := range tr.Events {
			e := &tr.Events[i]
			if !e.HasResp {
				continue
			}
			p.Hist.Observe(e.Resp - e.Accept)
		}
	}
	p.Reads = p.Hist.Count()
	p.Mean = p.Hist.Mean()
	p.Max = p.Hist.Max()
	return p
}

// LatencyComparison runs the spec on cycle-true cores and on TGs (both
// traced) and returns the two read-latency profiles.
func LatencyComparison(spec *prog.Spec, opt Options) (arm, tg *LatencyProfile, err error) {
	ref, err := RunReference(spec, opt, true)
	if err != nil {
		return nil, nil, err
	}
	progs, _, _, err := TranslateAll(spec, ref.Traces,
		core.DefaultTranslateConfig(PollRangesFor(spec)))
	if err != nil {
		return nil, nil, err
	}
	cfg := opt.Platform
	cfg.Cores = spec.Cores
	cfg.Trace = true // monitor the TG ports too
	sys, err := platform.BuildTG(cfg, progs)
	if err != nil {
		return nil, nil, err
	}
	if _, err := sys.Run(spec.MaxCycles); err != nil {
		return nil, nil, err
	}
	var tgTraces []*trace.Trace
	for i, mon := range sys.Monitors {
		tgTraces = append(tgTraces, trace.New(i, sys.Engine.Clock(), mon.Events()))
	}
	return profileTraces(ref.Traces), profileTraces(tgTraces), nil
}

// MeanErrorPct returns the relative difference of the two profile means.
func MeanErrorPct(arm, tg *LatencyProfile) float64 {
	if arm.Mean == 0 {
		return 0
	}
	return 100 * math.Abs(tg.Mean-arm.Mean) / arm.Mean
}

// FormatLatency renders a profile for reports.
func (p *LatencyProfile) String() string {
	return fmt.Sprintf("%d reads, mean %.2f cycles, max %d", p.Reads, p.Mean, p.Max)
}
