package exp

import (
	"fmt"
	"math"
	"strings"
	"time"

	"noctg/internal/core"
	"noctg/internal/prog"
)

// Row is one Table 2 line: simulated-cycle accuracy and host-time speedup
// of the TG platform versus the ARM platform.
type Row struct {
	Bench     string
	Cores     int
	CyclesARM uint64
	CyclesTG  uint64
	ErrorPct  float64
	WallARM   time.Duration
	WallTG    time.Duration
	Gain      float64
	// TracedWall is the reference run with tracing enabled (overhead exp).
	TracedWall time.Duration
	// TranslateWall is the trace→program conversion time.
	TranslateWall time.Duration
	// TraceBytes is the total serialised trace size.
	TraceBytes int
}

// MeasureRow produces one Table 2 row for a spec:
//
//  1. plain reference run (ARM wall time and cycle count),
//  2. traced reference run (trace collection + overhead metrics),
//  3. translation, and
//  4. TG run (TG wall time and cycle count).
func MeasureRow(spec *prog.Spec, opt Options) (*Row, error) {
	plain, err := RunReference(spec, opt, false)
	if err != nil {
		return nil, err
	}
	traced, err := RunReference(spec, opt, true)
	if err != nil {
		return nil, err
	}
	progs, _, twall, err := TranslateAll(spec, traced.Traces,
		core.DefaultTranslateConfig(PollRangesFor(spec)))
	if err != nil {
		return nil, err
	}
	tg, err := RunTG(spec, progs, opt)
	if err != nil {
		return nil, err
	}
	tbytes, err := TraceBytes(traced.Traces)
	if err != nil {
		return nil, err
	}
	row := &Row{
		Bench:         spec.Name,
		Cores:         spec.Cores,
		CyclesARM:     plain.Makespan,
		CyclesTG:      tg.Makespan,
		ErrorPct:      100 * math.Abs(float64(tg.Makespan)-float64(plain.Makespan)) / float64(plain.Makespan),
		WallARM:       plain.Wall,
		WallTG:        tg.Wall,
		TracedWall:    traced.Wall,
		TranslateWall: twall,
		TraceBytes:    tbytes,
	}
	if tg.Wall > 0 {
		row.Gain = float64(plain.Wall) / float64(tg.Wall)
	}
	return row, nil
}

// Sizes parameterises the Table 2 benchmark set. The defaults give
// makespans in the hundreds of thousands of cycles — smaller than the
// paper's multi-million-cycle runs but in the same contention regimes.
type Sizes struct {
	SPMatrixN      int
	CacheloopIters int
	MPMatrixN      int
	DESBlocks      int
	CacheloopCores []int
	MPMatrixCores  []int
	DESCores       []int
}

// DefaultSizes mirrors the paper's sweep (2–12 processors; DES from 3).
func DefaultSizes() Sizes {
	return Sizes{
		SPMatrixN:      24,
		CacheloopIters: 30_000,
		MPMatrixN:      16,
		DESBlocks:      16,
		CacheloopCores: []int{2, 4, 6, 8, 10, 12},
		MPMatrixCores:  []int{2, 4, 6, 8, 10, 12},
		DESCores:       []int{3, 4, 6, 8, 10, 12},
	}
}

// QuickSizes is a fast variant for tests and smoke runs.
func QuickSizes() Sizes {
	return Sizes{
		SPMatrixN:      8,
		CacheloopIters: 2_000,
		MPMatrixN:      8,
		DESBlocks:      2,
		CacheloopCores: []int{2, 4},
		MPMatrixCores:  []int{2, 4},
		DESCores:       []int{3},
	}
}

// Specs expands the sizes into the full benchmark list, in Table 2 order.
func (s Sizes) Specs() []*prog.Spec {
	specs := []*prog.Spec{prog.SPMatrix(s.SPMatrixN)}
	for _, p := range s.CacheloopCores {
		specs = append(specs, prog.Cacheloop(p, s.CacheloopIters))
	}
	for _, p := range s.MPMatrixCores {
		specs = append(specs, prog.MPMatrix(p, s.MPMatrixN))
	}
	for _, p := range s.DESCores {
		specs = append(specs, prog.DES(p, s.DESBlocks))
	}
	return specs
}

// Table2 measures every row.
func Table2(sizes Sizes, opt Options) ([]*Row, error) {
	var rows []*Row
	for _, spec := range sizes.Specs() {
		row, err := MeasureRow(spec, opt)
		if err != nil {
			return nil, fmt.Errorf("exp: %s/%dP: %w", spec.Name, spec.Cores, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable2 renders rows in the paper's Table 2 layout.
func FormatTable2(rows []*Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %4s | %12s %12s %7s | %10s %10s %6s\n",
		"benchmark", "#IPs", "cycles ARM", "cycles TG", "error", "time ARM", "time TG", "gain")
	fmt.Fprintln(&b, strings.Repeat("-", 88))
	last := ""
	for _, r := range rows {
		name := r.Bench
		if name == last {
			name = ""
		} else {
			last = r.Bench
		}
		fmt.Fprintf(&b, "%-10s %3dP | %12d %12d %6.2f%% | %10s %10s %5.2fx\n",
			name, r.Cores, r.CyclesARM, r.CyclesTG, r.ErrorPct,
			r.WallARM.Round(time.Millisecond), r.WallTG.Round(time.Millisecond), r.Gain)
	}
	return b.String()
}
