package guard

import (
	"math/rand"
	"time"
)

// FaultPlan is a deterministic, seeded set of injected faults. It exists
// purely as test stimulus: each fault class is designed to manufacture one
// watchdog's failure mode on demand, so the guard suite can prove every
// watchdog actually fires. Plans are data (JSON-serialisable) so a failing
// configuration can be reproduced exactly.
type FaultPlan struct {
	// Seed records the generator seed for plans built by RandomPlan
	// (informational; the fault lists below are what executes).
	Seed int64 `json:"seed,omitempty"`
	// LinkStalls block a router's output link for a cycle window —
	// backpressure builds behind it and, held long enough, the no-retire
	// deadlock horizon fires.
	LinkStalls []LinkStall `json:"link_stalls,omitempty"`
	// FlitDrops silently discard every flit forwarded through a router
	// output during a cycle window — flit conservation (and usually pool
	// mass) breaks.
	FlitDrops []FlitDrop `json:"flit_drops,omitempty"`
	// SlaveFreezes stop a slave NI from serving or draining during a cycle
	// window — requests pile up and the deadlock horizon fires.
	SlaveFreezes []SlaveFreeze `json:"slave_freezes,omitempty"`
	// PacketLeaks make a slave NI forget to recycle served request packets
	// during a cycle window — pool mass breaks.
	PacketLeaks []PacketLeak `json:"packet_leaks,omitempty"`
	// ShardStalls put one shard to sleep on the host clock at a window
	// boundary — the barrier-stall watchdog fires on its peers.
	ShardStalls []ShardStall `json:"shard_stalls,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (p *FaultPlan) Empty() bool {
	return len(p.LinkStalls) == 0 && len(p.FlitDrops) == 0 && len(p.SlaveFreezes) == 0 &&
		len(p.PacketLeaks) == 0 && len(p.ShardStalls) == 0
}

// LinkStall blocks router Node's output link Dir ("n","e","s","w") for
// cycles [From, To).
type LinkStall struct {
	Node int    `json:"node"`
	Dir  string `json:"dir"`
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

// FlitDrop discards every flit forwarded through router Node's output Dir
// during cycles [From, To).
type FlitDrop struct {
	Node int    `json:"node"`
	Dir  string `json:"dir"`
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

// SlaveFreeze stops the slave NI at Node for cycles [From, To).
type SlaveFreeze struct {
	Node int    `json:"node"`
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

// PacketLeak drops (instead of recycling) request packets the slave NI at
// Node finishes serving during cycles [From, To).
type PacketLeak struct {
	Node int    `json:"node"`
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

// ShardStall sleeps shard Shard for Wall of host time at the first window
// boundary at or after AtCycle. Wall must exceed the runner's configured
// BarrierStall for the watchdog to fire.
type ShardStall struct {
	Shard   int           `json:"shard"`
	AtCycle uint64        `json:"at_cycle"`
	Wall    time.Duration `json:"wall"`
}

// RandomPlan derives a reproducible fabric fault plan from a seed: one
// link stall, one slave freeze and one flit drop with pseudo-random
// placement over nodes [0, nodes) and windows within [0, horizon). The
// same (seed, nodes, horizon) always yields the same plan. Directions are
// drawn from the full compass; callers injecting into a mesh should remap
// edge nodes or use the torus, where every direction has a link.
func RandomPlan(seed int64, nodes int, horizon uint64) FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	dirs := [4]string{"n", "e", "s", "w"}
	window := func() (uint64, uint64) {
		from := uint64(rng.Int63n(int64(horizon/2 + 1)))
		length := uint64(rng.Int63n(int64(horizon/2+1)) + 1)
		return from, from + length
	}
	p := FaultPlan{Seed: seed}
	f0, t0 := window()
	p.LinkStalls = append(p.LinkStalls, LinkStall{Node: rng.Intn(nodes), Dir: dirs[rng.Intn(4)], From: f0, To: t0})
	f1, t1 := window()
	p.SlaveFreezes = append(p.SlaveFreezes, SlaveFreeze{Node: rng.Intn(nodes), From: f1, To: t1})
	f2, t2 := window()
	p.FlitDrops = append(p.FlitDrops, FlitDrop{Node: rng.Intn(nodes), Dir: dirs[rng.Intn(4)], From: f2, To: t2})
	return p
}
