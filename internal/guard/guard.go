// Package guard is the simulator's hardening layer: runtime invariant
// watchdogs, structured violation diagnostics, and deterministic fault
// injection.
//
// The watchdogs cover the failure modes a wormhole NoC simulator can
// otherwise only express as a silent infinite loop or a process-killing
// panic:
//
//   - monotonic progress (deadlock/livelock): packets keep retiring while
//     any are in flight, within a configurable no-retire cycle horizon;
//   - flit conservation: every domain's resident-flit account matches its
//     router FIFO occupancy, and every cut link's push/pop/credit counters
//     agree with the FIFO it feeds;
//   - pool mass: live packet references across NIs, FIFOs and rings match
//     the pool's outstanding count, across shard return lists;
//   - wall-clock run budget: a bound on host time, for service-style
//     callers that must never lose a worker to one pathological point;
//   - barrier stall: a shard that stops arriving at window barriers is
//     detected instead of hanging every other shard forever.
//
// All checks are observational: a fault-free guarded run executes exactly
// the cycles an unguarded run does, allocates nothing on the hot path, and
// produces byte-identical artifacts for every kernel and shard count. On a
// violation the run stops with a typed *Violation error carrying a
// Diagnostic dump of the stuck state instead of a panic or a hang.
//
// Fault injection (FaultPlan) is the test stimulus that proves the
// watchdogs fire: seeded, deterministic faults — stall a link for a cycle
// window, freeze a slave, drop flits, leak packets, stall a shard — are
// threaded into the NoC and shard runner purely to manufacture each
// violation class on demand.
package guard

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Kind classifies a violation.
type Kind string

const (
	// KindDeadlock fires when no packet retires for the configured horizon
	// while packets are in flight.
	KindDeadlock Kind = "deadlock-horizon"
	// KindBudget fires when the wall-clock run budget is exceeded.
	KindBudget Kind = "run-budget"
	// KindConservation fires when a flit/credit conservation invariant
	// breaks (per-domain resident counts, per-link per-VC counters).
	KindConservation Kind = "flit-conservation"
	// KindPoolMass fires when live packet references disagree with the
	// packet pools' outstanding count.
	KindPoolMass Kind = "pool-mass"
	// KindBarrierStall fires when a shard stops arriving at window
	// barriers.
	KindBarrierStall Kind = "barrier-stall"
	// KindPanic wraps a recovered panic (a device bug surfacing under
	// fault injection or otherwise) as a structured violation.
	KindPanic Kind = "panic"
)

// Transient reports whether a violation of this kind is plausibly an
// artifact of the host rather than the configuration: wall-clock budget
// and barrier-stall violations depend on machine load, and a recovered
// worker panic may be a scheduling-sensitive bug. Transient failures are
// worth retrying (sweep's retry policy re-runs them, falling back to the
// strict kernel on the final attempt); the remaining kinds — deadlock,
// flit conservation, pool mass — are deterministic properties of the
// point and retrying can only waste the campaign's wall clock, so sweep
// quarantines them immediately.
func (k Kind) Transient() bool {
	switch k {
	case KindBudget, KindBarrierStall, KindPanic:
		return true
	}
	return false
}

// Violation is the typed error every watchdog returns instead of hanging
// or panicking. Shard is -1 when the violation is not specific to one
// shard (single-engine runs, global invariants).
type Violation struct {
	Kind  Kind   `json:"kind"`
	Cycle uint64 `json:"cycle"`
	Shard int    `json:"shard"`
	Msg   string `json:"msg"`
	// Stack holds the recovered goroutine stack for KindPanic. It is
	// excluded from JSON so failed points do not make sweep artifacts
	// host-dependent (stack text embeds argument addresses).
	Stack string      `json:"-"`
	Diag  *Diagnostic `json:"diag,omitempty"`
}

// Error implements error.
func (v *Violation) Error() string {
	if v.Shard >= 0 {
		return fmt.Sprintf("guard: %s at cycle %d (shard %d): %s", v.Kind, v.Cycle, v.Shard, v.Msg)
	}
	return fmt.Sprintf("guard: %s at cycle %d: %s", v.Kind, v.Cycle, v.Msg)
}

// AsViolation unwraps err to the *Violation it carries, if any.
func AsViolation(err error) (*Violation, bool) {
	var v *Violation
	if errors.As(err, &v) {
		return v, true
	}
	return nil, false
}

// Diagnostic is the structured dump attached to a violation: enough of the
// stuck state to see what is wedged where without re-running under a
// debugger.
type Diagnostic struct {
	Cycle         uint64 `json:"cycle"`
	LivePackets   int    `json:"live_packets"`
	ResidentFlits int    `json:"resident_flits"`
	// Queues lists every non-empty router input FIFO.
	Queues []QueueDiag `json:"queues,omitempty"`
	// Masters lists every master NI that is not idle.
	Masters []MasterDiag `json:"masters,omitempty"`
	// Links lists every cut (inter-shard) link's counter state.
	Links []LinkDiag `json:"links,omitempty"`
	// Pools lists per-domain packet-pool accounting.
	Pools []PoolDiag `json:"pools,omitempty"`
	// Shards lists per-shard window state (sharded runs only).
	Shards []ShardWindow `json:"shards,omitempty"`
}

// QueueDiag describes one non-empty router input FIFO.
type QueueDiag struct {
	Node    int    `json:"node"`
	Port    string `json:"port"`
	VC      string `json:"vc"`
	Flits   int    `json:"flits"`
	HeadSrc int    `json:"head_src"`
	HeadDst int    `json:"head_dst"`
	// HeadAge is how many cycles the head flit has sat in this buffer.
	HeadAge uint64 `json:"head_age"`
}

// MasterDiag describes one non-idle master NI.
type MasterDiag struct {
	Node  int    `json:"node"`
	State string `json:"state"`
	// ReqStart is the cycle the pending request was latched.
	ReqStart uint64 `json:"req_start"`
}

// LinkDiag describes one cut link's flow-control counters (per VC with any
// traffic).
type LinkDiag struct {
	Node   int    `json:"node"` // importing router
	Port   string `json:"port"` // input port the link feeds
	VC     string `json:"vc"`
	Pushed uint64 `json:"pushed"`
	Popped uint64 `json:"popped"`
	Credit uint64 `json:"credit"`
	Ring   int    `json:"ring"` // flits parked in the export ring
}

// PoolDiag describes one pool domain's packet accounting. Domain is -1 for
// the unsharded base pool.
type PoolDiag struct {
	Domain  int `json:"domain"`
	Live    int `json:"live"`
	Pooled  int `json:"pooled"`
	Returns int `json:"returns"`
}

// ShardWindow describes one shard's window state at violation time.
type ShardWindow struct {
	Shard    int    `json:"shard"`
	Cycle    uint64 `json:"cycle"`
	Horizon  uint64 `json:"horizon"`
	Done     bool   `json:"done"`
	Progress uint64 `json:"progress"`
	Live     int64  `json:"live"`
}

// Summary renders a human-readable digest for CLI error output.
func (d *Diagnostic) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d: %d packets live, %d flits resident", d.Cycle, d.LivePackets, d.ResidentFlits)
	if len(d.Queues) > 0 {
		fmt.Fprintf(&b, "\n  %d stuck queues:", len(d.Queues))
		for i, q := range d.Queues {
			if i == 8 {
				fmt.Fprintf(&b, "\n    ... %d more", len(d.Queues)-i)
				break
			}
			fmt.Fprintf(&b, "\n    node %d %s/%s: %d flits (head %d->%d, age %d)",
				q.Node, q.Port, q.VC, q.Flits, q.HeadSrc, q.HeadDst, q.HeadAge)
		}
	}
	if len(d.Masters) > 0 {
		fmt.Fprintf(&b, "\n  %d blocked masters:", len(d.Masters))
		for i, m := range d.Masters {
			if i == 8 {
				fmt.Fprintf(&b, "\n    ... %d more", len(d.Masters)-i)
				break
			}
			fmt.Fprintf(&b, "\n    node %d: %s since cycle %d", m.Node, m.State, m.ReqStart)
		}
	}
	for _, p := range d.Pools {
		fmt.Fprintf(&b, "\n  pool %d: %d live, %d pooled, %d on return lists", p.Domain, p.Live, p.Pooled, p.Returns)
	}
	for _, s := range d.Shards {
		fmt.Fprintf(&b, "\n  shard %d: cycle %d horizon %d done=%v progress=%d live=%d",
			s.Shard, s.Cycle, s.Horizon, s.Done, s.Progress, s.Live)
	}
	return b.String()
}

// DefaultHorizon is the default no-retire deadlock horizon in cycles. A
// healthy fabric retires packets every few hundred cycles under any load;
// a million idle-free cycles without one retirement is a wedge.
const DefaultHorizon = 1_000_000

// DefaultConservationEvery is the default cycle interval between
// conservation scans on a single-engine run.
const DefaultConservationEvery = 4096

// DefaultBarrierStall is the default wall-clock bound on one barrier wait.
const DefaultBarrierStall = 10 * time.Second

// Config selects which watchdogs run and their thresholds. The zero value
// disables everything (Enabled reports false).
type Config struct {
	// NoRetireHorizon is the deadlock horizon: a violation fires when no
	// packet retires for this many cycles while any packet is in flight.
	// 0 disables the watchdog.
	NoRetireHorizon uint64 `json:"no_retire_horizon,omitempty"`
	// RunBudget bounds the wall-clock duration of one run. 0 disables.
	RunBudget time.Duration `json:"run_budget,omitempty"`
	// Conservation enables the flit/credit and pool-mass invariant scans.
	Conservation bool `json:"conservation,omitempty"`
	// ConservationEvery is the cycle interval between scans on a
	// single-engine run (default DefaultConservationEvery). Sharded runs
	// scan at segment boundaries regardless.
	ConservationEvery uint64 `json:"conservation_every,omitempty"`
	// BarrierStall bounds one shard's wall-clock wait at a window barrier
	// (default applied by Default; 0 disables stall detection).
	BarrierStall time.Duration `json:"barrier_stall,omitempty"`
}

// Default returns the full watchdog set with default thresholds.
func Default() Config {
	return Config{
		NoRetireHorizon:   DefaultHorizon,
		Conservation:      true,
		ConservationEvery: DefaultConservationEvery,
		BarrierStall:      DefaultBarrierStall,
	}
}

// Enabled reports whether any watchdog is configured.
func (c Config) Enabled() bool {
	return c.NoRetireHorizon > 0 || c.RunBudget > 0 || c.Conservation || c.BarrierStall > 0
}

// Probes are the observation hooks a Monitor checks a platform through.
// Any hook may be nil: the corresponding watchdog simply cannot fire (an
// AMBA bus platform has no packet pool, so only the run budget applies).
type Probes struct {
	// Progress returns a monotone count of retired packets.
	Progress func() uint64
	// Live returns the number of packets currently in flight.
	Live func() int
	// Scan checks the conservation invariants, returning the first
	// violation found (Cycle left 0 for the Monitor to stamp).
	Scan func() *Violation
	// Diagnose captures the structured dump attached to violations.
	Diagnose func() *Diagnostic
}

// budgetCheckMask amortises the time.Now() syscall in Monitor.Check: the
// wall clock is consulted once per 64 checks.
const budgetCheckMask = 63

// Monitor is the single-engine watchdog driver. Check is installed as the
// engine's watchdog hook and runs at completion-predicate evaluation
// points (stride boundaries), so a fault-free guarded run executes exactly
// the cycles an unguarded one does. Check allocates nothing until a
// violation fires.
type Monitor struct {
	cfg Config
	p   Probes

	started      bool
	deadline     time.Time
	lastProgress uint64
	lastCycle    uint64
	lastScan     uint64
	ticks        uint32
	fired        *Violation
}

// NewMonitor builds a monitor over the probes. The wall-clock budget is
// armed at the first Check.
func NewMonitor(cfg Config, p Probes) *Monitor {
	if cfg.ConservationEvery == 0 {
		cfg.ConservationEvery = DefaultConservationEvery
	}
	return &Monitor{cfg: cfg, p: p}
}

// Violation returns the violation Check fired, if any.
func (m *Monitor) Violation() *Violation { return m.fired }

// Check runs every configured watchdog at cycle now. It returns nil while
// all invariants hold and the first violation (as an error) forever after
// one fires.
func (m *Monitor) Check(now uint64) error {
	if m.fired != nil {
		return m.fired
	}
	if !m.started {
		m.started = true
		m.lastCycle = now
		m.lastScan = now
		if m.cfg.RunBudget > 0 {
			m.deadline = time.Now().Add(m.cfg.RunBudget)
		}
	}
	if m.cfg.NoRetireHorizon > 0 && m.p.Progress != nil {
		prog := m.p.Progress()
		live := 0
		if m.p.Live != nil {
			live = m.p.Live()
		}
		if prog != m.lastProgress || live == 0 {
			// Retirement, or legitimate quiescence: either way the fabric
			// is not wedged, so the horizon restarts here.
			m.lastProgress = prog
			m.lastCycle = now
		} else if now-m.lastCycle >= m.cfg.NoRetireHorizon {
			return m.fire(&Violation{Kind: KindDeadlock, Cycle: now, Shard: -1,
				Msg: fmt.Sprintf("no packet retired for %d cycles with %d in flight (horizon %d)",
					now-m.lastCycle, live, m.cfg.NoRetireHorizon)})
		}
	}
	if m.cfg.Conservation && m.p.Scan != nil && now-m.lastScan >= m.cfg.ConservationEvery {
		m.lastScan = now
		if v := m.p.Scan(); v != nil {
			if v.Cycle == 0 {
				v.Cycle = now
			}
			return m.fire(v)
		}
	}
	if m.cfg.RunBudget > 0 {
		m.ticks++
		if m.ticks&budgetCheckMask == 0 && time.Now().After(m.deadline) {
			return m.fire(&Violation{Kind: KindBudget, Cycle: now, Shard: -1,
				Msg: fmt.Sprintf("wall-clock run budget %v exceeded", m.cfg.RunBudget)})
		}
	}
	return nil
}

// fire latches the first violation, attaching a diagnostic dump. The
// Diagnose probe walks device state that a violation may have left
// inconsistent, so it runs under its own recover: losing the dump must
// never lose the violation.
func (m *Monitor) fire(v *Violation) error {
	if v.Diag == nil && m.p.Diagnose != nil {
		func() {
			defer func() { _ = recover() }()
			v.Diag = m.p.Diagnose()
		}()
	}
	m.fired = v
	return v
}
