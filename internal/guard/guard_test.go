package guard

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestViolationError(t *testing.T) {
	v := &Violation{Kind: KindDeadlock, Cycle: 42, Shard: 3, Msg: "stuck"}
	if got := v.Error(); !strings.Contains(got, "deadlock-horizon") ||
		!strings.Contains(got, "cycle 42") || !strings.Contains(got, "shard 3") {
		t.Fatalf("Error() = %q", got)
	}
	v.Shard = -1
	if got := v.Error(); strings.Contains(got, "shard") {
		t.Fatalf("global violation mentions a shard: %q", got)
	}
}

func TestAsViolation(t *testing.T) {
	v := &Violation{Kind: KindBudget, Msg: "over"}
	wrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", v))
	got, ok := AsViolation(wrapped)
	if !ok || got != v {
		t.Fatalf("AsViolation through wrapping = %v, %v", got, ok)
	}
	if _, ok := AsViolation(errors.New("plain")); ok {
		t.Fatal("plain error reported as violation")
	}
	if _, ok := AsViolation(nil); ok {
		t.Fatal("nil error reported as violation")
	}
}

func TestViolationJSONOmitsStack(t *testing.T) {
	v := &Violation{Kind: KindPanic, Msg: "boom", Stack: "goroutine 1 [running]: 0xdeadbeef"}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "deadbeef") {
		t.Fatalf("stack (host-dependent addresses) leaked into JSON: %s", b)
	}
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	for _, c := range []Config{
		{NoRetireHorizon: 1},
		{RunBudget: time.Second},
		{Conservation: true},
		{BarrierStall: time.Second},
		Default(),
	} {
		if !c.Enabled() {
			t.Fatalf("config %+v reports disabled", c)
		}
	}
	d := Default()
	if d.NoRetireHorizon != DefaultHorizon || !d.Conservation || d.BarrierStall != DefaultBarrierStall {
		t.Fatalf("Default() = %+v", d)
	}
	if d.RunBudget != 0 {
		t.Fatal("Default() must not impose a wall-clock budget")
	}
}

// TestMonitorDeadlock proves the no-retire horizon fires, and only when
// packets are actually in flight.
func TestMonitorDeadlock(t *testing.T) {
	prog, live := uint64(0), 1
	m := NewMonitor(Config{NoRetireHorizon: 100},
		Probes{Progress: func() uint64 { return prog }, Live: func() int { return live }})
	if err := m.Check(0); err != nil {
		t.Fatalf("arming check: %v", err)
	}
	if err := m.Check(99); err != nil {
		t.Fatalf("pre-horizon check: %v", err)
	}
	err := m.Check(100)
	if err == nil {
		t.Fatal("horizon elapsed without a violation")
	}
	v, ok := AsViolation(err)
	if !ok || v.Kind != KindDeadlock || v.Cycle != 100 {
		t.Fatalf("violation = %+v", v)
	}
	if m.Violation() != v {
		t.Fatal("Violation() does not return the fired violation")
	}
	// The violation is latched: progress afterwards cannot clear it.
	prog = 7
	if err2 := m.Check(200); err2 != err {
		t.Fatalf("latched monitor returned %v", err2)
	}
}

func TestMonitorDeadlockResets(t *testing.T) {
	prog, live := uint64(0), 1
	m := NewMonitor(Config{NoRetireHorizon: 100},
		Probes{Progress: func() uint64 { return prog }, Live: func() int { return live }})
	_ = m.Check(0)
	prog = 1 // a retirement restarts the horizon
	if err := m.Check(99); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(150); err != nil {
		t.Fatalf("horizon did not restart on progress: %v", err)
	}
	live = 0 // quiescence is legitimate, not a wedge
	if err := m.Check(10_000); err != nil {
		t.Fatalf("idle fabric tripped the deadlock horizon: %v", err)
	}
}

func TestMonitorConservation(t *testing.T) {
	scans := 0
	bad := false
	m := NewMonitor(Config{Conservation: true, ConservationEvery: 10}, Probes{
		Scan: func() *Violation {
			scans++
			if bad {
				return &Violation{Kind: KindConservation, Shard: -1, Msg: "leak"}
			}
			return nil
		},
		Diagnose: func() *Diagnostic { return &Diagnostic{Cycle: 1} },
	})
	_ = m.Check(0)
	_ = m.Check(5) // below the cadence: no scan
	if scans != 0 {
		t.Fatalf("scan ran %d times before the cadence elapsed", scans)
	}
	_ = m.Check(10)
	if scans != 1 {
		t.Fatalf("scan ran %d times at the cadence point", scans)
	}
	bad = true
	err := m.Check(20)
	v, ok := AsViolation(err)
	if !ok || v.Kind != KindConservation {
		t.Fatalf("conservation violation = %v", err)
	}
	if v.Cycle != 20 {
		t.Fatalf("unstamped violation cycle = %d, want 20", v.Cycle)
	}
	if v.Diag == nil {
		t.Fatal("violation missing its diagnostic dump")
	}
}

func TestMonitorBudget(t *testing.T) {
	m := NewMonitor(Config{RunBudget: time.Nanosecond}, Probes{})
	var err error
	// The wall clock is consulted once per 64 checks.
	for i := 0; i < 200 && err == nil; i++ {
		err = m.Check(uint64(i))
	}
	v, ok := AsViolation(err)
	if !ok || v.Kind != KindBudget {
		t.Fatalf("budget violation = %v", err)
	}
}

// TestMonitorDiagnosePanicIsContained proves a crashing Diagnose probe
// loses the dump, never the violation.
func TestMonitorDiagnosePanicIsContained(t *testing.T) {
	m := NewMonitor(Config{NoRetireHorizon: 10}, Probes{
		Progress: func() uint64 { return 0 },
		Live:     func() int { return 1 },
		Diagnose: func() *Diagnostic { panic("diag walks broken state") },
	})
	_ = m.Check(0)
	err := m.Check(10)
	v, ok := AsViolation(err)
	if !ok || v.Kind != KindDeadlock {
		t.Fatalf("violation = %v", err)
	}
	if v.Diag != nil {
		t.Fatal("panicking Diagnose still produced a dump")
	}
}

// TestMonitorCheckAllocFree: the watchdog hook runs at every predicate
// stride of a guarded engine, so the fault-free path must stay off the
// heap with every watchdog armed.
func TestMonitorCheckAllocFree(t *testing.T) {
	prog := uint64(0)
	m := NewMonitor(Config{
		NoRetireHorizon:   1 << 40,
		Conservation:      true,
		ConservationEvery: 4,
		RunBudget:         time.Hour,
	}, Probes{
		Progress: func() uint64 { prog++; return prog },
		Live:     func() int { return 1 },
		Scan:     func() *Violation { return nil },
	})
	now := uint64(0)
	if avg := testing.AllocsPerRun(500, func() {
		now += 8
		if err := m.Check(now); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Check allocates %.2f times per call, want 0", avg)
	}
}

func TestFaultPlanEmpty(t *testing.T) {
	var p FaultPlan
	if !p.Empty() {
		t.Fatal("zero plan not empty")
	}
	p.SlaveFreezes = append(p.SlaveFreezes, SlaveFreeze{Node: 1, From: 0, To: 10})
	if p.Empty() {
		t.Fatal("populated plan reports empty")
	}
}

// TestRandomPlanDeterministic pins the seeded generator: same inputs, same
// plan, serialised identically.
func TestRandomPlanDeterministic(t *testing.T) {
	a, _ := json.Marshal(RandomPlan(7, 16, 10_000))
	b, _ := json.Marshal(RandomPlan(7, 16, 10_000))
	if string(a) != string(b) {
		t.Fatalf("same seed, different plans:\n%s\n%s", a, b)
	}
	c, _ := json.Marshal(RandomPlan(8, 16, 10_000))
	if string(a) == string(c) {
		t.Fatal("different seeds produced identical plans")
	}
	p := RandomPlan(7, 16, 10_000)
	if p.Empty() {
		t.Fatal("random plan injects nothing")
	}
	for _, ls := range p.LinkStalls {
		if ls.Node < 0 || ls.Node >= 16 || ls.From >= ls.To {
			t.Fatalf("malformed link stall %+v", ls)
		}
	}
}

func TestDiagnosticSummaryCaps(t *testing.T) {
	d := &Diagnostic{Cycle: 5, LivePackets: 3}
	for i := 0; i < 20; i++ {
		d.Queues = append(d.Queues, QueueDiag{Node: i, Port: "e", VC: "req", Flits: 1})
		d.Masters = append(d.Masters, MasterDiag{Node: i, State: "injected"})
	}
	s := d.Summary()
	if !strings.Contains(s, "20 stuck queues") || !strings.Contains(s, "... 12 more") {
		t.Fatalf("summary does not cap long sections:\n%s", s)
	}
}
