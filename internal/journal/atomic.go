package journal

import (
	"fmt"
	"os"
	"path/filepath"
)

// AtomicWrite writes data to path through a temp-file-plus-rename in the
// same directory, fsyncing before the rename: readers observe either the
// old file or the complete new one, never a torn prefix, whatever the
// process does mid-write. Every sweep artifact writer routes through this
// helper so a crashed campaign can never leave half a JSON or CSV file
// where a result set should be. On any failure the temp file is removed —
// nothing partial is left at or near path.
func AtomicWrite(path string, data []byte) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	name := tmp.Name()
	renamed := false
	defer func() {
		tmp.Close() // double Close after the happy path is a harmless ErrClosed
		if !renamed {
			os.Remove(name)
		}
		if err != nil {
			err = fmt.Errorf("atomic write %s: %w", path, err)
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(name, path); err != nil {
		return err
	}
	renamed = true
	return nil
}
