package journal

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := AtomicWrite(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("wrote %q", got)
	}
	// Overwrite replaces whole-file.
	if err := AtomicWrite(path, []byte("v2-longer")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2-longer" {
		t.Fatalf("overwrite left %q", got)
	}
	leftover(t, dir, 1)
}

// TestAtomicWriteFailureLeavesNothing is the satellite requirement: a
// write that fails mid-stream must leave neither a partial target nor a
// stray temp file.
func TestAtomicWriteFailureLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "ro")
	if err := os.Mkdir(sub, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(sub, 0o755) })
	path := filepath.Join(sub, "out.json")
	if err := AtomicWrite(path, []byte("data")); err == nil {
		if os.Getuid() == 0 {
			t.Skip("running as root; read-only directory is writable")
		}
		t.Fatal("write into a read-only directory succeeded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("partial target left behind: %v", err)
	}
	leftover(t, sub, 0)
}

// TestAtomicWriteRenameFailureCleansTemp forces the rename step to fail
// (target path is a directory) and checks the temp file is removed.
func TestAtomicWriteRenameFailureCleansTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "is-a-dir")
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWrite(path, []byte("data")); err == nil {
		t.Fatal("rename onto a non-empty path class succeeded unexpectedly")
	}
	leftover(t, dir, 1) // only the directory itself
}

// leftover fails the test unless dir holds exactly want entries — any
// extra entry is a leaked temp file.
func leftover(t *testing.T, dir string, want int) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != want {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want %d entries", names, want)
	}
}
