package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalParse hammers the reader with hostile and torn journals.
// Parse must never panic or allocate unboundedly: any input either
// parses (possibly with a torn tail) or returns an error. The seed
// corpus includes the sample journal truncated at every byte offset of
// its final record — the normal crash signature.
func FuzzJournalParse(f *testing.F) {
	sample := func() []byte {
		var buf bytes.Buffer
		for _, rec := range []Record{
			{Op: OpCampaign, Key: "camp", Points: 2},
			{Op: OpStart, Key: "a", Attempt: 1},
			{Op: OpDone, Key: "a", Attempt: 1, Outcome: OutcomeOK,
				Hash: HashResult([]byte(`{"id":0}`)), Result: []byte(`{"id":0}`)},
			{Op: OpStart, Key: "b", Attempt: 1},
		} {
			line, err := frame(rec)
			if err != nil {
				f.Fatal(err)
			}
			buf.Write(line)
		}
		return buf.Bytes()
	}()
	f.Add([]byte{})
	f.Add(sample)
	// Truncation at every byte offset of the final record.
	lastStart := bytes.LastIndexByte(bytes.TrimSuffix(sample, []byte("\n")), '\n') + 1
	for cut := lastStart; cut <= len(sample); cut++ {
		f.Add(sample[:cut])
	}
	f.Add([]byte("j1 deadbeef {}\n"))
	f.Add([]byte("j1 00000000 not-json\n"))
	f.Add([]byte("garbage with no frame at all"))
	f.Add(bytes.Repeat([]byte("j1 "), 1000))

	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := Parse(data)
		if err != nil {
			return
		}
		if log == nil {
			t.Fatal("nil log without error")
		}
		if log.ValidLen > int64(len(data)) {
			t.Fatalf("valid length %d beyond input %d", log.ValidLen, len(data))
		}
		if len(log.Done) > log.Records {
			t.Fatalf("%d done records out of %d total", len(log.Done), log.Records)
		}
		// The valid prefix must re-parse to the same state with no tail.
		re, err := Parse(data[:log.ValidLen])
		if err != nil {
			t.Fatalf("valid prefix failed to re-parse: %v", err)
		}
		if re.TornTail || re.Records != log.Records || len(re.Done) != len(log.Done) {
			t.Fatalf("prefix re-parse drifted: %+v vs %+v", re, log)
		}
	})
}
