// Package journal is the crash-safety substrate under long sweep
// campaigns: an append-only write-ahead journal of per-point execution
// records, a reader that tolerates the torn tail a SIGKILL leaves behind,
// and an atomic file writer for final artifacts.
//
// The journal is a text file of independent, CRC-framed records, one per
// line:
//
//	j1 <crc32c-hex8> <record-json>\n
//
// Records are appended in execution order: one campaign header naming the
// point set, then a start record per attempt and one fsync'd done record
// per finished point carrying the point's full serialised result and its
// SHA-256 outcome hash. Because every record is self-framed and done
// records are durable before the next point is dispatched, a process
// killed at ANY byte offset leaves a journal whose valid prefix is exactly
// the set of completed points — the half-written last record is the normal
// crash signature, not corruption, and Load drops it silently. A framing
// or checksum failure anywhere before the tail IS corruption and comes
// back as an error.
//
// The journal deliberately stores results, not just outcome hashes: a
// resumed campaign re-serialises completed points from their journal
// records, so the final artifacts are byte-identical to an uninterrupted
// run without re-simulating anything.
package journal

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// Op is a record's type tag.
type Op string

const (
	// OpCampaign is the journal header: the campaign key (a hash of the
	// fully-expanded point set) and the point count.
	OpCampaign Op = "campaign"
	// OpStart marks one execution attempt of a point as in flight. A start
	// without a matching done means the process died mid-point; resume
	// re-runs it.
	OpStart Op = "start"
	// OpDone is the durable per-point outcome: attempt count, outcome
	// class, violation kind if any, outcome hash and the full result.
	OpDone Op = "done"
)

// Outcome classifies a done record.
type Outcome string

const (
	// OutcomeOK is a clean result.
	OutcomeOK Outcome = "ok"
	// OutcomeFailed is a transient failure that exhausted its retry
	// budget (wall-clock budget, barrier stall, recovered panic).
	OutcomeFailed Outcome = "failed"
	// OutcomeQuarantined is a deterministic failure (deadlock,
	// conservation, invalid configuration): retrying cannot change it, so
	// the point is quarantined on its first attempt.
	OutcomeQuarantined Outcome = "quarantined"
)

// Record is one journal entry. Unused fields stay empty per Op.
type Record struct {
	Op  Op     `json:"op"`
	Key string `json:"key"`
	// Points is the campaign's point count (OpCampaign only).
	Points int `json:"points,omitempty"`
	// Attempt is the 1-based execution attempt (OpStart: the attempt
	// being dispatched; OpDone: the attempt that produced the outcome).
	Attempt int `json:"attempt,omitempty"`
	// Outcome, Kind and Hash describe a done record: the outcome class,
	// the guard violation kind of a failed/quarantined point, and the
	// SHA-256 of Result.
	Outcome Outcome `json:"outcome,omitempty"`
	Kind    string  `json:"kind,omitempty"`
	Hash    string  `json:"hash,omitempty"`
	// Result is the point's full serialised result (OpDone only).
	Result json.RawMessage `json:"result,omitempty"`
}

// HashResult returns the outcome hash of a serialised result.
func HashResult(result []byte) string {
	sum := sha256.Sum256(result)
	return hex.EncodeToString(sum[:])
}

// framePrefix tags every journal line with the format version.
const framePrefix = "j1 "

// crcTable is the Castagnoli table shared by framing and verification.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxRecordBytes bounds one framed record so a hostile or garbage file
// cannot make the reader allocate without limit while decoding a line.
const maxRecordBytes = 64 << 20

// frame renders a record as one journal line (including the newline).
func frame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: marshal record: %w", err)
	}
	line := make([]byte, 0, len(framePrefix)+9+len(payload)+1)
	line = append(line, framePrefix...)
	var crc [4]byte
	sum := crc32.Checksum(payload, crcTable)
	crc[0], crc[1], crc[2], crc[3] = byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum)
	line = hex.AppendEncode(line, crc[:])
	line = append(line, ' ')
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// parseLine decodes one complete journal line (without its newline).
func parseLine(line []byte) (Record, error) {
	var rec Record
	if len(line) > maxRecordBytes {
		return rec, fmt.Errorf("journal: %d-byte record exceeds the %d limit", len(line), maxRecordBytes)
	}
	if !bytes.HasPrefix(line, []byte(framePrefix)) {
		return rec, fmt.Errorf("journal: record lacks the %q frame", framePrefix)
	}
	rest := line[len(framePrefix):]
	if len(rest) < 9 || rest[8] != ' ' {
		return rec, fmt.Errorf("journal: truncated frame header")
	}
	crcBytes, err := hex.DecodeString(string(rest[:8]))
	if err != nil {
		return rec, fmt.Errorf("journal: bad checksum field: %w", err)
	}
	payload := rest[9:]
	want := uint32(crcBytes[0])<<24 | uint32(crcBytes[1])<<16 | uint32(crcBytes[2])<<8 | uint32(crcBytes[3])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return rec, fmt.Errorf("journal: checksum mismatch (record torn or corrupted)")
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("journal: record JSON: %w", err)
	}
	switch rec.Op {
	case OpCampaign, OpStart, OpDone:
	default:
		return rec, fmt.Errorf("journal: unknown record op %q", rec.Op)
	}
	if rec.Key == "" {
		return rec, fmt.Errorf("journal: record without a key")
	}
	if rec.Op == OpDone {
		switch rec.Outcome {
		case OutcomeOK, OutcomeFailed, OutcomeQuarantined:
		default:
			return rec, fmt.Errorf("journal: done record with outcome %q", rec.Outcome)
		}
		if rec.Hash != HashResult(rec.Result) {
			return rec, fmt.Errorf("journal: done record hash does not match its result")
		}
	}
	return rec, nil
}

// Log is the replayable state a journal file parses into.
type Log struct {
	// Campaign is the header record (nil on an empty journal).
	Campaign *Record
	// Done maps point key -> the latest done record.
	Done map[string]Record
	// Attempts maps point key -> the highest attempt number seen across
	// start and done records; resume continues numbering from here.
	Attempts map[string]int
	// Records counts valid records parsed.
	Records int
	// TornTail reports that a trailing half-written record was dropped —
	// the normal signature of a killed process, not an error.
	TornTail bool
	// ValidLen is the byte length of the valid prefix. Appending must
	// first truncate the file to this length so the torn tail never
	// corrupts the records written after resume.
	ValidLen int64
}

// Completed reports whether key has a durable done record.
func (l *Log) Completed(key string) bool {
	_, ok := l.Done[key]
	return ok
}

// Parse decodes a journal image. The last record — complete or not — is
// allowed to be torn (dropped, TornTail set); any earlier framing or
// checksum failure is corruption and returns an error. Parse never
// panics, whatever the input (FuzzJournalParse pins this).
func Parse(data []byte) (*Log, error) {
	log := &Log{Done: map[string]Record{}, Attempts: map[string]int{}}
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// No trailing newline: the tail record never finished writing.
			log.TornTail = true
			break
		}
		line := data[off : off+nl]
		rec, err := parseLine(line)
		if err != nil {
			if off+nl+1 == len(data) || !haveMoreRecords(data[off+nl+1:]) {
				// The failure sits on the final record: a torn write, the
				// normal crash case.
				log.TornTail = true
				break
			}
			return nil, fmt.Errorf("journal: record %d: %w", log.Records+1, err)
		}
		log.apply(rec)
		off += nl + 1
		log.ValidLen = int64(off)
	}
	return log, nil
}

// haveMoreRecords reports whether any complete line follows — used to
// distinguish a torn final record from mid-file corruption.
func haveMoreRecords(rest []byte) bool {
	return bytes.IndexByte(rest, '\n') >= 0
}

// apply folds one record into the log state.
func (l *Log) apply(rec Record) {
	l.Records++
	switch rec.Op {
	case OpCampaign:
		if l.Campaign == nil {
			c := rec
			l.Campaign = &c
		}
	case OpStart:
		if rec.Attempt > l.Attempts[rec.Key] {
			l.Attempts[rec.Key] = rec.Attempt
		}
	case OpDone:
		l.Done[rec.Key] = rec
		if rec.Attempt > l.Attempts[rec.Key] {
			l.Attempts[rec.Key] = rec.Attempt
		}
	}
}

// maxJournalBytes bounds how much of a journal Load reads; a campaign
// journal is a few KB per point, so anything near this is not ours.
const maxJournalBytes = 1 << 30

// Load reads and parses a journal file. A missing file is an empty log,
// so `-resume` on a first run simply starts fresh.
func Load(path string) (*Log, error) {
	st, err := os.Stat(path)
	if os.IsNotExist(err) {
		return &Log{Done: map[string]Record{}, Attempts: map[string]int{}}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if st.Size() > maxJournalBytes {
		return nil, fmt.Errorf("journal: %s is %d bytes, beyond the %d limit", path, st.Size(), maxJournalBytes)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	log, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("journal: %s: %w", path, err)
	}
	return log, nil
}

// Writer appends records to a journal file. Append and Done are safe for
// concurrent use by sweep workers.
type Writer struct {
	mu sync.Mutex
	f  *os.File
}

// Create opens a fresh journal, refusing to overwrite one that already
// holds records: clobbering a resumable journal by omitting -resume must
// be an explicit decision, not an accident.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("journal: %s exists; resume it or remove it first", path)
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Writer{f: f}, nil
}

// Resume opens an existing journal for appending, first truncating the
// torn tail the log identified so new records never land after garbage.
func Resume(path string, log *Log) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := f.Truncate(log.ValidLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(log.ValidLen, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Writer{f: f}, nil
}

// append frames and writes one record, optionally fsyncing it.
func (w *Writer) append(rec Record, sync bool) error {
	line, err := frame(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	return nil
}

// Campaign writes the fsync'd journal header.
func (w *Writer) Campaign(key string, points int) error {
	return w.append(Record{Op: OpCampaign, Key: key, Points: points}, true)
}

// Start marks one point attempt as in flight. Start records are advisory
// (a point without a done record re-runs either way), so they are not
// individually fsync'd; the next Done flushes them.
func (w *Writer) Start(key string, attempt int) error {
	return w.append(Record{Op: OpStart, Key: key, Attempt: attempt}, false)
}

// Done writes one point's durable outcome: the record is fsync'd before
// Done returns, so a completed point can never be lost to a crash.
func (w *Writer) Done(key string, attempt int, outcome Outcome, kind string, result []byte) error {
	return w.append(Record{
		Op: OpDone, Key: key, Attempt: attempt, Outcome: outcome, Kind: kind,
		Hash: HashResult(result), Result: json.RawMessage(result),
	}, true)
}

// Close flushes and closes the journal.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("journal: sync: %w", err)
	}
	return w.f.Close()
}
