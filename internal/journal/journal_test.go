package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSample journals one campaign with two completed points and one
// in-flight attempt, returning the file path.
func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Campaign("camp-1", 3); err != nil {
		t.Fatal(err)
	}
	if err := w.Start("p0", 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Done("p0", 1, OutcomeOK, "", []byte(`{"id":0}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Start("p1", 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Done("p1", 2, OutcomeQuarantined, "deadlock-horizon", []byte(`{"id":1,"err":"guard"}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Start("p2", 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	path := writeSample(t)
	log, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.Campaign == nil || log.Campaign.Key != "camp-1" || log.Campaign.Points != 3 {
		t.Fatalf("campaign header: %+v", log.Campaign)
	}
	if !log.Completed("p0") || !log.Completed("p1") || log.Completed("p2") {
		t.Fatalf("completion set wrong: %v", log.Done)
	}
	if got := log.Done["p1"]; got.Outcome != OutcomeQuarantined || got.Kind != "deadlock-horizon" {
		t.Fatalf("p1 done record: %+v", got)
	}
	if string(log.Done["p0"].Result) != `{"id":0}` {
		t.Fatalf("p0 result: %s", log.Done["p0"].Result)
	}
	if log.Attempts["p1"] != 2 || log.Attempts["p2"] != 1 {
		t.Fatalf("attempts: %v", log.Attempts)
	}
	if log.TornTail {
		t.Fatal("clean journal reported a torn tail")
	}
	st, _ := os.Stat(path)
	if log.ValidLen != st.Size() {
		t.Fatalf("valid length %d, file is %d", log.ValidLen, st.Size())
	}
}

func TestLoadMissingIsEmpty(t *testing.T) {
	log, err := Load(filepath.Join(t.TempDir(), "nope.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if log.Records != 0 || log.Campaign != nil || log.TornTail {
		t.Fatalf("missing journal not empty: %+v", log)
	}
}

// TestTruncationAtEveryOffset is the kill-anywhere property at the
// journal layer: cutting the file at ANY byte offset must parse without
// error, keep every record before the cut, and at most drop the torn one.
func TestTruncationAtEveryOffset(t *testing.T) {
	path := writeSample(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(data); cut++ {
		log, err := Parse(data[:cut])
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if log.Records > full.Records {
			t.Fatalf("cut at %d: %d records from a %d-record journal", cut, log.Records, full.Records)
		}
		if cut < len(data) && log.Records < full.Records && !log.TornTail && int(log.ValidLen) != cut {
			t.Fatalf("cut at %d: dropped records without a torn tail", cut)
		}
		// A record that parsed must be bit-exact.
		for key, rec := range log.Done {
			want := full.Done[key]
			if rec.Hash != want.Hash || !bytes.Equal(rec.Result, want.Result) {
				t.Fatalf("cut at %d: record %s drifted", cut, key)
			}
		}
		if int(log.ValidLen) > cut {
			t.Fatalf("cut at %d: valid length %d beyond the data", cut, log.ValidLen)
		}
	}
}

// TestMidFileCorruptionRejected: a flipped byte anywhere before the tail
// is corruption, not a torn write, and must surface as an error.
func TestMidFileCorruptionRejected(t *testing.T) {
	path := writeSample(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the first record's payload.
	first := bytes.IndexByte(data, '\n')
	corrupt := append([]byte(nil), data...)
	corrupt[first-2] ^= 0xFF
	if _, err := Parse(corrupt); err == nil {
		t.Fatal("mid-file corruption parsed cleanly")
	}
}

// TestTornTailTruncatedOnResume: resuming truncates the torn tail so
// appended records follow the valid prefix directly.
func TestTornTailTruncatedOnResume(t *testing.T) {
	path := writeSample(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through its final record.
	torn := data[:len(data)-7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	log, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !log.TornTail {
		t.Fatal("chopped journal did not report a torn tail")
	}
	w, err := Resume(path, log)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Done("p2", 1, OutcomeOK, "", []byte(`{"id":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	relog, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if relog.TornTail || !relog.Completed("p2") || relog.Records != log.Records+1 {
		t.Fatalf("resumed journal state: %+v", relog)
	}
}

// TestCreateRefusesExisting: a fresh journal must never clobber a
// resumable one.
func TestCreateRefusesExisting(t *testing.T) {
	path := writeSample(t)
	if _, err := Create(path); err == nil || !strings.Contains(err.Error(), "resume") {
		t.Fatalf("Create over an existing journal: %v", err)
	}
}

// TestHashMismatchRejected: a done record whose result no longer matches
// its hash is treated as torn at the tail and corruption elsewhere.
func TestHashMismatchRejected(t *testing.T) {
	rec := Record{Op: OpDone, Key: "k", Attempt: 1, Outcome: OutcomeOK,
		Hash: HashResult([]byte(`{"id":9}`)), Result: []byte(`{"id":0}`)}
	line, err := frame(rec)
	if err != nil {
		t.Fatal(err)
	}
	log, err := Parse(line)
	if err != nil {
		t.Fatal(err)
	}
	if log.Records != 0 || !log.TornTail {
		t.Fatalf("tail hash mismatch not dropped as torn: %+v", log)
	}
	// The same record before a valid one is corruption.
	ok, err := frame(Record{Op: OpStart, Key: "k", Attempt: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(append(append([]byte(nil), line...), ok...)); err == nil {
		t.Fatal("mid-file hash mismatch parsed cleanly")
	}
}
