// Package layout pins the MPARM-like system memory map shared by the
// platform builder, the benchmark programs and the trace translator.
//
// Each core owns a private, cacheable RAM; all cores see one uncacheable
// shared RAM and a bank of hardware test-and-set semaphores (uncacheable —
// there is no coherence protocol, exactly as in the paper's AMBA platform).
package layout

import "noctg/internal/ocp"

const (
	// PrivBase is core 0's private memory base; core i's base is
	// PrivBase + i·PrivStride.
	PrivBase uint32 = 0x0100_0000
	// PrivStride separates consecutive cores' private regions.
	PrivStride uint32 = 0x0010_0000
	// PrivSize is the actual private RAM size per core.
	PrivSize uint32 = 0x0002_0000 // 128 KiB
	// SharedBase locates the system-shared RAM.
	SharedBase uint32 = 0x0800_0000
	// SharedSize is the shared RAM size.
	SharedSize uint32 = 0x0004_0000 // 256 KiB
	// SemBase locates the hardware semaphore bank.
	SemBase uint32 = 0x0900_0000
	// SemCount is the number of semaphores in the bank.
	SemCount = 32
)

// PrivBaseFor returns core id's private memory base address.
func PrivBaseFor(id int) uint32 { return PrivBase + uint32(id)*PrivStride }

// PrivRange returns core id's private address range.
func PrivRange(id int) ocp.AddrRange {
	return ocp.AddrRange{Base: PrivBaseFor(id), Size: PrivSize}
}

// SharedRange returns the shared memory address range.
func SharedRange() ocp.AddrRange {
	return ocp.AddrRange{Base: SharedBase, Size: SharedSize}
}

// SemRange returns the semaphore bank address range.
func SemRange() ocp.AddrRange {
	return ocp.AddrRange{Base: SemBase, Size: SemCount * 4}
}

// SemAddr returns the address of semaphore i.
func SemAddr(i int) uint32 { return SemBase + uint32(i)*4 }
