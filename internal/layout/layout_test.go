package layout

import "testing"

func TestPrivateRegionsDisjoint(t *testing.T) {
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			if PrivRange(i).Overlaps(PrivRange(j)) {
				t.Fatalf("private ranges %d and %d overlap", i, j)
			}
		}
	}
}

func TestSystemRegionsDisjoint(t *testing.T) {
	if SharedRange().Overlaps(SemRange()) {
		t.Fatal("shared overlaps semaphores")
	}
	for i := 0; i < 16; i++ {
		if PrivRange(i).Overlaps(SharedRange()) || PrivRange(i).Overlaps(SemRange()) {
			t.Fatalf("private range %d overlaps a system range", i)
		}
	}
}

func TestSemAddr(t *testing.T) {
	if SemAddr(0) != SemBase || SemAddr(3) != SemBase+12 {
		t.Fatal("semaphore addressing")
	}
	if !SemRange().Contains(SemAddr(SemCount - 1)) {
		t.Fatal("last semaphore outside bank")
	}
}

func TestPrivBaseStride(t *testing.T) {
	if PrivBaseFor(0) != PrivBase {
		t.Fatal("core 0 base")
	}
	if PrivBaseFor(2)-PrivBaseFor(1) != PrivStride {
		t.Fatal("stride")
	}
	if PrivSize > PrivStride {
		t.Fatal("private size exceeds stride")
	}
}
