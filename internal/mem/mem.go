// Package mem provides the system slaves of the MPARM-like platform:
// word-addressed RAM (used for both private and shared memories) and the
// hardware test-and-set semaphore bank that drives the paper's reactive
// polling scenarios (Figure 2(b), Figure 3).
package mem

import (
	"fmt"

	"noctg/internal/ocp"
)

// RAM is a word-addressed memory slave with a configurable access time.
// Private memories and the shared memory differ only in the address range
// the platform maps them at and in cacheability.
type RAM struct {
	base  uint32
	words []uint32
	// waitStates is the intrinsic per-access service time in cycles
	// (the paper's "slave access time"). Bursts pay it once per beat.
	waitStates uint64
	name       string
}

// NewRAM builds a RAM of size bytes mapped at base. Size and base must be
// word aligned.
func NewRAM(name string, base, size uint32, waitStates uint64) *RAM {
	if base%4 != 0 || size%4 != 0 || size == 0 {
		panic(fmt.Sprintf("mem: RAM %s base/size must be word aligned and non-zero", name))
	}
	return &RAM{base: base, words: make([]uint32, size/4), waitStates: waitStates, name: name}
}

// Name returns the memory's diagnostic name.
func (r *RAM) Name() string { return r.name }

// Range returns the address range the RAM occupies.
func (r *RAM) Range() ocp.AddrRange {
	return ocp.AddrRange{Base: r.base, Size: uint32(len(r.words) * 4)}
}

// AccessCycles implements ocp.Slave.
func (r *RAM) AccessCycles(req *ocp.Request) uint64 {
	return r.waitStates * uint64(req.Burst)
}

// Perform implements ocp.Slave.
func (r *RAM) Perform(req *ocp.Request) ocp.Response {
	return r.PerformInto(req, make([]uint32, 0, req.Burst))
}

// PerformInto implements ocp.BufferedSlave: read data is appended to dst
// instead of freshly allocated, so interconnects can reuse one buffer per
// port across transactions.
func (r *RAM) PerformInto(req *ocp.Request, dst []uint32) ocp.Response {
	idx, ok := r.index(req.Addr)
	if !ok || idx+req.Burst > len(r.words) {
		return ocp.Response{Err: true}
	}
	switch {
	case req.Cmd.IsRead():
		return ocp.Response{Data: append(dst, r.words[idx:idx+req.Burst]...)}
	case req.Cmd.IsWrite():
		copy(r.words[idx:idx+req.Burst], req.Data)
		return ocp.Response{}
	}
	return ocp.Response{Err: true}
}

// NextWake implements sim.Sleeper: a RAM is purely reactive (it acts only
// inside a fabric-invoked Perform), so it never needs a clock tick of its
// own under any kernel — the invoking fabric is awake whenever an access
// is pending, which is all the event kernel requires.
func (r *RAM) NextWake(uint64) uint64 { return wakeNever }

// wakeNever mirrors sim.WakeNever without importing sim: the passive slaves
// in this package implement the Sleeper method set but are not engine
// devices.
const wakeNever = ^uint64(0)

// PeekWord reads a word directly, bypassing timing — used by program
// loaders, test assertions and functional validation only.
func (r *RAM) PeekWord(addr uint32) uint32 {
	idx, ok := r.index(addr)
	if !ok {
		panic(fmt.Sprintf("mem: PeekWord %#08x outside %s %v", addr, r.name, r.Range()))
	}
	return r.words[idx]
}

// PokeWord writes a word directly, bypassing timing.
func (r *RAM) PokeWord(addr uint32, v uint32) {
	idx, ok := r.index(addr)
	if !ok {
		panic(fmt.Sprintf("mem: PokeWord %#08x outside %s %v", addr, r.name, r.Range()))
	}
	r.words[idx] = v
}

// LoadWords copies words into memory starting at addr (loader path).
func (r *RAM) LoadWords(addr uint32, words []uint32) {
	idx, ok := r.index(addr)
	if !ok || idx+len(words) > len(r.words) {
		panic(fmt.Sprintf("mem: LoadWords %#08x+%d outside %s %v", addr, len(words), r.name, r.Range()))
	}
	copy(r.words[idx:], words)
}

// Clear zeroes the whole memory.
func (r *RAM) Clear() {
	for i := range r.words {
		r.words[i] = 0
	}
}

func (r *RAM) index(addr uint32) (int, bool) {
	if addr < r.base || addr%4 != 0 {
		return 0, false
	}
	idx := int((addr - r.base) / 4)
	if idx >= len(r.words) {
		return 0, false
	}
	return idx, true
}

var _ ocp.Slave = (*RAM)(nil)
var _ ocp.BufferedSlave = (*RAM)(nil)
