package mem

import (
	"testing"
	"testing/quick"

	"noctg/internal/ocp"
)

func TestRAMReadWrite(t *testing.T) {
	r := NewRAM("priv", 0x1000, 64, 1)
	resp := r.Perform(&ocp.Request{Cmd: ocp.Write, Addr: 0x1004, Burst: 1, Data: []uint32{0xdeadbeef}})
	if resp.Err {
		t.Fatal("write failed")
	}
	resp = r.Perform(&ocp.Request{Cmd: ocp.Read, Addr: 0x1004, Burst: 1})
	if resp.Err || resp.Data[0] != 0xdeadbeef {
		t.Fatalf("read back %#x", resp.Data)
	}
}

func TestRAMBurst(t *testing.T) {
	r := NewRAM("priv", 0, 64, 1)
	payload := []uint32{1, 2, 3, 4}
	if resp := r.Perform(&ocp.Request{Cmd: ocp.BurstWrite, Addr: 8, Burst: 4, Data: payload}); resp.Err {
		t.Fatal("burst write failed")
	}
	resp := r.Perform(&ocp.Request{Cmd: ocp.BurstRead, Addr: 8, Burst: 4})
	if resp.Err {
		t.Fatal("burst read failed")
	}
	for i, v := range payload {
		if resp.Data[i] != v {
			t.Fatalf("beat %d = %#x, want %#x", i, resp.Data[i], v)
		}
	}
}

func TestRAMOutOfRange(t *testing.T) {
	r := NewRAM("priv", 0x1000, 16, 0)
	if resp := r.Perform(&ocp.Request{Cmd: ocp.Read, Addr: 0x0ffc, Burst: 1}); !resp.Err {
		t.Fatal("below-base read should fail")
	}
	if resp := r.Perform(&ocp.Request{Cmd: ocp.Read, Addr: 0x1010, Burst: 1}); !resp.Err {
		t.Fatal("past-end read should fail")
	}
	// Burst straddling the end must fail, not partially succeed.
	if resp := r.Perform(&ocp.Request{Cmd: ocp.BurstRead, Addr: 0x100c, Burst: 4}); !resp.Err {
		t.Fatal("straddling burst should fail")
	}
}

func TestRAMAccessCyclesScaleWithBurst(t *testing.T) {
	r := NewRAM("priv", 0, 64, 3)
	if got := r.AccessCycles(&ocp.Request{Cmd: ocp.Read, Burst: 1}); got != 3 {
		t.Fatalf("single access = %d, want 3", got)
	}
	if got := r.AccessCycles(&ocp.Request{Cmd: ocp.BurstRead, Burst: 4}); got != 12 {
		t.Fatalf("burst access = %d, want 12", got)
	}
}

func TestRAMPeekPokeLoad(t *testing.T) {
	r := NewRAM("priv", 0x100, 32, 0)
	r.PokeWord(0x104, 42)
	if r.PeekWord(0x104) != 42 {
		t.Fatal("peek/poke mismatch")
	}
	r.LoadWords(0x108, []uint32{7, 8})
	if r.PeekWord(0x108) != 7 || r.PeekWord(0x10c) != 8 {
		t.Fatal("LoadWords mismatch")
	}
	r.Clear()
	if r.PeekWord(0x104) != 0 {
		t.Fatal("Clear did not zero")
	}
}

func TestRAMRange(t *testing.T) {
	r := NewRAM("x", 0x2000, 0x100, 0)
	want := ocp.AddrRange{Base: 0x2000, Size: 0x100}
	if r.Range() != want {
		t.Fatalf("Range = %v, want %v", r.Range(), want)
	}
	if r.Name() != "x" {
		t.Fatal("name")
	}
}

func TestRAMRandomAccessProperty(t *testing.T) {
	// RAM behaves as a map from word index to last written value.
	r := NewRAM("p", 0, 1024, 0)
	model := make(map[uint32]uint32)
	f := func(idx uint8, val uint32, write bool) bool {
		addr := uint32(idx) * 4
		if write {
			r.Perform(&ocp.Request{Cmd: ocp.Write, Addr: addr, Burst: 1, Data: []uint32{val}})
			model[addr] = val
			return true
		}
		resp := r.Perform(&ocp.Request{Cmd: ocp.Read, Addr: addr, Burst: 1})
		return !resp.Err && resp.Data[0] == model[addr]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSemBankTestAndSet(t *testing.T) {
	s := NewSemBank("sem", 0x9000, 4, 1)
	addr := s.Addr(1)

	// First read of a free semaphore returns 1 and locks it.
	resp := s.Perform(&ocp.Request{Cmd: ocp.Read, Addr: addr, Burst: 1})
	if resp.Err || resp.Data[0] != 1 {
		t.Fatalf("first read = %v, want 1", resp.Data)
	}
	if s.Free(1) {
		t.Fatal("semaphore should now be held")
	}
	// Subsequent reads fail with 0.
	for i := 0; i < 3; i++ {
		resp = s.Perform(&ocp.Request{Cmd: ocp.Read, Addr: addr, Burst: 1})
		if resp.Data[0] != 0 {
			t.Fatalf("poll %d = %v, want 0", i, resp.Data)
		}
	}
	// Unlock with WR 1, then it can be taken again.
	s.Perform(&ocp.Request{Cmd: ocp.Write, Addr: addr, Burst: 1, Data: []uint32{1}})
	if !s.Free(1) {
		t.Fatal("write 1 should unlock")
	}
	resp = s.Perform(&ocp.Request{Cmd: ocp.Read, Addr: addr, Burst: 1})
	if resp.Data[0] != 1 {
		t.Fatal("re-acquire after unlock failed")
	}
	acq, fails, rel := s.Stats()
	if acq != 2 || fails != 3 || rel != 1 {
		t.Fatalf("stats = %d/%d/%d, want 2/3/1", acq, fails, rel)
	}
}

func TestSemBankIndependentSemaphores(t *testing.T) {
	s := NewSemBank("sem", 0, 8, 0)
	s.Perform(&ocp.Request{Cmd: ocp.Read, Addr: s.Addr(2), Burst: 1})
	if !s.Free(3) || s.Free(2) {
		t.Fatal("acquiring one semaphore must not affect others")
	}
}

func TestSemBankWriteZeroLocks(t *testing.T) {
	s := NewSemBank("sem", 0, 1, 0)
	s.Perform(&ocp.Request{Cmd: ocp.Write, Addr: 0, Burst: 1, Data: []uint32{0}})
	if s.Free(0) {
		t.Fatal("write 0 should lock")
	}
}

func TestSemBankRejectsBurstsAndBadAddr(t *testing.T) {
	s := NewSemBank("sem", 0x9000, 2, 0)
	if resp := s.Perform(&ocp.Request{Cmd: ocp.BurstRead, Addr: 0x9000, Burst: 2}); !resp.Err {
		t.Fatal("burst to semaphore bank should fail")
	}
	if resp := s.Perform(&ocp.Request{Cmd: ocp.Read, Addr: 0x9010, Burst: 1}); !resp.Err {
		t.Fatal("out-of-range semaphore read should fail")
	}
}

func TestSemBankMutualExclusionProperty(t *testing.T) {
	// However reads and writes interleave, at most one "holder" exists per
	// semaphore: successful acquires (read→1) strictly alternate with
	// releases for each word.
	f := func(ops []bool) bool {
		s := NewSemBank("sem", 0, 1, 0)
		held := false
		for _, acquire := range ops {
			if acquire {
				resp := s.Perform(&ocp.Request{Cmd: ocp.Read, Addr: 0, Burst: 1})
				got := resp.Data[0] == 1
				if got && held {
					return false // double acquire
				}
				if got {
					held = true
				}
			} else {
				s.Perform(&ocp.Request{Cmd: ocp.Write, Addr: 0, Burst: 1, Data: []uint32{1}})
				held = false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
