package mem

import (
	"fmt"

	"noctg/internal/ocp"
)

// SemBank is the hardware semaphore slave. Its semantics follow the paper's
// Figure 2(b)/Figure 3 polling protocol:
//
//   - A read of a free semaphore returns 1 ("unblocked") and atomically
//     locks it (test-and-set on read).
//   - A read of a held semaphore returns 0 (the poll "Fail").
//   - A write of a non-zero value unlocks the semaphore; a write of zero
//     locks it unconditionally (rarely useful, but keeps writes total).
//
// Masters therefore acquire by polling `RD` until the value 1 comes back,
// and release with `WR 1` — exactly the loop the translator emits as
// `Semchk: Read / If rdreg != tempreg then Semchk`.
type SemBank struct {
	base       uint32
	free       []bool
	waitStates uint64
	name       string

	acquires uint64
	fails    uint64
	releases uint64
}

// NewSemBank builds a bank of n word-addressed semaphores at base, all
// initially free.
func NewSemBank(name string, base uint32, n int, waitStates uint64) *SemBank {
	if base%4 != 0 || n <= 0 {
		panic("mem: SemBank base must be aligned and n positive")
	}
	free := make([]bool, n)
	for i := range free {
		free[i] = true
	}
	return &SemBank{base: base, free: free, waitStates: waitStates, name: name}
}

// Name returns the bank's diagnostic name.
func (s *SemBank) Name() string { return s.name }

// Range returns the address range the bank occupies.
func (s *SemBank) Range() ocp.AddrRange {
	return ocp.AddrRange{Base: s.base, Size: uint32(len(s.free) * 4)}
}

// AccessCycles implements ocp.Slave.
func (s *SemBank) AccessCycles(req *ocp.Request) uint64 {
	return s.waitStates * uint64(req.Burst)
}

// Perform implements ocp.Slave. Burst accesses to the semaphore bank are
// rejected: test-and-set is a single-word operation.
func (s *SemBank) Perform(req *ocp.Request) ocp.Response {
	return s.PerformInto(req, make([]uint32, 0, 1))
}

// PerformInto implements ocp.BufferedSlave. Semaphore polling is the
// hottest read path of the reactive scenarios (Figure 2(b)/Figure 3), so
// poll responses must not allocate.
func (s *SemBank) PerformInto(req *ocp.Request, dst []uint32) ocp.Response {
	if req.Burst != 1 {
		return ocp.Response{Err: true}
	}
	idx, ok := s.index(req.Addr)
	if !ok {
		return ocp.Response{Err: true}
	}
	switch req.Cmd {
	case ocp.Read:
		if s.free[idx] {
			s.free[idx] = false
			s.acquires++
			return ocp.Response{Data: append(dst, 1)}
		}
		s.fails++
		return ocp.Response{Data: append(dst, 0)}
	case ocp.Write:
		if req.Data[0] != 0 {
			s.free[idx] = true
			s.releases++
		} else {
			s.free[idx] = false
		}
		return ocp.Response{}
	}
	return ocp.Response{Err: true}
}

// NextWake implements sim.Sleeper: the bank is purely reactive and never
// needs a clock tick of its own.
func (s *SemBank) NextWake(uint64) uint64 { return wakeNever }

// Free reports whether semaphore i is currently free (test hook).
func (s *SemBank) Free(i int) bool { return s.free[i] }

// Stats returns (successful acquires, failed polls, releases).
func (s *SemBank) Stats() (acquires, fails, releases uint64) {
	return s.acquires, s.fails, s.releases
}

// Addr returns the byte address of semaphore i.
func (s *SemBank) Addr(i int) uint32 {
	if i < 0 || i >= len(s.free) {
		panic(fmt.Sprintf("mem: semaphore index %d out of range", i))
	}
	return s.base + uint32(i*4)
}

func (s *SemBank) index(addr uint32) (int, bool) {
	if addr < s.base || addr%4 != 0 {
		return 0, false
	}
	idx := int((addr - s.base) / 4)
	if idx >= len(s.free) {
		return 0, false
	}
	return idx, true
}

var _ ocp.Slave = (*SemBank)(nil)
var _ ocp.BufferedSlave = (*SemBank)(nil)
