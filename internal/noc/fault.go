package noc

import (
	"fmt"

	"noctg/internal/guard"
)

// This file implements the fabric side of deterministic fault injection
// (guard.FaultPlan): compiled fault tables consulted from the router and
// slave-NI hot paths behind a single nil check, so an uninjected network
// pays one predictable branch per hook site and an injected one stays
// deterministic for every kernel and shard count (activity depends only on
// (node, port, cycle), never on host schedule).

// faultSpan is one half-open active window [from, to).
type faultSpan struct{ from, to uint64 }

func spansActive(spans []faultSpan, cycle uint64) bool {
	for _, s := range spans {
		if cycle >= s.from && cycle < s.to {
			return true
		}
	}
	return false
}

// linkKey identifies a router output (node, dir).
func linkKey(node, dir int) uint32 { return uint32(node)<<3 | uint32(dir) }

// faultSet is a FaultPlan compiled for O(1)-ish hot-path lookup.
type faultSet struct {
	stalls  map[uint32][]faultSpan // keyed by linkKey: blocked outputs
	drops   map[uint32][]faultSpan // keyed by linkKey: dropped deliveries
	freezes map[int][]faultSpan    // keyed by node: frozen slave NIs
	leaks   map[int][]faultSpan    // keyed by node: leaked retirements
}

func (fs *faultSet) stalled(node, dir int, cycle uint64) bool {
	if fs.stalls == nil {
		return false
	}
	return spansActive(fs.stalls[linkKey(node, dir)], cycle)
}

func (fs *faultSet) dropped(node, dir int, cycle uint64) bool {
	if fs.drops == nil {
		return false
	}
	return spansActive(fs.drops[linkKey(node, dir)], cycle)
}

func (fs *faultSet) frozen(node int, cycle uint64) bool {
	if fs.freezes == nil {
		return false
	}
	return spansActive(fs.freezes[node], cycle)
}

func (fs *faultSet) leaked(node int, cycle uint64) bool {
	if fs.leaks == nil {
		return false
	}
	return spansActive(fs.leaks[node], cycle)
}

// dirIndex parses a FaultPlan direction letter into a router port.
func dirIndex(s string) (int, error) {
	switch s {
	case "n":
		return portN, nil
	case "e":
		return portE, nil
	case "s":
		return portS, nil
	case "w":
		return portW, nil
	}
	return 0, fmt.Errorf("noc: unknown link direction %q (want n/e/s/w)", s)
}

var portNames = [numPorts]string{portN: "n", portE: "e", portS: "s", portW: "w", portL: "local"}

// InjectFaults compiles and installs the plan's fabric faults. It
// validates every target (node range, physical link existence, slave
// presence) and rejects shard stalls — those are injected through the
// shard runner (platform.System.InjectFaults routes them). Injection is
// cumulative across calls; faults cannot be removed.
func (n *Network) InjectFaults(plan guard.FaultPlan) error {
	if len(plan.ShardStalls) > 0 {
		return fmt.Errorf("noc: shard stalls are injected through the shard runner, not the fabric")
	}
	fs := n.faults
	if fs == nil {
		fs = &faultSet{}
	}
	link := func(node int, dir string) (uint32, error) {
		if node < 0 || node >= len(n.routers) {
			return 0, fmt.Errorf("noc: fault targets node %d outside mesh of %d", node, len(n.routers))
		}
		d, err := dirIndex(dir)
		if err != nil {
			return 0, err
		}
		if !n.hasLink(n.routers[node], d) {
			return 0, fmt.Errorf("noc: fault targets missing link %s of node %d", dir, node)
		}
		return linkKey(node, d), nil
	}
	slaveAt := func(node int) error {
		if node < 0 || node >= len(n.routers) {
			return fmt.Errorf("noc: fault targets node %d outside mesh of %d", node, len(n.routers))
		}
		if _, ok := n.routers[node].local.(*slaveNI); !ok {
			return fmt.Errorf("noc: fault targets node %d, which has no slave NI", node)
		}
		return nil
	}
	for _, f := range plan.LinkStalls {
		k, err := link(f.Node, f.Dir)
		if err != nil {
			return err
		}
		if fs.stalls == nil {
			fs.stalls = map[uint32][]faultSpan{}
		}
		fs.stalls[k] = append(fs.stalls[k], faultSpan{f.From, f.To})
	}
	for _, f := range plan.FlitDrops {
		k, err := link(f.Node, f.Dir)
		if err != nil {
			return err
		}
		if fs.drops == nil {
			fs.drops = map[uint32][]faultSpan{}
		}
		fs.drops[k] = append(fs.drops[k], faultSpan{f.From, f.To})
	}
	for _, f := range plan.SlaveFreezes {
		if err := slaveAt(f.Node); err != nil {
			return err
		}
		if fs.freezes == nil {
			fs.freezes = map[int][]faultSpan{}
		}
		fs.freezes[f.Node] = append(fs.freezes[f.Node], faultSpan{f.From, f.To})
	}
	for _, f := range plan.PacketLeaks {
		if err := slaveAt(f.Node); err != nil {
			return err
		}
		if fs.leaks == nil {
			fs.leaks = map[int][]faultSpan{}
		}
		fs.leaks[f.Node] = append(fs.leaks[f.Node], faultSpan{f.From, f.To})
	}
	n.faults = fs
	return nil
}
