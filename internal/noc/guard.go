package noc

import (
	"fmt"

	"noctg/internal/guard"
)

// This file implements the fabric side of the guard layer: progress/live
// probes, the conservation invariant scan, and the structured diagnostic
// dump. The scan is allocation-free after its first call (the per-domain
// tally scratch is cached on the Network) so the single-engine watchdog
// can run it on a cycle cadence; message formatting happens only when an
// invariant is actually broken.
//
// Validity: on an unpartitioned network every invariant holds at any
// inter-cycle point. On a partitioned network the scan must run at a
// quiescent segment boundary (workers joined, import rings drained) —
// exactly where the shard runner calls it.

// RetiredPackets returns the monotone count of packets retired to their
// pools since construction — the guard layer's progress signal. Unlike the
// registry stats it is never reset. Valid at quiescent points.
func (n *Network) RetiredPackets() uint64 {
	v := n.st.retired
	for _, rg := range n.regions {
		v += rg.st.retired
	}
	return v
}

// LivePackets returns the number of packets currently in flight across all
// pool domains. Valid at quiescent points.
func (n *Network) LivePackets() int {
	v := n.st.livePackets
	for _, rg := range n.regions {
		v += rg.st.livePackets
	}
	return v
}

// Retired returns the region's own monotone retirement count. Per-domain
// counts can lag or lead the packets the region issued (retirement happens
// where the packet dies), but their sum is the global count — which is all
// the shard runner's SPMD deadlock check sums them for.
func (rg *Region) Retired() uint64 { return rg.st.retired }

// Live returns the region pool's outstanding packet count. Per-domain
// values can go negative (a packet may retire in a different domain than
// it was issued from); only the sum across domains is meaningful.
func (rg *Region) Live() int { return rg.st.livePackets }

// domainTally accumulates one pool domain's observed flit and packet
// references during a scan.
type domainTally struct {
	flits int // flits resident in the domain's router FIFOs
	refs  int // live packet references (tail flits + NI-held packets)
}

// countTails returns the number of tail flits in the FIFO. Each live
// packet is reachable through exactly one tail reference (its other flits
// ride the same packet pointer), which is what makes pool mass countable.
func (f *fifo) countTails() int {
	t := 0
	for i := 0; i < f.n; i++ {
		if f.buf[(f.head+i)%len(f.buf)].tail() {
			t++
		}
	}
	return t
}

// scanTally returns the cached tally scratch sized for the current
// partition (index 0 is the base domain, 1+i region i).
func (n *Network) scanTally() []domainTally {
	want := 1 + len(n.regions)
	if cap(n.guardTally) < want {
		n.guardTally = make([]domainTally, want)
	}
	n.guardTally = n.guardTally[:want]
	for i := range n.guardTally {
		n.guardTally[i] = domainTally{}
	}
	return n.guardTally
}

// domainIndex maps a pool domain to its tally slot.
func (n *Network) domainIndex(st *shardState) int {
	if st == &n.st {
		return 0
	}
	return 1 + st.index
}

// CheckInvariants scans the conservation invariants and returns the first
// violation found, or nil. The returned violation's Cycle is left 0 for
// the caller to stamp (the scan has no cycle source of its own at
// quiescent points).
//
// Invariants checked:
//
//   - flit conservation: each domain's residentFlits equals its routers'
//     total FIFO occupancy;
//   - link counters: each cut link's per-VC pushed/popped/credit counters
//     are mutually consistent and account exactly for the FIFO they feed
//     (ring empty at boundaries);
//   - pool mass: live packet references (tail flits in FIFOs plus packets
//     held by NIs) equal the pools' outstanding count, and pooled packets
//     all belong to their pool.
func (n *Network) CheckInvariants() *guard.Violation {
	tally := n.scanTally()
	for _, r := range n.routers {
		d := &tally[n.domainIndex(r.st)]
		for p := 0; p < numPorts; p++ {
			for v := 0; v < numVC; v++ {
				q := &r.in[p][v]
				d.flits += q.len()
				d.refs += q.countTails()
			}
		}
	}
	for _, m := range n.masters {
		if m.pkt != nil {
			tally[n.domainIndex(m.st)].refs++
		}
	}
	for _, s := range n.slaves {
		d := &tally[n.domainIndex(s.st)]
		d.refs += len(s.queue) - s.qhead
		if s.current != nil {
			d.refs++
		}
		if s.out != nil {
			d.refs++
		}
	}

	// Flit conservation per domain.
	if n.st.residentFlits != tally[0].flits {
		return conservationViolation(-1, n.st.residentFlits, tally[0].flits)
	}
	for _, rg := range n.regions {
		if rg.st.residentFlits != tally[1+rg.index].flits {
			return conservationViolation(rg.index, rg.st.residentFlits, tally[1+rg.index].flits)
		}
	}

	// Cut-link counters (partitioned networks only). At a boundary the
	// export ring is drained and the exporter's credit snapshot matches the
	// importer's pop count; the push/pop difference is exactly the fed
	// FIFO's occupancy.
	for _, rg := range n.regions {
		for _, cl := range rg.exports {
			if cl.ringHead != cl.ringTail {
				return &guard.Violation{Kind: guard.KindConservation, Shard: rg.index,
					Msg: fmt.Sprintf("cut link into node %d port %s: %d flits left in the export ring at a boundary",
						cl.dst.id, portNames[cl.inPort], cl.ringTail-cl.ringHead)}
			}
			for vc := 0; vc < numVC; vc++ {
				inQ := cl.dst.in[cl.inPort][vc].len()
				switch {
				case cl.popped[vc] > cl.pushed[vc]:
					return linkViolation(cl, vc, "more flits popped than pushed")
				case cl.credit[vc] != cl.popped[vc]:
					return linkViolation(cl, vc, "credit snapshot out of date at a boundary")
				case cl.pushed[vc]-cl.popped[vc] != uint64(inQ):
					return linkViolation(cl, vc, fmt.Sprintf("counters imply %d in-flight flits but the fed FIFO holds %d",
						cl.pushed[vc]-cl.popped[vc], inQ))
				}
			}
		}
	}

	// Pool mass: global live references vs. global outstanding count, and
	// per-pool home integrity.
	refs, live := 0, 0
	for i := range tally {
		refs += tally[i].refs
	}
	live += n.st.livePackets
	for _, rg := range n.regions {
		live += rg.st.livePackets
	}
	if refs != live {
		return &guard.Violation{Kind: guard.KindPoolMass, Shard: -1,
			Msg: fmt.Sprintf("pools report %d packets in flight but %d live references exist "+
				"(leaked or double-recycled packets)", live, refs)}
	}
	if v := poolHomeViolation(&n.st, -1); v != nil {
		return v
	}
	for _, rg := range n.regions {
		if v := poolHomeViolation(&rg.st, rg.index); v != nil {
			return v
		}
	}
	return nil
}

func conservationViolation(shard, resident, observed int) *guard.Violation {
	return &guard.Violation{Kind: guard.KindConservation, Shard: shard,
		Msg: fmt.Sprintf("domain accounts %d resident flits but its router FIFOs hold %d "+
			"(flits created or destroyed in flight)", resident, observed)}
}

func linkViolation(cl *cutLink, vc int, what string) *guard.Violation {
	return &guard.Violation{Kind: guard.KindConservation, Shard: -1,
		Msg: fmt.Sprintf("cut link into node %d port %s vc %s: %s (pushed %d, popped %d, credit %d)",
			cl.dst.id, portNames[cl.inPort], vcNames[vc], what, cl.pushed[vc], cl.popped[vc], cl.credit[vc])}
}

func poolHomeViolation(st *shardState, shard int) *guard.Violation {
	for _, p := range st.pktPool {
		if p.home != st {
			return &guard.Violation{Kind: guard.KindPoolMass, Shard: shard,
				Msg: "a pooled packet belongs to a different pool domain"}
		}
	}
	return nil
}

// Diagnose captures the structured dump attached to violations: every
// non-empty router FIFO, every non-idle master, cut-link counters and
// pool accounting. It allocates freely — it runs once, after a violation.
// The shard runner appends per-shard window state on top.
func (n *Network) Diagnose(cycle uint64) *guard.Diagnostic {
	d := &guard.Diagnostic{
		Cycle:       cycle,
		LivePackets: n.LivePackets(),
	}
	d.ResidentFlits = n.st.residentFlits
	for _, rg := range n.regions {
		d.ResidentFlits += rg.st.residentFlits
	}
	for _, r := range n.routers {
		for p := 0; p < numPorts; p++ {
			for v := 0; v < numVC; v++ {
				q := &r.in[p][v]
				if q.empty() {
					continue
				}
				head := q.front()
				age := uint64(0)
				if cycle > head.arrived {
					age = cycle - head.arrived
				}
				d.Queues = append(d.Queues, guard.QueueDiag{
					Node: r.id, Port: portNames[p], VC: vcNames[v], Flits: q.len(),
					HeadSrc: head.pkt.src, HeadDst: head.pkt.dst, HeadAge: age,
				})
			}
		}
	}
	stateNames := map[masterNIState]string{niIdle: "idle", niInjecting: "injecting", niInjected: "injected"}
	for _, m := range n.masters {
		if m.idle() {
			continue
		}
		state := stateNames[m.state]
		if m.busyRead {
			state += "+awaiting-read"
		}
		d.Masters = append(d.Masters, guard.MasterDiag{Node: m.node, State: state, ReqStart: m.reqStart})
	}
	for _, rg := range n.regions {
		for _, cl := range rg.exports {
			for vc := 0; vc < numVC; vc++ {
				if cl.pushed[vc] == 0 && cl.popped[vc] == 0 {
					continue
				}
				d.Links = append(d.Links, guard.LinkDiag{
					Node: cl.dst.id, Port: portNames[cl.inPort], VC: vcNames[vc],
					Pushed: cl.pushed[vc], Popped: cl.popped[vc], Credit: cl.credit[vc],
					Ring: cl.ringTail - cl.ringHead,
				})
			}
		}
	}
	addPool := func(st *shardState, domain int) {
		returns := 0
		for _, ret := range st.returns {
			returns += len(ret)
		}
		d.Pools = append(d.Pools, guard.PoolDiag{
			Domain: domain, Live: st.livePackets, Pooled: len(st.pktPool), Returns: returns,
		})
	}
	addPool(&n.st, -1)
	for _, rg := range n.regions {
		addPool(&rg.st, rg.index)
	}
	return d
}
