package noc

import (
	"fmt"

	"noctg/internal/ocp"
	"noctg/internal/sim"
)

type masterNIState int

const (
	niIdle masterNIState = iota
	niInjecting
	niInjected
)

// masterNI packetises OCP transactions from one master and reassembles the
// responses. It implements ocp.MasterPort. A request is "accepted" once its
// tail flit has entered the local router — so acceptance latency reflects
// local congestion, as on a real NI.
type masterNI struct {
	net  *Network
	node int
	// st is the pool/stats domain charged for this NI's packets (the
	// network's own, or its region's after Partition); now is the cycle
	// source (the shard engine's after Partition + BindCycleSource); rg is
	// the owning region, nil on an unpartitioned network.
	st  *shardState
	now func() uint64
	rg  *Region

	state    masterNIState
	req      ocp.Request
	pkt      *packet
	nextFlit int

	busyRead bool
	resp     ocp.Response
	respAt   uint64
	hasResp  bool
	// rxFlits counts response flits of a partially received packet.
	rxFlits int
	// respData is the NI-owned copy of the latest read response payload:
	// each master has at most one outstanding read, so one reusable buffer
	// per NI suffices and the response packet can be recycled on arrival.
	respData []uint32

	// reqStart is the cycle the current read was latched for injection;
	// lat records latch-to-delivery read latency per NI — the network's
	// own view of transaction latency, including local injection
	// backpressure (registered via Network.RegisterStats).
	reqStart uint64
	lat      *sim.Histogram
}

// TryRequest implements ocp.MasterPort.
func (m *masterNI) TryRequest(req *ocp.Request) bool {
	switch m.state {
	case niIdle:
		if m.busyRead {
			return false
		}
		if err := req.Validate(); err != nil {
			panic(fmt.Sprintf("noc: master at node %d issued invalid request: %v", m.node, err))
		}
		// A new injection (or the locally synthesised error response below)
		// ends a fabric sleep: put the network (or this NI's shard region)
		// back into the event kernel's tick set before any state changes
		// land.
		m.wakeUp()
		m.req = *req
		m.reqStart = m.now()
		dst := m.net.decode(req.Addr)
		if dst == nil {
			// No slave: synthesise an error response locally.
			m.state = niInjected
			m.st.decodeErrors.Inc()
			if req.Cmd.IsRead() {
				m.resp = ocp.Response{Err: true}
				m.respAt = m.now() + m.net.cfg.RespCycles
				m.hasResp = true
			}
			return false
		}
		pkt := m.st.getPacket()
		pkt.src, pkt.dst = m.node, dst.node
		pkt.req = m.req
		if len(m.req.Data) > 0 {
			// Copy the write payload into packet-owned storage: the master
			// may reuse its buffer as soon as the request is accepted, while
			// the packet crosses the mesh long after that.
			pkt.dataBuf = append(pkt.dataBuf[:0], m.req.Data...)
			pkt.req.Data = pkt.dataBuf
		}
		pkt.length = reqFlits(&m.req)
		m.pkt = pkt
		m.nextFlit = 0
		m.state = niInjecting
		return false
	case niInjecting:
		return false
	case niInjected:
		m.state = niIdle
		if m.req.Cmd.IsRead() {
			m.busyRead = true
		}
		return true
	}
	return false
}

// TakeResponse implements ocp.MasterPort. The returned response is backed
// by NI-owned storage that the next transaction reuses (see the
// ocp.MasterPort contract).
func (m *masterNI) TakeResponse() (*ocp.Response, bool) {
	if !m.hasResp || m.now() < m.respAt {
		return nil, false
	}
	m.hasResp = false
	m.busyRead = false
	m.lat.Observe(m.now() - m.reqStart)
	return &m.resp, true
}

// Busy implements ocp.MasterPort.
func (m *masterNI) Busy() bool { return m.busyRead || m.state != niIdle }

// niNapThreshold mirrors the bus's nap threshold: delivery horizons this
// short cost more in wake-schedule churn than they save in elided polls.
const niNapThreshold = 8

// WakeHint implements ocp.WakeHinter. Only the delivered-response delay is
// a known horizon on the NoC — injection and in-flight progress depend on
// per-cycle contention — so everything else hints now. The respAt horizon
// is trusted only with the NI back in its idle state: a decode-error read
// sets hasResp while the accept handshake (niInjected) is still pending,
// and the master must keep polling to take that accept on the next cycle.
func (m *masterNI) WakeHint(now uint64) uint64 {
	if m.state == niIdle && m.hasResp && m.respAt > now+niNapThreshold {
		return m.respAt
	}
	return now
}

var _ ocp.WakeHinter = (*masterNI)(nil)

// wakeUp ends a fabric sleep at this NI's node: the owning region's on a
// partitioned network, the network's otherwise.
func (m *masterNI) wakeUp() {
	if m.rg != nil {
		m.rg.Wake()
		return
	}
	m.net.wakeUp()
}

// tick injects up to one flit of the pending request packet per cycle.
func (m *masterNI) tick(cycle uint64) {
	if m.state != niInjecting {
		return
	}
	r := m.net.routers[m.node]
	q := &r.in[portL][vcReq]
	if q.len() >= m.net.cfg.BufferFlits {
		return
	}
	q.push(flit{pkt: m.pkt, idx: m.nextFlit, arrived: cycle})
	m.st.residentFlits++
	m.nextFlit++
	if m.nextFlit == m.pkt.length {
		m.pkt = nil // the network owns the packet from here on
		m.state = niInjected
	}
}

// acceptFlit implements localSink (response delivery).
func (m *masterNI) acceptFlit(fl flit, cycle uint64) {
	if !fl.pkt.isResp {
		panic(fmt.Sprintf("noc: master NI at node %d received a request packet", m.node))
	}
	m.rxFlits++
	if fl.tail() {
		m.resp = fl.pkt.resp
		if len(m.resp.Data) > 0 {
			m.respData = append(m.respData[:0], m.resp.Data...)
			m.resp.Data = m.respData
		}
		m.respAt = cycle + m.net.cfg.RespCycles
		m.hasResp = true
		m.rxFlits = 0
		m.st.putPacket(fl.pkt)
	}
}

func (m *masterNI) idle() bool {
	return m.state == niIdle && !m.busyRead && !m.hasResp && m.rxFlits == 0
}

var _ ocp.MasterPort = (*masterNI)(nil)
var _ localSink = (*masterNI)(nil)

// slaveNI terminates request packets at a slave, applies the access after
// the slave's intrinsic latency, and returns response packets for reads.
// Requests from different masters are served one at a time, in arrival
// order, like a single-ported memory controller.
type slaveNI struct {
	net   *Network
	node  int
	slave ocp.Slave
	rng   ocp.AddrRange
	// st is the pool/stats domain charged for this NI's packets (the
	// network's own, or its region's after Partition).
	st *shardState

	// queue holds fully received packets waiting for service; qhead indexes
	// the next one so the backing array is reused instead of re-sliced away.
	queue   []*packet
	qhead   int
	current *packet
	doneAt  uint64

	out      *packet
	nextFlit int
	// scratch is the reusable buffer threaded through write Performs (the
	// read path serves into the response packet's own buffer instead).
	scratch []uint32
}

// acceptFlit implements localSink (request delivery).
func (s *slaveNI) acceptFlit(fl flit, cycle uint64) {
	if fl.pkt.isResp {
		panic(fmt.Sprintf("noc: slave NI at node %d received a response packet", s.node))
	}
	if fl.tail() {
		s.queue = append(s.queue, fl.pkt)
	}
}

func (s *slaveNI) tick(cycle uint64) {
	if fa := s.net.faults; fa != nil && fa.frozen(s.node, cycle) {
		return // injected fault: the slave serves and drains nothing
	}
	// Drain the outgoing response packet first: one flit per cycle.
	if s.out != nil {
		r := s.net.routers[s.node]
		q := &r.in[portL][vcResp]
		if q.len() < s.net.cfg.BufferFlits {
			q.push(flit{pkt: s.out, idx: s.nextFlit, arrived: cycle})
			s.st.residentFlits++
			s.nextFlit++
			if s.nextFlit == s.out.length {
				s.out = nil
			}
		}
		return
	}
	if s.current != nil {
		if cycle < s.doneAt {
			return
		}
		if s.current.req.Cmd.IsRead() {
			// Serve read data straight into the response packet's own
			// buffer; it stays valid until the master NI copies it out and
			// recycles the packet.
			out := s.st.getPacket()
			var resp ocp.Response
			resp, out.dataBuf = ocp.PerformBuffered(s.slave, &s.current.req, out.dataBuf)
			if resp.Err {
				s.st.slaveErrors.Inc()
			}
			out.src, out.dst = s.node, s.current.src
			out.isResp = true
			out.resp = resp
			out.length = respFlits(&s.current.req)
			s.out = out
			s.nextFlit = 0
		} else {
			var resp ocp.Response
			resp, s.scratch = ocp.PerformBuffered(s.slave, &s.current.req, s.scratch)
			if resp.Err {
				s.st.slaveErrors.Inc()
			}
		}
		if fa := s.net.faults; fa != nil && fa.leaked(s.node, cycle) {
			// Injected fault: the served request packet is forgotten
			// instead of recycled, so the pool-mass watchdog has a real
			// leak to catch.
		} else {
			s.st.putPacket(s.current)
		}
		s.current = nil
	}
	if s.current == nil && s.qhead < len(s.queue) {
		s.current = s.queue[s.qhead]
		s.queue[s.qhead] = nil
		s.qhead++
		if s.qhead == len(s.queue) {
			s.queue = s.queue[:0]
			s.qhead = 0
		} else if s.qhead >= 32 && 2*s.qhead >= len(s.queue) {
			// Slide the backlog down while the queue is busy: without this
			// a long busy period grows the backing array with every accepted
			// packet even though the depth itself is bounded.
			n := copy(s.queue, s.queue[s.qhead:])
			clear(s.queue[n:])
			s.queue = s.queue[:n]
			s.qhead = 0
		}
		s.doneAt = cycle + 1 + s.slave.AccessCycles(&s.current.req)
	}
}

func (s *slaveNI) idle() bool {
	return s.current == nil && s.out == nil && s.qhead == len(s.queue)
}

var _ localSink = (*slaveNI)(nil)
