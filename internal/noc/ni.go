package noc

import (
	"fmt"

	"noctg/internal/ocp"
)

type masterNIState int

const (
	niIdle masterNIState = iota
	niInjecting
	niInjected
)

// masterNI packetises OCP transactions from one master and reassembles the
// responses. It implements ocp.MasterPort. A request is "accepted" once its
// tail flit has entered the local router — so acceptance latency reflects
// local congestion, as on a real NI.
type masterNI struct {
	net  *Network
	node int

	state    masterNIState
	req      ocp.Request
	pkt      *packet
	nextFlit int

	busyRead bool
	resp     ocp.Response
	respAt   uint64
	hasResp  bool
	rxBuf    []flit
}

// TryRequest implements ocp.MasterPort.
func (m *masterNI) TryRequest(req *ocp.Request) bool {
	switch m.state {
	case niIdle:
		if m.busyRead {
			return false
		}
		if err := req.Validate(); err != nil {
			panic(fmt.Sprintf("noc: master at node %d issued invalid request: %v", m.node, err))
		}
		m.req = *req
		dst := m.net.decode(req.Addr)
		if dst == nil {
			// No slave: synthesise an error response locally.
			m.state = niInjected
			m.net.Counters.Inc("decode_errors")
			if req.Cmd.IsRead() {
				m.resp = ocp.Response{Err: true}
				m.respAt = m.net.now() + m.net.cfg.RespCycles
				m.hasResp = true
			}
			return false
		}
		m.pkt = &packet{src: m.node, dst: dst.node, req: m.req, length: reqFlits(&m.req)}
		m.nextFlit = 0
		m.state = niInjecting
		return false
	case niInjecting:
		return false
	case niInjected:
		m.state = niIdle
		if m.req.Cmd.IsRead() {
			m.busyRead = true
		}
		return true
	}
	return false
}

// TakeResponse implements ocp.MasterPort.
func (m *masterNI) TakeResponse() (*ocp.Response, bool) {
	if !m.hasResp || m.net.now() < m.respAt {
		return nil, false
	}
	m.hasResp = false
	m.busyRead = false
	resp := m.resp
	return &resp, true
}

// Busy implements ocp.MasterPort.
func (m *masterNI) Busy() bool { return m.busyRead || m.state != niIdle }

// tick injects up to one flit of the pending request packet per cycle.
func (m *masterNI) tick(cycle uint64) {
	if m.state != niInjecting {
		return
	}
	r := m.net.routers[m.node]
	q := &r.in[portL][vcReq]
	if q.len() >= m.net.cfg.BufferFlits {
		return
	}
	q.push(flit{pkt: m.pkt, idx: m.nextFlit, arrived: cycle})
	m.nextFlit++
	if m.nextFlit == m.pkt.length {
		m.state = niInjected
	}
}

// acceptFlit implements localSink (response delivery).
func (m *masterNI) acceptFlit(fl flit, cycle uint64) {
	if !fl.pkt.isResp {
		panic(fmt.Sprintf("noc: master NI at node %d received a request packet", m.node))
	}
	m.rxBuf = append(m.rxBuf, fl)
	if fl.tail() {
		m.resp = fl.pkt.resp
		m.respAt = cycle + m.net.cfg.RespCycles
		m.hasResp = true
		m.rxBuf = m.rxBuf[:0]
	}
}

func (m *masterNI) idle() bool {
	return m.state == niIdle && !m.busyRead && !m.hasResp && len(m.rxBuf) == 0
}

var _ ocp.MasterPort = (*masterNI)(nil)
var _ localSink = (*masterNI)(nil)

// slaveNI terminates request packets at a slave, applies the access after
// the slave's intrinsic latency, and returns response packets for reads.
// Requests from different masters are served one at a time, in arrival
// order, like a single-ported memory controller.
type slaveNI struct {
	net   *Network
	node  int
	slave ocp.Slave
	rng   ocp.AddrRange

	queue   []*packet // fully received, waiting for service
	current *packet
	doneAt  uint64

	out      *packet
	nextFlit int
}

// acceptFlit implements localSink (request delivery).
func (s *slaveNI) acceptFlit(fl flit, cycle uint64) {
	if fl.pkt.isResp {
		panic(fmt.Sprintf("noc: slave NI at node %d received a response packet", s.node))
	}
	if fl.tail() {
		s.queue = append(s.queue, fl.pkt)
	}
}

func (s *slaveNI) tick(cycle uint64) {
	// Drain the outgoing response packet first: one flit per cycle.
	if s.out != nil {
		r := s.net.routers[s.node]
		q := &r.in[portL][vcResp]
		if q.len() < s.net.cfg.BufferFlits {
			q.push(flit{pkt: s.out, idx: s.nextFlit, arrived: cycle})
			s.nextFlit++
			if s.nextFlit == s.out.length {
				s.out = nil
			}
		}
		return
	}
	if s.current != nil {
		if cycle < s.doneAt {
			return
		}
		resp := s.slave.Perform(&s.current.req)
		if resp.Err {
			s.net.Counters.Inc("slave_errors")
		}
		if s.current.req.Cmd.IsRead() {
			s.out = &packet{
				src:    s.node,
				dst:    s.current.src,
				isResp: true,
				resp:   resp,
				length: respFlits(&s.current.req),
			}
			s.nextFlit = 0
		}
		s.current = nil
	}
	if s.current == nil && len(s.queue) > 0 {
		s.current = s.queue[0]
		s.queue = s.queue[1:]
		s.doneAt = cycle + 1 + s.slave.AccessCycles(&s.current.req)
	}
}

func (s *slaveNI) idle() bool {
	return s.current == nil && s.out == nil && len(s.queue) == 0
}

var _ localSink = (*slaveNI)(nil)
