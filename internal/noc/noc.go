// Package noc models a ×pipes-style packet-switched Network-on-Chip: a 2-D
// mesh or torus of wormhole routers with dimension-ordered routing,
// round-robin switch allocation and separate virtual networks for the
// request and response message classes (protocol-deadlock freedom).
//
// On the torus every row and column closes into a ring (wrap-around links)
// and routing takes the shorter way around each dimension, ties broken
// toward east/south. Rings introduce cyclic channel dependencies that the
// mesh does not have, so each message class owns a second "dateline"
// virtual channel: a packet starts a dimension on the base VC and switches
// to the dateline VC when it crosses that dimension's wrap link, which cuts
// every ring cycle (the classical dateline scheme). Mesh networks never
// occupy the dateline VCs, so their behaviour is unchanged.
//
// It presents the same ocp.MasterPort / ocp.Slave contract as the AMBA bus,
// so IP cores and traffic generators move between interconnects unchanged —
// the property the paper's cross-interconnect validation experiment relies
// on. Its latency/contention profile is deliberately very different from the
// shared bus: per-hop pipelining, distance-dependent latency, distributed
// contention at router outputs.
package noc

import (
	"fmt"

	"noctg/internal/ocp"
	"noctg/internal/sim"
)

// Virtual channels: requests and responses travel in separate virtual
// networks so a blocked response can never deadlock behind a request. Each
// class also owns a dateline VC used only on torus wrap rings (see the
// package comment); on a mesh the dateline VCs stay empty forever, and the
// round-robin output arbiter skips empty VCs without disturbing the
// relative req/resp ordering.
const (
	vcReq    = 0
	vcResp   = 1
	vcReqDL  = 2
	vcRespDL = 3
	numVC    = 4
)

// datelineVC returns the dateline variant of a base-class VC.
func datelineVC(vc int) int {
	if vc == vcResp || vc == vcRespDL {
		return vcRespDL
	}
	return vcReqDL
}

// baseVC returns the message-class VC of any VC.
func baseVC(vc int) int {
	if vc == vcResp || vc == vcRespDL {
		return vcResp
	}
	return vcReq
}

// Router port directions.
const (
	portN = iota
	portE
	portS
	portW
	portL // local (network interface)
	numPorts
)

func opposite(dir int) int {
	switch dir {
	case portN:
		return portS
	case portS:
		return portN
	case portE:
		return portW
	case portW:
		return portE
	}
	return portL
}

// Topology selects the link structure of the fabric.
type Topology int

const (
	// Mesh is the open 2-D grid: edge routers have no wrap links and
	// dimension-ordered routing always travels monotonically.
	Mesh Topology = iota
	// Torus closes every row and column into a ring with wrap-around
	// links; routing takes the shorter way around each dimension (ties
	// toward east/south) and the dateline VCs keep the rings
	// deadlock-free.
	Torus
)

func (t Topology) String() string {
	switch t {
	case Mesh:
		return "mesh"
	case Torus:
		return "torus"
	}
	return fmt.Sprintf("Topology(%d)", int(t))
}

// ParseTopology converts a "mesh"/"torus" flag or JSON value into a
// Topology. The empty string selects the mesh default.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "", "mesh":
		return Mesh, nil
	case "torus":
		return Torus, nil
	}
	return 0, fmt.Errorf("noc: unknown topology %q (want mesh or torus)", s)
}

// Config holds the NoC parameters. Zero values take defaults.
type Config struct {
	// Width and Height give the grid dimensions (default 4×3).
	Width, Height int
	// Topology selects mesh (default) or torus link structure.
	Topology Topology
	// BufferFlits is the per-input, per-VC FIFO depth (default 4).
	BufferFlits int
	// RespCycles is the NI-side response delivery latency (default 1).
	RespCycles uint64
}

// WithDefaults returns the configuration with zero fields resolved to
// their defaults — the effective geometry a Network built from c will
// have, available to callers that must validate capacity up front.
func (c Config) WithDefaults() Config {
	if c.Width == 0 {
		c.Width = 4
	}
	if c.Height == 0 {
		c.Height = 3
	}
	if c.BufferFlits == 0 {
		c.BufferFlits = 4
	}
	if c.RespCycles == 0 {
		c.RespCycles = 1
	}
	return c
}

// packet is one request or response message. Packets are pooled per
// Network: a request packet is recycled once its slave NI has served it, a
// response packet once its master NI has copied the response out, so the
// steady-state transaction path performs no packet allocation. dataBuf is
// the packet-owned payload storage (write data on requests, read data on
// responses), reused across the packet's lives.
type packet struct {
	src, dst int
	isResp   bool
	req      ocp.Request
	resp     ocp.Response
	length   int
	// hops counts the packet's router-to-router link traversals (head
	// flit), feeding the per-hop histogram at retirement.
	hops    int
	dataBuf []uint32
	// home is the pool domain the packet was allocated from. A packet can
	// retire in a different shard (a posted write's request retires at the
	// slave, with no response packet to carry the struct back), so
	// retirement routes foreign packets onto the home region's return list
	// instead of the local pool — otherwise the master region's pool
	// starves (allocating per write forever) while the slave region's pool
	// grows without bound.
	home *shardState
}

func (p *packet) vc() int {
	if p.isResp {
		return vcResp
	}
	return vcReq
}

// flit is one link-level transfer unit. The packet pointer rides along on
// every flit so reassembly needs no sequence bookkeeping (wormhole
// allocation keeps a packet's flits contiguous per VC anyway).
type flit struct {
	pkt     *packet
	idx     int
	arrived uint64 // cycle the flit entered its current buffer
}

func (f *flit) head() bool { return f.idx == 0 }
func (f *flit) tail() bool { return f.idx == f.pkt.length-1 }

// fifo is a fixed-capacity flit ring buffer. Router input FIFOs are bounded
// by BufferFlits, so the storage is allocated once at mesh construction and
// the per-flit path never allocates.
type fifo struct {
	buf  []flit
	head int
	n    int

	// poppedN counts pops during cycle poppedAt. Sharded mode uses the pair
	// to reconstruct a FIFO's cycle-start occupancy (len + pops this cycle),
	// which makes downstream-space checks independent of router tick order —
	// the property that lets a cut link behave exactly like a local one.
	poppedN  int
	poppedAt uint64
}

func (f *fifo) init(capacity int) {
	f.buf = make([]flit, capacity)
	f.poppedAt = ^uint64(0)
}

func (f *fifo) push(fl flit) {
	if f.n == len(f.buf) {
		panic("noc: fifo overflow")
	}
	f.buf[(f.head+f.n)%len(f.buf)] = fl
	f.n++
}

func (f *fifo) empty() bool  { return f.n == 0 }
func (f *fifo) len() int     { return f.n }
func (f *fifo) front() *flit { return &f.buf[f.head] }

func (f *fifo) pop() flit {
	fl := f.buf[f.head]
	f.buf[f.head].pkt = nil // drop the packet reference for the pool's sake
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	return fl
}

// hold records the input wormhole owning an (output, out-VC) channel.
// Allocation is keyed by the *outgoing* VC: on a torus a dimension turn can
// map the base and the dateline input VC of one class onto the same
// downstream VC, and only an exclusive output-VC owner keeps the flits of
// two such packets from interleaving in the downstream FIFO (wormhole
// contiguity). On a mesh the input VC always equals the output VC, so this
// is exactly the classic per-VC switch allocation.
type hold struct {
	in   int // input port, -1 when the channel is free
	invc int // input VC the owning packet's flits arrive on
}

// router is one fabric node's switch.
type router struct {
	n     *Network
	id    int
	x, y  int
	in    [numPorts][numVC]fifo
	alloc [numPorts][numVC]hold // wormhole owner per (output, out-VC)
	rrVC  [numPorts]int
	rrIn  [numPorts][numVC]int
	local localSink // attached NI, or nil

	// st is the pool/stats domain this router charges: the network's own in
	// the single-engine configuration, its region's after Partition.
	st *shardState
	// cut[dir] is non-nil when output dir crosses a shard boundary (flits
	// leave through the link's export ring); inCut[port] is non-nil when
	// input port is fed from another shard (pops are credited back to the
	// exporter through the link's counters).
	cut   [numPorts]*cutLink
	inCut [numPorts]*cutLink
}

// localSink is the NI side of a router's local port.
type localSink interface {
	acceptFlit(fl flit, cycle uint64)
}

// route returns the output port for a flit headed to dst: XY
// dimension-ordered routing, taking the shorter way around each ring on a
// torus (a tie at exactly half the ring goes east/south, so every router
// along the path agrees on the direction).
func (r *router) route(dst int) int {
	w, h := r.n.cfg.Width, r.n.cfg.Height
	dx := (dst % w) - r.x
	dy := (dst / w) - r.y
	if r.n.cfg.Topology == Torus {
		if dx != 0 {
			if e := ((dx % w) + w) % w; 2*e <= w {
				return portE
			}
			return portW
		}
		if dy != 0 {
			if s := ((dy % h) + h) % h; 2*s <= h {
				return portS
			}
			return portN
		}
		return portL
	}
	switch {
	case dx > 0:
		return portE
	case dx < 0:
		return portW
	case dy > 0:
		return portS
	case dy < 0:
		return portN
	}
	return portL
}

// wraps reports whether this router's output dir is a torus wrap link (the
// ring's dateline).
func (r *router) wraps(dir int) bool {
	if r.n.cfg.Topology != Torus {
		return false
	}
	switch dir {
	case portE:
		return r.x == r.n.cfg.Width-1
	case portW:
		return r.x == 0
	case portS:
		return r.y == r.n.cfg.Height-1
	case portN:
		return r.y == 0
	}
	return false
}

// sameDim reports whether two router ports travel the same dimension.
func sameDim(a, b int) bool {
	ax := a == portE || a == portW
	bx := b == portE || b == portW
	ay := a == portN || a == portS
	by := b == portN || b == portS
	return (ax && bx) || (ay && by)
}

// outVC returns the virtual channel a flit leaves on when it arrived on
// input port in / VC vc and departs through output o. On a mesh (and into
// local sinks) the VC never changes. On a torus the dateline scheme
// applies per dimension: crossing the wrap link moves the packet to its
// class's dateline VC, continuing straight keeps the current VC, and
// entering a dimension (injection or an XY turn) resets to the base VC.
func (r *router) outVC(in, vc, o int) int {
	if r.n.cfg.Topology != Torus || o == portL {
		return vc
	}
	if r.wraps(o) {
		return datelineVC(vc)
	}
	if sameDim(in, o) {
		return vc
	}
	return baseVC(vc)
}

// downstreamSpace reports whether output dir of this router can accept a
// flit on vc this cycle. In sharded mode the check is conservative: it uses
// the downstream FIFO's occupancy as of the start of the cycle (current
// length plus pops made this cycle, or the exporter's credit view over a
// cut link), so the answer never depends on which routers happened to tick
// first — the invariant that makes every partition of the fabric compute
// the same flit movements.
func (r *router) downstreamSpace(dir, vc int, cycle uint64) bool {
	if dir == portL {
		return r.local != nil // NIs always sink delivered flits
	}
	if cl := r.cut[dir]; cl != nil {
		return cl.pushed[vc]-cl.credit[vc] < uint64(r.n.cfg.BufferFlits)
	}
	nb := r.n.neighbor(r.id, dir)
	q := &nb.in[opposite(dir)][vc]
	occ := q.len()
	if r.n.sharded && q.poppedAt == cycle {
		occ += q.poppedN
	}
	return occ < r.n.cfg.BufferFlits
}

// deliver moves a flit out of output dir.
func (r *router) deliver(dir, vc int, fl flit, cycle uint64) {
	if dir == portL {
		r.local.acceptFlit(fl, cycle)
		r.st.residentFlits--
		return
	}
	if fl.head() {
		fl.pkt.hops++
	}
	fl.arrived = cycle
	if cl := r.cut[dir]; cl != nil {
		// Cross-shard hop: park the flit in the link's export ring. The
		// importing shard moves it into the destination FIFO at the window
		// boundary, stamped with the same arrival cycle a local push would
		// have used, so timing is identical to an uncut link.
		cl.push(vc, fl)
		r.st.residentFlits--
		return
	}
	nb := r.n.neighbor(r.id, dir)
	nb.in[opposite(dir)][vc].push(fl)
}

// tick performs switch allocation and forwards at most one flit per output
// port (the physical link constraint), choosing among VCs round-robin.
func (r *router) tick(cycle uint64) {
	for o := 0; o < numPorts; o++ {
		for k := 0; k < numVC; k++ {
			vc := (r.rrVC[o] + k) % numVC
			if r.tryForward(o, vc, cycle) {
				r.rrVC[o] = (vc + 1) % numVC
				r.st.flitsRouted++
				r.st.flitsVC[vc].Inc()
				break
			}
		}
	}
}

// tryForward moves one flit through output o on outgoing VC ovc. The input
// VC feeding an out-VC can be the same class's base or dateline VC (torus
// turns reset the dateline bit, wrap links set it); the allocation fixes
// one (input port, input VC) owner until the packet's tail passes.
func (r *router) tryForward(o, ovc int, cycle uint64) bool {
	if fa := r.n.faults; fa != nil && fa.stalled(r.id, o, cycle) {
		return false
	}
	if r.alloc[o][ovc].in < 0 {
		// Allocate the wormhole to an input whose head flit requests o
		// and would leave on ovc.
		n := numPorts
	scan:
		for k := 0; k < n; k++ {
			i := (r.rrIn[o][ovc] + k) % n
			for _, invc := range [2]int{baseVC(ovc), datelineVC(ovc)} {
				q := &r.in[i][invc]
				if q.empty() {
					continue
				}
				fl := q.front()
				if !fl.head() || fl.arrived >= cycle {
					continue
				}
				if r.route(fl.pkt.dst) != o || r.outVC(i, invc, o) != ovc {
					continue
				}
				r.alloc[o][ovc] = hold{in: i, invc: invc}
				r.rrIn[o][ovc] = (i + 1) % n
				break scan
			}
		}
	}
	a := r.alloc[o][ovc]
	if a.in < 0 {
		return false
	}
	q := &r.in[a.in][a.invc]
	if q.empty() {
		return false
	}
	fl := q.front()
	if fl.arrived >= cycle { // one hop per cycle
		return false
	}
	if !r.downstreamSpace(o, ovc, cycle) {
		return false
	}
	moved := q.pop()
	if r.n.sharded {
		if q.poppedAt != cycle {
			q.poppedAt, q.poppedN = cycle, 0
		}
		q.poppedN++
		if cl := r.inCut[a.in]; cl != nil {
			cl.popped[a.invc]++
		}
	}
	if moved.tail() {
		r.alloc[o][ovc] = hold{in: -1}
	}
	if fa := r.n.faults; fa != nil && fa.dropped(r.id, o, cycle) {
		// Injected fault: the flit vanishes with its bookkeeping
		// deliberately left inconsistent, so the conservation (and, for a
		// tail, pool-mass) watchdogs have something real to catch.
		return true
	}
	r.deliver(o, ovc, moved, cycle)
	return true
}

// shardState is the pool/stats domain of one execution shard. The
// unsharded network owns exactly one (Network.st); Partition gives every
// Region its own, so each shard's hot path touches only shard-local
// memory and the canonical metrics are recovered by a deterministic fold
// (foldRegionStats) at registry sync points.
type shardState struct {
	// pktPool recycles packet structs (and their payload buffers); each
	// shard's engine is single-goroutine, so no locking is needed.
	// livePackets counts packets currently out of the pool — the cheap
	// quiescence signal the unsharded NextWake uses every cycle. (A packet
	// can retire in a different shard than it was issued from, so sharded
	// quiescence uses residentFlits + NI idleness per region instead.)
	pktPool     []*packet
	livePackets int
	// index is the owning region's position in the partition (0 for the
	// unsharded base state); returns[i] collects packets that retired here
	// but were allocated by region i, appended during this shard's compute
	// step and drained into region i's pool during region i's Exchange.
	// The two phases are globally barrier-separated, so each slot has one
	// writer (the retiring shard, computing) and one reader (the home
	// shard, exchanging) and never both at once. Nil when unsharded: the
	// single pool makes every retirement local.
	index   int
	returns [][]*packet
	// residentFlits counts flits currently held in this domain's router
	// FIFOs: incremented on NI injection and cross-shard import,
	// decremented on local delivery and cross-shard export.
	residentFlits int
	// retired counts packets ever recycled through putPacket. Unlike the
	// registry stats below it is never reset: the guard layer's deadlock
	// watchdog needs a monotone progress signal that survives epoch
	// boundaries (see guard.go).
	retired uint64

	// Stats — sim.Counter/sim.Histogram handles registered with the
	// platform's stats registry (RegisterStats), so phased measurement can
	// reset and snapshot them at epoch boundaries. flitsVC breaks link
	// traversals down by virtual channel (message class + dateline), and
	// hops records the per-packet hop count at retirement — breakdowns the
	// old scalar counters could not express.
	flitsRouted  sim.Counter
	flitsVC      [numVC]sim.Counter
	hops         *sim.Histogram
	decodeErrors sim.Counter
	slaveErrors  sim.Counter
}

// newHopsHistogram keeps base and per-region hop histograms on identical
// bucket bounds so the region copies can merge into the canonical one.
func newHopsHistogram() *sim.Histogram {
	return sim.NewHistogram(1, 2, 3, 4, 6, 8, 12, 16)
}

// Network is the mesh fabric. It implements sim.Device and must be ticked
// after all masters each cycle.
type Network struct {
	cfg     Config
	now     func() uint64
	routers []*router
	masters []*masterNI
	slaves  []*slaveNI

	// st is the network's own pool/stats domain — the only one until
	// Partition carves the fabric into regions.
	st shardState

	// sharded is set by Partition. It switches the routers to
	// cycle-start-occupancy flow control, the conservative discipline under
	// which flit movement is independent of router tick order and therefore
	// of the shard count (see downstreamSpace).
	sharded bool
	// regions are the spatial shards after Partition (nil otherwise);
	// regionOfRow maps a mesh row to its region index.
	regions     []*Region
	regionOfRow []int

	// waker is the engine's wake handle (sim.WakeSink); nil when the
	// network is driven outside an engine.
	waker sim.Waker

	// faults holds the compiled fault-injection tables (nil on an
	// uninjected network — the hot-path hooks are a single nil check); see
	// fault.go.
	faults *faultSet
	// guardTally is the conservation scan's cached per-domain scratch so
	// repeated scans allocate nothing; see guard.go.
	guardTally []domainTally
}

// New builds a Width×Height mesh or torus. now supplies the current engine
// cycle.
func New(cfg Config, now func() uint64) *Network {
	if now == nil {
		panic("noc: New requires a cycle source")
	}
	n := &Network{cfg: cfg.WithDefaults(), now: now}
	n.st.hops = newHopsHistogram()
	total := n.cfg.Width * n.cfg.Height
	for id := 0; id < total; id++ {
		r := &router{n: n, id: id, x: id % n.cfg.Width, y: id / n.cfg.Width, st: &n.st}
		for o := 0; o < numPorts; o++ {
			for v := 0; v < numVC; v++ {
				r.alloc[o][v] = hold{in: -1}
				r.in[o][v].init(n.cfg.BufferFlits)
			}
		}
		n.routers = append(n.routers, r)
	}
	return n
}

// packetBatch is the pool refill quantum and packetBufWords the payload
// capacity stocked per packet. A dry pool restocks a whole slab at once:
// the in-flight packet count's running maximum creeps (slowly, forever —
// queue-depth tails are unbounded), and per-packet refills would turn
// every +1 of that maximum into an allocation. Slab refills amortise the
// creep to one allocation per packetBatch, so steady state actually
// reaches an allocation-free plateau. Payload buffers beyond
// packetBufWords grow per packet on first use and then stick.
const (
	packetBatch    = 64
	packetBufWords = 8
)

// getPacket takes a packet from the pool, restocking it by the slab when
// dry. Pool invariant: st.pktPool holds only packets with home == st
// (foreign retirements go onto the return lists and drain into their home
// pool), so a pooled packet's home never needs refreshing.
func (st *shardState) getPacket() *packet {
	st.livePackets++
	if len(st.pktPool) == 0 {
		slab := make([]packet, packetBatch)
		words := make([]uint32, packetBatch*packetBufWords)
		for i := range slab {
			slab[i].home = st
			slab[i].dataBuf = words[i*packetBufWords : i*packetBufWords : (i+1)*packetBufWords]
			st.pktPool = append(st.pktPool, &slab[i])
		}
	}
	last := len(st.pktPool) - 1
	p := st.pktPool[last]
	st.pktPool = st.pktPool[:last]
	return p
}

// putPacket retires a dead packet, keeping its payload buffer. Retirement
// is where the packet's hop count is final, so the per-hop breakdown is
// observed here (by the retiring shard's histogram; the fold makes the
// merged view identical for every partition). A packet that retires away
// from its home region parks on the local return list until the home
// region's next Exchange.
func (st *shardState) putPacket(p *packet) {
	st.livePackets--
	st.retired++
	st.hops.Observe(uint64(p.hops))
	buf := p.dataBuf
	home := p.home
	*p = packet{dataBuf: buf[:0], home: home}
	if home != st {
		st.returns[home.index] = append(st.returns[home.index], p)
		return
	}
	st.pktPool = append(st.pktPool, p)
}

// Config returns the effective configuration.
func (n *Network) Config() Config { return n.cfg }

// Nodes returns the number of fabric nodes.
func (n *Network) Nodes() int { return len(n.routers) }

// Topology returns the fabric's link structure.
func (n *Network) Topology() Topology { return n.cfg.Topology }

// FlitsRouted returns the total number of link traversals. With regions it
// folds the shard-local tallies on the fly, so the value is identical for
// every shard count at any quiescent read point.
func (n *Network) FlitsRouted() uint64 {
	v := n.st.flitsRouted.Value()
	for _, rg := range n.regions {
		v += rg.st.flitsRouted.Value()
	}
	return v
}

// DecodeErrors returns the number of requests that decoded to no slave.
func (n *Network) DecodeErrors() uint64 {
	v := n.st.decodeErrors.Value()
	for _, rg := range n.regions {
		v += rg.st.decodeErrors.Value()
	}
	return v
}

// SlaveErrors returns the number of error responses from attached slaves.
func (n *Network) SlaveErrors() uint64 {
	v := n.st.slaveErrors.Value()
	for _, rg := range n.regions {
		v += rg.st.slaveErrors.Value()
	}
	return v
}

// vcNames labels the virtual channels in flit-counter metric names.
var vcNames = [numVC]string{vcReq: "req", vcResp: "resp", vcReqDL: "req_dl", vcRespDL: "resp_dl"}

// RegisterStats implements sim.StatsSource: total and per-VC flit counts,
// the per-packet hop histogram, decode/slave error counts and every
// master NI's latency histogram join the registry. Call after all NIs are
// attached (registration captures metric addresses).
func (n *Network) RegisterStats(r *sim.Registry) {
	r.RegisterCounter("flits_routed", &n.st.flitsRouted)
	for vc := range n.st.flitsVC {
		r.RegisterCounter("flits/"+vcNames[vc], &n.st.flitsVC[vc])
	}
	r.RegisterHistogram("hops", n.st.hops)
	r.RegisterCounter("decode_errors", &n.st.decodeErrors)
	r.RegisterCounter("slave_errors", &n.st.slaveErrors)
	for _, m := range n.masters {
		r.RegisterHistogram(fmt.Sprintf("ni%d/latency", m.node), m.lat)
	}
	if n.regions != nil {
		// Only the canonical metrics above are registered, whatever the
		// shard count; the per-region tallies fold into them at every
		// registry sync point (always before Snapshot/Reset), so epoch
		// counters and histograms serialise identically for 1..N shards.
		r.OnSync(func(uint64) { n.foldRegionStats() })
	}
}

// foldRegionStats drains every region's shard-local counters and
// histograms into the canonical network metrics. Regions are visited in
// index order and counter addition commutes, so the fold is deterministic.
// Callers must be quiescent (no shard workers running).
func (n *Network) foldRegionStats() {
	for _, rg := range n.regions {
		n.st.flitsRouted.Add(rg.st.flitsRouted.Value())
		rg.st.flitsRouted.Reset()
		for vc := range rg.st.flitsVC {
			n.st.flitsVC[vc].Add(rg.st.flitsVC[vc].Value())
			rg.st.flitsVC[vc].Reset()
		}
		n.st.hops.Merge(rg.st.hops)
		rg.st.hops.Reset()
		n.st.decodeErrors.Add(rg.st.decodeErrors.Value())
		rg.st.decodeErrors.Reset()
		n.st.slaveErrors.Add(rg.st.slaveErrors.Value())
		rg.st.slaveErrors.Reset()
	}
}

var _ sim.StatsSource = (*Network)(nil)

func (n *Network) neighbor(id, dir int) *router {
	x, y := id%n.cfg.Width, id/n.cfg.Width
	switch dir {
	case portN:
		y--
	case portS:
		y++
	case portE:
		x++
	case portW:
		x--
	}
	if n.cfg.Topology == Torus {
		x = (x + n.cfg.Width) % n.cfg.Width
		y = (y + n.cfg.Height) % n.cfg.Height
	}
	if x < 0 || x >= n.cfg.Width || y < 0 || y >= n.cfg.Height {
		panic(fmt.Sprintf("noc: no neighbor %d of node %d", dir, id))
	}
	return n.routers[y*n.cfg.Width+x]
}

// AttachMaster creates a master network interface at the given node and
// returns its OCP port. Each node holds at most one NI.
func (n *Network) AttachMaster(node int) ocp.MasterPort {
	n.checkNode(node)
	ni := &masterNI{net: n, node: node, st: &n.st, now: n.now, lat: sim.NewLatencyHistogram(),
		respData: make([]uint32, 0, packetBufWords)}
	n.routers[node].local = ni
	n.masters = append(n.masters, ni)
	return ni
}

// AttachSlave places slave at node, serving the address range rng.
func (n *Network) AttachSlave(node int, slave ocp.Slave, rng ocp.AddrRange) error {
	n.checkNode(node)
	for _, s := range n.slaves {
		if s.rng.Overlaps(rng) {
			return fmt.Errorf("noc: range %v overlaps existing %v", rng, s.rng)
		}
	}
	// The queue starts with a generous capacity so the slice-doubling
	// growth toward a workload's high-water depth is front-loaded into
	// construction instead of trickling through the measured run.
	ni := &slaveNI{net: n, node: node, st: &n.st, slave: slave, rng: rng,
		queue: make([]*packet, 0, 64)}
	n.routers[node].local = ni
	n.slaves = append(n.slaves, ni)
	return nil
}

func (n *Network) checkNode(node int) {
	if node < 0 || node >= len(n.routers) {
		panic(fmt.Sprintf("noc: node %d outside mesh of %d", node, len(n.routers)))
	}
	if n.routers[node].local != nil {
		panic(fmt.Sprintf("noc: node %d already has a network interface", node))
	}
}

func (n *Network) decode(addr uint32) *slaveNI {
	for _, s := range n.slaves {
		if s.rng.Contains(addr) {
			return s
		}
	}
	return nil
}

// Tick implements sim.Device: NIs inject/serve, then routers switch.
func (n *Network) Tick(cycle uint64) {
	for _, m := range n.masters {
		m.tick(cycle)
	}
	for _, s := range n.slaves {
		s.tick(cycle)
	}
	for _, r := range n.routers {
		r.tick(cycle)
	}
}

// Idle reports whether no flits, pending NI work or undelivered responses
// remain anywhere in the fabric.
func (n *Network) Idle() bool {
	for _, r := range n.routers {
		for p := 0; p < numPorts; p++ {
			for v := 0; v < numVC; v++ {
				if !r.in[p][v].empty() {
					return false
				}
			}
		}
	}
	return n.nisIdle()
}

func (n *Network) nisIdle() bool {
	for _, m := range n.masters {
		if !m.idle() {
			return false
		}
	}
	for _, s := range n.slaves {
		if !s.idle() {
			return false
		}
	}
	return true
}

// NextWake implements sim.Sleeper. The NoC has no timed state of its own —
// flits move whenever they can — so it is either active this cycle or
// quiescent until some master injects again; the injection (a TryRequest on
// a master NI) fires the wake hook, so quiescence is a safe promise even
// under the event kernel, where a sleeping network is not ticked at all
// while other devices run. Every in-network flit belongs to a live pooled
// packet, so livePackets == 0 makes the full router scan unnecessary.
func (n *Network) NextWake(now uint64) uint64 {
	if n.st.livePackets == 0 && n.nisIdle() {
		return sim.WakeNever
	}
	return now
}

// SetWaker implements sim.WakeSink: the engine hands the network its wake
// handle at registration, and the master NIs fire it when a TryRequest
// arrives while the network may be sleeping.
func (n *Network) SetWaker(w sim.Waker) { n.waker = w }

// wakeUp fires the engine wake hook (no-op outside an engine).
func (n *Network) wakeUp() {
	if n.waker != nil {
		n.waker.Wake()
	}
}

// TickWake implements sim.TickSleeper (Tick then NextWake in one dispatch).
func (n *Network) TickWake(cycle uint64) uint64 {
	n.Tick(cycle)
	return n.NextWake(cycle + 1)
}

var _ sim.Device = (*Network)(nil)
var _ sim.Sleeper = (*Network)(nil)
var _ sim.WakeSink = (*Network)(nil)
var _ sim.TickSleeper = (*Network)(nil)

// reqFlits returns the request packet length: header + address/meta flit,
// plus one payload flit per written word.
func reqFlits(req *ocp.Request) int {
	if req.Cmd.IsWrite() {
		return 2 + req.Burst
	}
	return 2
}

// respFlits returns the response packet length: header + status flit, plus
// one flit per read data word.
func respFlits(req *ocp.Request) int {
	if req.Cmd.IsRead() {
		return 2 + req.Burst
	}
	return 2
}
