package noc

import (
	"math/rand"
	"testing"

	"noctg/internal/mem"
	"noctg/internal/ocp"
	"noctg/internal/sim"
	"noctg/internal/simtest"
)

// rig builds a 4×3 mesh with a RAM at node 11 and masters at given nodes.
func rig(t *testing.T, cfg Config, nodes []int, scripts [][]simtest.Step) (*sim.Engine, *Network, []*simtest.Master, *mem.RAM) {
	t.Helper()
	e := sim.NewEngine(sim.Clock{})
	n := New(cfg, e.Cycle)
	ram := mem.NewRAM("ram", 0x1000, 0x1000, 1)
	if err := n.AttachSlave(n.Nodes()-1, ram, ram.Range()); err != nil {
		t.Fatal(err)
	}
	masters := make([]*simtest.Master, len(nodes))
	for i, node := range nodes {
		masters[i] = simtest.NewMaster(n.AttachMaster(node), scripts[i])
		e.Add(masters[i])
	}
	e.Add(n)
	return e, n, masters, ram
}

func runAll(t *testing.T, e *sim.Engine, n *Network, masters []*simtest.Master, max uint64) {
	t.Helper()
	_, err := e.Run(max, func() bool {
		for _, m := range masters {
			if !m.Done() {
				return false
			}
		}
		return n.Idle()
	})
	if err != nil {
		t.Fatalf("NoC simulation did not finish: %v", err)
	}
}

func TestReadOverMesh(t *testing.T) {
	script := [][]simtest.Step{{{Gap: 0, Req: ocp.Request{Cmd: ocp.Read, Addr: 0x1004, Burst: 1}}}}
	e, n, ms, ram := rig(t, Config{}, []int{0}, script)
	ram.PokeWord(0x1004, 0xabcd)
	runAll(t, e, n, ms, 1000)
	if ms[0].RespData[0][0] != 0xabcd {
		t.Fatalf("read = %#x, want 0xabcd", ms[0].RespData[0][0])
	}
	if ms[0].RespCycles[0] < 8 {
		t.Fatalf("cross-mesh read latency %d suspiciously low", ms[0].RespCycles[0])
	}
}

func TestWriteReachesMemory(t *testing.T) {
	script := [][]simtest.Step{{{Gap: 0, Req: ocp.Request{Cmd: ocp.Write, Addr: 0x1010, Burst: 1, Data: []uint32{0x55}}}}}
	e, n, ms, ram := rig(t, Config{}, []int{0}, script)
	runAll(t, e, n, ms, 1000)
	if ram.PeekWord(0x1010) != 0x55 {
		t.Fatal("posted write did not reach memory")
	}
}

func TestPostedWriteAcceptBeforeDelivery(t *testing.T) {
	// The master must be released (accept) before the write lands: accept
	// happens at tail injection, delivery several hops later.
	script := [][]simtest.Step{{
		{Gap: 0, Req: ocp.Request{Cmd: ocp.Write, Addr: 0x1010, Burst: 1, Data: []uint32{1}}},
	}}
	e, n, ms, ram := rig(t, Config{}, []int{0}, script)
	var acceptedAt, landedAt uint64
	_, err := e.Run(1000, func() bool {
		if acceptedAt == 0 && ms[0].Done() {
			acceptedAt = e.Cycle()
		}
		if landedAt == 0 && ram.PeekWord(0x1010) == 1 {
			landedAt = e.Cycle()
		}
		return ms[0].Done() && n.Idle()
	})
	if err != nil {
		t.Fatal(err)
	}
	if acceptedAt == 0 || landedAt == 0 || acceptedAt >= landedAt {
		t.Fatalf("accept at %d should precede delivery at %d", acceptedAt, landedAt)
	}
}

func TestBurstReadOverMesh(t *testing.T) {
	script := [][]simtest.Step{{{Gap: 0, Req: ocp.Request{Cmd: ocp.BurstRead, Addr: 0x1020, Burst: 4}}}}
	e, n, ms, ram := rig(t, Config{}, []int{2}, script)
	for i := 0; i < 4; i++ {
		ram.PokeWord(0x1020+uint32(i*4), uint32(i+1))
	}
	runAll(t, e, n, ms, 1000)
	for i := 0; i < 4; i++ {
		if ms[0].RespData[0][i] != uint32(i+1) {
			t.Fatalf("burst data %v", ms[0].RespData[0])
		}
	}
}

func TestLatencyGrowsWithDistance(t *testing.T) {
	read := []simtest.Step{{Gap: 0, Req: ocp.Request{Cmd: ocp.Read, Addr: 0x1000, Burst: 1}}}
	// Master adjacent to the slave (node 10 next to 11) vs far corner (0).
	lat := func(node int) uint64 {
		e, n, ms, _ := rig(t, Config{}, []int{node}, [][]simtest.Step{read})
		runAll(t, e, n, ms, 1000)
		return ms[0].RespCycles[0] - ms[0].AssertCycles[0]
	}
	near, far := lat(10), lat(0)
	if near >= far {
		t.Fatalf("near latency %d should be below far latency %d", near, far)
	}
}

func TestTwoMastersSerializedAtSlave(t *testing.T) {
	read := []simtest.Step{{Gap: 0, Req: ocp.Request{Cmd: ocp.Read, Addr: 0x1000, Burst: 1}}}
	e, n, ms, ram := rig(t, Config{}, []int{0, 1}, [][]simtest.Step{read, read})
	ram.PokeWord(0x1000, 9)
	runAll(t, e, n, ms, 1000)
	if ms[0].RespData[0][0] != 9 || ms[1].RespData[0][0] != 9 {
		t.Fatal("both masters should read the value")
	}
	if ms[0].RespCycles[0] == ms[1].RespCycles[0] {
		t.Fatal("single-ported slave must serialize responses")
	}
}

func TestDecodeErrorLocalResponse(t *testing.T) {
	script := [][]simtest.Step{{{Gap: 0, Req: ocp.Request{Cmd: ocp.Read, Addr: 0x9f00_0000, Burst: 1}}}}
	e, n, ms, _ := rig(t, Config{}, []int{0}, script)
	runAll(t, e, n, ms, 1000)
	if n.DecodeErrors() != 1 {
		t.Fatal("decode error not counted")
	}
	if len(ms[0].RespData[0]) != 0 {
		t.Fatal("error response should be empty")
	}
}

func TestSemaphoreMutualExclusionOverNoC(t *testing.T) {
	e := sim.NewEngine(sim.Clock{})
	n := New(Config{}, e.Cycle)
	sem := mem.NewSemBank("sem", 0x9000, 1, 1)
	if err := n.AttachSlave(5, sem, sem.Range()); err != nil {
		t.Fatal(err)
	}
	lock := []simtest.Step{{Gap: 0, Req: ocp.Request{Cmd: ocp.Read, Addr: 0x9000, Burst: 1}}}
	m1 := simtest.NewMaster(n.AttachMaster(0), lock)
	m2 := simtest.NewMaster(n.AttachMaster(11), lock)
	e.Add(m1)
	e.Add(m2)
	e.Add(n)
	if _, err := e.Run(1000, func() bool { return m1.Done() && m2.Done() && n.Idle() }); err != nil {
		t.Fatal(err)
	}
	if m1.RespData[0][0]+m2.RespData[0][0] != 1 {
		t.Fatalf("semaphore granted to %d+%d masters", m1.RespData[0][0], m2.RespData[0][0])
	}
}

func TestHeavyCrossTrafficAllDelivered(t *testing.T) {
	// Property-style stress: many masters fire random reads/writes at two
	// slaves; every read must return the model value, every write must land.
	rng := rand.New(rand.NewSource(42))
	e := sim.NewEngine(sim.Clock{})
	n := New(Config{Width: 4, Height: 4}, e.Cycle)
	ramA := mem.NewRAM("a", 0x1000, 0x400, 1)
	ramB := mem.NewRAM("b", 0x2000, 0x400, 2)
	if err := n.AttachSlave(15, ramA, ramA.Range()); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachSlave(3, ramB, ramB.Range()); err != nil {
		t.Fatal(err)
	}
	// Pre-fill with known values; masters only read, plus write to their own
	// exclusive words (so the model stays simple under concurrency).
	for i := uint32(0); i < 0x100; i += 4 {
		ramA.PokeWord(0x1000+i, 0xA000+i)
		ramB.PokeWord(0x2000+i, 0xB000+i)
	}
	var masters []*simtest.Master
	nodes := []int{0, 1, 2, 4, 8, 12, 13, 14}
	for mi, node := range nodes {
		var steps []simtest.Step
		for k := 0; k < 12; k++ {
			off := uint32(rng.Intn(0x40)) * 4
			base := uint32(0x1000)
			if rng.Intn(2) == 0 {
				base = 0x2000
			}
			if rng.Intn(3) == 0 {
				// Exclusive write target per master.
				addr := base + 0x200 + uint32(mi*16) + uint32(k%4)*4
				steps = append(steps, simtest.Step{Gap: uint64(rng.Intn(4)),
					Req: ocp.Request{Cmd: ocp.Write, Addr: addr, Burst: 1, Data: []uint32{uint32(mi<<16 | k)}}})
			} else {
				steps = append(steps, simtest.Step{Gap: uint64(rng.Intn(4)),
					Req: ocp.Request{Cmd: ocp.Read, Addr: base + off, Burst: 1}})
			}
		}
		m := simtest.NewMaster(n.AttachMaster(node), steps)
		masters = append(masters, m)
		e.Add(m)
	}
	e.Add(n)
	_, err := e.Run(200_000, func() bool {
		for _, m := range masters {
			if !m.Done() {
				return false
			}
		}
		return n.Idle()
	})
	if err != nil {
		t.Fatalf("cross traffic did not drain: %v", err)
	}
	for mi, m := range masters {
		ri := 0
		for si, st := range m.Steps {
			if st.Req.Cmd != ocp.Read {
				continue
			}
			want := uint32(0xA000 + (st.Req.Addr - 0x1000))
			if st.Req.Addr >= 0x2000 {
				want = 0xB000 + (st.Req.Addr - 0x2000)
			}
			if m.RespData[si][0] != want {
				t.Fatalf("master %d read %d: got %#x, want %#x", mi, ri, m.RespData[si][0], want)
			}
			ri++
		}
	}
	if n.FlitsRouted() == 0 {
		t.Fatal("no flits routed")
	}
}

func TestIdleAfterDrain(t *testing.T) {
	script := [][]simtest.Step{{{Gap: 0, Req: ocp.Request{Cmd: ocp.Write, Addr: 0x1000, Burst: 1, Data: []uint32{1}}}}}
	e, n, ms, _ := rig(t, Config{}, []int{0}, script)
	if !n.Idle() {
		t.Fatal("fresh network should be idle")
	}
	e.Step() // master asserts
	if n.Idle() {
		t.Fatal("network with in-flight work should not be idle")
	}
	runAll(t, e, n, ms, 1000)
	if !n.Idle() {
		t.Fatal("drained network should be idle")
	}
}

func TestXYRouteFunction(t *testing.T) {
	e := sim.NewEngine(sim.Clock{})
	n := New(Config{Width: 4, Height: 3}, e.Cycle)
	r5 := n.routers[5] // (1,1)
	cases := map[int]int{
		6: portE, 4: portW, 1: portN, 9: portS, 5: portL,
		7: portE, // X first even though Y also differs? dst 7 = (3,1): same row → E
		0: portW, // (0,0): X first → W
	}
	for dst, want := range cases {
		if got := r5.route(dst); got != want {
			t.Errorf("route(5→%d) = %d, want %d", dst, got, want)
		}
	}
	// Dimension order: for dst 2 = (2,0) from 5 = (1,1): dx=+1 → E first.
	if r5.route(2) != portE {
		t.Error("XY routing must resolve X before Y")
	}
}

func TestAttachErrors(t *testing.T) {
	e := sim.NewEngine(sim.Clock{})
	n := New(Config{}, e.Cycle)
	ram := mem.NewRAM("r", 0, 0x100, 0)
	if err := n.AttachSlave(0, ram, ram.Range()); err != nil {
		t.Fatal(err)
	}
	ram2 := mem.NewRAM("r2", 0x80, 0x100, 0)
	if err := n.AttachSlave(1, ram2, ram2.Range()); err == nil {
		t.Fatal("overlapping slave range should fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double NI attach should panic")
		}
	}()
	n.AttachMaster(0)
}

// hintedProbe is a minimal Sleeper master that consumes the port's
// WakeHint the way core.Device does: it polls unless the port promises a
// frozen horizon.
type hintedProbe struct {
	port     ocp.MasterPort
	hinter   ocp.WakeHinter
	state    int
	acceptAt uint64
	respAt   uint64
}

func (p *hintedProbe) Tick(c uint64) {
	switch p.state {
	case 0:
		req := ocp.Request{Cmd: ocp.Read, Addr: 0xdead0000, Burst: 1}
		if p.port.TryRequest(&req) {
			p.acceptAt = c
			p.state = 1
		}
	case 1:
		if r, ok := p.port.TakeResponse(); ok {
			if !r.Err {
				panic("expected an error response for the unmapped read")
			}
			p.respAt = c
			p.state = 2
		}
	}
}

func (p *hintedProbe) NextWake(now uint64) uint64 {
	if p.state == 2 {
		return sim.WakeNever
	}
	if p.hinter != nil {
		if w := p.hinter.WakeHint(now); w > now {
			return w
		}
	}
	return now
}

// TestDecodeErrorHintTiming pins the WakeHint/accept interaction: a
// decode-error read synthesises its response (hasResp, respAt) while the
// accept handshake is still pending, and a hinted master must keep polling
// through the accept rather than sleeping to respAt — the event kernel
// must reproduce the strict kernel's accept and response cycles even with
// RespCycles far beyond the nap threshold.
func TestDecodeErrorHintTiming(t *testing.T) {
	run := func(kernel sim.Kernel) (accept, resp uint64) {
		t.Helper()
		e := sim.NewEngine(sim.Clock{})
		e.SetKernel(kernel)
		n := New(Config{RespCycles: 16}, e.Cycle)
		ram := mem.NewRAM("ram", 0x1000, 0x1000, 1)
		if err := n.AttachSlave(n.Nodes()-1, ram, ram.Range()); err != nil {
			t.Fatal(err)
		}
		p := &hintedProbe{port: n.AttachMaster(0)}
		p.hinter, _ = p.port.(ocp.WakeHinter)
		e.Add(p)
		e.Add(n)
		if _, err := e.Run(10_000, func() bool { return p.state == 2 }); err != nil {
			t.Fatal(err)
		}
		return p.acceptAt, p.respAt
	}
	sa, sr := run(sim.KernelStrict)
	for _, kernel := range []sim.Kernel{sim.KernelSkip, sim.KernelEvent} {
		ka, kr := run(kernel)
		if sa != ka || sr != kr {
			t.Fatalf("decode-error timing diverged: strict accept %d resp %d, %v accept %d resp %d",
				sa, sr, kernel, ka, kr)
		}
	}
	if sr == 0 {
		t.Fatal("probe never took the error response")
	}
}
