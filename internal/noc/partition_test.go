package noc

import (
	"testing"

	"noctg/internal/sim"
)

// newNet builds an unattached network for partition-geometry tests.
func newNet(cfg Config) *Network {
	e := sim.NewEngine(sim.Clock{})
	return New(cfg, e.Cycle)
}

// TestPartitionBands: k contiguous row bands must tile [0, Height) exactly,
// own every router in their rows, and answer RegionOf consistently for
// every fabric node.
func TestPartitionBands(t *testing.T) {
	cases := []struct {
		w, h, k int
		bands   [][2]int
	}{
		{4, 6, 3, [][2]int{{0, 2}, {2, 4}, {4, 6}}},
		{4, 5, 2, [][2]int{{0, 2}, {2, 5}}},
		{3, 4, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
		{5, 3, 1, [][2]int{{0, 3}}},
	}
	for _, tc := range cases {
		n := newNet(Config{Width: tc.w, Height: tc.h})
		regions := n.Partition(tc.k)
		if len(regions) != len(tc.bands) {
			t.Fatalf("%dx%d k=%d: %d regions, want %d", tc.w, tc.h, tc.k, len(regions), len(tc.bands))
		}
		routers := 0
		for i, rg := range regions {
			if rg.Index() != i {
				t.Fatalf("region %d reports index %d", i, rg.Index())
			}
			if rg.y0 != tc.bands[i][0] || rg.y1 != tc.bands[i][1] {
				t.Fatalf("%dx%d k=%d region %d band [%d,%d), want [%d,%d)",
					tc.w, tc.h, tc.k, i, rg.y0, rg.y1, tc.bands[i][0], tc.bands[i][1])
			}
			if len(rg.routers) != tc.w*(rg.y1-rg.y0) {
				t.Fatalf("region %d owns %d routers, want %d", i, len(rg.routers), tc.w*(rg.y1-rg.y0))
			}
			for _, r := range rg.routers {
				if r.y < rg.y0 || r.y >= rg.y1 {
					t.Fatalf("region %d [%d,%d) owns router at row %d", i, rg.y0, rg.y1, r.y)
				}
			}
			routers += len(rg.routers)
		}
		if routers != tc.w*tc.h {
			t.Fatalf("partition covers %d routers, want %d", routers, tc.w*tc.h)
		}
		for node := 0; node < n.Nodes(); node++ {
			row := node / tc.w
			want := 0
			for i, b := range tc.bands {
				if row >= b[0] && row < b[1] {
					want = i
				}
			}
			if got := n.RegionOf(node); got != want {
				t.Fatalf("RegionOf(%d) = %d, want %d", node, got, want)
			}
		}
	}
}

// TestPartitionClamps: out-of-range shard counts clamp to [1, Height], so a
// caller can request more parallelism than rows exist without special-casing.
func TestPartitionClamps(t *testing.T) {
	if got := len(newNet(Config{Width: 4, Height: 3}).Partition(8)); got != 3 {
		t.Fatalf("k=8 on height 3: %d regions, want 3", got)
	}
	if got := len(newNet(Config{Width: 4, Height: 3}).Partition(0)); got != 1 {
		t.Fatalf("k=0: %d regions, want 1", got)
	}
	if got := len(newNet(Config{Width: 4, Height: 3}).Partition(-2)); got != 1 {
		t.Fatalf("k=-2: %d regions, want 1", got)
	}
}

// TestPartitionTwicePanics: the partition is a one-shot structural change.
func TestPartitionTwicePanics(t *testing.T) {
	n := newNet(Config{Width: 4, Height: 4})
	n.Partition(2)
	defer func() {
		if recover() == nil {
			t.Fatal("second Partition did not panic")
		}
	}()
	n.Partition(2)
}

// cutCounts tallies a region's boundary links.
func cutCounts(rg *Region) (exports, imports int) {
	return len(rg.exports), len(rg.imports)
}

// TestPartitionMeshCuts: on a mesh, only the links crossing a band boundary
// are cut — Width links per direction per interior boundary — and each cut
// link must feed the opposite port of a router in the neighbouring band.
func TestPartitionMeshCuts(t *testing.T) {
	const w, h = 4, 4
	n := newNet(Config{Width: w, Height: h})
	regions := n.Partition(2)
	for i, rg := range regions {
		ex, im := cutCounts(rg)
		if ex != w || im != w {
			t.Fatalf("mesh region %d: %d exports / %d imports, want %d/%d", i, ex, im, w, w)
		}
	}
	// Every cut pair: an S output of a row-1 router into the N input of the
	// row-2 router below it, and vice versa.
	for _, cl := range regions[0].exports {
		if cl.dst.y != 2 || cl.inPort != portN {
			t.Fatalf("region 0 export feeds router (%d,%d) port %d, want row 2 port N", cl.dst.x, cl.dst.y, cl.inPort)
		}
	}
	for _, cl := range regions[1].exports {
		if cl.dst.y != 1 || cl.inPort != portS {
			t.Fatalf("region 1 export feeds router (%d,%d) port %d, want row 1 port S", cl.dst.x, cl.dst.y, cl.inPort)
		}
	}
	// The uncut interior links must stay local: rows 0<->1 and 2<->3.
	for _, r := range n.routers {
		for dir := portN; dir < portL; dir++ {
			crossing := (r.y == 1 && dir == portS) || (r.y == 2 && dir == portN)
			if (r.cut[dir] != nil) != crossing {
				t.Fatalf("router (%d,%d) dir %d: cut=%v, want crossing=%v", r.x, r.y, dir, r.cut[dir] != nil, crossing)
			}
		}
	}
}

// TestPartitionTorusWrapCuts: a torus band partition must also cut the
// north-south wrap links (row 0 <-> row H-1), doubling the boundary of a
// two-band split — and a one-band partition must cut nothing at all, wrap
// links included.
func TestPartitionTorusWrapCuts(t *testing.T) {
	const w, h = 4, 4
	n := newNet(Config{Width: w, Height: h, Topology: Torus})
	regions := n.Partition(2)
	for i, rg := range regions {
		ex, im := cutCounts(rg)
		if ex != 2*w || im != 2*w {
			t.Fatalf("torus region %d: %d exports / %d imports, want %d/%d", i, ex, im, 2*w, 2*w)
		}
	}
	wrap := 0
	for _, cl := range regions[0].exports {
		if cl.dst.y == 3 {
			wrap++
		} else if cl.dst.y != 2 {
			t.Fatalf("region 0 export feeds row %d, want 2 or 3", cl.dst.y)
		}
	}
	if wrap != w {
		t.Fatalf("region 0 has %d wrap exports, want %d", wrap, w)
	}

	single := newNet(Config{Width: w, Height: h, Topology: Torus}).Partition(1)
	if ex, im := cutCounts(single[0]); ex != 0 || im != 0 {
		t.Fatalf("one-band torus partition has %d exports / %d imports, want none", ex, im)
	}
}

// TestExchangeDrainsInOrder: flits parked in an import ring must land in
// the destination FIFO in push order at the next Exchange, the import count
// must be reported, and export credits must snapshot the importer's pops.
func TestExchangeDrainsInOrder(t *testing.T) {
	n := newNet(Config{Width: 4, Height: 4})
	regions := n.Partition(2)
	cl := regions[0].exports[0]

	for i := 0; i < 3; i++ {
		cl.push(0, flit{idx: i})
	}
	if cl.pushed[0] != 3 {
		t.Fatalf("pushed[0] = %d, want 3", cl.pushed[0])
	}
	if got := regions[1].Exchange(); got != 3 {
		t.Fatalf("Exchange imported %d, want 3", got)
	}
	q := &cl.dst.in[cl.inPort][0]
	if q.len() != 3 {
		t.Fatalf("destination FIFO holds %d flits, want 3", q.len())
	}
	for i := 0; i < 3; i++ {
		fl := q.pop()
		if fl.idx != i {
			t.Fatalf("flit %d popped with idx %d — ring reordered", i, fl.idx)
		}
	}
	// The importer's pops become the exporter's credit at its own boundary.
	cl.popped[0] = 3
	regions[0].Exchange()
	if cl.credit[0] != 3 {
		t.Fatalf("credit[0] = %d after boundary, want 3", cl.credit[0])
	}
}

// TestExchangeReturnsForeignPackets: a packet that retires away from home
// (a posted write's request stays at the slave) must ride the return list
// back into its home region's pool at the home region's next Exchange —
// otherwise the master region allocates per write forever while the slave
// region's pool grows without bound.
func TestExchangeReturnsForeignPackets(t *testing.T) {
	n := newNet(Config{Width: 4, Height: 4})
	regions := n.Partition(2)
	h0, h1 := &regions[0].st, &regions[1].st

	p := h0.getPacket() // issued in region 0...
	if p.home != h0 {
		t.Fatal("fresh packet not stamped with its home pool")
	}
	pooled := len(h1.pktPool)
	h1.putPacket(p) // ...retires in region 1
	if len(h1.pktPool) != pooled {
		t.Fatal("foreign packet pooled locally instead of being returned")
	}
	if len(h1.returns[0]) != 1 {
		t.Fatalf("return list toward region 0 holds %d packets, want 1", len(h1.returns[0]))
	}
	regions[0].Exchange()
	if len(h1.returns[0]) != 0 || len(h0.pktPool) == 0 || h0.pktPool[len(h0.pktPool)-1] != p {
		t.Fatal("home Exchange did not reclaim the returned packet")
	}
	if got := h0.getPacket(); got != p || got.home != h0 {
		t.Fatal("reclaimed packet not reused from the home pool")
	}
}

// TestExchangeAllocFree: the steady-state boundary path — push into the
// ring, drain at Exchange, refresh credits — must not allocate. This is the
// guard for the cross-shard flit exchange hot path; the platform-level
// sharded run has the same property end to end.
func TestExchangeAllocFree(t *testing.T) {
	n := newNet(Config{Width: 4, Height: 4})
	regions := n.Partition(2)
	cl := regions[0].exports[0]
	if avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 4; i++ {
			cl.push(0, flit{idx: i})
		}
		regions[1].Exchange()
		q := &cl.dst.in[cl.inPort][0]
		for q.len() > 0 {
			q.pop()
		}
		regions[0].Exchange()
		regions[1].st.residentFlits = 0
	}); avg != 0 {
		t.Fatalf("cut-link exchange path allocates %.1f times per boundary, want 0", avg)
	}
}
