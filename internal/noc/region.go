package noc

import (
	"fmt"

	"noctg/internal/sim"
)

// This file implements spatial sharding of the fabric: Partition cuts the
// mesh into contiguous row bands, each of which becomes a Region — a
// sim.Device that ticks only its own NIs and routers and can therefore run
// on its own engine/goroutine. The only coupling between regions is flits
// on the cut links, exchanged through preallocated ring buffers strictly
// between execution windows, plus credit counters giving the exporter a
// conservative view of downstream buffer space.
//
// Determinism is the design constraint. Partitioning also switches the
// whole fabric to cycle-start-occupancy flow control (see downstreamSpace):
// under that discipline the outcome of a cycle is a pure function of the
// state at its start, independent of router tick order, so cutting a link
// (which delays visibility of a pushed flit until the window boundary, and
// of a pop until the next credit snapshot) produces exactly the flit
// movements of the uncut fabric. Every partition of the same network —
// including the trivial one-region partition — computes byte-identical
// results.

// cutRingCap bounds a cut link's export ring. A physical link carries at
// most one flit per cycle and rings drain at every window boundary (at
// most one cycle apart while traffic is moving), so 8 slots is generous;
// the push panics on overflow rather than silently dropping.
const cutRingCap = 8

// cutFlit is one boundary-crossing flit with its virtual channel.
type cutFlit struct {
	fl flit
	vc int
}

// cutLink is one directed inter-region link. The exporting shard pushes
// into the ring during its compute step; the importing shard drains it in
// its exchange step after the window barrier, so the two sides never touch
// the ring concurrently and no locking is needed. pushed/popped/credit
// implement conservative flow control: pushed is exporter-owned, popped is
// importer-owned (bumped when the fed FIFO pops), and credit is the
// exporter's boundary snapshot of popped, giving it the downstream FIFO's
// occupancy as of the start of the window — the same view an uncut link's
// cycle-start check provides.
type cutLink struct {
	dst    *router // importing router
	inPort int     // dst input port the link feeds

	ring     [cutRingCap]cutFlit
	ringTail int // exporter-owned
	_        [8]uint64
	ringHead int // importer-owned

	pushed [numVC]uint64 // exporter-owned cumulative flits pushed
	credit [numVC]uint64 // exporter-owned snapshot of popped
	_      [8]uint64
	popped [numVC]uint64 // importer-owned cumulative flits popped
}

// push parks a boundary-crossing flit in the export ring.
func (cl *cutLink) push(vc int, fl flit) {
	if cl.ringTail-cl.ringHead >= cutRingCap {
		panic("noc: cut-link export ring overflow")
	}
	cl.ring[cl.ringTail%cutRingCap] = cutFlit{fl: fl, vc: vc}
	cl.ringTail++
	cl.pushed[vc]++
}

// Region is one spatial shard: the routers of a contiguous row band plus
// the NIs attached to them. It implements sim.Device/sim.Sleeper (and the
// fused/wake variants) exactly like the whole Network does, so a shard
// engine drives it with any kernel.
type Region struct {
	net    *Network
	index  int
	y0, y1 int // row band [y0, y1)

	routers []*router
	masters []*masterNI
	slaves  []*slaveNI

	st shardState

	// imports feed this region's routers from other shards; exports leave
	// it. Both lists are in deterministic construction order (router id,
	// then port), which fixes the boundary merge order for any schedule.
	imports []*cutLink
	exports []*cutLink

	waker sim.Waker
}

// Partition cuts the fabric into k contiguous row bands (clamped to
// [1, Height]) and switches it to the conservative sharded flow-control
// discipline. It must be called once, after all NIs are attached and
// before the first tick. Even k == 1 changes semantics (conservative flow
// control differs from the legacy tick-order-dependent check under
// backpressure), which is exactly what makes every k compute identical
// results; legacy single-engine artifacts are preserved by never calling
// Partition.
func (n *Network) Partition(k int) []*Region {
	if n.regions != nil {
		panic("noc: network already partitioned")
	}
	if n.st.livePackets != 0 || n.st.residentFlits != 0 {
		panic("noc: Partition on a network with traffic in flight")
	}
	if k < 1 {
		k = 1
	}
	if k > n.cfg.Height {
		k = n.cfg.Height
	}
	n.sharded = true
	n.regionOfRow = make([]int, n.cfg.Height)
	regions := make([]*Region, k)
	for s := 0; s < k; s++ {
		rg := &Region{net: n, index: s, y0: s * n.cfg.Height / k, y1: (s + 1) * n.cfg.Height / k}
		rg.st.hops = newHopsHistogram()
		rg.st.index = s
		rg.st.returns = make([][]*packet, k)
		for y := rg.y0; y < rg.y1; y++ {
			n.regionOfRow[y] = s
		}
		regions[s] = rg
	}
	for _, r := range n.routers {
		rg := regions[n.regionOfRow[r.y]]
		r.st = &rg.st
		rg.routers = append(rg.routers, r)
	}
	// NIs keep their attach order within each region (the same relative
	// order Network.Tick uses), and their packets charge the region pool.
	for _, m := range n.masters {
		rg := regions[n.regionOfRow[m.node/n.cfg.Width]]
		m.st, m.rg = &rg.st, rg
		rg.masters = append(rg.masters, m)
	}
	for _, s := range n.slaves {
		rg := regions[n.regionOfRow[s.node/n.cfg.Width]]
		s.st = &rg.st
		rg.slaves = append(rg.slaves, s)
	}
	// Cut every link whose endpoints land in different regions. Iteration
	// order (router id, then port) fixes the import/export list order.
	for _, r := range n.routers {
		src := regions[n.regionOfRow[r.y]]
		for dir := portN; dir < portL; dir++ {
			if !n.hasLink(r, dir) {
				continue
			}
			nb := n.neighbor(r.id, dir)
			dst := regions[n.regionOfRow[nb.y]]
			if dst == src {
				continue
			}
			cl := &cutLink{dst: nb, inPort: opposite(dir)}
			r.cut[dir] = cl
			nb.inCut[opposite(dir)] = cl
			src.exports = append(src.exports, cl)
			dst.imports = append(dst.imports, cl)
		}
	}
	n.regions = regions
	return regions
}

// hasLink reports whether router r has a physical link out of dir: always
// on a torus (wrap links close every ring), only inside the grid on a mesh.
func (n *Network) hasLink(r *router, dir int) bool {
	if n.cfg.Topology == Torus {
		return true
	}
	switch dir {
	case portN:
		return r.y > 0
	case portS:
		return r.y < n.cfg.Height-1
	case portE:
		return r.x < n.cfg.Width-1
	case portW:
		return r.x > 0
	}
	return false
}

// Regions returns the partition (nil before Partition).
func (n *Network) Regions() []*Region { return n.regions }

// RegionOf returns the region index owning a fabric node.
func (n *Network) RegionOf(node int) int {
	return n.regionOfRow[node/n.cfg.Width]
}

// Index returns the region's position in the partition.
func (rg *Region) Index() int { return rg.index }

// Name implements sim.Named for engine diagnostics.
func (rg *Region) Name() string { return fmt.Sprintf("noc/shard%d", rg.index) }

// BindCycleSource points the region's master NIs at their shard engine's
// cycle counter; NIs consult it inside TryRequest/TakeResponse, which run
// during master ticks on the shard's own engine.
func (rg *Region) BindCycleSource(now func() uint64) {
	for _, m := range rg.masters {
		m.now = now
	}
}

// Tick implements sim.Device with the same intra-cycle order as
// Network.Tick: master NIs inject, slave NIs serve, routers switch.
func (rg *Region) Tick(cycle uint64) {
	for _, m := range rg.masters {
		m.tick(cycle)
	}
	for _, s := range rg.slaves {
		s.tick(cycle)
	}
	for _, r := range rg.routers {
		r.tick(cycle)
	}
}

// Idle reports whether the region holds no flits and all its NIs are
// quiescent. Valid only at window boundaries after Exchange, when the
// import rings are empty.
func (rg *Region) Idle() bool {
	if rg.st.residentFlits != 0 {
		return false
	}
	for _, m := range rg.masters {
		if !m.idle() {
			return false
		}
	}
	for _, s := range rg.slaves {
		if !s.idle() {
			return false
		}
	}
	return true
}

// NextWake implements sim.Sleeper: like the whole network, a region has no
// timed state — it is active while it holds work and quiescent until a
// master injects (TryRequest fires the wake hook) or a neighbour shard
// imports flits (the shard runner wakes it after Exchange).
func (rg *Region) NextWake(now uint64) uint64 {
	if rg.Idle() {
		return sim.WakeNever
	}
	return now
}

// TickWake implements sim.TickSleeper (Tick then NextWake in one dispatch).
func (rg *Region) TickWake(cycle uint64) uint64 {
	rg.Tick(cycle)
	return rg.NextWake(cycle + 1)
}

// SetWaker implements sim.WakeSink.
func (rg *Region) SetWaker(w sim.Waker) { rg.waker = w }

// Wake puts the region back into its engine's tick set (no-op outside an
// engine).
func (rg *Region) Wake() {
	if rg.waker != nil {
		rg.waker.Wake()
	}
}

// Exchange runs the region's import side of a window boundary: drain every
// import ring into the destination FIFOs (per-link FIFO order; links in
// fixed construction order) and refresh the credit snapshots of the
// region's export links. It must run strictly between windows — after the
// barrier ending the exporters' compute step and before the barrier
// starting the next one. Returns the number of imported flits; the caller
// wakes the region when it is non-zero.
func (rg *Region) Exchange() int {
	imported := 0
	for _, cl := range rg.imports {
		for cl.ringHead != cl.ringTail {
			slot := &cl.ring[cl.ringHead%cutRingCap]
			cf := *slot
			slot.fl.pkt = nil // drop the packet reference for the pool's sake
			cl.ringHead++
			cl.dst.in[cl.inPort][cf.vc].push(cf.fl)
			imported++
		}
	}
	rg.st.residentFlits += imported
	for _, cl := range rg.exports {
		for vc := 0; vc < numVC; vc++ {
			cl.credit[vc] = cl.popped[vc]
		}
	}
	// Reclaim packets that retired in other regions (a posted write's
	// request struct stays at the slave): each peer parked them on its
	// return list during its compute step; only this region reads slot
	// [rg.index], so the concurrent peer Exchanges never touch the same
	// slice.
	for _, peer := range rg.net.regions {
		if peer == rg {
			continue
		}
		if ret := peer.st.returns[rg.index]; len(ret) > 0 {
			rg.st.pktPool = append(rg.st.pktPool, ret...)
			peer.st.returns[rg.index] = ret[:0]
		}
	}
	return imported
}

var _ sim.Device = (*Region)(nil)
var _ sim.Sleeper = (*Region)(nil)
var _ sim.WakeSink = (*Region)(nil)
var _ sim.TickSleeper = (*Region)(nil)
var _ sim.Named = (*Region)(nil)
