package noc

import "fmt"

// Exported port directions for route enumeration. They alias the internal
// router port constants, so a Hop's Port can be compared against these and
// printed with PortName.
const (
	PortN = portN
	PortE = portE
	PortS = portS
	PortW = portW
	PortL = portL
	// NumPorts is the per-router port count (N, E, S, W, local).
	NumPorts = numPorts
)

// PortName returns the compass name of a router output port.
func PortName(p int) string {
	switch p {
	case portN:
		return "N"
	case portE:
		return "E"
	case portS:
		return "S"
	case portW:
		return "W"
	case portL:
		return "L"
	}
	return fmt.Sprintf("port(%d)", p)
}

// FlitCounts returns the request and response packet lengths in flits for
// a transaction of the given kind and burst — the exact lengths the live
// NIs build (reqFlits/respFlits), exported so channel-load enumeration
// weighs each route by the true flit volume. Writes are posted: their
// response length is 0 because no response packet crosses the fabric.
func FlitCounts(write bool, burst int) (req, resp int) {
	if write {
		return 2 + burst, 0
	}
	return 2, 2 + burst
}

// Hop is one step of a route: the router and the output port its flits
// leave through. The final hop of every route is (dst, PortL) — the
// ejection into the destination node's network interface.
type Hop struct {
	Node int
	Port int
}

// NextPort returns the output port a packet at router cur takes toward dst
// under the fabric's dimension-ordered routing: X first then Y on the
// mesh, shortest way around each ring (ties toward east/south) on the
// torus. It returns PortL when cur == dst. The logic mirrors the live
// router's route decision exactly; TestRouteMatchesRouter pins the
// equivalence, so analytic channel-load enumeration and the simulated
// fabric can never drift apart.
func (c Config) NextPort(cur, dst int) int {
	c = c.WithDefaults()
	w, h := c.Width, c.Height
	dx := (dst % w) - (cur % w)
	dy := (dst / w) - (cur / w)
	if c.Topology == Torus {
		if dx != 0 {
			if e := ((dx % w) + w) % w; 2*e <= w {
				return portE
			}
			return portW
		}
		if dy != 0 {
			if s := ((dy % h) + h) % h; 2*s <= h {
				return portS
			}
			return portN
		}
		return portL
	}
	switch {
	case dx > 0:
		return portE
	case dx < 0:
		return portW
	case dy > 0:
		return portS
	case dy < 0:
		return portN
	}
	return portL
}

// step returns the router one hop from cur through port p (wrap-aware).
func (c Config) step(cur, p int) int {
	w, h := c.Width, c.Height
	x, y := cur%w, cur/w
	switch p {
	case portE:
		x = (x + 1) % w
	case portW:
		x = (x - 1 + w) % w
	case portS:
		y = (y + 1) % h
	case portN:
		y = (y - 1 + h) % h
	}
	return y*w + x
}

// Route appends the src→dst hop sequence to path and returns it. Every
// directed link the packet's flits traverse appears once: each
// intermediate (router, output-port) pair plus the final (dst, PortL)
// ejection. src == dst yields the single ejection hop. The injection link
// (NI into src's local input port) is implicit — it is a per-node
// resource, not a router output.
func (c Config) Route(src, dst int, path []Hop) []Hop {
	c = c.WithDefaults()
	cur := src
	for {
		p := c.NextPort(cur, dst)
		path = append(path, Hop{Node: cur, Port: p})
		if p == portL {
			return path
		}
		cur = c.step(cur, p)
	}
}

// RouteLen returns the hop distance from src to dst (router-to-router
// link traversals, excluding the local ejection).
func (c Config) RouteLen(src, dst int) int {
	c = c.WithDefaults()
	n := 0
	for cur := src; cur != dst; n++ {
		cur = c.step(cur, c.NextPort(cur, dst))
	}
	return n
}
