package noc

import "testing"

// TestRouteMatchesRouter pins the exported route enumerator to the live
// router's DOR decision on every (src, dst, position) triple of both
// topologies: analytic channel loads must come from the same paths the
// fabric actually uses.
func TestRouteMatchesRouter(t *testing.T) {
	for _, topo := range []Topology{Mesh, Torus} {
		for _, dims := range [][2]int{{4, 3}, {2, 2}, {5, 4}, {3, 5}} {
			cfg := Config{Width: dims[0], Height: dims[1], Topology: topo}.WithDefaults()
			net := New(cfg, func() uint64 { return 0 })
			nodes := cfg.Width * cfg.Height
			for cur := 0; cur < nodes; cur++ {
				for dst := 0; dst < nodes; dst++ {
					want := net.routers[cur].route(dst)
					got := cfg.NextPort(cur, dst)
					if got != want {
						t.Fatalf("%v %dx%d: NextPort(%d, %d) = %s, router says %s",
							topo, cfg.Width, cfg.Height, cur, dst, PortName(got), PortName(want))
					}
				}
			}
		}
	}
}

// TestRouteTerminates walks every pair and checks the enumerated route
// ends with the local ejection at dst and is cycle-free.
func TestRouteTerminates(t *testing.T) {
	for _, topo := range []Topology{Mesh, Torus} {
		cfg := Config{Width: 4, Height: 3, Topology: topo}.WithDefaults()
		nodes := cfg.Width * cfg.Height
		var path []Hop
		for src := 0; src < nodes; src++ {
			for dst := 0; dst < nodes; dst++ {
				path = cfg.Route(src, dst, path[:0])
				if len(path) > nodes+1 {
					t.Fatalf("%v: route %d->%d has %d hops", topo, src, dst, len(path))
				}
				last := path[len(path)-1]
				if last.Node != dst || last.Port != PortL {
					t.Fatalf("%v: route %d->%d ends at node %d port %s",
						topo, src, dst, last.Node, PortName(last.Port))
				}
				if got, want := len(path)-1, cfg.RouteLen(src, dst); got != want {
					t.Fatalf("%v: route %d->%d: %d link hops, RouteLen says %d", topo, src, dst, got, want)
				}
			}
		}
	}
}

// TestRouteLenMesh pins hand-computed mesh distances: DOR on an open grid
// is the Manhattan metric.
func TestRouteLenMesh(t *testing.T) {
	cfg := Config{Width: 4, Height: 3}
	cases := []struct{ src, dst, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 11, 5}, {3, 8, 5}, {5, 6, 1},
	}
	for _, c := range cases {
		if got := cfg.RouteLen(c.src, c.dst); got != c.want {
			t.Errorf("RouteLen(%d, %d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
	// Torus wrap: 0 -> 3 on a width-4 ring is one west hop, not three east.
	tor := Config{Width: 4, Height: 3, Topology: Torus}
	if got := tor.RouteLen(0, 3); got != 1 {
		t.Errorf("torus RouteLen(0, 3) = %d, want 1", got)
	}
	if got := tor.RouteLen(0, 8); got != 1 {
		t.Errorf("torus RouteLen(0, 8) = %d, want 1", got)
	}
}
