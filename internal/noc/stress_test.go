package noc

import (
	"testing"

	"noctg/internal/mem"
	"noctg/internal/ocp"
	"noctg/internal/sim"
	"noctg/internal/simtest"
)

func TestMinimalBuffersStillDeliver(t *testing.T) {
	// BufferFlits=1 maximises backpressure; wormhole flow control must
	// still deliver everything without deadlock (2 VCs + XY).
	e := sim.NewEngine(sim.Clock{})
	n := New(Config{Width: 3, Height: 3, BufferFlits: 1}, e.Cycle)
	ram := mem.NewRAM("ram", 0x1000, 0x1000, 1)
	if err := n.AttachSlave(8, ram, ram.Range()); err != nil {
		t.Fatal(err)
	}
	var masters []*simtest.Master
	for _, node := range []int{0, 1, 2, 3} {
		var steps []simtest.Step
		for k := 0; k < 8; k++ {
			steps = append(steps, simtest.Step{
				Req: ocp.Request{Cmd: ocp.BurstRead, Addr: 0x1000 + uint32(k*16), Burst: 4},
			})
		}
		m := simtest.NewMaster(n.AttachMaster(node), steps)
		masters = append(masters, m)
		e.Add(m)
	}
	e.Add(n)
	_, err := e.Run(100_000, func() bool {
		for _, m := range masters {
			if !m.Done() {
				return false
			}
		}
		return n.Idle()
	})
	if err != nil {
		t.Fatalf("minimal-buffer mesh stalled: %v", err)
	}
}

func TestWormholePacketsStayContiguous(t *testing.T) {
	// With competing traffic, each slave NI must still see every request
	// packet's flits back to back per VC — wormhole allocation holds the
	// output until the tail passes. Correct reassembly under load proves it
	// (the NI has no reordering logic to hide interleaving).
	e := sim.NewEngine(sim.Clock{})
	n := New(Config{Width: 4, Height: 2, BufferFlits: 2}, e.Cycle)
	ram := mem.NewRAM("ram", 0x1000, 0x4000, 1)
	if err := n.AttachSlave(7, ram, ram.Range()); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 0x1000; i += 4 {
		ram.PokeWord(0x1000+i, i)
	}
	var masters []*simtest.Master
	for mi, node := range []int{0, 1, 2, 3} {
		var steps []simtest.Step
		for k := 0; k < 6; k++ {
			// Long bursts maximise interleaving opportunity.
			steps = append(steps, simtest.Step{
				Req: ocp.Request{Cmd: ocp.BurstRead, Addr: 0x1000 + uint32(mi*0x400+k*32), Burst: 8},
			})
		}
		m := simtest.NewMaster(n.AttachMaster(node), steps)
		masters = append(masters, m)
		e.Add(m)
	}
	e.Add(n)
	_, err := e.Run(200_000, func() bool {
		for _, m := range masters {
			if !m.Done() {
				return false
			}
		}
		return n.Idle()
	})
	if err != nil {
		t.Fatal(err)
	}
	for mi, m := range masters {
		for si, data := range m.RespData {
			base := uint32(mi*0x400 + si*32)
			for b, v := range data {
				want := base + uint32(b*4)
				if v != want {
					t.Fatalf("master %d burst %d beat %d: %#x, want %#x (interleaved?)", mi, si, b, v, want)
				}
			}
		}
	}
}

func TestManyToOneHotspot(t *testing.T) {
	// All masters hammer one slave: throughput is bounded by the slave,
	// but fairness (round-robin allocation) keeps every master progressing.
	e := sim.NewEngine(sim.Clock{})
	n := New(Config{Width: 3, Height: 2}, e.Cycle)
	ram := mem.NewRAM("ram", 0x1000, 0x1000, 0)
	if err := n.AttachSlave(5, ram, ram.Range()); err != nil {
		t.Fatal(err)
	}
	var masters []*simtest.Master
	for _, node := range []int{0, 1, 2, 3} {
		steps := make([]simtest.Step, 10)
		for k := range steps {
			steps[k] = simtest.Step{Req: ocp.Request{Cmd: ocp.Read, Addr: 0x1000, Burst: 1}}
		}
		m := simtest.NewMaster(n.AttachMaster(node), steps)
		masters = append(masters, m)
		e.Add(m)
	}
	e.Add(n)
	if _, err := e.Run(200_000, func() bool {
		for _, m := range masters {
			if !m.Done() {
				return false
			}
		}
		return n.Idle()
	}); err != nil {
		t.Fatal(err)
	}
	// No master should be starved: completion spread bounded.
	var min, max uint64 = ^uint64(0), 0
	for _, m := range masters {
		done := m.RespCycles[len(m.RespCycles)-1]
		if done < min {
			min = done
		}
		if done > max {
			max = done
		}
	}
	if max > min*3 {
		t.Fatalf("hotspot starvation: completions spread %d..%d", min, max)
	}
}
