package noc

import (
	"math/rand"
	"testing"

	"noctg/internal/mem"
	"noctg/internal/ocp"
	"noctg/internal/sim"
	"noctg/internal/simtest"
)

func TestParseTopology(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Topology
		ok   bool
	}{
		{"", Mesh, true},
		{"mesh", Mesh, true},
		{"torus", Torus, true},
		{"ring", 0, false},
	} {
		got, err := ParseTopology(tc.in)
		if (err == nil) != tc.ok {
			t.Fatalf("ParseTopology(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Fatalf("ParseTopology(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if Mesh.String() != "mesh" || Torus.String() != "torus" {
		t.Fatalf("Topology.String: %v / %v", Mesh, Torus)
	}
}

// TestTorusRouteShortestPath checks the per-hop routing decision: the torus
// must take the shorter way around each ring, ties toward east/south.
func TestTorusRouteShortestPath(t *testing.T) {
	n := New(Config{Width: 4, Height: 4, Topology: Torus}, func() uint64 { return 0 })
	cases := []struct {
		from, to int
		want     int
	}{
		{0, 1, portE},  // one hop east
		{0, 3, portW},  // wrap west is 1 hop, east is 3
		{3, 0, portE},  // wrap east is 1 hop
		{0, 2, portE},  // tie at half the ring goes east
		{2, 0, portE},  // tie from the other side also goes east
		{0, 12, portN}, // wrap north is 1 hop, south is 3
		{12, 0, portS}, // wrap south is 1 hop
		{0, 8, portS},  // vertical tie goes south
		{5, 5, portL},  // local delivery
		{1, 11, portE}, // X resolved before Y (dimension order)
	}
	for _, tc := range cases {
		got := n.routers[tc.from].route(tc.to)
		if got != tc.want {
			t.Fatalf("route %d->%d = %d, want %d", tc.from, tc.to, got, tc.want)
		}
	}
}

// TestTorusNeighborWraps checks the wrap-around links exist and close the
// rings in both dimensions.
func TestTorusNeighborWraps(t *testing.T) {
	n := New(Config{Width: 4, Height: 3, Topology: Torus}, func() uint64 { return 0 })
	if nb := n.neighbor(3, portE); nb.id != 0 {
		t.Fatalf("east wrap of node 3 = %d, want 0", nb.id)
	}
	if nb := n.neighbor(0, portW); nb.id != 3 {
		t.Fatalf("west wrap of node 0 = %d, want 3", nb.id)
	}
	if nb := n.neighbor(0, portN); nb.id != 8 {
		t.Fatalf("north wrap of node 0 = %d, want 8", nb.id)
	}
	if nb := n.neighbor(8, portS); nb.id != 0 {
		t.Fatalf("south wrap of node 8 = %d, want 0", nb.id)
	}
}

// TestMeshNeighborStillPanics pins the mesh contract: edge routers have no
// wrap links.
func TestMeshNeighborStillPanics(t *testing.T) {
	n := New(Config{Width: 4, Height: 3}, func() uint64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("mesh neighbor over the edge must panic")
		}
	}()
	n.neighbor(3, portE)
}

// TestTorusWrapShortensLatency sends a read across the full row width on a
// mesh and on a torus: the torus must deliver strictly faster because the
// wrap link turns W-1 hops into one.
func TestTorusWrapShortensLatency(t *testing.T) {
	latency := func(topo Topology) uint64 {
		e := sim.NewEngine(sim.Clock{})
		n := New(Config{Width: 6, Height: 2, Topology: topo}, e.Cycle)
		ram := mem.NewRAM("ram", 0x1000, 0x1000, 1)
		// Master at node 0, RAM at the end of the same row (node 5).
		if err := n.AttachSlave(5, ram, ram.Range()); err != nil {
			t.Fatal(err)
		}
		m := simtest.NewMaster(n.AttachMaster(0),
			[]simtest.Step{{Req: ocp.Request{Cmd: ocp.Read, Addr: 0x1004, Burst: 1}}})
		e.Add(m)
		e.Add(n)
		if _, err := e.Run(2000, func() bool { return m.Done() && n.Idle() }); err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		return m.RespCycles[0]
	}
	mesh, torus := latency(Mesh), latency(Torus)
	if torus >= mesh {
		t.Fatalf("torus read latency %d not below mesh %d", torus, mesh)
	}
}

// TestTorusHeavyCrossTrafficAllDelivered is the torus version of the mesh
// stress test: random all-to-one and neighbour traffic with writes verified
// in memory, on a fabric whose rings exercise the wrap links and dateline
// VCs continuously.
func TestTorusHeavyCrossTrafficAllDelivered(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := sim.NewEngine(sim.Clock{})
	n := New(Config{Width: 4, Height: 4, Topology: Torus, BufferFlits: 2}, e.Cycle)
	ram := mem.NewRAM("ram", 0x1000, 0x4000, 1)
	if err := n.AttachSlave(15, ram, ram.Range()); err != nil {
		t.Fatal(err)
	}
	nodes := []int{0, 1, 2, 3, 4, 7, 8, 11, 12, 13}
	var masters []*simtest.Master
	type expect struct{ addr, val uint32 }
	var writes []expect
	for mi, node := range nodes {
		var script []simtest.Step
		for k := 0; k < 12; k++ {
			addr := uint32(0x1000 + 4*(mi*64+k))
			if rng.Intn(2) == 0 {
				val := rng.Uint32()
				script = append(script, simtest.Step{
					Gap: uint64(rng.Intn(5)),
					Req: ocp.Request{Cmd: ocp.Write, Addr: addr, Burst: 1, Data: []uint32{val}},
				})
				writes = append(writes, expect{addr, val})
			} else {
				burst := 1 + rng.Intn(4)
				cmd := ocp.Read
				if burst > 1 {
					cmd = ocp.BurstRead
				}
				script = append(script, simtest.Step{
					Gap: uint64(rng.Intn(5)),
					Req: ocp.Request{Cmd: cmd, Addr: addr, Burst: burst},
				})
			}
		}
		m := simtest.NewMaster(n.AttachMaster(node), script)
		masters = append(masters, m)
		e.Add(m)
	}
	e.Add(n)
	if _, err := e.Run(200_000, func() bool {
		for _, m := range masters {
			if !m.Done() {
				return false
			}
		}
		return n.Idle()
	}); err != nil {
		t.Fatalf("torus cross traffic did not drain: %v", err)
	}
	for _, w := range writes {
		if got := ram.PeekWord(w.addr); got != w.val {
			t.Fatalf("write %#x lost: got %#x want %#x", w.addr, got, w.val)
		}
	}
	if n.st.livePackets != 0 {
		t.Fatalf("%d packets leaked from the pool", n.st.livePackets)
	}
	if n.NextWake(e.Cycle()) != sim.WakeNever {
		t.Fatal("drained torus must report WakeNever")
	}
}

// TestTorusMinimalBuffersStillDeliver runs ring-saturating traffic with
// 1-flit FIFOs: the dateline VCs must keep the wrap rings deadlock-free
// even in the tightest configuration.
func TestTorusMinimalBuffersStillDeliver(t *testing.T) {
	e := sim.NewEngine(sim.Clock{})
	n := New(Config{Width: 3, Height: 3, Topology: Torus, BufferFlits: 1}, e.Cycle)
	ram := mem.NewRAM("ram", 0x1000, 0x1000, 1)
	if err := n.AttachSlave(8, ram, ram.Range()); err != nil {
		t.Fatal(err)
	}
	var masters []*simtest.Master
	for _, node := range []int{0, 1, 2, 3, 4, 5, 6, 7} {
		var script []simtest.Step
		for k := 0; k < 6; k++ {
			script = append(script, simtest.Step{
				Req: ocp.Request{Cmd: ocp.BurstWrite, Addr: uint32(0x1000 + 4*((node*8+k)%64)),
					Burst: 4, Data: []uint32{1, 2, 3, 4}},
			})
		}
		m := simtest.NewMaster(n.AttachMaster(node), script)
		masters = append(masters, m)
		e.Add(m)
	}
	e.Add(n)
	if _, err := e.Run(500_000, func() bool {
		for _, m := range masters {
			if !m.Done() {
				return false
			}
		}
		return n.Idle()
	}); err != nil {
		t.Fatalf("minimal-buffer torus deadlocked or stalled: %v", err)
	}
}
