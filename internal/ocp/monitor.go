package ocp

import "noctg/internal/sim"

// TrafficMeter is the uniform per-master traffic-statistics view the
// measurement layer aggregates over: completed transactions, completed
// reads, and the read-latency histogram (canonical sim.LatencyBounds
// buckets). Monitors implement it at the OCP port; traffic sources that
// run untraced (stochastic generators in open-loop curve runs) implement
// it themselves.
type TrafficMeter interface {
	// Transactions returns completed transactions: accepted posted writes
	// plus reads whose response arrived.
	Transactions() uint64
	// Reads returns completed reads.
	Reads() uint64
	// LatencyHist returns the accept-to-response read-latency histogram
	// (the interconnect's service latency — the paper's port metric).
	LatencyHist() *sim.Histogram
	// RequestLatencyHist returns the assert-to-response read-latency
	// histogram: service latency plus the source-queueing delay spent
	// waiting for the interconnect to accept the request. This is the
	// end-to-end metric load-latency curves are built on — under
	// saturation the queueing term dominates while the service term
	// barely moves.
	RequestLatencyHist() *sim.Histogram
}

// Event is one traced OCP transaction as observed at a master interface.
// The three timestamps are what the translator needs to compute
// interconnect-independent idle gaps (see DESIGN.md §5):
//
//   - Assert: the first cycle the master presented the request,
//   - Accept: the cycle the interconnect latched it (posted writes complete
//     here from the master's point of view),
//   - Resp:   the cycle read data returned (reads only).
type Event struct {
	Cmd      Cmd
	Addr     uint32
	Burst    int
	Data     []uint32 // write payload or read response data
	MasterID int
	Assert   uint64
	Accept   uint64
	Resp     uint64 // zero for writes
	HasResp  bool
}

// Done returns the completion cycle from the master's perspective: response
// arrival for reads, acceptance for posted writes.
func (e *Event) Done() uint64 {
	if e.HasResp {
		return e.Resp
	}
	return e.Accept
}

// Monitor wraps a MasterPort and records every transaction flowing through
// it. It is the in-simulation equivalent of the paper's adapted OCP
// interface modules that "collect traces of OCP request and response
// communication events".
//
// The wrapped port sees exactly the same call sequence, so enabling tracing
// does not perturb simulated timing (it does cost host time, which is the
// paper's §6 trace-collection overhead experiment).
type Monitor struct {
	port   MasterPort
	now    func() uint64
	events []Event

	cur       Event
	asserting bool // a request has been presented but not yet accepted
	awaiting  bool // an accepted read is awaiting its response

	// Registry-backed metrics mirroring the event stream: txns/reads
	// count completed transactions as events are recorded, lat observes
	// Resp-Accept read latencies. Unlike events, these are epoch-resettable
	// through the stats registry, which is what phased measurement reads.
	txns   sim.Counter
	reads  sim.Counter
	lat    *sim.Histogram
	reqLat *sim.Histogram
}

// NewMonitor wraps port, reading the current cycle from now.
func NewMonitor(port MasterPort, now func() uint64) *Monitor {
	if port == nil || now == nil {
		panic("ocp: NewMonitor requires a port and a clock source")
	}
	return &Monitor{port: port, now: now,
		lat: sim.NewLatencyHistogram(), reqLat: sim.NewLatencyHistogram()}
}

// Transactions implements TrafficMeter.
func (m *Monitor) Transactions() uint64 { return m.txns.Value() }

// Reads implements TrafficMeter.
func (m *Monitor) Reads() uint64 { return m.reads.Value() }

// LatencyHist implements TrafficMeter.
func (m *Monitor) LatencyHist() *sim.Histogram { return m.lat }

// RequestLatencyHist implements TrafficMeter.
func (m *Monitor) RequestLatencyHist() *sim.Histogram { return m.reqLat }

// RegisterStats implements sim.StatsSource.
func (m *Monitor) RegisterStats(r *sim.Registry) {
	r.RegisterCounter("transactions", &m.txns)
	r.RegisterCounter("reads", &m.reads)
	r.RegisterHistogram("latency", m.lat)
	r.RegisterHistogram("req_latency", m.reqLat)
}

// TryRequest implements MasterPort, recording assert and accept cycles.
func (m *Monitor) TryRequest(req *Request) bool {
	if !m.asserting {
		m.cur = Event{
			Cmd:      req.Cmd,
			Addr:     req.Addr,
			Burst:    req.Burst,
			MasterID: req.MasterID,
			Assert:   m.now(),
		}
		if req.Cmd.IsWrite() {
			m.cur.Data = append([]uint32(nil), req.Data...)
		}
		m.asserting = true
	}
	ok := m.port.TryRequest(req)
	if ok {
		m.cur.Accept = m.now()
		m.asserting = false
		if req.Cmd.IsRead() {
			m.awaiting = true
		} else {
			m.events = append(m.events, m.cur)
			m.txns.Inc()
		}
	}
	return ok
}

// TakeResponse implements MasterPort, recording the response cycle and data.
func (m *Monitor) TakeResponse() (*Response, bool) {
	resp, ok := m.port.TakeResponse()
	if ok && m.awaiting {
		m.cur.Resp = m.now()
		m.cur.HasResp = true
		m.cur.Data = append([]uint32(nil), resp.Data...)
		m.events = append(m.events, m.cur)
		m.txns.Inc()
		m.reads.Inc()
		m.lat.Observe(m.cur.Resp - m.cur.Accept)
		m.reqLat.Observe(m.cur.Resp - m.cur.Assert)
		m.awaiting = false
	}
	return resp, ok
}

// Busy implements MasterPort.
func (m *Monitor) Busy() bool { return m.port.Busy() }

// WakeHint implements WakeHinter by delegation, so tracing a port does not
// cost the master its ability to sleep through known stall horizons.
// Monitors record only on TryRequest/TakeResponse transitions, which a
// hinted sleep by definition does not skip.
func (m *Monitor) WakeHint(now uint64) uint64 {
	if h, ok := m.port.(WakeHinter); ok {
		return h.WakeHint(now)
	}
	return now
}

var _ WakeHinter = (*Monitor)(nil)

// Events returns the recorded transactions in issue order. The returned
// slice is owned by the monitor; callers must not modify it.
func (m *Monitor) Events() []Event { return m.events }

// Reset discards all recorded events.
func (m *Monitor) Reset() {
	m.events = nil
	m.asserting = false
	m.awaiting = false
}

var _ MasterPort = (*Monitor)(nil)
var _ TrafficMeter = (*Monitor)(nil)
var _ sim.StatsSource = (*Monitor)(nil)
