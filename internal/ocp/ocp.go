// Package ocp models the OCP-like socket between IP cores (or traffic
// generators) and the interconnect. As in the paper, the OCP boundary is the
// contract that lets processor models and TG devices be exchanged freely
// (Figure 1): anything that drives a MasterPort can sit on any interconnect
// that provides one.
//
// The protocol modelled here is the subset the paper's TG needs: single and
// burst reads and writes, a request/accept handshake, and a response phase
// for reads. Writes are posted — the master is released as soon as the
// interconnect accepts the request (Figure 2(a) semantics).
package ocp

import "fmt"

// Cmd enumerates OCP master commands (Table 1 of the paper issues exactly
// these four).
type Cmd uint8

const (
	// None is the idle command; it never appears in a valid Request.
	None Cmd = iota
	// Read is a single-word blocking read.
	Read
	// Write is a single-word posted write.
	Write
	// BurstRead is a multi-beat blocking read of consecutive words.
	BurstRead
	// BurstWrite is a multi-beat posted write of consecutive words.
	BurstWrite
)

// String returns the trace mnemonic for the command (matching the .trc file
// format).
func (c Cmd) String() string {
	switch c {
	case None:
		return "NONE"
	case Read:
		return "RD"
	case Write:
		return "WR"
	case BurstRead:
		return "BRD"
	case BurstWrite:
		return "BWR"
	}
	return fmt.Sprintf("Cmd(%d)", uint8(c))
}

// IsRead reports whether the command expects a data response.
func (c Cmd) IsRead() bool { return c == Read || c == BurstRead }

// IsWrite reports whether the command carries write data.
func (c Cmd) IsWrite() bool { return c == Write || c == BurstWrite }

// Request is one OCP transaction request as presented by a master.
type Request struct {
	// Cmd is the transfer type.
	Cmd Cmd
	// Addr is the byte address of the first word. Must be word aligned.
	Addr uint32
	// Burst is the number of beats; 1 for single transfers.
	Burst int
	// Data holds the write payload (len == Burst) for write commands and is
	// nil for reads.
	Data []uint32
	// MasterID identifies the issuing master (for arbitration and tracing).
	MasterID int
	// Class is the message's priority class (0 when unclassified). The
	// fabrics forward the tag untouched and arbitrate class-blind; it
	// exists so class-aware masters and meters can attribute traffic
	// (see stochastic.Config.Classes).
	Class int
}

// Validate checks structural invariants of the request.
func (r *Request) Validate() error {
	switch r.Cmd {
	case Read, Write:
		if r.Burst != 1 {
			return fmt.Errorf("ocp: %v burst must be 1, got %d", r.Cmd, r.Burst)
		}
	case BurstRead, BurstWrite:
		if r.Burst < 1 {
			return fmt.Errorf("ocp: %v burst must be >= 1, got %d", r.Cmd, r.Burst)
		}
	default:
		return fmt.Errorf("ocp: invalid command %v", r.Cmd)
	}
	if r.Addr%4 != 0 {
		return fmt.Errorf("ocp: address %#08x not word aligned", r.Addr)
	}
	if r.Cmd.IsWrite() && len(r.Data) != r.Burst {
		return fmt.Errorf("ocp: write payload has %d words, burst is %d", len(r.Data), r.Burst)
	}
	if r.Cmd.IsRead() && r.Data != nil {
		return fmt.Errorf("ocp: read request carries data")
	}
	return nil
}

// Response is the slave's answer to a read request (writes are posted and
// produce no response).
type Response struct {
	// Data holds one word per beat of the originating burst.
	Data []uint32
	// Err is set when the address decoded to no slave or the slave faulted.
	Err bool
}

// MasterPort is the master-side connection point an interconnect provides.
// Masters operate it strictly within their Tick: at most one transaction may
// be outstanding per port (the paper's cores are in-order, single-pipeline).
type MasterPort interface {
	// TryRequest presents req this cycle. It returns true when the
	// interconnect accepts (latches) the request; the master must re-present
	// the same request on subsequent cycles until accepted. The request's
	// Data slice must stay untouched from the first presentation until
	// acceptance; interconnects copy the payload into their own storage no
	// later than acceptance, so after TryRequest returns true the master may
	// reuse the buffer.
	TryRequest(req *Request) bool
	// TakeResponse returns the pending response for this master, if one has
	// been delivered by the current cycle, consuming it. The returned
	// Response (and its Data slice) may be backed by port-owned storage that
	// is reused by the next transaction: callers must copy out anything they
	// need before operating the port again.
	TakeResponse() (*Response, bool)
	// Busy reports whether a previously accepted transaction is still in
	// flight (posted writes clear as soon as they are accepted).
	Busy() bool
}

// WakeHinter is optionally implemented by master ports that can bound when
// a blocked master could next make progress: WakeHint(now) returns the
// earliest cycle at which a pending TryRequest could be accepted or a
// pending TakeResponse could deliver. The hint carries the sim.Sleeper
// strictness: a returned w > now is a promise that the port's answers are
// frozen for every cycle in [now, w), so a master blocked on the port may
// skip its polling ticks entirely under the event-driven kernel. Ports that
// cannot bound the next transition must return now — the blocked master
// then simply polls every cycle, as it would on a port without the
// interface.
type WakeHinter interface {
	WakeHint(now uint64) uint64
}

// Slave is the slave-side target invoked by an interconnect once a
// transaction wins arbitration and traverses the fabric.
type Slave interface {
	// AccessCycles returns the intrinsic service time in cycles for req
	// (the paper's "slave access time"), excluding interconnect transport.
	AccessCycles(req *Request) uint64
	// Perform applies the request's side effects and, for reads, returns
	// the data. It is called exactly once per accepted transaction.
	Perform(req *Request) Response
}

// BufferedSlave is optionally implemented by slaves that can serve reads
// into a caller-provided buffer, sparing the per-transaction Data allocation
// of Perform. dst arrives with length 0 and whatever capacity the caller has
// accumulated; the returned Response's Data must be the result of appending
// the read words to dst (writes and errors return Data nil as usual).
// Interconnects own the buffer lifecycle: they pass storage whose lifetime
// covers the response's delivery, and grow it across transactions.
type BufferedSlave interface {
	PerformInto(req *Request, dst []uint32) Response
}

// PerformBuffered serves req on s, reusing buf for read data when the slave
// supports buffered operation and falling back to Perform otherwise. It
// returns the response together with the (possibly grown) buffer, which the
// caller keeps for the next transaction. The returned response's Data
// aliases the returned buffer for buffered slaves — the caller must not
// start another transaction on the same buffer until the response has been
// consumed.
func PerformBuffered(s Slave, req *Request, buf []uint32) (Response, []uint32) {
	if bs, ok := s.(BufferedSlave); ok {
		resp := bs.PerformInto(req, buf[:0])
		if cap(resp.Data) > cap(buf) {
			buf = resp.Data[:0]
		}
		return resp, buf
	}
	return s.Perform(req), buf
}

// AddrRange is a half-open byte-address range [Base, Base+Size).
type AddrRange struct {
	Base uint32
	Size uint32
}

// Contains reports whether addr falls inside the range.
func (r AddrRange) Contains(addr uint32) bool {
	return addr >= r.Base && addr-r.Base < r.Size
}

// Overlaps reports whether the two ranges intersect.
func (r AddrRange) Overlaps(o AddrRange) bool {
	return r.Base < o.Base+o.Size && o.Base < r.Base+r.Size
}

// End returns the first address past the range.
func (r AddrRange) End() uint32 { return r.Base + r.Size }

func (r AddrRange) String() string {
	return fmt.Sprintf("[%#08x,%#08x)", r.Base, r.End())
}
