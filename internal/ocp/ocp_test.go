package ocp

import (
	"testing"
	"testing/quick"
)

func TestCmdStrings(t *testing.T) {
	cases := map[Cmd]string{
		None: "NONE", Read: "RD", Write: "WR", BurstRead: "BRD", BurstWrite: "BWR",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if Cmd(99).String() != "Cmd(99)" {
		t.Errorf("unknown cmd string = %q", Cmd(99).String())
	}
}

func TestCmdClassification(t *testing.T) {
	if !Read.IsRead() || !BurstRead.IsRead() || Write.IsRead() || BurstWrite.IsRead() {
		t.Fatal("IsRead misclassifies")
	}
	if !Write.IsWrite() || !BurstWrite.IsWrite() || Read.IsWrite() || None.IsWrite() {
		t.Fatal("IsWrite misclassifies")
	}
}

func TestRequestValidate(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		ok   bool
	}{
		{"read ok", Request{Cmd: Read, Addr: 0x100, Burst: 1}, true},
		{"write ok", Request{Cmd: Write, Addr: 0x100, Burst: 1, Data: []uint32{1}}, true},
		{"burst read ok", Request{Cmd: BurstRead, Addr: 0x100, Burst: 4}, true},
		{"burst write ok", Request{Cmd: BurstWrite, Addr: 0, Burst: 2, Data: []uint32{1, 2}}, true},
		{"read with burst", Request{Cmd: Read, Addr: 0x100, Burst: 4}, false},
		{"unaligned", Request{Cmd: Read, Addr: 0x101, Burst: 1}, false},
		{"write no data", Request{Cmd: Write, Addr: 0x100, Burst: 1}, false},
		{"burst write short payload", Request{Cmd: BurstWrite, Addr: 0, Burst: 4, Data: []uint32{1}}, false},
		{"read with data", Request{Cmd: Read, Addr: 0x100, Burst: 1, Data: []uint32{1}}, false},
		{"none", Request{Cmd: None, Addr: 0, Burst: 1}, false},
		{"zero burst", Request{Cmd: BurstRead, Addr: 0, Burst: 0}, false},
	}
	for _, c := range cases {
		err := c.req.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestAddrRange(t *testing.T) {
	r := AddrRange{Base: 0x1000, Size: 0x100}
	if !r.Contains(0x1000) || !r.Contains(0x10ff) {
		t.Fatal("Contains misses in-range addresses")
	}
	if r.Contains(0xfff) || r.Contains(0x1100) {
		t.Fatal("Contains accepts out-of-range addresses")
	}
	if r.End() != 0x1100 {
		t.Fatalf("End = %#x", r.End())
	}
	o := AddrRange{Base: 0x10f0, Size: 0x100}
	if !r.Overlaps(o) || !o.Overlaps(r) {
		t.Fatal("Overlaps should be symmetric and true")
	}
	if r.Overlaps(AddrRange{Base: 0x1100, Size: 4}) {
		t.Fatal("adjacent ranges must not overlap")
	}
	if r.String() == "" {
		t.Fatal("String empty")
	}
}

func TestAddrRangeContainsProperty(t *testing.T) {
	f := func(base uint16, size uint16, addr uint32) bool {
		r := AddrRange{Base: uint32(base), Size: uint32(size) + 1}
		in := addr >= r.Base && addr < r.Base+r.Size
		return r.Contains(addr) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// scriptPort is a controllable MasterPort test double.
type scriptPort struct {
	acceptAfter int // number of TryRequest calls to reject before accepting
	tries       int
	resp        *Response
	respReady   bool
	busy        bool
}

func (p *scriptPort) TryRequest(req *Request) bool {
	p.tries++
	if p.tries > p.acceptAfter {
		p.busy = req.Cmd.IsRead()
		return true
	}
	return false
}

func (p *scriptPort) TakeResponse() (*Response, bool) {
	if p.respReady {
		p.respReady = false
		p.busy = false
		return p.resp, true
	}
	return nil, false
}

func (p *scriptPort) Busy() bool { return p.busy }

func TestMonitorRecordsWriteAcceptance(t *testing.T) {
	var cycle uint64
	p := &scriptPort{acceptAfter: 2}
	m := NewMonitor(p, func() uint64 { return cycle })

	req := &Request{Cmd: Write, Addr: 0x20, Burst: 1, Data: []uint32{0x111}}
	for !m.TryRequest(req) {
		cycle++
	}
	evs := m.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Assert != 0 || e.Accept != 2 {
		t.Fatalf("assert=%d accept=%d, want 0,2", e.Assert, e.Accept)
	}
	if e.HasResp {
		t.Fatal("posted write must not record a response")
	}
	if e.Done() != 2 {
		t.Fatalf("Done() = %d, want accept cycle 2", e.Done())
	}
	if len(e.Data) != 1 || e.Data[0] != 0x111 {
		t.Fatalf("write data not recorded: %v", e.Data)
	}
}

func TestMonitorRecordsReadResponse(t *testing.T) {
	var cycle uint64
	p := &scriptPort{}
	m := NewMonitor(p, func() uint64 { return cycle })

	req := &Request{Cmd: Read, Addr: 0x104, Burst: 1}
	if !m.TryRequest(req) {
		t.Fatal("expected immediate accept")
	}
	// No event yet: reads complete at response time.
	if len(m.Events()) != 0 {
		t.Fatal("read event recorded before response")
	}
	cycle = 4
	p.resp = &Response{Data: []uint32{0x088000f0}}
	p.respReady = true
	resp, ok := m.TakeResponse()
	if !ok || resp.Data[0] != 0x088000f0 {
		t.Fatal("response not passed through")
	}
	evs := m.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	e := evs[0]
	if !e.HasResp || e.Resp != 4 || e.Done() != 4 {
		t.Fatalf("resp cycle = %d hasResp=%v", e.Resp, e.HasResp)
	}
	if e.Data[0] != 0x088000f0 {
		t.Fatalf("read data not recorded: %v", e.Data)
	}
}

func TestMonitorPassThroughTransparency(t *testing.T) {
	// The monitor must forward every call verbatim, accept/reject included.
	var cycle uint64
	p := &scriptPort{acceptAfter: 1}
	m := NewMonitor(p, func() uint64 { return cycle })
	req := &Request{Cmd: Read, Addr: 0, Burst: 1}
	if m.TryRequest(req) {
		t.Fatal("first try should be rejected (pass-through)")
	}
	if !m.TryRequest(req) {
		t.Fatal("second try should be accepted (pass-through)")
	}
	if !m.Busy() {
		t.Fatal("Busy must reflect wrapped port")
	}
	if _, ok := m.TakeResponse(); ok {
		t.Fatal("TakeResponse must reflect wrapped port emptiness")
	}
}

func TestMonitorReset(t *testing.T) {
	p := &scriptPort{}
	m := NewMonitor(p, func() uint64 { return 0 })
	m.TryRequest(&Request{Cmd: Write, Addr: 0, Burst: 1, Data: []uint32{1}})
	if len(m.Events()) != 1 {
		t.Fatal("event not recorded")
	}
	m.Reset()
	if len(m.Events()) != 0 {
		t.Fatal("Reset did not clear events")
	}
}

func TestMonitorMultipleTransactionsInOrder(t *testing.T) {
	var cycle uint64
	p := &scriptPort{}
	m := NewMonitor(p, func() uint64 { return cycle })
	for i := 0; i < 5; i++ {
		cycle = uint64(10 * i)
		m.TryRequest(&Request{Cmd: Write, Addr: uint32(i * 4), Burst: 1, Data: []uint32{uint32(i)}})
	}
	evs := m.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, e := range evs {
		if e.Addr != uint32(i*4) || e.Assert != uint64(10*i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
}

func TestNewMonitorNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMonitor(nil,nil) should panic")
		}
	}()
	NewMonitor(nil, nil)
}
