package platform

import (
	"fmt"

	"noctg/internal/guard"
)

// EnableGuard arms the guard layer (see internal/guard) on the system,
// routing each watchdog to the layer that can observe it:
//
//   - sharded XPipes: the shard runner carries all watchdogs — the SPMD
//     deadlock/budget verdicts at round boundaries, the barrier-stall bound
//     inside the barrier, and the conservation scan at segment ends;
//   - single-engine XPipes: a guard.Monitor installed as the engine
//     watchdog, probing the network's retirement/pool counters and running
//     the conservation scan on a cycle cadence;
//   - AMBA: the bus has no packet pool to probe, so only the wall-clock
//     run budget applies.
//
// Fault-free guarded runs execute exactly the cycles an unguarded run does
// and stay allocation-free on the hot path; violations surface as typed
// *guard.Violation errors from Run/RunPhased. Call once, before the first
// run.
func (s *System) EnableGuard(cfg guard.Config) {
	if !cfg.Enabled() {
		return
	}
	if s.Sharded != nil {
		net := s.Net
		runner := s.Sharded
		runner.EnableGuard(cfg, net.CheckInvariants, func() *guard.Diagnostic {
			return net.Diagnose(runner.Cycle())
		})
		return
	}
	p := guard.Probes{}
	if s.Net != nil {
		net := s.Net
		p.Progress = net.RetiredPackets
		p.Live = net.LivePackets
		p.Scan = net.CheckInvariants
		p.Diagnose = func() *guard.Diagnostic { return net.Diagnose(s.Engine.Cycle()) }
	}
	m := guard.NewMonitor(cfg, p)
	s.Engine.SetWatchdog(m.Check)
}

// InjectFaults installs a deterministic fault plan (test stimulus for the
// guard watchdogs): fabric faults go to the NoC, shard stalls to the shard
// runner. It errors on any fault the platform cannot host — fabric faults
// without an XPipes fabric, shard stalls without a sharded runner — so a
// plan never silently half-applies.
func (s *System) InjectFaults(plan guard.FaultPlan) error {
	if len(plan.ShardStalls) > 0 {
		if s.Sharded == nil {
			return fmt.Errorf("platform: fault plan stalls a shard but the platform is not sharded")
		}
		if err := s.Sharded.InjectStalls(plan.ShardStalls); err != nil {
			return err
		}
	}
	fabric := plan
	fabric.ShardStalls = nil
	if fabric.Empty() {
		return nil
	}
	if s.Net == nil {
		return fmt.Errorf("platform: fault plan targets the fabric but the platform has no NoC")
	}
	return s.Net.InjectFaults(fabric)
}
