package platform_test

import (
	"fmt"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"noctg/internal/guard"
	"noctg/internal/layout"
	"noctg/internal/noc"
	"noctg/internal/ocp"
	"noctg/internal/platform"
	"noctg/internal/stochastic"
)

// The guard fault matrix: every watchdog is driven to fire by a seeded
// guard.FaultPlan, on the single-engine Monitor path (shards=0) and on the
// SPMD shard-runner path. CI sweeps the matrix via GUARD_KERNEL
// (strict/skip/event) and GUARD_SHARDS (sharded point; default 2), so one
// test body covers every kernel x partition combination.

// sharedNode is where the shared RAM lands on the 4x4/4-core floorplan:
// masters fill nodes 0..3, privs take 15..12, shared 11, semaphores 10.
const sharedNode = 11

func guardMatrixKernel(t *testing.T) platform.KernelMode {
	t.Helper()
	s := os.Getenv("GUARD_KERNEL")
	if s == "" {
		s = "event"
	}
	k, err := platform.ParseKernel(s)
	if err != nil {
		t.Fatalf("GUARD_KERNEL: %v", err)
	}
	return k
}

func guardMatrixShards(t *testing.T) int {
	t.Helper()
	s := os.Getenv("GUARD_SHARDS")
	if s == "" {
		return 2
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		t.Fatalf("GUARD_SHARDS=%q: want a positive shard count", s)
	}
	return n
}

// guardMatrixPoints is the partition matrix each fault test runs: the
// legacy single engine (Monitor watchdogs) and the sharded runner (SPMD
// verdicts).
func guardMatrixPoints(t *testing.T) []int {
	return []int{0, guardMatrixShards(t)}
}

// sharedScenario aims every master at the shared RAM: all four request
// streams funnel into sharedNode, so a fault anywhere on master 0's
// east-bound path or at the shared slave is guaranteed traffic.
func sharedScenario(count int, seed int64) stochastic.Config {
	dests := make([]ocp.AddrRange, 4)
	for d := range dests {
		dests[d] = layout.SharedRange()
	}
	return stochastic.Config{
		Dist:    stochastic.Poisson,
		MeanGap: 4,
		Count:   count,
		Seed:    seed,
		Spatial: &stochastic.Spatial{
			Pattern: stochastic.UniformRandom, W: 2, H: 2,
			Dests: dests, AllowSelf: true,
		},
	}
}

func buildGuardedMesh(t *testing.T, kernel platform.KernelMode, shards int,
	scfg stochastic.Config, cfg guard.Config) *platform.System {
	t.Helper()
	sys, err := platform.Build(platform.Config{
		Cores: 4, Interconnect: platform.XPipes,
		NoC:    noc.Config{Width: 4, Height: 4},
		Kernel: kernel,
		Shards: shards,
	}, func(_ *platform.System, id int, port ocp.MasterPort) platform.Master {
		return stochastic.New(id, scfg, port)
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableGuard(cfg)
	return sys
}

// mustViolate runs the system and requires a violation of the given kind
// with a diagnostic dump attached.
func mustViolate(t *testing.T, sys *platform.System, maxCycles uint64, kind guard.Kind) *guard.Violation {
	t.Helper()
	_, err := sys.Run(maxCycles)
	v, ok := guard.AsViolation(err)
	if !ok {
		t.Fatalf("run returned %v, want a %s violation", err, kind)
	}
	if v.Kind != kind {
		t.Fatalf("violation kind %s (%s), want %s", v.Kind, v.Msg, kind)
	}
	if v.Diag == nil {
		t.Fatalf("%s violation carries no diagnostic dump", kind)
	}
	return v
}

// forever is the fault window that outlasts any test run.
const forever = uint64(1) << 62

// TestGuardLinkStallDeadlock: a permanently stalled router output wedges
// master 0's traffic; once the other masters drain, nothing retires while
// packets stay in flight, and the no-retire horizon fires with the stuck
// queues in the dump.
func TestGuardLinkStallDeadlock(t *testing.T) {
	kernel := guardMatrixKernel(t)
	for _, shards := range guardMatrixPoints(t) {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sys := buildGuardedMesh(t, kernel, shards, sharedScenario(30, 1),
				guard.Config{NoRetireHorizon: 2000})
			if err := sys.InjectFaults(guard.FaultPlan{
				LinkStalls: []guard.LinkStall{{Node: 0, Dir: "e", From: 0, To: forever}},
			}); err != nil {
				t.Fatal(err)
			}
			v := mustViolate(t, sys, 300_000, guard.KindDeadlock)
			if len(v.Diag.Queues) == 0 {
				t.Fatalf("deadlock dump shows no stuck queues: %+v", v.Diag)
			}
		})
	}
}

// TestGuardSlaveFreezeDeadlock: a frozen shared-memory slave stops serving;
// every master wedges behind it and the horizon fires with the blocked
// masters in the dump.
func TestGuardSlaveFreezeDeadlock(t *testing.T) {
	kernel := guardMatrixKernel(t)
	for _, shards := range guardMatrixPoints(t) {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sys := buildGuardedMesh(t, kernel, shards, sharedScenario(30, 2),
				guard.Config{NoRetireHorizon: 2000})
			if err := sys.InjectFaults(guard.FaultPlan{
				SlaveFreezes: []guard.SlaveFreeze{{Node: sharedNode, From: 0, To: forever}},
			}); err != nil {
				t.Fatal(err)
			}
			v := mustViolate(t, sys, 300_000, guard.KindDeadlock)
			if len(v.Diag.Masters) == 0 {
				t.Fatalf("freeze dump shows no blocked masters: %+v", v.Diag)
			}
		})
	}
}

// TestGuardFlitDropConservation: silently discarding forwarded flits makes
// a domain's resident-flit account disagree with its FIFO occupancy — the
// conservation scan catches it. The deadlock horizon is left disabled so
// the test pins the conservation kind specifically (sharded runs scan at
// segment boundaries, after the horizon would otherwise have fired).
func TestGuardFlitDropConservation(t *testing.T) {
	kernel := guardMatrixKernel(t)
	for _, shards := range guardMatrixPoints(t) {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sys := buildGuardedMesh(t, kernel, shards, sharedScenario(30, 3),
				guard.Config{Conservation: true, ConservationEvery: 256})
			if err := sys.InjectFaults(guard.FaultPlan{
				FlitDrops: []guard.FlitDrop{{Node: 0, Dir: "e", From: 0, To: forever}},
			}); err != nil {
				t.Fatal(err)
			}
			mustViolate(t, sys, 20_000, guard.KindConservation)
		})
	}
}

// TestGuardPacketLeakPoolMass: a slave NI that forgets to recycle served
// request packets breaks pool mass — live references no longer cover the
// pool's outstanding count.
func TestGuardPacketLeakPoolMass(t *testing.T) {
	kernel := guardMatrixKernel(t)
	for _, shards := range guardMatrixPoints(t) {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sys := buildGuardedMesh(t, kernel, shards, sharedScenario(40, 4),
				guard.Config{Conservation: true, ConservationEvery: 64})
			if err := sys.InjectFaults(guard.FaultPlan{
				PacketLeaks: []guard.PacketLeak{{Node: sharedNode, From: 0, To: forever}},
			}); err != nil {
				t.Fatal(err)
			}
			mustViolate(t, sys, 30_000, guard.KindPoolMass)
		})
	}
}

// TestGuardRunBudget: an (absurdly) tight wall-clock budget trips on a
// healthy long-running workload, on both the Monitor and the SPMD
// budget-bit path.
func TestGuardRunBudget(t *testing.T) {
	kernel := guardMatrixKernel(t)
	for _, shards := range guardMatrixPoints(t) {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sys := buildGuardedMesh(t, kernel, shards, sharedScenario(1<<30, 5),
				guard.Config{RunBudget: time.Nanosecond})
			_, err := sys.Run(10_000_000)
			v, ok := guard.AsViolation(err)
			if !ok || v.Kind != guard.KindBudget {
				t.Fatalf("run returned %v, want a %s violation", err, guard.KindBudget)
			}
		})
	}
}

// TestGuardShardBarrierStall: a shard put to sleep on the host clock stops
// arriving at window barriers; a peer's stall watchdog fires instead of
// every shard spinning forever, and the dump carries per-shard window
// state.
func TestGuardShardBarrierStall(t *testing.T) {
	kernel := guardMatrixKernel(t)
	shards := guardMatrixShards(t)
	if shards < 2 {
		shards = 2 // a barrier needs a peer to stall against
	}
	cfg := guard.Config{BarrierStall: 25 * time.Millisecond}
	sys := buildGuardedMesh(t, kernel, shards, sharedScenario(1<<30, 6), cfg)
	if err := sys.InjectFaults(guard.FaultPlan{
		ShardStalls: []guard.ShardStall{{Shard: 1, AtCycle: 50, Wall: 300 * time.Millisecond}},
	}); err != nil {
		t.Fatal(err)
	}
	v := mustViolate(t, sys, 10_000_000, guard.KindBarrierStall)
	if v.Shard < 0 || v.Shard >= shards {
		t.Fatalf("barrier-stall violation names shard %d of %d", v.Shard, shards)
	}
	if len(v.Diag.Shards) != shards {
		t.Fatalf("dump has %d shard windows, want %d", len(v.Diag.Shards), shards)
	}
	// The runner is latched dead: later runs fail fast with the violation.
	if _, err := sys.Run(1000); err == nil {
		t.Fatal("poisoned runner accepted another run")
	}
}

// TestGuardRandomPlanFires: the seeded random plan generator produces
// faults that actually trip a watchdog on the torus (where every direction
// has a link) — plan determinism is pinned in the guard package, this pins
// potency end to end.
func TestGuardRandomPlanFires(t *testing.T) {
	kernel := guardMatrixKernel(t)
	scfg := sharedScenario(60, 7)
	sys, err := platform.Build(platform.Config{
		Cores: 4, Interconnect: platform.XPipes,
		NoC:    noc.Config{Width: 4, Height: 4, Topology: noc.Torus},
		Kernel: kernel,
	}, func(_ *platform.System, id int, port ocp.MasterPort) platform.Master {
		return stochastic.New(id, scfg, port)
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableGuard(guard.Config{NoRetireHorizon: 2000, Conservation: true, ConservationEvery: 256})
	plan := guard.RandomPlan(11, 16, 4000)
	// Stretch the windows to the whole run so the plan is guaranteed to
	// intersect live traffic whatever the seed drew.
	for i := range plan.LinkStalls {
		plan.LinkStalls[i].To = forever
	}
	for i := range plan.SlaveFreezes {
		plan.SlaveFreezes[i].Node = sharedNode
		plan.SlaveFreezes[i].To = forever
	}
	for i := range plan.FlitDrops {
		plan.FlitDrops[i].To = forever
	}
	if err := sys.InjectFaults(plan); err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(300_000)
	if v, ok := guard.AsViolation(err); !ok {
		t.Fatalf("random plan tripped nothing: %v", err)
	} else if v.Kind != guard.KindDeadlock && v.Kind != guard.KindConservation && v.Kind != guard.KindPoolMass {
		t.Fatalf("random plan tripped unexpected kind %s", v.Kind)
	}
}

// guardObsRun mirrors shardObsRun with a guard configuration applied, so
// the differential below can compare guarded and unguarded runs on the
// same observable surface.
func guardObsRun(t *testing.T, scfg stochastic.Config, kernel platform.KernelMode,
	shards int, cfg guard.Config) runObs {
	t.Helper()
	var gens []*stochastic.Generator
	sys, err := platform.Build(platform.Config{
		Cores: 4, Interconnect: platform.XPipes,
		NoC:    noc.Config{Width: 4, Height: 4},
		Kernel: kernel,
		Shards: shards,
	}, func(_ *platform.System, id int, port ocp.MasterPort) platform.Master {
		g := stochastic.New(id, scfg, port)
		gens = append(gens, g)
		return g
	})
	if err != nil {
		t.Fatalf("build shards=%d: %v", shards, err)
	}
	sys.EnableGuard(cfg)
	makespan, err := sys.Run(5_000_000)
	if err != nil {
		t.Fatalf("run shards=%d: %v", shards, err)
	}
	obs := runObs{makespan: makespan}
	snap := sys.EngineSnapshot()
	obs.cycle, obs.devices = snap.Cycles, snap.Devices
	for _, g := range gens {
		obs.issued = append(obs.issued, g.Issued())
		obs.hists = append(obs.hists, g.Latency.Snapshot())
	}
	return obs
}

// TestGuardFaultFreeIdentical: with no faults injected, a fully guarded
// run is observably identical to an unguarded one — makespan, final
// cycle, issue counts and latency histograms — on both the single-engine
// and sharded paths. The watchdogs are purely observational.
func TestGuardFaultFreeIdentical(t *testing.T) {
	kernel := guardMatrixKernel(t)
	scfg := sharedScenario(150, 9)
	for _, shards := range guardMatrixPoints(t) {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			plain := guardObsRun(t, scfg, kernel, shards, guard.Config{})
			guarded := guardObsRun(t, scfg, kernel, shards, guard.Default())
			if !reflect.DeepEqual(plain, guarded) {
				t.Fatalf("guarded run diverged from unguarded:\n got %+v\n ref %+v", guarded, plain)
			}
		})
	}
}

// TestGuardedAdvanceAllocFree extends the sharded alloc guard to a guarded
// runner: the full default watchdog set — round verdicts, budget bit,
// bounded join and segment-end conservation scan — must stay off the heap
// in steady state.
func TestGuardedAdvanceAllocFree(t *testing.T) {
	scfg := sharedScenario(1<<30, 10)
	sys := buildGuardedMesh(t, platform.KernelEvent, 2, scfg, guard.Default())
	if _, err := sys.Sharded.Advance(5_000); err != nil { // warm pools, rings, scan tally
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(20, func() {
		sys.Sharded.Advance(200)
	}); avg != 0 {
		t.Fatalf("guarded sharded advance allocates %.1f times per segment, want 0", avg)
	}
}

// TestInjectFaultsValidation: a plan that targets anything the platform
// cannot host is rejected whole — wrong node, missing link, no slave, no
// shard runner — never silently half-applied.
func TestInjectFaultsValidation(t *testing.T) {
	scfg := sharedScenario(10, 12)
	single := buildGuardedMesh(t, platform.KernelStrict, 0, scfg, guard.Config{})
	sharded := buildGuardedMesh(t, platform.KernelStrict, 2, scfg, guard.Config{})
	cases := []struct {
		name string
		sys  *platform.System
		plan guard.FaultPlan
	}{
		{"node out of range", single, guard.FaultPlan{
			LinkStalls: []guard.LinkStall{{Node: 99, Dir: "e"}}}},
		{"negative node", single, guard.FaultPlan{
			FlitDrops: []guard.FlitDrop{{Node: -1, Dir: "e"}}}},
		{"bad direction", single, guard.FaultPlan{
			LinkStalls: []guard.LinkStall{{Node: 0, Dir: "x"}}}},
		{"missing mesh link", single, guard.FaultPlan{
			LinkStalls: []guard.LinkStall{{Node: 0, Dir: "n"}}}},
		{"freeze without slave", single, guard.FaultPlan{
			SlaveFreezes: []guard.SlaveFreeze{{Node: 0}}}},
		{"leak without slave", single, guard.FaultPlan{
			PacketLeaks: []guard.PacketLeak{{Node: 5}}}},
		{"shard stall on single engine", single, guard.FaultPlan{
			ShardStalls: []guard.ShardStall{{Shard: 0, Wall: time.Second}}}},
		{"shard stall out of range", sharded, guard.FaultPlan{
			ShardStalls: []guard.ShardStall{{Shard: 7, Wall: time.Second}}}},
		{"shard stall without wall", sharded, guard.FaultPlan{
			ShardStalls: []guard.ShardStall{{Shard: 0}}}},
	}
	for _, tc := range cases {
		if err := tc.sys.InjectFaults(tc.plan); err == nil {
			t.Errorf("%s: plan accepted", tc.name)
		}
	}
}
