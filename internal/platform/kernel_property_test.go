package platform_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"noctg/internal/core"
	"noctg/internal/layout"
	"noctg/internal/noc"
	"noctg/internal/ocp"
	"noctg/internal/platform"
	"noctg/internal/sim"
	"noctg/internal/stochastic"
)

// randomProgram emits a random but well-formed TGP program: bursts of
// reads/writes to the shared memory, long and short Idle gaps, and a
// semaphore-guarded critical section shared by all masters, so that the
// skip kernel has to get both pure sleeping and reactive cross-core timing
// right.
func randomProgram(r *rand.Rand, master, cores int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "MASTER[%d,%d]\n", master, cores-1)
	fmt.Fprintf(&b, "REGISTER sem %#08x\n", layout.SemAddr(0))
	fmt.Fprintf(&b, "REGISTER one 1\n")
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&b, "REGISTER a%d %#08x\n", i,
			layout.SharedBase+uint32(r.Intn(64))*4)
	}
	fmt.Fprintf(&b, "REGISTER d0 %d\n", r.Uint32())
	b.WriteString("BEGIN\n")

	emitOps := func(n int) {
		for i := 0; i < n; i++ {
			a := r.Intn(4)
			switch r.Intn(5) {
			case 0:
				fmt.Fprintf(&b, "\tIdle(%d)\n", 1+r.Intn(5000))
			case 1:
				fmt.Fprintf(&b, "\tRead(a%d)\n", a)
			case 2:
				fmt.Fprintf(&b, "\tWrite(a%d, d0)\n", a)
			case 3:
				fmt.Fprintf(&b, "\tBurstRead(a%d, %d)\n", a, 2+r.Intn(7))
			case 4:
				fmt.Fprintf(&b, "\tBurstWrite(a%d, d0, %d)\n", a, 2+r.Intn(7))
			}
		}
	}

	emitOps(2 + r.Intn(6))
	// Semaphore-guarded section: acquire by polling, hold, release.
	fmt.Fprintf(&b, "Acquire%d:\n", master)
	b.WriteString("\tRead(sem)\n")
	fmt.Fprintf(&b, "\tIf rdreg != one then Acquire%d\n", master)
	emitOps(1 + r.Intn(4))
	b.WriteString("\tWrite(sem, one)\n")
	emitOps(2 + r.Intn(6))
	b.WriteString("\tHalt\nEND\n")
	return b.String()
}

// fabricVariants spans the interconnect configurations the kernel
// equivalence properties must hold on: the AMBA bus, the ×pipes mesh and
// the ×pipes torus (wrap links + dateline VCs).
func fabricVariants() []struct {
	name string
	ic   platform.Interconnect
	topo noc.Topology
} {
	return []struct {
		name string
		ic   platform.Interconnect
		topo noc.Topology
	}{
		{"amba", platform.AMBA, noc.Mesh},
		{"xpipes-mesh", platform.XPipes, noc.Mesh},
		{"xpipes-torus", platform.XPipes, noc.Torus},
	}
}

// propertyKernels is the kernel matrix the equivalence properties run
// over: the strict reference plus both tick-eliding kernels.
func propertyKernels() []platform.KernelMode {
	return []platform.KernelMode{platform.KernelStrict, platform.KernelSkip, platform.KernelEvent}
}

// TestKernelPropertyRandomPrograms is the property half of the equivalence
// gate: for randomized TG programs on the bus, the mesh and the torus, the
// strict, skip and event kernels must agree on every master's halt cycle,
// the makespan, and the final engine cycle count.
func TestKernelPropertyRandomPrograms(t *testing.T) {
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(trial) * 1117))
		cores := 2 + r.Intn(2)
		progs := make([]*core.Program, cores)
		for i := range progs {
			p, err := core.Assemble(randomProgram(r, i, cores))
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			progs[i] = p
		}
		for _, fv := range fabricVariants() {
			run := func(kernel platform.KernelMode) (uint64, uint64, []uint64) {
				t.Helper()
				sys, err := platform.BuildTG(platform.Config{
					Cores: cores, Interconnect: fv.ic,
					NoC:    noc.Config{Topology: fv.topo},
					Kernel: kernel,
				}, progs)
				if err != nil {
					t.Fatalf("trial %d %s: %v", trial, fv.name, err)
				}
				makespan, err := sys.Run(5_000_000)
				if err != nil {
					t.Fatalf("trial %d %s: %v", trial, fv.name, err)
				}
				halts := make([]uint64, cores)
				for i, m := range sys.Masters {
					halts[i] = m.(*core.Device).HaltCycle()
				}
				return makespan, sys.Engine.Cycle(), halts
			}
			mkS, cycS, haltS := run(platform.KernelStrict)
			for _, kernel := range propertyKernels()[1:] {
				mkK, cycK, haltK := run(kernel)
				if mkS != mkK || cycS != cycK {
					t.Fatalf("trial %d %s: strict makespan %d (cycle %d) vs %v %d (cycle %d)",
						trial, fv.name, mkS, cycS, kernel, mkK, cycK)
				}
				for i := range haltS {
					if haltS[i] != haltK[i] {
						t.Fatalf("trial %d %s master %d: strict halt %d vs %v halt %d",
							trial, fv.name, i, haltS[i], kernel, haltK[i])
					}
				}
			}
		}
	}
}

// TestKernelPropertyRandomScenarios samples the spatial scenario space:
// random pattern × distribution × topology stochastic platforms must agree
// between the kernels on makespan, engine cycle, per-master issue counts
// and the full read-latency histograms.
func TestKernelPropertyRandomScenarios(t *testing.T) {
	const trials = 20
	patterns := []stochastic.Pattern{
		stochastic.UniformRandom, stochastic.Transpose, stochastic.BitComplement,
		stochastic.BitReverse, stochastic.Hotspot, stochastic.NearestNeighbor,
	}
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(trial)*313 + 7))
		// 2x2 keeps every pattern legal (square, power of two).
		const w, h = 2, 2
		cores := w * h
		dests := make([]ocp.AddrRange, cores)
		for d := range dests {
			dests[d] = layout.PrivRange(d)
		}
		spatial := &stochastic.Spatial{
			Pattern:   patterns[r.Intn(len(patterns))],
			W:         w,
			H:         h,
			Dests:     dests,
			AllowSelf: r.Intn(2) == 0,
		}
		if spatial.Pattern == stochastic.Hotspot {
			spatial.HotspotWeights = []float64{0, 0.1 + 0.8*r.Float64()}
		}
		scfg := stochastic.Config{
			Dist:    stochastic.Dist(r.Intn(4)),
			MeanGap: 2 + 20*r.Float64(),
			Count:   100 + r.Intn(200),
			Seed:    int64(trial),
			Spatial: spatial,
		}
		fv := fabricVariants()[r.Intn(3)]

		run := func(kernel platform.KernelMode) (uint64, uint64, []int, []sim.HistogramSnapshot) {
			t.Helper()
			var gens []*stochastic.Generator
			sys, err := platform.Build(platform.Config{
				Cores: cores, Interconnect: fv.ic,
				NoC:    noc.Config{Topology: fv.topo},
				Kernel: kernel,
			}, func(_ *platform.System, id int, port ocp.MasterPort) platform.Master {
				g := stochastic.New(id, scfg, port)
				gens = append(gens, g)
				return g
			})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, fv.name, err)
			}
			makespan, err := sys.Run(5_000_000)
			if err != nil {
				t.Fatalf("trial %d %s (%v/%v): %v", trial, fv.name, scfg.Dist, spatial.Pattern, err)
			}
			issued := make([]int, len(gens))
			hists := make([]sim.HistogramSnapshot, len(gens))
			for i, g := range gens {
				issued[i] = g.Issued()
				hists[i] = g.Latency.Snapshot()
			}
			return makespan, sys.Engine.Cycle(), issued, hists
		}
		mkS, cycS, issS, histS := run(platform.KernelStrict)
		for _, kernel := range propertyKernels()[1:] {
			mkK, cycK, issK, histK := run(kernel)
			if mkS != mkK || cycS != cycK {
				t.Fatalf("trial %d %s %v/%v: strict makespan %d (cycle %d) vs %v %d (cycle %d)",
					trial, fv.name, scfg.Dist, spatial.Pattern, mkS, cycS, kernel, mkK, cycK)
			}
			if !reflect.DeepEqual(issS, issK) {
				t.Fatalf("trial %d %s: %v issue counts diverged: %v vs %v", trial, fv.name, kernel, issS, issK)
			}
			if !reflect.DeepEqual(histS, histK) {
				t.Fatalf("trial %d %s: latency histograms diverged:\nstrict: %+v\n%v: %+v",
					trial, fv.name, histS, kernel, histK)
			}
		}
	}
}
