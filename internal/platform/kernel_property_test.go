package platform_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"noctg/internal/core"
	"noctg/internal/layout"
	"noctg/internal/platform"
)

// randomProgram emits a random but well-formed TGP program: bursts of
// reads/writes to the shared memory, long and short Idle gaps, and a
// semaphore-guarded critical section shared by all masters, so that the
// skip kernel has to get both pure sleeping and reactive cross-core timing
// right.
func randomProgram(r *rand.Rand, master, cores int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "MASTER[%d,%d]\n", master, cores-1)
	fmt.Fprintf(&b, "REGISTER sem %#08x\n", layout.SemAddr(0))
	fmt.Fprintf(&b, "REGISTER one 1\n")
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&b, "REGISTER a%d %#08x\n", i,
			layout.SharedBase+uint32(r.Intn(64))*4)
	}
	fmt.Fprintf(&b, "REGISTER d0 %d\n", r.Uint32())
	b.WriteString("BEGIN\n")

	emitOps := func(n int) {
		for i := 0; i < n; i++ {
			a := r.Intn(4)
			switch r.Intn(5) {
			case 0:
				fmt.Fprintf(&b, "\tIdle(%d)\n", 1+r.Intn(5000))
			case 1:
				fmt.Fprintf(&b, "\tRead(a%d)\n", a)
			case 2:
				fmt.Fprintf(&b, "\tWrite(a%d, d0)\n", a)
			case 3:
				fmt.Fprintf(&b, "\tBurstRead(a%d, %d)\n", a, 2+r.Intn(7))
			case 4:
				fmt.Fprintf(&b, "\tBurstWrite(a%d, d0, %d)\n", a, 2+r.Intn(7))
			}
		}
	}

	emitOps(2 + r.Intn(6))
	// Semaphore-guarded section: acquire by polling, hold, release.
	fmt.Fprintf(&b, "Acquire%d:\n", master)
	b.WriteString("\tRead(sem)\n")
	fmt.Fprintf(&b, "\tIf rdreg != one then Acquire%d\n", master)
	emitOps(1 + r.Intn(4))
	b.WriteString("\tWrite(sem, one)\n")
	emitOps(2 + r.Intn(6))
	b.WriteString("\tHalt\nEND\n")
	return b.String()
}

// TestKernelPropertyRandomPrograms is the property half of the equivalence
// gate: for randomized TG programs on both fabrics, the strict and skip
// kernels must agree on every master's halt cycle, the makespan, and the
// final engine cycle count.
func TestKernelPropertyRandomPrograms(t *testing.T) {
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(trial) * 1117))
		cores := 2 + r.Intn(2)
		progs := make([]*core.Program, cores)
		for i := range progs {
			p, err := core.Assemble(randomProgram(r, i, cores))
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			progs[i] = p
		}
		for _, ic := range []platform.Interconnect{platform.AMBA, platform.XPipes} {
			run := func(kernel platform.KernelMode) (uint64, uint64, []uint64) {
				t.Helper()
				sys, err := platform.BuildTG(platform.Config{
					Cores: cores, Interconnect: ic, Kernel: kernel,
				}, progs)
				if err != nil {
					t.Fatalf("trial %d %v: %v", trial, ic, err)
				}
				makespan, err := sys.Run(5_000_000)
				if err != nil {
					t.Fatalf("trial %d %v: %v", trial, ic, err)
				}
				halts := make([]uint64, cores)
				for i, m := range sys.Masters {
					halts[i] = m.(*core.Device).HaltCycle()
				}
				return makespan, sys.Engine.Cycle(), halts
			}
			mkS, cycS, haltS := run(platform.KernelStrict)
			mkK, cycK, haltK := run(platform.KernelSkip)
			if mkS != mkK || cycS != cycK {
				t.Fatalf("trial %d %v: strict makespan %d (cycle %d) vs skip %d (cycle %d)",
					trial, ic, mkS, cycS, mkK, cycK)
			}
			for i := range haltS {
				if haltS[i] != haltK[i] {
					t.Fatalf("trial %d %v master %d: strict halt %d vs skip halt %d",
						trial, ic, i, haltS[i], haltK[i])
				}
			}
		}
	}
}
