// Package platform assembles complete MPARM-like systems: N master devices
// (miniARM cores, traffic generators, or baseline generators), an
// interconnect (AMBA AHB-style bus or ×pipes-style NoC), per-core private
// memories, the shared memory and the hardware semaphore bank.
//
// Masters are supplied through a factory so that processor models and TG
// devices are interchangeable behind their OCP ports — the exchange depicted
// in the paper's Figure 1.
package platform

import (
	"fmt"

	"noctg/internal/amba"
	"noctg/internal/cache"
	"noctg/internal/cpu"
	"noctg/internal/layout"
	"noctg/internal/mem"
	"noctg/internal/noc"
	"noctg/internal/ocp"
	"noctg/internal/shard"
	"noctg/internal/sim"
)

// Interconnect selects the fabric under evaluation.
type Interconnect int

const (
	// AMBA is the shared-bus reference interconnect (Table 2).
	AMBA Interconnect = iota
	// XPipes is the packet-switched mesh NoC.
	XPipes
)

func (i Interconnect) String() string {
	switch i {
	case AMBA:
		return "amba"
	case XPipes:
		return "xpipes"
	}
	return fmt.Sprintf("Interconnect(%d)", int(i))
}

// Master is a device that drives an OCP master port and eventually finishes.
type Master interface {
	sim.Device
	Done() bool
}

// KernelMode selects the simulation kernel for a platform.
type KernelMode int

const (
	// KernelAuto picks the event-driven kernel for TG-replay platforms
	// (BuildTG, BuildClone) and the strict kernel everywhere else — in
	// particular for ARM reference runs, whose reported ARM-vs-TG speedups
	// must not be inflated by kernel tricks.
	KernelAuto KernelMode = iota
	// KernelStrict ticks every device on every cycle.
	KernelStrict
	// KernelSkip fast-forwards over cycles in which every device sleeps.
	// The engine silently falls back to strict ticking when a registered
	// device does not implement sim.Sleeper (e.g. miniARM cores).
	KernelSkip
	// KernelEvent ticks only the devices whose scheduled wake is due each
	// cycle and jumps all-asleep spans like KernelSkip; per-cycle cost
	// scales with the awake set, not the core count. Falls back to strict
	// ticking under the same condition as KernelSkip.
	KernelEvent
)

func (k KernelMode) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelStrict:
		return "strict"
	case KernelSkip:
		return "skip"
	case KernelEvent:
		return "event"
	}
	return fmt.Sprintf("KernelMode(%d)", int(k))
}

// ParseKernel converts a -kernel flag value into a KernelMode.
func ParseKernel(s string) (KernelMode, error) {
	switch s {
	case "auto", "":
		return KernelAuto, nil
	case "strict":
		return KernelStrict, nil
	case "skip":
		return KernelSkip, nil
	case "event":
		return KernelEvent, nil
	}
	return 0, fmt.Errorf("platform: unknown kernel %q (want auto, strict, skip or event)", s)
}

// kernel maps a KernelMode onto the engine's kernel, resolving KernelAuto
// with the given default.
func (k KernelMode) kernel(auto sim.Kernel) sim.Kernel {
	switch k {
	case KernelStrict:
		return sim.KernelStrict
	case KernelSkip:
		return sim.KernelSkip
	case KernelEvent:
		return sim.KernelEvent
	}
	return auto
}

// MasterFactory builds master id over the given port. The system's memories
// are already constructed when the factory runs (so program loaders may use
// them); the port passed in is already wrapped by a trace monitor when
// tracing is enabled.
type MasterFactory func(s *System, id int, port ocp.MasterPort) Master

// Config describes a platform instance.
type Config struct {
	// Cores is the number of master devices.
	Cores int
	// Interconnect picks the fabric (default AMBA).
	Interconnect Interconnect
	// Bus configures the AMBA fabric.
	Bus amba.Config
	// NoC configures the ×pipes fabric. Width×Height must fit
	// Cores + Cores private memories + shared + semaphores; leave zero to
	// auto-size.
	NoC noc.Config
	// MemWaitStates is the intrinsic slave access time (default 1).
	MemWaitStates uint64
	// Clock sets the simulated clock; the zero value is the paper's
	// default 5 ns period.
	Clock sim.Clock
	// Trace enables OCP monitors on every master port.
	Trace bool
	// Kernel selects the simulation kernel. The default, KernelAuto,
	// resolves to the event-driven kernel for TG-replay builders and
	// strict otherwise; strict, skip and event runs produce identical
	// simulated state (the differential tests assert byte-identical sweep
	// artifacts), differing only in host time.
	Kernel KernelMode
	// Shards > 0 partitions an XPipes fabric into that many spatial shards
	// (clamped to the mesh height), each running on its own engine and OS
	// thread under the conservative time-window protocol (see internal/
	// shard). Sharded runs form their own determinism class: every shard
	// count — including 1 — computes byte-identical simulated state, but
	// the class differs from the legacy single-engine run (0), whose
	// flow-control check is tick-order dependent. The bus fabric has no
	// spatial structure to cut; AMBA platforms ignore the knob.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.MemWaitStates == 0 {
		c.MemWaitStates = 1
	}
	return c
}

// idler is the draining interface both fabrics implement.
type idler interface{ Idle() bool }

// System is an assembled platform ready to run.
type System struct {
	Engine   *sim.Engine
	Cfg      Config
	Masters  []Master
	Monitors []*ocp.Monitor // non-nil entries only when Cfg.Trace
	Privs    []*mem.RAM
	Shared   *mem.RAM
	Sems     *mem.SemBank

	Bus *amba.Bus    // set when Interconnect == AMBA
	Net *noc.Network // set when Interconnect == XPipes

	// Sharded is the parallel runner driving the per-shard engines when
	// Cfg.Shards > 0 on an XPipes platform; nil otherwise. When set,
	// Engine aliases shard 0's engine (all shard engines share the clock
	// and agree on the cycle between segments).
	Sharded *shard.Runner

	// Stats is the system's unified stats registry: every stats-exporting
	// device (masters, trace monitors, the fabric) registers its counters
	// and histograms here at build time, under "master<i>/", "port<i>/",
	// "bus/" and "noc/" scopes. Phased measurement syncs, snapshots and
	// resets the whole population at deterministic phase boundaries.
	Stats *sim.Registry

	fabric idler
}

// Build assembles a system with Cores masters produced by factory.
func Build(cfg Config, factory MasterFactory) (*System, error) {
	cfg = cfg.withDefaults()
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("platform: need at least one core, got %d", cfg.Cores)
	}
	if factory == nil {
		return nil, fmt.Errorf("platform: nil master factory")
	}
	e := sim.NewEngine(cfg.Clock)
	e.SetKernel(cfg.Kernel.kernel(sim.KernelStrict))
	s := &System{Engine: e, Cfg: cfg}

	s.Shared = mem.NewRAM("shared", layout.SharedBase, layout.SharedSize, cfg.MemWaitStates)
	s.Sems = mem.NewSemBank("sem", layout.SemBase, layout.SemCount, cfg.MemWaitStates)
	for i := 0; i < cfg.Cores; i++ {
		s.Privs = append(s.Privs, mem.NewRAM(fmt.Sprintf("priv%d", i),
			layout.PrivBaseFor(i), layout.PrivSize, cfg.MemWaitStates))
	}

	ports := make([]ocp.MasterPort, cfg.Cores)
	// Sharded XPipes builds replace the single engine with one per region;
	// regions/shardEngines stay nil on every other path.
	var regions []*noc.Region
	var shardEngines []*sim.Engine
	switch cfg.Interconnect {
	case AMBA:
		bus := amba.New(cfg.Bus, e.Cycle)
		for i := 0; i < cfg.Cores; i++ {
			ports[i] = bus.NewMasterPort()
		}
		for i, p := range s.Privs {
			if err := bus.MapSlave(p, layout.PrivRange(i)); err != nil {
				return nil, err
			}
		}
		if err := bus.MapSlave(s.Shared, layout.SharedRange()); err != nil {
			return nil, err
		}
		if err := bus.MapSlave(s.Sems, layout.SemRange()); err != nil {
			return nil, err
		}
		s.Bus = bus
		s.fabric = bus
	case XPipes:
		ncfg := cfg.NoC
		if ncfg.Width == 0 && ncfg.Height == 0 {
			// Auto-size only the dimensions: topology and buffer depth are
			// orthogonal knobs and must survive the sizing.
			m := autoMesh(cfg.Cores)
			ncfg.Width, ncfg.Height = m.Width, m.Height
		}
		// Masters fill from the front, slaves from the back, and one spare
		// node keeps them apart — verify the *effective* geometry (partial
		// zero dimensions default inside noc) before attaching anything,
		// because the mesh itself panics on a double-occupied node.
		ncfg = ncfg.WithDefaults()
		if ncfg.Width*ncfg.Height < cfg.Cores*2+3 {
			return nil, fmt.Errorf("platform: mesh %dx%d too small for %d cores and %d slaves",
				ncfg.Width, ncfg.Height, cfg.Cores, cfg.Cores+2)
		}
		net := noc.New(ncfg, e.Cycle)
		// Placement: masters fill nodes from the start, slaves from the end
		// (private memory i sits opposite its core, shared/semaphores in
		// between) — a plain but deterministic floorplan.
		node := 0
		for i := 0; i < cfg.Cores; i++ {
			ports[i] = net.AttachMaster(node)
			node++
		}
		last := net.Nodes() - 1
		for i, p := range s.Privs {
			if err := net.AttachSlave(last, p, layout.PrivRange(i)); err != nil {
				return nil, err
			}
			last--
		}
		if err := net.AttachSlave(last, s.Shared, layout.SharedRange()); err != nil {
			return nil, err
		}
		last--
		if err := net.AttachSlave(last, s.Sems, layout.SemRange()); err != nil {
			return nil, err
		}
		if last <= node {
			return nil, fmt.Errorf("platform: mesh %dx%d too small for %d cores and %d slaves",
				ncfg.Width, ncfg.Height, cfg.Cores, cfg.Cores+2)
		}
		s.Net = net
		s.fabric = net
		if cfg.Shards > 0 {
			// Partition after every NI is attached and before anything
			// ticks; the partition also switches the fabric to the
			// conservative sharded flow-control discipline.
			regions = net.Partition(cfg.Shards)
			shardEngines = make([]*sim.Engine, len(regions))
			for si := range regions {
				se := sim.NewEngine(cfg.Clock)
				se.SetKernel(cfg.Kernel.kernel(sim.KernelStrict))
				shardEngines[si] = se
			}
		}
	default:
		return nil, fmt.Errorf("platform: unknown interconnect %v", cfg.Interconnect)
	}

	// shardOf maps master i to its region's engine: masters occupy fabric
	// nodes 0..Cores-1 in id order (the placement loop above).
	shardOf := func(i int) int {
		if shardEngines == nil {
			return 0
		}
		return s.Net.RegionOf(i)
	}
	shardMasters := make([][]Master, len(regions))
	for i := 0; i < cfg.Cores; i++ {
		eng := e
		if shardEngines != nil {
			eng = shardEngines[shardOf(i)]
		}
		port := ports[i]
		var mon *ocp.Monitor
		if cfg.Trace {
			mon = ocp.NewMonitor(port, eng.Cycle)
			port = mon
		}
		s.Monitors = append(s.Monitors, mon)
		m := factory(s, i, port)
		s.Masters = append(s.Masters, m)
		eng.Add(m)
		if shardEngines != nil {
			shardMasters[shardOf(i)] = append(shardMasters[shardOf(i)], m)
		}
	}
	// Fabric ticks after all masters (see DESIGN.md tick order); in a
	// sharded build each region is its engine's fabric device.
	switch {
	case s.Bus != nil:
		e.Add(s.Bus)
	case shardEngines != nil:
		for si, rg := range regions {
			rg.BindCycleSource(shardEngines[si].Cycle)
			shardEngines[si].Add(rg)
		}
	case s.Net != nil:
		e.Add(s.Net)
	}
	// Registration runs last, once the topology is final: it captures
	// metric addresses, so per-port counter slices must not grow afterwards.
	s.Stats = sim.NewRegistry()
	for i, m := range s.Masters {
		if src, ok := m.(sim.StatsSource); ok {
			src.RegisterStats(s.Stats.Scope(fmt.Sprintf("master%d", i)))
		}
	}
	for i, mon := range s.Monitors {
		if mon != nil {
			mon.RegisterStats(s.Stats.Scope(fmt.Sprintf("port%d", i)))
		}
	}
	switch {
	case s.Bus != nil:
		s.Bus.RegisterStats(s.Stats.Scope("bus"))
	case s.Net != nil:
		s.Net.RegisterStats(s.Stats.Scope("noc"))
	}
	if shardEngines != nil {
		shards := make([]*shard.Shard, len(regions))
		for si, rg := range regions {
			rg, ms := rg, shardMasters[si]
			shards[si] = &shard.Shard{
				Engine:    shardEngines[si],
				Exchanger: rg,
				Done: func() bool {
					for _, m := range ms {
						if !m.Done() {
							return false
						}
					}
					return rg.Idle()
				},
				// Guard probes: read only by this shard's goroutine, summed
				// identically by every shard from the barrier-published slots.
				Progress: rg.Retired,
				Live:     rg.Live,
			}
		}
		s.Sharded = shard.New(shards)
		s.Engine = shardEngines[0]
	}
	return s, nil
}

// AutoMesh returns the mesh dimensions Build auto-sizes for the given
// core count when Config.NoC leaves both Width and Height zero. Exported
// so the analytic estimator can reproduce the exact floorplan of an
// auto-sized point without building it.
func AutoMesh(cores int) (w, h int) {
	c := autoMesh(cores)
	return c.Width, c.Height
}

// autoMesh returns the smallest of the stock mesh sizes that fits
// cores masters + cores+2 slaves.
func autoMesh(cores int) noc.Config {
	need := cores*2 + 2
	for _, d := range []struct{ w, h int }{{3, 2}, {4, 2}, {4, 3}, {4, 4}, {5, 4}, {5, 5}, {6, 5}, {6, 6}} {
		if d.w*d.h >= need+1 { // one spare node keeps masters/slaves apart
			return noc.Config{Width: d.w, Height: d.h}
		}
	}
	return noc.Config{Width: 7, Height: 6}
}

// Done reports whether every master has finished.
func (s *System) Done() bool {
	for _, m := range s.Masters {
		if !m.Done() {
			return false
		}
	}
	return true
}

// Run simulates until all masters are done and the fabric has drained, or
// maxCycles elapse. It returns the makespan in cycles — the paper's
// "cumulative execution time" metric (total simulated cycles of the run).
//
// The completion predicate is evaluated every 32 cycles; the returned
// makespan comes from the masters' halt cycles and is unaffected by the
// detection stride.
func (s *System) Run(maxCycles uint64) (uint64, error) {
	if s.Sharded != nil {
		if err := s.Sharded.Run(maxCycles); err != nil {
			return s.Sharded.Cycle(), fmt.Errorf("platform(%s): %w", s.Cfg.Interconnect, err)
		}
		return s.Makespan(), nil
	}
	_, err := s.Engine.RunEvery(maxCycles, 32, func() bool {
		return s.Done() && s.fabric.Idle()
	})
	if err != nil {
		return s.Engine.Cycle(), fmt.Errorf("platform(%s): %w", s.Cfg.Interconnect, err)
	}
	// Makespan = the latest master completion, not the drain tail.
	return s.Makespan(), nil
}

// RunPhased executes the warmup → measure → drain methodology on the
// system, using the same completion predicate and detection stride as Run.
// Phase boundaries are forced wake points, so the three kernels land on
// byte-identical boundary cycles (see sim.Phases). Callers drive the
// Stats registry from the phase callbacks: Sync + Reset at the warmup
// boundary, Sync + Snapshot + Reset at each epoch end.
func (s *System) RunPhased(p sim.Phases, maxCycles uint64) (sim.PhasedResult, error) {
	if p.Stride == 0 {
		p.Stride = 32
	}
	if s.Sharded != nil {
		res, err := s.Sharded.RunPhased(p, maxCycles)
		if err != nil {
			return res, fmt.Errorf("platform(%s): %w", s.Cfg.Interconnect, err)
		}
		return res, nil
	}
	res, err := s.Engine.RunPhased(p, maxCycles, func() bool {
		return s.Done() && s.fabric.Idle()
	})
	if err != nil {
		return res, fmt.Errorf("platform(%s): %w", s.Cfg.Interconnect, err)
	}
	return res, nil
}

// Makespan returns the latest master completion cycle (the paper's
// "cumulative execution time"), falling back to the engine cycle when no
// master exposes a halt cycle.
func (s *System) Makespan() uint64 {
	var last uint64
	for _, m := range s.Masters {
		if h, ok := m.(interface{ HaltCycle() uint64 }); ok {
			if c := h.HaltCycle(); c > last {
				last = c
			}
		}
	}
	if last == 0 {
		last = s.Engine.Cycle()
	}
	return last
}

// EngineSnapshot captures the run's engine state for result artifacts. On
// a sharded platform the per-engine device count depends on the partition
// (each engine holds its own region and masters), so the snapshot reports
// the canonical masters+fabric count instead — the same value a
// single-engine build registers — keeping artifacts byte-identical across
// shard counts.
func (s *System) EngineSnapshot() sim.Snapshot {
	snap := s.Engine.Snapshot()
	if s.Sharded != nil {
		snap.Devices = len(s.Masters) + 1
	}
	return snap
}

// Peek reads a word from whichever memory maps addr (test/validation hook).
func (s *System) Peek(addr uint32) uint32 {
	if layout.SharedRange().Contains(addr) {
		return s.Shared.PeekWord(addr)
	}
	for i, p := range s.Privs {
		if layout.PrivRange(i).Contains(addr) {
			return p.PeekWord(addr)
		}
	}
	panic(fmt.Sprintf("platform: Peek(%#08x) outside all memories", addr))
}

// ARMFactory returns a MasterFactory producing miniARM cores: core i runs
// programs[i] (loaded into its private memory) behind I/D caches of the
// given configuration.
func ARMFactory(programs []*cpu.Program, icache, dcache cache.Config) MasterFactory {
	return func(s *System, id int, port ocp.MasterPort) Master {
		prog := programs[id]
		s.Privs[id].LoadWords(prog.Base, prog.Words)
		mu := cache.NewMemUnit(port, cache.New(icache), cache.New(dcache),
			[]ocp.AddrRange{layout.PrivRange(id)})
		return &armMaster{Core: cpu.NewCore(id, mu, prog.Entry)}
	}
}

// armMaster adapts cpu.Core to the Master interface.
type armMaster struct{ *cpu.Core }

func (a *armMaster) Done() bool { return a.Halted() }

// BuildARM is the common case: an ARM platform running one assembled
// program per core.
func BuildARM(cfg Config, programs []*cpu.Program, icache, dcache cache.Config) (*System, error) {
	if len(programs) != cfg.Cores {
		return nil, fmt.Errorf("platform: %d programs for %d cores", len(programs), cfg.Cores)
	}
	return Build(cfg, ARMFactory(programs, icache, dcache))
}
