package platform

import (
	"testing"

	"noctg/internal/cache"
	"noctg/internal/core"
	"noctg/internal/cpu"
	"noctg/internal/layout"
	"noctg/internal/ocp"
	"noctg/internal/sim"
)

var cacheCfg = cache.Config{Lines: 16, WordsPerLine: 4}

func armPrograms(t *testing.T, cores int, src string) []*cpu.Program {
	t.Helper()
	progs := make([]*cpu.Program, cores)
	for i := 0; i < cores; i++ {
		p, err := cpu.Assemble(src, layout.PrivBaseFor(i))
		if err != nil {
			t.Fatal(err)
		}
		progs[i] = p
	}
	return progs
}

func TestBuildARMRuns(t *testing.T) {
	progs := armPrograms(t, 2, "ldi r1, 5\nhalt")
	sys, err := BuildARM(Config{Cores: 2}, progs, cacheCfg, cacheCfg)
	if err != nil {
		t.Fatal(err)
	}
	makespan, err := sys.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if makespan == 0 {
		t.Fatal("zero makespan")
	}
	if !sys.Done() {
		t.Fatal("system should be done")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Config{Cores: 0}, nil); err == nil {
		t.Fatal("zero cores should fail")
	}
	if _, err := Build(Config{Cores: 1}, nil); err == nil {
		t.Fatal("nil factory should fail")
	}
	if _, err := BuildARM(Config{Cores: 2}, nil, cacheCfg, cacheCfg); err == nil {
		t.Fatal("program count mismatch should fail")
	}
	if _, err := BuildTG(Config{Cores: 2}, nil); err == nil {
		t.Fatal("TG program count mismatch should fail")
	}
}

func TestTraceMonitorsAttached(t *testing.T) {
	progs := armPrograms(t, 1, "ldi r1, 0x08000000\nldi r2, 7\nstr r2, [r1+0]\nhalt")
	sys, err := BuildARM(Config{Cores: 1, Trace: true}, progs, cacheCfg, cacheCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if sys.Monitors[0] == nil {
		t.Fatal("monitor missing")
	}
	evs := sys.Monitors[0].Events()
	if len(evs) == 0 {
		t.Fatal("no events traced")
	}
	var sawWrite bool
	for _, e := range evs {
		if e.Cmd == ocp.Write && e.Addr == layout.SharedBase {
			sawWrite = true
		}
	}
	if !sawWrite {
		t.Fatal("shared-memory write not traced")
	}
}

func TestPeekAcrossMemories(t *testing.T) {
	progs := armPrograms(t, 2, "halt")
	sys, err := BuildARM(Config{Cores: 2}, progs, cacheCfg, cacheCfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Shared.PokeWord(layout.SharedBase+8, 42)
	sys.Privs[1].PokeWord(layout.PrivBaseFor(1)+4, 43)
	if sys.Peek(layout.SharedBase+8) != 42 || sys.Peek(layout.PrivBaseFor(1)+4) != 43 {
		t.Fatal("Peek misrouted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Peek outside memories should panic")
		}
	}()
	sys.Peek(0xdead0000)
}

func TestXPipesPlatformPlacement(t *testing.T) {
	progs := armPrograms(t, 3, "ldi r1, 0x08000000\nldr r2, [r1+0]\nhalt")
	sys, err := BuildARM(Config{Cores: 3, Interconnect: XPipes}, progs, cacheCfg, cacheCfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Net == nil || sys.Bus != nil {
		t.Fatal("xpipes platform should use the NoC")
	}
	if _, err := sys.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestAutoMeshSizes(t *testing.T) {
	for cores := 1; cores <= 12; cores++ {
		cfg := autoMesh(cores)
		if cfg.Width*cfg.Height < cores*2+3 {
			t.Fatalf("%d cores: mesh %dx%d too small", cores, cfg.Width, cfg.Height)
		}
	}
}

func TestTGPlatformRunsProgram(t *testing.T) {
	src := `MASTER[0,0]
REGISTER addr 0x08000000
REGISTER data 0
BEGIN
	SetRegister(data, 0x1234)
	Write(addr, data)
	Idle(5)
	Halt
END`
	p, err := core.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := BuildTG(Config{Cores: 1}, []*core.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if sys.Shared.PeekWord(layout.SharedBase) != 0x1234 {
		t.Fatal("TG write did not land in shared memory")
	}
}

func TestClonePlatform(t *testing.T) {
	events := [][]ocp.Event{{
		{Cmd: ocp.Write, Addr: layout.SharedBase + 4, Burst: 1, Assert: 10, Accept: 11, Data: []uint32{9}},
	}}
	sys, err := BuildClone(Config{Cores: 1}, events)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if sys.Shared.PeekWord(layout.SharedBase+4) != 9 {
		t.Fatal("clone replay did not land")
	}
}

func TestInterconnectString(t *testing.T) {
	if AMBA.String() != "amba" || XPipes.String() != "xpipes" {
		t.Fatal("interconnect names")
	}
	if Interconnect(9).String() == "" {
		t.Fatal("unknown interconnect name")
	}
}

func TestRunHitsLimit(t *testing.T) {
	// A TG that never halts must produce ErrMaxCycles.
	src := "MASTER[0,0]\nBEGIN\nstart:\nIdle(100)\nJump(start)\nEND"
	p, err := core.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := BuildTG(Config{Cores: 1}, []*core.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(1000); err == nil {
		t.Fatal("expected cycle-limit error")
	}
	_ = sim.ErrMaxCycles
}
