package platform_test

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"noctg/internal/core"
	"noctg/internal/layout"
	"noctg/internal/noc"
	"noctg/internal/ocp"
	"noctg/internal/platform"
	"noctg/internal/sim"
	"noctg/internal/stochastic"
)

// shardCounts is the partition matrix the determinism properties pin. The
// one-shard run is the reference: sharded semantics are their own
// determinism class (conservative flow control), so every other count must
// match shards=1, not the legacy single-engine run.
var shardCounts = []int{1, 2, 3, 4}

// runObs captures everything a sharded run exposes that could diverge.
type runObs struct {
	makespan uint64
	cycle    uint64
	devices  int
	issued   []int
	hists    []sim.HistogramSnapshot
}

// TestShardDeterminismRandomPrograms: for randomized TG programs on the
// mesh and the torus, every shard count and every kernel must reproduce
// the shards=1 strict run bit-for-bit: halt cycles, makespan, final engine
// cycle and the canonical snapshot device count.
func TestShardDeterminismRandomPrograms(t *testing.T) {
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(trial)*2003 + 5))
		cores := 2 + r.Intn(3)
		progs := make([]*core.Program, cores)
		for i := range progs {
			p, err := core.Assemble(randomProgram(r, i, cores))
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			progs[i] = p
		}
		for _, topo := range []noc.Topology{noc.Mesh, noc.Torus} {
			run := func(kernel platform.KernelMode, shards int) (uint64, uint64, []uint64) {
				t.Helper()
				sys, err := platform.BuildTG(platform.Config{
					Cores: cores, Interconnect: platform.XPipes,
					NoC:    noc.Config{Width: 4, Height: 4, Topology: topo},
					Kernel: kernel,
					Shards: shards,
				}, progs)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if shards > 1 && sys.Sharded.Shards() != shards {
					t.Fatalf("trial %d: runner has %d shards, want %d", trial, sys.Sharded.Shards(), shards)
				}
				makespan, err := sys.Run(5_000_000)
				if err != nil {
					t.Fatalf("trial %d shards=%d: %v", trial, shards, err)
				}
				halts := make([]uint64, cores)
				for i, m := range sys.Masters {
					halts[i] = m.(*core.Device).HaltCycle()
				}
				return makespan, sys.EngineSnapshot().Cycles, halts
			}
			mkRef, cycRef, haltRef := run(platform.KernelStrict, 1)
			for _, kernel := range propertyKernels() {
				for _, shards := range shardCounts {
					if kernel == platform.KernelStrict && shards == 1 {
						continue
					}
					mk, cyc, halt := run(kernel, shards)
					if mk != mkRef || cyc != cycRef {
						t.Fatalf("trial %d %v topo %v shards=%d: makespan %d (cycle %d), reference %d (cycle %d)",
							trial, kernel, topo, shards, mk, cyc, mkRef, cycRef)
					}
					if !reflect.DeepEqual(halt, haltRef) {
						t.Fatalf("trial %d %v topo %v shards=%d: halts %v, reference %v",
							trial, kernel, topo, shards, halt, haltRef)
					}
				}
			}
		}
	}
}

// shardObsRun executes one stochastic scenario at the given kernel/shard
// point and captures the full observable surface.
func shardObsRun(t *testing.T, scfg stochastic.Config, topo noc.Topology,
	kernel platform.KernelMode, shards int, maxCycles uint64) runObs {
	t.Helper()
	cores := scfg.Spatial.W * scfg.Spatial.H
	var gens []*stochastic.Generator
	sys, err := platform.Build(platform.Config{
		Cores: cores, Interconnect: platform.XPipes,
		NoC:    noc.Config{Width: 4, Height: 4, Topology: topo},
		Kernel: kernel,
		Shards: shards,
	}, func(_ *platform.System, id int, port ocp.MasterPort) platform.Master {
		g := stochastic.New(id, scfg, port)
		gens = append(gens, g)
		return g
	})
	if err != nil {
		t.Fatalf("build shards=%d: %v", shards, err)
	}
	makespan, err := sys.Run(maxCycles)
	if err != nil {
		t.Fatalf("run shards=%d: %v", shards, err)
	}
	obs := runObs{makespan: makespan}
	snap := sys.EngineSnapshot()
	obs.cycle, obs.devices = snap.Cycles, snap.Devices
	for _, g := range gens {
		obs.issued = append(obs.issued, g.Issued())
		obs.hists = append(obs.hists, g.Latency.Snapshot())
	}
	return obs
}

// TestShardDeterminismRandomScenarios is the -race stress half of the
// gate: randomized stochastic scenarios, kernels and shard counts, with
// the goroutine-per-shard runner exercised under load. Every observation —
// issue counts and full latency histograms included — must match the
// shards=1 run of the same kernel.
func TestShardDeterminismRandomScenarios(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	patterns := []stochastic.Pattern{
		stochastic.UniformRandom, stochastic.Transpose, stochastic.BitComplement,
		stochastic.BitReverse, stochastic.Hotspot, stochastic.NearestNeighbor,
	}
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(trial)*877 + 11))
		const w, h = 2, 2
		cores := w * h
		dests := make([]ocp.AddrRange, cores)
		for d := range dests {
			dests[d] = layout.PrivRange(d)
		}
		spatial := &stochastic.Spatial{
			Pattern:   patterns[r.Intn(len(patterns))],
			W:         w,
			H:         h,
			Dests:     dests,
			AllowSelf: r.Intn(2) == 0,
		}
		if spatial.Pattern == stochastic.Hotspot {
			spatial.HotspotWeights = []float64{0, 0.1 + 0.8*r.Float64()}
		}
		scfg := stochastic.Config{
			Dist:    stochastic.Dist(r.Intn(4)),
			MeanGap: 2 + 20*r.Float64(),
			Count:   80 + r.Intn(160),
			Seed:    int64(trial),
			Spatial: spatial,
		}
		topo := []noc.Topology{noc.Mesh, noc.Torus}[r.Intn(2)]
		kernel := propertyKernels()[r.Intn(len(propertyKernels()))]

		ref := shardObsRun(t, scfg, topo, kernel, 1, 5_000_000)
		// Two random shard counts per trial keep the stress run fast while
		// still covering the matrix across trials.
		for i := 0; i < 2; i++ {
			shards := 2 + r.Intn(3)
			got := shardObsRun(t, scfg, topo, kernel, shards, 5_000_000)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("trial %d %v/%v %v shards=%d diverged from shards=1:\n got %+v\n ref %+v",
					trial, scfg.Dist, spatial.Pattern, kernel, shards, got, ref)
			}
		}
	}
}

// TestShardAdvanceAllocFree is the end-to-end alloc guard for the sharded
// hot path: once pools and rings are warm, advancing a 2-shard system under
// continuous cross-shard traffic (masters in the bottom band, every slave in
// the top band) must not allocate — windows, barriers, worker spawns and the
// cut-link flit exchange included.
func TestShardAdvanceAllocFree(t *testing.T) {
	const w, h = 2, 2
	cores := w * h
	dests := make([]ocp.AddrRange, cores)
	for d := range dests {
		dests[d] = layout.PrivRange(d)
	}
	scfg := stochastic.Config{
		Dist:    stochastic.Poisson,
		MeanGap: 3,
		Count:   1 << 30, // effectively endless: the guard wants steady state
		Seed:    7,
		Spatial: &stochastic.Spatial{Pattern: stochastic.Transpose, W: w, H: h, Dests: dests},
	}
	sys, err := platform.Build(platform.Config{
		Cores: cores, Interconnect: platform.XPipes,
		NoC:    noc.Config{Width: 4, Height: 4},
		Kernel: platform.KernelEvent,
		Shards: 2,
	}, func(_ *platform.System, id int, port ocp.MasterPort) platform.Master {
		return stochastic.New(id, scfg, port)
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Sharded.Advance(5_000) // warm packet pools, rings and goroutine stacks
	if avg := testing.AllocsPerRun(20, func() {
		sys.Sharded.Advance(200)
	}); avg != 0 {
		t.Fatalf("sharded advance allocates %.1f times per segment, want 0", avg)
	}
}

// TestShardPhasedMatchesSingle pins the phased path: warmup/epoch/drain
// boundaries, the phased result and the synced registry snapshot must be
// identical for every shard count.
func TestShardPhasedMatchesSingle(t *testing.T) {
	const w, h = 2, 2
	cores := w * h
	dests := make([]ocp.AddrRange, cores)
	for d := range dests {
		dests[d] = layout.PrivRange(d)
	}
	scfg := stochastic.Config{
		Dist:    stochastic.Poisson,
		MeanGap: 6,
		Count:   400,
		Seed:    42,
		Spatial: &stochastic.Spatial{Pattern: stochastic.Transpose, W: w, H: h, Dests: dests},
	}
	run := func(shards int) (sim.PhasedResult, string) {
		sys, err := platform.Build(platform.Config{
			Cores: cores, Interconnect: platform.XPipes,
			NoC:    noc.Config{Width: 4, Height: 4},
			Kernel: platform.KernelEvent,
			Shards: shards,
		}, func(_ *platform.System, id int, port ocp.MasterPort) platform.Master {
			return stochastic.New(id, scfg, port)
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var epochs []uint64
		res, err := sys.RunPhased(sim.Phases{
			Warmup:    500,
			Epoch:     2000,
			MaxEpochs: 4,
			Drain:     100_000,
			AfterWarmup: func(now uint64) {
				sys.Stats.Sync(now)
				sys.Stats.Reset()
			},
			AfterEpoch: func(epoch int, start, end uint64) bool {
				epochs = append(epochs, start, end)
				return true
			},
		}, 2_000_000)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		sys.Stats.Sync(sys.Engine.Cycle())
		snap, err := json.Marshal(sys.Stats.Snapshot())
		if err != nil {
			t.Fatalf("shards=%d: snapshot: %v", shards, err)
		}
		if len(epochs) == 0 {
			t.Fatalf("shards=%d: no epochs ran", shards)
		}
		return res, string(snap)
	}
	refRes, refSnap := run(1)
	for _, shards := range shardCounts[1:] {
		res, snap := run(shards)
		if res != refRes {
			t.Fatalf("shards=%d: phased result %+v, reference %+v", shards, res, refRes)
		}
		if snap != refSnap {
			t.Fatalf("shards=%d: registry snapshot diverged from shards=1:\n%s\nvs\n%s", shards, snap, refSnap)
		}
	}
}
