package platform

import (
	"fmt"

	"noctg/internal/core"
	"noctg/internal/ocp"
	"noctg/internal/replay"
)

// TGFactory returns a MasterFactory producing traffic-generator devices:
// master i executes programs[i]. This is the Figure 1(b) platform — same
// interconnect and slaves, TGs in place of the IP cores.
func TGFactory(programs []*core.Program) MasterFactory {
	return func(s *System, id int, port ocp.MasterPort) Master {
		d, err := core.NewDevice(programs[id], port)
		if err != nil {
			panic(fmt.Sprintf("platform: TG %d: %v", id, err))
		}
		return d
	}
}

// BuildTG assembles a platform driven by TG devices. Under KernelAuto the
// platform runs the event-driven kernel: TG replay is exactly the workload
// it accelerates (deep Idle gaps, mixed busy/idle masters, quiescent
// fabric), and its results are identical to a strict run.
func BuildTG(cfg Config, programs []*core.Program) (*System, error) {
	if len(programs) != cfg.Cores {
		return nil, fmt.Errorf("platform: %d TG programs for %d cores", len(programs), cfg.Cores)
	}
	if cfg.Kernel == KernelAuto {
		cfg.Kernel = KernelEvent
	}
	return Build(cfg, TGFactory(programs))
}

// CloneFactory returns a MasterFactory producing cloning replayers
// (the non-reactive baseline of Section 3): master i replays events[i] at
// absolute timestamps.
func CloneFactory(events [][]ocp.Event) MasterFactory {
	return func(s *System, id int, port ocp.MasterPort) Master {
		return replay.NewClone(id, events[id], port)
	}
}

// BuildClone assembles a platform driven by cloning replayers. Like
// BuildTG, KernelAuto resolves to the event-driven kernel.
func BuildClone(cfg Config, events [][]ocp.Event) (*System, error) {
	if len(events) != cfg.Cores {
		return nil, fmt.Errorf("platform: %d clone traces for %d cores", len(events), cfg.Cores)
	}
	if cfg.Kernel == KernelAuto {
		cfg.Kernel = KernelEvent
	}
	return Build(cfg, CloneFactory(events))
}
