// Package prof wires the standard -cpuprofile/-memprofile flags into a
// command, so every binary in cmd/ shares one implementation instead of
// duplicating the pprof start/stop choreography.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the registered profiling flag values.
type Flags struct {
	cpu *string
	mem *string
}

// Register adds -cpuprofile and -memprofile to the default flag set. Call
// before flag.Parse.
func Register() *Flags {
	return &Flags{
		cpu: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: flag.String("memprofile", "", "write a heap profile to this file at exit"),
	}
}

// Start begins CPU profiling if requested and returns a stop function that
// finishes the CPU profile and writes the heap profile. Call the stop
// function on the success path only (a failed run exits without profiles,
// matching the behaviour tgsweep always had).
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if *f.cpu != "" {
		cpuFile, err = os.Create(*f.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if *f.mem != "" {
			mf, err := os.Create(*f.mem)
			if err != nil {
				return err
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(mf); err != nil {
				mf.Close()
				return err
			}
			return mf.Close()
		}
		return nil
	}, nil
}

// MustStart is Start with errors routed to stderr + exit, the shape every
// cmd/ main wants.
func (f *Flags) MustStart(tool string) (stop func()) {
	s, err := f.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(1)
	}
	return func() {
		if err := s(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
			os.Exit(1)
		}
	}
}
