package prog

import "fmt"

// Cacheloop is the paper's cache-resident scaling benchmark: every core
// spins an idle loop that executes entirely from its instruction cache, so
// the interconnect sees only the initial refills. The paper uses it to show
// TG speedup growing with the number of processors, because replaced cores
// dominate simulation cost while the bus stays idle (Table 2, "Cacheloop").
func Cacheloop(cores, iters int) *Spec {
	if cores < 1 || iters < 1 {
		panic(fmt.Sprintf("prog: Cacheloop cores=%d iters=%d invalid", cores, iters))
	}
	src := fmt.Sprintf(`
; Cacheloop: iterate an in-cache loop, then publish the iteration count.
	.equ iters %d
start:
	ldi r1, iters
	ldi r2, 0
	ldi r3, 0
loop:
	addi r2, r2, 1
	subi r1, r1, 1
	bne r1, r3, loop
	ldi r4, result
	str r2, [r4+0]
	halt
result:
	.word 0
`, iters)

	return &Spec{
		Name:      "cacheloop",
		Cores:     cores,
		Source:    src,
		MaxCycles: uint64(iters)*14 + 100_000,
		Validate: func(peek func(uint32) uint32, syms map[string]uint32) error {
			// Same offset in every core's image; syms belongs to core 0.
			for i := 0; i < cores; i++ {
				addr := corePrivAddr(i, syms["result"])
				if err := checkWord(peek, addr, uint32(iters), fmt.Sprintf("cacheloop core %d", i)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}
