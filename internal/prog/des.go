package prog

import (
	"fmt"
	"strings"

	"noctg/internal/layout"
)

// DES is the paper's encryption benchmark: each core encrypts its own share
// of two-word blocks with a 16-round table-driven Feistel cipher. The
// SP-tables and key schedule live in cacheable private memory (the tables
// exceed the D-cache, so lookups produce a steady stream of refills, just
// like real table-driven DES); plaintext and ciphertext live in shared
// memory; and each finished block passes through a semaphore-protected
// progress update, which provides the synchronisation contention the paper
// stresses (Table 2, "DES").
func DES(cores, blocksPerCore int) *Spec {
	if cores < 1 || cores > 16 || blocksPerCore < 1 || blocksPerCore > 256 {
		panic(fmt.Sprintf("prog: DES cores=%d blocks=%d invalid", cores, blocksPerCore))
	}
	sptab, ks := desTables()

	ready := sharedAddr(offReady)
	tick := sharedAddr(offTick)
	complete := sharedAddr(offComplete)
	done := sharedAddr(offDone)
	progress := sharedAddr(offProgress)
	pt := sharedAddr(offData)
	totalWords := cores * blocksPerCore * 2
	ct := pt + uint32(totalWords*4)
	sem0 := layout.SemAddr(0)

	// Flatten the tables into .word data.
	var ksWords, spWords []uint32
	for r := 0; r < 16; r++ {
		for g := 0; g < 8; g++ {
			ksWords = append(ksWords, ks[r][g])
		}
	}
	for g := 0; g < 8; g++ {
		for i := 0; i < 64; i++ {
			spWords = append(spWords, sptab[g][i])
		}
	}

	// The eight expansion groups are unrolled: group g uses a 4g-bit rotate
	// of R, the g-th round-key chunk and the g-th SP-table.
	var groups strings.Builder
	for g := 0; g < 8; g++ {
		fmt.Fprintf(&groups, `
	rori r9, r5, %d
	andi r9, r9, 0x3f
	ldr r10, [r7+%d]
	xor r9, r9, r10
	shli r9, r9, 2
	ldi r10, sptab+%d
	add r10, r10, r9
	ldr r10, [r10+0]
	or r6, r6, r10
`, (4*g)%32, 4*g, g*256)
	}

	src := fmt.Sprintf(`
; DES: per-core block encryption with per-block semaphore progress ticks.
	.equ ncores %d
	.equ blocks %d
	.equ ready %#x
	.equ tick %#x
	.equ complete %#x
	.equ doneflags %#x
	.equ progress %#x
	.equ pt %#x
	.equ ct %#x
	.equ sem0 %#x
	.equ totalwords %d
start:
	ldi r1, ready
	ldi r2, 1
	ldi r3, 0
	bne r15, r3, wait_ready
	; ---- core 0 writes the plaintext for every core ----
	ldi r4, pt
	ldi r5, 0
	ldi r6, totalwords
ipt:
	ldi r7, 0x9E3779B1
	mul r7, r5, r7
	xori r7, r7, 0x5A5A5A5A
	str r7, [r4+0]
	addi r4, r4, 4
	addi r5, r5, 1
	bne r5, r6, ipt
	ldi r1, ready
	ldi r2, 1
	str r2, [r1+0]
	jmp main
	; Single-line aligned poll loops; see mpmatrix.go.
	.align 16
wait_ready:
	ldr r3, [r1+0]
	bne r3, r2, wait_ready
main:
	ldi r13, 0            ; block index
blockloop:
	; ---- load my block: pt + (id·blocks + b)·8 ----
	ldi r9, blocks
	mul r9, r15, r9
	add r9, r9, r13
	shli r9, r9, 3
	ldi r10, pt
	add r10, r10, r9
	ldr r4, [r10+0]       ; L
	ldr r5, [r10+4]       ; R
	; ---- 16 Feistel rounds ----
	ldi r7, ks
	ldi r8, 16
round:
	ldi r6, 0
%s	xor r9, r4, r6
	mov r4, r5
	mov r5, r9
	addi r7, r7, 32
	subi r8, r8, 1
	ldi r9, 0
	bne r8, r9, round
	; ---- store ciphertext ----
	ldi r9, blocks
	mul r9, r15, r9
	add r9, r9, r13
	shli r9, r9, 3
	ldi r10, ct
	add r10, r10, r9
	str r4, [r10+0]
	str r5, [r10+4]
	; ---- per-block progress critical section ----
	ldi r1, sem0
	ldi r3, 1
	.align 16
acq:
	ldr r2, [r1+0]
	bne r2, r3, acq
	ldi r2, tick
	ldr r3, [r2+0]        ; shared read (value unused)
	ldi r2, progress
	mov r3, r15
	shli r3, r3, 2
	add r2, r2, r3
	mov r3, r15
	shli r3, r3, 16
	addi r9, r13, 1
	or r3, r3, r9
	str r3, [r2+0]        ; progress[id] = id<<16 | blocks-finished
	ldi r1, sem0
	ldi r2, 1
	str r2, [r1+0]
	; ---- next block ----
	addi r13, r13, 1
	ldi r9, blocks
	bne r13, r9, blockloop
	; ---- done flag ----
	ldi r1, doneflags
	mov r2, r15
	shli r2, r2, 2
	add r1, r1, r2
	ldi r2, 1
	str r2, [r1+0]
	ldi r3, 0
	bne r15, r3, fin
	ldi r4, doneflags
	ldi r5, 0
wall:
	ldi r6, ncores
	beq r5, r6, alldone
	ldi r2, 1
	.align 16
wflag:
	ldr r3, [r4+0]
	bne r3, r2, wflag
	addi r4, r4, 4
	addi r5, r5, 1
	jmp wall
alldone:
	ldi r1, complete
	ldi r2, %#x
	str r2, [r1+0]
fin:
	halt
ks:
%s
sptab:
%s
`, cores, blocksPerCore, ready, tick, complete, done, progress, pt, ct, sem0,
		totalWords, groups.String(), completeMagic, asmWords(ksWords), asmWords(spWords))

	return &Spec{
		Name:      "des",
		Cores:     cores,
		Source:    src,
		PollWords: pollWordsForCores(cores),
		MaxCycles: uint64(cores)*uint64(blocksPerCore)*60_000 + 2_000_000,
		Validate: func(peek func(uint32) uint32, syms map[string]uint32) error {
			for w := 0; w < totalWords; w += 2 {
				l := desPlainWord(uint32(w))
				r := desPlainWord(uint32(w + 1))
				cl, cr := refDESBlock(l, r, &sptab, &ks)
				if err := checkWord(peek, ct+uint32(4*w), cl, fmt.Sprintf("des CT[%d]", w)); err != nil {
					return err
				}
				if err := checkWord(peek, ct+uint32(4*(w+1)), cr, fmt.Sprintf("des CT[%d]", w+1)); err != nil {
					return err
				}
			}
			for i := 0; i < cores; i++ {
				want := uint32(i)<<16 | uint32(blocksPerCore)
				if err := checkWord(peek, progress+uint32(4*i), want, fmt.Sprintf("des progress[%d]", i)); err != nil {
					return err
				}
			}
			return checkWord(peek, complete, completeMagic, "des complete")
		},
	}
}
