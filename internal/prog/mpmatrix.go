package prog

import (
	"fmt"

	"noctg/internal/layout"
)

// MPMatrix is the paper's multiprocessor matrix benchmark: the input
// matrices live in uncacheable shared memory, rows are partitioned
// round-robin over the cores, and the cores synchronise through a ready
// flag, a hardware semaphore (one critical section per computed row, which
// serialises progress publishing and generates the polling contention the
// paper's §3 analyses) and per-core done flags that core 0 collects
// (Table 2, "MP matrix").
func MPMatrix(cores, n int) *Spec {
	if cores < 1 || cores > 16 || n < cores || n > 64 {
		panic(fmt.Sprintf("prog: MPMatrix cores=%d n=%d invalid", cores, n))
	}
	ready := sharedAddr(offReady)
	tick := sharedAddr(offTick)
	complete := sharedAddr(offComplete)
	done := sharedAddr(offDone)
	sums := sharedAddr(offSums)
	amat := sharedAddr(offData)
	bmat := amat + uint32(n*n*4)
	cmat := bmat + uint32(n*n*4)
	sem0 := layout.SemAddr(0)

	src := fmt.Sprintf(`
; MP matrix: shared C = A×B, round-robin rows, semaphore-paced publishing.
	.equ n %d
	.equ nn %d
	.equ ncores %d
	.equ ready %#x
	.equ tick %#x
	.equ complete %#x
	.equ doneflags %#x
	.equ sums %#x
	.equ amat %#x
	.equ bmat %#x
	.equ cmat %#x
	.equ sem0 %#x
start:
	ldi r1, ready
	ldi r2, 1
	ldi r3, 0
	bne r15, r3, wait_ready
	; ---- core 0 initialises A and B in shared memory ----
	ldi r1, amat
	ldi r2, 0
ia:	ldi r3, 3
	mul r3, r2, r3
	addi r3, r3, 1
	andi r3, r3, 0xff
	str r3, [r1+0]
	addi r1, r1, 4
	addi r2, r2, 1
	ldi r4, nn
	bne r2, r4, ia
	ldi r1, bmat
	ldi r2, 0
ib:	ldi r3, 5
	mul r3, r2, r3
	addi r3, r3, 2
	andi r3, r3, 0xff
	str r3, [r1+0]
	addi r1, r1, 4
	addi r2, r2, 1
	ldi r4, nn
	bne r2, r4, ib
	ldi r1, ready
	ldi r2, 1
	str r2, [r1+0]
	jmp compute
	; Poll loops are exactly one I-cache line (two instructions, aligned)
	; so their refill always precedes the first poll on every fabric —
	; required for cross-interconnect .tgp equality (DESIGN.md §5).
	.align 16
wait_ready:
	ldr r3, [r1+0]
	bne r3, r2, wait_ready
compute:
	ldi r13, 0            ; my checksum accumulator
	mov r4, r15           ; row = id
rowloop:
	ldi r5, n
	bge r4, r5, rows_done
	ldi r6, 0             ; j
colloop:
	ldi r7, 0             ; acc
	ldi r8, 0             ; k
kloop:
	ldi r9, n
	mul r9, r4, r9
	add r9, r9, r8
	shli r9, r9, 2
	ldi r10, amat
	add r10, r10, r9
	ldr r10, [r10+0]      ; A[row][k] (uncached shared read)
	ldi r11, n
	mul r11, r8, r11
	add r11, r11, r6
	shli r11, r11, 2
	ldi r12, bmat
	add r12, r12, r11
	ldr r12, [r12+0]      ; B[k][j]
	mul r10, r10, r12
	add r7, r7, r10
	addi r8, r8, 1
	ldi r9, n
	bne r8, r9, kloop
	ldi r9, n
	mul r9, r4, r9
	add r9, r9, r6
	shli r9, r9, 2
	ldi r10, cmat
	add r10, r10, r9
	str r7, [r10+0]       ; C[row][j]
	add r13, r13, r7
	addi r6, r6, 1
	ldi r9, n
	bne r6, r9, colloop
	; ---- per-row critical section: publish running checksum ----
	ldi r1, sem0
	ldi r3, 1
	.align 16
acq:
	ldr r2, [r1+0]
	bne r2, r3, acq
	ldi r2, tick
	ldr r3, [r2+0]        ; shared read inside the section (value unused)
	ldi r2, sums
	mov r3, r15
	shli r3, r3, 2
	add r2, r2, r3
	str r13, [r2+0]       ; sums[id] = my checksum so far
	ldi r1, sem0
	ldi r2, 1
	str r2, [r1+0]        ; release
	addi r4, r4, ncores
	jmp rowloop
rows_done:
	; ---- done flag ----
	ldi r1, doneflags
	mov r2, r15
	shli r2, r2, 2
	add r1, r1, r2
	ldi r2, 1
	str r2, [r1+0]
	ldi r3, 0
	bne r15, r3, fin
	; ---- core 0 collects all done flags ----
	ldi r4, doneflags
	ldi r5, 0
wall:
	ldi r6, ncores
	beq r5, r6, alldone
	ldi r2, 1
	.align 16
wflag:
	ldr r3, [r4+0]
	bne r3, r2, wflag
	addi r4, r4, 4
	addi r5, r5, 1
	jmp wall
alldone:
	ldi r1, complete
	ldi r2, %#x
	str r2, [r1+0]
fin:
	halt
`, n, n*n, cores, ready, tick, complete, done, sums, amat, bmat, cmat, sem0, completeMagic)

	return &Spec{
		Name:      "mpmatrix",
		Cores:     cores,
		Source:    src,
		PollWords: pollWordsForCores(cores),
		MaxCycles: uint64(n)*uint64(n)*uint64(n)*600 + 2_000_000,
		Validate: func(peek func(uint32) uint32, syms map[string]uint32) error {
			a, b := refMatrices(n)
			c := refMatMul(n, a, b)
			for k := range c {
				if err := checkWord(peek, cmat+uint32(4*k), c[k], fmt.Sprintf("mpmatrix C[%d]", k)); err != nil {
					return err
				}
			}
			for i := 0; i < cores; i++ {
				want := refRowChecksum(n, cores, i, c)
				if err := checkWord(peek, sums+uint32(4*i), want, fmt.Sprintf("mpmatrix sums[%d]", i)); err != nil {
					return err
				}
			}
			return checkWord(peek, complete, completeMagic, "mpmatrix complete")
		},
	}
}
