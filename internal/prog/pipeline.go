package prog

import "fmt"

// Pipeline is an additional workload beyond the paper's four: a dataflow
// chain in which core 0 produces items, middle cores transform them, and
// the last core folds them into a checksum, with single-buffer flag
// handshakes between adjacent stages. Every item crosses every stage
// boundary through shared memory, so the traffic is dominated by
// fine-grained reactive synchronisation — the hardest case for a traffic
// generator, and a typical streaming-DSP pattern on a NoC.
//
// Stage s communicates with stage s+1 through flag[s]: the producer side
// polls flag[s] == 0 (buffer free), writes the item and sets flag[s] = 1;
// the consumer side polls flag[s] == 1, reads the item and clears the
// flag. Each poll episode targets a single stable value, so the translator
// collapses it reactively like any barrier flag.
func Pipeline(cores, items int) *Spec {
	if cores < 2 || cores > 16 || items < 1 || items > 4096 {
		panic(fmt.Sprintf("prog: Pipeline cores=%d items=%d invalid", cores, items))
	}
	complete := sharedAddr(offComplete)
	result := sharedAddr(offSums)
	flags := sharedAddr(offProgress) // flag[s] at flags + 4s
	bufs := sharedAddr(offData)      // buf[s] at bufs + 8s: {value, seq}

	src := fmt.Sprintf(`
; Pipeline: core 0 -> core 1 -> ... -> core P-1 over flag-handshake buffers.
	.equ ncores %d
	.equ items %d
	.equ flags %#x
	.equ bufs %#x
	.equ result %#x
	.equ complete %#x
start:
	ldi r13, 0            ; item counter
	ldi r12, 0            ; checksum (last stage)
	; my left flag/buf: index r15-1; my right: index r15
	mov r4, r15
	shli r4, r4, 2
	ldi r5, flags
	add r4, r5, r4        ; r4 = &flag[s] (right)
	mov r5, r15
	shli r5, r5, 3
	ldi r6, bufs
	add r5, r6, r5        ; r5 = &buf[s] (right)
	mov r6, r15
	subi r6, r6, 1
	shli r6, r6, 2
	ldi r7, flags
	add r6, r7, r6        ; r6 = &flag[s-1] (left)
	mov r7, r15
	subi r7, r7, 1
	shli r7, r7, 3
	ldi r8, bufs
	add r7, r8, r7        ; r7 = &buf[s-1] (left)
itemloop:
	ldi r1, 0
	bne r15, r1, not_producer
	; ---- stage 0: produce value = 7k+3 ----
	mov r1, r4
	ldi r2, 0
	.align 16
pwait:
	ldr r3, [r1+0]
	bne r3, r2, pwait     ; wait buffer free
	ldi r9, 7
	mul r9, r13, r9
	addi r9, r9, 3
	str r9, [r5+0]        ; value
	str r13, [r5+4]       ; sequence number
	ldi r9, 1
	str r9, [r1+0]        ; publish
	jmp next
not_producer:
	; ---- consume from the left ----
	mov r1, r6
	ldi r2, 1
	.align 16
cwait:
	ldr r3, [r1+0]
	bne r3, r2, cwait     ; wait item available
	ldr r9, [r7+0]        ; value
	ldr r10, [r7+4]       ; seq
	ldi r2, 0
	str r2, [r1+0]        ; free the buffer
	; transform: v = 3v + 1
	ldi r11, 3
	mul r9, r9, r11
	addi r9, r9, 1
	ldi r1, ncores
	subi r1, r1, 1
	beq r15, r1, last_stage
	; ---- middle stage: forward to the right ----
	mov r1, r4
	ldi r2, 0
	.align 16
mwait:
	ldr r3, [r1+0]
	bne r3, r2, mwait     ; wait right buffer free
	str r9, [r5+0]
	str r10, [r5+4]
	ldi r9, 1
	str r9, [r1+0]
	jmp next
last_stage:
	; ---- sink: fold into checksum ----
	add r12, r12, r9
	add r12, r12, r10
next:
	addi r13, r13, 1
	ldi r9, items
	bne r13, r9, itemloop
	; ---- epilogue ----
	ldi r1, ncores
	subi r1, r1, 1
	bne r15, r1, fin
	ldi r1, result
	str r12, [r1+0]
	ldi r1, complete
	ldi r2, %#x
	str r2, [r1+0]
fin:
	halt
`, cores, items, flags, bufs, result, complete, completeMagic)

	// Pollable words: one handshake flag per stage boundary.
	var polls []uint32
	for s := 0; s < cores-1; s++ {
		polls = append(polls, flags+uint32(4*s))
	}

	return &Spec{
		Name:      "pipeline",
		Cores:     cores,
		Source:    src,
		PollWords: polls,
		MaxCycles: uint64(items)*uint64(cores)*3000 + 1_000_000,
		Validate: func(peek func(uint32) uint32, syms map[string]uint32) error {
			var want uint32
			for k := 0; k < items; k++ {
				v := uint32(7*k + 3)
				for s := 1; s < cores; s++ {
					v = 3*v + 1
				}
				want += v + uint32(k)
			}
			if err := checkWord(peek, result, want, "pipeline checksum"); err != nil {
				return err
			}
			return checkWord(peek, complete, completeMagic, "pipeline complete")
		},
	}
}
