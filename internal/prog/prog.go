// Package prog provides the four MPARM benchmarks of the paper's Table 2 —
// SP matrix, Cacheloop, MP matrix and DES — rewritten as SPMD miniARM
// assembly programs, together with pure-Go reference implementations used
// to validate the simulated results functionally.
//
// Every program follows two rules that the paper's TG methodology depends
// on (see DESIGN.md §3):
//
//  1. values written to memory are functions of the writing core's own
//     deterministic computation (so recorded write-data is
//     interconnect-independent, making translated TG programs identical
//     across fabrics), and
//  2. cross-core synchronisation happens only through hardware semaphores
//     and monotonic shared flag words that are polled until a stable target
//     value (so the translator can always collapse them into reactive poll
//     loops).
package prog

import (
	"fmt"
	"strings"

	"noctg/internal/cpu"
	"noctg/internal/layout"
)

// Spec is one runnable benchmark: an SPMD source assembled once per core at
// that core's private base, plus the metadata the platform and translator
// need.
type Spec struct {
	// Name identifies the benchmark ("spmatrix", "cacheloop", …).
	Name string
	// Cores is the number of processors.
	Cores int
	// Source is the SPMD assembly; cores branch on r15 (core ID).
	Source string
	// PollWords lists shared flag addresses that programs poll; the
	// translator turns reads of these (and of the semaphore bank) into
	// reactive loops.
	PollWords []uint32
	// MaxCycles bounds a simulation of this spec.
	MaxCycles uint64
	// Validate checks functional correctness after a run, reading memory
	// through peek; syms is core 0's symbol table.
	Validate func(peek func(uint32) uint32, syms map[string]uint32) error
}

// Assemble produces one program per core, each loaded at its private base.
func (s *Spec) Assemble() ([]*cpu.Program, error) {
	progs := make([]*cpu.Program, s.Cores)
	for i := 0; i < s.Cores; i++ {
		p, err := cpu.Assemble(s.Source, layout.PrivBaseFor(i))
		if err != nil {
			return nil, fmt.Errorf("prog %s core %d: %w", s.Name, i, err)
		}
		progs[i] = p
	}
	return progs, nil
}

// Shared-memory word offsets common to the multiprocessor benchmarks.
const (
	offReady    = 0x00 // init-done flag, set by core 0
	offTick     = 0x08 // scratch word read inside critical sections
	offComplete = 0x0c // final status word written by core 0
	offDone     = 0x10 // per-core done flags (offDone + 4·id)
	offSums     = 0x80 // per-core checksum slots
	offProgress = 0xc0 // per-core progress slots
	offData     = 0x1000
)

func sharedAddr(off uint32) uint32 { return layout.SharedBase + off }

// completeMagic is the value core 0 publishes when a run finished cleanly.
const completeMagic = 0xC0DE

// Poll-loop periods of the benchmark programs on the reference core
// (response→re-poll, in cycles). These are supplied to the translator as
// platform knowledge so that translation never depends on how many polls a
// particular interconnect happened to need (see core.PollRange.Gap). They
// are pinned by exp.TestPollGapMatchesMeasuredConstant.
const (
	// SemPollGap is the semaphore-acquire loop period (ldr/bne, with the
	// comparison value hoisted out of the loop).
	SemPollGap = 8
	// FlagPollGap is the barrier-flag loop period (ldr/bne).
	FlagPollGap = 8
)

// pollWordsForCores returns ready + per-core done flag addresses.
func pollWordsForCores(cores int) []uint32 {
	ws := []uint32{sharedAddr(offReady)}
	for i := 0; i < cores; i++ {
		ws = append(ws, sharedAddr(offDone+uint32(4*i)))
	}
	return ws
}

// asmWords renders values as .word directives, eight per line.
func asmWords(vals []uint32) string {
	var b strings.Builder
	for i := 0; i < len(vals); i += 8 {
		end := i + 8
		if end > len(vals) {
			end = len(vals)
		}
		b.WriteString("\t.word ")
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%#x", vals[j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// corePrivAddr translates a core-0 private symbol to core id's image (the
// SPMD sources are identical, so offsets match).
func corePrivAddr(id int, sym0 uint32) uint32 {
	return layout.PrivBaseFor(id) + (sym0 - layout.PrivBase)
}

// checkWord is a Validate helper.
func checkWord(peek func(uint32) uint32, addr uint32, want uint32, what string) error {
	if got := peek(addr); got != want {
		return fmt.Errorf("%s: mem[%#08x] = %#x, want %#x", what, addr, got, want)
	}
	return nil
}
