package prog

import (
	"testing"

	"noctg/internal/cache"
	"noctg/internal/layout"
	"noctg/internal/platform"
)

var testCacheCfg = cache.Config{Lines: 64, WordsPerLine: 4}

// runSpec assembles and runs a spec on the given fabric, validating results.
func runSpec(t *testing.T, s *Spec, ic platform.Interconnect) *platform.System {
	t.Helper()
	progs, err := s.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	sys, err := platform.BuildARM(platform.Config{Cores: s.Cores, Interconnect: ic},
		progs, testCacheCfg, testCacheCfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := sys.Run(s.MaxCycles); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, m := range sys.Masters {
		if f, ok := m.(interface{ Faulted() bool }); ok && f.Faulted() {
			t.Fatalf("core %d faulted", i)
		}
	}
	if err := s.Validate(sys.Peek, progs[0].Symbols); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return sys
}

func TestSPMatrixOnAMBA(t *testing.T) {
	sys := runSpec(t, SPMatrix(8), platform.AMBA)
	if sys.Engine.Cycle() == 0 {
		t.Fatal("no cycles simulated")
	}
}

func TestCacheloopOnAMBA(t *testing.T) {
	sys := runSpec(t, Cacheloop(4, 500), platform.AMBA)
	// After warmup the bus must be almost entirely idle.
	busy := float64(sys.Bus.BusyCycles()) / float64(sys.Engine.Cycle())
	if busy > 0.25 {
		t.Fatalf("cacheloop kept the bus %.0f%% busy; should be refills only", busy*100)
	}
}

func TestCacheloopScalesFlat(t *testing.T) {
	// Makespan must be nearly independent of the core count (the paper's
	// cumulative execution time stays ≈2.5M from 2P to 12P).
	mk := func(cores int) uint64 {
		s := Cacheloop(cores, 800)
		progs, _ := s.Assemble()
		sys, err := platform.BuildARM(platform.Config{Cores: cores}, progs, testCacheCfg, testCacheCfg)
		if err != nil {
			t.Fatal(err)
		}
		span, err := sys.Run(s.MaxCycles)
		if err != nil {
			t.Fatal(err)
		}
		return span
	}
	m2, m8 := mk(2), mk(8)
	if float64(m8) > float64(m2)*1.15 {
		t.Fatalf("cacheloop makespan grew from %d (2P) to %d (8P)", m2, m8)
	}
}

func TestMPMatrixOnAMBA(t *testing.T) {
	for _, cores := range []int{1, 2, 4} {
		sys := runSpec(t, MPMatrix(cores, 8), platform.AMBA)
		if cores > 1 {
			acq, fails, rel := sys.Sems.Stats()
			if acq == 0 || rel == 0 {
				t.Fatalf("%dP: no semaphore activity (acq=%d rel=%d)", cores, acq, rel)
			}
			_ = fails
		}
	}
}

func TestMPMatrixSemaphoreContention(t *testing.T) {
	sys := runSpec(t, MPMatrix(4, 8), platform.AMBA)
	_, fails, _ := sys.Sems.Stats()
	if fails == 0 {
		t.Fatal("4-core MP matrix should exhibit failed semaphore polls")
	}
}

func TestDESOnAMBA(t *testing.T) {
	runSpec(t, DES(2, 2), platform.AMBA)
}

func TestDESMoreCores(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-core DES in -short mode")
	}
	runSpec(t, DES(3, 2), platform.AMBA)
}

func TestMPMatrixOnXPipes(t *testing.T) {
	// Functional results must be identical on a completely different
	// interconnect — the property the paper's decoupling argument rests on.
	runSpec(t, MPMatrix(2, 6), platform.XPipes)
}

func TestCacheloopOnXPipes(t *testing.T) {
	runSpec(t, Cacheloop(2, 300), platform.XPipes)
}

func TestDESOnXPipes(t *testing.T) {
	if testing.Short() {
		t.Skip("NoC DES in -short mode")
	}
	runSpec(t, DES(2, 1), platform.XPipes)
}

func TestDeterministicMakespan(t *testing.T) {
	span := func() uint64 {
		s := MPMatrix(2, 6)
		progs, _ := s.Assemble()
		sys, err := platform.BuildARM(platform.Config{Cores: 2}, progs, testCacheCfg, testCacheCfg)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := sys.Run(s.MaxCycles)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	if a, b := span(), span(); a != b {
		t.Fatalf("non-deterministic makespan: %d vs %d", a, b)
	}
}

func TestSpecAssemblePerCoreBases(t *testing.T) {
	s := Cacheloop(3, 10)
	progs, err := s.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range progs {
		if p.Base != layout.PrivBaseFor(i) {
			t.Fatalf("core %d base %#x", i, p.Base)
		}
	}
	if progs[0].Symbols["result"] == progs[1].Symbols["result"] {
		t.Fatal("per-core symbols should differ by base")
	}
}

func TestPollWordsRegistered(t *testing.T) {
	s := MPMatrix(4, 8)
	if len(s.PollWords) != 1+4 {
		t.Fatalf("expected ready + 4 done flags, got %d", len(s.PollWords))
	}
	if s.PollWords[0] != layout.SharedBase {
		t.Fatalf("ready flag at %#x", s.PollWords[0])
	}
}

func TestDESTablesStable(t *testing.T) {
	// The synthetic tables must be deterministic: TG translation equality
	// across interconnects depends on identical embedded data.
	a1, k1 := desTables()
	a2, k2 := desTables()
	if a1 != a2 || k1 != k2 {
		t.Fatal("desTables must be deterministic")
	}
	for r := range k1 {
		for g := range k1[r] {
			if k1[r][g] > 0x3f {
				t.Fatal("round-key chunks must be 6-bit")
			}
		}
	}
}

func TestRefDESChangesData(t *testing.T) {
	sp, ks := desTables()
	l, r := refDESBlock(0x01234567, 0x89abcdef, &sp, &ks)
	if l == 0x01234567 && r == 0x89abcdef {
		t.Fatal("encryption should change the block")
	}
	// Deterministic.
	l2, r2 := refDESBlock(0x01234567, 0x89abcdef, &sp, &ks)
	if l != l2 || r != r2 {
		t.Fatal("encryption must be deterministic")
	}
}

func TestInvalidSpecParamsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"spmatrix n": func() { SPMatrix(1) },
		"cacheloop":  func() { Cacheloop(0, 1) },
		"mpmatrix":   func() { MPMatrix(4, 2) },
		"des blocks": func() { DES(1, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		})
	}
}

func TestPipelineOnAMBA(t *testing.T) {
	for _, cores := range []int{2, 3, 4} {
		runSpec(t, Pipeline(cores, 6), platform.AMBA)
	}
}

func TestPipelineOnXPipes(t *testing.T) {
	runSpec(t, Pipeline(3, 4), platform.XPipes)
}

func TestPipelinePollWords(t *testing.T) {
	s := Pipeline(4, 2)
	if len(s.PollWords) != 3 {
		t.Fatalf("4 stages need 3 handshake flags, got %d", len(s.PollWords))
	}
}

func TestPipelineInvalidParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("single-core pipeline should panic")
		}
	}()
	Pipeline(1, 10)
}
