package prog

// Pure-Go reference implementations. The simulated programs must reproduce
// these results bit-exactly; the test suites compare memory contents after
// each run.

// matInitA/B are the element formulas both the assembly and the reference
// use. Values stay below 2⁸ so n ≤ 64 products cannot overflow 32 bits.
func matInitA(k uint32) uint32 { return (k*3 + 1) & 0xff }
func matInitB(k uint32) uint32 { return (k*5 + 2) & 0xff }

// refMatrices builds the n×n input matrices.
func refMatrices(n int) (a, b []uint32) {
	a = make([]uint32, n*n)
	b = make([]uint32, n*n)
	for k := range a {
		a[k] = matInitA(uint32(k))
		b[k] = matInitB(uint32(k))
	}
	return a, b
}

// refMatMul computes c = a×b over uint32 (wrapping, like the core).
func refMatMul(n int, a, b []uint32) []uint32 {
	c := make([]uint32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc uint32
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = acc
		}
	}
	return c
}

// refRowChecksum sums the C elements of the rows core id owns under
// round-robin row partitioning.
func refRowChecksum(n, cores, id int, c []uint32) uint32 {
	var sum uint32
	for row := id; row < n; row += cores {
		for j := 0; j < n; j++ {
			sum += c[row*n+j]
		}
	}
	return sum
}

// ror mirrors the core's RORI semantics.
func ror(v uint32, sh int) uint32 {
	sh &= 31
	return v>>sh | v<<((32-sh)&31)
}

// desTables generates the synthetic SP-tables and round keys. Real FIPS
// S-box constants cannot be verified offline, so deterministic pseudo-random
// tables are used instead; the access pattern and computation structure are
// identical to table-driven DES (see DESIGN.md §3).
func desTables() (sptab [8][64]uint32, ks [16][8]uint32) {
	state := uint32(0x2545F491)
	next := func() uint32 {
		// xorshift32
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		return state
	}
	for g := 0; g < 8; g++ {
		for i := 0; i < 64; i++ {
			sptab[g][i] = next()
		}
	}
	for r := 0; r < 16; r++ {
		for g := 0; g < 8; g++ {
			ks[r][g] = next() & 0x3f
		}
	}
	return
}

// desPlainWord is the plaintext initialisation formula (mirrored in asm).
func desPlainWord(w uint32) uint32 { return (w * 0x9E3779B1) ^ 0x5A5A5A5A }

// refDESBlock encrypts one two-word block exactly as the assembly does:
// 16 Feistel rounds, F(R) = OR of eight SP-table lookups indexed by
// overlapping 6-bit windows of R XORed with the round key chunks.
func refDESBlock(l, r uint32, sptab *[8][64]uint32, ks *[16][8]uint32) (uint32, uint32) {
	for round := 0; round < 16; round++ {
		var f uint32
		for g := 0; g < 8; g++ {
			idx := (ror(r, 4*g) & 0x3f) ^ ks[round][g]
			f |= sptab[g][idx]
		}
		l, r = r, l^f
	}
	return l, r
}
