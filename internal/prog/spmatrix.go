package prog

import "fmt"

// SPMatrix is the paper's single-processor matrix-manipulation benchmark:
// one core initialises two n×n matrices in its cacheable private memory,
// multiplies them and folds the product into a checksum. Traffic is cache
// refills and write-through stores on an otherwise idle interconnect —
// the simplest accuracy/speedup environment (Table 2, "SP matrix").
func SPMatrix(n int) *Spec {
	if n < 2 || n > 64 {
		panic(fmt.Sprintf("prog: SPMatrix n=%d out of range [2,64]", n))
	}
	src := fmt.Sprintf(`
; SP matrix: C = A×B in private memory, then checksum(C) -> result.
	.equ n %d
	.equ nn %d
start:
	; ---- init A[k] = (3k+1)&0xff, B[k] = (5k+2)&0xff ----
	ldi r1, amat
	ldi r2, 0
ia:	ldi r3, 3
	mul r3, r2, r3
	addi r3, r3, 1
	andi r3, r3, 0xff
	str r3, [r1+0]
	addi r1, r1, 4
	addi r2, r2, 1
	ldi r4, nn
	bne r2, r4, ia
	ldi r1, bmat
	ldi r2, 0
ib:	ldi r3, 5
	mul r3, r2, r3
	addi r3, r3, 2
	andi r3, r3, 0xff
	str r3, [r1+0]
	addi r1, r1, 4
	addi r2, r2, 1
	ldi r4, nn
	bne r2, r4, ib
	; ---- C = A×B ----
	ldi r4, 0             ; i
li:	ldi r6, 0             ; j
lj:	ldi r7, 0             ; acc
	ldi r8, 0             ; k
lk:	ldi r9, n
	mul r9, r4, r9
	add r9, r9, r8
	shli r9, r9, 2
	ldi r10, amat
	add r10, r10, r9
	ldr r10, [r10+0]      ; A[i][k]
	ldi r11, n
	mul r11, r8, r11
	add r11, r11, r6
	shli r11, r11, 2
	ldi r12, bmat
	add r12, r12, r11
	ldr r12, [r12+0]      ; B[k][j]
	mul r10, r10, r12
	add r7, r7, r10
	addi r8, r8, 1
	ldi r9, n
	bne r8, r9, lk
	ldi r9, n
	mul r9, r4, r9
	add r9, r9, r6
	shli r9, r9, 2
	ldi r10, cmat
	add r10, r10, r9
	str r7, [r10+0]       ; C[i][j]
	addi r6, r6, 1
	ldi r9, n
	bne r6, r9, lj
	addi r4, r4, 1
	ldi r9, n
	bne r4, r9, li
	; ---- checksum(C) -> result ----
	ldi r1, cmat
	ldi r2, 0
	ldi r7, 0
ck:	ldr r3, [r1+0]
	add r7, r7, r3
	addi r1, r1, 4
	addi r2, r2, 1
	ldi r4, nn
	bne r2, r4, ck
	ldi r1, result
	str r7, [r1+0]
	halt
result:
	.word 0
amat:
	.space %d
bmat:
	.space %d
cmat:
	.space %d
`, n, n*n, n*n*4, n*n*4, n*n*4)

	return &Spec{
		Name:      "spmatrix",
		Cores:     1,
		Source:    src,
		MaxCycles: uint64(n) * uint64(n) * uint64(n) * 400 * 4,
		Validate: func(peek func(uint32) uint32, syms map[string]uint32) error {
			a, b := refMatrices(n)
			c := refMatMul(n, a, b)
			var want uint32
			for _, v := range c {
				want += v
			}
			if err := checkWord(peek, syms["result"], want, "spmatrix checksum"); err != nil {
				return err
			}
			// Spot-check the product matrix itself (write-through keeps RAM
			// current).
			base := syms["cmat"]
			for _, k := range []int{0, 1, n, n*n - 1} {
				if err := checkWord(peek, base+uint32(4*k), c[k], fmt.Sprintf("spmatrix C[%d]", k)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}
