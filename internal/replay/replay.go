// Package replay provides the two non-reactive baseline generators the
// paper's Section 3 argues against:
//
//   - Clone replays a recorded trace at its absolute timestamps
//     ("cloning": "a trace with timestamps can be collected in the
//     reference system and then be independently replayed"), drifting when
//     the new interconnect is slower and ignoring all causality;
//   - the time-shifting generator is the translator with poll recognition
//     disabled (core.TranslateConfig.RecognizePolls = false), which ties
//     transactions to previous responses but replays the recorded number
//     of polling accesses verbatim.
//
// Comparing these against the reactive TG on an interconnect different
// from the traced one reproduces the paper's motivation quantitatively.
package replay

import (
	"fmt"

	"noctg/internal/ocp"
	"noctg/internal/sim"
)

type cloneState int

const (
	cWait cloneState = iota
	cIssue
	cResp
	cDone
)

// Clone is the "cloning" baseline master. It issues each recorded event at
// its recorded assert cycle (or as soon after as the port allows) and makes
// no decisions based on responses.
type Clone struct {
	events []ocp.Event
	port   ocp.MasterPort
	hinter ocp.WakeHinter // port's optional stall-horizon interface
	id     int

	i       int
	state   cloneState
	req     ocp.Request
	dataBuf []uint32

	halted    bool
	haltCycle uint64
	// Drift is the accumulated lateness (cycles) of command issue versus
	// the recorded schedule — the cloning failure metric.
	Drift uint64
	// Transactions counts issued OCP commands (registry-registerable so
	// phased measurement can reset it at epoch boundaries).
	Transactions sim.Counter
}

// NewClone builds a cloning replayer for a recorded event stream.
func NewClone(id int, events []ocp.Event, port ocp.MasterPort) *Clone {
	if port == nil {
		panic("replay: NewClone requires a port")
	}
	c := &Clone{events: events, port: port, id: id}
	c.hinter, _ = port.(ocp.WakeHinter)
	return c
}

// Name implements sim.Named.
func (c *Clone) Name() string { return fmt.Sprintf("clone%d", c.id) }

// RegisterStats implements sim.StatsSource.
func (c *Clone) RegisterStats(r *sim.Registry) {
	r.RegisterCounter("transactions", &c.Transactions)
}

// Done reports whether the replay finished.
func (c *Clone) Done() bool { return c.halted }

// HaltCycle returns the completion cycle.
func (c *Clone) HaltCycle() uint64 { return c.haltCycle }

// Tick implements sim.Device.
func (c *Clone) Tick(cycle uint64) {
	switch c.state {
	case cDone:
		return
	case cWait:
		if c.i >= len(c.events) {
			c.halted = true
			c.haltCycle = cycle
			c.state = cDone
			return
		}
		e := &c.events[c.i]
		if cycle < e.Assert {
			return
		}
		if cycle > e.Assert {
			c.Drift += cycle - e.Assert
		}
		c.req = ocp.Request{Cmd: e.Cmd, Addr: e.Addr, Burst: e.Burst, MasterID: c.id}
		if e.Cmd.IsWrite() {
			// Reuse the payload buffer: the interconnect copies it no later
			// than acceptance (see ocp.MasterPort).
			c.dataBuf = append(c.dataBuf[:0], e.Data...)
			c.req.Data = c.dataBuf
		}
		c.state = cIssue
		fallthrough
	case cIssue:
		if c.port.TryRequest(&c.req) {
			c.Transactions++
			if c.req.Cmd.IsRead() {
				c.state = cResp
			} else {
				c.i++
				c.state = cWait
			}
		}
	case cResp:
		if _, ok := c.port.TakeResponse(); ok {
			// Response data is ignored: cloning has no reactivity.
			c.i++
			c.state = cWait
		}
	}
}

// NextWake implements sim.Sleeper: between transactions the clone sleeps
// until the next event's recorded assert cycle; mid-handshake it must be
// ticked every cycle. The recorded schedule is fixed and responses are
// ignored, so the sleep is a strict "will not act before" promise and the
// event kernel may omit every tick until the assert cycle.
func (c *Clone) NextWake(now uint64) uint64 {
	switch c.state {
	case cDone:
		return sim.WakeNever
	case cWait:
		if c.i < len(c.events) {
			if at := c.events[c.i].Assert; at > now {
				return at
			}
		}
	case cIssue, cResp:
		// Blocked on the interconnect: sleep to the port's stall horizon
		// when it can bound one (see ocp.WakeHinter).
		if c.hinter != nil {
			if w := c.hinter.WakeHint(now); w > now {
				return w
			}
		}
	}
	return now
}

// TickWake implements sim.TickSleeper (Tick then NextWake in one dispatch).
func (c *Clone) TickWake(cycle uint64) uint64 {
	c.Tick(cycle)
	return c.NextWake(cycle + 1)
}

var _ sim.Device = (*Clone)(nil)
var _ sim.Sleeper = (*Clone)(nil)
var _ sim.TickSleeper = (*Clone)(nil)
