package replay

import (
	"testing"

	"noctg/internal/amba"
	"noctg/internal/mem"
	"noctg/internal/ocp"
	"noctg/internal/sim"
)

func rig(t *testing.T) (*sim.Engine, *amba.Bus, *mem.RAM) {
	t.Helper()
	e := sim.NewEngine(sim.Clock{})
	bus := amba.New(amba.Config{}, e.Cycle)
	ram := mem.NewRAM("ram", 0x1000, 0x1000, 1)
	if err := bus.MapSlave(ram, ram.Range()); err != nil {
		t.Fatal(err)
	}
	return e, bus, ram
}

func TestCloneReplaysAtRecordedTimes(t *testing.T) {
	e, bus, ram := rig(t)
	events := []ocp.Event{
		{Cmd: ocp.Write, Addr: 0x1004, Burst: 1, Assert: 10, Accept: 11, Data: []uint32{7}},
		{Cmd: ocp.Read, Addr: 0x1004, Burst: 1, Assert: 30, Accept: 31, Resp: 35,
			HasResp: true, Data: []uint32{7}},
	}
	c := NewClone(0, events, bus.NewMasterPort())
	e.Add(c)
	e.Add(bus)
	if _, err := e.Run(1000, func() bool { return c.Done() && bus.Idle() }); err != nil {
		t.Fatal(err)
	}
	if ram.PeekWord(0x1004) != 7 {
		t.Fatal("clone write lost")
	}
	if c.Drift != 0 {
		t.Fatalf("unexpected drift %d on the reference-like fabric", c.Drift)
	}
	if c.Transactions != 2 {
		t.Fatalf("transactions = %d", c.Transactions)
	}
}

func TestCloneDriftsOnSlowerFabric(t *testing.T) {
	// Same schedule, but a bus with huge wait states: commands cannot issue
	// on time and drift accumulates — the cloning failure mode of §3.
	e := sim.NewEngine(sim.Clock{})
	bus := amba.New(amba.Config{}, e.Cycle)
	ram := mem.NewRAM("ram", 0x1000, 0x1000, 40) // very slow slave
	if err := bus.MapSlave(ram, ram.Range()); err != nil {
		t.Fatal(err)
	}
	events := []ocp.Event{
		{Cmd: ocp.Read, Addr: 0x1000, Burst: 1, Assert: 0, Accept: 1, Resp: 5, HasResp: true, Data: []uint32{0}},
		{Cmd: ocp.Read, Addr: 0x1004, Burst: 1, Assert: 10, Accept: 11, Resp: 15, HasResp: true, Data: []uint32{0}},
		{Cmd: ocp.Read, Addr: 0x1008, Burst: 1, Assert: 20, Accept: 21, Resp: 25, HasResp: true, Data: []uint32{0}},
	}
	c := NewClone(0, events, bus.NewMasterPort())
	e.Add(c)
	e.Add(bus)
	if _, err := e.Run(10_000, func() bool { return c.Done() && bus.Idle() }); err != nil {
		t.Fatal(err)
	}
	if c.Drift == 0 {
		t.Fatal("clone should drift on a slower fabric")
	}
}

func TestCloneIgnoresResponses(t *testing.T) {
	// The clone must not react: a semaphore that stays held does not stall
	// the replay (it just issues the recorded number of polls).
	e := sim.NewEngine(sim.Clock{})
	bus := amba.New(amba.Config{}, e.Cycle)
	sem := mem.NewSemBank("sem", 0x9000, 1, 1)
	if err := bus.MapSlave(sem, sem.Range()); err != nil {
		t.Fatal(err)
	}
	// Lock the semaphore so every poll fails.
	sem.Perform(&ocp.Request{Cmd: ocp.Read, Addr: 0x9000, Burst: 1})
	events := []ocp.Event{
		{Cmd: ocp.Read, Addr: 0x9000, Burst: 1, Assert: 0, Accept: 1, Resp: 4, HasResp: true, Data: []uint32{1}},
		{Cmd: ocp.Write, Addr: 0x9000, Burst: 1, Assert: 10, Accept: 11, Data: []uint32{1}},
	}
	c := NewClone(0, events, bus.NewMasterPort())
	e.Add(c)
	e.Add(bus)
	if _, err := e.Run(1000, func() bool { return c.Done() && bus.Idle() }); err != nil {
		t.Fatal(err)
	}
	// It finished even though the acquire "failed" — no reactivity.
	if !c.Done() {
		t.Fatal("clone should complete regardless of semaphore state")
	}
}

func TestCloneEmpty(t *testing.T) {
	e, bus, _ := rig(t)
	c := NewClone(0, nil, bus.NewMasterPort())
	e.Add(c)
	e.Add(bus)
	if _, err := e.Run(100, c.Done); err != nil {
		t.Fatal(err)
	}
	if c.HaltCycle() == 0 && !c.Done() {
		t.Fatal("empty clone should halt immediately")
	}
	if c.Name() != "clone0" {
		t.Fatal("name")
	}
}
