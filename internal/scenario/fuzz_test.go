package scenario

import (
	"strings"
	"testing"
)

// FuzzParse: arbitrary bytes must never panic the scenario loader —
// malformed topology sizes, unknown patterns and hotspot weights past unit
// mass are errors, and every accepted scenario must survive validation and
// grid compilation.
func FuzzParse(f *testing.F) {
	f.Add(validSpecJSON())
	f.Add("[" + validSpecJSON() + "]")
	f.Add(`{"name":"h","fabric":"amba","width":2,"height":2,"pattern":"hotspot","hotspot":[0.5,0.6]}`)
	f.Add(`{"name":"x","fabric":"xpipes","topology":"ring","width":2,"height":2,"pattern":"uniform"}`)
	f.Add(`{"name":"x","fabric":"xpipes","width":-1,"height":1099511627776,"pattern":"uniform"}`)
	f.Add(`{"name":"x","fabric":"amba","width":3,"height":3,"pattern":"bitrev"}`)
	f.Add(`{"name":"x","fabric":"amba","width":4,"height":2,"pattern":"transpose","mean_gaps":[1e308,0,-5]}`)
	f.Add(`{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","hotspot":[0.1]}`)
	f.Add(`[{},{},{}]`)
	f.Add(`{"name":"x"`)
	// Arrival-axis corpus: valid MMPP, valid self-similar, and malformed
	// variants (typo'd key, conflicting load axis, out-of-range Hurst,
	// NaN-shaped numbers, oversized chains).
	f.Add(`{"name":"b","fabric":"amba","width":2,"height":2,"pattern":"uniform","arrival":{"process":"mmpp","gaps":[3,0],"dwells":[80,160]}}`)
	f.Add(`{"name":"b","fabric":"amba","width":2,"height":2,"pattern":"uniform","arrival":{"process":"mmpp","gaps":[4,16],"dwells":[100,200],"dwell_dist":"det"}}`)
	f.Add(`{"name":"s","fabric":"xpipes","width":2,"height":2,"pattern":"uniform","arrival":{"process":"selfsim","sources":8,"hurst":0.8,"on_mean":50,"off_mean":100,"peak_gap":4}}`)
	f.Add(`{"name":"p","fabric":"amba","width":2,"height":2,"pattern":"transpose","classes":[0.5,0.3,0.2]}`)
	f.Add(`{"name":"x","fabric":"amba","width":2,"height":2,"pattern":"uniform","arival":{"process":"mmpp"}}`)
	f.Add(`{"name":"x","fabric":"amba","width":2,"height":2,"pattern":"uniform","mean_gaps":[8],"arrival":{"process":"mmpp","gaps":[3,0],"dwells":[80,160]}}`)
	f.Add(`{"name":"x","fabric":"amba","width":2,"height":2,"pattern":"uniform","arrival":{"process":"selfsim","sources":8,"hurst":1.5,"on_mean":50,"off_mean":100,"peak_gap":4}}`)
	f.Add(`{"name":"x","fabric":"amba","width":2,"height":2,"pattern":"uniform","arrival":{"process":"mmpp","gaps":[1e308,0],"dwells":[80,1e-9]}}`)
	f.Add(`{"name":"x","fabric":"amba","width":2,"height":2,"pattern":"uniform","arrival":{"process":"mmpp","gaps":[1,2,3,4,5,6,7,8,9],"dwells":[1,2,3,4,5,6,7,8,9]}}`)
	f.Add(`{"name":"x","fabric":"amba","width":2,"height":2,"pattern":"uniform","classes":[1e308,1e308]}`)
	f.Fuzz(func(t *testing.T, src string) {
		specs, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		// Accepted scenarios must compile into runnable grids: the loader
		// promised they are valid.
		pts, err := Points(specs)
		if err != nil {
			t.Fatalf("accepted scenarios fail to expand: %v\n%s", err, src)
		}
		if len(pts) == 0 {
			t.Fatalf("accepted scenarios expand to no points:\n%s", src)
		}
	})
}
