package scenario

import (
	"fmt"

	"noctg/internal/sweep"
)

// Library returns the stock scenario set: every spatial pattern on a 2×2
// logical core grid (square and power-of-two, so all six patterns are
// legal) crossed with a ×pipes mesh and a ×pipes torus, plus an AMBA
// hotspot reference. The set is small enough to regenerate in seconds yet
// spans the full pattern × topology space, which makes it the corpus the
// golden-file harness and the scenario differential test lock down.
func Library() []Spec {
	patterns := []struct {
		pattern string
		hotspot []float64
	}{
		{pattern: "uniform"},
		{pattern: "transpose"},
		{pattern: "bitcomp"},
		{pattern: "bitrev"},
		{pattern: "hotspot", hotspot: []float64{0, 0, 0.6}},
		{pattern: "neighbor"},
	}
	var specs []Spec
	for _, topo := range []string{"mesh", "torus"} {
		for _, p := range patterns {
			specs = append(specs, Spec{
				Name:     fmt.Sprintf("%s-%s", p.pattern, topo),
				Fabric:   "xpipes",
				Topology: topo,
				Width:    2, Height: 2,
				MeshWidth: 4, MeshHeight: 3,
				Pattern: p.pattern,
				Hotspot: p.hotspot,
				Dist:    "poisson",
				// Two loads: a sparse one and one near saturation.
				MeanGaps: []float64{12, 4},
				Count:    300,
			})
		}
	}
	specs = append(specs, Spec{
		Name:   "hotspot-amba",
		Fabric: "amba",
		Width:  2, Height: 2,
		Pattern:  "hotspot",
		Hotspot:  []float64{0, 0, 0.6},
		Dist:     "poisson",
		MeanGaps: []float64{12, 4},
		Count:    300,
	})
	// The arrival-process band: an on/off MMPP burst aimed at a hotspot,
	// a self-similar uniform-random load, and a priority-tagged Poisson
	// load. Arrival scenarios carry no mean-gap axis (one point each);
	// the priority scenario keeps the classic two-load axis.
	specs = append(specs,
		Spec{
			Name:   "bursty-hotspot-mesh",
			Fabric: "xpipes",
			Width:  2, Height: 2,
			MeshWidth: 4, MeshHeight: 3,
			Pattern: "hotspot",
			Hotspot: []float64{0, 0, 0.6},
			Arrival: &sweep.Arrival{Process: sweep.ProcessMMPP,
				Gaps: []float64{3, 0}, Dwells: []float64{80, 160}},
			Count: 300,
		},
		Spec{
			Name:   "selfsim-uniform-mesh",
			Fabric: "xpipes",
			Width:  2, Height: 2,
			MeshWidth: 4, MeshHeight: 3,
			Pattern: "uniform",
			Arrival: &sweep.Arrival{Process: sweep.ProcessSelfSimilar,
				Sources: 8, Hurst: 0.8, OnMean: 50, OffMean: 100, PeakGap: 4},
			Count: 300,
		},
		Spec{
			Name:   "priority-transpose-mesh",
			Fabric: "xpipes",
			Width:  2, Height: 2,
			MeshWidth: 4, MeshHeight: 3,
			Pattern:  "transpose",
			Dist:     "poisson",
			Classes:  []float64{0.5, 0.3, 0.2},
			MeanGaps: []float64{12, 4},
			Count:    300,
		},
	)
	return specs
}

// ByName returns the library scenario with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Library() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: no library scenario %q", name)
}
