// Package scenario is the declarative layer over the sweep runner: a
// Spec names one synthetic NoC evaluation scenario — fabric, topology, a
// logical W×H core grid, a spatial traffic pattern, an injection
// distribution and the load/clock/seed axes — and compiles into sweep grid
// points that run on the existing parallel runner with the same
// deterministic JSON/CSV artifacts.
//
// Scenario files are JSON: either one Spec object or an array of them.
// Unknown fields, malformed grids, unknown patterns and over-unit hotspot
// weights are rejected at load time (never a panic — the fuzz target feeds
// the loader garbage), so a bad scenario fails before any engine is built.
//
// The Library holds the classic evaluation set — every spatial pattern
// crossed with the mesh and torus fabrics — as ready-to-run specs.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"noctg/internal/noc"
	"noctg/internal/stochastic"
	"noctg/internal/sweep"
)

// Spec is one declarative scenario. The zero values of the optional axes
// take the sweep defaults (one 5 ns clock, seed 1, mean gap 10).
type Spec struct {
	// Name labels the scenario in artifacts and reports.
	Name string `json:"name"`
	// Fabric is "amba" or "xpipes".
	Fabric string `json:"fabric"`
	// Topology selects the ×pipes link structure: "mesh" (default) or
	// "torus". It must be empty for the AMBA bus.
	Topology string `json:"topology,omitempty"`
	// Width and Height give the logical core grid; Width·Height masters
	// are generated and the spatial pattern is defined over this grid.
	Width  int `json:"width"`
	Height int `json:"height"`
	// MeshWidth / MeshHeight optionally pin the physical ×pipes grid
	// (zero auto-sizes it to the core count).
	MeshWidth  int `json:"mesh_width,omitempty"`
	MeshHeight int `json:"mesh_height,omitempty"`
	// BufferFlits is the router FIFO depth (default 4).
	BufferFlits int `json:"buffer_flits,omitempty"`
	// MemWaitStates is the intrinsic slave access time (default 1).
	MemWaitStates uint64 `json:"mem_wait_states,omitempty"`
	// Pattern is the spatial destination pattern: uniform, transpose,
	// bitcomp, bitrev, hotspot or neighbor.
	Pattern string `json:"pattern"`
	// Hotspot gives the per-node traffic fractions of the hotspot
	// pattern (index = logical node, sum <= 1).
	Hotspot []float64 `json:"hotspot,omitempty"`
	// AllowSelf permits a randomized pattern to target its own node.
	AllowSelf bool `json:"allow_self,omitempty"`
	// Dist is the injection (inter-arrival) distribution: uniform,
	// gaussian, poisson or bursty. Default poisson. Mutually exclusive
	// with Arrival.
	Dist string `json:"dist,omitempty"`
	// Arrival selects a bursty (MMPP) or self-similar arrival process
	// instead of Dist. The offered load then lives in the process
	// parameters, so the mean_gaps and curve_gaps load axes must be
	// empty.
	Arrival *sweep.Arrival `json:"arrival,omitempty"`
	// Classes are relative per-message-class injection weights (priority
	// traffic; see stochastic.Config.Classes).
	Classes []float64 `json:"classes,omitempty"`
	// MeanGaps is the load axis: one grid point per mean
	// inter-transaction gap in cycles (smaller gap = higher load).
	MeanGaps []float64 `json:"mean_gaps,omitempty"`
	// Count is the per-master transaction count (default 1000).
	Count int `json:"count,omitempty"`
	// ClockPeriodsNS and Seeds are the remaining sweep axes.
	ClockPeriodsNS []uint64 `json:"clock_periods_ns,omitempty"`
	Seeds          []int64  `json:"seeds,omitempty"`

	// Shards > 0 runs every ×pipes point of this scenario sharded across
	// that many engine goroutines (see sweep.Grid.Shards). Results are
	// identical for every count >= 1; a runner-level override (-shards)
	// takes precedence.
	Shards int `json:"shards,omitempty"`

	// Retry sets the per-point retry/deadline policy (transient failures
	// re-attempted with backoff, a wall-clock deadline per attempt; see
	// sweep.RetryPolicy). A runner-level policy (-retries) takes
	// precedence. Execution-only: it never changes results or journal
	// point identity.
	Retry *sweep.RetryPolicy `json:"retry,omitempty"`

	// Measurement methodology (all optional; zero values keep the classic
	// whole-run accounting). Warmup discards the lead-in transient,
	// EpochCycles/Epochs split measurement into fixed epochs, CITarget
	// switches to adaptive epochs (run until the relative 95% CI
	// half-width of the per-epoch request-latency means reaches the
	// target, capped by MaxEpochs), and Drain bounds the completion
	// window after measurement. See sweep.Measure for the full semantics.
	Warmup      uint64  `json:"warmup,omitempty"`
	EpochCycles uint64  `json:"epoch_cycles,omitempty"`
	Epochs      int     `json:"epochs,omitempty"`
	MaxEpochs   int     `json:"max_epochs,omitempty"`
	CITarget    float64 `json:"ci_target,omitempty"`
	Drain       uint64  `json:"drain,omitempty"`

	// CurveGaps is the optional load axis for load-latency curve runs
	// (tgsweep -curve); empty selects sweep.DefaultCurveGaps. Ignored by
	// plain scenario sweeps, which use MeanGaps.
	CurveGaps []float64 `json:"curve_gaps,omitempty"`
	// CurveMode selects the curve traversal (sweep.CurveModeUniform or
	// sweep.CurveModeAdaptive); empty means uniform. A CLI -curve-mode
	// flag overrides it for the whole run.
	CurveMode string `json:"curve_mode,omitempty"`
}

// withDefaults resolves the optional fields. An arrival-process scenario
// keeps Dist and MeanGaps empty: its load lives in the process parameters
// and defaulting either would silently contradict the declared model.
func (s Spec) withDefaults() Spec {
	if s.Arrival != nil {
		return s
	}
	if s.Dist == "" {
		s.Dist = "poisson"
	}
	if len(s.MeanGaps) == 0 {
		s.MeanGaps = []float64{10}
	}
	return s
}

// workloads expands the load axis into sweep workloads. An
// arrival-process scenario has no mean-gap axis and expands to exactly
// one workload.
func (s Spec) workloads() []sweep.Workload {
	s = s.withDefaults()
	base := sweep.Workload{
		Kind:      sweep.KindStochastic,
		Dist:      s.Dist,
		Cores:     s.Width * s.Height,
		Count:     s.Count,
		Pattern:   s.Pattern,
		PatternW:  s.Width,
		PatternH:  s.Height,
		Hotspot:   s.Hotspot,
		AllowSelf: s.AllowSelf,
		Arrival:   s.Arrival,
		Classes:   s.Classes,
	}
	if s.Arrival != nil {
		return []sweep.Workload{base}
	}
	ws := make([]sweep.Workload, len(s.MeanGaps))
	for i, gap := range s.MeanGaps {
		ws[i] = base
		ws[i].MeanGap = gap
	}
	return ws
}

// fabric builds the sweep fabric of the scenario.
func (s Spec) fabric() sweep.Fabric {
	return sweep.Fabric{
		Interconnect:  s.Fabric,
		Topology:      s.Topology,
		MeshWidth:     s.MeshWidth,
		MeshHeight:    s.MeshHeight,
		BufferFlits:   s.BufferFlits,
		MemWaitStates: s.MemWaitStates,
	}
}

// Measure compiles the scenario's measurement fields into a sweep
// measurement configuration, or nil when none is set (classic whole-run
// accounting).
func (s Spec) Measure() *sweep.Measure {
	if s.Warmup == 0 && s.EpochCycles == 0 && s.Epochs == 0 &&
		s.MaxEpochs == 0 && s.CITarget == 0 && s.Drain == 0 {
		return nil
	}
	return &sweep.Measure{
		WarmupCycles: s.Warmup,
		EpochCycles:  s.EpochCycles,
		Epochs:       s.Epochs,
		MaxEpochs:    s.MaxEpochs,
		CITarget:     s.CITarget,
		DrainCycles:  s.Drain,
	}
}

// Grid compiles the scenario into a validated sweep grid (loads × one
// fabric × clocks × seeds).
func (s Spec) Grid() (sweep.Grid, error) {
	if err := s.Validate(); err != nil {
		return sweep.Grid{}, err
	}
	g := sweep.Grid{
		Workloads:      s.workloads(),
		Fabrics:        []sweep.Fabric{s.fabric()},
		ClockPeriodsNS: s.ClockPeriodsNS,
		Seeds:          s.Seeds,
		Measure:        s.Measure(),
		Shards:         s.Shards,
		Retry:          s.Retry,
	}
	if err := g.Validate(); err != nil {
		return sweep.Grid{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return g, nil
}

// maxCount bounds the per-master transaction count a scenario file may
// request, so a hostile file cannot lock a sweep worker into a
// multi-billion-transaction run.
const maxCount = 10_000_000

// Validate checks the scenario without building anything. All structural
// pattern errors (non-square transpose, non-power-of-two bit patterns,
// hotspot weights past unit mass) surface here through the stochastic
// validator.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	d := s.withDefaults()
	if s.Width < 1 || s.Height < 1 {
		return fmt.Errorf("scenario %q: core grid %dx%d must be at least 1x1", s.Name, s.Width, s.Height)
	}
	if s.Width > stochastic.MaxGridDim || s.Height > stochastic.MaxGridDim {
		return fmt.Errorf("scenario %q: core grid %dx%d exceeds %dx%d",
			s.Name, s.Width, s.Height, stochastic.MaxGridDim, stochastic.MaxGridDim)
	}
	if s.MeshWidth > stochastic.MaxGridDim || s.MeshHeight > stochastic.MaxGridDim {
		return fmt.Errorf("scenario %q: mesh %dx%d exceeds %dx%d",
			s.Name, s.MeshWidth, s.MeshHeight, stochastic.MaxGridDim, stochastic.MaxGridDim)
	}
	if _, err := stochastic.ParsePattern(d.Pattern); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	switch s.Fabric {
	case sweep.FabricAMBA, sweep.FabricXPipes:
	default:
		return fmt.Errorf("scenario %q: unknown fabric %q", s.Name, s.Fabric)
	}
	if _, err := noc.ParseTopology(s.Topology); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if s.Fabric == sweep.FabricAMBA && s.Topology != "" {
		return fmt.Errorf("scenario %q: topology %q needs the xpipes fabric", s.Name, s.Topology)
	}
	if s.MeshWidth < 0 || s.MeshHeight < 0 {
		return fmt.Errorf("scenario %q: negative mesh dimensions %dx%d", s.Name, s.MeshWidth, s.MeshHeight)
	}
	if s.BufferFlits < 0 {
		return fmt.Errorf("scenario %q: negative buffer depth %d", s.Name, s.BufferFlits)
	}
	if s.Count < 0 || s.Count > maxCount {
		return fmt.Errorf("scenario %q: count %d outside [0, %d]", s.Name, s.Count, maxCount)
	}
	if s.Arrival != nil {
		if s.Dist != "" {
			return fmt.Errorf("scenario %q: arrival and dist are mutually exclusive", s.Name)
		}
		if len(s.MeanGaps) != 0 || len(s.CurveGaps) != 0 {
			return fmt.Errorf("scenario %q: arrival-process scenarios have no mean-gap load axis (the load lives in the process parameters)", s.Name)
		}
	}
	for i, gap := range d.MeanGaps {
		// The generator treats gap <= 0 as "use the default", which would
		// silently change the declared load; demand explicit sane loads.
		if gap <= 0 || gap > 1e9 || gap != gap {
			return fmt.Errorf("scenario %q: mean gap %d is %g, want (0, 1e9]", s.Name, i, gap)
		}
	}
	if m := s.Measure(); m != nil {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	for i, gap := range s.CurveGaps {
		if gap <= 0 || gap > 1e9 || gap != gap {
			return fmt.Errorf("scenario %q: curve gap %d is %g, want (0, 1e9]", s.Name, i, gap)
		}
	}
	if err := sweep.ValidateShards(s.Shards); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if err := s.Retry.Validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	for _, w := range d.workloads() {
		if err := (sweep.Grid{Workloads: []sweep.Workload{w},
			Fabrics: []sweep.Fabric{d.fabric()}}).Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	return nil
}

// DefaultCurveMeasure is the phased methodology a curve run uses when the
// scenario declares none: a warmup window, adaptive epochs to a ±5%
// request-latency confidence target.
var DefaultCurveMeasure = sweep.Measure{
	WarmupCycles: 1000,
	EpochCycles:  2000,
	CITarget:     0.05,
}

// Curve compiles the scenario into a load-latency curve specification:
// the scenario's traffic template swept over CurveGaps (or the stock
// axis) with phased measurement at every load level. Multi-valued clock
// and seed axes collapse to their first entry — a curve is one
// fabric/clock/seed trajectory by definition.
func (s Spec) Curve() (sweep.CurveSpec, error) {
	if err := s.Validate(); err != nil {
		return sweep.CurveSpec{}, err
	}
	if s.Arrival != nil {
		return sweep.CurveSpec{}, fmt.Errorf("scenario %q: curve runs sweep mean_gap, which arrival-process scenarios don't use", s.Name)
	}
	m := DefaultCurveMeasure
	if sm := s.Measure(); sm != nil {
		m = *sm
	}
	if m.EpochCycles == 0 {
		return sweep.CurveSpec{}, fmt.Errorf("scenario %q: curve runs need epoch_cycles (open-loop levels never complete)", s.Name)
	}
	cs := sweep.CurveSpec{
		Name:     s.Name,
		Workload: s.withDefaults().workloads()[0],
		Fabric:   s.fabric(),
		Gaps:     s.CurveGaps,
		Mode:     s.CurveMode,
		Measure:  m,
		Retry:    s.Retry,
	}
	if len(s.ClockPeriodsNS) > 0 {
		cs.ClockPeriodNS = s.ClockPeriodsNS[0]
	}
	if len(s.Seeds) > 0 {
		cs.Seed = s.Seeds[0]
	}
	if err := cs.Validate(); err != nil {
		return sweep.CurveSpec{}, err
	}
	return cs, nil
}

// Curveable reports whether the scenario can compile into a load-latency
// curve: arrival-process scenarios cannot, because their load lives in
// the process parameters rather than a mean-gap axis.
func (s Spec) Curveable() bool {
	return s.Arrival == nil
}

// Curves compiles a scenario list into curve specifications, in order.
// Arrival-process scenarios have no mean-gap load axis to sweep, so they
// are skipped rather than failing the whole list — a library run curves
// every scenario that can be curved.
func Curves(specs []Spec) ([]sweep.CurveSpec, error) {
	out := make([]sweep.CurveSpec, 0, len(specs))
	for i, s := range specs {
		if !s.Curveable() {
			continue
		}
		cs, err := s.Curve()
		if err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i, err)
		}
		out = append(out, cs)
	}
	return out, nil
}

// Points compiles a scenario list into one flat, sequentially numbered
// sweep point list, ready for sweep.Runner. Scenarios expand in order, so
// the artifact layout is deterministic.
func Points(specs []Spec) ([]sweep.Point, error) {
	var pts []sweep.Point
	for i, s := range specs {
		g, err := s.Grid()
		if err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i, err)
		}
		for _, p := range g.Expand() {
			p.ID = len(pts)
			pts = append(pts, p)
		}
	}
	return pts, nil
}

// maxFileSpecs bounds a scenario file's expansion.
const maxFileSpecs = 4096

// Parse reads a scenario file: one JSON Spec object or an array of them.
// Unknown fields are rejected, every spec is validated, and malformed
// input yields an error, never a panic.
func Parse(r io.Reader) ([]Spec, error) {
	data, err := io.ReadAll(io.LimitReader(r, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("scenario: reading: %w", err)
	}
	// Dispatch on the leading token rather than try-and-fallback, so an
	// object-shaped file with a typo reports the useful object-decode
	// error (e.g. the unknown field name), not an array-shape mismatch.
	var specs []Spec
	if trimmed := bytes.TrimLeft(data, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
		if specs, err = parseAs[[]Spec](data); err != nil {
			return nil, fmt.Errorf("scenario: parsing: %w", err)
		}
	} else {
		one, err := parseAs[Spec](data)
		if err != nil {
			return nil, fmt.Errorf("scenario: parsing: %w", err)
		}
		specs = []Spec{one}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("scenario: file holds no scenarios")
	}
	if len(specs) > maxFileSpecs {
		return nil, fmt.Errorf("scenario: %d scenarios exceed the %d limit", len(specs), maxFileSpecs)
	}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i, err)
		}
	}
	return specs, nil
}

// parseAs decodes strict JSON into T, rejecting unknown fields and
// trailing garbage.
func parseAs[T any](data []byte) (T, error) {
	var v T
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return v, err
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return v, fmt.Errorf("scenario: trailing data after JSON document")
	}
	return v, nil
}
