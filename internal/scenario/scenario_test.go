package scenario

import (
	"bytes"
	"strings"
	"testing"

	"noctg/internal/platform"
	"noctg/internal/sweep"
)

func validSpecJSON() string {
	return `{
		"name": "transpose-torus",
		"fabric": "xpipes",
		"topology": "torus",
		"width": 2, "height": 2,
		"pattern": "transpose",
		"dist": "poisson",
		"mean_gaps": [8],
		"count": 100
	}`
}

func TestParseSingleObjectAndArray(t *testing.T) {
	one, err := Parse(strings.NewReader(validSpecJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Name != "transpose-torus" {
		t.Fatalf("parsed %+v", one)
	}
	many, err := Parse(strings.NewReader("[" + validSpecJSON() + "," + validSpecJSON() + "]"))
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != 2 {
		t.Fatalf("parsed %d specs, want 2", len(many))
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"not json", "pattern: uniform"},
		{"empty array", "[]"},
		{"unknown field", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","bandwidth":9}`},
		{"unknown pattern", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"zipf"}`},
		{"unknown fabric", `{"name":"x","fabric":"crossbar","width":2,"height":1,"pattern":"uniform"}`},
		{"unknown topology", `{"name":"x","fabric":"xpipes","topology":"ring","width":2,"height":1,"pattern":"uniform"}`},
		{"amba topology", `{"name":"x","fabric":"amba","topology":"torus","width":2,"height":1,"pattern":"uniform"}`},
		{"zero grid", `{"name":"x","fabric":"amba","width":0,"height":0,"pattern":"uniform"}`},
		{"negative width", `{"name":"x","fabric":"amba","width":-4,"height":2,"pattern":"uniform"}`},
		{"huge grid", `{"name":"x","fabric":"amba","width":100000,"height":100000,"pattern":"uniform"}`},
		{"one node", `{"name":"x","fabric":"amba","width":1,"height":1,"pattern":"uniform"}`},
		{"transpose rectangular", `{"name":"x","fabric":"amba","width":4,"height":2,"pattern":"transpose"}`},
		{"bitcomp non-pow2", `{"name":"x","fabric":"amba","width":3,"height":2,"pattern":"bitcomp"}`},
		{"hotspot past unit", `{"name":"x","fabric":"amba","width":2,"height":2,"pattern":"hotspot","hotspot":[0.7,0.7]}`},
		{"hotspot negative", `{"name":"x","fabric":"amba","width":2,"height":2,"pattern":"hotspot","hotspot":[-1,0.5]}`},
		{"bad dist", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","dist":"cauchy"}`},
		{"zero gap", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","mean_gaps":[0]}`},
		{"negative gap", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","mean_gaps":[-3]}`},
		{"huge count", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","count":99999999999}`},
		{"missing name", `{"fabric":"amba","width":2,"height":1,"pattern":"uniform"}`},
		{"trailing garbage", validSpecJSON() + "tail"},
		// The strict decoder must catch every misspelled top-level key —
		// a typo'd arrival axis silently running the Poisson default
		// would invalidate a whole study.
		{"typo arival", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","arival":{"process":"mmpp"}}`},
		{"typo clases", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","clases":[1,2]}`},
		{"typo patern", `{"name":"x","fabric":"amba","width":2,"height":1,"patern":"uniform"}`},
		{"typo mean_gap", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","mean_gap":[8]}`},
		{"typo disto", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","disto":"poisson"}`},
		{"unknown arrival process", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","arrival":{"process":"weibull"}}`},
		{"unknown arrival subfield", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","arrival":{"process":"mmpp","gapz":[3,0]}}`},
		{"arrival with dist", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","dist":"poisson","arrival":{"process":"mmpp","gaps":[3,0],"dwells":[80,160]}}`},
		{"arrival with mean_gaps", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","mean_gaps":[8],"arrival":{"process":"mmpp","gaps":[3,0],"dwells":[80,160]}}`},
		{"arrival with curve_gaps", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","curve_gaps":[8],"arrival":{"process":"mmpp","gaps":[3,0],"dwells":[80,160]}}`},
		{"mmpp gap/dwell mismatch", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","arrival":{"process":"mmpp","gaps":[3,0],"dwells":[80]}}`},
		{"mmpp all silent", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","arrival":{"process":"mmpp","gaps":[0,0],"dwells":[80,160]}}`},
		{"mmpp bad dwell_dist", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","arrival":{"process":"mmpp","gaps":[3,0],"dwells":[80,160],"dwell_dist":"weibull"}}`},
		{"mmpp with selfsim fields", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","arrival":{"process":"mmpp","gaps":[3,0],"dwells":[80,160],"hurst":0.8}}`},
		{"selfsim hurst out of range", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","arrival":{"process":"selfsim","sources":8,"hurst":0.3,"on_mean":50,"off_mean":100,"peak_gap":4}}`},
		{"selfsim with mmpp fields", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","arrival":{"process":"selfsim","sources":8,"hurst":0.8,"on_mean":50,"off_mean":100,"peak_gap":4,"gaps":[3,0]}}`},
		{"negative class weight", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","classes":[1,-2]}`},
		{"zero-sum classes", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","classes":[0,0]}`},
	}
	for _, tc := range cases {
		if _, err := Parse(strings.NewReader(tc.src)); err == nil {
			t.Fatalf("%s: Parse accepted %q", tc.name, tc.src)
		}
	}
}

func TestLibraryCompiles(t *testing.T) {
	specs := Library()
	if len(specs) == 0 {
		t.Fatal("empty library")
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("library scenario %q invalid: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate library scenario name %q", s.Name)
		}
		seen[s.Name] = true
	}
	pts, err := Points(specs)
	if err != nil {
		t.Fatal(err)
	}
	// Classic scenarios expand one point per mean-gap load (two each);
	// arrival-process scenarios carry their load in the process
	// parameters and expand to exactly one.
	want := 0
	for _, s := range specs {
		if s.Arrival != nil {
			want++
		} else {
			want += 2
		}
	}
	if len(pts) != want {
		t.Fatalf("library expands to %d points, want %d", len(pts), want)
	}
	arrivals := 0
	for _, s := range specs {
		if s.Arrival != nil {
			arrivals++
		}
	}
	if arrivals < 2 {
		t.Fatalf("library has %d arrival-process scenarios, want >= 2", arrivals)
	}
	for i, p := range pts {
		if p.ID != i {
			t.Fatalf("point %d has ID %d; scenario expansion must number sequentially", i, p.ID)
		}
	}
	if _, err := ByName("transpose-torus"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName must reject unknown scenarios")
	}
}

// TestLibraryKernelDifferential is the scenario half of the equivalence
// gate: every library scenario — all six spatial patterns on mesh, torus
// and the AMBA bus — must produce byte-identical sweep artifacts under the
// strict and the idle-skipping kernel.
func TestLibraryKernelDifferential(t *testing.T) {
	pts, err := Points(Library())
	if err != nil {
		t.Fatal(err)
	}
	strict, err := sweep.Runner{Kernel: platform.KernelStrict}.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	skip, err := sweep.Runner{Kernel: platform.KernelSkip}.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range strict {
		if strict[i].Err != "" {
			t.Fatalf("strict point %d (%s @ %s): %s", i, strict[i].Workload, strict[i].Fabric, strict[i].Err)
		}
	}
	var js, jk, cs, ck bytes.Buffer
	if err := sweep.WriteJSON(&js, strict); err != nil {
		t.Fatal(err)
	}
	if err := sweep.WriteJSON(&jk, skip); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js.Bytes(), jk.Bytes()) {
		t.Fatal("scenario JSON artifacts differ between strict and skip kernels")
	}
	if err := sweep.WriteCSV(&cs, strict); err != nil {
		t.Fatal(err)
	}
	if err := sweep.WriteCSV(&ck, skip); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cs.Bytes(), ck.Bytes()) {
		t.Fatal("scenario CSV artifacts differ between strict and skip kernels")
	}
}

// TestSpecGridRoundTrip: a parsed scenario compiles into a grid whose
// labels carry the pattern and topology, so artifacts stay self-describing.
func TestSpecGridRoundTrip(t *testing.T) {
	specs, err := Parse(strings.NewReader(validSpecJSON()))
	if err != nil {
		t.Fatal(err)
	}
	g, err := specs[0].Grid()
	if err != nil {
		t.Fatal(err)
	}
	pts := g.Expand()
	if len(pts) != 1 {
		t.Fatalf("expanded %d points, want 1", len(pts))
	}
	label := pts[0].Label()
	for _, want := range []string{"transpose", "torus", "poisson"} {
		if !strings.Contains(label, want) {
			t.Fatalf("label %q does not mention %s", label, want)
		}
	}
}

func TestSpecMeasureCompilation(t *testing.T) {
	s := Spec{
		Name:   "phased",
		Fabric: "amba",
		Width:  2, Height: 2,
		Pattern:  "uniform",
		MeanGaps: []float64{8},
		Count:    100,
		Warmup:   500, EpochCycles: 1000, Epochs: 4, Drain: 200,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	m := s.Measure()
	if m == nil {
		t.Fatal("measurement fields must compile to a sweep.Measure")
	}
	want := sweep.Measure{WarmupCycles: 500, EpochCycles: 1000, Epochs: 4, DrainCycles: 200}
	if *m != want {
		t.Fatalf("measure = %+v, want %+v", *m, want)
	}
	g, err := s.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if g.Measure == nil || *g.Measure != want {
		t.Fatalf("grid measure = %+v", g.Measure)
	}
	for _, p := range g.Expand() {
		if p.Measure == nil || *p.Measure != want {
			t.Fatalf("point measure = %+v", p.Measure)
		}
	}
	// No measurement fields -> classic accounting.
	s.Warmup, s.EpochCycles, s.Epochs, s.Drain = 0, 0, 0, 0
	if s.Measure() != nil {
		t.Fatal("zero measurement fields must compile to nil")
	}
}

func TestSpecMeasureValidation(t *testing.T) {
	base := Spec{
		Name:   "phased",
		Fabric: "amba",
		Width:  2, Height: 2,
		Pattern:  "uniform",
		MeanGaps: []float64{8},
		Count:    100,
	}
	bad := base
	bad.CITarget = 0.05 // adaptive mode without epoch_cycles
	if err := bad.Validate(); err == nil {
		t.Fatal("ci_target without epoch_cycles must be rejected")
	}
	bad = base
	bad.CurveGaps = []float64{8, -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative curve gap must be rejected")
	}
	// Measurement fields survive the strict JSON loader.
	src := `{"name":"p","fabric":"amba","width":2,"height":2,"pattern":"uniform",
		"count":100,"warmup":500,"epoch_cycles":1000,"ci_target":0.05,
		"curve_gaps":[24,12,6]}`
	specs, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m := specs[0].Measure(); m == nil || m.CITarget != 0.05 {
		t.Fatalf("parsed measure = %+v", m)
	}
}

func TestSpecRetryCompilation(t *testing.T) {
	// The retry knob survives the strict JSON loader and threads into
	// both the grid and curve compilations.
	src := `{"name":"r","fabric":"amba","width":2,"height":2,"pattern":"uniform",
		"count":100,"epoch_cycles":1000,
		"retry":{"max_attempts":3,"backoff_ms":50,"deadline_ms":60000}}`
	specs, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := sweep.RetryPolicy{MaxAttempts: 3, BackoffMS: 50, DeadlineMS: 60000}
	g, err := specs[0].Grid()
	if err != nil {
		t.Fatal(err)
	}
	if g.Retry == nil || *g.Retry != want {
		t.Fatalf("grid retry = %+v, want %+v", g.Retry, want)
	}
	for _, p := range g.Expand() {
		if p.Retry == nil || *p.Retry != want {
			t.Fatalf("point retry = %+v", p.Retry)
		}
	}
	cs, err := specs[0].Curve()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Retry == nil || *cs.Retry != want {
		t.Fatalf("curve retry = %+v, want %+v", cs.Retry, want)
	}
	bad := specs[0]
	bad.Retry = &sweep.RetryPolicy{MaxAttempts: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative max_attempts must be rejected")
	}
}

func TestSpecCurveCompilation(t *testing.T) {
	s, err := ByName("hotspot-amba")
	if err != nil {
		t.Fatal(err)
	}
	cs, err := s.Curve()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Name != "hotspot-amba" || cs.Measure != DefaultCurveMeasure {
		t.Fatalf("curve spec = %+v", cs)
	}
	if len(cs.Gaps) != 0 {
		t.Fatalf("library scenario must inherit the stock gap axis, got %v", cs.Gaps)
	}
	s.CurveGaps = []float64{24, 6}
	s.ClockPeriodsNS = []uint64{10, 5}
	s.Seeds = []int64{7, 8}
	if cs, err = s.Curve(); err != nil {
		t.Fatal(err)
	}
	if len(cs.Gaps) != 2 || cs.ClockPeriodNS != 10 || cs.Seed != 7 {
		t.Fatalf("curve spec axes = %+v", cs)
	}
	// Every classic library scenario must compile to a runnable curve;
	// arrival-process scenarios have no mean-gap axis and must refuse
	// with a clear error instead.
	for _, lib := range Library() {
		_, err := lib.Curve()
		if lib.Arrival != nil {
			if err == nil || !strings.Contains(err.Error(), "arrival") {
				t.Fatalf("%s: arrival scenario curve error = %v", lib.Name, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", lib.Name, err)
		}
	}
}

// TestLibraryCurveSaturation is the acceptance gate for the load-latency
// runner: representative library scenarios (both fabrics, mesh and torus)
// must produce curves with a detected saturation point.
func TestLibraryCurveSaturation(t *testing.T) {
	names := []string{"hotspot-amba", "hotspot-mesh", "uniform-torus"}
	var specs []Spec
	for _, n := range names {
		s, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		// Trim the light-load tail to keep the test fast; the knee sits at
		// the heavy end of the axis.
		s.CurveGaps = []float64{24, 8, 4, 2, 1, 0.5}
		specs = append(specs, s)
	}
	css, err := Curves(specs)
	if err != nil {
		t.Fatal(err)
	}
	curves, err := sweep.Runner{}.RunCurves(css)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range curves {
		for _, p := range c.Points {
			if p.Err != "" {
				t.Fatalf("%s gap %g: %s", c.Name, p.MeanGap, p.Err)
			}
		}
		if c.Saturation == nil {
			t.Errorf("%s: no saturation point detected", c.Name)
			continue
		}
		sat := c.Saturation
		if sat.Index <= 0 || sat.Index >= len(c.Points) || sat.ThroughputTPK <= 0 {
			t.Errorf("%s: implausible saturation %+v", c.Name, sat)
		}
		// Latency must be higher at the saturation point than at light load.
		if c.Points[sat.Index].LatencyMean <= c.Points[0].LatencyMean {
			t.Errorf("%s: saturation latency %g not above zero-load %g",
				c.Name, c.Points[sat.Index].LatencyMean, c.Points[0].LatencyMean)
		}
	}
}
