package scenario

import (
	"bytes"
	"strings"
	"testing"

	"noctg/internal/platform"
	"noctg/internal/sweep"
)

func validSpecJSON() string {
	return `{
		"name": "transpose-torus",
		"fabric": "xpipes",
		"topology": "torus",
		"width": 2, "height": 2,
		"pattern": "transpose",
		"dist": "poisson",
		"mean_gaps": [8],
		"count": 100
	}`
}

func TestParseSingleObjectAndArray(t *testing.T) {
	one, err := Parse(strings.NewReader(validSpecJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Name != "transpose-torus" {
		t.Fatalf("parsed %+v", one)
	}
	many, err := Parse(strings.NewReader("[" + validSpecJSON() + "," + validSpecJSON() + "]"))
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != 2 {
		t.Fatalf("parsed %d specs, want 2", len(many))
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"not json", "pattern: uniform"},
		{"empty array", "[]"},
		{"unknown field", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","bandwidth":9}`},
		{"unknown pattern", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"zipf"}`},
		{"unknown fabric", `{"name":"x","fabric":"crossbar","width":2,"height":1,"pattern":"uniform"}`},
		{"unknown topology", `{"name":"x","fabric":"xpipes","topology":"ring","width":2,"height":1,"pattern":"uniform"}`},
		{"amba topology", `{"name":"x","fabric":"amba","topology":"torus","width":2,"height":1,"pattern":"uniform"}`},
		{"zero grid", `{"name":"x","fabric":"amba","width":0,"height":0,"pattern":"uniform"}`},
		{"negative width", `{"name":"x","fabric":"amba","width":-4,"height":2,"pattern":"uniform"}`},
		{"huge grid", `{"name":"x","fabric":"amba","width":100000,"height":100000,"pattern":"uniform"}`},
		{"one node", `{"name":"x","fabric":"amba","width":1,"height":1,"pattern":"uniform"}`},
		{"transpose rectangular", `{"name":"x","fabric":"amba","width":4,"height":2,"pattern":"transpose"}`},
		{"bitcomp non-pow2", `{"name":"x","fabric":"amba","width":3,"height":2,"pattern":"bitcomp"}`},
		{"hotspot past unit", `{"name":"x","fabric":"amba","width":2,"height":2,"pattern":"hotspot","hotspot":[0.7,0.7]}`},
		{"hotspot negative", `{"name":"x","fabric":"amba","width":2,"height":2,"pattern":"hotspot","hotspot":[-1,0.5]}`},
		{"bad dist", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","dist":"cauchy"}`},
		{"zero gap", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","mean_gaps":[0]}`},
		{"negative gap", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","mean_gaps":[-3]}`},
		{"huge count", `{"name":"x","fabric":"amba","width":2,"height":1,"pattern":"uniform","count":99999999999}`},
		{"missing name", `{"fabric":"amba","width":2,"height":1,"pattern":"uniform"}`},
		{"trailing garbage", validSpecJSON() + "tail"},
	}
	for _, tc := range cases {
		if _, err := Parse(strings.NewReader(tc.src)); err == nil {
			t.Fatalf("%s: Parse accepted %q", tc.name, tc.src)
		}
	}
}

func TestLibraryCompiles(t *testing.T) {
	specs := Library()
	if len(specs) == 0 {
		t.Fatal("empty library")
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("library scenario %q invalid: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate library scenario name %q", s.Name)
		}
		seen[s.Name] = true
	}
	pts, err := Points(specs)
	if err != nil {
		t.Fatal(err)
	}
	// 12 xpipes pattern×topology scenarios + 1 amba, 2 loads each.
	if want := len(specs) * 2; len(pts) != want {
		t.Fatalf("library expands to %d points, want %d", len(pts), want)
	}
	for i, p := range pts {
		if p.ID != i {
			t.Fatalf("point %d has ID %d; scenario expansion must number sequentially", i, p.ID)
		}
	}
	if _, err := ByName("transpose-torus"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName must reject unknown scenarios")
	}
}

// TestLibraryKernelDifferential is the scenario half of the equivalence
// gate: every library scenario — all six spatial patterns on mesh, torus
// and the AMBA bus — must produce byte-identical sweep artifacts under the
// strict and the idle-skipping kernel.
func TestLibraryKernelDifferential(t *testing.T) {
	pts, err := Points(Library())
	if err != nil {
		t.Fatal(err)
	}
	strict, err := sweep.Runner{Kernel: platform.KernelStrict}.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	skip, err := sweep.Runner{Kernel: platform.KernelSkip}.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range strict {
		if strict[i].Err != "" {
			t.Fatalf("strict point %d (%s @ %s): %s", i, strict[i].Workload, strict[i].Fabric, strict[i].Err)
		}
	}
	var js, jk, cs, ck bytes.Buffer
	if err := sweep.WriteJSON(&js, strict); err != nil {
		t.Fatal(err)
	}
	if err := sweep.WriteJSON(&jk, skip); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js.Bytes(), jk.Bytes()) {
		t.Fatal("scenario JSON artifacts differ between strict and skip kernels")
	}
	if err := sweep.WriteCSV(&cs, strict); err != nil {
		t.Fatal(err)
	}
	if err := sweep.WriteCSV(&ck, skip); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cs.Bytes(), ck.Bytes()) {
		t.Fatal("scenario CSV artifacts differ between strict and skip kernels")
	}
}

// TestSpecGridRoundTrip: a parsed scenario compiles into a grid whose
// labels carry the pattern and topology, so artifacts stay self-describing.
func TestSpecGridRoundTrip(t *testing.T) {
	specs, err := Parse(strings.NewReader(validSpecJSON()))
	if err != nil {
		t.Fatal(err)
	}
	g, err := specs[0].Grid()
	if err != nil {
		t.Fatal(err)
	}
	pts := g.Expand()
	if len(pts) != 1 {
		t.Fatalf("expanded %d points, want 1", len(pts))
	}
	label := pts[0].Label()
	for _, want := range []string{"transpose", "torus", "poisson"} {
		if !strings.Contains(label, want) {
			t.Fatalf("label %q does not mention %s", label, want)
		}
	}
}
