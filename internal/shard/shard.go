// Package shard runs one simulation across multiple OS threads by spatial
// decomposition: the platform is partitioned into shards (a contiguous
// fabric region plus the masters attached to it), each shard advances on
// its own sim.Engine/goroutine, and the shards synchronise with
// conservative time windows.
//
// The protocol is SPMD. Every shard executes the same round loop over the
// same shared, barrier-published data (per-shard horizons and completion
// flags), so every shard computes identical window bounds and identical
// stop decisions without a coordinator:
//
//	round:  W  = min over shards of the published wake horizon
//	        T  = min(max(W, c+1), segment target)
//	        RunTo(T)            — compute, exporting cut flits into rings
//	        barrier
//	        Exchange + publish  — import rings, refresh credits, publish
//	                              horizon and local completion at T
//	        barrier
//
// Whenever any shard is active in the current cycle its horizon equals the
// current cycle, every window degenerates to a single cycle, and boundary
// exchange delivers each crossing flit exactly one cycle after it was
// pushed — the same timing an uncut link provides under the fabric's
// conservative flow control. Multi-cycle windows only ever span globally
// quiescent stretches, which carry no cross-shard traffic at all. Together
// with the fabric's cycle-start-occupancy discipline (see internal/noc)
// this makes the simulated state a pure function of the partition-invariant
// round schedule: any shard count, including one, computes byte-identical
// results. The sweep harness and CI pin exactly that equivalence.
//
// Completion is likewise decided on shared data only: each shard publishes
// its local predicate at every boundary, and a round starts by checking the
// conjunction, so all shards stop on the same cycle for any shard count and
// any host schedule.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"noctg/internal/sim"
)

// Exchanger is one shard's window-boundary hook: Exchange imports the
// flits other shards exported during the closing window (returning how
// many), and Wake re-arms the shard's fabric device in its engine's
// schedule after an import. noc.Region implements it.
type Exchanger interface {
	Exchange() int
	Wake()
}

// Shard is one unit of parallelism: an engine holding the shard's devices,
// the boundary exchanger, and the shard-local completion predicate (all
// local masters done and the local region drained). Done must read only
// shard-local state — it is evaluated concurrently with other shards'
// predicates.
type Shard struct {
	Engine    *sim.Engine
	Exchanger Exchanger
	Done      func() bool
}

// slot is one shard's barrier-published state. Slots are padded apart so
// the per-round horizon stores of neighbouring shards do not false-share a
// cache line.
type slot struct {
	horizon uint64 // engine wake horizon as of the last boundary
	done    bool   // local completion as of the last boundary
	sense   uint32 // this shard's private barrier sense
	_       [48]byte
}

// poisonBox carries the first panic out of a worker so every participant —
// and the caller — can re-raise it instead of deadlocking at a barrier.
type poisonBox struct{ v any }

// Runner synchronises a set of shards. All methods must be called from a
// single goroutine (the platform's run loop); the Runner spawns and joins
// one worker goroutine per extra shard for each segment it executes.
type Runner struct {
	shards []*Shard
	wins   []*sim.WindowedRun
	slots  []slot
	wg     sync.WaitGroup

	// workers[i] drives shard i+1 through one segment, reading the bound
	// from target. The closures are built once in New: spawning a niladic
	// func value allocates nothing, so steady-state segments stay off the
	// heap entirely. target is a plain field — it is written before the
	// spawns and the goroutine start/join edges order it.
	workers []func()
	target  uint64

	count  atomic.Int32
	sense  atomic.Uint32
	poison atomic.Pointer[poisonBox]
}

// New builds a runner over the shards. The shards' engines must be fully
// populated: New opens a persistent windowed session (sim.BeginWindowed)
// on each one, which snapshots the device set.
func New(shards []*Shard) *Runner {
	if len(shards) == 0 {
		panic("shard: New with no shards")
	}
	r := &Runner{
		shards: shards,
		wins:   make([]*sim.WindowedRun, len(shards)),
		slots:  make([]slot, len(shards)),
	}
	for i, sh := range shards {
		r.wins[i] = sh.Engine.BeginWindowed()
	}
	r.workers = make([]func(), len(shards)-1)
	for i := range r.workers {
		s := i + 1
		r.workers[i] = func() { r.segWorker(s) }
	}
	return r
}

// Shards returns the shard count.
func (r *Runner) Shards() int { return len(r.shards) }

// Cycle returns the common cycle all shards have advanced to. Valid
// between segments (all engines agree there).
func (r *Runner) Cycle() uint64 { return r.shards[0].Engine.Cycle() }

// barrierSpin bounds the busy-wait before yielding the thread. On hosts
// with fewer cores than shards a waiting spinner may be occupying the very
// CPU the straggler needs, so the barrier must always fall back to the
// scheduler.
const barrierSpin = 128

// await is a sense-reversing barrier across all shards. The atomic
// count/sense pair orders every write made before the barrier ahead of
// every read after it, which is the only synchronisation the cut-link
// rings and credit counters need. A poisoned runner (a panicking peer)
// re-raises inside the wait so no shard spins forever.
func (r *Runner) await(s int) {
	ns := r.slots[s].sense ^ 1
	r.slots[s].sense = ns
	if int(r.count.Add(1)) == len(r.shards) {
		r.count.Store(0)
		r.sense.Store(ns)
		return
	}
	for spin := 0; r.sense.Load() != ns; spin++ {
		if p := r.poison.Load(); p != nil {
			panic(p.v)
		}
		if spin > barrierSpin {
			runtime.Gosched()
		}
	}
}

func (r *Runner) poisonWith(v any) {
	r.poison.CompareAndSwap(nil, &poisonBox{v: v})
}

// allDone reports the published global completion predicate. Every shard
// evaluates it over the same barrier-published flags, so all reach the
// same verdict in the same round.
func (r *Runner) allDone() bool {
	for i := range r.slots {
		if !r.slots[i].done {
			return false
		}
	}
	return true
}

// minHorizon is the conservative global window bound: no shard acts — and
// in particular exports nothing — before it.
func (r *Runner) minHorizon() uint64 {
	w := r.slots[0].horizon
	for i := 1; i < len(r.slots); i++ {
		if h := r.slots[i].horizon; h < w {
			w = h
		}
	}
	return w
}

// shardLoop is the SPMD body every shard runs for one segment: publish the
// entry state, then rounds of compute / exchange until the shared stop
// condition (global completion or the segment target) fires — identically
// on every shard.
func (r *Runner) shardLoop(s int, target uint64) {
	sh := r.shards[s]
	win := r.wins[s]
	sl := &r.slots[s]
	c := sh.Engine.Cycle()
	sl.horizon = win.NextWake()
	sl.done = sh.Done()
	r.await(s)
	for {
		if r.allDone() || c >= target {
			return
		}
		t := c + 1
		if w := r.minHorizon(); w > t {
			t = w
		}
		if t > target {
			t = target
		}
		win.RunTo(t)
		r.await(s)
		if sh.Exchanger != nil && sh.Exchanger.Exchange() > 0 {
			sh.Exchanger.Wake()
		}
		sl.horizon = win.NextWake()
		sl.done = sh.Done()
		r.await(s)
		c = t
	}
}

// segWorker drives one non-caller shard through a segment, converting a
// device panic into runner poison instead of killing the process.
func (r *Runner) segWorker(s int) {
	defer r.segDone()
	r.shardLoop(s, r.target)
}

func (r *Runner) segDone() {
	if v := recover(); v != nil {
		r.poisonWith(v)
	}
	r.wg.Done()
}

// runShard0 runs the caller's shard, poisoning the runner before unwinding
// a panic so the workers drain out of their barriers and can be joined.
func (r *Runner) runShard0(target uint64) {
	defer func() {
		if v := recover(); v != nil {
			r.poisonWith(v)
			r.wg.Wait()
			panic(v)
		}
	}()
	r.shardLoop(0, target)
}

// runSegment advances all shards from their common cycle by at most window
// cycles, stopping early when the global completion predicate holds at a
// boundary. It returns the executed cycle count and the predicate's final
// value. Goroutines are spawned per segment and fully joined before it
// returns; a previously poisoned runner re-raises immediately.
func (r *Runner) runSegment(window uint64) (uint64, bool) {
	if p := r.poison.Load(); p != nil {
		panic(p.v)
	}
	start := r.shards[0].Engine.Cycle()
	target := start + window
	r.target = target
	for _, w := range r.workers {
		r.wg.Add(1)
		go w()
	}
	r.runShard0(target)
	r.wg.Wait()
	return r.shards[0].Engine.Cycle() - start, r.allDone()
}

// Run simulates until the completion predicate holds or maxCycles elapse,
// mirroring sim.Engine.RunEvery's contract (completion is checked at every
// window boundary; the error wraps sim.ErrMaxCycles on budget exhaustion).
func (r *Runner) Run(maxCycles uint64) error {
	if _, done := r.runSegment(maxCycles); !done {
		return fmt.Errorf("%w (%d cycles)", sim.ErrMaxCycles, maxCycles)
	}
	return nil
}

// Advance runs at most cycles cycles without regard for completion (the
// segment still stops early if the workload finishes) and returns the
// executed count. It is the benchmarking hook: steady state allocates
// nothing, so throughput measurements see only the simulation itself.
func (r *Runner) Advance(cycles uint64) uint64 {
	n, _ := r.runSegment(cycles)
	return n
}

// RunPhased executes the warmup → measure → drain methodology across the
// shards with sim.RunPhased's exact semantics: maxCycles budgets warmup
// plus measurement, Drain has its own budget, truncation of the
// measurement plan is an error wrapping sim.ErrMaxCycles, an incomplete
// drain is not. Phases.Stride is ignored — the sharded completion check
// runs at every window boundary.
func (r *Runner) RunPhased(p sim.Phases, maxCycles uint64) (sim.PhasedResult, error) {
	var res sim.PhasedResult
	remaining := maxCycles

	if p.Warmup > 0 {
		win := min(p.Warmup, remaining)
		n, done := r.runSegment(win)
		res.WarmupCycles = n
		remaining -= n
		if done {
			res.Completed = true
			res.CompletedIn = sim.PhaseWarmup
		} else if win < p.Warmup {
			return res, fmt.Errorf("shard: phased warmup truncated: %w (%d cycles)", sim.ErrMaxCycles, maxCycles)
		}
	}
	if p.AfterWarmup != nil {
		p.AfterWarmup(r.Cycle())
	}
	if res.Completed {
		return res, nil
	}

	maxEpochs := p.MaxEpochs
	if maxEpochs <= 0 && p.Epoch == 0 {
		maxEpochs = 1
	}
	for epoch := 0; maxEpochs <= 0 || epoch < maxEpochs; epoch++ {
		if remaining == 0 {
			return res, fmt.Errorf("shard: phased measurement truncated after %d epochs: %w (%d cycles)",
				res.Epochs, sim.ErrMaxCycles, maxCycles)
		}
		win := remaining
		if p.Epoch > 0 && p.Epoch < win {
			win = p.Epoch
		}
		start := r.Cycle()
		n, finished := r.runSegment(win)
		remaining -= n
		res.MeasureCycles += n
		res.Epochs++
		more := true
		if p.AfterEpoch != nil {
			more = p.AfterEpoch(epoch, start, r.Cycle())
		}
		if finished {
			res.Completed = true
			res.CompletedIn = sim.PhaseMeasure
			return res, nil
		}
		if !more {
			break
		}
		if p.Epoch == 0 || win < p.Epoch {
			// An exhausted open epoch, or an epoch the budget cut short with
			// more epochs wanted: the measurement plan was truncated.
			return res, fmt.Errorf("shard: phased measurement truncated after %d epochs: %w (%d cycles)",
				res.Epochs, sim.ErrMaxCycles, maxCycles)
		}
	}

	if p.Drain > 0 {
		n, finished := r.runSegment(p.Drain)
		res.DrainCycles = n
		if finished {
			res.Completed = true
			res.CompletedIn = sim.PhaseDrain
		}
	}
	return res, nil
}
