// Package shard runs one simulation across multiple OS threads by spatial
// decomposition: the platform is partitioned into shards (a contiguous
// fabric region plus the masters attached to it), each shard advances on
// its own sim.Engine/goroutine, and the shards synchronise with
// conservative time windows.
//
// The protocol is SPMD. Every shard executes the same round loop over the
// same shared, barrier-published data (per-shard horizons and completion
// flags), so every shard computes identical window bounds and identical
// stop decisions without a coordinator:
//
//	round:  W  = min over shards of the published wake horizon
//	        T  = min(max(W, c+1), segment target)
//	        RunTo(T)            — compute, exporting cut flits into rings
//	        barrier
//	        Exchange + publish  — import rings, refresh credits, publish
//	                              horizon and local completion at T
//	        barrier
//
// Whenever any shard is active in the current cycle its horizon equals the
// current cycle, every window degenerates to a single cycle, and boundary
// exchange delivers each crossing flit exactly one cycle after it was
// pushed — the same timing an uncut link provides under the fabric's
// conservative flow control. Multi-cycle windows only ever span globally
// quiescent stretches, which carry no cross-shard traffic at all. Together
// with the fabric's cycle-start-occupancy discipline (see internal/noc)
// this makes the simulated state a pure function of the partition-invariant
// round schedule: any shard count, including one, computes byte-identical
// results. The sweep harness and CI pin exactly that equivalence.
//
// Completion is likewise decided on shared data only: each shard publishes
// its local predicate at every boundary, and a round starts by checking the
// conjunction, so all shards stop on the same cycle for any shard count and
// any host schedule.
//
// # Guarding
//
// EnableGuard arms the runner's watchdogs (see internal/guard). The guard
// verdicts ride the same SPMD discipline as completion: every shard sums
// the barrier-published progress/live counters and reaches the identical
// deadlock verdict in the identical round, and shard 0 publishes the
// wall-clock budget verdict in its slot, so all shards stop together
// without a new synchronisation mechanism — which is also what keeps
// fault-free guarded runs byte-identical to unguarded ones for every shard
// count. On a guarded runner a device panic, a barrier stall or an
// invariant break surfaces as a typed *guard.Violation error (with shard
// context and a diagnostic dump) instead of a panic or a hang, and the
// runner latches dead: every later call returns the same violation. An
// unguarded runner keeps the legacy behaviour of re-raising device panics.
package shard

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"noctg/internal/guard"
	"noctg/internal/sim"
)

// Exchanger is one shard's window-boundary hook: Exchange imports the
// flits other shards exported during the closing window (returning how
// many), and Wake re-arms the shard's fabric device in its engine's
// schedule after an import. noc.Region implements it.
type Exchanger interface {
	Exchange() int
	Wake()
}

// Shard is one unit of parallelism: an engine holding the shard's devices,
// the boundary exchanger, and the shard-local completion predicate (all
// local masters done and the local region drained). Done must read only
// shard-local state — it is evaluated concurrently with other shards'
// predicates. Progress and Live are the optional guard probes (a monotone
// local retirement count and the local pool's in-flight contribution);
// like Done they run on the shard's own goroutine and must read only
// shard-local state.
type Shard struct {
	Engine    *sim.Engine
	Exchanger Exchanger
	Done      func() bool
	Progress  func() uint64
	Live      func() int
}

// slot is one shard's barrier-published state. Slots are padded apart so
// the per-round stores of neighbouring shards do not false-share a cache
// line.
type slot struct {
	horizon uint64 // engine wake horizon as of the last boundary
	// progress and live are the shard's guard probes as of the last
	// boundary (zero when unguarded or unprobed).
	progress uint64
	live     int64
	sense    uint32 // this shard's private barrier sense
	// btrip is shard 0's published wall-clock budget verdict: every shard
	// reads slots[0].btrip after the barrier, so the whole fleet trips in
	// the same round.
	btrip uint32
	done  bool // local completion as of the last boundary
	_     [31]byte
}

// poisonBox carries the first panic out of a worker — with the shard that
// raised it and its stack — so every participant and the caller can
// re-raise (unguarded) or convert it to a Violation (guarded) instead of
// deadlocking at a barrier.
type poisonBox struct {
	v     any
	shard int
	stack []byte
}

// gshard is one shard's private deadlock-horizon tracker. Every shard
// updates its own from the identical published sums, so the verdicts stay
// SPMD; the padding keeps the per-round writes from false sharing.
type gshard struct {
	lastProgress uint64
	lastCycle    uint64
	haveBase     bool
	_            [40]byte
}

// guardState holds the runner's armed watchdogs.
type guardState struct {
	cfg  guard.Config
	scan func() *guard.Violation
	diag func() *guard.Diagnostic

	// start/rounds/tripped drive the wall-clock budget; they are touched
	// only by shard 0 (the caller's goroutine).
	start   time.Time
	rounds  uint32
	tripped bool

	states []gshard
}

// budgetRoundMask amortises the budget's time.Now() to one syscall per 64
// rounds.
const budgetRoundMask = 63

// Runner synchronises a set of shards. All methods must be called from a
// single goroutine (the platform's run loop); the Runner spawns and joins
// one worker goroutine per extra shard for each segment it executes.
type Runner struct {
	shards []*Shard
	wins   []*sim.WindowedRun
	slots  []slot
	wg     sync.WaitGroup

	// workers[i] drives shard i+1 through one segment, reading the bound
	// from target. The closures are built once in New: spawning a niladic
	// func value allocates nothing, so steady-state segments stay off the
	// heap entirely. target is a plain field — it is written before the
	// spawns and the goroutine start/join edges order it.
	workers []func()
	target  uint64

	count  atomic.Int32
	sense  atomic.Uint32
	poison atomic.Pointer[poisonBox]

	// liveWorkers counts segment goroutines that have not finished segDone
	// yet; the guarded bounded join spins on it instead of allocating a
	// channel and timer per segment.
	liveWorkers atomic.Int32

	// guard is nil until EnableGuard. gv is shard 0's loop-top verdict for
	// the current segment (written on the caller's goroutine only); dead
	// latches the first violation so every later call fails fast instead
	// of re-entering a broken barrier protocol.
	guard *guardState
	gv    *guard.Violation
	dead  error

	// stalls are injected shard-stall faults (test stimulus for the
	// barrier watchdog); stallArmed[i] is written only by the goroutine of
	// the shard stalls[i] targets.
	stalls     []guard.ShardStall
	stallArmed []bool
}

// New builds a runner over the shards. The shards' engines must be fully
// populated: New opens a persistent windowed session (sim.BeginWindowed)
// on each one, which snapshots the device set.
func New(shards []*Shard) *Runner {
	if len(shards) == 0 {
		panic("shard: New with no shards")
	}
	r := &Runner{
		shards: shards,
		wins:   make([]*sim.WindowedRun, len(shards)),
		slots:  make([]slot, len(shards)),
	}
	for i, sh := range shards {
		r.wins[i] = sh.Engine.BeginWindowed()
	}
	r.workers = make([]func(), len(shards)-1)
	for i := range r.workers {
		s := i + 1
		r.workers[i] = func() { r.segWorker(s) }
	}
	return r
}

// Shards returns the shard count.
func (r *Runner) Shards() int { return len(r.shards) }

// Cycle returns the common cycle all shards have advanced to. Valid
// between segments (all engines agree there).
func (r *Runner) Cycle() uint64 { return r.shards[0].Engine.Cycle() }

// EnableGuard arms the runner's watchdogs: the deadlock horizon and run
// budget from cfg (checked at every round boundary), the barrier-stall
// bound on barrier waits, and — when cfg.Conservation is set and scan is
// non-nil — an invariant scan at every segment end. diag, when non-nil,
// captures the diagnostic dump attached to violations (the runner appends
// per-shard window state). Call before the first segment.
func (r *Runner) EnableGuard(cfg guard.Config, scan func() *guard.Violation, diag func() *guard.Diagnostic) {
	r.guard = &guardState{cfg: cfg, scan: scan, diag: diag, states: make([]gshard, len(r.shards))}
}

// InjectStalls arms shard-stall faults (guard.FaultPlan test stimulus):
// the targeted shard sleeps Wall of host time at its first round boundary
// at or after AtCycle, which the peers' barrier-stall watchdog must catch.
func (r *Runner) InjectStalls(stalls []guard.ShardStall) error {
	for _, f := range stalls {
		if f.Shard < 0 || f.Shard >= len(r.shards) {
			return fmt.Errorf("shard: stall fault targets shard %d of a %d-shard runner", f.Shard, len(r.shards))
		}
		if f.Wall <= 0 {
			return fmt.Errorf("shard: stall fault on shard %d needs a positive wall duration", f.Shard)
		}
	}
	r.stalls = append(r.stalls, stalls...)
	r.stallArmed = make([]bool, len(r.stalls))
	return nil
}

// barrierSpin bounds the busy-wait before yielding the thread. On hosts
// with fewer cores than shards a waiting spinner may be occupying the very
// CPU the straggler needs, so the barrier must always fall back to the
// scheduler.
const barrierSpin = 128

// await is a sense-reversing barrier across all shards. The atomic
// count/sense pair orders every write made before the barrier ahead of
// every read after it, which is the only synchronisation the cut-link
// rings and credit counters need. A poisoned runner (a panicking peer)
// re-raises inside the wait so no shard spins forever; on a guarded
// runner a wait exceeding the barrier-stall bound poisons the runner with
// a KindBarrierStall violation instead of spinning forever behind a hung
// peer.
func (r *Runner) await(s int) {
	ns := r.slots[s].sense ^ 1
	r.slots[s].sense = ns
	if int(r.count.Add(1)) == len(r.shards) {
		r.count.Store(0)
		r.sense.Store(ns)
		return
	}
	var stall time.Duration
	if g := r.guard; g != nil {
		stall = g.cfg.BarrierStall
	}
	var deadline time.Time
	for spin := 0; r.sense.Load() != ns; spin++ {
		if p := r.poison.Load(); p != nil {
			panic(p.v)
		}
		if spin > barrierSpin {
			runtime.Gosched()
			if stall > 0 && spin&1023 == 0 {
				// The wall clock is consulted once per 1024 yields: cheap
				// enough to leave armed, frequent enough to trip within
				// microseconds of the deadline.
				if deadline.IsZero() {
					deadline = time.Now().Add(stall)
				} else if time.Now().After(deadline) {
					v := &guard.Violation{Kind: guard.KindBarrierStall, Cycle: r.shards[s].Engine.Cycle(), Shard: s,
						Msg: fmt.Sprintf("waited longer than %v at a window barrier (%d of %d shards arrived)",
							stall, r.count.Load(), len(r.shards))}
					r.poisonShard(v, s)
					panic(v)
				}
			}
		}
	}
}

// poisonShard records the first failure with its shard context; raw panics
// also capture the raising goroutine's stack.
func (r *Runner) poisonShard(v any, s int) {
	b := &poisonBox{v: v, shard: s}
	if _, ok := v.(*guard.Violation); !ok {
		b.stack = debug.Stack()
	}
	r.poison.CompareAndSwap(nil, b)
}

// asViolation converts the poison into the typed violation a guarded
// caller returns.
func (b *poisonBox) asViolation(cycle uint64) *guard.Violation {
	if v, ok := b.v.(*guard.Violation); ok {
		return v
	}
	return &guard.Violation{Kind: guard.KindPanic, Cycle: cycle, Shard: b.shard,
		Msg: fmt.Sprint(b.v), Stack: string(b.stack)}
}

// allDone reports the published global completion predicate. Every shard
// evaluates it over the same barrier-published flags, so all reach the
// same verdict in the same round.
func (r *Runner) allDone() bool {
	for i := range r.slots {
		if !r.slots[i].done {
			return false
		}
	}
	return true
}

// minHorizon is the conservative global window bound: no shard acts — and
// in particular exports nothing — before it.
func (r *Runner) minHorizon() uint64 {
	w := r.slots[0].horizon
	for i := 1; i < len(r.slots); i++ {
		if h := r.slots[i].horizon; h < w {
			w = h
		}
	}
	return w
}

// publishGuard publishes shard s's guard probes into its slot during the
// boundary publish step (between the barriers, like horizon/done). Shard 0
// additionally publishes the wall-clock budget verdict.
func (r *Runner) publishGuard(s int, sl *slot) {
	sh := r.shards[s]
	if sh.Progress != nil {
		sl.progress = sh.Progress()
	}
	if sh.Live != nil {
		sl.live = int64(sh.Live())
	}
	if s == 0 {
		sl.btrip = r.guard.budgetCheck()
	}
}

// budgetCheck evaluates the wall-clock budget (shard 0 only). Once tripped
// it stays tripped.
func (g *guardState) budgetCheck() uint32 {
	if g.tripped {
		return 1
	}
	if g.cfg.RunBudget <= 0 {
		return 0
	}
	g.rounds++
	if g.rounds&budgetRoundMask != 0 {
		return 0
	}
	if time.Since(g.start) > g.cfg.RunBudget {
		g.tripped = true
		return 1
	}
	return 0
}

// guardVerdict evaluates the SPMD watchdogs at a round top over
// barrier-published data only, so every shard reaches the identical
// verdict in the identical round — the property that lets a violation
// stop all shards together without extra synchronisation, and keeps the
// trip cycle itself independent of the shard count. It allocates only when
// a verdict fires.
func (r *Runner) guardVerdict(s int, c uint64) *guard.Violation {
	g := r.guard
	if r.slots[0].btrip != 0 {
		return &guard.Violation{Kind: guard.KindBudget, Cycle: c, Shard: -1,
			Msg: fmt.Sprintf("wall-clock run budget %v exceeded", g.cfg.RunBudget)}
	}
	if g.cfg.NoRetireHorizon == 0 {
		return nil
	}
	var prog uint64
	var live int64
	for i := range r.slots {
		prog += r.slots[i].progress
		live += r.slots[i].live
	}
	st := &g.states[s]
	if !st.haveBase || prog != st.lastProgress || live <= 0 {
		// Retirement, or legitimate quiescence: the horizon restarts here.
		st.haveBase = true
		st.lastProgress = prog
		st.lastCycle = c
		return nil
	}
	if c-st.lastCycle >= g.cfg.NoRetireHorizon {
		return &guard.Violation{Kind: guard.KindDeadlock, Cycle: c, Shard: -1,
			Msg: fmt.Sprintf("no packet retired for %d cycles with %d in flight (horizon %d)",
				c-st.lastCycle, live, g.cfg.NoRetireHorizon)}
	}
	return nil
}

// maybeStall fires any injected stall fault targeting shard s that is due
// at cycle c (once each).
func (r *Runner) maybeStall(s int, c uint64) {
	for i := range r.stalls {
		f := &r.stalls[i]
		if f.Shard == s && !r.stallArmed[i] && c >= f.AtCycle {
			r.stallArmed[i] = true
			time.Sleep(f.Wall)
		}
	}
}

// shardLoop is the SPMD body every shard runs for one segment: publish the
// entry state, then rounds of compute / exchange until the shared stop
// condition (global completion, the segment target, or a guard verdict)
// fires — identically on every shard.
func (r *Runner) shardLoop(s int, target uint64) {
	sh := r.shards[s]
	win := r.wins[s]
	sl := &r.slots[s]
	g := r.guard
	c := sh.Engine.Cycle()
	sl.horizon = win.NextWake()
	sl.done = sh.Done()
	if g != nil {
		r.publishGuard(s, sl)
	}
	r.await(s)
	for {
		if r.allDone() || c >= target {
			return
		}
		if g != nil {
			if v := r.guardVerdict(s, c); v != nil {
				if s == 0 {
					r.gv = v
				}
				return
			}
		}
		if r.stalls != nil {
			r.maybeStall(s, c)
		}
		t := c + 1
		if w := r.minHorizon(); w > t {
			t = w
		}
		if t > target {
			t = target
		}
		win.RunTo(t)
		r.await(s)
		if sh.Exchanger != nil && sh.Exchanger.Exchange() > 0 {
			sh.Exchanger.Wake()
		}
		sl.horizon = win.NextWake()
		sl.done = sh.Done()
		if g != nil {
			r.publishGuard(s, sl)
		}
		r.await(s)
		c = t
	}
}

// segWorker drives one non-caller shard through a segment, converting a
// device panic into runner poison instead of killing the process.
func (r *Runner) segWorker(s int) {
	defer r.segDone(s)
	r.shardLoop(s, r.target)
}

func (r *Runner) segDone(s int) {
	if v := recover(); v != nil {
		r.poisonShard(v, s)
	}
	// Done before the live decrement: once liveWorkers reads zero, every
	// worker has already passed its wg.Done, so the joiner's wg.Wait cannot
	// block.
	r.wg.Done()
	r.liveWorkers.Add(-1)
}

// runShard0 runs the caller's shard, poisoning the runner on a panic so
// the workers drain out of their barriers; runSegment re-raises (legacy)
// or converts the poison (guarded) after the join.
func (r *Runner) runShard0(target uint64) {
	defer func() {
		if v := recover(); v != nil {
			r.poisonShard(v, 0)
		}
	}()
	r.shardLoop(0, target)
}

// joinWorkers joins the segment's goroutines. A guarded runner with a
// barrier-stall bound uses a bounded join: once shard 0 has returned,
// every healthy peer is on its way out of the same round, so a join that
// outlasts the grace period means a shard is genuinely hung (the condition
// the stall watchdog exists for) and the runner gives the workers up
// rather than hanging its caller. The bound is a spin/yield wait on the
// live-worker count — no channel, goroutine or timer — so the healthy path
// stays allocation-free.
func (r *Runner) joinWorkers() error {
	g := r.guard
	if g == nil || g.cfg.BarrierStall <= 0 {
		r.wg.Wait()
		return nil
	}
	grace := 4 * g.cfg.BarrierStall
	if grace < time.Second {
		grace = time.Second
	}
	var deadline time.Time
	for spin := 0; r.liveWorkers.Load() != 0; spin++ {
		if spin > barrierSpin {
			runtime.Gosched()
			if spin&1023 == 0 {
				if deadline.IsZero() {
					deadline = time.Now().Add(grace)
				} else if time.Now().After(deadline) {
					return &guard.Violation{Kind: guard.KindBarrierStall, Cycle: r.shards[0].Engine.Cycle(), Shard: -1,
						Msg: fmt.Sprintf("a shard worker failed to join within %v of segment end; runner abandoned", grace)}
				}
			}
		}
	}
	r.wg.Wait()
	return nil
}

// attachDiag attaches the diagnostic dump (fabric state plus per-shard
// window state) to a violation. The diag probe walks device state a
// violation may have left mid-tick-inconsistent, so it runs under its own
// recover: losing the dump must never lose the violation.
func (r *Runner) attachDiag(v *guard.Violation) {
	g := r.guard
	if g == nil {
		return
	}
	if v.Diag == nil && g.diag != nil {
		func() {
			defer func() { _ = recover() }()
			v.Diag = g.diag()
		}()
	}
	if v.Diag == nil {
		return
	}
	for i := range r.shards {
		sl := &r.slots[i]
		v.Diag.Shards = append(v.Diag.Shards, guard.ShardWindow{
			Shard: i, Cycle: r.shards[i].Engine.Cycle(), Horizon: sl.horizon,
			Done: sl.done, Progress: sl.progress, Live: sl.live,
		})
	}
}

// runSegment advances all shards from their common cycle by at most window
// cycles, stopping early when the global completion predicate holds at a
// boundary or a guard verdict fires. It returns the executed cycle count,
// the predicate's final value, and the violation (as an error) on a
// guarded runner. Goroutines are spawned per segment and fully joined
// before it returns; a dead (or, unguarded, poisoned) runner fails fast.
func (r *Runner) runSegment(window uint64) (uint64, bool, error) {
	if r.dead != nil {
		return 0, false, r.dead
	}
	if p := r.poison.Load(); p != nil {
		// Only an unguarded runner can be poisoned without being dead:
		// preserve the legacy re-raise contract.
		panic(p.v)
	}
	if g := r.guard; g != nil && g.start.IsZero() {
		g.start = time.Now()
	}
	start := r.shards[0].Engine.Cycle()
	target := start + window
	r.target = target
	r.liveWorkers.Store(int32(len(r.workers)))
	for _, w := range r.workers {
		r.wg.Add(1)
		go w()
	}
	r.runShard0(target)
	if err := r.joinWorkers(); err != nil {
		// Workers may still be running: do not touch shared state beyond
		// latching the runner dead.
		r.dead = err
		return r.shards[0].Engine.Cycle() - start, false, err
	}
	n := r.shards[0].Engine.Cycle() - start
	if p := r.poison.Load(); p != nil {
		if r.guard == nil {
			panic(p.v)
		}
		v := p.asViolation(r.shards[0].Engine.Cycle())
		r.attachDiag(v)
		r.dead = v
		return n, false, v
	}
	if r.gv != nil {
		v := r.gv
		r.gv = nil
		r.attachDiag(v)
		r.dead = v
		return n, false, v
	}
	if g := r.guard; g != nil && g.cfg.Conservation && g.scan != nil {
		if v := g.scan(); v != nil {
			if v.Cycle == 0 {
				v.Cycle = r.shards[0].Engine.Cycle()
			}
			r.attachDiag(v)
			r.dead = v
			return n, false, v
		}
	}
	return n, r.allDone(), nil
}

// Run simulates until the completion predicate holds or maxCycles elapse,
// mirroring sim.Engine.RunEvery's contract (completion is checked at every
// window boundary; the error wraps sim.ErrMaxCycles on budget exhaustion).
// On a guarded runner a watchdog violation is returned as the
// *guard.Violation error itself.
func (r *Runner) Run(maxCycles uint64) error {
	_, done, err := r.runSegment(maxCycles)
	if err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("%w (%d cycles)", sim.ErrMaxCycles, maxCycles)
	}
	return nil
}

// Advance runs at most cycles cycles without regard for completion (the
// segment still stops early if the workload finishes) and returns the
// executed count. It is the benchmarking hook: steady state allocates
// nothing, so throughput measurements see only the simulation itself. The
// error is non-nil only on a guarded runner whose watchdogs fired.
func (r *Runner) Advance(cycles uint64) (uint64, error) {
	n, _, err := r.runSegment(cycles)
	return n, err
}

// RunPhased executes the warmup → measure → drain methodology across the
// shards with sim.RunPhased's exact semantics: maxCycles budgets warmup
// plus measurement, Drain has its own budget, truncation of the
// measurement plan is an error wrapping sim.ErrMaxCycles, an incomplete
// drain is not, and a guard violation propagates immediately from any
// phase. Phases.Stride is ignored — the sharded completion check runs at
// every window boundary.
func (r *Runner) RunPhased(p sim.Phases, maxCycles uint64) (sim.PhasedResult, error) {
	var res sim.PhasedResult
	remaining := maxCycles

	if p.Warmup > 0 {
		win := min(p.Warmup, remaining)
		n, done, err := r.runSegment(win)
		res.WarmupCycles = n
		remaining -= n
		if err != nil {
			return res, err
		}
		if done {
			res.Completed = true
			res.CompletedIn = sim.PhaseWarmup
		} else if win < p.Warmup {
			return res, fmt.Errorf("shard: phased warmup truncated: %w (%d cycles)", sim.ErrMaxCycles, maxCycles)
		}
	}
	if p.AfterWarmup != nil {
		p.AfterWarmup(r.Cycle())
	}
	if res.Completed {
		return res, nil
	}

	maxEpochs := p.MaxEpochs
	if maxEpochs <= 0 && p.Epoch == 0 {
		maxEpochs = 1
	}
	for epoch := 0; maxEpochs <= 0 || epoch < maxEpochs; epoch++ {
		if remaining == 0 {
			return res, fmt.Errorf("shard: phased measurement truncated after %d epochs: %w (%d cycles)",
				res.Epochs, sim.ErrMaxCycles, maxCycles)
		}
		win := remaining
		if p.Epoch > 0 && p.Epoch < win {
			win = p.Epoch
		}
		start := r.Cycle()
		n, finished, err := r.runSegment(win)
		remaining -= n
		res.MeasureCycles += n
		res.Epochs++
		if err != nil {
			return res, err
		}
		more := true
		if p.AfterEpoch != nil {
			more = p.AfterEpoch(epoch, start, r.Cycle())
		}
		if finished {
			res.Completed = true
			res.CompletedIn = sim.PhaseMeasure
			return res, nil
		}
		if !more {
			break
		}
		if p.Epoch == 0 || win < p.Epoch {
			// An exhausted open epoch, or an epoch the budget cut short with
			// more epochs wanted: the measurement plan was truncated.
			return res, fmt.Errorf("shard: phased measurement truncated after %d epochs: %w (%d cycles)",
				res.Epochs, sim.ErrMaxCycles, maxCycles)
		}
	}

	if p.Drain > 0 {
		n, finished, err := r.runSegment(p.Drain)
		res.DrainCycles = n
		if err != nil {
			return res, err
		}
		if finished {
			res.Completed = true
			res.CompletedIn = sim.PhaseDrain
		}
	}
	return res, nil
}
