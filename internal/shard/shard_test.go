package shard

import (
	"errors"
	"testing"

	"noctg/internal/sim"
)

// ticker counts its ticks; the strict kernel keeps its shard's horizon at
// the current cycle, forcing one-cycle lockstep windows.
type ticker struct{ ticks uint64 }

func (d *ticker) Tick(cycle uint64) { d.ticks++ }

// napper sleeps until each of its scheduled wake cycles, letting the
// runner's window bound grow across globally quiescent spans.
type napper struct {
	wakes []uint64
	ticks uint64
}

func (d *napper) Tick(cycle uint64) {
	if len(d.wakes) > 0 && d.wakes[0] == cycle {
		d.wakes = d.wakes[1:]
		d.ticks++
	}
}

func (d *napper) NextWake(now uint64) uint64 {
	if len(d.wakes) == 0 {
		return sim.WakeNever
	}
	if d.wakes[0] < now {
		return now
	}
	return d.wakes[0]
}

// exchangeProbe records boundary traffic for the cadence assertions.
type exchangeProbe struct {
	calls   int
	pending int
	woken   int
}

func (f *exchangeProbe) Exchange() int {
	f.calls++
	n := f.pending
	f.pending = 0
	return n
}

func (f *exchangeProbe) Wake() { f.woken++ }

// newShard wires one engine+device into a Shard whose predicate fires once
// the engine reaches doneAt.
func newShard(dev sim.Device, kernel sim.Kernel, doneAt uint64) *Shard {
	e := sim.NewEngine(sim.Clock{})
	e.SetKernel(kernel)
	e.Add(dev)
	return &Shard{
		Engine:    e,
		Exchanger: &exchangeProbe{},
		Done:      func() bool { return e.Cycle() >= doneAt },
	}
}

// TestRunnerStopsTogether: shards with staggered local completion must all
// stop on the same cycle — the first boundary where the conjunction holds.
func TestRunnerStopsTogether(t *testing.T) {
	doneAts := []uint64{100, 250, 400}
	shards := make([]*Shard, len(doneAts))
	devs := make([]*ticker, len(doneAts))
	for i, at := range doneAts {
		devs[i] = &ticker{}
		shards[i] = newShard(devs[i], sim.KernelStrict, at)
	}
	r := New(shards)
	if err := r.Run(10_000); err != nil {
		t.Fatal(err)
	}
	for i, sh := range shards {
		if got := sh.Engine.Cycle(); got != 400 {
			t.Fatalf("shard %d stopped at %d, want 400", i, got)
		}
		if devs[i].ticks != 400 {
			t.Fatalf("shard %d ticked %d times, want 400", i, devs[i].ticks)
		}
	}
	if r.Cycle() != 400 {
		t.Fatalf("runner cycle %d, want 400", r.Cycle())
	}
}

// TestRunnerBudget: an unfinished run must consume exactly the budget and
// report sim.ErrMaxCycles.
func TestRunnerBudget(t *testing.T) {
	r := New([]*Shard{
		newShard(&ticker{}, sim.KernelStrict, 1000),
		newShard(&ticker{}, sim.KernelStrict, 1000),
	})
	err := r.Run(50)
	if !errors.Is(err, sim.ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	if r.Cycle() != 50 {
		t.Fatalf("cycle %d, want 50", r.Cycle())
	}
}

// TestRunnerExchangeCadence: with any shard active every cycle, windows
// must degenerate to single cycles — one Exchange per shard per cycle, the
// invariant that gives cut links uncut timing — and a reported import must
// trigger exactly one Wake.
func TestRunnerExchangeCadence(t *testing.T) {
	a := newShard(&ticker{}, sim.KernelStrict, 64)
	b := newShard(&ticker{}, sim.KernelStrict, 64)
	pb := b.Exchanger.(*exchangeProbe)
	pb.pending = 3 // imported at the first boundary
	r := New([]*Shard{a, b})
	if err := r.Run(1000); err != nil {
		t.Fatal(err)
	}
	pa := a.Exchanger.(*exchangeProbe)
	if pa.calls != 64 || pb.calls != 64 {
		t.Fatalf("exchange calls %d/%d, want 64/64 (one per cycle)", pa.calls, pb.calls)
	}
	if pb.woken != 1 || pa.woken != 0 {
		t.Fatalf("wakes %d/%d, want 0/1", pa.woken, pb.woken)
	}
}

// TestRunnerWindowsSkipQuiescence: sleeping shards must let the window
// bound grow — the event kernel's jumps survive the windowed protocol —
// while still honouring every scheduled wake.
func TestRunnerWindowsSkipQuiescence(t *testing.T) {
	na := &napper{wakes: []uint64{10, 5_000}}
	nb := &napper{wakes: []uint64{10_000}}
	a := newShard(na, sim.KernelEvent, 0)
	b := newShard(nb, sim.KernelEvent, 0)
	// Like the platform's predicate, done is a function of device state
	// only (the skip/event contract): all scheduled work drained.
	a.Done = func() bool { return len(na.wakes) == 0 }
	b.Done = func() bool { return len(nb.wakes) == 0 }
	r := New([]*Shard{a, b})
	if err := r.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if na.ticks != 2 || nb.ticks != 1 {
		t.Fatalf("wake ticks %d/%d, want 2/1", na.ticks, nb.ticks)
	}
	// The last wake executes in the window ending at 10_001; its boundary
	// is the first one where the conjunction holds.
	if r.Cycle() != 10_001 {
		t.Fatalf("cycle %d, want 10001", r.Cycle())
	}
	if skipped := a.Engine.SkippedCycles; skipped == 0 {
		t.Fatal("event kernel skipped nothing across quiescent windows")
	}
	// Exchanges happen only at executed boundaries, far fewer than cycles.
	if calls := a.Exchanger.(*exchangeProbe).calls; calls >= 1000 {
		t.Fatalf("%d exchanges for a mostly-quiescent run", calls)
	}
}

// bomb panics at its fuse cycle.
type bomb struct{ fuse uint64 }

func (d *bomb) Tick(cycle uint64) {
	if cycle == d.fuse {
		panic("shard test: bomb")
	}
}

// TestRunnerPanicPoison: a device panic on a worker shard must propagate
// to the caller (not kill the process or deadlock the barrier), and the
// poisoned runner must re-raise on any further use.
func TestRunnerPanicPoison(t *testing.T) {
	r := New([]*Shard{
		newShard(&ticker{}, sim.KernelStrict, 1000),
		newShard(&bomb{fuse: 42}, sim.KernelStrict, 1000),
	})
	mustPanic := func(op string) {
		t.Helper()
		defer func() {
			if v := recover(); v != "shard test: bomb" {
				t.Fatalf("%s: recovered %v, want the bomb's value", op, v)
			}
		}()
		_ = r.Run(10_000)
		t.Fatalf("%s returned without panicking", op)
	}
	mustPanic("first run")
	mustPanic("poisoned rerun")
}

// TestRunnerPhasedMatchesEngine: a single-shard runner must reproduce
// sim.RunPhased (stride 1) exactly — boundaries, epochs, completion phase.
func TestRunnerPhasedMatchesEngine(t *testing.T) {
	build := func() (*sim.Engine, *ticker) {
		e := sim.NewEngine(sim.Clock{})
		d := &ticker{}
		e.Add(d)
		return e, d
	}
	phases := func(boundaries *[]uint64) sim.Phases {
		return sim.Phases{
			Warmup:      100,
			Epoch:       300,
			MaxEpochs:   5,
			Drain:       1000,
			Stride:      1,
			AfterWarmup: func(now uint64) { *boundaries = append(*boundaries, now) },
			AfterEpoch: func(epoch int, start, end uint64) bool {
				*boundaries = append(*boundaries, start, end)
				return true
			},
		}
	}

	re, rd := build()
	var refB []uint64
	const doneAt = 777
	refRes, refErr := re.RunPhased(phases(&refB), 10_000, func() bool { return re.Cycle() >= doneAt })

	se, sd := build()
	var gotB []uint64
	r := New([]*Shard{{Engine: se, Done: func() bool { return se.Cycle() >= doneAt }}})
	gotRes, gotErr := r.RunPhased(phases(&gotB), 10_000)

	if (refErr == nil) != (gotErr == nil) {
		t.Fatalf("errors diverged: %v vs %v", refErr, gotErr)
	}
	if refRes != gotRes {
		t.Fatalf("results diverged: %+v vs %+v", refRes, gotRes)
	}
	if len(refB) != len(gotB) {
		t.Fatalf("boundary counts diverged: %v vs %v", refB, gotB)
	}
	for i := range refB {
		if refB[i] != gotB[i] {
			t.Fatalf("boundaries diverged: %v vs %v", refB, gotB)
		}
	}
	if rd.ticks != sd.ticks {
		t.Fatalf("work diverged: %d vs %d", rd.ticks, sd.ticks)
	}
}
