package sim

// Clock describes the simulated clock. The paper's trace examples use a
// 5 ns cycle ("We assume each TG cycle to take 5ns, the same as the IP core
// for which the trace is collected"), so that is the default here.
type Clock struct {
	// PeriodNS is the clock period in nanoseconds.
	PeriodNS uint64
}

// DefaultClock is the 200 MHz (5 ns) clock used in the paper's examples.
var DefaultClock = Clock{PeriodNS: 5}

// NS converts a cycle count into nanoseconds of simulated time.
func (c Clock) NS(cycle uint64) uint64 { return cycle * c.PeriodNS }

// Cycles converts a nanosecond timestamp into whole cycles (truncating),
// matching the paper's 55 ns → 11th cycle example.
func (c Clock) Cycles(ns uint64) uint64 {
	if c.PeriodNS == 0 {
		return ns / DefaultClock.PeriodNS
	}
	return ns / c.PeriodNS
}
