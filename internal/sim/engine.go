// Package sim provides the cycle-driven simulation kernel used by every
// other package in the repository. It stands in for the SystemC kernel that
// the paper's MPARM platform runs on.
//
// The default kernel is deliberately simple and strict: every registered
// device is ticked once per simulated clock cycle, in registration order, on
// a single goroutine. There is no event queue and no time-warping — the
// paper's speedup comes from traffic generators doing less work per cycle
// than the processor models they replace, and the strict kernel is what the
// paper's reported ARM-vs-TG speedups are measured on.
//
// An opt-in idle-skipping kernel (KernelSkip) accelerates pure TG-replay
// runs: when every registered device implements Sleeper and reports a future
// wake cycle — a TG deep inside an Idle(100000), a quiescent interconnect —
// the engine advances the cycle counter straight to the earliest wake cycle
// instead of spinning through no-op ticks. Skipping never changes simulated
// state: a cycle is skipped only when no device could have done work in it,
// so makespans, histograms and per-device counters are identical to a strict
// run (the sweep differential tests assert byte-identical artifacts). ARM
// reference runs stay on the strict kernel so the paper's speedup numbers
// are not inflated by kernel tricks; see the package README's Performance
// section for the fidelity argument.
//
// The event-driven kernel (KernelEvent, event.go) goes one step further:
// instead of requiring every device to sleep before any cycle can be
// elided, it keeps a per-device wake schedule and ticks only the devices
// that are due each cycle. Its per-cycle cost scales with the number of
// awake devices, not the device count, so one saturated master among many
// idle ones no longer drags the whole platform back to strict-ticking
// speed. The all-asleep case degenerates to exactly the skip kernel's
// cycle jump.
package sim

import (
	"errors"
	"fmt"
)

// Device is anything driven by the simulation clock. Tick is called exactly
// once per executed cycle, in the order devices were registered. Under the
// skip kernel, cycles in which every device slept are not executed at all;
// the cycle argument always carries the absolute cycle number, so devices
// that keep deadlines in absolute cycles observe no difference.
type Device interface {
	Tick(cycle uint64)
}

// DeviceFunc adapts a plain function to the Device interface.
type DeviceFunc func(cycle uint64)

// Tick calls f(cycle).
func (f DeviceFunc) Tick(cycle uint64) { f(cycle) }

// Named is optionally implemented by devices that want to appear with a
// readable name in diagnostics.
type Named interface {
	Name() string
}

// WakeNever is the NextWake return value of a device that will never act
// again without external stimulus (a halted TG, a fully drained bus).
const WakeNever = ^uint64(0)

// Sleeper is optionally implemented by devices that can declare future
// idleness to the skip and event kernels. NextWake(now) returns the
// earliest cycle at which the device might change state or perform work:
//
//   - now:        the device needs its Tick at cycle now (it is active);
//   - w > now:    the device will not act before cycle w — its Ticks are
//     guaranteed no-ops for every cycle in [now, w) and the engine may
//     omit them entirely;
//   - WakeNever:  the device is permanently quiescent.
//
// The contract is strict, not advisory: a reported wake of w is a promise
// that holds even if the device is never ticked and never re-queried
// during [now, w) — the event kernel removes sleeping devices from the
// tick loop altogether, and the skip kernel memoizes reported wakes. A
// device whose earliest action can move earlier because of external input
// (an interconnect receiving a TryRequest from a master) must therefore
// implement WakeSink and call its Waker when that input arrives; purely
// self-timed devices (absolute idle deadlines, recorded schedules) need
// nothing extra.
//
// The contract is also conservative: a device that cannot cheaply bound
// its next activity must return now. One conservative device merely keeps
// itself in the per-cycle tick set (event kernel) or disables whole-cycle
// skipping (skip kernel) without affecting correctness.
type Sleeper interface {
	NextWake(now uint64) uint64
}

// Kernel selects the engine's cycle-advance strategy.
type Kernel int

const (
	// KernelStrict ticks every device on every cycle (the default, and the
	// reference semantics the paper's speedups are reported against).
	KernelStrict Kernel = iota
	// KernelSkip fast-forwards over cycles in which every device sleeps.
	// It requires every registered device to implement Sleeper; if any does
	// not, the engine silently degrades to strict ticking.
	KernelSkip
	// KernelEvent ticks only devices whose scheduled wake is due, using a
	// per-device wake schedule (see event.go); when every device sleeps it
	// jumps the cycle counter like KernelSkip. It requires every registered
	// device to implement Sleeper; if any does not, the engine silently
	// degrades to strict ticking.
	KernelEvent
)

func (k Kernel) String() string {
	switch k {
	case KernelStrict:
		return "strict"
	case KernelSkip:
		return "skip"
	case KernelEvent:
		return "event"
	}
	return fmt.Sprintf("Kernel(%d)", int(k))
}

// ErrMaxCycles is returned by Run when the cycle limit is reached before the
// completion predicate becomes true.
var ErrMaxCycles = errors.New("sim: cycle limit reached")

// Engine is the cycle-driven simulation kernel. The zero value is ready to
// use and runs the strict kernel.
type Engine struct {
	devices []Device
	cycle   uint64
	clock   Clock
	kernel  Kernel

	// sleepers mirrors devices; it is non-nil only while every registered
	// device implements Sleeper (the precondition for skipping).
	sleepers []Sleeper
	// blocker is the index of the sleeper that most recently refused to
	// sleep. Scans start there: an active device tends to stay active, so
	// contended phases cost one NextWake call per cycle instead of a full
	// scan.
	blocker int
	// wakeMemo caches, per sleeper, the last reported wake cycle. While the
	// cached value is in the future the skip kernel's nextWake scan trusts
	// it instead of re-querying the device; wakeDevice (the WakeSink hook)
	// invalidates the entry when external input arrives early.
	wakeMemo []uint64
	// SkippedCycles counts cycles the skip and event kernels fast-forwarded
	// over (diagnostics only; strict runs keep it at zero).
	SkippedCycles uint64

	// Event-kernel schedule (event.go): evActive is the sorted list of
	// awake device indices swept each cycle; evHeap is an indexed min-heap
	// of sleeping devices ordered by (evWake, index), with evPos tracking
	// each device's heap slot (notInHeap while active). evSweep is the
	// in-cycle sweep position (mid-sweep wakes adjust it to keep the
	// strict tick ordering); evLive is true while an event-kernel run is
	// in progress.
	evActive []int32
	evHeap   []int32
	evPos    []int32
	evWake   []uint64
	evSweep  int32
	evLive   bool
	// evFused mirrors devices with their TickSleeper fast path (nil where
	// unimplemented).
	evFused []TickSleeper

	// watchdog, when set, runs at every completion-predicate evaluation
	// point (after done() reports false); a non-nil error aborts the run.
	// Because it runs only where the predicate runs, a watchdog that fires
	// nothing leaves the executed cycle schedule — and the simulated state —
	// exactly as an unguarded run's (see internal/guard).
	watchdog func(cycle uint64) error
}

// NewEngine returns an engine using the given clock. A zero Clock means the
// default 5 ns period used throughout the paper's examples.
func NewEngine(clock Clock) *Engine {
	if clock.PeriodNS == 0 {
		clock = DefaultClock
	}
	return &Engine{clock: clock, sleepers: []Sleeper{}}
}

// Clock returns the engine's clock definition.
func (e *Engine) Clock() Clock {
	if e.clock.PeriodNS == 0 {
		return DefaultClock
	}
	return e.clock
}

// SetKernel selects the cycle-advance strategy for subsequent Run calls.
func (e *Engine) SetKernel(k Kernel) { e.kernel = k }

// Kernel returns the selected cycle-advance strategy.
func (e *Engine) Kernel() Kernel { return e.kernel }

// Add registers a device. Devices are ticked in registration order; the
// platform packages rely on this to implement the fixed
// masters→interconnect ordering described in DESIGN.md.
func (e *Engine) Add(d Device) {
	if d == nil {
		panic("sim: Add(nil) device")
	}
	e.devices = append(e.devices, d)
	if e.sleepers != nil || len(e.devices) == 1 {
		if s, ok := d.(Sleeper); ok {
			e.sleepers = append(e.sleepers, s)
		} else {
			// One non-Sleeper device disables skipping for the whole engine.
			e.sleepers = nil
		}
	}
	if ws, ok := d.(WakeSink); ok {
		ws.SetWaker(&engineWaker{e: e, idx: int32(len(e.devices) - 1)})
	}
	f, _ := d.(TickSleeper)
	e.evFused = append(e.evFused, f)
}

// Devices returns the number of registered devices.
func (e *Engine) Devices() int { return len(e.devices) }

// CanSkip reports whether every registered device implements Sleeper, i.e.
// whether the skip and event kernels can actually elide ticks on this
// engine (both degrade to strict ticking otherwise).
func (e *Engine) CanSkip() bool { return e.sleepers != nil }

// Cycle returns the current cycle number, i.e. the number of completed
// (executed or skipped) cycles since construction.
func (e *Engine) Cycle() uint64 { return e.cycle }

// SetWatchdog installs (or, with nil, removes) the run-loop watchdog hook.
// The hook is invoked at completion-predicate evaluation points with the
// current cycle; returning a non-nil error stops the run immediately with
// that error. Run/RunEvery/RunPhased honour it; windowed sessions
// (BeginWindowed/RunTo) do not — their caller, the shard runner, carries
// its own guard at window boundaries.
func (e *Engine) SetWatchdog(f func(cycle uint64) error) { e.watchdog = f }

// Step advances the simulation by one cycle, ticking every device once.
func (e *Engine) Step() {
	c := e.cycle
	for _, d := range e.devices {
		d.Tick(c)
	}
	e.cycle++
}

// nextWake returns the earliest cycle at which any device might act, asking
// every Sleeper with now = e.cycle (the next cycle to execute). The scan
// rotates, starting from the last blocking device, and exits at the first
// device that needs a tick now. Sleepers whose previously reported wake is
// still in the future are not re-queried: the Sleeper contract makes the
// cached value binding until then, and wakeDevice invalidates the memo when
// external input arrives early. The caller guarantees e.sleepers and
// e.wakeMemo are non-nil and sized alike.
func (e *Engine) nextWake() uint64 {
	now := e.cycle
	sl := e.sleepers
	memo := e.wakeMemo
	n := len(sl)
	if e.blocker >= n {
		e.blocker = 0
	}
	w := WakeNever
	for k := 0; k < n; k++ {
		i := e.blocker + k
		if i >= n {
			i -= n
		}
		nw := memo[i]
		if nw <= now {
			nw = sl[i].NextWake(now)
			memo[i] = nw
		}
		if nw <= now {
			e.blocker = i
			return now
		}
		if nw < w {
			w = nw
		}
	}
	return w
}

// resetWakeMemo sizes and clears the skip kernel's per-sleeper wake cache
// (stale entries could date from before direct device manipulation between
// runs, which bypasses the WakeSink hooks).
func (e *Engine) resetWakeMemo() {
	n := len(e.sleepers)
	if cap(e.wakeMemo) < n {
		e.wakeMemo = make([]uint64, n)
		return
	}
	e.wakeMemo = e.wakeMemo[:n]
	clear(e.wakeMemo)
}

// Run steps the simulation until done() reports true (checked after each
// cycle) or maxCycles cycles have elapsed, whichever comes first. It returns
// the number of cycles executed by this call. If the limit is hit first the
// returned error wraps ErrMaxCycles.
//
// Under the skip kernel, done() must depend only on device state (not on the
// raw cycle counter): skipped cycles are exactly those in which no device
// state changes, so the predicate is evaluated only at cycles where its
// value could differ from the previous evaluation.
func (e *Engine) Run(maxCycles uint64, done func() bool) (uint64, error) {
	return e.run(maxCycles, 1, done)
}

// RunFor steps the simulation for exactly n cycles. It always ticks
// strictly, regardless of the selected kernel: callers use it to reach a
// precise cycle count, which skipping would not change, and per-cycle side
// effects of non-Sleeper devices (test instrumentation) are often the point.
func (e *Engine) RunFor(n uint64) {
	for i := uint64(0); i < n; i++ {
		e.Step()
	}
}

// RunEvery is Run, but evaluates the completion predicate only every stride
// cycles. Devices still tick (or are provably idle) every cycle, so
// simulated state is unaffected; only the detection of completion is delayed
// by up to stride-1 cycles. Platforms use it to keep predicate evaluation
// out of the per-cycle hot path.
func (e *Engine) RunEvery(maxCycles, stride uint64, done func() bool) (uint64, error) {
	if stride == 0 {
		stride = 1
	}
	return e.run(maxCycles, stride, done)
}

// run is the shared Run/RunEvery loop. The predicate is evaluated at stride
// boundaries (relative to the start cycle) and, if the final budgeted cycle
// is not a boundary, once more after the loop — never twice for the same
// cycle. All loop state (start, end, the done closure's captures) is hoisted
// out of the per-cycle path, and the body allocates nothing in steady state.
//
// The three kernels share this loop. Strict executes every cycle with a
// full-device Step. Skip does the same but fast-forwards over all-asleep
// spans. Event replaces Step with stepEvent (ticking only due devices) and
// reads the next wake straight off the schedule's heap top; its jump logic
// is the skip kernel's, so the all-asleep case is byte-for-byte the same.
func (e *Engine) run(maxCycles, stride uint64, done func() bool) (uint64, error) {
	if done == nil {
		return 0, errors.New("sim: Run requires a completion predicate")
	}
	event := e.kernel == KernelEvent && e.sleepers != nil
	skip := event || (e.kernel == KernelSkip && e.sleepers != nil)
	if skip && !event {
		e.resetWakeMemo()
	}
	if event {
		e.initEventSchedule()
		e.evLive = true
		defer func() { e.evLive = false }()
	}
	start := e.cycle
	end := start + maxCycles
	checked := false // whether done() was evaluated at the current cycle
	// untilCheck counts down to the next stride boundary, replacing a
	// per-cycle modulo; skip/event jumps recompute it from the landing
	// cycle.
	untilCheck := stride
	for e.cycle < end {
		if event {
			e.stepEvent()
		} else {
			e.Step()
		}
		untilCheck--
		checked = untilCheck == 0
		if checked {
			untilCheck = stride
			if done() {
				return e.cycle - start, nil
			}
			if e.watchdog != nil {
				if err := e.watchdog(e.cycle); err != nil {
					return e.cycle - start, err
				}
			}
		}
		if !skip {
			continue
		}
		var w uint64
		if event {
			w = e.eventNextWake()
		} else {
			w = e.nextWake()
		}
		if w <= e.cycle {
			continue
		}
		// Device state — and with it the predicate — is frozen until cycle
		// w executes. The strict kernel would evaluate the predicate at
		// every stride boundary inside (e.cycle, w]; one evaluation of the
		// frozen value stands in for all of them, and none is needed when
		// no boundary falls in the window (or when the boundary at e.cycle
		// already saw the frozen value).
		if det := start + ((e.cycle-start)/stride+1)*stride; !checked && det <= w {
			checked = true
			if done() {
				if det > end {
					det = end
				}
				e.SkippedCycles += det - e.cycle
				e.cycle = det
				return e.cycle - start, nil
			}
			if e.watchdog != nil {
				if err := e.watchdog(e.cycle); err != nil {
					return e.cycle - start, err
				}
			}
		}
		if w == WakeNever {
			// Frozen forever with a false predicate: the strict kernel
			// would spin no-op ticks to the budget and fail there.
			e.SkippedCycles += end - e.cycle
			e.cycle = end
			return e.cycle - start, fmt.Errorf("%w (%d cycles)", ErrMaxCycles, maxCycles)
		}
		if w > end {
			w = end
		}
		e.SkippedCycles += w - e.cycle
		e.cycle = w
		checked = false
		untilCheck = stride - (w-start)%stride
	}
	if !checked && done() {
		return e.cycle - start, nil
	}
	return e.cycle - start, fmt.Errorf("%w (%d cycles)", ErrMaxCycles, maxCycles)
}
