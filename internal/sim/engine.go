// Package sim provides the cycle-driven simulation kernel used by every
// other package in the repository. It stands in for the SystemC kernel that
// the paper's MPARM platform runs on.
//
// The kernel is deliberately simple and strict: every registered device is
// ticked once per simulated clock cycle, in registration order, on a single
// goroutine. There is no event queue and no time-warping — the paper's
// speedup comes from traffic generators doing less work per cycle than the
// processor models they replace, and a kernel that skipped idle cycles would
// inflate that speedup beyond what the paper reports.
package sim

import (
	"errors"
	"fmt"
)

// Device is anything driven by the simulation clock. Tick is called exactly
// once per cycle, in the order devices were registered.
type Device interface {
	Tick(cycle uint64)
}

// DeviceFunc adapts a plain function to the Device interface.
type DeviceFunc func(cycle uint64)

// Tick calls f(cycle).
func (f DeviceFunc) Tick(cycle uint64) { f(cycle) }

// Named is optionally implemented by devices that want to appear with a
// readable name in diagnostics.
type Named interface {
	Name() string
}

// ErrMaxCycles is returned by Run when the cycle limit is reached before the
// completion predicate becomes true.
var ErrMaxCycles = errors.New("sim: cycle limit reached")

// Engine is the cycle-driven simulation kernel. The zero value is ready to
// use.
type Engine struct {
	devices []Device
	cycle   uint64
	clock   Clock
}

// NewEngine returns an engine using the given clock. A zero Clock means the
// default 5 ns period used throughout the paper's examples.
func NewEngine(clock Clock) *Engine {
	if clock.PeriodNS == 0 {
		clock = DefaultClock
	}
	return &Engine{clock: clock}
}

// Clock returns the engine's clock definition.
func (e *Engine) Clock() Clock {
	if e.clock.PeriodNS == 0 {
		return DefaultClock
	}
	return e.clock
}

// Add registers a device. Devices are ticked in registration order; the
// platform packages rely on this to implement the fixed
// masters→interconnect ordering described in DESIGN.md.
func (e *Engine) Add(d Device) {
	if d == nil {
		panic("sim: Add(nil) device")
	}
	e.devices = append(e.devices, d)
}

// Devices returns the number of registered devices.
func (e *Engine) Devices() int { return len(e.devices) }

// Cycle returns the current cycle number, i.e. the number of completed
// Step calls since construction.
func (e *Engine) Cycle() uint64 { return e.cycle }

// Step advances the simulation by one cycle, ticking every device once.
func (e *Engine) Step() {
	c := e.cycle
	for _, d := range e.devices {
		d.Tick(c)
	}
	e.cycle++
}

// Run steps the simulation until done() reports true (checked after each
// cycle) or maxCycles cycles have elapsed, whichever comes first. It returns
// the number of cycles executed by this call. If the limit is hit first the
// returned error wraps ErrMaxCycles.
func (e *Engine) Run(maxCycles uint64, done func() bool) (uint64, error) {
	if done == nil {
		return 0, errors.New("sim: Run requires a completion predicate")
	}
	start := e.cycle
	for e.cycle-start < maxCycles {
		e.Step()
		if done() {
			return e.cycle - start, nil
		}
	}
	return e.cycle - start, fmt.Errorf("%w (%d cycles)", ErrMaxCycles, maxCycles)
}

// RunFor steps the simulation for exactly n cycles.
func (e *Engine) RunFor(n uint64) {
	for i := uint64(0); i < n; i++ {
		e.Step()
	}
}

// RunEvery is Run, but evaluates the completion predicate only every stride
// cycles. Devices still tick every cycle, so simulated state is unaffected;
// only the detection of completion is delayed by up to stride-1 cycles.
// Platforms use it to keep predicate evaluation out of the per-cycle hot
// path.
func (e *Engine) RunEvery(maxCycles, stride uint64, done func() bool) (uint64, error) {
	if done == nil {
		return 0, errors.New("sim: RunEvery requires a completion predicate")
	}
	if stride == 0 {
		stride = 1
	}
	start := e.cycle
	for e.cycle-start < maxCycles {
		e.Step()
		if (e.cycle-start)%stride == 0 && done() {
			return e.cycle - start, nil
		}
	}
	if done() {
		return e.cycle - start, nil
	}
	return e.cycle - start, fmt.Errorf("%w (%d cycles)", ErrMaxCycles, maxCycles)
}
