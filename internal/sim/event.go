package sim

// The event-driven kernel. The engine partitions devices into an active
// list (sorted by registration index) and a sleep heap (an indexed binary
// min-heap ordered by (wake cycle, registration index)). Each executed
// cycle first admits every sleeper whose wake is due into the active list,
// then sweeps the list in index order, ticking each device and asking its
// post-tick NextWake: a device that stays active costs no data-structure
// work at all, and one that goes back to sleep moves to the heap. The
// per-cycle cost therefore scales with the number of awake devices — a
// steady active set touches the heap zero times per cycle — and when the
// active list empties, run's shared jump logic advances the cycle counter
// straight to the heap's earliest wake, which is exactly the skip kernel's
// all-asleep fast-forward.
//
// Correctness leans on two properties. First, the Sleeper contract (see
// engine.go) makes a reported wake w a promise that every omitted Tick in
// [now, w) would have been a no-op, so omitting them cannot change
// simulated state. Second, a device that can be stimulated by another
// device outside its own Tick — an interconnect whose master ports receive
// TryRequest calls — implements WakeSink and calls its Waker at the moment
// of stimulus; the engine then moves it back to the active list. The sorted
// sweep makes the timing come out exactly as under strict ticking: a sink
// with a higher registration index than the stimulating device is inserted
// ahead of the sweep position and ticks in the same cycle (under strict
// ticking its slot runs after the stimulator's), while a lower-indexed sink
// is inserted behind the sweep position and first ticks next cycle (under
// strict ticking its slot this cycle already ran, before the stimulus
// existed, and was a no-op). Early wakes are always safe: ticking a device
// that has nothing to do is a no-op by construction, so a conservative wake
// can never diverge from strict semantics.

// Waker is the engine-provided wake handle for one registered device. Wake
// never blocks and never allocates; outside an event-kernel run it only
// invalidates the skip kernel's wake memo (a no-op under strict ticking).
type Waker interface {
	Wake()
}

// WakeSink is implemented by devices whose earliest action can be moved
// earlier by another device's Tick — the canonical case is an interconnect
// whose ports are poked by masters via TryRequest. The engine calls
// SetWaker once at registration; the device must call Wake whenever such
// external input arrives while it may be sleeping. Purely self-timed
// devices (absolute idle deadlines, recorded replay schedules) and devices
// that never report future wakes need not implement it.
type WakeSink interface {
	SetWaker(Waker)
}

// TickSleeper is an optional fast path for the event kernel, fusing
// Device.Tick and Sleeper.NextWake into one dynamic call: TickWake(c) must
// behave exactly like Tick(c) followed by NextWake(c+1). An awake device is
// ticked and re-queried every executed cycle, so halving its dispatch cost
// measurably widens the event kernel's margin; devices that don't implement
// it simply take the two-call path.
type TickSleeper interface {
	TickWake(cycle uint64) uint64
}

// engineWaker binds a Waker to one device slot of one engine.
type engineWaker struct {
	e   *Engine
	idx int32
}

// Wake implements Waker.
func (w *engineWaker) Wake() { w.e.wakeDevice(w.idx) }

// notInHeap marks a device that is on the active list rather than in the
// sleep heap.
const notInHeap = int32(-1)

// wakeDevice handles an external-stimulus wake for device idx: it drops the
// skip kernel's memoized wake (forcing a re-query) and, inside an event
// run, moves a sleeping device back to the active list.
func (e *Engine) wakeDevice(idx int32) {
	if int(idx) < len(e.wakeMemo) {
		e.wakeMemo[idx] = 0
	}
	if !e.evLive || e.evPos[idx] == notInHeap {
		return
	}
	e.heapRemove(idx)
	e.activeInsert(idx)
}

// initEventSchedule (re)builds the active list and sleep heap from every
// device's current NextWake. It runs at the start of each event-kernel Run,
// so state changes made between runs (direct device manipulation in tests,
// programs loaded after a previous run) are always picked up. Storage is
// reused across runs; steady-state event runs allocate nothing.
func (e *Engine) initEventSchedule() {
	n := len(e.devices)
	if cap(e.evWake) < n {
		e.evWake = make([]uint64, n)
		e.evPos = make([]int32, n)
		e.evHeap = make([]int32, 0, n)
		e.evActive = make([]int32, 0, n)
	}
	e.evWake = e.evWake[:n]
	e.evPos = e.evPos[:n]
	e.evHeap = e.evHeap[:0]
	e.evActive = e.evActive[:0]
	now := e.cycle
	for i := 0; i < n; i++ {
		w := e.sleepers[i].NextWake(now)
		if w <= now {
			// Ascending i keeps the active list sorted by construction.
			e.evPos[i] = notInHeap
			e.evActive = append(e.evActive, int32(i))
			continue
		}
		e.evWake[i] = w
		e.evHeap = append(e.evHeap, int32(i))
		e.evPos[i] = int32(len(e.evHeap) - 1)
	}
	for i := int32(len(e.evHeap))/2 - 1; i >= 0; i-- {
		e.evDown(i)
	}
	e.evSweep = 0
}

// stepEvent executes one cycle under the event kernel: it admits every due
// sleeper, then ticks the active list in registration order, re-sorting
// each device into active/sleeping from its post-tick horizon. A device
// woken mid-cycle by a lower-indexed device lands ahead of the sweep and is
// picked up before the cycle ends.
func (e *Engine) stepEvent() {
	c := e.cycle
	if h := e.evHeap; len(h) != 0 && e.evWake[h[0]] <= c {
		e.admitDue(c)
	}
	devices, sleepers, fused := e.devices, e.sleepers, e.evFused
	for e.evSweep = 0; int(e.evSweep) < len(e.evActive); {
		idx := e.evActive[e.evSweep]
		var nw uint64
		if f := fused[idx]; f != nil {
			nw = f.TickWake(c)
		} else {
			devices[idx].Tick(c)
			nw = sleepers[idx].NextWake(c + 1)
		}
		if nw <= c+1 {
			e.evSweep++
			continue
		}
		e.activeRemoveAt(e.evSweep)
		e.heapPush(idx, nw)
	}
	e.cycle++
}

// admitDue moves every sleeper whose wake is due into the active list
// (out of line: the common cycle pays only the heap-top check).
func (e *Engine) admitDue(c uint64) {
	for len(e.evHeap) > 0 {
		root := e.evHeap[0]
		if e.evWake[root] > c {
			return
		}
		e.heapRemove(root)
		e.activeInsert(root)
	}
}

// eventNextWake returns the earliest cycle at which any device acts: the
// current cycle while the active list is non-empty, else the heap top (or
// WakeNever on a fully quiescent engine).
func (e *Engine) eventNextWake() uint64 {
	if len(e.evActive) > 0 {
		return e.cycle
	}
	if len(e.evHeap) == 0 {
		return WakeNever
	}
	return e.evWake[e.evHeap[0]]
}

// activeInsert places idx into the sorted active list, keeping an in-flight
// sweep consistent: an insertion at or before the sweep position shifts the
// position up so the current cycle neither skips nor re-ticks a device.
func (e *Engine) activeInsert(idx int32) {
	a := e.evActive
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e.evActive = append(a, 0)
	copy(e.evActive[lo+1:], e.evActive[lo:])
	e.evActive[lo] = idx
	if int32(lo) <= e.evSweep {
		e.evSweep++
	}
}

// activeRemoveAt drops the active-list entry at position i (the sweep
// position stays put, now pointing at the next entry).
func (e *Engine) activeRemoveAt(i int32) {
	a := e.evActive
	copy(a[i:], a[i+1:])
	e.evActive = a[:len(a)-1]
}

// heapPush files a sleeping device under its wake cycle.
func (e *Engine) heapPush(idx int32, w uint64) {
	e.evWake[idx] = w
	e.evHeap = append(e.evHeap, idx)
	p := int32(len(e.evHeap) - 1)
	e.evPos[idx] = p
	e.evUp(p)
}

// heapRemove detaches device idx from the sleep heap (marking it active).
func (e *Engine) heapRemove(idx int32) {
	p := e.evPos[idx]
	last := int32(len(e.evHeap) - 1)
	if p != last {
		e.evSwap(p, last)
	}
	e.evHeap = e.evHeap[:last]
	e.evPos[idx] = notInHeap
	if p != last {
		moved := e.evHeap[p]
		e.evUp(p)
		if e.evPos[moved] == p {
			e.evDown(p)
		}
	}
}

// evLess orders heap entries by (wake, registration index): the index
// tie-break is what keeps same-cycle admissions in registration order.
func (e *Engine) evLess(a, b int32) bool {
	wa, wb := e.evWake[a], e.evWake[b]
	return wa < wb || (wa == wb && a < b)
}

func (e *Engine) evSwap(i, j int32) {
	h := e.evHeap
	h[i], h[j] = h[j], h[i]
	e.evPos[h[i]] = i
	e.evPos[h[j]] = j
}

func (e *Engine) evUp(i int32) {
	h := e.evHeap
	for i > 0 {
		p := (i - 1) / 2
		if !e.evLess(h[i], h[p]) {
			break
		}
		e.evSwap(i, p)
		i = p
	}
}

func (e *Engine) evDown(i int32) {
	h := e.evHeap
	n := int32(len(h))
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		c := l
		if r := l + 1; r < n && e.evLess(h[r], h[l]) {
			c = r
		}
		if !e.evLess(h[c], h[i]) {
			return
		}
		e.evSwap(i, c)
		i = c
	}
}
