package sim

import (
	"errors"
	"testing"
)

// wakeSink is a WakeSink test device: it sleeps (WakeNever) until another
// device stimulates it, then runs for `runTicks` ticks, performs one unit
// of work on the last of them, and goes back to sleep.
type wakeSink struct {
	waker   Waker
	pending int
	runTicks
	ticks []uint64
	work  int
}

type runTicks struct{ n int }

func (s *wakeSink) SetWaker(w Waker) { s.waker = w }

// stimulate is called from another device's Tick (the cross-device input
// path the event kernel must not sleep through).
func (s *wakeSink) stimulate() {
	s.pending = s.n
	if s.waker != nil {
		s.waker.Wake()
	}
}

func (s *wakeSink) Tick(c uint64) {
	if s.pending == 0 {
		return
	}
	s.ticks = append(s.ticks, c)
	s.pending--
	if s.pending == 0 {
		s.work++
	}
}

func (s *wakeSink) NextWake(now uint64) uint64 {
	if s.pending > 0 {
		return now
	}
	return WakeNever
}

// stimulator pokes a wakeSink at each scheduled cycle.
type stimulator struct {
	times []uint64
	i     int
	sink  *wakeSink
}

func (p *stimulator) Tick(c uint64) {
	if p.i < len(p.times) && c == p.times[p.i] {
		p.i++
		p.sink.stimulate()
	}
}

func (p *stimulator) NextWake(now uint64) uint64 {
	if p.i >= len(p.times) {
		return WakeNever
	}
	if t := p.times[p.i]; t > now {
		return t
	}
	return now
}

func TestEventKernelEquivalence(t *testing.T) {
	times := []uint64{0, 3, 4, 100, 1000, 1001, 5000}
	for _, stride := range []uint64{1, 7, 32} {
		strict := NewEngine(Clock{})
		ps := &pulser{times: times}
		strict.Add(ps)
		ranS, errS := strict.RunEvery(100_000, stride, ps.done)

		ev := NewEngine(Clock{})
		pe := &pulser{times: times}
		ev.Add(pe)
		ev.SetKernel(KernelEvent)
		ranE, errE := ev.RunEvery(100_000, stride, pe.done)

		if ranS != ranE || strict.Cycle() != ev.Cycle() {
			t.Fatalf("stride %d: strict ran %d (cycle %d), event ran %d (cycle %d)",
				stride, ranS, strict.Cycle(), ranE, ev.Cycle())
		}
		if (errS == nil) != (errE == nil) {
			t.Fatalf("stride %d: strict err %v, event err %v", stride, errS, errE)
		}
		if ps.work != pe.work {
			t.Fatalf("stride %d: strict work %d, event work %d", stride, ps.work, pe.work)
		}
		if ev.SkippedCycles == 0 {
			t.Fatalf("stride %d: event kernel never skipped", stride)
		}
		// The event kernel ticks the pulser only at its scheduled cycles.
		if pe.ticks != len(times) {
			t.Fatalf("stride %d: event kernel ticked %d times, want %d", stride, pe.ticks, len(times))
		}
	}
}

func TestEventKernelTicksOnlyAwakeDevices(t *testing.T) {
	// One dense device keeps the engine executing every cycle; the sparse
	// device must still be ticked only at its own schedule. The skip kernel
	// cannot elide these ticks (the dense device blocks every whole-cycle
	// skip), which is exactly the mixed-load gap the event kernel closes.
	dense := make([]uint64, 1000)
	for i := range dense {
		dense[i] = uint64(i)
	}
	sparse := []uint64{0, 400, 999}

	e := NewEngine(Clock{})
	d := &pulser{times: dense}
	s := &pulser{times: sparse}
	e.Add(d)
	e.Add(s)
	e.SetKernel(KernelEvent)
	if _, err := e.Run(2000, func() bool { return d.done() && s.done() }); err != nil {
		t.Fatal(err)
	}
	if d.work != len(dense) || s.work != len(sparse) {
		t.Fatalf("work: dense %d/%d, sparse %d/%d", d.work, len(dense), s.work, len(sparse))
	}
	if s.ticks != len(sparse) {
		t.Fatalf("sparse device ticked %d times, want exactly %d", s.ticks, len(sparse))
	}
	if d.ticks != len(dense) {
		t.Fatalf("dense device ticked %d times, want exactly %d", d.ticks, len(dense))
	}
}

func TestEventKernelWakeSameCycle(t *testing.T) {
	// The stimulator registers before the sink, so under strict ticking the
	// sink's slot at the stimulus cycle runs after the stimulus: the event
	// kernel must tick the woken sink in that same cycle.
	e := NewEngine(Clock{})
	sink := &wakeSink{runTicks: runTicks{n: 3}}
	stim := &stimulator{times: []uint64{50}, sink: sink}
	e.Add(stim)
	e.Add(sink)
	e.SetKernel(KernelEvent)
	if _, err := e.Run(10_000, func() bool { return sink.work > 0 }); err != nil {
		t.Fatal(err)
	}
	want := []uint64{50, 51, 52}
	if len(sink.ticks) != len(want) {
		t.Fatalf("sink ticked at %v, want %v", sink.ticks, want)
	}
	for i, c := range want {
		if sink.ticks[i] != c {
			t.Fatalf("sink ticked at %v, want %v", sink.ticks, want)
		}
	}
}

func TestEventKernelWakeNextCycle(t *testing.T) {
	// Sink registered before the stimulator: under strict ticking the
	// sink's slot at the stimulus cycle ran before the stimulus existed, so
	// its first acting tick is the next cycle — the event kernel must match.
	e := NewEngine(Clock{})
	sink := &wakeSink{runTicks: runTicks{n: 3}}
	stim := &stimulator{times: []uint64{50}, sink: sink}
	e.Add(sink)
	e.Add(stim)
	e.SetKernel(KernelEvent)
	if _, err := e.Run(10_000, func() bool { return sink.work > 0 }); err != nil {
		t.Fatal(err)
	}
	want := []uint64{51, 52, 53}
	if len(sink.ticks) != len(want) {
		t.Fatalf("sink ticked at %v, want %v", sink.ticks, want)
	}
	for i, c := range want {
		if sink.ticks[i] != c {
			t.Fatalf("sink ticked at %v, want %v", sink.ticks, want)
		}
	}
}

func TestEventKernelRegistrationOrderWithinCycle(t *testing.T) {
	// Several devices waking at the same cycle must tick in registration
	// order — the heap's (wake, index) ordering, asserted via a shared log.
	var order []int
	e := NewEngine(Clock{})
	const n = 8
	done := 0
	for i := 0; i < n; i++ {
		i := i
		e.Add(&orderedSleeper{wake: 100, fn: func() { order = append(order, i); done++ }})
	}
	e.SetKernel(KernelEvent)
	if _, err := e.Run(1000, func() bool { return done == n }); err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("tick order %v, want registration order", order)
		}
	}
}

// orderedSleeper sleeps to a fixed cycle, runs fn once, then never wakes.
type orderedSleeper struct {
	wake uint64
	fn   func()
	ran  bool
}

func (o *orderedSleeper) Tick(c uint64) {
	if !o.ran && c >= o.wake {
		o.ran = true
		o.fn()
	}
}

func (o *orderedSleeper) NextWake(now uint64) uint64 {
	if o.ran {
		return WakeNever
	}
	if o.wake > now {
		return o.wake
	}
	return now
}

func TestEventKernelDegradesToStrict(t *testing.T) {
	e := NewEngine(Clock{})
	p := &pulser{times: []uint64{50}}
	e.Add(p)
	n := 0
	e.Add(DeviceFunc(func(uint64) { n++ })) // non-Sleeper disables the schedule
	e.SetKernel(KernelEvent)
	if _, err := e.Run(1000, p.done); err != nil {
		t.Fatal(err)
	}
	if n != 51 {
		t.Fatalf("plain device ticked %d times, want 51 (strict fallback)", n)
	}
}

func TestEventKernelLimitAndWakeNever(t *testing.T) {
	// Budget exhaustion and the frozen-forever case must land on exactly
	// the strict kernel's final cycle, for every kernel.
	for _, kernel := range []Kernel{KernelStrict, KernelSkip, KernelEvent} {
		e := NewEngine(Clock{})
		p := &pulser{times: []uint64{2}}
		e.Add(p)
		e.SetKernel(kernel)
		ran, err := e.RunEvery(500, 32, func() bool { return false })
		if !errors.Is(err, ErrMaxCycles) {
			t.Fatalf("kernel %v: err = %v", kernel, err)
		}
		if ran != 500 || e.Cycle() != 500 {
			t.Fatalf("kernel %v: ran %d, cycle %d, want 500", kernel, ran, e.Cycle())
		}
	}
}

func TestEventKernelStrideDetectionRounding(t *testing.T) {
	// Work completes at cycle 9; stride 8 → detection at relative cycle 16
	// on every kernel (see TestSkipKernelStrideDetectionRounding).
	for _, kernel := range []Kernel{KernelStrict, KernelSkip, KernelEvent} {
		e := NewEngine(Clock{})
		p := &pulser{times: []uint64{9}}
		e.Add(p)
		e.SetKernel(kernel)
		ran, err := e.RunEvery(1000, 8, p.done)
		if err != nil {
			t.Fatalf("kernel %v: %v", kernel, err)
		}
		if ran != 16 {
			t.Fatalf("kernel %v: detected after %d cycles, want 16", kernel, ran)
		}
	}
}

func TestSkipKernelWakeMemoInvalidation(t *testing.T) {
	// The skip kernel memoizes reported wakes, so a sleeping WakeSink that
	// is stimulated mid-run must have its memo dropped: without the
	// invalidation the engine would trust the stale WakeNever, jump to the
	// budget and never run the sink's pending work.
	for _, kernel := range []Kernel{KernelStrict, KernelSkip, KernelEvent} {
		e := NewEngine(Clock{})
		sink := &wakeSink{runTicks: runTicks{n: 3}}
		stim := &stimulator{times: []uint64{50}, sink: sink}
		e.Add(stim)
		e.Add(sink)
		e.SetKernel(kernel)
		ran, err := e.Run(10_000, func() bool { return sink.work > 0 })
		if err != nil {
			t.Fatalf("kernel %v: %v", kernel, err)
		}
		if sink.work != 1 || ran != 53 {
			t.Fatalf("kernel %v: work %d after %d cycles, want 1 after 53", kernel, sink.work, ran)
		}
	}
}

func TestEventKernelResumesAcrossRuns(t *testing.T) {
	// The schedule is rebuilt at each Run, so state changed between runs
	// (or a paused run) is picked up.
	e := NewEngine(Clock{})
	p := &pulser{times: []uint64{10, 500}}
	e.Add(p)
	e.SetKernel(KernelEvent)
	if _, err := e.Run(100, func() bool { return p.i >= 1 }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(1000, p.done); err != nil {
		t.Fatal(err)
	}
	if p.work != 2 || p.ticks != 2 {
		t.Fatalf("work %d ticks %d, want 2 and 2", p.work, p.ticks)
	}
}
