package sim

import (
	"errors"
	"fmt"
)

// Phase identifies one window of the phased measurement methodology: a
// warmup window whose statistics are discarded (cold caches, empty
// interconnect pipelines), one or more measurement epochs whose statistics
// are the run's result, and a drain window that lets in-flight work finish
// without polluting the measured epochs.
type Phase int

const (
	// PhaseWarmup is the discarded lead-in window.
	PhaseWarmup Phase = iota
	// PhaseMeasure is the measured steady-state window (one or more epochs).
	PhaseMeasure
	// PhaseDrain is the post-measurement completion window.
	PhaseDrain
)

func (p Phase) String() string {
	switch p {
	case PhaseWarmup:
		return "warmup"
	case PhaseMeasure:
		return "measure"
	case PhaseDrain:
		return "drain"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Phases configures a phased run. The zero value (no warmup, one epoch
// spanning the whole budget, no drain) makes RunPhased behave exactly like
// RunEvery — the compatibility anchor the sweep property tests pin.
//
// Phase boundaries are forced wake points: each window is executed as its
// own bounded kernel run, and the skip and event kernels clamp their cycle
// jumps at the window end exactly as they clamp at a cycle budget. All
// three kernels therefore land on byte-identical boundary cycles, and a
// boundary callback observes identical device state regardless of kernel —
// the property the sweep's phased differential tests assert.
type Phases struct {
	// Warmup is the warmup window length in cycles (0 = none).
	Warmup uint64
	// Epoch is the measurement epoch length in cycles. 0 means a single
	// open epoch running to workload completion (or the cycle budget).
	Epoch uint64
	// MaxEpochs caps the number of measurement epochs. 0 with Epoch > 0
	// means unbounded (the budget or the AfterEpoch callback stops the
	// run); 0 with Epoch == 0 means exactly one open epoch.
	MaxEpochs int
	// Drain is the maximum post-measurement completion window (0 = none).
	// The drain runs only when the workload did not already complete.
	Drain uint64
	// Stride is the completion-predicate evaluation stride (default 1),
	// forwarded to the underlying RunEvery windows.
	Stride uint64

	// AfterWarmup is called once at the warmup/measure boundary (also when
	// Warmup is 0). Measurement code uses it to settle and reset the stats
	// registry so warmup traffic never pollutes epoch statistics.
	AfterWarmup func(now uint64)
	// AfterEpoch is called at the end of every measurement epoch with the
	// epoch index and the epoch's [start, end) cycle window. Returning
	// false stops measurement after this epoch (adaptive stopping); the
	// callback runs even for the final, possibly partial, epoch in which
	// the workload completed.
	AfterEpoch func(epoch int, start, end uint64) bool
}

// PhasedResult reports how a phased run unfolded, in simulated state only.
type PhasedResult struct {
	// WarmupCycles, MeasureCycles and DrainCycles are the executed window
	// lengths.
	WarmupCycles  uint64
	MeasureCycles uint64
	DrainCycles   uint64
	// Epochs is the number of measurement epochs executed.
	Epochs int
	// Completed reports whether the completion predicate became true.
	Completed bool
	// CompletedIn is the phase in which the predicate fired (valid only
	// when Completed).
	CompletedIn Phase
}

// RunPhased executes the warmup → measure → drain methodology: a warmup
// window, then measurement epochs until the epoch cap, the AfterEpoch
// callback, the workload (done) or the cycle budget stops them, then — if
// the workload has not completed — a bounded drain window.
//
// maxCycles budgets warmup plus measurement; Drain has its own budget. The
// returned error wraps ErrMaxCycles only when the budget truncated the
// measurement plan: an open-loop run that measures its full epoch plan
// without the workload ever completing returns nil (Completed reports the
// difference). A drain window that ends without completion is likewise not
// an error.
func (e *Engine) RunPhased(p Phases, maxCycles uint64, done func() bool) (PhasedResult, error) {
	var res PhasedResult
	if done == nil {
		return res, fmt.Errorf("sim: RunPhased requires a completion predicate")
	}
	stride := p.Stride
	if stride == 0 {
		stride = 1
	}
	remaining := maxCycles

	if p.Warmup > 0 {
		win := min(p.Warmup, remaining)
		n, err := e.run(win, stride, done)
		res.WarmupCycles = n
		remaining -= n
		if err != nil && !errors.Is(err, ErrMaxCycles) {
			// A watchdog violation (or any non-budget failure) is not
			// window exhaustion: propagate it immediately.
			return res, err
		}
		if err == nil {
			res.Completed = true
			res.CompletedIn = PhaseWarmup
		} else if win < p.Warmup {
			// The budget truncated the warmup window itself.
			return res, fmt.Errorf("sim: phased warmup truncated: %w (%d cycles)", ErrMaxCycles, maxCycles)
		}
	}
	if p.AfterWarmup != nil {
		p.AfterWarmup(e.cycle)
	}
	if res.Completed {
		return res, nil
	}

	maxEpochs := p.MaxEpochs
	if maxEpochs <= 0 && p.Epoch == 0 {
		maxEpochs = 1
	}
	for epoch := 0; maxEpochs <= 0 || epoch < maxEpochs; epoch++ {
		if remaining == 0 {
			return res, fmt.Errorf("sim: phased measurement truncated after %d epochs: %w (%d cycles)",
				res.Epochs, ErrMaxCycles, maxCycles)
		}
		win := remaining
		if p.Epoch > 0 && p.Epoch < win {
			win = p.Epoch
		}
		start := e.cycle
		n, err := e.run(win, stride, done)
		remaining -= n
		res.MeasureCycles += n
		res.Epochs++
		if err != nil && !errors.Is(err, ErrMaxCycles) {
			return res, err
		}
		finished := err == nil
		more := true
		if p.AfterEpoch != nil {
			more = p.AfterEpoch(epoch, start, e.cycle)
		}
		if finished {
			res.Completed = true
			res.CompletedIn = PhaseMeasure
			return res, nil
		}
		if !more {
			break
		}
		if p.Epoch == 0 {
			// A single open epoch that neither completed nor exhausted its
			// window cannot happen (run only returns early on done); an
			// exhausted open window is a truncated plan.
			return res, fmt.Errorf("sim: phased measurement truncated after %d epochs: %w (%d cycles)",
				res.Epochs, ErrMaxCycles, maxCycles)
		}
		if win < p.Epoch {
			// The budget cut this epoch short with more epochs wanted.
			return res, fmt.Errorf("sim: phased measurement truncated after %d epochs: %w (%d cycles)",
				res.Epochs, ErrMaxCycles, maxCycles)
		}
	}

	if p.Drain > 0 {
		n, err := e.run(p.Drain, stride, done)
		res.DrainCycles = n
		if err != nil && !errors.Is(err, ErrMaxCycles) {
			return res, err
		}
		if err == nil {
			res.Completed = true
			res.CompletedIn = PhaseDrain
		}
	}
	return res, nil
}
