package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// timedDone is a sleeper that does nothing until cycle at, then flips its
// done flag — the minimal workload for phase-boundary tests.
type timedDone struct {
	at   uint64
	done bool
}

func (d *timedDone) Tick(c uint64) {
	if c >= d.at {
		d.done = true
	}
}

func (d *timedDone) NextWake(now uint64) uint64 {
	if d.done {
		return WakeNever
	}
	if d.at > now {
		return d.at
	}
	return now
}

// phaseTrace records every boundary callback of one phased run.
func phaseTrace(t *testing.T, kernel Kernel, p Phases, maxCycles, doneAt uint64) (PhasedResult, []string) {
	t.Helper()
	e := NewEngine(Clock{})
	d := &timedDone{at: doneAt}
	e.Add(d)
	e.SetKernel(kernel)
	var trace []string
	p.AfterWarmup = func(now uint64) { trace = append(trace, fmt.Sprintf("warmup@%d", now)) }
	p.AfterEpoch = func(epoch int, start, end uint64) bool {
		trace = append(trace, fmt.Sprintf("epoch%d[%d,%d)", epoch, start, end))
		return true
	}
	res, err := e.RunPhased(p, maxCycles, func() bool { return d.done })
	if err != nil {
		t.Fatalf("kernel %v: %v", kernel, err)
	}
	return res, trace
}

// TestRunPhasedBoundariesKernelIdentical pins the forced-wake-point
// contract: warmup and epoch boundaries land on byte-identical cycles
// under the strict, skip and event kernels, even when the only device
// sleeps across every boundary.
func TestRunPhasedBoundariesKernelIdentical(t *testing.T) {
	p := Phases{Warmup: 100, Epoch: 150, MaxEpochs: 3, Stride: 32}
	wantRes, wantTrace := phaseTrace(t, KernelStrict, p, 10_000, 5_000)
	want := []string{"warmup@100", "epoch0[100,250)", "epoch1[250,400)", "epoch2[400,550)"}
	if !reflect.DeepEqual(wantTrace, want) {
		t.Fatalf("strict boundaries = %v, want %v", wantTrace, want)
	}
	for _, k := range []Kernel{KernelSkip, KernelEvent} {
		res, trace := phaseTrace(t, k, p, 10_000, 5_000)
		if !reflect.DeepEqual(trace, wantTrace) {
			t.Fatalf("kernel %v boundaries %v != strict %v", k, trace, wantTrace)
		}
		if res != wantRes {
			t.Fatalf("kernel %v result %+v != strict %+v", k, res, wantRes)
		}
	}
	if wantRes.Completed || wantRes.Epochs != 3 || wantRes.WarmupCycles != 100 || wantRes.MeasureCycles != 450 {
		t.Fatalf("phased result = %+v", wantRes)
	}
}

func TestRunPhasedCompletesInWarmup(t *testing.T) {
	for _, k := range []Kernel{KernelStrict, KernelSkip, KernelEvent} {
		res, trace := phaseTrace(t, k, Phases{Warmup: 500, Epoch: 100, MaxEpochs: 4}, 10_000, 40)
		if !res.Completed || res.CompletedIn != PhaseWarmup || res.Epochs != 0 {
			t.Fatalf("kernel %v: %+v", k, res)
		}
		// The warmup boundary callback still runs so measurement state is
		// well-defined, but no epochs follow.
		if len(trace) != 1 {
			t.Fatalf("kernel %v: trace %v", k, trace)
		}
	}
}

func TestRunPhasedCompletesMidEpoch(t *testing.T) {
	for _, k := range []Kernel{KernelStrict, KernelSkip, KernelEvent} {
		res, trace := phaseTrace(t, k, Phases{Warmup: 100, Epoch: 200, MaxEpochs: 10, Stride: 1}, 10_000, 450)
		if !res.Completed || res.CompletedIn != PhaseMeasure {
			t.Fatalf("kernel %v: %+v", k, res)
		}
		// Epochs at [100,300), [300,451): completion at cycle 450 is
		// detected after executing cycle 450 (stride 1), ending the final
		// partial epoch at 451.
		want := []string{"warmup@100", "epoch0[100,300)", "epoch1[300,451)"}
		if !reflect.DeepEqual(trace, want) {
			t.Fatalf("kernel %v: trace %v, want %v", k, trace, want)
		}
	}
}

func TestRunPhasedCompletesInDrain(t *testing.T) {
	e := NewEngine(Clock{})
	d := &timedDone{at: 900}
	e.Add(d)
	res, err := e.RunPhased(Phases{Warmup: 100, Epoch: 200, MaxEpochs: 2, Drain: 5_000},
		10_000, func() bool { return d.done })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.CompletedIn != PhaseDrain || res.Epochs != 2 {
		t.Fatalf("%+v", res)
	}
	if res.DrainCycles == 0 || res.DrainCycles > 5_000 {
		t.Fatalf("drain cycles = %d", res.DrainCycles)
	}
}

func TestRunPhasedDrainExhaustedIsNotAnError(t *testing.T) {
	e := NewEngine(Clock{})
	d := &timedDone{at: 1 << 40}
	e.Add(d)
	res, err := e.RunPhased(Phases{Epoch: 100, MaxEpochs: 2, Drain: 50},
		10_000, func() bool { return d.done })
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.DrainCycles != 50 {
		t.Fatalf("%+v", res)
	}
}

func TestRunPhasedBudgetTruncationIsAnError(t *testing.T) {
	e := NewEngine(Clock{})
	d := &timedDone{at: 1 << 40}
	e.Add(d)
	// Plan wants 4×100-cycle epochs after 50 warmup; budget covers two.
	_, err := e.RunPhased(Phases{Warmup: 50, Epoch: 100, MaxEpochs: 4},
		250, func() bool { return d.done })
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
}

func TestRunPhasedAfterEpochStops(t *testing.T) {
	e := NewEngine(Clock{})
	d := &timedDone{at: 1 << 40}
	e.Add(d)
	p := Phases{Epoch: 100, MaxEpochs: 10}
	p.AfterEpoch = func(epoch int, _, _ uint64) bool { return epoch < 2 }
	res, err := e.RunPhased(p, 10_000, func() bool { return d.done })
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 3 {
		t.Fatalf("epochs = %d, want 3 (controller stop after the third)", res.Epochs)
	}
}

// TestRunPhasedZeroConfigMatchesRunEvery pins the compatibility anchor:
// the zero phase configuration is exactly one open measurement window, so
// it must execute the same cycles as a plain RunEvery.
func TestRunPhasedZeroConfigMatchesRunEvery(t *testing.T) {
	for _, k := range []Kernel{KernelStrict, KernelSkip, KernelEvent} {
		run := func(phased bool) uint64 {
			e := NewEngine(Clock{})
			d := &timedDone{at: 777}
			e.Add(d)
			e.SetKernel(k)
			if phased {
				if _, err := e.RunPhased(Phases{Stride: 32}, 10_000, func() bool { return d.done }); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := e.RunEvery(10_000, 32, func() bool { return d.done }); err != nil {
					t.Fatal(err)
				}
			}
			return e.Cycle()
		}
		if a, b := run(true), run(false); a != b {
			t.Fatalf("kernel %v: phased ends at %d, RunEvery at %d", k, a, b)
		}
	}
}
