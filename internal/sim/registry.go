package sim

import (
	"fmt"
	"sort"
)

// Counter is a zero-allocation monotonic event counter. Devices own their
// counters as plain struct fields (the hot path is a single integer add)
// and register the addresses with a Registry once at construction; the
// registry then drives epoch Reset/Snapshot at measurement-phase
// boundaries without the devices knowing phases exist.
//
// The underlying type is uint64, so legacy code that exposed raw counter
// fields (per-master grant counts, instruction counters) keeps compiling
// with ++ / += and untyped-constant comparisons.
type Counter uint64

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { *c++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return uint64(*c) }

// Reset zeroes the counter (epoch boundary).
func (c *Counter) Reset() { *c = 0 }

// StatsSource is implemented by devices that export metrics through a
// Registry. RegisterStats must be called once, after the device's
// topology is final (all ports attached, all slaves mapped): registration
// captures metric addresses, so growing a counter slice afterwards would
// orphan them.
type StatsSource interface {
	RegisterStats(r *Registry)
}

// Registry is the unified stats registry of one simulated system: every
// device registers its counters and histograms once, under a
// slash-separated hierarchical name, and measurement code manipulates the
// whole population at deterministic phase boundaries — Sync to settle
// lazily-credited accounting, Snapshot to capture an epoch, Reset to open
// the next one. The registry is strictly observational: resetting or
// snapshotting never changes simulated behaviour, only what the metrics
// report.
//
// Registration (name strings, map inserts) allocates; the metric hot
// paths (Counter.Add, Histogram.Observe) never do — the registry holds
// addresses of device-owned metrics and touches them only at boundaries.
type Registry struct {
	prefix string
	d      *registryData
}

type registryData struct {
	counters []regMetric[*Counter]
	hists    []regMetric[*Histogram]
	names    map[string]struct{}
	syncs    []func(now uint64)
}

type regMetric[T any] struct {
	name string
	m    T
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{d: &registryData{names: make(map[string]struct{})}}
}

// Scope returns a view of the registry that prefixes every registered
// name with prefix + "/". Scoped views share the underlying registry:
// Sync/Reset/Snapshot on any view operate on the whole population.
func (r *Registry) Scope(prefix string) *Registry {
	return &Registry{prefix: r.prefix + prefix + "/", d: r.d}
}

func (r *Registry) claim(name string) string {
	full := r.prefix + name
	if _, dup := r.d.names[full]; dup {
		panic(fmt.Sprintf("sim: duplicate metric registration %q", full))
	}
	r.d.names[full] = struct{}{}
	return full
}

// RegisterCounter registers a device-owned counter under name.
// Registering the same full name twice panics (a wiring bug).
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if c == nil {
		panic("sim: RegisterCounter(nil)")
	}
	r.d.counters = append(r.d.counters, regMetric[*Counter]{name: r.claim(name), m: c})
}

// RegisterHistogram registers a device-owned histogram under name.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	if h == nil {
		panic("sim: RegisterHistogram(nil)")
	}
	r.d.hists = append(r.d.hists, regMetric[*Histogram]{name: r.claim(name), m: h})
}

// OnSync registers a settlement hook. Devices that account lazily in bulk
// (the bus's skip-gap busy/idle credit and wait-cycle credit) register one
// so that Sync(now) can fold the pending tail into the counters before a
// boundary snapshot or reset — otherwise cycles belonging to one epoch
// would be credited into the next.
func (r *Registry) OnSync(fn func(now uint64)) {
	if fn == nil {
		panic("sim: OnSync(nil)")
	}
	r.d.syncs = append(r.d.syncs, fn)
}

// Sync settles all lazily-credited accounting through cycle now-1 (the
// last completed cycle). Call it at every phase boundary before Snapshot
// or Reset, with now = the engine's current cycle.
func (r *Registry) Sync(now uint64) {
	for _, fn := range r.d.syncs {
		fn(now)
	}
}

// Reset zeroes every registered metric, opening a new measurement epoch.
// Purely observational: device behaviour never depends on metric values.
func (r *Registry) Reset() {
	for _, c := range r.d.counters {
		c.m.Reset()
	}
	for _, h := range r.d.hists {
		h.m.Reset()
	}
}

// Counters returns the number of registered counters (diagnostics).
func (r *Registry) Counters() int { return len(r.d.counters) }

// Histograms returns the number of registered histograms (diagnostics).
func (r *Registry) Histograms() int { return len(r.d.hists) }

// RegistrySnapshot is an immutable, serialisable capture of every
// registered metric. Map keys serialise in sorted order (encoding/json),
// so two identical simulations snapshot to identical bytes.
type RegistrySnapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric's current value. Callers
// measuring an epoch should Sync first.
func (r *Registry) Snapshot() RegistrySnapshot {
	s := RegistrySnapshot{Counters: r.CounterSnapshot()}
	if len(r.d.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.d.hists))
		for _, h := range r.d.hists {
			s.Histograms[h.name] = h.m.Snapshot()
		}
	}
	return s
}

// CounterSnapshot captures only the registered counters, without the
// histogram copies a full Snapshot makes — the per-epoch breakdown path
// runs at every epoch boundary and wants just the counter map.
func (r *Registry) CounterSnapshot() map[string]uint64 {
	if len(r.d.counters) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(r.d.counters))
	for _, c := range r.d.counters {
		out[c.name] = c.m.Value()
	}
	return out
}

// CounterNames returns the registered counter names in sorted order.
func (r *Registry) CounterNames() []string {
	names := make([]string, 0, len(r.d.counters))
	for _, c := range r.d.counters {
		names = append(names, c.name)
	}
	sort.Strings(names)
	return names
}
