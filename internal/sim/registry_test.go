package sim

import (
	"math"
	"testing"
)

func TestRegistryRegisterSnapshotReset(t *testing.T) {
	r := NewRegistry()
	var c Counter
	h := NewLatencyHistogram()
	r.RegisterCounter("txns", &c)
	r.RegisterHistogram("lat", h)

	c.Add(3)
	h.Observe(10)
	h.Observe(20)

	snap := r.Snapshot()
	if snap.Counters["txns"] != 3 {
		t.Fatalf("snapshot counter = %d, want 3", snap.Counters["txns"])
	}
	if hs := snap.Histograms["lat"]; hs.Count != 2 || hs.Sum != 30 || hs.Max != 20 || hs.Mean != 15 {
		t.Fatalf("snapshot histogram = %+v", hs)
	}

	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatal("Reset must zero every registered metric")
	}
	// The device-owned handles stay live after a reset.
	c.Inc()
	h.Observe(5)
	if c.Value() != 1 || h.Count() != 1 {
		t.Fatal("metric handles must survive Reset")
	}
}

func TestRegistryScope(t *testing.T) {
	r := NewRegistry()
	var a, b Counter
	r.Scope("bus").RegisterCounter("grants", &a)
	r.Scope("master0").Scope("port").RegisterCounter("grants", &b)
	a.Add(1)
	b.Add(2)
	snap := r.Snapshot()
	if snap.Counters["bus/grants"] != 1 || snap.Counters["master0/port/grants"] != 2 {
		t.Fatalf("scoped names wrong: %v", snap.Counters)
	}
	// Reset through a scoped view operates on the whole population.
	r.Scope("bus").Reset()
	if a.Value() != 0 || b.Value() != 0 {
		t.Fatal("scoped Reset must reset the shared population")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	var c, d Counter
	r.RegisterCounter("x", &c)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.RegisterCounter("x", &d)
}

func TestRegistrySyncHooks(t *testing.T) {
	r := NewRegistry()
	var got []uint64
	r.OnSync(func(now uint64) { got = append(got, now) })
	r.Scope("dev").OnSync(func(now uint64) { got = append(got, now+100) })
	r.Sync(7)
	if len(got) != 2 || got[0] != 7 || got[1] != 107 {
		t.Fatalf("sync hooks ran as %v", got)
	}
}

// TestHistogramEmptySnapshot pins the empty-histogram guard: snapshot math
// must report a zero mean, never NaN, for a histogram that observed
// nothing — including one emptied by an epoch Reset.
func TestHistogramEmptySnapshot(t *testing.T) {
	h := NewLatencyHistogram()
	snap := h.Snapshot()
	if snap.Mean != 0 || math.IsNaN(snap.Mean) {
		t.Fatalf("empty histogram snapshot mean = %v, want 0", snap.Mean)
	}
	if snap.Count != 0 || snap.Sum != 0 || snap.Max != 0 {
		t.Fatalf("empty histogram snapshot = %+v", snap)
	}
	h.Observe(42)
	h.Reset()
	snap = h.Snapshot()
	if snap.Mean != 0 || math.IsNaN(snap.Mean) {
		t.Fatalf("reset histogram snapshot mean = %v, want 0", snap.Mean)
	}
	if h.Mean() != 0 {
		t.Fatalf("reset histogram mean = %v, want 0", h.Mean())
	}
}

func TestHistogramResetKeepsBuckets(t *testing.T) {
	h := NewHistogram(10, 100)
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	h.Reset()
	bounds, counts := h.Buckets()
	if len(bounds) != 2 || len(counts) != 3 {
		t.Fatalf("bucket shape changed after reset: %v %v", bounds, counts)
	}
	for i, c := range counts {
		if c != 0 {
			t.Fatalf("bucket %d = %d after reset", i, c)
		}
	}
	h.Observe(50)
	if _, counts = h.Buckets(); counts[1] != 1 {
		t.Fatal("histogram must stay usable after reset")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(10, 100)
	b := NewHistogram(10, 100)
	a.Observe(5)
	a.Observe(50)
	b.Observe(500)
	a.Merge(b)
	if a.Count() != 3 || a.Sum() != 555 || a.Max() != 500 {
		t.Fatalf("merged histogram count=%d sum=%d max=%d", a.Count(), a.Sum(), a.Max())
	}
	_, counts := a.Buckets()
	want := []uint64{1, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("merged counts = %v, want %v", counts, want)
		}
	}
	// Merging an empty histogram into an empty one stays mean 0, not NaN.
	c, d := NewHistogram(10), NewHistogram(10)
	c.Merge(d)
	if m := c.Snapshot().Mean; m != 0 || math.IsNaN(m) {
		t.Fatalf("empty merge mean = %v", m)
	}
}

func TestHistogramMergeBoundsMismatchPanics(t *testing.T) {
	a := NewHistogram(10, 100)
	b := NewHistogram(10, 200)
	defer func() {
		if recover() == nil {
			t.Fatal("merging different bounds must panic")
		}
	}()
	a.Merge(b)
}
