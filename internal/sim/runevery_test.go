package sim

import (
	"errors"
	"testing"
)

func TestRunEveryStrideDetection(t *testing.T) {
	e := NewEngine(Clock{})
	n := 0
	e.Add(DeviceFunc(func(uint64) { n++ }))
	// Condition true after 10 cycles, stride 8 → detected at cycle 16.
	ran, err := e.RunEvery(1000, 8, func() bool { return n >= 10 })
	if err != nil {
		t.Fatal(err)
	}
	if ran != 16 {
		t.Fatalf("detected after %d cycles, want 16 (stride rounding)", ran)
	}
}

func TestRunEveryChecksFinalCycle(t *testing.T) {
	// The predicate is evaluated after the last budgeted cycle even when
	// it does not fall on a stride boundary.
	e := NewEngine(Clock{})
	n := 0
	e.Add(DeviceFunc(func(uint64) { n++ }))
	ran, err := e.RunEvery(10, 64, func() bool { return n >= 10 })
	if err != nil {
		t.Fatalf("final-cycle check missed: %v", err)
	}
	if ran != 10 {
		t.Fatalf("ran %d", ran)
	}
}

func TestRunEveryLimit(t *testing.T) {
	e := NewEngine(Clock{})
	_, err := e.RunEvery(20, 4, func() bool { return false })
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunEveryZeroStride(t *testing.T) {
	e := NewEngine(Clock{})
	n := 0
	e.Add(DeviceFunc(func(uint64) { n++ }))
	ran, err := e.RunEvery(100, 0, func() bool { return n >= 3 })
	if err != nil || ran != 3 {
		t.Fatalf("zero stride should behave like 1: ran=%d err=%v", ran, err)
	}
}

func TestRunEveryNilPredicate(t *testing.T) {
	e := NewEngine(Clock{})
	if _, err := e.RunEvery(10, 1, nil); err == nil {
		t.Fatal("nil predicate should error")
	}
}

func TestDevicesCount(t *testing.T) {
	e := NewEngine(Clock{})
	if e.Devices() != 0 {
		t.Fatal("fresh engine has devices")
	}
	e.Add(DeviceFunc(func(uint64) {}))
	e.Add(DeviceFunc(func(uint64) {}))
	if e.Devices() != 2 {
		t.Fatalf("Devices() = %d", e.Devices())
	}
}
