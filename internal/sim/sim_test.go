package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

type recorder struct {
	id    int
	order *[]int
	ticks int
}

func (r *recorder) Tick(cycle uint64) {
	*r.order = append(*r.order, r.id)
	r.ticks++
}

func TestEngineTickOrderIsRegistrationOrder(t *testing.T) {
	e := NewEngine(Clock{})
	var order []int
	for i := 0; i < 5; i++ {
		e.Add(&recorder{id: i, order: &order})
	}
	e.Step()
	want := []int{0, 1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("got %d ticks, want %d", len(order), len(want))
	}
	for i, id := range want {
		if order[i] != id {
			t.Fatalf("tick order %v, want %v", order, want)
		}
	}
}

func TestEngineStepAdvancesCycle(t *testing.T) {
	e := NewEngine(Clock{})
	if e.Cycle() != 0 {
		t.Fatalf("initial cycle = %d, want 0", e.Cycle())
	}
	e.RunFor(7)
	if e.Cycle() != 7 {
		t.Fatalf("cycle after RunFor(7) = %d, want 7", e.Cycle())
	}
}

func TestEngineDeviceSeesCurrentCycle(t *testing.T) {
	e := NewEngine(Clock{})
	var seen []uint64
	e.Add(DeviceFunc(func(c uint64) { seen = append(seen, c) }))
	e.RunFor(3)
	for i, c := range []uint64{0, 1, 2} {
		if seen[i] != c {
			t.Fatalf("device saw cycles %v, want [0 1 2]", seen)
		}
	}
}

func TestEngineRunStopsOnPredicate(t *testing.T) {
	e := NewEngine(Clock{})
	n := 0
	e.Add(DeviceFunc(func(uint64) { n++ }))
	ran, err := e.Run(1000, func() bool { return n >= 10 })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 10 {
		t.Fatalf("ran %d cycles, want 10", ran)
	}
}

func TestEngineRunHitsLimit(t *testing.T) {
	e := NewEngine(Clock{})
	ran, err := e.Run(25, func() bool { return false })
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	if ran != 25 {
		t.Fatalf("ran %d cycles, want 25", ran)
	}
}

func TestEngineRunNilPredicate(t *testing.T) {
	e := NewEngine(Clock{})
	if _, err := e.Run(1, nil); err == nil {
		t.Fatal("Run(nil) should error")
	}
}

func TestEngineAddNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(nil) should panic")
		}
	}()
	NewEngine(Clock{}).Add(nil)
}

func TestClockDefaults(t *testing.T) {
	e := NewEngine(Clock{})
	if got := e.Clock().PeriodNS; got != 5 {
		t.Fatalf("default period = %d ns, want 5", got)
	}
}

func TestClockConversionPaperExample(t *testing.T) {
	// The paper: first event at 55 ns is the 11th (55/5) cycle.
	c := DefaultClock
	if got := c.Cycles(55); got != 11 {
		t.Fatalf("Cycles(55ns) = %d, want 11", got)
	}
	if got := c.NS(11); got != 55 {
		t.Fatalf("NS(11) = %d, want 55", got)
	}
}

func TestClockRoundTripProperty(t *testing.T) {
	c := Clock{PeriodNS: 5}
	f := func(cycle uint32) bool {
		return c.Cycles(c.NS(uint64(cycle))) == uint64(cycle)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset counter = %d", c.Value())
	}
	// The underlying-uint64 compatibility contract: ++ and untyped-constant
	// comparisons keep working on exposed counter fields.
	c++
	if c != 1 {
		t.Fatalf("c = %d after ++", c)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 100)
	for _, v := range []uint64{0, 9, 10, 99, 100, 5000} {
		h.Observe(v)
	}
	_, counts := h.Buckets()
	want := []uint64{2, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", counts, want)
		}
	}
	if h.Count() != 6 || h.Max() != 5000 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	if h.Sum() != 0+9+10+99+100+5000 {
		t.Fatalf("sum=%d", h.Sum())
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(10)
	if h.Mean() != 0 {
		t.Fatal("empty histogram mean should be 0")
	}
	h.Observe(4)
	h.Observe(6)
	if h.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", h.Mean())
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds should panic")
		}
	}()
	NewHistogram(10, 5)
}

func TestHistogramObserveProperty(t *testing.T) {
	// Total of bucket counts always equals number of observations.
	f := func(vals []uint16) bool {
		h := NewHistogram(16, 256, 4096)
		var sum uint64
		for _, v := range vals {
			h.Observe(uint64(v))
			sum += uint64(v)
		}
		_, counts := h.Buckets()
		var total uint64
		for _, c := range counts {
			total += c
		}
		return total == uint64(len(vals)) && h.Sum() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
