package sim

import (
	"errors"
	"testing"
)

// pulser is a Sleeper test device that does work only at scheduled cycles.
type pulser struct {
	times []uint64
	i     int
	work  int
	ticks int
}

func (p *pulser) Tick(c uint64) {
	p.ticks++
	if p.i < len(p.times) && c == p.times[p.i] {
		p.work++
		p.i++
	}
}

func (p *pulser) NextWake(now uint64) uint64 {
	if p.i >= len(p.times) {
		return WakeNever
	}
	if t := p.times[p.i]; t > now {
		return t
	}
	return now
}

func (p *pulser) done() bool { return p.i >= len(p.times) }

func TestSkipKernelEquivalence(t *testing.T) {
	times := []uint64{0, 3, 4, 100, 1000, 1001, 5000}
	for _, stride := range []uint64{1, 7, 32} {
		strict := NewEngine(Clock{})
		ps := &pulser{times: times}
		strict.Add(ps)
		ranS, errS := strict.RunEvery(100_000, stride, ps.done)

		skip := NewEngine(Clock{})
		pk := &pulser{times: times}
		skip.Add(pk)
		skip.SetKernel(KernelSkip)
		ranK, errK := skip.RunEvery(100_000, stride, pk.done)

		if ranS != ranK || strict.Cycle() != skip.Cycle() {
			t.Fatalf("stride %d: strict ran %d (cycle %d), skip ran %d (cycle %d)",
				stride, ranS, strict.Cycle(), ranK, skip.Cycle())
		}
		if (errS == nil) != (errK == nil) {
			t.Fatalf("stride %d: strict err %v, skip err %v", stride, errS, errK)
		}
		if ps.work != pk.work {
			t.Fatalf("stride %d: strict work %d, skip work %d", stride, ps.work, pk.work)
		}
		if skip.SkippedCycles == 0 {
			t.Fatalf("stride %d: skip kernel never skipped", stride)
		}
		if pk.ticks >= ps.ticks {
			t.Fatalf("stride %d: skip kernel ticked %d >= strict %d", stride, pk.ticks, ps.ticks)
		}
	}
}

func TestSkipKernelLimitEquivalence(t *testing.T) {
	// A device that sleeps forever without the predicate holding must still
	// exhaust the budget at exactly the strict kernel's final cycle.
	for _, kernel := range []Kernel{KernelStrict, KernelSkip} {
		e := NewEngine(Clock{})
		p := &pulser{times: []uint64{2}}
		e.Add(p)
		e.SetKernel(kernel)
		ran, err := e.RunEvery(500, 32, func() bool { return false })
		if !errors.Is(err, ErrMaxCycles) {
			t.Fatalf("kernel %v: err = %v", kernel, err)
		}
		if ran != 500 || e.Cycle() != 500 {
			t.Fatalf("kernel %v: ran %d, cycle %d, want 500", kernel, ran, e.Cycle())
		}
	}
}

func TestSkipKernelFiniteWakeBeyondBudget(t *testing.T) {
	// Next wake beyond the budget: the run must fail at the budget, not at
	// the wake cycle.
	e := NewEngine(Clock{})
	p := &pulser{times: []uint64{0, 10_000}}
	e.Add(p)
	e.SetKernel(KernelSkip)
	ran, err := e.Run(100, p.done)
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v", err)
	}
	if ran != 100 || e.Cycle() != 100 {
		t.Fatalf("ran %d, cycle %d, want 100", ran, e.Cycle())
	}
}

func TestSkipRequiresAllSleepers(t *testing.T) {
	e := NewEngine(Clock{})
	p := &pulser{times: []uint64{50}}
	e.Add(p)
	if !e.CanSkip() {
		t.Fatal("all-Sleeper engine should be skippable")
	}
	n := 0
	e.Add(DeviceFunc(func(uint64) { n++ }))
	if e.CanSkip() {
		t.Fatal("non-Sleeper device should disable skipping")
	}
	e.SetKernel(KernelSkip)
	if _, err := e.Run(1000, p.done); err != nil {
		t.Fatal(err)
	}
	// Strict fallback: the plain device saw every cycle.
	if n != 51 {
		t.Fatalf("plain device ticked %d times, want 51 (strict fallback)", n)
	}
}

func TestSkipKernelStrideDetectionRounding(t *testing.T) {
	// Work completes at cycle 9 (detected state after the tick at cycle 9,
	// i.e. engine cycle 10); stride 8 → strict detects at relative cycle 16.
	// The skip kernel must report the identical detection cycle.
	for _, kernel := range []Kernel{KernelStrict, KernelSkip} {
		e := NewEngine(Clock{})
		p := &pulser{times: []uint64{9}}
		e.Add(p)
		e.SetKernel(kernel)
		ran, err := e.RunEvery(1000, 8, p.done)
		if err != nil {
			t.Fatalf("kernel %v: %v", kernel, err)
		}
		if ran != 16 {
			t.Fatalf("kernel %v: detected after %d cycles, want 16", kernel, ran)
		}
	}
}

func TestRunEverySingleEvaluationPerBoundary(t *testing.T) {
	// done() must be evaluated exactly once per stride boundary: when the
	// budget's final cycle lands on a boundary, the old post-loop check
	// re-evaluated it a second time.
	e := NewEngine(Clock{})
	e.Add(DeviceFunc(func(uint64) {}))
	evals := 0
	_, err := e.RunEvery(20, 4, func() bool { evals++; return false })
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v", err)
	}
	if evals != 5 {
		t.Fatalf("done() evaluated %d times, want 5 (20 cycles / stride 4)", evals)
	}
}

func TestRunEveryStrideLargerThanBudget(t *testing.T) {
	// stride > maxCycles: no in-loop boundary is ever reached, so the
	// post-loop check must evaluate the predicate exactly once.
	e := NewEngine(Clock{})
	n := 0
	e.Add(DeviceFunc(func(uint64) { n++ }))
	evals := 0
	ran, err := e.RunEvery(10, 64, func() bool { evals++; return n >= 10 })
	if err != nil {
		t.Fatalf("final-cycle check missed: %v", err)
	}
	if ran != 10 {
		t.Fatalf("ran %d, want 10", ran)
	}
	if evals != 1 {
		t.Fatalf("done() evaluated %d times, want exactly 1", evals)
	}
}

func TestKernelString(t *testing.T) {
	if KernelStrict.String() != "strict" || KernelSkip.String() != "skip" {
		t.Fatal("kernel names changed")
	}
}
