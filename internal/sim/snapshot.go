package sim

// Snapshot is an immutable, serialisable capture of one engine's state at
// the end of a run. Every field is derived from simulated state only, so two
// identical runs — regardless of host scheduling or how many engines were
// executing concurrently — produce identical snapshots. The sweep runner
// relies on this to emit byte-identical result artifacts across worker
// counts.
type Snapshot struct {
	// Cycles is the number of completed simulation cycles.
	Cycles uint64 `json:"cycles"`
	// SimNS is the simulated time in nanoseconds (Cycles × clock period).
	SimNS uint64 `json:"sim_ns"`
	// Devices is the number of registered devices.
	Devices int `json:"devices"`
	// ClockPeriodNS is the effective clock period.
	ClockPeriodNS uint64 `json:"clock_period_ns"`
}

// Snapshot captures the engine's current cycle count and clock.
func (e *Engine) Snapshot() Snapshot {
	clk := e.Clock()
	return Snapshot{
		Cycles:        e.cycle,
		SimNS:         clk.NS(e.cycle),
		Devices:       len(e.devices),
		ClockPeriodNS: clk.PeriodNS,
	}
}

// HistogramSnapshot is an immutable, serialisable capture of a Histogram.
type HistogramSnapshot struct {
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
	Max    uint64   `json:"max"`
	Mean   float64  `json:"mean"`
	Bounds []uint64 `json:"bounds,omitempty"`
	Counts []uint64 `json:"counts,omitempty"`
}

// Snapshot captures the histogram's current totals and buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	bounds, counts := h.Buckets()
	return HistogramSnapshot{
		Count:  h.n,
		Sum:    h.sum,
		Max:    h.max,
		Mean:   h.Mean(),
		Bounds: bounds,
		Counts: counts,
	}
}
