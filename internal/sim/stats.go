package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is a small named-counter set used by devices to export
// simulation statistics (transactions issued, wait cycles, flits routed…).
// It is not safe for concurrent use; the kernel is single-threaded.
type Counters struct {
	m map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]uint64)} }

// Add increments counter name by n.
func (c *Counters) Add(name string, n uint64) {
	if c.m == nil {
		c.m = make(map[string]uint64)
	}
	c.m[name] += n
}

// Inc increments counter name by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of counter name (zero if never touched).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Names returns the counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders the counters as "name=value" pairs in sorted order.
func (c *Counters) String() string {
	var b strings.Builder
	for i, n := range c.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, c.m[n])
	}
	return b.String()
}

// Histogram is a fixed-bucket latency histogram. Bucket i counts samples v
// with bounds[i-1] <= v < bounds[i]; the last bucket is unbounded above.
type Histogram struct {
	bounds []uint64
	counts []uint64
	n      uint64
	sum    uint64
	max    uint64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. An extra overflow bucket is always appended.
func NewHistogram(bounds ...uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("sim: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v < h.bounds[i] })
	h.counts[i]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest observed sample (zero when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean of the samples (zero when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Buckets returns copies of the bucket bounds and counts (the final count is
// the overflow bucket).
func (h *Histogram) Buckets() (bounds []uint64, counts []uint64) {
	return append([]uint64(nil), h.bounds...), append([]uint64(nil), h.counts...)
}
