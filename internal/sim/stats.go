package sim

import (
	"fmt"
	"sort"
)

// LatencyBounds is the canonical transaction-latency bucket set (cycles)
// used by every latency histogram in the repository. Sharing one shape is
// what lets per-master and per-epoch histograms merge exactly.
var LatencyBounds = []uint64{4, 8, 16, 32, 64, 128, 256}

// NewLatencyHistogram builds a histogram with the canonical latency
// buckets.
func NewLatencyHistogram() *Histogram { return NewHistogram(LatencyBounds...) }

// Histogram is a fixed-bucket latency histogram. Bucket i counts samples v
// with bounds[i-1] <= v < bounds[i]; the last bucket is unbounded above.
type Histogram struct {
	bounds []uint64
	counts []uint64
	n      uint64
	sum    uint64
	max    uint64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. An extra overflow bucket is always appended.
func NewHistogram(bounds ...uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("sim: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v < h.bounds[i] })
	h.counts[i]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest observed sample (zero when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean of the samples (zero when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Buckets returns copies of the bucket bounds and counts (the final count is
// the overflow bucket).
func (h *Histogram) Buckets() (bounds []uint64, counts []uint64) {
	return append([]uint64(nil), h.bounds...), append([]uint64(nil), h.counts...)
}

// Reset discards all observed samples, keeping the bucket bounds. The
// stats registry calls it at measurement-epoch boundaries.
func (h *Histogram) Reset() {
	clear(h.counts)
	h.n = 0
	h.sum = 0
	h.max = 0
}

// Merge folds every sample of o into h. Both histograms must share the
// same bucket bounds (merging across shapes would misattribute counts).
func (h *Histogram) Merge(o *Histogram) {
	if len(h.bounds) != len(o.bounds) {
		panic(fmt.Sprintf("sim: merging histograms with %d and %d bounds", len(h.bounds), len(o.bounds)))
	}
	for i, b := range h.bounds {
		if o.bounds[i] != b {
			panic("sim: merging histograms with different bounds")
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}
