package sim

// WindowedRun drives an engine in bounded windows while keeping the
// kernel's acceleration state (the event schedule, the skip kernel's wake
// memo) alive across window boundaries. The shard runner uses it to
// advance each shard's engine to a synchronization target many thousands
// of times per run; rebuilding the event schedule per window — as the
// Run/RunPhased entry points do per call — would cost O(devices) per
// window and erase the event kernel's advantage under one-cycle windows.
//
// A session is single-use and exclusive: between BeginWindowed and Close,
// advance the engine only through RunTo. External wakes (Waker.Wake) are
// honoured between windows exactly as they are mid-run — the event
// schedule stays live for the whole session.
type WindowedRun struct {
	e     *Engine
	event bool
	skip  bool
}

// BeginWindowed opens a windowed session on the engine's selected kernel.
// Like Run, the skip and event kernels require every device to implement
// Sleeper and degrade to strict ticking otherwise.
func (e *Engine) BeginWindowed() *WindowedRun {
	w := &WindowedRun{e: e}
	w.event = e.kernel == KernelEvent && e.sleepers != nil
	w.skip = w.event || (e.kernel == KernelSkip && e.sleepers != nil)
	if w.skip && !w.event {
		e.resetWakeMemo()
	}
	if w.event {
		e.initEventSchedule()
		e.evLive = true
	}
	return w
}

// Close ends the session. The engine is ready for ordinary Run calls (or a
// new session) afterwards.
func (w *WindowedRun) Close() {
	if w.event {
		w.e.evLive = false
	}
}

// RunTo advances the engine to exactly the target cycle — a forced
// boundary, like a RunPhased window edge. The skip and event kernels jump
// all-asleep spans but clamp the jump at the target, so the engine always
// lands on it; the strict kernel executes every cycle (each one a no-op
// when all devices sleep, by the Sleeper contract).
func (w *WindowedRun) RunTo(target uint64) {
	e := w.e
	for e.cycle < target {
		if w.event {
			e.stepEvent()
		} else {
			e.Step()
		}
		if !w.skip || e.cycle >= target {
			continue
		}
		var nw uint64
		if w.event {
			nw = e.eventNextWake()
		} else {
			nw = e.nextWake()
		}
		if nw <= e.cycle {
			continue
		}
		if nw > target {
			nw = target
		}
		e.SkippedCycles += nw - e.cycle
		e.cycle = nw
	}
}

// NextWake returns the engine's horizon: the earliest cycle at which any
// registered device might act (>= Cycle()), or WakeNever on a fully
// quiescent engine. The strict kernel cannot bound device activity and
// conservatively reports the current cycle.
func (w *WindowedRun) NextWake() uint64 {
	e := w.e
	if w.event {
		return e.eventNextWake()
	}
	if w.skip {
		return e.nextWake()
	}
	return e.cycle
}
