package sim

import "testing"

// TestWindowedRunMatchesStrictReference drives the same pulse schedule
// through a reference strict engine and through windowed sessions on every
// kernel, with several window sizes, asserting identical device work and
// final cycles — the equivalence the shard runner's per-window advancement
// rests on.
func TestWindowedRunMatchesStrictReference(t *testing.T) {
	times := []uint64{0, 3, 4, 100, 1000, 1001, 5000}
	const end = 6000

	ref := NewEngine(Clock{})
	rp := &pulser{times: times}
	ref.Add(rp)
	ref.RunFor(end)

	for _, kernel := range []Kernel{KernelStrict, KernelSkip, KernelEvent} {
		for _, window := range []uint64{1, 7, 64, 4096} {
			e := NewEngine(Clock{})
			p := &pulser{times: times}
			e.Add(p)
			e.SetKernel(kernel)
			w := e.BeginWindowed()
			for e.Cycle() < end {
				target := e.Cycle() + window
				if target > end {
					target = end
				}
				w.RunTo(target)
				if e.Cycle() != target {
					t.Fatalf("%v window %d: RunTo(%d) landed on %d", kernel, window, target, e.Cycle())
				}
			}
			w.Close()
			if p.work != rp.work || p.i != rp.i {
				t.Fatalf("%v window %d: work %d (want %d)", kernel, window, p.work, rp.work)
			}
			if e.Cycle() != end {
				t.Fatalf("%v window %d: final cycle %d", kernel, window, e.Cycle())
			}
		}
	}
}

// TestWindowedNextWakeHorizon checks the horizon query: the strict kernel
// reports now (it cannot bound activity), the skip and event kernels
// report the earliest pending pulse, and a drained engine reports
// WakeNever.
func TestWindowedNextWakeHorizon(t *testing.T) {
	for _, kernel := range []Kernel{KernelSkip, KernelEvent} {
		e := NewEngine(Clock{})
		p := &pulser{times: []uint64{500}}
		e.Add(p)
		e.SetKernel(kernel)
		w := e.BeginWindowed()
		if got := w.NextWake(); got != 500 {
			t.Fatalf("%v: horizon %d, want 500", kernel, got)
		}
		w.RunTo(501)
		if got := w.NextWake(); got != WakeNever {
			t.Fatalf("%v: drained horizon %d, want WakeNever", kernel, got)
		}
		w.Close()
	}

	e := NewEngine(Clock{})
	e.Add(&pulser{times: []uint64{500}})
	w := e.BeginWindowed() // KernelStrict
	if got := w.NextWake(); got != 0 {
		t.Fatalf("strict horizon %d, want 0", got)
	}
	w.Close()
}

// napSink sleeps forever until externally woken, then does one unit of
// work at its next tick.
type napSink struct {
	waker   Waker
	pending bool
	work    int
}

func (s *napSink) SetWaker(w Waker) { s.waker = w }
func (s *napSink) Tick(cycle uint64) {
	if s.pending {
		s.pending = false
		s.work++
	}
}
func (s *napSink) NextWake(now uint64) uint64 {
	if s.pending {
		return now
	}
	return WakeNever
}

// TestWindowedWakeBetweenWindows stimulates a sleeping WakeSink between
// windows — the shard runner does exactly this after importing flits — and
// checks the device runs in the next window under the event kernel.
func TestWindowedWakeBetweenWindows(t *testing.T) {
	for _, kernel := range []Kernel{KernelSkip, KernelEvent} {
		e := NewEngine(Clock{})
		s := &napSink{}
		e.Add(s)
		e.SetKernel(kernel)
		w := e.BeginWindowed()
		w.RunTo(10)
		if got := w.NextWake(); got != WakeNever {
			t.Fatalf("%v: horizon %d before stimulus", kernel, got)
		}
		s.pending = true
		s.waker.Wake()
		if got := w.NextWake(); got != 10 {
			t.Fatalf("%v: horizon %d after stimulus, want 10", kernel, got)
		}
		w.RunTo(11)
		if s.work != 1 {
			t.Fatalf("%v: work %d after wake, want 1", kernel, s.work)
		}
		w.Close()
	}
}

// TestWindowedSkippedCyclesClamp verifies that an all-asleep jump clamps
// at the window target rather than overshooting to the device's wake.
func TestWindowedSkippedCyclesClamp(t *testing.T) {
	e := NewEngine(Clock{})
	e.Add(&pulser{times: []uint64{1000}})
	e.SetKernel(KernelEvent)
	w := e.BeginWindowed()
	w.RunTo(500)
	if e.Cycle() != 500 {
		t.Fatalf("clamped jump landed on %d, want 500", e.Cycle())
	}
	w.RunTo(2000)
	w.Close()
	if e.Cycle() != 2000 {
		t.Fatalf("final cycle %d, want 2000", e.Cycle())
	}
}
