// Package simtest provides small test doubles shared by the interconnect,
// cache and TG test suites: a scripted OCP master that issues a fixed
// sequence of transactions separated by idle gaps, recording accept and
// response cycles.
package simtest

import "noctg/internal/ocp"

// Step is one scripted transaction: idle Gap cycles after the previous
// transaction completes, then issue Req until accepted (and, for reads,
// until the response returns).
type Step struct {
	Gap uint64
	Req ocp.Request
}

// Master replays a script of Steps against an ocp.MasterPort. It implements
// sim.Device.
type Master struct {
	Port  ocp.MasterPort
	Steps []Step

	// Recorded observations, one entry per completed step.
	AssertCycles []uint64
	AcceptCycles []uint64
	RespCycles   []uint64 // reads only; writes record 0
	RespData     [][]uint32

	i         int
	idleLeft  uint64
	asserting bool
	waitResp  bool
	finished  bool
	started   bool
}

// NewMaster builds a scripted master over port.
func NewMaster(port ocp.MasterPort, steps []Step) *Master {
	return &Master{Port: port, Steps: steps}
}

// Done reports whether the whole script has completed.
func (m *Master) Done() bool { return m.finished }

// Tick implements sim.Device.
func (m *Master) Tick(cycle uint64) {
	if m.finished {
		return
	}
	if !m.started {
		m.started = true
		if len(m.Steps) == 0 {
			m.finished = true
			return
		}
		m.idleLeft = m.Steps[0].Gap
	}
	if m.waitResp {
		if resp, ok := m.Port.TakeResponse(); ok {
			m.RespCycles[len(m.RespCycles)-1] = cycle
			m.RespData = append(m.RespData, append([]uint32(nil), resp.Data...))
			m.waitResp = false
			m.advance()
		}
		return
	}
	if m.idleLeft > 0 {
		m.idleLeft--
		return
	}
	st := &m.Steps[m.i]
	if !m.asserting {
		m.asserting = true
		m.AssertCycles = append(m.AssertCycles, cycle)
	}
	if m.Port.TryRequest(&st.Req) {
		m.asserting = false
		m.AcceptCycles = append(m.AcceptCycles, cycle)
		m.RespCycles = append(m.RespCycles, 0)
		if st.Req.Cmd.IsRead() {
			m.waitResp = true
		} else {
			m.RespData = append(m.RespData, nil)
			m.advance()
		}
	}
}

func (m *Master) advance() {
	m.i++
	if m.i >= len(m.Steps) {
		m.finished = true
		return
	}
	m.idleLeft = m.Steps[m.i].Gap
}
