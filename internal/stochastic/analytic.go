package stochastic

// This file holds the analytic exports: closed-form traffic descriptors
// consumed by the internal/analytic queueing estimator. Each source
// configuration exposes its effective injection rate and the burstiness
// (squared coefficient of variation) of its inter-injection gaps, and a
// compiled Sampler exposes its exact per-source destination distribution.
// These are structural quantities derived from the configuration alone —
// no simulation — so the estimator sees the same traffic the generators
// will produce without running them.

import "math"

// Resolved returns the configuration with every defaulted knob filled in
// (MeanGap 10, StdDev MeanGap/4, BurstLen 8, ReadFraction 0.6, Count
// 1000) — the values the generator itself would run with.
func (c Config) Resolved() Config { return c.withDefaults() }

// MeanGapCycles returns the mean drawn inter-injection gap in cycles: the
// Dist draw mean, or 1/rate for an MMPP/self-similar arrival process. The
// generator adds one handshake cycle per transaction on top of the drawn
// gap (wake = completion + gap + 1), which is the +1 in the sweep's
// offered-load definition cores·1000/(gap+1).
func (c Config) MeanGapCycles() float64 {
	c = c.withDefaults()
	switch {
	case c.MMPP != nil:
		if r := c.MMPP.Rate(); r > 0 {
			return 1 / r
		}
		return math.Inf(1)
	case c.SelfSimilar != nil:
		if r := c.SelfSimilar.Rate(); r > 0 {
			return 1 / r
		}
		return math.Inf(1)
	}
	return c.MeanGap
}

// GapSCV returns the squared coefficient of variation (variance over
// squared mean) of the drawn inter-injection gaps — the burstiness input
// of the M/G/1-style waiting-time term. Exact for the memoryless Dist
// draws; for MMPP and self-similar processes it is a structural
// hyperexponential approximation (arrival-weighted mixture of the
// per-state exponential gaps, plus the silent-span mass) that ignores
// inter-gap correlation, so it bounds burstiness from below for
// long-range-dependent sources. Callers treat it as an error-bar input,
// not an exact moment.
func (c Config) GapSCV() float64 {
	c = c.withDefaults()
	switch {
	case c.MMPP != nil:
		return mmppGapSCV(*c.MMPP)
	case c.SelfSimilar != nil:
		return selfSimGapSCV(*c.SelfSimilar)
	}
	switch c.Dist {
	case Uniform:
		// Uniform on [0, 2m]: var m²/3.
		return 1.0 / 3
	case Gaussian:
		if c.MeanGap <= 0 {
			return 0
		}
		sd := c.StdDev / c.MeanGap
		return sd * sd
	case Poisson:
		return 1
	case Bursty:
		// BurstLen-1 zero gaps then one Exp(m·B) gap: E[g²] = 2m²B,
		// mean m, so SCV = 2B - 1.
		return 2*float64(c.BurstLen) - 1
	}
	return 0
}

// mmppGapSCV approximates the MMPP gap SCV as the arrival-weighted
// mixture of the active states' exponential gaps, with each silent state's
// dwell folded into the gap that spans it (the burst-boundary gaps that
// dominate the variance of on/off chains).
func mmppGapSCV(m MMPP) float64 {
	var arrivals, m1, m2, silent2 float64
	for i, g := range m.StateGaps {
		d := m.StateDwells[i]
		if g > 0 {
			n := d / g // arrivals per visit
			arrivals += n
			m1 += n * g
			m2 += n * 2 * g * g
		} else {
			// Exponential dwell: E[span²] = 2d²; deterministic: d².
			if m.Deterministic {
				silent2 += d * d
			} else {
				silent2 += 2 * d * d
			}
		}
	}
	if arrivals <= 0 {
		return 0
	}
	mean := m1 / arrivals
	second := (m2 + silent2) / arrivals
	if mean <= 0 {
		return 0
	}
	return second/(mean*mean) - 1
}

// selfSimGapSCV approximates the self-similar gap SCV from the stationary
// on-station count: an arrival-weighted mixture over k active stations of
// Exp(PeakGap/k) gaps, inflated by the Hurst target (heavy-tailed on/off
// periods correlate gaps beyond what any renewal mixture captures).
func selfSimGapSCV(s SelfSimilar) float64 {
	f := s.OnMean / (s.OnMean + s.OffMean)
	n := s.Sources
	// Binomial(n, f) over the active-station count.
	var wsum, m1, m2 float64
	pk := math.Pow(1-f, float64(n)) // P(k=0)
	for k := 1; k <= n; k++ {
		pk = pk * float64(n-k+1) / float64(k) * f / (1 - f) // P(k)
		w := float64(k) * pk                                // arrival-weighted
		g := s.PeakGap / float64(k)
		wsum += w
		m1 += w * g
		m2 += w * 2 * g * g
	}
	if wsum <= 0 || m1 <= 0 {
		return 1
	}
	mean := m1 / wsum
	scv := (m2/wsum)/(mean*mean) - 1
	// Hurst inflation: H = 0.5 is short-range (no correction); the factor
	// grows linearly to 2× at H = 0.95.
	return scv * (1 + (s.Hurst-0.5)/0.45)
}

// DestProbs fills probs (length Nodes) with the probability that one draw
// from src lands on each logical node — the exact distribution Dest
// samples from, including the hotspot float-tail fold. The slice is
// reused when it has capacity; the returned slice is the filled one.
func (sp *Sampler) DestProbs(src int, probs []float64) []float64 {
	if cap(probs) < sp.nodes {
		probs = make([]float64, sp.nodes)
	}
	probs = probs[:sp.nodes]
	for i := range probs {
		probs[i] = 0
	}
	if sp.fixed != nil {
		probs[sp.fixed[src]] = 1
		return probs
	}
	if sp.spec.Pattern == Hotspot {
		prev := 0.0
		for i, c := range sp.hotCum {
			probs[sp.hotNodes[i]] += c - prev
			prev = c
		}
		rest := 1 - sp.hotSum
		if set := sp.candidates[src]; len(set) > 0 && rest > 0 {
			for _, d := range set {
				probs[d] += rest / float64(len(set))
			}
		} else if rest > 0 {
			// No cold candidate (weights sum to ~1): Dest folds the float
			// tail onto the last hotspot.
			probs[sp.hotNodes[len(sp.hotNodes)-1]] += rest
		}
		return probs
	}
	set := sp.candidates[src]
	for _, d := range set {
		probs[d] = 1 / float64(len(set))
	}
	return probs
}
