package stochastic

import (
	"math"
	"testing"
)

// almost compares floats to a relative tolerance.
func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Abs(want)+1e-12 {
		t.Errorf("%s = %g, want %g (±%g rel)", name, got, want, tol)
	}
}

func TestMeanGapCycles(t *testing.T) {
	// Dist-based configs report the (defaulted) drawn mean directly.
	almost(t, "default gap", Config{}.MeanGapCycles(), 10, 0)
	almost(t, "explicit gap", Config{MeanGap: 7}.MeanGapCycles(), 7, 0)

	// MMPP: the stock on/off chain {3,0}×{80,160} injects every 3 cycles
	// for 1/3 of the time, so rate = (80/240)/3 = 1/9 and mean gap 9.
	onoff := &MMPP{StateGaps: []float64{3, 0}, StateDwells: []float64{80, 160}}
	almost(t, "mmpp gap", Config{MMPP: onoff}.MeanGapCycles(), 9, 1e-12)

	// Self-similar: 8 stations on 1/3 of the time at peak rate 1/4 →
	// aggregate rate 8/12 = 2/3, mean gap 1.5.
	ss := &SelfSimilar{Sources: 8, Hurst: 0.8, OnMean: 50, OffMean: 100, PeakGap: 4}
	almost(t, "selfsim gap", Config{SelfSimilar: ss}.MeanGapCycles(), 1.5, 1e-12)

	// A chain with no injecting state has rate 0: the mean gap is
	// infinite, never a division panic. (Validate rejects such chains;
	// the descriptor must still be total.)
	silent := &MMPP{StateGaps: []float64{0, 0}, StateDwells: []float64{10, 10}}
	if g := (Config{MMPP: silent}).MeanGapCycles(); !math.IsInf(g, 1) {
		t.Errorf("silent MMPP mean gap = %g, want +Inf", g)
	}
	dead := &SelfSimilar{Sources: 0, OnMean: 1, OffMean: 1, PeakGap: 4}
	if g := (Config{SelfSimilar: dead}).MeanGapCycles(); !math.IsInf(g, 1) {
		t.Errorf("zero-source self-similar mean gap = %g, want +Inf", g)
	}
}

func TestGapSCVDist(t *testing.T) {
	// Exact second moments of the draw distributions.
	almost(t, "uniform", Config{Dist: Uniform}.GapSCV(), 1.0/3, 1e-12)
	// Gaussian default sd = mean/4 → SCV 1/16.
	almost(t, "gaussian default", Config{Dist: Gaussian}.GapSCV(), 1.0/16, 1e-12)
	almost(t, "gaussian explicit", Config{Dist: Gaussian, MeanGap: 10, StdDev: 5}.GapSCV(), 0.25, 1e-12)
	almost(t, "poisson", Config{Dist: Poisson}.GapSCV(), 1, 0)
	// Bursty: B-1 zero gaps then one Exp(m·B) gap → SCV = 2B−1.
	almost(t, "bursty default", Config{Dist: Bursty}.GapSCV(), 15, 1e-12)
	almost(t, "bursty B=4", Config{Dist: Bursty, BurstLen: 4}.GapSCV(), 7, 1e-12)
	if scv := (Config{Dist: Dist(99)}).GapSCV(); scv != 0 {
		t.Errorf("unknown dist SCV = %g, want 0", scv)
	}
}

func TestGapSCVMMPP(t *testing.T) {
	// Hand computation for the stock on/off chain {3,0}×{80,160} with
	// exponential dwells: n = 80/3 arrivals per cycle of the chain,
	// m1 = 80, m2 = n·2·3² = 480, silent mass E[span²] = 2·160².
	// mean = 3, E[g²] = (480 + 51200)/(80/3) = 1938, SCV = 1938/9 − 1.
	onoff := MMPP{StateGaps: []float64{3, 0}, StateDwells: []float64{80, 160}}
	almost(t, "on/off exp", mmppGapSCV(onoff), 1938.0/9-1, 1e-9)

	// Deterministic dwells: the silent span contributes d² not 2d², so
	// E[g²] = (480 + 25600)/(80/3) = 978, SCV = 978/9 − 1.
	det := onoff
	det.Deterministic = true
	almost(t, "on/off det", mmppGapSCV(det), 978.0/9-1, 1e-9)

	// The descriptor reaches Config.GapSCV through the MMPP arm.
	almost(t, "via Config", Config{MMPP: &onoff}.GapSCV(), 1938.0/9-1, 1e-9)

	// All-silent chains produce no arrivals: SCV degrades to 0.
	if scv := mmppGapSCV(MMPP{StateGaps: []float64{0, 0}, StateDwells: []float64{10, 10}}); scv != 0 {
		t.Errorf("silent chain SCV = %g, want 0", scv)
	}

	// A single always-on exponential state is plain Poisson: SCV 1.
	poisson := MMPP{StateGaps: []float64{5, 5}, StateDwells: []float64{100, 100}}
	almost(t, "always-on", mmppGapSCV(poisson), 1, 1e-9)
}

func TestGapSCVSelfSimilar(t *testing.T) {
	// One station: the active-count mixture collapses to a single
	// exponential (SCV 1) scaled by the Hurst inflation factor
	// 1 + (H−0.5)/0.45, which is exactly 2 at H = 0.95.
	one := SelfSimilar{Sources: 1, Hurst: 0.95, OnMean: 50, OffMean: 50, PeakGap: 4}
	almost(t, "single station H=0.95", selfSimGapSCV(one), 2, 1e-9)
	one.Hurst = 0.5
	almost(t, "single station H=0.5", selfSimGapSCV(one), 1, 1e-9)

	// Superposition is burstier than any single station, and burstiness
	// must grow with the Hurst target.
	lo := SelfSimilar{Sources: 8, Hurst: 0.6, OnMean: 50, OffMean: 100, PeakGap: 4}
	hi := lo
	hi.Hurst = 0.9
	sLo, sHi := selfSimGapSCV(lo), selfSimGapSCV(hi)
	if !(sHi > sLo) || sLo <= 0 {
		t.Errorf("Hurst monotonicity: SCV(H=0.6)=%g, SCV(H=0.9)=%g", sLo, sHi)
	}
	almost(t, "via Config", Config{SelfSimilar: &hi}.GapSCV(), sHi, 1e-12)

	// No stations → no mixture: the approximation falls back to SCV 1.
	if scv := selfSimGapSCV(SelfSimilar{Sources: 0, OnMean: 1, OffMean: 1, PeakGap: 4}); scv != 1 {
		t.Errorf("zero-source SCV = %g, want 1", scv)
	}
}

func TestResolvedFillsDefaults(t *testing.T) {
	r := Config{}.Resolved()
	if r.MeanGap != 10 || r.StdDev != 2.5 || r.BurstLen != 8 || r.ReadFraction != 0.6 || r.Count != 1000 {
		t.Errorf("Resolved defaults = %+v", r)
	}
	// Explicit values survive.
	r = Config{MeanGap: 4, ReadFraction: 0.9}.Resolved()
	if r.MeanGap != 4 || r.ReadFraction != 0.9 {
		t.Errorf("Resolved clobbered explicit values: %+v", r)
	}
}

func TestDestProbs(t *testing.T) {
	checkSum := func(t *testing.T, probs []float64) {
		t.Helper()
		sum := 0.0
		for _, p := range probs {
			sum += p
		}
		almost(t, "probability mass", sum, 1, 1e-9)
	}

	// Deterministic pattern: all mass on the transpose target.
	sp, err := NewSampler(Spatial{Pattern: Transpose, W: 2, H: 2, Dests: dests(4)})
	if err != nil {
		t.Fatal(err)
	}
	probs := sp.DestProbs(1, nil)
	checkSum(t, probs)
	if probs[2] != 1 { // (1,0) ↔ (0,1)
		t.Errorf("transpose probs = %v, want all mass on node 2", probs)
	}

	// Uniform random: equal mass over every node but the source.
	sp, err = NewSampler(Spatial{Pattern: UniformRandom, W: 2, H: 2, Dests: dests(4)})
	if err != nil {
		t.Fatal(err)
	}
	probs = sp.DestProbs(0, probs) // exercise slice reuse
	checkSum(t, probs)
	if probs[0] != 0 || probs[1] != probs[2] || probs[2] != probs[3] {
		t.Errorf("uniform probs = %v", probs)
	}

	// Hotspot: the weighted node takes its mass, the cold remainder is
	// split over the source's candidate set.
	sp, err = NewSampler(Spatial{Pattern: Hotspot, W: 2, H: 2, Dests: dests(4), HotspotWeights: []float64{0, 0, 0, 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	probs = sp.DestProbs(0, probs)
	checkSum(t, probs)
	almost(t, "hotspot node", probs[3], 0.6, 1e-12)
	almost(t, "cold node 1", probs[1], 0.2, 1e-12)
	almost(t, "cold node 2", probs[2], 0.2, 1e-12)

	// Every node weighted with a float-accumulation shortfall: Dest folds
	// the tail onto the last hotspot, and DestProbs must mirror it so the
	// mass still sums to exactly 1.
	w := 0.25 - 2.5e-11
	sp, err = NewSampler(Spatial{Pattern: Hotspot, W: 2, H: 2, Dests: dests(4),
		HotspotWeights: []float64{w, w, w, w}})
	if err != nil {
		t.Fatal(err)
	}
	probs = sp.DestProbs(0, probs)
	checkSum(t, probs)
	if probs[3] <= probs[1] {
		t.Errorf("fold target: probs = %v, want the remainder on the last hotspot", probs)
	}
}
