// Arrival processes beyond the memoryless Dist set: Markov-modulated
// (MMPP/on-off) bursty sources and a self-similar source built from
// superposed Pareto on/off stations. Both are pure temporal models — they
// replace nextGap, and compose with any Spatial pattern and the Classes
// priority axis exactly like the legacy distributions.
//
// Discretization. The processes are defined on a continuous virtual clock
// and quantized by flooring the absolute event time, not the individual
// gaps: the generator keeps the exact (float64) event epoch and each
// injection is scheduled at uint64(epoch), so rounding errors telescope
// instead of accumulating. With the engine's one-cycle handshake per
// injection the asymptotic discrete rate is exactly lambda/(1+lambda)
// transactions per cycle for a continuous-time rate lambda — the analytic
// target the internal/valid fidelity harness checks against.
//
// Determinism. A source draws from the generator's single seeded rng in a
// fixed per-injection order, independent of kernel, shard count or wall
// clock; state transitions advance only inside nextGap. The schedule is
// drawn up front relative to the completion cycle of the previous
// transaction, so the Sleeper "will not act before" promise holds
// unchanged and all three kernels (and every shard count) execute
// byte-identical runs.
package stochastic

import (
	"fmt"
	"math"
	"math/rand"
)

// MaxStates bounds the MMPP state chain.
const MaxStates = 8

// MaxSources bounds the self-similar on/off superposition.
const MaxSources = 64

// MaxClasses bounds the priority class axis.
const MaxClasses = 8

// maxArrivalParam bounds every rate/dwell parameter, mirroring the
// scenario loader's hostile-input bounds.
const maxArrivalParam = 1e9

// MMPP configures a Markov-modulated Poisson process: a cyclic chain of
// states, each with its own mean injection gap, visited for exponential
// (default) or deterministic dwell times. A state with gap 0 is silent,
// so {rate, 0} two-state chains are the classic on/off bursty source.
type MMPP struct {
	// StateGaps[i] is the mean inter-injection gap in cycles while the
	// chain is in state i; 0 marks a silent (off) state. At least one
	// state must inject.
	StateGaps []float64
	// StateDwells[i] is the mean time in cycles the chain spends in state
	// i per visit.
	StateDwells []float64
	// Deterministic selects fixed dwell times (exactly StateDwells[i]
	// per visit) instead of exponentially distributed ones.
	Deterministic bool
}

// Validate checks the chain shape and parameter bounds.
func (m MMPP) Validate() error {
	if len(m.StateGaps) < 2 || len(m.StateGaps) > MaxStates {
		return fmt.Errorf("stochastic: MMPP needs 2..%d states, got %d", MaxStates, len(m.StateGaps))
	}
	if len(m.StateDwells) != len(m.StateGaps) {
		return fmt.Errorf("stochastic: MMPP has %d gaps but %d dwells",
			len(m.StateGaps), len(m.StateDwells))
	}
	active := false
	for i, g := range m.StateGaps {
		if math.IsNaN(g) || g < 0 || g > maxArrivalParam {
			return fmt.Errorf("stochastic: MMPP state %d gap %v outside [0, %g]", i, g, maxArrivalParam)
		}
		if g > 0 {
			active = true
		}
	}
	if !active {
		return fmt.Errorf("stochastic: MMPP has no injecting state (every gap is 0)")
	}
	for i, d := range m.StateDwells {
		if math.IsNaN(d) || d < 1 || d > maxArrivalParam {
			return fmt.Errorf("stochastic: MMPP state %d dwell %v outside [1, %g]", i, d, maxArrivalParam)
		}
	}
	return nil
}

// Rate returns the analytic continuous-time injection rate (events per
// cycle): the dwell-weighted mean of the per-state rates.
func (m MMPP) Rate() float64 {
	var total, rate float64
	for _, d := range m.StateDwells {
		total += d
	}
	for i, g := range m.StateGaps {
		if g > 0 {
			rate += m.StateDwells[i] / total / g
		}
	}
	return rate
}

// SelfSimilar configures a self-similar source: Sources independent
// on/off stations with Pareto-distributed on and off periods of tail
// index alpha = 3 - 2*Hurst, each injecting Poisson traffic at rate
// 1/PeakGap while on. Superposing heavy-tailed on/off stations is the
// classic construction whose aggregate count process converges to
// fractional Gaussian noise with the configured Hurst parameter
// (Willinger et al.); internal/valid estimates Hurst from the aggregate
// variance of the generated counts.
type SelfSimilar struct {
	// Sources is the number of superposed on/off stations.
	Sources int
	// Hurst is the target Hurst parameter, in (0.5, 0.95].
	Hurst float64
	// OnMean and OffMean are the mean on/off period lengths in cycles.
	OnMean  float64
	OffMean float64
	// PeakGap is the mean injection gap in cycles of one station while
	// on; the aggregate continuous rate is
	// Sources * OnMean/(OnMean+OffMean) / PeakGap.
	PeakGap float64
}

// Validate checks the superposition shape and parameter bounds.
func (s SelfSimilar) Validate() error {
	if s.Sources < 1 || s.Sources > MaxSources {
		return fmt.Errorf("stochastic: self-similar needs 1..%d sources, got %d", MaxSources, s.Sources)
	}
	if math.IsNaN(s.Hurst) || s.Hurst <= 0.5 || s.Hurst > 0.95 {
		return fmt.Errorf("stochastic: Hurst %v outside (0.5, 0.95]", s.Hurst)
	}
	if math.IsNaN(s.OnMean) || s.OnMean < 1 || s.OnMean > maxArrivalParam {
		return fmt.Errorf("stochastic: on-period mean %v outside [1, %g]", s.OnMean, maxArrivalParam)
	}
	if math.IsNaN(s.OffMean) || s.OffMean < 1 || s.OffMean > maxArrivalParam {
		return fmt.Errorf("stochastic: off-period mean %v outside [1, %g]", s.OffMean, maxArrivalParam)
	}
	if math.IsNaN(s.PeakGap) || s.PeakGap <= 0 || s.PeakGap > maxArrivalParam {
		return fmt.Errorf("stochastic: peak gap %v outside (0, %g]", s.PeakGap, maxArrivalParam)
	}
	return nil
}

// Alpha returns the Pareto tail index implied by the Hurst target.
func (s SelfSimilar) Alpha() float64 { return 3 - 2*s.Hurst }

// Rate returns the analytic continuous-time aggregate injection rate
// (events per cycle).
func (s SelfSimilar) Rate() float64 {
	return float64(s.Sources) * s.OnMean / (s.OnMean + s.OffMean) / s.PeakGap
}

// arrival is the pluggable gap process behind Config.MMPP/SelfSimilar.
// nextGap is called exactly once per injection, in issue order, and is the
// only place process state advances.
type arrival interface {
	nextGap(rng *rand.Rand) uint64
}

// mmppArrival walks the state chain on the virtual clock vt. Exponential
// gap draws that overshoot the current state's remaining dwell are
// discarded and redrawn in the next state — exact for exponential gaps by
// memorylessness.
type mmppArrival struct {
	cfg      MMPP
	state    int
	vt       float64 // exact epoch of the last injection
	stateEnd float64 // exact epoch the current state expires
	emitted  uint64  // floor(vt) at the last injection
}

func newMMPPArrival(cfg MMPP, rng *rand.Rand) *mmppArrival {
	a := &mmppArrival{cfg: cfg}
	a.stateEnd = a.dwell(rng)
	return a
}

func (a *mmppArrival) dwell(rng *rand.Rand) float64 {
	d := a.cfg.StateDwells[a.state]
	if !a.cfg.Deterministic {
		d = rng.ExpFloat64() * d
	}
	return d
}

func (a *mmppArrival) nextGap(rng *rand.Rand) uint64 {
	for {
		if g := a.cfg.StateGaps[a.state]; g > 0 {
			if e := rng.ExpFloat64() * g; a.vt+e <= a.stateEnd {
				a.vt += e
				break
			}
		}
		a.vt = a.stateEnd
		a.state++
		if a.state == len(a.cfg.StateGaps) {
			a.state = 0
		}
		a.stateEnd = a.vt + a.dwell(rng)
	}
	t := uint64(a.vt)
	gap := t - a.emitted
	a.emitted = t
	return gap
}

// selfSimArrival superposes the on/off stations on one virtual clock.
// Between station toggles the union of the on stations' Poisson streams
// is itself Poisson at rate onCount/peakGap, so one aggregate exponential
// draw per step suffices; draws crossing a toggle epoch are discarded and
// redrawn under the new rate (exact by memorylessness). The station
// arrays are preallocated at construction and scanned linearly — at most
// MaxSources entries — keeping the injection path allocation-free.
type selfSimArrival struct {
	peakGap float64
	alpha   float64
	onXm    float64 // Pareto scale of on periods
	offXm   float64 // Pareto scale of off periods
	on      []bool
	toggle  []float64 // absolute epoch each station flips state
	onCount int
	vt      float64
	emitted uint64
}

// pareto draws from a Pareto(xm, alpha) via inverse transform; 1-U keeps
// the argument in (0, 1] so the draw is finite.
func pareto(rng *rand.Rand, xm, alpha float64) float64 {
	return xm * math.Pow(1-rng.Float64(), -1/alpha)
}

func newSelfSimArrival(cfg SelfSimilar, rng *rand.Rand) *selfSimArrival {
	alpha := cfg.Alpha()
	a := &selfSimArrival{
		peakGap: cfg.PeakGap,
		alpha:   alpha,
		onXm:    cfg.OnMean * (alpha - 1) / alpha,
		offXm:   cfg.OffMean * (alpha - 1) / alpha,
		on:      make([]bool, cfg.Sources),
		toggle:  make([]float64, cfg.Sources),
	}
	// Start each station in its stationary state so the aggregate rate
	// needs no long burn-in to reach the analytic mean.
	fracOn := cfg.OnMean / (cfg.OnMean + cfg.OffMean)
	for i := range a.on {
		if rng.Float64() < fracOn {
			a.on[i] = true
			a.onCount++
			a.toggle[i] = pareto(rng, a.onXm, alpha)
		} else {
			a.toggle[i] = pareto(rng, a.offXm, alpha)
		}
	}
	return a
}

func (a *selfSimArrival) nextGap(rng *rand.Rand) uint64 {
	for {
		ti, tmin := 0, a.toggle[0]
		for i := 1; i < len(a.toggle); i++ {
			if a.toggle[i] < tmin {
				ti, tmin = i, a.toggle[i]
			}
		}
		if a.onCount > 0 {
			if e := rng.ExpFloat64() * a.peakGap / float64(a.onCount); a.vt+e <= tmin {
				a.vt += e
				break
			}
		}
		a.vt = tmin
		if a.on[ti] {
			a.on[ti] = false
			a.onCount--
			a.toggle[ti] = a.vt + pareto(rng, a.offXm, a.alpha)
		} else {
			a.on[ti] = true
			a.onCount++
			a.toggle[ti] = a.vt + pareto(rng, a.onXm, a.alpha)
		}
	}
	t := uint64(a.vt)
	gap := t - a.emitted
	a.emitted = t
	return gap
}

// newArrival compiles the Config's arrival-process selection (nil when
// the legacy Dist drives the gaps). Invalid configurations panic, like
// every other constructor-time misuse in this package.
func newArrival(cfg Config, rng *rand.Rand) arrival {
	switch {
	case cfg.MMPP != nil && cfg.SelfSimilar != nil:
		panic("stochastic: Config sets both MMPP and SelfSimilar")
	case cfg.MMPP != nil:
		if err := cfg.MMPP.Validate(); err != nil {
			panic(err.Error())
		}
		return newMMPPArrival(*cfg.MMPP, rng)
	case cfg.SelfSimilar != nil:
		if err := cfg.SelfSimilar.Validate(); err != nil {
			panic(err.Error())
		}
		return newSelfSimArrival(*cfg.SelfSimilar, rng)
	}
	return nil
}

// ValidateClasses checks a priority-class weight vector: 1..MaxClasses
// non-negative finite weights with a positive sum.
func ValidateClasses(weights []float64) error {
	if len(weights) == 0 {
		return nil
	}
	if len(weights) > MaxClasses {
		return fmt.Errorf("stochastic: %d classes exceed %d", len(weights), MaxClasses)
	}
	var sum float64
	for i, w := range weights {
		if math.IsNaN(w) || w < 0 || w > maxArrivalParam {
			return fmt.Errorf("stochastic: class %d weight %v outside [0, %g]", i, w, maxArrivalParam)
		}
		sum += w
	}
	if sum <= 0 {
		return fmt.Errorf("stochastic: class weights sum to %v, need > 0", sum)
	}
	return nil
}

// classCum folds validated weights into a cumulative distribution whose
// final entry is exactly 1, so the class draw can never fall off the end.
func classCum(weights []float64) []float64 {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	cum := make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		acc += w
		cum[i] = acc / sum
	}
	cum[len(cum)-1] = 1
	return cum
}
