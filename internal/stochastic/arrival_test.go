package stochastic

import (
	"math"
	"testing"

	"noctg/internal/ocp"
)

var testRange = []ocp.AddrRange{{Base: 0, Size: 0x100}}

func TestArrivalValidation(t *testing.T) {
	bad := []struct {
		name string
		cfg  Config
	}{
		{"one-state mmpp", Config{MMPP: &MMPP{StateGaps: []float64{4}, StateDwells: []float64{100}}}},
		{"dwell/gap mismatch", Config{MMPP: &MMPP{StateGaps: []float64{4, 0}, StateDwells: []float64{100}}}},
		{"all-silent mmpp", Config{MMPP: &MMPP{StateGaps: []float64{0, 0}, StateDwells: []float64{100, 100}}}},
		{"negative gap", Config{MMPP: &MMPP{StateGaps: []float64{-1, 4}, StateDwells: []float64{100, 100}}}},
		{"sub-cycle dwell", Config{MMPP: &MMPP{StateGaps: []float64{4, 8}, StateDwells: []float64{0.5, 100}}}},
		{"nan dwell", Config{MMPP: &MMPP{StateGaps: []float64{4, 8}, StateDwells: []float64{math.NaN(), 100}}}},
		{"zero sources", Config{SelfSimilar: &SelfSimilar{Sources: 0, Hurst: 0.8, OnMean: 10, OffMean: 10, PeakGap: 2}}},
		{"too many sources", Config{SelfSimilar: &SelfSimilar{Sources: MaxSources + 1, Hurst: 0.8, OnMean: 10, OffMean: 10, PeakGap: 2}}},
		{"hurst too low", Config{SelfSimilar: &SelfSimilar{Sources: 4, Hurst: 0.5, OnMean: 10, OffMean: 10, PeakGap: 2}}},
		{"hurst too high", Config{SelfSimilar: &SelfSimilar{Sources: 4, Hurst: 0.96, OnMean: 10, OffMean: 10, PeakGap: 2}}},
		{"zero peak gap", Config{SelfSimilar: &SelfSimilar{Sources: 4, Hurst: 0.8, OnMean: 10, OffMean: 10}}},
		{"both processes", Config{
			MMPP:        &MMPP{StateGaps: []float64{4, 0}, StateDwells: []float64{100, 100}},
			SelfSimilar: &SelfSimilar{Sources: 4, Hurst: 0.8, OnMean: 10, OffMean: 10, PeakGap: 2}}},
		{"negative class weight", Config{Classes: []float64{1, -1}}},
		{"zero-sum classes", Config{Classes: []float64{0, 0}}},
		{"too many classes", Config{Classes: make([]float64, MaxClasses+1)}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: New should panic", tc.name)
				}
			}()
			cfg := tc.cfg
			cfg.Ranges = testRange
			New(0, cfg, nopPort{})
		})
	}
}

func TestArrivalSourcesComplete(t *testing.T) {
	cfgs := map[string]Config{
		"mmpp-onoff": {MMPP: &MMPP{StateGaps: []float64{3, 0}, StateDwells: []float64{80, 160}}},
		"mmpp-det": {MMPP: &MMPP{StateGaps: []float64{4, 16}, StateDwells: []float64{100, 200},
			Deterministic: true}},
		"selfsim": {SelfSimilar: &SelfSimilar{Sources: 8, Hurst: 0.8, OnMean: 50, OffMean: 100, PeakGap: 4}},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			cfg.Count = 300
			cfg.Seed = 1
			g, _ := run(t, cfg)
			if g.Issued() != 300 {
				t.Fatalf("issued %d of 300", g.Issued())
			}
			if g.Latency.Count() == 0 {
				t.Fatal("no read latencies observed")
			}
		})
	}
}

// openLoopRate sums N open-loop inter-injection times (gap + the 1-cycle
// handshake) and returns injections per cycle.
func openLoopRate(t *testing.T, cfg Config, n int) float64 {
	t.Helper()
	cfg.Ranges = testRange
	g := New(0, cfg, nopPort{})
	var total uint64
	for i := 0; i < n; i++ {
		total += g.nextGap() + 1
	}
	return float64(n) / float64(total)
}

func TestMMPPRateMatchesAnalytic(t *testing.T) {
	m := &MMPP{StateGaps: []float64{3, 0}, StateDwells: []float64{300, 600}}
	want := m.Rate() / (1 + m.Rate())
	got := openLoopRate(t, Config{MMPP: m, Seed: 11}, 40_000)
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Fatalf("mmpp rate %.4f vs analytic %.4f (%.1f%% off)", got, want, rel*100)
	}
}

func TestDeterministicMMPPRateMatchesAnalytic(t *testing.T) {
	m := &MMPP{StateGaps: []float64{4, 16}, StateDwells: []float64{200, 400}, Deterministic: true}
	want := m.Rate() / (1 + m.Rate())
	got := openLoopRate(t, Config{MMPP: m, Seed: 11}, 40_000)
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Fatalf("deterministic mmpp rate %.4f vs analytic %.4f (%.1f%% off)", got, want, rel*100)
	}
}

func TestSelfSimilarRateMatchesAnalytic(t *testing.T) {
	s := &SelfSimilar{Sources: 16, Hurst: 0.75, OnMean: 100, OffMean: 300, PeakGap: 6}
	want := s.Rate() / (1 + s.Rate())
	got := openLoopRate(t, Config{SelfSimilar: s, Seed: 5}, 60_000)
	// Heavy-tailed on/off periods converge slowly; the tight CI check
	// lives in internal/valid where the sample variance sets the band.
	if rel := math.Abs(got-want) / want; rel > 0.25 {
		t.Fatalf("self-similar rate %.4f vs analytic %.4f (%.1f%% off)", got, want, rel*100)
	}
}

func TestMMPPBurstierThanPoisson(t *testing.T) {
	// An on/off chain at the same mean rate as a Poisson source must emit
	// clearly more back-to-back (zero-gap) injections.
	zeroGaps := func(cfg Config) int {
		cfg.Ranges = testRange
		cfg.Seed = 3
		g := New(0, cfg, nopPort{})
		zeros := 0
		for i := 0; i < 20_000; i++ {
			if g.nextGap() == 0 {
				zeros++
			}
		}
		return zeros
	}
	m := &MMPP{StateGaps: []float64{2, 0}, StateDwells: []float64{100, 300}}
	poisson := Config{Dist: Poisson, MeanGap: 1 / m.Rate()}
	if zm, zp := zeroGaps(Config{MMPP: m}), zeroGaps(poisson); zm <= zp*3/2 {
		t.Fatalf("mmpp zero gaps %d not clearly above poisson %d", zm, zp)
	}
}

func TestArrivalDeterministicWithSeed(t *testing.T) {
	cfgs := map[string]Config{
		"mmpp":    {MMPP: &MMPP{StateGaps: []float64{3, 0}, StateDwells: []float64{80, 160}}},
		"selfsim": {SelfSimilar: &SelfSimilar{Sources: 8, Hurst: 0.8, OnMean: 50, OffMean: 100, PeakGap: 4}},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			gaps := func() []uint64 {
				c := cfg
				c.Ranges = testRange
				c.Seed = 42
				g := New(0, c, nopPort{})
				out := make([]uint64, 500)
				for i := range out {
					out[i] = g.nextGap()
				}
				return out
			}
			a, b := gaps(), gaps()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("gap %d differs: %d vs %d", i, a[i], b[i])
				}
			}
		})
	}
}

func TestClassWeightsShapeTraffic(t *testing.T) {
	g, _ := run(t, Config{Dist: Poisson, MeanGap: 4, Count: 2000, Seed: 9,
		Classes: []float64{3, 1}})
	c0, c1 := g.classTxns[0].Value(), g.classTxns[1].Value()
	if c0+c1 != g.txns.Value() {
		t.Fatalf("class counts %d+%d != transactions %d", c0, c1, g.txns.Value())
	}
	ratio := float64(c0) / float64(c1)
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("class ratio %.2f, want ≈ 3", ratio)
	}
}

func TestClasslessRunUnchangedByClassField(t *testing.T) {
	// Adding the Classes axis must not disturb the rng stream of legacy
	// configs: a classless run reproduces the exact pre-axis schedule.
	base := Config{Dist: Poisson, MeanGap: 10, Count: 200, Seed: 42}
	g1, e1 := run(t, base)
	g2, e2 := run(t, base)
	if e1.Cycle() != e2.Cycle() || g1.HaltCycle() != g2.HaltCycle() {
		t.Fatal("classless runs must stay reproducible")
	}
	if g1.classTxns != nil {
		t.Fatal("classless generator must not allocate class counters")
	}
}
