package stochastic

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"noctg/internal/ocp"
)

// Pattern selects the spatial destination pattern of a generator: which
// node each transaction targets, as opposed to Dist, which only shapes the
// temporal gaps between transactions. The patterns are the classic NoC
// evaluation set (uniform random, transpose, bit-complement, bit-reverse,
// hotspot, nearest-neighbour), defined over a logical W×H grid of master
// nodes — node i sits at (i mod W, i div W).
type Pattern int

const (
	// UniformRandom draws every destination uniformly from all nodes
	// (excluding the source unless AllowSelf is set).
	UniformRandom Pattern = iota
	// Transpose sends node (x, y) to node (y, x). It requires a square
	// grid and is an involution; diagonal nodes map to themselves
	// regardless of AllowSelf.
	Transpose
	// BitComplement sends node i to node ^i (mod the node count), which
	// must be a power of two. It is an involution and never self-targets.
	BitComplement
	// BitReverse sends node i to the node whose index reverses i's
	// log2(nodes) bits. The node count must be a power of two; it is an
	// involution, and palindromic indices map to themselves regardless of
	// AllowSelf.
	BitReverse
	// Hotspot concentrates a configured fraction of the traffic on
	// weighted hotspot nodes and spreads the remainder uniformly over the
	// unweighted nodes. Explicit weights override self-exclusion: a
	// weighted node draws itself with its configured probability even
	// without AllowSelf (the remainder mass still avoids the source).
	Hotspot
	// NearestNeighbor draws uniformly among the source's grid neighbours
	// (with wrap-around on the logical grid, so every node has the same
	// neighbour count).
	NearestNeighbor
)

func (p Pattern) String() string {
	switch p {
	case UniformRandom:
		return "uniform"
	case Transpose:
		return "transpose"
	case BitComplement:
		return "bitcomp"
	case BitReverse:
		return "bitrev"
	case Hotspot:
		return "hotspot"
	case NearestNeighbor:
		return "neighbor"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// ParsePattern converts a flag or JSON value into a Pattern.
func ParsePattern(s string) (Pattern, error) {
	for p := UniformRandom; p <= NearestNeighbor; p++ {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("stochastic: unknown pattern %q (want uniform, transpose, bitcomp, bitrev, hotspot or neighbor)", s)
}

// Deterministic reports whether the pattern maps each source to one fixed
// destination (so a generator's destination sequence is constant).
func (p Pattern) Deterministic() bool {
	return p == Transpose || p == BitComplement || p == BitReverse
}

// MaxGridDim bounds each logical grid dimension so hostile scenario files
// cannot make Validate (or callers building per-node destination tables)
// allocate unbounded memory.
const MaxGridDim = 1024

// Spatial describes a spatial traffic pattern over a logical W×H grid of
// master nodes. Dests maps each logical node to the address range its
// traffic lands in (typically node d's private memory through the
// platform's address map), so a pattern draw becomes an OCP address.
type Spatial struct {
	// Pattern picks the destination function.
	Pattern Pattern
	// W, H are the logical grid dimensions; W·H is the node count.
	W, H int
	// Dests[d] is the target address range of logical node d. Its length
	// must equal W·H.
	Dests []ocp.AddrRange
	// HotspotWeights gives, per node, the fraction of all traffic pulled
	// to that node (Hotspot only). The weights must lie in [0, 1] and sum
	// to at most 1; the remainder is spread uniformly over the
	// zero-weight nodes.
	HotspotWeights []float64
	// AllowSelf permits a randomized pattern to draw the source itself.
	// Deterministic patterns (Transpose, BitReverse) ignore it on their
	// fixed points.
	AllowSelf bool
}

// hotspotSumTol absorbs float accumulation error when checking that the
// hotspot weights do not exceed unit mass.
const hotspotSumTol = 1e-9

// Validate checks the pattern's structural constraints. It never panics,
// whatever the field values — the scenario fuzz target feeds it garbage.
func (s Spatial) Validate() error {
	if s.W < 1 || s.H < 1 {
		return fmt.Errorf("stochastic: spatial grid %dx%d must be at least 1x1", s.W, s.H)
	}
	if s.W > MaxGridDim || s.H > MaxGridDim {
		return fmt.Errorf("stochastic: spatial grid %dx%d exceeds %dx%d", s.W, s.H, MaxGridDim, MaxGridDim)
	}
	nodes := s.W * s.H
	if nodes < 2 {
		return fmt.Errorf("stochastic: spatial grid %dx%d needs at least 2 nodes", s.W, s.H)
	}
	if len(s.Dests) != nodes {
		return fmt.Errorf("stochastic: %d destination ranges for %d nodes", len(s.Dests), nodes)
	}
	for d, r := range s.Dests {
		if r.Size < 4 {
			return fmt.Errorf("stochastic: destination %d range %v holds no word", d, r)
		}
	}
	if s.Pattern < UniformRandom || s.Pattern > NearestNeighbor {
		return fmt.Errorf("stochastic: invalid pattern %v", s.Pattern)
	}
	if s.Pattern == Transpose && s.W != s.H {
		return fmt.Errorf("stochastic: transpose needs a square grid, got %dx%d", s.W, s.H)
	}
	if (s.Pattern == BitComplement || s.Pattern == BitReverse) && nodes&(nodes-1) != 0 {
		return fmt.Errorf("stochastic: %v needs a power-of-two node count, got %d", s.Pattern, nodes)
	}
	if s.Pattern == Hotspot {
		if len(s.HotspotWeights) == 0 {
			return fmt.Errorf("stochastic: hotspot pattern needs weights")
		}
		if len(s.HotspotWeights) > nodes {
			return fmt.Errorf("stochastic: %d hotspot weights for %d nodes", len(s.HotspotWeights), nodes)
		}
		sum, cold := 0.0, nodes-len(s.HotspotWeights)
		for n, w := range s.HotspotWeights {
			if math.IsNaN(w) || w < 0 || w > 1 {
				return fmt.Errorf("stochastic: hotspot weight %g of node %d outside [0,1]", w, n)
			}
			if w == 0 {
				cold++
			}
			sum += w
		}
		if sum > 1+hotspotSumTol {
			return fmt.Errorf("stochastic: hotspot weights sum to %g > 1", sum)
		}
		if sum < 1-hotspotSumTol {
			// The remainder mass needs a cold node for *every* source: a
			// lone cold node cannot receive its own remainder draws, so
			// without AllowSelf it would leave that node's draw set empty.
			if cold == 0 {
				return fmt.Errorf("stochastic: hotspot weights sum to %g < 1 with no unweighted node for the remainder", sum)
			}
			if cold == 1 && !s.AllowSelf {
				return fmt.Errorf("stochastic: hotspot weights sum to %g < 1 with a single unweighted node, which cannot draw its own remainder without AllowSelf", sum)
			}
		}
	} else if len(s.HotspotWeights) != 0 {
		return fmt.Errorf("stochastic: pattern %v takes no hotspot weights", s.Pattern)
	}
	return nil
}

// Sampler is the compiled form of a Spatial: per-source destination tables
// built once, so the per-transaction draw allocates nothing.
type Sampler struct {
	spec  Spatial
	nodes int
	// fixed[src] is the destination of a deterministic pattern, -1 for
	// randomized patterns.
	fixed []int
	// candidates[src] lists the draw set of a randomized pattern
	// (uniform/neighbour targets, hotspot cold nodes).
	candidates [][]int
	// hotNodes/hotCum hold the weighted hotspot nodes and the cumulative
	// weight ladder; hotSum is the total hotspot mass.
	hotNodes []int
	hotCum   []float64
	hotSum   float64
}

// NewSampler validates and compiles a spatial pattern.
func NewSampler(s Spatial) (*Sampler, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	nodes := s.W * s.H
	sp := &Sampler{spec: s, nodes: nodes}
	switch s.Pattern {
	case Transpose:
		sp.fixed = make([]int, nodes)
		for src := range sp.fixed {
			x, y := src%s.W, src/s.W
			sp.fixed[src] = x*s.W + y
		}
	case BitComplement:
		sp.fixed = make([]int, nodes)
		for src := range sp.fixed {
			sp.fixed[src] = ^src & (nodes - 1)
		}
	case BitReverse:
		shift := bits.UintSize - bits.Len(uint(nodes-1))
		sp.fixed = make([]int, nodes)
		for src := range sp.fixed {
			sp.fixed[src] = int(bits.Reverse(uint(src)) >> shift)
		}
	case UniformRandom, Hotspot, NearestNeighbor:
		if s.Pattern == Hotspot {
			for n, w := range s.HotspotWeights {
				if w > 0 {
					sp.hotNodes = append(sp.hotNodes, n)
					sp.hotSum += w
					sp.hotCum = append(sp.hotCum, sp.hotSum)
				}
			}
		}
		sp.candidates = make([][]int, nodes)
		for src := 0; src < nodes; src++ {
			sp.candidates[src] = s.drawSet(src)
			if len(sp.candidates[src]) == 0 && !(s.Pattern == Hotspot && sp.hotSum >= 1-hotspotSumTol) {
				return nil, fmt.Errorf("stochastic: node %d of pattern %v has no destination to draw", src, s.Pattern)
			}
		}
	}
	return sp, nil
}

// drawSet enumerates the randomized draw candidates of one source node.
func (s Spatial) drawSet(src int) []int {
	nodes := s.W * s.H
	var set []int
	switch s.Pattern {
	case UniformRandom:
		for d := 0; d < nodes; d++ {
			if d != src || s.AllowSelf {
				set = append(set, d)
			}
		}
	case Hotspot:
		// Cold set: the unweighted nodes the remainder mass spreads over.
		for d := 0; d < nodes; d++ {
			if d < len(s.HotspotWeights) && s.HotspotWeights[d] > 0 {
				continue
			}
			if d != src || s.AllowSelf {
				set = append(set, d)
			}
		}
	case NearestNeighbor:
		x, y := src%s.W, src/s.W
		for _, nb := range [4][2]int{
			{x, (y - 1 + s.H) % s.H},
			{(x + 1) % s.W, y},
			{x, (y + 1) % s.H},
			{(x - 1 + s.W) % s.W, y},
		} {
			d := nb[1]*s.W + nb[0]
			if d == src && !s.AllowSelf {
				continue
			}
			dup := false
			for _, e := range set {
				dup = dup || e == d
			}
			if !dup {
				set = append(set, d)
			}
		}
	}
	return set
}

// Nodes returns the logical node count.
func (sp *Sampler) Nodes() int { return sp.nodes }

// Dest draws the destination node for one transaction from src. It is
// deterministic given the rng state and performs no allocation.
func (sp *Sampler) Dest(src int, rng *rand.Rand) int {
	if src < 0 || src >= sp.nodes {
		panic(fmt.Sprintf("stochastic: source %d outside %d-node grid", src, sp.nodes))
	}
	if sp.fixed != nil {
		return sp.fixed[src]
	}
	if sp.spec.Pattern == Hotspot {
		if u := rng.Float64(); u < sp.hotSum {
			for i, c := range sp.hotCum {
				if u < c {
					return sp.hotNodes[i]
				}
			}
			return sp.hotNodes[len(sp.hotNodes)-1]
		}
		if set := sp.candidates[src]; len(set) > 0 {
			return set[rng.Intn(len(set))]
		}
		// Weights sum to 1 but the draw landed in the float tail: fold it
		// onto the last hotspot.
		return sp.hotNodes[len(sp.hotNodes)-1]
	}
	set := sp.candidates[src]
	return set[rng.Intn(len(set))]
}

// Range returns the address range of logical node d.
func (sp *Sampler) Range(d int) ocp.AddrRange { return sp.spec.Dests[d] }
