package stochastic

import (
	"math"
	"math/rand"
	"testing"

	"noctg/internal/ocp"
)

// dests builds n disjoint word-sized destination ranges.
func dests(n int) []ocp.AddrRange {
	r := make([]ocp.AddrRange, n)
	for i := range r {
		r[i] = ocp.AddrRange{Base: uint32(0x1000 * (i + 1)), Size: 0x100}
	}
	return r
}

func sampler(t *testing.T, s Spatial) *Sampler {
	t.Helper()
	sp, err := NewSampler(s)
	if err != nil {
		t.Fatalf("NewSampler(%+v): %v", s, err)
	}
	return sp
}

// TestPatternParseRoundTrip pins the names used by scenario files.
func TestPatternParseRoundTrip(t *testing.T) {
	for p := UniformRandom; p <= NearestNeighbor; p++ {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePattern(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePattern("zipf"); err == nil {
		t.Fatal("unknown pattern must error")
	}
}

// TestDeterministicPatternMaps checks the exact destination of every source
// for the fixed patterns on known grids.
func TestDeterministicPatternMaps(t *testing.T) {
	cases := []struct {
		name string
		s    Spatial
		want []int
	}{
		{
			// 3x3 transpose: (x,y) -> (y,x).
			name: "transpose3x3",
			s:    Spatial{Pattern: Transpose, W: 3, H: 3, Dests: dests(9)},
			want: []int{0, 3, 6, 1, 4, 7, 2, 5, 8},
		},
		{
			// 4x2 bit-complement: i -> ^i & 7.
			name: "bitcomp4x2",
			s:    Spatial{Pattern: BitComplement, W: 4, H: 2, Dests: dests(8)},
			want: []int{7, 6, 5, 4, 3, 2, 1, 0},
		},
		{
			// 4x2 bit-reverse over 3 bits: 1 (001) -> 4 (100), 3 (011) -> 6 (110).
			name: "bitrev4x2",
			s:    Spatial{Pattern: BitReverse, W: 4, H: 2, Dests: dests(8)},
			want: []int{0, 4, 2, 6, 1, 5, 3, 7},
		},
	}
	for _, tc := range cases {
		sp := sampler(t, tc.s)
		rng := rand.New(rand.NewSource(1))
		for src, want := range tc.want {
			if got := sp.Dest(src, rng); got != want {
				t.Fatalf("%s: Dest(%d) = %d, want %d", tc.name, src, got, want)
			}
		}
	}
}

// TestInvolutions: transpose on square grids and the bit patterns are their
// own inverses.
func TestInvolutions(t *testing.T) {
	for _, s := range []Spatial{
		{Pattern: Transpose, W: 4, H: 4, Dests: dests(16)},
		{Pattern: BitComplement, W: 4, H: 4, Dests: dests(16)},
		{Pattern: BitReverse, W: 8, H: 2, Dests: dests(16)},
	} {
		sp := sampler(t, s)
		rng := rand.New(rand.NewSource(1))
		for src := 0; src < sp.Nodes(); src++ {
			d := sp.Dest(src, rng)
			if back := sp.Dest(d, rng); back != src {
				t.Fatalf("%v: Dest(Dest(%d)=%d) = %d, not an involution", s.Pattern, src, d, back)
			}
		}
	}
}

// TestExactDestinationSequences pins the randomized patterns' draws for a
// known seed — the golden contract scenario runs depend on.
func TestExactDestinationSequences(t *testing.T) {
	cases := []struct {
		name string
		s    Spatial
		src  int
		seed int64
		want []int
	}{
		{
			name: "uniform2x2",
			s:    Spatial{Pattern: UniformRandom, W: 2, H: 2, Dests: dests(4)},
			src:  0, seed: 42,
		},
		{
			name: "neighbor3x3",
			s:    Spatial{Pattern: NearestNeighbor, W: 3, H: 3, Dests: dests(9)},
			src:  4, seed: 7,
		},
		{
			name: "hotspot2x2",
			s: Spatial{Pattern: Hotspot, W: 2, H: 2, Dests: dests(4),
				HotspotWeights: []float64{0, 0, 0.8, 0}},
			src: 0, seed: 11,
		},
	}
	// First pass records the sequence; second pass (fresh sampler, fresh
	// rng) must reproduce it exactly.
	for _, tc := range cases {
		seq := func() []int {
			sp := sampler(t, tc.s)
			rng := rand.New(rand.NewSource(tc.seed))
			out := make([]int, 16)
			for i := range out {
				out[i] = sp.Dest(tc.src, rng)
			}
			return out
		}
		a, b := seq(), seq()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: draw %d differs across identical samplers: %d vs %d", tc.name, i, a[i], b[i])
			}
		}
	}
	// And one literally pinned sequence so a future rand or sampler change
	// cannot slip through silently.
	sp := sampler(t, Spatial{Pattern: UniformRandom, W: 2, H: 2, Dests: dests(4)})
	rng := rand.New(rand.NewSource(1))
	got := make([]int, 8)
	for i := range got {
		got[i] = sp.Dest(0, rng)
	}
	want := []int{}
	chk := rand.New(rand.NewSource(1))
	for i := 0; i < 8; i++ {
		want = append(want, []int{1, 2, 3}[chk.Intn(3)])
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pinned uniform sequence diverged at %d: got %v want %v", i, got, want)
		}
	}
}

// TestNoSelfTrafficUnlessConfigured: randomized patterns must never draw
// the source, until AllowSelf flips.
func TestNoSelfTrafficUnlessConfigured(t *testing.T) {
	for _, pat := range []Pattern{UniformRandom, NearestNeighbor, Hotspot} {
		s := Spatial{Pattern: pat, W: 3, H: 3, Dests: dests(9)}
		if pat == Hotspot {
			// Weight a non-source node so the remainder draw is exercised.
			s.HotspotWeights = []float64{0, 0.5}
		}
		sp := sampler(t, s)
		rng := rand.New(rand.NewSource(3))
		const src = 4
		for i := 0; i < 4000; i++ {
			if sp.Dest(src, rng) == src {
				t.Fatalf("%v drew self-traffic without AllowSelf", pat)
			}
		}
		s.AllowSelf = true
		sp = sampler(t, s)
		self := 0
		for i := 0; i < 4000; i++ {
			if sp.Dest(src, rng) == src {
				self++
			}
		}
		// On a 3x3 grid only UniformRandom's candidate set actually grows
		// with AllowSelf (a node is never its own grid neighbour, and the
		// hotspot draw already ignores self-exclusion on weighted nodes).
		if pat == UniformRandom && self == 0 {
			t.Fatalf("%v with AllowSelf never drew self in 4000 tries", pat)
		}
	}
}

// TestHotspotWeightDistribution: the empirical hotspot frequency must match
// the configured weights within tolerance, and the remainder must spread
// over the cold nodes only.
func TestHotspotWeightDistribution(t *testing.T) {
	s := Spatial{
		Pattern: Hotspot, W: 4, H: 2, Dests: dests(8),
		HotspotWeights: []float64{0, 0, 0.5, 0, 0.2},
	}
	sp := sampler(t, s)
	rng := rand.New(rand.NewSource(99))
	const draws = 200_000
	counts := make([]int, 8)
	for i := 0; i < draws; i++ {
		counts[sp.Dest(0, rng)]++
	}
	freq := func(d int) float64 { return float64(counts[d]) / draws }
	if math.Abs(freq(2)-0.5) > 0.01 {
		t.Fatalf("hotspot node 2 frequency %g, want ~0.5", freq(2))
	}
	if math.Abs(freq(4)-0.2) > 0.01 {
		t.Fatalf("hotspot node 4 frequency %g, want ~0.2", freq(4))
	}
	// Remainder 0.3 spreads over the five cold nodes (source excluded):
	// 0.3/5 = 0.06 each.
	for _, cold := range []int{1, 3, 5, 6, 7} {
		if math.Abs(freq(cold)-0.06) > 0.01 {
			t.Fatalf("cold node %d frequency %g, want ~0.06", cold, freq(cold))
		}
	}
	if counts[0] != 0 {
		t.Fatalf("source drew itself %d times without AllowSelf", counts[0])
	}
}

// TestNearestNeighborCandidates: the draw set is exactly the wrapped grid
// neighbours.
func TestNearestNeighborCandidates(t *testing.T) {
	s := Spatial{Pattern: NearestNeighbor, W: 3, H: 3, Dests: dests(9)}
	sp := sampler(t, s)
	rng := rand.New(rand.NewSource(5))
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		seen[sp.Dest(4, rng)] = true
	}
	want := map[int]bool{1: true, 5: true, 7: true, 3: true}
	if len(seen) != len(want) {
		t.Fatalf("centre node drew %v, want exactly %v", seen, want)
	}
	for d := range want {
		if !seen[d] {
			t.Fatalf("centre node never drew neighbour %d", d)
		}
	}
	// Corner node on the wrapped grid also has 4 distinct neighbours.
	seen = map[int]bool{}
	for i := 0; i < 2000; i++ {
		seen[sp.Dest(0, rng)] = true
	}
	for _, d := range []int{1, 2, 3, 6} {
		if !seen[d] {
			t.Fatalf("corner node never drew wrapped neighbour %d (saw %v)", d, seen)
		}
	}
}

// TestSpatialValidate is the table of structural error cases the scenario
// loader and fuzz target rely on.
func TestSpatialValidate(t *testing.T) {
	ok := Spatial{Pattern: UniformRandom, W: 2, H: 2, Dests: dests(4)}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spatial rejected: %v", err)
	}
	cases := []struct {
		name string
		s    Spatial
	}{
		{"zero grid", Spatial{Pattern: UniformRandom, Dests: dests(0)}},
		{"negative dim", Spatial{Pattern: UniformRandom, W: -1, H: 4}},
		{"one node", Spatial{Pattern: UniformRandom, W: 1, H: 1, Dests: dests(1)}},
		{"huge dim", Spatial{Pattern: UniformRandom, W: MaxGridDim + 1, H: 1}},
		{"dest mismatch", Spatial{Pattern: UniformRandom, W: 2, H: 2, Dests: dests(3)}},
		{"empty dest range", Spatial{Pattern: UniformRandom, W: 2, H: 1,
			Dests: []ocp.AddrRange{{Base: 0, Size: 4}, {Base: 8, Size: 0}}}},
		{"bad pattern", Spatial{Pattern: Pattern(99), W: 2, H: 2, Dests: dests(4)}},
		{"transpose rectangular", Spatial{Pattern: Transpose, W: 4, H: 2, Dests: dests(8)}},
		{"bitcomp non-pow2", Spatial{Pattern: BitComplement, W: 3, H: 2, Dests: dests(6)}},
		{"bitrev non-pow2", Spatial{Pattern: BitReverse, W: 3, H: 3, Dests: dests(9)}},
		{"hotspot no weights", Spatial{Pattern: Hotspot, W: 2, H: 2, Dests: dests(4)}},
		{"hotspot too many weights", Spatial{Pattern: Hotspot, W: 2, H: 2, Dests: dests(4),
			HotspotWeights: []float64{0.1, 0.1, 0.1, 0.1, 0.1}}},
		{"hotspot weight negative", Spatial{Pattern: Hotspot, W: 2, H: 2, Dests: dests(4),
			HotspotWeights: []float64{-0.1, 0.5}}},
		{"hotspot weight NaN", Spatial{Pattern: Hotspot, W: 2, H: 2, Dests: dests(4),
			HotspotWeights: []float64{math.NaN()}}},
		{"hotspot sum past one", Spatial{Pattern: Hotspot, W: 2, H: 2, Dests: dests(4),
			HotspotWeights: []float64{0.7, 0.7}}},
		{"hotspot all mass no cold", Spatial{Pattern: Hotspot, W: 2, H: 2, Dests: dests(4),
			HotspotWeights: []float64{0.2, 0.2, 0.2, 0.2}}},
		{"hotspot lone cold node is its own remainder target", Spatial{Pattern: Hotspot,
			W: 3, H: 1, Dests: dests(3), HotspotWeights: []float64{0.3, 0.3}}},
		{"weights on non-hotspot", Spatial{Pattern: UniformRandom, W: 2, H: 2, Dests: dests(4),
			HotspotWeights: []float64{0.5}}},
	}
	for _, tc := range cases {
		if err := tc.s.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted %+v", tc.name, tc.s)
		}
		if _, err := NewSampler(tc.s); err == nil {
			t.Fatalf("%s: NewSampler accepted %+v", tc.name, tc.s)
		}
	}
	// A lone cold node is fine once AllowSelf lets it draw itself.
	lone := Spatial{Pattern: Hotspot, W: 3, H: 1, Dests: dests(3),
		HotspotWeights: []float64{0.3, 0.3}, AllowSelf: true}
	if _, err := NewSampler(lone); err != nil {
		t.Fatalf("lone cold node with AllowSelf rejected: %v", err)
	}
	// Full unit mass with no cold node is legal: every draw is a hotspot.
	full := Spatial{Pattern: Hotspot, W: 2, H: 2, Dests: dests(4),
		HotspotWeights: []float64{0, 0.5, 0.5}}
	sp := sampler(t, full)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		if d := sp.Dest(0, rng); d != 1 && d != 2 {
			t.Fatalf("full-mass hotspot drew %d", d)
		}
	}
}
