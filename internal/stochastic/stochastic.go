// Package stochastic implements the statistical traffic generators of the
// paper's related work (Lahiri et al. [6]): synthetic masters whose
// inter-transaction gaps follow uniform, Gaussian, Poisson or bursty on/off
// distributions. The paper's Section 2 argues such models "assume a degree
// of correlation within the communication transactions which is unlikely in
// a SoC environment"; the ablation benches quantify that claim against
// trace-driven TGs.
//
// Orthogonally to the temporal Dist, a Spatial pattern shapes *where* the
// traffic goes: the classic NoC evaluation set (uniform random, transpose,
// bit-complement, bit-reverse, hotspot, nearest-neighbour) defined over a
// logical grid of masters, with each logical destination mapped onto a
// slave address range through the platform's address map. Dist × Pattern
// spans the synthetic scenario space of internal/scenario.
package stochastic

import (
	"fmt"

	"math/rand"

	"noctg/internal/ocp"
	"noctg/internal/sim"
)

// Dist selects the inter-arrival distribution.
type Dist int

const (
	// Uniform draws gaps uniformly from [0, 2·MeanGap].
	Uniform Dist = iota
	// Gaussian draws gaps from N(MeanGap, StdDev²), clamped at zero.
	Gaussian
	// Poisson draws exponential gaps with mean MeanGap (a Poisson process).
	Poisson
	// Bursty alternates bursts of back-to-back transactions with long
	// off-periods, keeping the same mean rate.
	Bursty
)

func (d Dist) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	}
	return fmt.Sprintf("Dist(%d)", int(d))
}

// Config describes a stochastic master.
type Config struct {
	// Dist is the inter-arrival model.
	Dist Dist
	// MeanGap is the mean idle gap between transactions in cycles.
	MeanGap float64
	// StdDev is the Gaussian standard deviation (default MeanGap/4).
	StdDev float64
	// BurstLen is the mean burst length for Bursty (default 8).
	BurstLen int
	// ReadFraction is the probability a transaction is a read (default 0.6).
	ReadFraction float64
	// Ranges are the target address ranges, picked uniformly. Ignored
	// when Spatial is set.
	Ranges []ocp.AddrRange
	// Spatial selects a spatial destination pattern: each transaction's
	// target node comes from the pattern over the logical master grid,
	// and the address is drawn uniformly inside that node's range. The
	// generator id is its logical grid position.
	Spatial *Spatial
	// Count is the number of transactions to issue.
	Count int
	// Seed makes the generator deterministic.
	Seed int64

	// MMPP selects the Markov-modulated bursty arrival process; when set
	// it replaces Dist/MeanGap as the temporal model (see arrival.go).
	MMPP *MMPP
	// SelfSimilar selects the superposed Pareto on/off arrival process;
	// mutually exclusive with MMPP.
	SelfSimilar *SelfSimilar
	// Classes are relative per-message-class injection weights. When set,
	// every transaction draws a class c with probability
	// Classes[c]/sum(Classes), tags the request's Class field, and
	// completed transactions are counted per class in the stats registry
	// ("classN/transactions"). The fabrics forward the tag untouched —
	// arbitration stays class-blind — so classes shape the offered mix,
	// not the service order.
	Classes []float64
}

func (c Config) withDefaults() Config {
	if c.MeanGap <= 0 {
		c.MeanGap = 10
	}
	if c.StdDev <= 0 {
		c.StdDev = c.MeanGap / 4
	}
	if c.BurstLen <= 0 {
		c.BurstLen = 8
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.6
	}
	if c.Count == 0 {
		c.Count = 1000
	}
	return c
}

type genState int

const (
	gIdle genState = iota
	gIssue
	gResp
	gDone
)

// Generator is a stochastic OCP master. It implements platform.Master.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	port    ocp.MasterPort
	hinter  ocp.WakeHinter // port's optional stall-horizon interface
	id      int
	sampler *Sampler // non-nil when cfg.Spatial is set

	// arrival is non-nil when an MMPP or self-similar process replaces
	// the Dist gap draw.
	arrival arrival
	// classCum is the cumulative class-weight distribution (nil without
	// Classes); classTxns counts completed transactions per class.
	classCum  []float64
	classTxns []sim.Counter

	issued int
	// wakeAt is the absolute cycle at which the next transaction is built
	// and presented; absolute deadlines let the skip kernel jump the whole
	// inter-transaction gap.
	wakeAt   uint64
	burstPos int
	state    genState
	req      ocp.Request
	reqStart uint64
	// wbuf is the reusable one-word write payload. Both fabrics copy the
	// payload into their own storage at accept (the ocp.MasterPort
	// contract), and nextRequest only runs after the previous request was
	// accepted, so one scratch word keeps the issue path allocation-free.
	wbuf [1]uint32
	// assertAt is the cycle the current request was first presented,
	// anchoring the assert-to-response ReqLatency samples.
	assertAt uint64

	halted    bool
	haltCycle uint64
	// Latency accumulates accept-to-response read latencies for reporting;
	// ReqLatency accumulates assert-to-response latencies (service plus
	// source queueing — the load-latency curve metric).
	Latency    *sim.Histogram
	ReqLatency *sim.Histogram
	// txns/reads count completed transactions (accepted writes + responded
	// reads) for the ocp.TrafficMeter view phased measurement aggregates
	// when no trace monitor wraps the port (open-loop curve runs).
	txns  sim.Counter
	reads sim.Counter
}

// New builds a stochastic master with the given id over port. With a
// spatial pattern configured, id is the generator's logical grid node and
// must lie inside the pattern grid.
func New(id int, cfg Config, port ocp.MasterPort) *Generator {
	if port == nil {
		panic("stochastic: New requires a port")
	}
	var sampler *Sampler
	if cfg.Spatial != nil {
		var err error
		if sampler, err = NewSampler(*cfg.Spatial); err != nil {
			panic(err.Error())
		}
		if id < 0 || id >= sampler.Nodes() {
			panic(fmt.Sprintf("stochastic: generator %d outside the %dx%d pattern grid",
				id, cfg.Spatial.W, cfg.Spatial.H))
		}
	} else if len(cfg.Ranges) == 0 {
		panic("stochastic: Config.Ranges must not be empty")
	}
	cfg = cfg.withDefaults()
	g := &Generator{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed + int64(id)*7919)),
		port:       port,
		id:         id,
		sampler:    sampler,
		Latency:    sim.NewLatencyHistogram(),
		ReqLatency: sim.NewLatencyHistogram(),
	}
	g.hinter, _ = port.(ocp.WakeHinter)
	g.arrival = newArrival(cfg, g.rng)
	if len(cfg.Classes) > 0 {
		if err := ValidateClasses(cfg.Classes); err != nil {
			panic(err.Error())
		}
		g.classCum = classCum(cfg.Classes)
		g.classTxns = make([]sim.Counter, len(cfg.Classes))
	}
	return g
}

// Name implements sim.Named.
func (g *Generator) Name() string { return fmt.Sprintf("stoch%d", g.id) }

// Done reports whether all transactions have been issued and completed.
func (g *Generator) Done() bool { return g.halted }

// HaltCycle returns the completion cycle.
func (g *Generator) HaltCycle() uint64 { return g.haltCycle }

// Issued returns the number of transactions issued so far.
func (g *Generator) Issued() int { return g.issued }

// Transactions implements ocp.TrafficMeter: completed transactions
// (accepted writes plus responded reads).
func (g *Generator) Transactions() uint64 { return g.txns.Value() }

// Reads implements ocp.TrafficMeter.
func (g *Generator) Reads() uint64 { return g.reads.Value() }

// LatencyHist implements ocp.TrafficMeter.
func (g *Generator) LatencyHist() *sim.Histogram { return g.Latency }

// RequestLatencyHist implements ocp.TrafficMeter.
func (g *Generator) RequestLatencyHist() *sim.Histogram { return g.ReqLatency }

// RegisterStats implements sim.StatsSource.
func (g *Generator) RegisterStats(r *sim.Registry) {
	r.RegisterCounter("transactions", &g.txns)
	r.RegisterCounter("reads", &g.reads)
	for i := range g.classTxns {
		r.RegisterCounter(fmt.Sprintf("class%d/transactions", i), &g.classTxns[i])
	}
	r.RegisterHistogram("latency", g.Latency)
	r.RegisterHistogram("req_latency", g.ReqLatency)
}

// nextGap draws the next inter-transaction gap.
func (g *Generator) nextGap() uint64 {
	if g.arrival != nil {
		return g.arrival.nextGap(g.rng)
	}
	switch g.cfg.Dist {
	case Uniform:
		return uint64(g.rng.Float64() * 2 * g.cfg.MeanGap)
	case Gaussian:
		v := g.rng.NormFloat64()*g.cfg.StdDev + g.cfg.MeanGap
		if v < 0 {
			v = 0
		}
		return uint64(v)
	case Poisson:
		return uint64(g.rng.ExpFloat64() * g.cfg.MeanGap)
	case Bursty:
		// Within a burst: back-to-back. Between bursts: a gap long enough
		// to preserve the mean rate.
		g.burstPos++
		if g.burstPos < g.cfg.BurstLen {
			return 0
		}
		g.burstPos = 0
		return uint64(g.rng.ExpFloat64() * g.cfg.MeanGap * float64(g.cfg.BurstLen))
	}
	return uint64(g.cfg.MeanGap)
}

// nextRequest draws the next transaction: the spatial pattern (or the
// uniform range pick) chooses where, then a word inside that range and the
// read/write coin choose what.
func (g *Generator) nextRequest() ocp.Request {
	var r ocp.AddrRange
	if g.sampler != nil {
		r = g.sampler.Range(g.sampler.Dest(g.id, g.rng))
	} else {
		r = g.cfg.Ranges[g.rng.Intn(len(g.cfg.Ranges))]
	}
	words := r.Size / 4
	addr := r.Base + uint32(g.rng.Intn(int(words)))*4
	read := g.rng.Float64() < g.cfg.ReadFraction
	// The class draw comes after the legacy draws and only when classes
	// are configured, so classless generators consume the exact rng
	// stream they always did (the goldens pin this).
	class := 0
	if len(g.classCum) > 0 {
		u := g.rng.Float64()
		for u > g.classCum[class] {
			class++
		}
	}
	if read {
		return ocp.Request{Cmd: ocp.Read, Addr: addr, Burst: 1, MasterID: g.id, Class: class}
	}
	g.wbuf[0] = g.rng.Uint32()
	return ocp.Request{Cmd: ocp.Write, Addr: addr, Burst: 1,
		Data: g.wbuf[:], MasterID: g.id, Class: class}
}

// Tick implements sim.Device.
func (g *Generator) Tick(cycle uint64) {
	switch g.state {
	case gDone:
		return
	case gIdle:
		if g.issued >= g.cfg.Count {
			g.halted = true
			g.haltCycle = cycle
			g.state = gDone
			return
		}
		if cycle < g.wakeAt {
			return
		}
		g.req = g.nextRequest()
		g.assertAt = cycle
		g.state = gIssue
		fallthrough
	case gIssue:
		if g.port.TryRequest(&g.req) {
			g.issued++
			if g.req.Cmd.IsRead() {
				g.reqStart = cycle
				g.state = gResp
			} else {
				g.txns.Inc()
				if g.classTxns != nil {
					g.classTxns[g.req.Class].Inc()
				}
				g.wakeAt = cycle + g.nextGap() + 1
				g.state = gIdle
			}
		}
	case gResp:
		if _, ok := g.port.TakeResponse(); ok {
			g.Latency.Observe(cycle - g.reqStart)
			g.ReqLatency.Observe(cycle - g.assertAt)
			g.txns.Inc()
			if g.classTxns != nil {
				g.classTxns[g.req.Class].Inc()
			}
			g.reads.Inc()
			g.wakeAt = cycle + g.nextGap() + 1
			g.state = gIdle
		}
	}
}

// NextWake implements sim.Sleeper: a finished generator never wakes, an
// idle one wakes at its next scheduled injection, and one mid-handshake
// must be ticked every cycle. A generator that has issued its full count
// also asks for one more tick, in which it records its halt. The
// inter-injection sleep is a strict "will not act before" promise — the
// schedule is drawn up front and no external input can advance it — so the
// event kernel may drop the generator from the tick loop until wakeAt.
func (g *Generator) NextWake(now uint64) uint64 {
	switch g.state {
	case gDone:
		return sim.WakeNever
	case gIdle:
		if g.issued < g.cfg.Count && g.wakeAt > now {
			return g.wakeAt
		}
	case gIssue, gResp:
		// Blocked on the interconnect: sleep to the port's stall horizon
		// when it can bound one (see ocp.WakeHinter).
		if g.hinter != nil {
			if w := g.hinter.WakeHint(now); w > now {
				return w
			}
		}
	}
	return now
}

// TickWake implements sim.TickSleeper (Tick then NextWake in one dispatch).
func (g *Generator) TickWake(cycle uint64) uint64 {
	g.Tick(cycle)
	return g.NextWake(cycle + 1)
}

var _ sim.Device = (*Generator)(nil)
var _ sim.StatsSource = (*Generator)(nil)
var _ ocp.TrafficMeter = (*Generator)(nil)
var _ sim.Sleeper = (*Generator)(nil)
var _ sim.TickSleeper = (*Generator)(nil)
