package stochastic

import (
	"testing"

	"noctg/internal/amba"
	"noctg/internal/mem"
	"noctg/internal/ocp"
	"noctg/internal/sim"
)

func run(t *testing.T, cfg Config) (*Generator, *sim.Engine) {
	t.Helper()
	e := sim.NewEngine(sim.Clock{})
	bus := amba.New(amba.Config{}, e.Cycle)
	ram := mem.NewRAM("ram", 0x1000, 0x1000, 1)
	if err := bus.MapSlave(ram, ram.Range()); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Ranges) == 0 {
		cfg.Ranges = []ocp.AddrRange{ram.Range()}
	}
	g := New(0, cfg, bus.NewMasterPort())
	e.Add(g)
	e.Add(bus)
	if _, err := e.Run(10_000_000, func() bool { return g.Done() && bus.Idle() }); err != nil {
		t.Fatal(err)
	}
	return g, e
}

func TestAllDistributionsComplete(t *testing.T) {
	for _, d := range []Dist{Uniform, Gaussian, Poisson, Bursty} {
		t.Run(d.String(), func(t *testing.T) {
			g, _ := run(t, Config{Dist: d, MeanGap: 12, Count: 300, Seed: 1})
			if g.Issued() != 300 {
				t.Fatalf("issued %d of 300", g.Issued())
			}
			if g.Latency.Count() == 0 {
				t.Fatal("no read latencies observed")
			}
		})
	}
}

func TestMeanRateApproximatesMeanGap(t *testing.T) {
	// Over many transactions, the run length must be roughly
	// count × (meanGap + service time) regardless of distribution.
	for _, d := range []Dist{Uniform, Poisson} {
		g, e := run(t, Config{Dist: d, MeanGap: 20, Count: 500, Seed: 7})
		perTxn := float64(e.Cycle()) / float64(g.Issued())
		if perTxn < 20 || perTxn > 40 {
			t.Fatalf("%v: %.1f cycles/txn, expected ≈ mean gap 20 + service", d, perTxn)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	g1, e1 := run(t, Config{Dist: Poisson, MeanGap: 10, Count: 200, Seed: 42})
	g2, e2 := run(t, Config{Dist: Poisson, MeanGap: 10, Count: 200, Seed: 42})
	if e1.Cycle() != e2.Cycle() || g1.HaltCycle() != g2.HaltCycle() {
		t.Fatal("same seed must reproduce the same run")
	}
	g3, e3 := run(t, Config{Dist: Poisson, MeanGap: 10, Count: 200, Seed: 43})
	_ = g3
	if e3.Cycle() == e1.Cycle() {
		t.Log("note: different seed produced identical length (possible but unlikely)")
	}
}

func TestBurstyClustersTransactions(t *testing.T) {
	// With the same mean rate, the bursty source must produce more
	// back-to-back (zero-gap) pairs than the uniform source.
	zeroGaps := func(d Dist) int {
		g := New(0, Config{Dist: d, MeanGap: 16, Count: 400, Seed: 3,
			Ranges: []ocp.AddrRange{{Base: 0, Size: 0x100}}}, nopPort{})
		zeros := 0
		for i := 0; i < 400; i++ {
			if g.nextGap() == 0 {
				zeros++
			}
		}
		return zeros
	}
	if zeroGaps(Bursty) <= zeroGaps(Uniform)*2 {
		t.Fatal("bursty source should emit clearly more zero gaps")
	}
}

func TestWritesLandInMemory(t *testing.T) {
	e := sim.NewEngine(sim.Clock{})
	bus := amba.New(amba.Config{}, e.Cycle)
	ram := mem.NewRAM("ram", 0x1000, 0x100, 1)
	if err := bus.MapSlave(ram, ram.Range()); err != nil {
		t.Fatal(err)
	}
	g := New(0, Config{Dist: Uniform, MeanGap: 2, Count: 100, Seed: 5,
		ReadFraction: 0.01, Ranges: []ocp.AddrRange{ram.Range()}}, bus.NewMasterPort())
	e.Add(g)
	e.Add(bus)
	if _, err := e.Run(1_000_000, func() bool { return g.Done() && bus.Idle() }); err != nil {
		t.Fatal(err)
	}
	var nonzero int
	for a := uint32(0x1000); a < 0x1100; a += 4 {
		if ram.PeekWord(a) != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("no writes landed")
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty ranges should panic")
		}
	}()
	New(0, Config{}, nopPort{})
}

// nopPort accepts everything instantly and answers reads immediately.
type nopPort struct{}

func (nopPort) TryRequest(req *ocp.Request) bool    { return true }
func (nopPort) TakeResponse() (*ocp.Response, bool) { return &ocp.Response{Data: []uint32{0}}, true }
func (nopPort) Busy() bool                          { return false }

func TestDistStrings(t *testing.T) {
	names := map[Dist]string{Uniform: "uniform", Gaussian: "gaussian", Poisson: "poisson", Bursty: "bursty"}
	for d, want := range names {
		if d.String() != want {
			t.Fatalf("%d.String() = %q", d, d.String())
		}
	}
}
