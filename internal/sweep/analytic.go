package sweep

import (
	"fmt"
	"math"

	"noctg/internal/analytic"
	"noctg/internal/noc"
	"noctg/internal/platform"
	"noctg/internal/stochastic"
)

// This file bridges sweep points to the closed-form estimator: it
// reproduces the platform's floorplan (master i at node i, private memory
// d at node Nodes-1-d, shared memory at Nodes-1-Cores) and the stochastic
// layer's exact traffic descriptors (destination distribution, mean gap,
// gap burstiness) so a prediction describes precisely the configuration a
// simulation of the same point would run.

// AnalyticSpec converts a stochastic workload/fabric pair into the
// estimator's specification. It fails on TG workloads (their load is a
// recorded trace, not a stochastic process) and on fabrics the platform
// itself would reject.
func AnalyticSpec(w Workload, f Fabric) (analytic.Spec, error) {
	if w.Kind != KindStochastic {
		return analytic.Spec{}, fmt.Errorf("sweep: analytic estimation needs a stochastic workload, got %q", w.Kind)
	}
	if err := w.validate(); err != nil {
		return analytic.Spec{}, err
	}
	scfg, err := w.StochasticConfig(1)
	if err != nil {
		return analytic.Spec{}, err
	}
	rcfg := scfg.Resolved()
	traffic := analytic.Traffic{
		Masters:      w.Cores,
		ReadFraction: rcfg.ReadFraction,
		Burst:        1, // generators issue single-beat transactions
		GapSCV:       rcfg.GapSCV(),
		Classes:      w.Classes,
	}
	if g := rcfg.MeanGapCycles(); !math.IsInf(g, 0) {
		traffic.MeanGap = g
	}

	spec := analytic.Spec{Traffic: traffic}
	switch f.Interconnect {
	case FabricAMBA:
		spec.Fabric = analytic.Fabric{Kind: analytic.KindAMBA, WaitStates: waitStates(f)}
		return spec, nil
	case FabricXPipes:
	default:
		return analytic.Spec{}, fmt.Errorf("sweep: unknown interconnect %q", f.Interconnect)
	}

	// Resolve the grid exactly as the platform does: auto-size only when
	// both dimensions are zero, then apply the NoC defaults.
	ncfg := noc.Config{Width: f.MeshWidth, Height: f.MeshHeight, Topology: f.topology()}
	if ncfg.Width == 0 && ncfg.Height == 0 {
		ncfg.Width, ncfg.Height = platform.AutoMesh(w.Cores)
	}
	ncfg = ncfg.WithDefaults()
	nodes := ncfg.Width * ncfg.Height
	if nodes < w.Cores*2+3 {
		return analytic.Spec{}, fmt.Errorf("sweep: mesh %dx%d too small for %d cores and %d slaves",
			ncfg.Width, ncfg.Height, w.Cores, w.Cores+2)
	}
	spec.Fabric = analytic.Fabric{
		Kind:       analytic.KindXPipes,
		Torus:      ncfg.Topology == noc.Torus,
		Width:      ncfg.Width,
		Height:     ncfg.Height,
		WaitStates: waitStates(f),
	}

	spec.Traffic.MasterNode = make([]int, w.Cores)
	spec.Traffic.DestNodes = make([][]int, w.Cores)
	spec.Traffic.DestProbs = make([][]float64, w.Cores)
	for i := 0; i < w.Cores; i++ {
		spec.Traffic.MasterNode[i] = i
	}
	if w.Pattern == "" {
		// Legacy shared-memory target: every master hits the shared slave.
		shared := nodes - 1 - w.Cores
		for i := 0; i < w.Cores; i++ {
			spec.Traffic.DestNodes[i] = []int{shared}
			spec.Traffic.DestProbs[i] = []float64{1}
		}
		return spec, nil
	}
	// Pattern workloads: logical node d's traffic lands in core d's
	// private memory, which sits at fabric node Nodes-1-d.
	sampler, err := stochastic.NewSampler(*rcfg.Spatial)
	if err != nil {
		return analytic.Spec{}, err
	}
	var probs []float64
	for i := 0; i < w.Cores; i++ {
		probs = sampler.DestProbs(i, probs)
		var dn []int
		var dp []float64
		for d, p := range probs {
			if p > 0 {
				dn = append(dn, nodes-1-d)
				dp = append(dp, p)
			}
		}
		spec.Traffic.DestNodes[i] = dn
		spec.Traffic.DestProbs[i] = dp
	}
	return spec, nil
}

// PredictedKneeGap predicts the mean gap at which the curve-level
// saturation detector first fires. Two mechanisms compete, and the
// detector flags whichever happens at the lighter load (larger gap):
//
//   - resource saturation: the model's knee gap, where the bottleneck
//     reaches full utilization and latency departs its plateau;
//   - the marginal-throughput knee: closed-loop masters stop tracking
//     offered load once the transaction time dominates the period,
//     at roughly (gap+1) = f/(1-f) · (period - gap - 1) with f the
//     detector's marginal-gain fraction — this fires even on fabrics the
//     population can never saturate.
func PredictedKneeGap(est *analytic.Estimator) float64 {
	e := est.Estimate()
	knee := 0.0
	if e.Saturates {
		knee = e.KneeGap
	}
	c := satMarginalFrac / (1 - satMarginalFrac)
	n := float64(est.Spec().Traffic.Masters)
	g := knee
	for i := 0; i < 16; i++ {
		// period - (gap+1) is the latency part of the closed-loop period
		// (service plus queueing) at this load.
		t := 1000*n/est.ThroughputAt(g) - (g + 1)
		ng := c*t - 1
		if ng < 0 {
			ng = 0
		}
		g = 0.5*g + 0.5*ng
	}
	return math.Max(knee, g)
}

// NewEstimator compiles the estimator for a stochastic workload/fabric
// pair in one step.
func NewEstimator(w Workload, f Fabric) (*analytic.Estimator, error) {
	spec, err := AnalyticSpec(w, f)
	if err != nil {
		return nil, err
	}
	return analytic.New(spec)
}

// PredictSaturationIndex runs the curve-level saturation detector on the
// model's own predictions over a gap ladder, returning the index of the
// first level the detector would flag (-1 if none). This is the
// operational knee — the same latency-blowup/throughput-marginal rules,
// quantized to the same ladder, that a simulated curve is judged by — so
// it is the right seed for adaptive traversal and the right quantity to
// cross-validate against a simulated curve's detection. Gaps must be in
// descending order (ascending load), as resolved curve axes are.
func PredictSaturationIndex(est *analytic.Estimator, gaps []float64) int {
	cores := float64(est.Spec().Traffic.Masters)
	pts := make([]CurvePoint, len(gaps))
	for i, g := range gaps {
		pts[i] = CurvePoint{
			MeanGap:       g,
			OfferedTPK:    cores * 1000 / (g + 1),
			ThroughputTPK: est.ThroughputAt(g),
			LatencyMean:   est.LatencyAt(g),
		}
	}
	sat := detectSaturation(pts)
	if sat == nil {
		return -1
	}
	return sat.Index
}

// AnalyticReport predicts every distinct stochastic workload×fabric pair
// in the point list, in sweep order — the -analytic report artifact.
// Configurations the estimator rejects are recorded with Err set, never
// silently dropped; TG points (trace replay, no stochastic process to
// predict) are outside the report's scope.
func AnalyticReport(points []Point) analytic.Report {
	var rep analytic.Report
	seen := make(map[string]bool)
	for _, p := range points {
		if p.Workload.Kind != KindStochastic {
			continue
		}
		label := p.Workload.Label() + " @ " + p.Fabric.Label()
		if seen[label] {
			continue
		}
		seen[label] = true
		entry := analytic.Entry{Label: label}
		if est, err := NewEstimator(p.Workload, p.Fabric); err != nil {
			entry.Err = err.Error()
		} else {
			entry.Spec = est.Spec()
			entry.Estimate = est.Estimate()
		}
		rep.Entries = append(rep.Entries, entry)
	}
	return rep
}

// waitStates resolves the fabric's slave wait states with the platform
// default.
func waitStates(f Fabric) float64 {
	if f.MemWaitStates == 0 {
		return 1
	}
	return float64(f.MemWaitStates)
}
