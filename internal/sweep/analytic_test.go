package sweep

import (
	"bytes"
	"math"
	"os"
	"testing"

	"noctg/internal/platform"
)

// adaptiveCurveSpec is the adaptive twin of the golden curve, on the
// stock 13-level ladder so the traversal has levels worth skipping.
func adaptiveCurveSpec() CurveSpec {
	cs := goldenCurveSpec()
	cs.Name = "hotspot-amba-adaptive"
	cs.Gaps = nil // stock DefaultCurveGaps ladder
	cs.Mode = CurveModeAdaptive
	return cs
}

// TestAnalyticSpecConversion pins the sweep-to-estimator bridge: the
// compiled spec must mirror the platform floorplan and the stochastic
// layer's resolved traffic descriptors.
func TestAnalyticSpecConversion(t *testing.T) {
	w := Workload{
		Kind: KindStochastic, Dist: "poisson", Cores: 4,
		Pattern: "uniform", PatternW: 2, PatternH: 2, Count: 300, MeanGap: 10,
	}
	spec, err := AnalyticSpec(w, Fabric{Interconnect: FabricXPipes})
	if err != nil {
		t.Fatal(err)
	}
	// The platform auto-sizes 4 cores onto a 4x3 mesh: masters at nodes
	// 0..3, private memories at 11..8.
	if spec.Fabric.Width != 4 || spec.Fabric.Height != 3 {
		t.Fatalf("auto mesh = %dx%d, want 4x3", spec.Fabric.Width, spec.Fabric.Height)
	}
	if spec.Traffic.Masters != 4 || spec.Traffic.MeanGap != 10 {
		t.Fatalf("traffic = %+v", spec.Traffic)
	}
	for i, node := range spec.Traffic.MasterNode {
		if node != i {
			t.Fatalf("master %d at node %d, want %d", i, node, i)
		}
	}
	for i, dests := range spec.Traffic.DestNodes {
		for _, d := range dests {
			if d < 8 || d > 11 {
				t.Fatalf("master %d targets node %d, outside the private-memory row 8..11", i, d)
			}
		}
	}

	if _, err := AnalyticSpec(Workload{Kind: KindTG, Bench: "mpmatrix", Cores: 2, Size: 8},
		Fabric{Interconnect: FabricAMBA}); err == nil {
		t.Fatal("TG workload accepted: trace replay has no stochastic process to predict")
	}
}

// TestGridAnalyticPrePass pins the grid-level pre-pass contract: a point
// the model brackets confidently is recorded as an estimated result
// carrying the prediction, a near-knee point still simulates, and no
// point is ever dropped.
func TestGridAnalyticPrePass(t *testing.T) {
	g := Grid{
		Workloads: []Workload{
			// Deep in the linear region: estimated.
			{Kind: KindStochastic, Dist: "poisson", Cores: 4,
				Pattern: "hotspot", PatternW: 2, PatternH: 2,
				Hotspot: []float64{0, 0, 0.6}, MeanGap: 48, Count: 300},
			// At the knee: must simulate.
			{Kind: KindStochastic, Dist: "poisson", Cores: 4,
				Pattern: "hotspot", PatternW: 2, PatternH: 2,
				Hotspot: []float64{0, 0, 0.6}, MeanGap: 6, Count: 300},
		},
		Fabrics:  []Fabric{{Interconnect: FabricAMBA}},
		Analytic: true,
	}
	points := g.Expand()
	if len(points) != 2 {
		t.Fatalf("expanded %d points, want 2", len(points))
	}
	for _, p := range points {
		if !p.Analytic {
			t.Fatalf("point %d lost the analytic marker", p.ID)
		}
	}
	results, err := Runner{}.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: estimated points must never be dropped", len(results))
	}
	est, sim := results[0], results[1]
	if !est.Estimated {
		t.Fatalf("gap-48 point was simulated; the model must bracket it confidently: %+v", est)
	}
	if est.Analytic == nil || est.ThroughputTPK <= 0 || est.Latency.Mean <= 0 {
		t.Fatalf("estimated result lacks its prediction: %+v", est)
	}
	if sim.Estimated {
		t.Fatal("near-knee point was estimated; the pre-pass must simulate near the knee")
	}
	if sim.Transactions == 0 {
		t.Fatalf("near-knee point did not simulate: %+v", sim)
	}

	// The pre-pass is result-determining, so it keys the journal: the same
	// configuration with and without the marker must never collide.
	off := points[0]
	off.Analytic = false
	if PointKey(points[0]) == PointKey(off) {
		t.Fatal("analytic marker does not key the journal")
	}

	// The estimated result must round-trip the CSV artifact with its
	// marker column set.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(",true")) {
		t.Fatalf("results CSV lacks the estimated marker:\n%s", buf.String())
	}
}

// TestAdaptiveCurveContract pins the adaptive traversal against its
// uniform twin on the same ladder: the same detected knee within one
// load step, at least 40% fewer simulated levels, and a full ladder of
// points with the skipped levels carried as estimates.
func TestAdaptiveCurveContract(t *testing.T) {
	uni := adaptiveCurveSpec()
	uni.Mode = CurveModeUniform
	curves, err := Runner{}.RunCurves([]CurveSpec{uni, adaptiveCurveSpec()})
	if err != nil {
		t.Fatal(err)
	}
	uc, ac := curves[0], curves[1]
	if uc.Saturation == nil || ac.Saturation == nil {
		t.Fatalf("both modes must detect saturation: uniform %+v adaptive %+v", uc.Saturation, ac.Saturation)
	}
	if d := ac.Saturation.Index - uc.Saturation.Index; d < -1 || d > 1 {
		t.Fatalf("adaptive knee at level %d, uniform at %d: more than one step apart",
			ac.Saturation.Index, uc.Saturation.Index)
	}
	if len(ac.Points) != len(uc.Points) {
		t.Fatalf("adaptive ladder has %d levels, uniform %d", len(ac.Points), len(uc.Points))
	}
	if ac.SimulatedLevels+ac.EstimatedLevels != len(ac.Points) {
		t.Fatalf("level accounting: %d + %d != %d", ac.SimulatedLevels, ac.EstimatedLevels, len(ac.Points))
	}
	if float64(ac.SimulatedLevels) > 0.6*float64(len(uc.Points)) {
		t.Fatalf("adaptive simulated %d of %d levels; the contract is at least 40%% fewer",
			ac.SimulatedLevels, len(uc.Points))
	}
	if ac.Analytic == nil {
		t.Fatal("adaptive curve lacks its analytic estimate")
	}
	estimated := 0
	for _, p := range ac.Points {
		if p.Estimated {
			estimated++
			if p.LatencyMean <= 0 || p.ThroughputTPK <= 0 {
				t.Fatalf("estimated level gap %g lacks model values: %+v", p.MeanGap, p)
			}
		}
	}
	if estimated != ac.EstimatedLevels {
		t.Fatalf("%d points flagged estimated, curve reports %d", estimated, ac.EstimatedLevels)
	}
	// Uniform-mode artifacts must not grow any adaptive fields.
	var buf bytes.Buffer
	if err := WriteCurvesJSON(&buf, []Curve{uc}); err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{`"mode"`, `"estimated"`, `"analytic"`, `"simulated_levels"`} {
		if bytes.Contains(buf.Bytes(), []byte(banned)) {
			t.Fatalf("uniform curve artifact gained %s; legacy artifacts must stay byte-identical", banned)
		}
	}
}

// TestAdaptiveCurveMatrixDeterminism extends the determinism matrix to
// adaptive curves: byte-identical JSON and CSV artifacts across the
// strict/skip/event kernels and worker counts. (Shard counts ride the
// same guarantee through the xpipes differential below.)
func TestAdaptiveCurveMatrixDeterminism(t *testing.T) {
	render := func(r Runner) ([]byte, []byte) {
		t.Helper()
		curves, err := r.RunCurves([]CurveSpec{adaptiveCurveSpec()})
		if err != nil {
			t.Fatal(err)
		}
		var js, cs bytes.Buffer
		if err := WriteCurvesJSON(&js, curves); err != nil {
			t.Fatal(err)
		}
		if err := WriteCurvesCSV(&cs, curves); err != nil {
			t.Fatal(err)
		}
		return js.Bytes(), cs.Bytes()
	}
	wantJS, wantCS := render(Runner{Kernel: platform.KernelStrict, Workers: 1})
	for _, kernel := range diffKernels() {
		for _, workers := range []int{1, 4} {
			js, cs := render(Runner{Kernel: kernel, Workers: workers})
			if !bytes.Equal(wantJS, js) || !bytes.Equal(wantCS, cs) {
				t.Fatalf("adaptive curve artifacts differ at kernel %v workers %d", kernel, workers)
			}
		}
	}
}

// TestAdaptiveCurveShardDeterminism covers the shard axis of the matrix
// on a ×pipes adaptive curve (AMBA ignores shards): byte-identical
// artifacts for every shard count.
func TestAdaptiveCurveShardDeterminism(t *testing.T) {
	cs := CurveSpec{
		Name: "uniform-xpipes-adaptive",
		Workload: Workload{
			Kind: KindStochastic, Dist: "poisson", Cores: 4,
			Pattern: "uniform", PatternW: 2, PatternH: 2,
		},
		Fabric: Fabric{Interconnect: FabricXPipes},
		Gaps:   []float64{24, 6, 2, 1, 0.5},
		Mode:   CurveModeAdaptive,
		Measure: Measure{
			WarmupCycles: 1000,
			EpochCycles:  2000,
			CITarget:     0.05,
		},
	}
	render := func(shards int) []byte {
		t.Helper()
		curves, err := Runner{Shards: shards}.RunCurves([]CurveSpec{cs})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteCurvesJSON(&buf, curves); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := render(1)
	for _, shards := range []int{2, 3} {
		if got := render(shards); !bytes.Equal(want, got) {
			t.Fatalf("adaptive curve artifacts differ between 1 and %d shards", shards)
		}
	}
}

// TestPredictSaturationIndex sanity-checks the operational knee on the
// golden AMBA curve's ladder: the detector run on the model's own curve
// must fire, and earlier for a hotter (lower wait-state headroom) fabric.
func TestPredictSaturationIndex(t *testing.T) {
	cs := adaptiveCurveSpec()
	est, err := NewEstimator(cs.Workload, cs.Fabric)
	if err != nil {
		t.Fatal(err)
	}
	gaps := DefaultCurveGaps
	k := PredictSaturationIndex(est, gaps)
	if k <= 0 || k >= len(gaps) {
		t.Fatalf("predicted saturation index %d on a %d-level ladder", k, len(gaps))
	}
	slow := cs.Fabric
	slow.MemWaitStates = 4
	slower, err := NewEstimator(cs.Workload, slow)
	if err != nil {
		t.Fatal(err)
	}
	ks := PredictSaturationIndex(slower, gaps)
	if ks > k {
		t.Fatalf("4-wait-state fabric predicted to saturate later (level %d) than 1-wait-state (level %d)", ks, k)
	}
}

// TestAnalyticReportCoversStochasticPoints: the report carries one entry
// per distinct stochastic configuration, rejections included, and skips
// TG replay points.
func TestAnalyticReportCoversStochasticPoints(t *testing.T) {
	g := Grid{
		Workloads: []Workload{
			{Kind: KindStochastic, Dist: "poisson", Cores: 4,
				Pattern: "uniform", PatternW: 2, PatternH: 2, MeanGap: 10, Count: 300},
			{Kind: KindTG, Bench: "mpmatrix", Cores: 2, Size: 8},
		},
		Fabrics: []Fabric{{Interconnect: FabricAMBA}, {Interconnect: FabricXPipes}},
		Seeds:   []int64{1, 2}, // seeds must not duplicate entries
	}
	rep := AnalyticReport(g.Expand())
	if len(rep.Entries) != 2 {
		for _, e := range rep.Entries {
			t.Logf("entry: %s err=%q", e.Label, e.Err)
		}
		t.Fatalf("report has %d entries, want 2 (stochastic workload x 2 fabrics, deduped across seeds)", len(rep.Entries))
	}
	for _, e := range rep.Entries {
		if e.Err != "" {
			t.Fatalf("%s: %s", e.Label, e.Err)
		}
		if e.Estimate.ZeroLoadLatency <= 0 {
			t.Fatalf("%s: no prediction: %+v", e.Label, e.Estimate)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("zero_load_latency_cycles")) {
		t.Fatalf("report artifact lacks predictions:\n%s", buf.String())
	}
}

// TestPrePassWorkerDeterminism: the pre-pass decision is a pure function
// of the point, so mixed estimated/simulated grids stay byte-identical
// across worker counts.
func TestPrePassWorkerDeterminism(t *testing.T) {
	var ws []Workload
	for _, gap := range []float64{48, 24, 12, 6, 3} {
		ws = append(ws, Workload{
			Kind: KindStochastic, Dist: "poisson", Cores: 4,
			Pattern: "hotspot", PatternW: 2, PatternH: 2,
			Hotspot: []float64{0, 0, 0.6}, MeanGap: gap, Count: 300,
		})
	}
	g := Grid{Workloads: ws, Fabrics: []Fabric{{Interconnect: FabricAMBA}}, Analytic: true}
	points := g.Expand()
	render := func(workers int) []byte {
		t.Helper()
		results, err := Runner{Workers: workers}.Run(points)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, results); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := render(1)
	if !bytes.Equal(want, render(4)) {
		t.Fatal("pre-pass artifacts depend on worker count")
	}
	estimated := bytes.Count(want, []byte(`"estimated": true`))
	if estimated == 0 {
		t.Fatal("no point was estimated; the light end of the ladder must be")
	}
	if estimated == len(points) {
		t.Fatal("every point was estimated; the knee region must simulate")
	}
	t.Logf("%d/%d points estimated", estimated, len(points))
}

// TestJournalResumeWithAnalyticPoints: estimated results round-trip the
// write-ahead journal like simulated ones.
func TestJournalResumeWithAnalyticPoints(t *testing.T) {
	g := Grid{
		Workloads: []Workload{{
			Kind: KindStochastic, Dist: "poisson", Cores: 4,
			Pattern: "hotspot", PatternW: 2, PatternH: 2,
			Hotspot: []float64{0, 0, 0.6}, MeanGap: 48, Count: 300,
		}},
		Fabrics:  []Fabric{{Interconnect: FabricAMBA}},
		Analytic: true,
	}
	points := g.Expand()
	path := t.TempDir() + "/analytic.journal"
	first, _, err := Runner{}.RunJournaled(points, JournalConfig{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if !first[0].Estimated {
		t.Fatalf("expected an estimated result: %+v", first[0])
	}
	resumed, status, err := Runner{}.Resume(points, path)
	if err != nil {
		t.Fatal(err)
	}
	if status.Resumed != 1 || status.Ran != 0 {
		t.Fatalf("resume re-ran an estimated point: %+v", status)
	}
	a, b := renderResults(t, first), renderResults(t, resumed)
	if !bytes.Equal(a, b) {
		t.Fatal("estimated result changed across journal resume")
	}
}

// TestCurveCSVEstimatedColumn: the curve CSV carries the mode and the
// per-level estimated marker.
func TestCurveCSVEstimatedColumn(t *testing.T) {
	curves, err := Runner{}.RunCurves([]CurveSpec{adaptiveCurveSpec()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCurvesCSV(&buf, curves); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"mode", "estimated", "adaptive"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("curve CSV lacks %q:\n%s", want, out)
		}
	}
	if curves[0].EstimatedLevels > 0 && !bytes.Contains(buf.Bytes(), []byte(",true,")) {
		t.Fatalf("curve CSV lacks estimated rows:\n%s", out)
	}
}

// TestAnalyticValidationErrors: the estimator rejects what the platform
// would reject, with the configuration named.
func TestAnalyticValidationErrors(t *testing.T) {
	w := Workload{
		Kind: KindStochastic, Dist: "poisson", Cores: 4,
		Pattern: "uniform", PatternW: 2, PatternH: 2, MeanGap: 10, Count: 300,
	}
	if _, err := AnalyticSpec(w, Fabric{Interconnect: "warp"}); err == nil {
		t.Fatal("unknown interconnect accepted")
	}
	tiny := Fabric{Interconnect: FabricXPipes, MeshWidth: 2, MeshHeight: 2}
	if _, err := AnalyticSpec(w, tiny); err == nil {
		t.Fatal("2x2 mesh accepted for 4 cores; the platform needs 2*cores+3 nodes")
	}
	if _, err := NewEstimator(w, Fabric{Interconnect: FabricAMBA}); err != nil {
		t.Fatal(err)
	}
}

// TestPredictedKneeGap pins the continuous knee prediction the CLI table
// and the adaptive seed's fallback use: finite, positive, and monotone in
// the service time (a slower memory saturates at a lighter load, i.e. a
// larger gap).
func TestPredictedKneeGap(t *testing.T) {
	cs := adaptiveCurveSpec()
	est, err := NewEstimator(cs.Workload, cs.Fabric)
	if err != nil {
		t.Fatal(err)
	}
	knee := PredictedKneeGap(est)
	if !(knee > 0) || math.IsInf(knee, 0) || math.IsNaN(knee) {
		t.Fatalf("predicted knee gap = %g, want a positive finite gap", knee)
	}
	slow := cs.Fabric
	slow.MemWaitStates = 4
	slower, err := NewEstimator(cs.Workload, slow)
	if err != nil {
		t.Fatal(err)
	}
	if ks := PredictedKneeGap(slower); ks < knee {
		t.Fatalf("4-wait-state fabric knee gap %g below 1-wait-state %g: slower service must saturate at lighter load", ks, knee)
	}
}

// TestAdaptiveCurveNoSaturation pins the traversal on a ladder that never
// leaves the linear region: the model predicts no saturation (the seed
// falls back to the continuous knee), the simulated levels confirm it,
// and the curve completes without a saturation point instead of looping.
func TestAdaptiveCurveNoSaturation(t *testing.T) {
	cs := adaptiveCurveSpec()
	cs.Name = "hotspot-amba-light"
	cs.Gaps = []float64{200, 150, 100, 80, 60}
	curves, err := Runner{}.RunCurves([]CurveSpec{cs})
	if err != nil {
		t.Fatal(err)
	}
	c := curves[0]
	if c.Saturation != nil {
		t.Fatalf("light-load ladder detected saturation at gap %g", c.Saturation.MeanGap)
	}
	if len(c.Points) != len(cs.Gaps) {
		t.Fatalf("curve has %d levels, want the full %d-level ladder", len(c.Points), len(cs.Gaps))
	}
	if c.SimulatedLevels+c.EstimatedLevels != len(c.Points) || c.SimulatedLevels == 0 {
		t.Fatalf("level accounting: %d simulated + %d estimated over %d points",
			c.SimulatedLevels, c.EstimatedLevels, len(c.Points))
	}
	// The endpoints are always simulated; the seed round is the whole
	// traversal when nothing saturates.
	if c.Points[0].Estimated || c.Points[len(c.Points)-1].Estimated {
		t.Fatal("ladder endpoints must be simulated, not estimated")
	}
}

// TestAnalyticPrePassRejection: a point carrying the pre-pass marker whose
// configuration the estimator rejects must fall back to simulation, not
// fail or drop.
func TestAnalyticPrePassRejection(t *testing.T) {
	p := Point{
		ID:            1,
		Workload:      Workload{Kind: KindTG, Bench: "mpmatrix", Cores: 2, Size: 8},
		Fabric:        Fabric{Interconnect: FabricAMBA},
		ClockPeriodNS: 5,
		Analytic:      true, // hand-forced: Expand never marks TG points
	}
	results, err := Runner{}.Run([]Point{p})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Err != "" {
		t.Fatalf("TG point with analytic marker failed: %s", r.Err)
	}
	if r.Estimated {
		t.Fatal("TG point was estimated; the estimator cannot model trace replay")
	}
	if r.Transactions == 0 {
		t.Fatal("TG point did not simulate")
	}
}

// TestCurveModeValidation: the mode knob rejects unknown strings, and
// adaptive mode surfaces an estimator-rejecting configuration at
// validation time instead of mid-sweep.
func TestCurveModeValidation(t *testing.T) {
	cs := adaptiveCurveSpec()
	cs.Mode = "bisect"
	if err := cs.Validate(); err == nil {
		t.Fatal("unknown curve mode accepted")
	}
	bad := adaptiveCurveSpec()
	bad.Fabric = Fabric{Interconnect: FabricXPipes, MeshWidth: 2, MeshHeight: 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("adaptive mode accepted a mesh too small for the estimator's floorplan")
	}
	// The same fabric is fine in uniform mode: only the adaptive planner
	// needs the model.
	bad.Mode = CurveModeUniform
	if err := bad.Validate(); err != nil {
		t.Fatalf("uniform mode rejected a simulable fabric: %v", err)
	}
}

// TestRunCurveSingle: the single-curve wrapper returns the same curve the
// batch runner produces.
func TestRunCurveSingle(t *testing.T) {
	cs := adaptiveCurveSpec()
	cs.Gaps = []float64{24, 2}
	c, err := Runner{Workers: 1}.RunCurve(cs)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != cs.Name || len(c.Points) != 2 {
		t.Fatalf("curve = %s with %d points, want %s with 2", c.Name, len(c.Points), cs.Name)
	}
	if _, err := (Runner{}).RunCurve(CurveSpec{}); err == nil {
		t.Fatal("empty curve spec accepted")
	}
}

// TestAnalyticSpecLegacyTarget: pattern-less xpipes workloads target the
// shared slave, exactly as the platform floorplan places it.
func TestAnalyticSpecLegacyTarget(t *testing.T) {
	w := Workload{Kind: KindStochastic, Dist: "poisson", Cores: 4, Count: 300, MeanGap: 10}
	spec, err := AnalyticSpec(w, Fabric{Interconnect: FabricXPipes})
	if err != nil {
		t.Fatal(err)
	}
	// 4 cores auto-size to 4x3 = 12 nodes; the shared slave sits at
	// Nodes-1-Cores = 7.
	for i, dests := range spec.Traffic.DestNodes {
		if len(dests) != 1 || dests[0] != 7 {
			t.Fatalf("master %d targets %v, want the shared slave at node 7", i, dests)
		}
		if spec.Traffic.DestProbs[i][0] != 1 {
			t.Fatalf("master %d probs = %v", i, spec.Traffic.DestProbs[i])
		}
	}
}

// TestNextLevelsGoldenSection drives the refinement planner directly: a
// wide saturation bracket must split at the golden-section interior
// point, skipping already-simulated indices.
func TestNextLevelsGoldenSection(t *testing.T) {
	cs := adaptiveCurveSpec().withDefaults()
	est, err := NewEstimator(cs.Workload, cs.Fabric)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-built simulated subsequence: detection fires at axis index 12
	// (latency 10x the lightest level), the nearest lighter error-free
	// level is 8 — a wide bracket the seed round can leave behind when
	// the model's knee guess is light.
	pt := func(i int, lat float64) CurvePoint {
		g := cs.Gaps[i]
		off := 4 * 1000 / (g + 1)
		return CurvePoint{MeanGap: g, OfferedTPK: off, ThroughputTPK: off, LatencyMean: lat}
	}
	st := &curveState{
		cs: cs, est: est, seeded: true,
		sim: map[int]CurvePoint{0: pt(0, 10), 8: pt(8, 12), 12: pt(12, 100)},
	}
	next := st.nextLevels()
	// m = 12 - round(0.618*4) = 10.
	if len(next) != 1 || next[0] != 10 {
		t.Fatalf("golden-section split of (8,12) = %v, want [10]", next)
	}
	// With 10 already simulated (still unsaturated), the snap must move
	// to the nearest unsimulated interior index.
	st.sim[10] = pt(10, 13)
	next = st.nextLevels()
	if len(next) != 1 || (next[0] != 9 && next[0] != 11) {
		t.Fatalf("snapped split = %v, want [9] or [11]", next)
	}
}

// TestWriteCurveArtifactsRoundTrip: the curve artifact writer produces
// both files atomically and fails cleanly on an unwritable directory.
func TestWriteCurveArtifactsRoundTrip(t *testing.T) {
	c := Curve{Name: "t", Points: []CurvePoint{{MeanGap: 4, OfferedTPK: 800, ThroughputTPK: 700, LatencyMean: 20}}}
	base := t.TempDir() + "/curves"
	if err := WriteCurveArtifacts(base, []Curve{c}); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".json", ".csv"} {
		if _, err := os.Stat(base + ext); err != nil {
			t.Fatalf("missing artifact %s: %v", ext, err)
		}
	}
	if err := WriteCurveArtifacts(t.TempDir()+"/no/such/dir/x", []Curve{c}); err == nil {
		t.Fatal("unwritable directory accepted")
	}
}
